#include <gtest/gtest.h>

#include "helpers.h"
#include "util/rng.h"
#include "wl/hpwl.h"
#include "wl/incremental.h"

namespace complx {
namespace {

TEST(IncrementalHpwl, TotalMatchesExact) {
  Netlist nl = complx::testing::small_circuit(181, 800);
  const Placement p = nl.snapshot();
  IncrementalHpwl eval(nl, p);
  EXPECT_NEAR(eval.total(), weighted_hpwl(nl, p), 1e-6 * eval.total());
}

TEST(IncrementalHpwl, RefreshTracksMoves) {
  Netlist nl = complx::testing::small_circuit(182, 600);
  Placement p = nl.snapshot();
  IncrementalHpwl eval(nl, p);
  Rng rng(3);
  for (int k = 0; k < 200; ++k) {
    const CellId id = nl.movable_cells()[rng.uniform_index(
        nl.movable_cells().size())];
    p.x[id] = rng.uniform(nl.core().xl, nl.core().xh);
    p.y[id] = rng.uniform(nl.core().yl, nl.core().yh);
    eval.refresh(id);
  }
  EXPECT_NEAR(eval.total(), weighted_hpwl(nl, p), 1e-6 * eval.total());
}

TEST(IncrementalHpwl, FreshSeesUncommittedMutation) {
  Netlist nl = complx::testing::small_circuit(183, 400);
  Placement p = nl.snapshot();
  IncrementalHpwl eval(nl, p);
  const CellId id = nl.movable_cells()[0];
  const double cached = eval.incident_cost(id);
  const double old_x = p.x[id];
  p.x[id] += 100.0;
  // Cache unchanged, fresh reflects the mutation.
  EXPECT_DOUBLE_EQ(eval.incident_cost(id), cached);
  EXPECT_NE(eval.fresh_incident_cost(id), cached);
  p.x[id] = old_x;
  EXPECT_NEAR(eval.fresh_incident_cost(id), cached, 1e-9);
}

// Drift regression for the compensated (Neumaier) running total. Each
// refresh() adjusts total() by a subtract/add pair per incident net, so an
// uncompensated += sum retains absolute rounding error at the scale of the
// LARGEST totals the run swings through. Phase 1 alternates ~10k committed
// moves between a 1e5x-inflated bounding box and the core; phase 2 walks
// every cell back inside the core one committed move at a time. The final
// total is ~1e5x smaller than the peaks, so the retained error shows up
// magnified: a naive running sum lands ~6e-11 relative on this exact
// sequence (600x the tolerance below), while the compensated total must
// stay at rounding level of the final value, independent of the history.
TEST(IncrementalHpwl, LongRunDriftStaysAtRoundingLevel) {
  Netlist nl = complx::testing::small_circuit(185, 700);
  Placement p = nl.snapshot();
  IncrementalHpwl eval(nl, p);
  Rng rng(17);
  const auto& movable = nl.movable_cells();
  for (size_t k = 0; k < 10000; ++k) {
    const CellId id = movable[rng.uniform_index(movable.size())];
    const double scale = (k % 2 == 0) ? 1e5 : 1.0;
    p.x[id] = scale * rng.uniform(nl.core().xl, nl.core().xh);
    p.y[id] = scale * rng.uniform(nl.core().yl, nl.core().yh);
    eval.refresh(id);
  }
  for (CellId id : movable) {
    p.x[id] = rng.uniform(nl.core().xl, nl.core().xh);
    p.y[id] = rng.uniform(nl.core().yl, nl.core().yh);
    eval.refresh(id);
  }
  const double exact = weighted_hpwl(nl, p);
  EXPECT_NEAR(eval.total(), exact, 1e-13 * exact);
}

TEST(IncrementalHpwl, PairIncidentDeduplicatesSharedNets) {
  // Two cells on one shared net: the pair cost must count it once.
  Netlist nl;
  Cell c;
  c.width = 2;
  c.height = 2;
  c.x = 0;
  const CellId a = nl.add_cell(c, "a");
  c.x = 10;
  const CellId b = nl.add_cell(c, "b");
  nl.add_net("shared", 1.0, {{a, 0, 0}, {b, 0, 0}});
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  const Placement p = nl.snapshot();
  IncrementalHpwl eval(nl, p);
  EXPECT_DOUBLE_EQ(eval.incident_cost(a, b), eval.net_cost(0));
  EXPECT_DOUBLE_EQ(eval.incident_cost(a, b),
                   eval.incident_cost(a));  // same single net
}

TEST(IncrementalHpwl, RebuildAfterBulkChange) {
  Netlist nl = complx::testing::small_circuit(184, 500);
  Placement p = nl.snapshot();
  IncrementalHpwl eval(nl, p);
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  eval.rebuild();
  EXPECT_NEAR(eval.total(), weighted_hpwl(nl, p), 1e-6 * (eval.total() + 1));
}

TEST(IncrementalHpwl, WeightsAreRespected) {
  Netlist nl = complx::testing::two_cell_chain();
  nl.net(1).weight = 5.0;
  const Placement p = nl.snapshot();
  IncrementalHpwl eval(nl, p);
  EXPECT_NEAR(eval.total(), weighted_hpwl(nl, p), 1e-9);
  EXPECT_DOUBLE_EQ(eval.net_cost(1),
                   5.0 * net_hpwl(nl, p, 1));
}

}  // namespace
}  // namespace complx
