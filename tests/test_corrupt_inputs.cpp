// Table test over the committed malformed-input corpus (tests/corpus/, see
// its README.md): every damaged file must produce its documented, defined
// error — never a crash, an out-of-bounds read, or a silent success. CI
// runs this under ASan/UBSan, so "defined" is enforced by the sanitizers,
// not just by the assertions.
//
// The corpus is committed bytes, not test-synthesized: it pins the on-disk
// formats, so a behavioural change in the snapshot layout or the Bookshelf
// parser fails here and forces a deliberate corpus update.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "bookshelf/reader.h"
#include "io/snapshot.h"

namespace complx {
namespace {

std::string corpus(const std::string& rel) {
  return std::string(COMPLX_CORPUS_DIR) + "/" + rel;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "corpus file missing: " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// Snapshot images.

struct SnapshotCase {
  const char* file;
  SnapshotError want;
};

TEST(CorruptCorpus, SnapshotFilesMapToDocumentedErrors) {
  const SnapshotCase cases[] = {
      {"snapshot_empty.snap", SnapshotError::Truncated},
      {"snapshot_garbage.snap", SnapshotError::BadMagic},
      {"snapshot_truncated.snap", SnapshotError::Truncated},
      {"snapshot_trailing.snap", SnapshotError::BadHeader},
      {"snapshot_version_skew.snap", SnapshotError::VersionSkew},
      {"snapshot_header_bitflip.snap", SnapshotError::BadHeader},
      {"snapshot_index_bitflip.snap", SnapshotError::IndexCrc},
  };
  for (const SnapshotCase& c : cases) {
    SnapshotStats stats;
    const SnapshotParseResult out =
        parse_snapshot(read_bytes(corpus(c.file)), stats);
    EXPECT_EQ(out.error, c.want)
        << c.file << ": got " << to_string(out.error) << " (" << out.detail
        << ")";
    EXPECT_TRUE(out.records.empty()) << c.file;
    EXPECT_EQ(stats.load_failures, 1u) << c.file;
  }
}

TEST(CorruptCorpus, ValidSnapshotIsThePositiveControl) {
  SnapshotStats stats;
  const SnapshotParseResult out =
      parse_snapshot(read_bytes(corpus("snapshot_valid.snap")), stats);
  ASSERT_EQ(out.error, SnapshotError::None) << out.detail;
  EXPECT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.save_count, 3u);
  EXPECT_EQ(out.records[0].key, 0x1111111111111111ull);
  EXPECT_EQ(out.records[1].key, 0x2222222222222222ull);
}

TEST(CorruptCorpus, PayloadBitFlipDropsExactlyOneRecord) {
  SnapshotStats stats;
  const SnapshotParseResult out = parse_snapshot(
      read_bytes(corpus("snapshot_payload_bitflip.snap")), stats);
  EXPECT_EQ(out.error, SnapshotError::None) << out.detail;
  EXPECT_EQ(out.records_dropped, 1u);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].key, 0x2222222222222222ull);
  EXPECT_EQ(stats.record_crc, 1u);
}

// ---------------------------------------------------------------------------
// Bookshelf families. Every defect must surface as std::runtime_error with
// a non-empty diagnostic (the reader promises file/line context).

TEST(CorruptCorpus, BookshelfFamiliesThrowDefinedErrors) {
  const char* families[] = {
      "bookshelf_missing_nodes", "bookshelf_empty_aux",
      "bookshelf_bad_number",    "bookshelf_dangling_pin",
      "bookshelf_bad_pl",
  };
  for (const char* fam : families) {
    const std::string aux = corpus(std::string(fam) + "/d.aux");
    try {
      read_bookshelf(aux);
      ADD_FAILURE() << fam << ": expected read_bookshelf to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STRNE(e.what(), "") << fam;
    }
  }
}

}  // namespace
}  // namespace complx
