#include <gtest/gtest.h>

#include "core/placer.h"
#include "helpers.h"
#include "projection/lal.h"
#include "route/inflate.h"
#include "route/rudy.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

/// Two cells with one net spanning a known box; RUDY demand is verifiable
/// by hand.
struct RudyFixture {
  Netlist nl;
  RudyFixture() {
    Cell a;
    a.width = 2;
    a.height = 2;
    a.x = 10 - 1;
    a.y = 10 - 1;
    const CellId ia = nl.add_cell(a, "a");
    Cell b = a;
    b.x = 90 - 1;
    b.y = 50 - 1;
    const CellId ib = nl.add_cell(b, "b");
    nl.add_net("n", 1.0, {{ia, 0, 0}, {ib, 0, 0}});
    nl.set_core({0, 0, 100, 100});
    nl.finalize();
  }
};

TEST(Rudy, DemandConcentratesInNetBox) {
  RudyFixture f;
  RudyOptions opts;
  opts.bins_x = opts.bins_y = 10;
  CongestionMap map(f.nl, opts);
  map.build(f.nl.snapshot());
  // Net box spans x 10..90, y 10..50. Inside: nonzero congestion; far
  // corner: zero.
  EXPECT_GT(map.congestion_at(50, 30), 0.0);
  EXPECT_DOUBLE_EQ(map.congestion_at(95, 95), 0.0);
}

TEST(Rudy, TotalDemandEqualsWirelength) {
  // Integrated horizontal demand = Σ net widths; vertical = Σ net heights.
  RudyFixture f;
  RudyOptions opts;
  opts.bins_x = opts.bins_y = 10;
  opts.supply_per_area = 1.0;  // capacity = bin area => demand = cong*area
  CongestionMap map(f.nl, opts);
  map.build(f.nl.snapshot());
  double h_total = 0.0, v_total = 0.0;
  const double bin_area = 10.0 * 10.0;
  for (size_t j = 0; j < 10; ++j)
    for (size_t i = 0; i < 10; ++i) {
      h_total += map.h_congestion(i, j) * bin_area;
      v_total += map.v_congestion(i, j) * bin_area;
    }
  EXPECT_NEAR(h_total, 80.0, 1e-6);  // net width
  EXPECT_NEAR(v_total, 40.0, 1e-6);  // net height
}

TEST(Rudy, WeightScalesDemand) {
  RudyFixture f;
  f.nl.net(0).weight = 3.0;
  RudyOptions opts;
  opts.bins_x = opts.bins_y = 10;
  CongestionMap map(f.nl, opts);
  map.build(f.nl.snapshot());
  RudyFixture g;
  CongestionMap ref(g.nl, opts);
  ref.build(g.nl.snapshot());
  EXPECT_NEAR(map.congestion_at(50, 30), 3.0 * ref.congestion_at(50, 30),
              1e-9);
}

TEST(Rudy, DegenerateNetStillConsumesResources) {
  Netlist nl;
  Cell a;
  a.width = 2;
  a.height = 12;
  a.x = 49;
  a.y = 44;
  const CellId ia = nl.add_cell(a, "a");
  Cell b = a;
  const CellId ib = nl.add_cell(b, "b");  // identical location: zero bbox
  nl.add_net("n", 1.0, {{ia, 0, 0}, {ib, 0, 0}});
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  RudyOptions opts;
  opts.bins_x = opts.bins_y = 10;
  CongestionMap map(nl, opts);
  map.build(nl.snapshot());
  EXPECT_GT(map.peak_congestion(), 0.0);
}

TEST(Rudy, StatisticsAreConsistent) {
  Netlist nl = complx::testing::small_circuit(141, 1000);
  CongestionMap map(nl, {});
  map.build(nl.snapshot());
  EXPECT_GE(map.peak_congestion(), map.avg_congestion());
  EXPECT_GE(map.overcongested_fraction(0.0), map.overcongested_fraction(1.0));
  EXPECT_LE(map.overcongested_fraction(0.0), 1.0);
}

// -------------------------------------------------------------- inflate ----

TEST(Inflate, OnlyCongestedCellsInflate) {
  Netlist nl = complx::testing::small_circuit(142, 1000);
  // Pile the placement to manufacture congestion in the center.
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x + (p.x[id] - c.x) * 0.1;
    p.y[id] = c.y + (p.y[id] - c.y) * 0.1;
  }
  CongestionMap map(nl, {});
  map.build(p);
  InflationOptions opts;
  const Vec f = compute_inflation(nl, p, map, opts);
  size_t inflated = 0;
  for (CellId id : nl.movable_cells()) {
    EXPECT_GE(f[id], 1.0);
    EXPECT_LE(f[id], opts.max_factor);
    if (f[id] > 1.0) ++inflated;
  }
  EXPECT_GT(inflated, 0u);
  // Fixed cells untouched.
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    if (!nl.cell(id).movable()) {
      EXPECT_DOUBLE_EQ(f[id], 1.0);
    }
  }
}

TEST(Inflate, MacrosNeverInflate) {
  Netlist nl = complx::testing::small_circuit(143, 800, 3);
  CongestionMap map(nl, {});
  map.build(nl.snapshot());
  InflationOptions opts;
  opts.threshold = 0.0001;  // everything counts as congested
  const Vec f = compute_inflation(nl, nl.snapshot(), map, opts);
  for (CellId id : nl.movable_cells()) {
    if (nl.cell(id).is_macro()) {
      EXPECT_DOUBLE_EQ(f[id], 1.0);
    }
  }
}

// -------------------------------------------------- projection integration --

TEST(Lal, InflationSpreadsWider) {
  Netlist nl = complx::testing::small_circuit(144, 1200);
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  auto footprint = [&](double factor) {
    LookAheadLegalizer lal(nl, {});
    if (factor > 1.0) lal.set_inflation(Vec(nl.num_cells(), factor));
    const ProjectionResult res = lal.project(p);
    double xl = 1e18, xh = -1e18;
    for (CellId id : nl.movable_cells()) {
      xl = std::min(xl, res.anchors.x[id]);
      xh = std::max(xh, res.anchors.x[id]);
    }
    return xh - xl;
  };
  EXPECT_GT(footprint(2.0), 1.1 * footprint(1.0));
}

TEST(Lal, InflationSizeMismatchThrows) {
  Netlist nl = complx::testing::small_circuit(145, 400);
  LookAheadLegalizer lal(nl, {});
  EXPECT_THROW(lal.set_inflation(Vec(3, 1.0)), std::invalid_argument);
  lal.set_inflation({});  // clearing is fine
}

// ------------------------------------------------------ placer integration --

TEST(Routability, ModeReducesPeakCongestion) {
  // A congestion-prone design: high locality means big shared bounding
  // boxes when clusters pack tightly.
  GenParams prm;
  prm.num_cells = 2000;
  prm.seed = 146;
  prm.utilization = 0.75;  // tight
  Netlist nl = generate_circuit(prm);

  auto run = [&](bool routability) {
    ComplxConfig cfg;
    cfg.max_iterations = 45;
    cfg.routability.enabled = routability;
    ComplxPlacer placer(nl, cfg);
    const PlaceResult res = placer.place();
    CongestionMap map(nl, {});
    map.build(res.anchors);
    return std::pair<double, double>{map.peak_congestion(),
                                     hpwl(nl, res.anchors)};
  };
  const auto [peak_off, hpwl_off] = run(false);
  const auto [peak_on, hpwl_on] = run(true);
  // Routability mode must not increase peak congestion, at bounded HPWL
  // cost (SimPLR's trade-off).
  EXPECT_LE(peak_on, peak_off * 1.02);
  EXPECT_LE(hpwl_on, hpwl_off * 1.25);
}

}  // namespace
}  // namespace complx
