// Chaos suite (`ctest -L chaos`): fault injection for the crash-safe I/O
// layer. Three battlegrounds:
//   1. the snapshot format — every whole-file corruption class must map to
//      its SnapshotError rung (never UB, never a throw), and a payload bit
//      flip must cost exactly one record;
//   2. the atomic write protocol — every injected failure (short write,
//      fsync, rename, open, in-flight corruption) must leave the previous
//      destination intact and no temp litter;
//   3. the ExperienceStore + placer — corrupt stores quarantine and degrade
//      to cold starts, saves self-heal, warm starts beat cold iteration
//      counts on exact repeats, and a miss is bitwise identical to cold.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/placer.h"
#include "helpers.h"
#include "io/experience.h"
#include "io/snapshot.h"
#include "netlist/netlist.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Scratch-directory + byte-surgery helpers.

struct ScratchDir {
  fs::path dir;
  explicit ScratchDir(const std::string& name)
      : dir(fs::path(::testing::TempDir()) / ("complx_chaos_" + name)) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string file(const std::string& name) const {
    return (dir / name).string();
  }
  /// Files currently in the directory (for temp-litter assertions).
  std::vector<std::string> entries() const {
    std::vector<std::string> out;
    for (const auto& e : fs::directory_iterator(dir))
      out.push_back(e.path().filename().string());
    return out;
  }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return s;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint32_t read_u32(const std::string& s, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<unsigned char>(
             s[off + static_cast<size_t>(i)]))
         << (8 * i);
  return v;
}

void patch_u32(std::string& s, size_t off, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    s[off + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFFu);
}

/// Recomputes index + header CRCs after a deliberate index/header edit, so
/// the parser reaches the rung under test instead of failing on a CRC above
/// it (the forger's move a CRC alone cannot stop — structure checks must).
void reseal(std::string& img) {
  const uint32_t n = read_u32(img, 20);
  patch_u32(img, 40,
            crc32(img.data() + kSnapshotHeaderBytes,
                  static_cast<size_t>(n) * kSnapshotEntryBytes));
  patch_u32(img, 60, crc32(img.data(), 60));
}

SnapshotRecord make_record(uint64_t key, size_t cells) {
  SnapshotRecord r;
  r.key = key;
  r.topo = key * 1000 + 7;
  r.hpwl = 123.5 * static_cast<double>(key);
  r.target_density = 0.9;
  r.iterations = 12;
  r.saves = 2;
  for (size_t i = 0; i < cells; ++i) {
    r.x.push_back(static_cast<double>(i) + 0.25);
    r.y.push_back(-static_cast<double>(i) - 0.5);
  }
  // Bit-pattern edge cases the round trip must preserve exactly: signed
  // zero and a subnormal.
  r.x[0] = -0.0;
  r.y[0] = 4.9406564584124654e-324;
  return r;
}

/// testing::two_cell_chain with a movable pad-1 geometry: identical
/// connectivity (same topology hash), different job (fixed-cell position
/// and core extent feed netlist_job_hash).
Netlist chain_variant(double pad_x) {
  Netlist nl;
  Cell pad0;
  pad0.width = pad0.height = 0.0;
  pad0.x = 0.0;
  pad0.y = 6.0;
  pad0.kind = CellKind::Fixed;
  const CellId p0 = nl.add_cell(pad0, "pad0");

  Cell pad1 = pad0;
  pad1.x = pad_x;
  const CellId p1 = nl.add_cell(pad1, "pad1");

  Cell c;
  c.width = 2.0;
  c.height = 12.0;
  c.kind = CellKind::Movable;
  const CellId c0 = nl.add_cell(c, "c0");
  const CellId c1 = nl.add_cell(c, "c1");

  nl.add_net("e0", 1.0, {{p0, 0, 0}, {c0, 0, 0}});
  nl.add_net("e1", 1.0, {{c0, 0, 0}, {c1, 0, 0}});
  nl.add_net("e2", 1.0, {{c1, 0, 0}, {p1, 0, 0}});
  nl.set_core({0.0, 0.0, pad_x, 12.0});
  nl.finalize();
  return nl;
}

// ---------------------------------------------------------------------------
// Snapshot format: round trip + hashing.

TEST(SnapshotFormat, RoundTripIsBitwise) {
  std::vector<SnapshotRecord> recs = {make_record(5, 3), make_record(2, 1),
                                      make_record(9, 4)};
  const std::string img = serialize_snapshot(recs, 17);

  SnapshotStats stats;
  const SnapshotParseResult out = parse_snapshot(img, stats);
  ASSERT_EQ(out.error, SnapshotError::None) << out.detail;
  EXPECT_EQ(out.save_count, 17u);
  EXPECT_EQ(out.records_dropped, 0u);
  ASSERT_EQ(out.records.size(), 3u);
  // Sorted by key regardless of input order.
  EXPECT_EQ(out.records[0].key, 2u);
  EXPECT_EQ(out.records[1].key, 5u);
  EXPECT_EQ(out.records[2].key, 9u);
  const SnapshotRecord& got = out.records[1];
  const SnapshotRecord want = make_record(5, 3);
  EXPECT_EQ(got.topo, want.topo);
  EXPECT_EQ(got.hpwl, want.hpwl);
  EXPECT_EQ(got.target_density, want.target_density);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.saves, want.saves);
  testing::expect_vec_bitwise_equal(got.x, want.x, "record x");
  testing::expect_vec_bitwise_equal(got.y, want.y, "record y");
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.load_failures, 0u);
}

TEST(SnapshotFormat, SerializeRejectsLogicErrors) {
  SnapshotStats stats;
  std::vector<SnapshotRecord> dup = {make_record(4, 2), make_record(4, 2)};
  EXPECT_THROW(serialize_snapshot(dup, 1), std::invalid_argument);
  SnapshotRecord lop = make_record(3, 2);
  lop.y.pop_back();
  EXPECT_THROW(serialize_snapshot({lop}, 1), std::invalid_argument);
  (void)stats;
}

TEST(SnapshotFormat, JobHashIgnoresMovableStartPositions) {
  const Netlist nl = testing::two_cell_chain();
  const uint64_t before = netlist_job_hash(nl);

  Netlist moved = testing::two_cell_chain();
  Placement p = moved.snapshot();
  for (const CellId id : moved.movable_cells()) {
    p.x[id] += 3.0;
    p.y[id] += 1.0;
  }
  moved.apply(p);
  EXPECT_EQ(netlist_job_hash(moved), before)
      << "a re-submitted job must probe to the same record";
}

TEST(SnapshotFormat, TopologyHashSurvivesGeometryChangesJobHashDoesNot) {
  const Netlist a = chain_variant(30.0);
  const Netlist b = chain_variant(40.0);
  EXPECT_EQ(netlist_topology_hash(a), netlist_topology_hash(b));
  EXPECT_NE(netlist_job_hash(a), netlist_job_hash(b));
  // Different connectivity → different topology.
  const Netlist mesh = testing::mesh_netlist(3);
  EXPECT_NE(netlist_topology_hash(a), netlist_topology_hash(mesh));
}

// ---------------------------------------------------------------------------
// Snapshot format: the corruption ladder. Every class must be detected,
// reported as its own SnapshotError, counted, and yield zero records.

struct CorruptionCase {
  const char* name;
  SnapshotError want;
  std::string (*mutate)(std::string img);
};

std::string clean_image() {
  return serialize_snapshot({make_record(11, 3), make_record(22, 2)}, 4);
}

TEST(SnapshotCorruption, EveryWholeFileClassIsDetected) {
  const CorruptionCase cases[] = {
      {"empty file", SnapshotError::Truncated,
       [](std::string) { return std::string(); }},
      {"shorter than header", SnapshotError::Truncated,
       [](std::string img) { return img.substr(0, 20); }},
      {"flipped magic byte", SnapshotError::BadMagic,
       [](std::string img) {
         img[0] = static_cast<char>(img[0] ^ 0x40);
         return img;
       }},
      {"future version", SnapshotError::VersionSkew,
       [](std::string img) {
         patch_u32(img, 8, kSnapshotVersion + 1);
         return img;
       }},
      {"header bit flip", SnapshotError::BadHeader,
       [](std::string img) {
         img[45] = static_cast<char>(img[45] ^ 0x01);  // reserved region
         return img;
       }},
      {"forged entry size", SnapshotError::BadHeader,
       [](std::string img) {
         patch_u32(img, 16, 32);
         reseal(img);
         return img;
       }},
      {"truncated payload", SnapshotError::Truncated,
       [](std::string img) { return img.substr(0, img.size() - 1); }},
      {"trailing garbage", SnapshotError::BadHeader,
       [](std::string img) { return img + 'x'; }},
      {"index bit flip", SnapshotError::IndexCrc,
       [](std::string img) {
         img[kSnapshotHeaderBytes + 3] =
             static_cast<char>(img[kSnapshotHeaderBytes + 3] ^ 0x10);
         return img;
       }},
      {"swapped (unsorted) entries", SnapshotError::UnsortedKeys,
       [](std::string img) {
         const std::string a =
             img.substr(kSnapshotHeaderBytes, kSnapshotEntryBytes);
         const std::string b = img.substr(
             kSnapshotHeaderBytes + kSnapshotEntryBytes, kSnapshotEntryBytes);
         img.replace(kSnapshotHeaderBytes, kSnapshotEntryBytes, b);
         img.replace(kSnapshotHeaderBytes + kSnapshotEntryBytes,
                     kSnapshotEntryBytes, a);
         reseal(img);
         return img;
       }},
      {"duplicate keys", SnapshotError::UnsortedKeys,
       [](std::string img) {
         // Copy entry 0's key over entry 1's.
         img.replace(kSnapshotHeaderBytes + kSnapshotEntryBytes, 8,
                     img.substr(kSnapshotHeaderBytes, 8));
         reseal(img);
         return img;
       }},
      {"zero-cell record", SnapshotError::BadRecord,
       [](std::string img) {
         patch_u32(img, kSnapshotHeaderBytes + 24, 0);
         reseal(img);
         return img;
       }},
      {"payload range overflow", SnapshotError::BadRecord,
       [](std::string img) {
         patch_u32(img, kSnapshotHeaderBytes + 24, 0xFFFFFFFFu);
         reseal(img);
         return img;
       }},
  };

  for (const CorruptionCase& c : cases) {
    SnapshotStats stats;
    const SnapshotParseResult out = parse_snapshot(c.mutate(clean_image()),
                                                   stats);
    EXPECT_EQ(out.error, c.want)
        << c.name << ": got " << to_string(out.error) << " (" << out.detail
        << ")";
    EXPECT_TRUE(out.records.empty()) << c.name;
    EXPECT_FALSE(out.detail.empty()) << c.name;
    EXPECT_EQ(stats.loads, 1u) << c.name;
    EXPECT_EQ(stats.load_failures, 1u) << c.name;
    SnapshotStats expected_one;
    expected_one.count(c.want);
    // The counter for exactly this class must be the one that moved.
    EXPECT_EQ(stats.truncated, expected_one.truncated) << c.name;
    EXPECT_EQ(stats.bad_magic, expected_one.bad_magic) << c.name;
    EXPECT_EQ(stats.version_skew, expected_one.version_skew) << c.name;
    EXPECT_EQ(stats.bad_header, expected_one.bad_header) << c.name;
    EXPECT_EQ(stats.index_crc, expected_one.index_crc) << c.name;
    EXPECT_EQ(stats.unsorted_keys, expected_one.unsorted_keys) << c.name;
    EXPECT_EQ(stats.bad_record, expected_one.bad_record) << c.name;
  }
}

TEST(SnapshotCorruption, PayloadBitFlipDropsOnlyThatRecord) {
  std::string img = clean_image();
  // Payload starts after header + 2 entries; offset 0 belongs to the
  // smaller key (11), whose record is 3 cells = 48 bytes.
  const size_t payload_off =
      kSnapshotHeaderBytes + 2 * kSnapshotEntryBytes;
  img[payload_off + 5] = static_cast<char>(img[payload_off + 5] ^ 0x80);

  SnapshotStats stats;
  const SnapshotParseResult out = parse_snapshot(img, stats);
  EXPECT_EQ(out.error, SnapshotError::None) << out.detail;
  EXPECT_EQ(out.records_dropped, 1u);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].key, 22u);  // the undamaged record survives
  EXPECT_EQ(stats.record_crc, 1u);
  EXPECT_EQ(stats.load_failures, 0u);
}

// ---------------------------------------------------------------------------
// Atomic write protocol under injected faults.

TEST(AtomicWriteChaos, ShortWriteKeepsDestinationAndLeavesNoTemp) {
  ScratchDir d("short_write");
  const std::string path = d.file("out.bin");
  write_file_atomic(path, "previous content");

  IoFaultInjection faults;
  faults.short_write = [](size_t want) { return want / 2; };
  AtomicWriteOptions opts;
  opts.faults = &faults;
  EXPECT_THROW(write_file_atomic(path, "new content that must not land", opts),
               std::runtime_error);

  EXPECT_EQ(read_file(path), "previous content");
  EXPECT_EQ(d.entries(), std::vector<std::string>{"out.bin"});
}

TEST(AtomicWriteChaos, OpenFsyncRenameFaultsAllKeepPreviousContent) {
  ScratchDir d("io_faults");
  const std::string path = d.file("out.bin");
  write_file_atomic(path, "previous content");

  IoFaultInjection faults[3];
  faults[0].fail_open = [] { return true; };
  faults[1].fail_fsync = [] { return true; };
  faults[2].fail_rename = [] { return true; };
  for (const IoFaultInjection& f : faults) {
    AtomicWriteOptions opts;
    opts.faults = &f;
    EXPECT_THROW(write_file_atomic(path, "torn", opts), std::runtime_error);
    EXPECT_EQ(read_file(path), "previous content");
    EXPECT_EQ(d.entries(), std::vector<std::string>{"out.bin"});
  }
}

TEST(AtomicWriteChaos, WriterWithoutCommitWritesNothing) {
  ScratchDir d("no_commit");
  const std::string path = d.file("out.txt");
  {
    AtomicFileWriter w(path);
    w.stream() << "composed but never committed";
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(d.entries().empty());
}

// ---------------------------------------------------------------------------
// ExperienceStore: load/quarantine/self-heal/probe/evict under chaos.

ExperienceStore::Options store_opts(const std::string& path) {
  ExperienceStore::Options o;
  o.path = path;
  o.fsync = false;  // tmpfs test scratch; durability is exercised above
  return o;
}

TEST(ExperienceStoreChaos, MissingFileIsACleanEmptyStore) {
  ScratchDir d("missing");
  ExperienceStore store(store_opts(d.file("none.snap")));
  EXPECT_EQ(store.open(), SnapshotError::None);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.degraded());
  EXPECT_EQ(store.lookup(testing::two_cell_chain()).kind,
            ExperienceStore::MatchKind::Miss);
}

TEST(ExperienceStoreChaos, SaveThenReloadServesAnExactBitwiseHit) {
  ScratchDir d("roundtrip");
  const std::string path = d.file("exp.snap");
  const Netlist nl = testing::small_circuit(3, 300);
  const Placement p = nl.snapshot();
  const double hpwl = weighted_hpwl(nl, p);

  {
    ExperienceStore store(store_opts(path));
    ASSERT_EQ(store.open(), SnapshotError::None);
    EXPECT_TRUE(store.record(nl, p, hpwl, 7));
    EXPECT_FALSE(store.degraded());
  }

  ExperienceStore reloaded(store_opts(path));
  ASSERT_EQ(reloaded.open(), SnapshotError::None);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.save_count(), 1u);
  const ExperienceStore::Probe hit = reloaded.lookup(nl);
  ASSERT_EQ(hit.kind, ExperienceStore::MatchKind::Exact);
  ASSERT_NE(hit.record, nullptr);
  EXPECT_EQ(hit.record->iterations, 7u);
  EXPECT_EQ(hit.record->saves, 1u);
  EXPECT_EQ(hit.record->hpwl, hpwl);
  testing::expect_vec_bitwise_equal(hit.record->x, p.x, "stored x");
  testing::expect_vec_bitwise_equal(hit.record->y, p.y, "stored y");
}

TEST(ExperienceStoreChaos, TopologyMatchServesNearRepeatJobs) {
  ScratchDir d("topo");
  ExperienceStore store(store_opts(d.file("exp.snap")));
  ASSERT_EQ(store.open(), SnapshotError::None);

  const Netlist original = chain_variant(30.0);
  ASSERT_TRUE(store.record(original, original.snapshot(), 1.0, 5));

  const Netlist resized = chain_variant(40.0);  // same connectivity
  const ExperienceStore::Probe hit = store.lookup(resized);
  EXPECT_EQ(hit.kind, ExperienceStore::MatchKind::Topology);
  ASSERT_NE(hit.record, nullptr);
  EXPECT_EQ(hit.record->key, netlist_job_hash(original));
}

TEST(ExperienceStoreChaos, CorruptStoreQuarantinesDegradesAndSelfHeals) {
  ScratchDir d("quarantine");
  const std::string path = d.file("exp.snap");
  // Long enough to clear the header-size rung, so the magic check is what
  // rejects it.
  write_file(path,
             "this is certainly not a snapshot image, but it is at least "
             "sixty-four bytes of honest plain text");

  ExperienceStore store(store_opts(path));
  EXPECT_EQ(store.open(), SnapshotError::BadMagic);
  EXPECT_TRUE(store.degraded());
  EXPECT_FALSE(store.degraded_reason().empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.stats().bad_magic, 1u);
  // Evidence preserved, live path cleared.
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  EXPECT_FALSE(fs::exists(path));

  // The next save self-heals the live path...
  const Netlist nl = testing::two_cell_chain();
  EXPECT_TRUE(store.record(nl, nl.snapshot(), 1.0, 4));
  EXPECT_TRUE(fs::exists(path));
  // ...into a store a fresh process opens cleanly.
  ExperienceStore healed(store_opts(path));
  EXPECT_EQ(healed.open(), SnapshotError::None);
  EXPECT_EQ(healed.lookup(nl).kind, ExperienceStore::MatchKind::Exact);
}

TEST(ExperienceStoreChaos, DroppedRecordDegradesButKeepsServing) {
  ScratchDir d("partial");
  const std::string path = d.file("exp.snap");
  const Netlist a = chain_variant(30.0);
  const Netlist b = testing::small_circuit(5, 100);
  {
    ExperienceStore store(store_opts(path));
    ASSERT_EQ(store.open(), SnapshotError::None);
    ASSERT_TRUE(store.record(a, a.snapshot(), 1.0, 3));
    ASSERT_TRUE(store.record(b, b.snapshot(), 2.0, 4));
  }
  // Flip one payload byte: exactly one record's CRC dies.
  std::string img = read_file(path);
  const size_t payload_off = kSnapshotHeaderBytes + 2 * kSnapshotEntryBytes;
  ASSERT_GT(img.size(), payload_off);
  img[payload_off] = static_cast<char>(img[payload_off] ^ 0x01);
  write_file(path, img);

  ExperienceStore store(store_opts(path));
  EXPECT_EQ(store.open(), SnapshotError::None);
  EXPECT_TRUE(store.degraded());  // data loss is never silent
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().record_crc, 1u);
  // Whichever record survived still probes exactly.
  const bool a_hit =
      store.lookup(a).kind == ExperienceStore::MatchKind::Exact;
  const bool b_hit =
      store.lookup(b).kind == ExperienceStore::MatchKind::Exact;
  EXPECT_NE(a_hit, b_hit);
}

TEST(ExperienceStoreChaos, FailedSaveDegradesButPreviousStoreSurvives) {
  ScratchDir d("failed_save");
  const std::string path = d.file("exp.snap");
  const Netlist a = testing::small_circuit(1, 100);
  const Netlist b = testing::small_circuit(2, 100);

  bool inject = false;
  IoFaultInjection faults;
  faults.fail_rename = [&inject] { return inject; };
  ExperienceStore::Options opts = store_opts(path);
  opts.faults = &faults;

  ExperienceStore store(opts);
  ASSERT_EQ(store.open(), SnapshotError::None);
  ASSERT_TRUE(store.record(a, a.snapshot(), 1.0, 3));

  inject = true;
  EXPECT_FALSE(store.record(b, b.snapshot(), 2.0, 4));
  EXPECT_TRUE(store.degraded());
  // In-memory record kept: this session can still warm-start b.
  EXPECT_EQ(store.lookup(b).kind, ExperienceStore::MatchKind::Exact);

  // On disk: the pre-failure store, fully intact (atomic protocol).
  ExperienceStore reloaded(store_opts(path));
  ASSERT_EQ(reloaded.open(), SnapshotError::None);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.lookup(a).kind, ExperienceStore::MatchKind::Exact);
  EXPECT_EQ(reloaded.lookup(b).kind, ExperienceStore::MatchKind::Miss);
}

TEST(ExperienceStoreChaos, InFlightCorruptionIsCaughtAtNextOpen) {
  ScratchDir d("in_flight");
  const std::string path = d.file("exp.snap");
  IoFaultInjection faults;
  faults.corrupt_bytes = [](std::string& bytes) {
    bytes[61] = static_cast<char>(bytes[61] ^ 0x01);  // inside header CRC
  };
  ExperienceStore::Options opts = store_opts(path);
  opts.faults = &faults;

  ExperienceStore store(opts);
  ASSERT_EQ(store.open(), SnapshotError::None);
  const Netlist nl = testing::two_cell_chain();
  // The write itself succeeds — the protocol cannot see in-flight damage.
  EXPECT_TRUE(store.record(nl, nl.snapshot(), 1.0, 3));

  // Only the reader's validation can: the next open detects, quarantines.
  ExperienceStore reloaded(store_opts(path));
  EXPECT_EQ(reloaded.open(), SnapshotError::BadHeader);
  EXPECT_TRUE(reloaded.degraded());
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
}

TEST(ExperienceStoreChaos, EvictionDropsLeastSavedRecordFirst) {
  ExperienceStore::Options opts;  // in-memory only
  opts.persist = false;
  opts.max_records = 2;
  ExperienceStore store(opts);

  const Netlist n1 = testing::small_circuit(1, 100);
  const Netlist n2 = testing::small_circuit(2, 100);
  const Netlist n3 = testing::small_circuit(3, 100);
  ASSERT_TRUE(store.record(n1, n1.snapshot(), 1.0, 3));
  ASSERT_TRUE(store.record(n1, n1.snapshot(), 1.0, 3));  // saves = 2
  ASSERT_TRUE(store.record(n2, n2.snapshot(), 2.0, 3));
  ASSERT_TRUE(store.record(n3, n3.snapshot(), 3.0, 3));  // evicts n2

  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.lookup(n1).kind, ExperienceStore::MatchKind::Exact);
  EXPECT_EQ(store.lookup(n2).kind, ExperienceStore::MatchKind::Miss);
  EXPECT_EQ(store.lookup(n3).kind, ExperienceStore::MatchKind::Exact);
}

// ---------------------------------------------------------------------------
// Placer integration: warm starts help, misses change nothing.

ComplxConfig chaos_config() {
  ComplxConfig cfg;
  cfg.max_iterations = 60;
  cfg.min_iterations = 5;
  return cfg;
}

TEST(ExperienceWarmStart, ExactRepeatResumesAndConvergesFaster) {
  const Netlist nl = testing::small_circuit(71, 1200);
  const PlaceResult cold = ComplxPlacer(nl, chaos_config()).place();
  ASSERT_FALSE(cold.failed) << cold.failure;
  ASSERT_EQ(cold.stop, StopReason::Converged);
  EXPECT_FALSE(cold.warm_started);

  ExperienceStore::Options opts;
  opts.persist = false;
  ExperienceStore store(opts);
  ASSERT_TRUE(store.record(nl, cold.anchors,
                           weighted_hpwl(nl, cold.anchors), cold.iterations));

  ComplxConfig cfg = chaos_config();
  cfg.experience = &store;
  const PlaceResult warm = ComplxPlacer(nl, cfg).place();
  ASSERT_FALSE(warm.failed) << warm.failure;
  EXPECT_TRUE(warm.warm_started);
  EXPECT_LT(warm.iterations, cold.iterations)
      << "an exact repeat must need fewer solver iterations than cold";
  EXPECT_LT(warm.final_overflow, 0.25);
}

TEST(ExperienceWarmStart, MissIsBitwiseIdenticalToColdStart) {
  const Netlist other = testing::small_circuit(11, 600);
  const Netlist nl = testing::small_circuit(12, 600);

  ExperienceStore::Options opts;
  opts.persist = false;
  ExperienceStore store(opts);
  ASSERT_TRUE(store.record(other, other.snapshot(), 1.0, 5));
  ASSERT_EQ(store.lookup(nl).kind, ExperienceStore::MatchKind::Miss);

  const PlaceResult cold = ComplxPlacer(nl, chaos_config()).place();
  ComplxConfig cfg = chaos_config();
  cfg.experience = &store;
  const PlaceResult probed = ComplxPlacer(nl, cfg).place();

  EXPECT_FALSE(probed.warm_started);
  EXPECT_EQ(probed.iterations, cold.iterations);
  testing::expect_placements_bitwise_equal(probed.anchors, cold.anchors);
  testing::expect_placements_bitwise_equal(probed.lower_bound,
                                           cold.lower_bound);
}

}  // namespace
}  // namespace complx
