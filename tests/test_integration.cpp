// End-to-end flow tests: generate -> ComPLx global placement -> legalize ->
// detailed placement -> evaluate. These exercise the same pipeline the
// Table 1 / Table 2 benches run.
#include <gtest/gtest.h>

#include "baseline/fastplace_style.h"
#include "core/placer.h"
#include "density/metric.h"
#include "dp/detailed.h"
#include "helpers.h"
#include "legal/tetris.h"
#include "projection/regions.h"
#include "timing/sta.h"
#include "timing/weighting.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

struct FlowResult {
  double lower_bound_hpwl;
  double legal_hpwl;
  double final_hpwl;
  bool legal;
};

FlowResult run_flow(const Netlist& nl, const ComplxConfig& cfg) {
  ComplxPlacer placer(nl, cfg);
  const PlaceResult gp = placer.place();
  Placement p = gp.anchors;
  TetrisLegalizer(nl).legalize(p);
  const double legal_hpwl = hpwl(nl, p);
  DetailedPlacer(nl).refine(p);
  return {hpwl(nl, gp.lower_bound), legal_hpwl, hpwl(nl, p),
          TetrisLegalizer::is_legal(nl, p)};
}

struct FlowCase {
  uint64_t seed;
  size_t cells;
  size_t macros;
  double density;
};

class FullFlow : public ::testing::TestWithParam<FlowCase> {};

TEST_P(FullFlow, ProducesLegalResultBoundedByLowerBound) {
  const auto [seed, cells, macros, density] = GetParam();
  Netlist nl = complx::testing::small_circuit(seed, cells, macros, density);
  ComplxConfig cfg;
  cfg.max_iterations = 50;
  const FlowResult res = run_flow(nl, cfg);
  EXPECT_TRUE(res.legal);
  // Lower-bound placement under-estimates the final legal cost.
  EXPECT_GT(res.final_hpwl, 0.8 * res.lower_bound_hpwl);
  // Detailed placement must not lose ground.
  EXPECT_LE(res.final_hpwl, res.legal_hpwl * (1 + 1e-9));
  // The whole flow lands within a reasonable factor of the lower bound.
  EXPECT_LT(res.final_hpwl, 3.0 * res.lower_bound_hpwl);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, FullFlow,
    ::testing::Values(FlowCase{201, 800, 0, 1.0},
                      FlowCase{202, 1500, 0, 1.0},
                      FlowCase{203, 1000, 2, 0.8},
                      FlowCase{204, 1200, 3, 0.5}));

TEST(Flow, ComplxBeatsOrMatchesBaselineOnHpwl) {
  // The paper's headline: ComPLx outperforms the FastPlace-style flow.
  Netlist nl = complx::testing::small_circuit(211, 2000);
  ComplxConfig cfg;
  cfg.max_iterations = 60;
  const FlowResult complx_res = run_flow(nl, cfg);

  FastPlaceConfig fp_cfg;
  const FastPlaceResult fp = FastPlaceStylePlacer(nl, fp_cfg).place();
  Placement p = fp.placement;
  TetrisLegalizer(nl).legalize(p);
  DetailedPlacer(nl).refine(p);
  const double fp_hpwl = hpwl(nl, p);

  EXPECT_LT(complx_res.final_hpwl, 1.10 * fp_hpwl);
  EXPECT_TRUE(complx_res.legal);
}

TEST(Flow, ScaledHpwlEvaluableOnDensityDesign) {
  Netlist nl = complx::testing::small_circuit(212, 1200, 2, 0.8);
  ComplxConfig cfg;
  cfg.max_iterations = 50;
  ComplxPlacer placer(nl, cfg);
  Placement p = placer.place().anchors;
  TetrisLegalizer(nl).legalize(p);
  const DensityMetric m = evaluate_scaled_hpwl(nl, p);
  EXPECT_GT(m.hpwl, 0.0);
  EXPECT_GE(m.scaled_hpwl, m.hpwl);
  // Density-targeted placement keeps the overflow penalty moderate.
  EXPECT_LT(m.overflow_percent, 60.0);
}

TEST(Flow, RegionConstraintSatisfiedEndToEnd) {
  // Section S5 flow: constrain a set of cells to a box; the final anchors
  // must satisfy it.
  GenParams prm;
  prm.num_cells = 800;
  prm.seed = 213;
  prm.utilization = 0.5;
  Netlist nl = [&] {
    // Rebuild with a region: generator does not create regions itself.
    Netlist raw = generate_circuit(prm);
    Netlist with;
    const RegionId r =
        with.add_region({"clk", {raw.core().xl + 10, raw.core().yl + 10,
                                 raw.core().xl + raw.core().width() / 3,
                                 raw.core().yl + raw.core().height() / 3}});
    for (CellId id = 0; id < raw.num_cells(); ++id) {
      Cell c = raw.cell(id);
      if (c.movable() && !c.is_macro() && id % 16 == 0) c.region = r;
      with.add_cell(c, raw.cell_name(id));
    }
    for (NetId e = 0; e < raw.num_nets(); ++e) {
      const Net& n = raw.net(e);
      std::vector<Pin> pins;
      for (uint32_t k = 0; k < n.num_pins; ++k)
        pins.push_back(raw.pin(n.first_pin + k));
      with.add_net(raw.net_name(e), n.weight, pins);
    }
    with.set_core(raw.core());
    with.set_target_density(raw.target_density());
    with.finalize();
    return with;
  }();

  ComplxConfig cfg;
  cfg.max_iterations = 50;
  ComplxPlacer placer(nl, cfg);
  const PlaceResult res = placer.place();
  EXPECT_TRUE(regions_satisfied(nl, res.anchors, 1e-6));
}

TEST(Flow, TimingWeightsShortenCriticalPath) {
  // Section S6 flow in miniature: measure a critical path, boost its nets,
  // re-place, and verify the path got shorter without HPWL blow-up.
  Netlist nl = complx::testing::small_circuit(214, 1000);
  ComplxConfig cfg;
  cfg.max_iterations = 40;

  const PlaceResult first = ComplxPlacer(nl, cfg).place();
  const std::vector<char> regs = choose_registers(nl, 0.1, 3);
  TimingGraph tg(nl, regs, {});
  const TimingReport rep = tg.analyze(first.anchors);
  const auto path = tg.critical_path(first.anchors, rep);
  const auto nets = tg.path_nets(path);
  ASSERT_FALSE(nets.empty());

  auto path_len = [&](const Placement& p) {
    double s = 0.0;
    for (NetId e : nets) s += net_hpwl(nl, p, e);
    return s;
  };
  const double before_len = path_len(first.anchors);
  const double before_hpwl = hpwl(nl, first.anchors);

  scale_net_weights(nl, nets, 20.0);
  const PlaceResult second = ComplxPlacer(nl, cfg).place();
  const double after_len = path_len(second.anchors);
  const double after_hpwl = hpwl(nl, second.anchors);

  EXPECT_LT(after_len, before_len);
  EXPECT_LT(after_hpwl, 1.15 * before_hpwl);  // overall HPWL ~unaffected
}

TEST(Flow, DeterministicEndToEnd) {
  Netlist nl = complx::testing::small_circuit(215, 800);
  ComplxConfig cfg;
  cfg.max_iterations = 30;
  const FlowResult a = run_flow(nl, cfg);
  const FlowResult b = run_flow(nl, cfg);
  EXPECT_DOUBLE_EQ(a.final_hpwl, b.final_hpwl);
}

}  // namespace
}  // namespace complx
