#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>

#include "density/grid.h"
#include "density/metric.h"
#include "density/penalty.h"
#include "helpers.h"
#include "util/parallel.h"
#include "util/rng.h"

// Global operator new/delete replacement for the cached-grid
// allocation-freedom regression below (same pattern as test_linalg.cpp).
// The counter only ticks while armed, so the rest of the binary is
// unaffected. Must live at global scope.
namespace alloc_counter {
std::atomic<bool> armed{false};
std::atomic<size_t> news{0};

size_t drain() {
  armed.store(false, std::memory_order_relaxed);
  return news.exchange(0, std::memory_order_relaxed);
}
void arm() { armed.store(true, std::memory_order_relaxed); }
}  // namespace alloc_counter

// GCC pairs the malloc inside the replaced operator new with deletes at
// call sites and (wrongly) reports a mismatch; every allocation in this
// binary goes through these replacements, so malloc/free always pair up.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t sz) {
  if (alloc_counter::armed.load(std::memory_order_relaxed))
    alloc_counter::news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace complx {
namespace {

/// One 10x10 movable cell in a 100x100 core with a 10x10 grid.
Netlist one_cell_core() {
  Netlist nl;
  Cell c;
  c.width = 10;
  c.height = 10;
  c.x = 0;
  c.y = 0;
  nl.add_cell(c, "a");
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  return nl;
}

TEST(DensityGrid, CapacityIsBinAreaWithoutBlockage) {
  Netlist nl = one_cell_core();
  DensityGrid g(nl, 10, 10);
  EXPECT_DOUBLE_EQ(g.bin_width(), 10.0);
  EXPECT_DOUBLE_EQ(g.bin_height(), 10.0);
  for (size_t j = 0; j < 10; ++j)
    for (size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(g.capacity(i, j), 100.0);
}

TEST(DensityGrid, FixedBlockageReducesCapacity) {
  Netlist nl;
  Cell blk;
  blk.width = 10;
  blk.height = 10;
  blk.x = 0;
  blk.y = 0;
  blk.kind = CellKind::Fixed;
  nl.add_cell(blk, "blk");
  Cell c;
  c.width = 2;
  c.height = 2;
  nl.add_cell(c, "a");
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  DensityGrid g(nl, 10, 10);
  EXPECT_DOUBLE_EQ(g.capacity(0, 0), 0.0);  // fully blocked bin
  EXPECT_DOUBLE_EQ(g.capacity(1, 0), 100.0);
}

TEST(DensityGrid, UsageSplitsAcrossBins) {
  Netlist nl = one_cell_core();
  Placement p = nl.snapshot();
  // Center the 10x10 cell at a bin corner: area splits 25/25/25/25.
  p.x[0] = 10.0;
  p.y[0] = 10.0;
  DensityGrid g(nl, 10, 10);
  g.build(p);
  EXPECT_DOUBLE_EQ(g.usage(0, 0), 25.0);
  EXPECT_DOUBLE_EQ(g.usage(1, 0), 25.0);
  EXPECT_DOUBLE_EQ(g.usage(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(g.usage(1, 1), 25.0);
}

TEST(DensityGrid, TotalUsageEqualsMovableAreaInsideCore) {
  Netlist nl = complx::testing::small_circuit(41, 500);
  const Placement p = nl.snapshot();
  DensityGrid g(nl, 16, 16);
  g.build(p);
  double total = 0.0;
  for (size_t j = 0; j < 16; ++j)
    for (size_t i = 0; i < 16; ++i) total += g.usage(i, j);
  EXPECT_NEAR(total, nl.movable_area(), 1e-6 * nl.movable_area());
}

TEST(DensityGrid, OverflowAndFeasibility) {
  Netlist nl = one_cell_core();
  Placement p = nl.snapshot();
  p.x[0] = 5.0;
  p.y[0] = 5.0;  // entirely inside bin (0, 0)
  DensityGrid g(nl, 10, 10);
  g.build(p);
  // usage(0,0) = 100, capacity = 100, gamma = 0.5 -> overflow 50.
  EXPECT_DOUBLE_EQ(g.overflow(0, 0, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(g.total_overflow(0.5), 50.0);
  EXPECT_FALSE(g.feasible(0.5));
  EXPECT_TRUE(g.feasible(1.0));
}

TEST(DensityGrid, BinLookupClamps) {
  Netlist nl = one_cell_core();
  DensityGrid g(nl, 10, 10);
  EXPECT_EQ(g.bin_x_of(-5.0), 0u);
  EXPECT_EQ(g.bin_x_of(95.0), 9u);
  EXPECT_EQ(g.bin_x_of(1000.0), 9u);
  EXPECT_EQ(g.bin_y_of(15.0), 1u);
}

TEST(DensityGrid, FreeAreaInRectIntegrates) {
  Netlist nl = one_cell_core();
  DensityGrid g(nl, 10, 10);
  EXPECT_NEAR(g.free_area_in({0, 0, 100, 100}), 100.0 * 100.0, 1e-9);
  EXPECT_NEAR(g.free_area_in({0, 0, 50, 100}), 50.0 * 100.0, 1e-9);
  // Half-bin slice: uniform-within-bin assumption gives exact half.
  EXPECT_NEAR(g.free_area_in({0, 0, 5, 10}), 50.0, 1e-9);
}

TEST(DensityGrid, UsageInRectTracksDeposits) {
  Netlist nl = one_cell_core();
  Placement p = nl.snapshot();
  p.x[0] = 5.0;
  p.y[0] = 5.0;
  DensityGrid g(nl, 10, 10);
  g.build(p);
  EXPECT_NEAR(g.usage_in({0, 0, 10, 10}), 100.0, 1e-9);
  EXPECT_NEAR(g.usage_in({0, 0, 100, 100}), 100.0, 1e-9);
  EXPECT_NEAR(g.usage_in({50, 50, 100, 100}), 0.0, 1e-9);
}

TEST(DensityGrid, BuildFromRectsMatchesBuild) {
  Netlist nl = complx::testing::small_circuit(42, 300);
  const Placement p = nl.snapshot();
  DensityGrid a(nl, 8, 8), b(nl, 8, 8);
  a.build(p);
  std::vector<Rect> rects;
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    rects.push_back({p.x[id] - c.width / 2, p.y[id] - c.height / 2,
                     p.x[id] + c.width / 2, p.y[id] + c.height / 2});
  }
  b.build_from_rects(rects);
  for (size_t j = 0; j < 8; ++j)
    for (size_t i = 0; i < 8; ++i)
      EXPECT_NEAR(a.usage(i, j), b.usage(i, j), 1e-9);
}

TEST(DensityGrid, ZeroBinsThrows) {
  Netlist nl = one_cell_core();
  EXPECT_THROW(DensityGrid(nl, 0, 4), std::invalid_argument);
}

// --------------------------------------------------------------- metric ----

TEST(Metric, NoOverflowMeansScaledEqualsPlain) {
  Netlist nl = complx::testing::small_circuit(43, 400);
  // Spread-out initial placement from the generator is roughly uniform.
  nl.set_target_density(1.0);
  const DensityMetric m = evaluate_scaled_hpwl(nl, nl.snapshot());
  EXPECT_GE(m.scaled_hpwl, m.hpwl);
  EXPECT_LT(m.overflow_percent, 40.0);  // sanity: not everything overflows
}

TEST(Metric, PileUpIsPenalized) {
  Netlist nl = complx::testing::small_circuit(44, 400);
  Placement piled = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    piled.x[id] = c.x;
    piled.y[id] = c.y;
  }
  const DensityMetric spread = evaluate_scaled_hpwl(nl, nl.snapshot());
  const DensityMetric pile = evaluate_scaled_hpwl(nl, piled);
  EXPECT_GT(pile.overflow_percent, spread.overflow_percent);
  EXPECT_GT(pile.scaled_hpwl / std::max(pile.hpwl, 1e-9), 1.2);
}

TEST(Metric, RespectsExplicitBins) {
  Netlist nl = complx::testing::small_circuit(45, 300);
  const DensityMetric coarse = evaluate_scaled_hpwl(nl, nl.snapshot(), 2, 2);
  const DensityMetric fine = evaluate_scaled_hpwl(nl, nl.snapshot(), 64, 64);
  // Finer grids can only expose more (or equal) overflow.
  EXPECT_GE(fine.overflow_percent + 1e-9, coarse.overflow_percent);
}


// ---------------------------------------------------------------------------
// Summed-area-table query path (DensityOptions::use_prefix_sums, default on)
// ---------------------------------------------------------------------------

/// The SAT and loop paths compute the same sum with a different FP
/// association, so the meaningful tolerance is absolute, scaled by the
/// grand total of the field (cancellation in the 4-corner query is bounded
/// by eps times the table's largest entry).
TEST(DensityGridPrefix, MatchesLoopOnRandomRects) {
  const Netlist nl = complx::testing::small_circuit(23, 3000, 1);
  const Placement p = nl.snapshot();
  DensityOptions loop_opts;
  loop_opts.use_prefix_sums = false;
  DensityGrid fast(nl, 33, 47);  // non-square on purpose
  DensityGrid slow(nl, 33, 47, loop_opts);
  ASSERT_TRUE(fast.options().use_prefix_sums);
  ASSERT_FALSE(slow.options().use_prefix_sums);
  fast.build(p);
  slow.build(p);

  const Rect core = nl.core();
  const double cap_scale = std::max(1.0, slow.free_area_in(core));
  const double use_scale = std::max(1.0, slow.usage_in(core));
  Rng rng(99);
  for (int t = 0; t < 500; ++t) {
    const double margin = 0.05 * core.width();
    double xa = rng.uniform(core.xl - margin, core.xh + margin);
    double xb = rng.uniform(core.xl - margin, core.xh + margin);
    double ya = rng.uniform(core.yl - margin, core.yh + margin);
    double yb = rng.uniform(core.yl - margin, core.yh + margin);
    const Rect r{std::min(xa, xb), std::min(ya, yb), std::max(xa, xb),
                 std::max(ya, yb)};
    EXPECT_NEAR(fast.free_area_in(r), slow.free_area_in(r), 1e-9 * cap_scale)
        << "rect " << t;
    EXPECT_NEAR(fast.usage_in(r), slow.usage_in(r), 1e-9 * use_scale)
        << "rect " << t;
  }
}

TEST(DensityGridPrefix, SpanSumsMatchPerBinLoops) {
  const Netlist nl = complx::testing::small_circuit(24, 2000, 1);
  const Placement p = nl.snapshot();
  DensityOptions loop_opts;
  loop_opts.use_prefix_sums = false;
  DensityGrid fast(nl, 20, 20);
  DensityGrid slow(nl, 20, 20, loop_opts);
  fast.build(p);
  slow.build(p);
  const double cap_scale =
      std::max(1.0, slow.capacity_sum(0, 0, 19, 19));
  const double use_scale = std::max(1.0, slow.usage_sum(0, 0, 19, 19));
  Rng rng(7);
  for (int t = 0; t < 300; ++t) {
    size_t i0 = static_cast<size_t>(rng.uniform_index(20));
    size_t i1 = static_cast<size_t>(rng.uniform_index(20));
    size_t j0 = static_cast<size_t>(rng.uniform_index(20));
    size_t j1 = static_cast<size_t>(rng.uniform_index(20));
    if (i1 < i0) std::swap(i0, i1);
    if (j1 < j0) std::swap(j0, j1);
    EXPECT_NEAR(fast.capacity_sum(i0, j0, i1, j1),
                slow.capacity_sum(i0, j0, i1, j1), 1e-9 * cap_scale);
    EXPECT_NEAR(fast.usage_sum(i0, j0, i1, j1),
                slow.usage_sum(i0, j0, i1, j1), 1e-9 * use_scale);
  }
}

TEST(DensityGridPrefix, ExactOnRepresentableFractions) {
  // Round-number fixture: bin edges, capacities, and the query's fractional
  // bin coverages are all exact in binary, so the SAT path must agree with
  // the loop to the last bit.
  Netlist nl = one_cell_core();
  Placement p = nl.snapshot();
  p.x[0] = 10.0;
  p.y[0] = 10.0;
  DensityOptions loop_opts;
  loop_opts.use_prefix_sums = false;
  DensityGrid fast(nl, 10, 10);
  DensityGrid slow(nl, 10, 10, loop_opts);
  fast.build(p);
  slow.build(p);
  const Rect queries[] = {{0, 0, 50, 50},
                          {0, 0, 45, 45},
                          {5, 5, 12.5, 17.5},
                          {-10, -10, 200, 200},
                          {7.5, 12.5, 7.5, 30}};
  for (const Rect& r : queries) {
    EXPECT_DOUBLE_EQ(fast.free_area_in(r), slow.free_area_in(r));
    EXPECT_DOUBLE_EQ(fast.usage_in(r), slow.usage_in(r));
  }
}

TEST(DensityGrid, NonFiniteCoordinateClampsToValidBin) {
  // bin_x_of/bin_y_of used to floor-then-cast, which is undefined behavior
  // on NaN/inf input (caught by ubsan); the guard clamps instead.
  Netlist nl = one_cell_core();
  DensityGrid g(nl, 10, 10);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(g.bin_x_of(nan), 0u);
  EXPECT_EQ(g.bin_y_of(nan), 0u);
  EXPECT_EQ(g.bin_x_of(-inf), 0u);
  EXPECT_EQ(g.bin_y_of(-inf), 0u);
  EXPECT_EQ(g.bin_x_of(inf), 9u);
  EXPECT_EQ(g.bin_y_of(inf), 9u);
  // Finite inputs behave exactly as before.
  EXPECT_EQ(g.bin_x_of(-5.0), 0u);
  EXPECT_EQ(g.bin_x_of(0.0), 0u);
  EXPECT_EQ(g.bin_x_of(55.0), 5u);
  EXPECT_EQ(g.bin_x_of(100.0), 9u);
  EXPECT_EQ(g.bin_x_of(1e12), 9u);
}

// ---------------------------------------------------------------------------
// DensityPenalty hot-path regressions (the "spread" DensityBackend)
// ---------------------------------------------------------------------------

TEST(DensityPenalty, OverflowRatioReusesCachedGrid) {
  // overflow_ratio used to construct a fresh DensityGrid — including the
  // full fixed-blockage scan — on EVERY call. The cached grid only
  // re-deposits the movable field, which on a small serial fixture reuses
  // the existing buffers entirely.
  const size_t prev = global_threads();
  set_global_threads(1);
  Netlist nl = complx::testing::small_circuit(51, 200);
  const Placement p = nl.snapshot();
  DensityPenalty pen(nl, {});
  (void)pen.overflow_ratio(p);  // warm-up: grid constructed and sized

  alloc_counter::arm();
  const double r1 = pen.overflow_ratio(p);
  const double r2 = pen.overflow_ratio(p);
  const size_t allocations = alloc_counter::drain();
  set_global_threads(prev);
  EXPECT_EQ(r1, r2);
  // The pre-fix code performed dozens of allocations per call (five grid
  // field vectors plus the blockage scan scratch, twice). The cached path's
  // only heap traffic is the std::function wrapper around the deposit
  // lambda.
  EXPECT_LE(allocations, 4u)
      << "overflow_ratio is rebuilding its DensityGrid again";
}

TEST(DensityPenalty, OffCoreCellsKeepTheirAreaAndAreCounted) {
  // Pre-fix behavior: an off-core center produced an empty bins_touching
  // window, the wsum guard dropped the cell's whole area, and the pile-up
  // at the boundary was invisible to the penalty (value stayed 0).
  Netlist nl = complx::testing::small_circuit(52, 60);
  Placement p = nl.snapshot();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = nl.core().xh + 500.0;  // far off the right edge
    p.y[id] = nl.core().center().y;
  }
  DensityPenalty pen(nl, {});
  Vec gx, gy;
  const double value = pen.value_and_grad(p, gx, gy);
  EXPECT_GT(value, 0.0)
      << "area of off-core cells vanished from the density field";
  EXPECT_EQ(pen.stats().clamped_cells, nl.num_movable());
  // The clamped pile sits on the right edge: the gradient must push the
  // cells back toward the core, not be silently zero.
  double gsum = 0.0;
  for (CellId id : nl.movable_cells()) {
    EXPECT_TRUE(std::isfinite(gx[id]));
    gsum += std::abs(gx[id]) + std::abs(gy[id]);
  }
  EXPECT_GT(gsum, 0.0);
}

TEST(DensityPenalty, NonFiniteCenterIsDefinedAndCounted) {
  Netlist nl = complx::testing::small_circuit(53, 40);
  Placement p = nl.snapshot();
  const CellId sick = nl.movable_cells()[0];
  p.x[sick] = std::numeric_limits<double>::quiet_NaN();
  DensityPenalty pen(nl, {});
  Vec gx, gy;
  const double value = pen.value_and_grad(p, gx, gy);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_EQ(pen.stats().clamped_cells, 1u);
  for (CellId id : nl.movable_cells()) {
    EXPECT_TRUE(std::isfinite(gx[id]));
    EXPECT_TRUE(std::isfinite(gy[id]));
  }
}

TEST(DensityPenalty, GridOptionsReachTheInternalGrid) {
  // The internal grid used to be constructed with default DensityOptions,
  // silently ignoring use_prefix_sums=false ablation configs.
  Netlist nl = complx::testing::small_circuit(54, 100);
  DensityPenaltyOptions on;
  on.grid.use_prefix_sums = true;
  DensityPenaltyOptions off;
  off.grid.use_prefix_sums = false;
  DensityPenalty pen_on(nl, on);
  DensityPenalty pen_off(nl, off);
  EXPECT_TRUE(pen_on.grid().options().use_prefix_sums);
  EXPECT_FALSE(pen_off.grid().options().use_prefix_sums);
  // Both query paths agree on the metric itself.
  const Placement p = nl.snapshot();
  EXPECT_NEAR(pen_on.overflow_ratio(p), pen_off.overflow_ratio(p), 1e-12);
}

}  // namespace
}  // namespace complx
