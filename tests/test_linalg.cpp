#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cg.h"
#include "linalg/sparse.h"
#include "util/rng.h"

namespace complx {
namespace {

// ------------------------------------------------------------- vectors ----

TEST(Vec, DotAndNorm) {
  Vec a{1, 2, 3}, b{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
}

TEST(Vec, Axpy) {
  Vec x{1, 2}, y{10, 20};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(Vec, Xpay) {
  Vec x{1, 2}, y{10, 20};
  xpay(y, 3.0, x);  // x = 3x + y
  EXPECT_DOUBLE_EQ(x[0], 13.0);
  EXPECT_DOUBLE_EQ(x[1], 26.0);
}

TEST(Vec, Distances) {
  EXPECT_DOUBLE_EQ(l1_dist(Vec{0, 0}, Vec{3, -4}), 7.0);
  EXPECT_DOUBLE_EQ(linf_dist(Vec{0, 0}, Vec{3, -4}), 4.0);
}

// ----------------------------------------------------------------- CSR ----

TEST(Csr, FromTripletsMergesDuplicates) {
  TripletList t(3);
  t.add_diag(0, 1.0);
  t.add_diag(0, 2.0);  // duplicate: must sum to 3
  t.add_spring(0, 1, 4.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  EXPECT_EQ(A.dim(), 3u);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 3.0 + 4.0);
  EXPECT_DOUBLE_EQ(A.at(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(A.at(0, 1), -4.0);
  EXPECT_DOUBLE_EQ(A.at(1, 0), -4.0);
  EXPECT_DOUBLE_EQ(A.at(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(A.at(0, 2), 0.0);
}

TEST(Csr, SpMV) {
  TripletList t(2);
  t.add_diag(0, 2.0);
  t.add_diag(1, 3.0);
  t.add_spring(0, 1, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  // A = [[3, -1], [-1, 4]]
  Vec y;
  A.multiply({1.0, 2.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0 - 2.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0 + 8.0);
}

TEST(Csr, Diagonal) {
  TripletList t(3);
  t.add_spring(0, 2, 5.0);
  t.add_diag(1, 7.0);
  const Vec d = CsrMatrix::from_triplets(t).diagonal();
  EXPECT_DOUBLE_EQ(d[0], 5.0);
  EXPECT_DOUBLE_EQ(d[1], 7.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(Csr, SymmetryOfSpringAssembly) {
  Rng rng(11);
  TripletList t(50);
  for (int k = 0; k < 300; ++k) {
    const size_t i = rng.uniform_index(50), j = rng.uniform_index(50);
    if (i == j)
      t.add_diag(i, rng.uniform(0.1, 2.0));
    else
      t.add_spring(i, j, rng.uniform(0.1, 2.0));
  }
  EXPECT_LT(CsrMatrix::from_triplets(t).symmetry_error(), 1e-12);
}

TEST(Csr, OutOfRangeThrows) {
  TripletList t(2);
  t.add_diag(0, 1.0);
  t.add_spring(0, 1, 1.0);
  TripletList bad(2);
  bad.add_diag(5, 1.0);
  EXPECT_THROW(CsrMatrix::from_triplets(bad), std::out_of_range);
}

TEST(Csr, DimensionMismatchThrows) {
  TripletList t(2);
  t.add_diag(0, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec y;
  EXPECT_THROW(A.multiply({1.0, 2.0, 3.0}, y), std::invalid_argument);
}

// ------------------------------------------------------------------ CG ----

TEST(Cg, SolvesSmallSystemExactly) {
  // A = [[4, -1], [-1, 3]], b = [1, 2] => x = [5/11, 9/11]... verify by Ax=b.
  TripletList t(2);
  t.add_diag(0, 3.0);
  t.add_diag(1, 2.0);
  t.add_spring(0, 1, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x(2, 0.0);
  const CgResult res = solve_pcg(A, {1.0, 2.0}, x, {.rel_tolerance = 1e-12});
  EXPECT_TRUE(res.converged);
  Vec ax;
  A.multiply(x, ax);
  EXPECT_NEAR(ax[0], 1.0, 1e-9);
  EXPECT_NEAR(ax[1], 2.0, 1e-9);
}

TEST(Cg, ZeroRhsGivesZero) {
  TripletList t(3);
  for (size_t i = 0; i < 3; ++i) t.add_diag(i, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x{5.0, -2.0, 1.0};
  const CgResult res = solve_pcg(A, Vec(3, 0.0), x);
  EXPECT_TRUE(res.converged);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
  // The early return must report a fully-consistent result, not stale
  // default fields: the x = 0 solution is exact after 0 iterations.
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_DOUBLE_EQ(res.residual_norm, 0.0);
}

TEST(Cg, MaxIterationExhaustionReportsConsistentResult) {
  // Laplacian chain: needs ~n iterations, so a budget of 3 must run out.
  const size_t n = 200;
  TripletList t(n);
  for (size_t i = 0; i + 1 < n; ++i) t.add_spring(i, i + 1, 1.0);
  t.add_diag(0, 1.0);
  t.add_diag(n - 1, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec b(n, 0.0);
  b[n - 1] = 100.0;

  Vec x(n, 0.0);
  const CgResult res =
      solve_pcg(A, b, x, {.rel_tolerance = 1e-12, .max_iterations = 3});
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3u);
  // residual_norm must describe the returned x exactly.
  Vec ax(n);
  A.multiply(x, ax);
  Vec r(n);
  for (size_t i = 0; i < n; ++i) r[i] = b[i] - ax[i];
  EXPECT_NEAR(res.residual_norm, norm2(r), 1e-9 * norm2(b));
  EXPECT_GT(res.residual_norm, 1e-12 * norm2(b));
}

TEST(Cg, WarmStartReducesIterations) {
  // Laplacian chain with anchors at the ends.
  const size_t n = 200;
  TripletList t(n);
  for (size_t i = 0; i + 1 < n; ++i) t.add_spring(i, i + 1, 1.0);
  t.add_diag(0, 1.0);
  t.add_diag(n - 1, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec b(n, 0.0);
  b[0] = 0.0;
  b[n - 1] = 100.0;

  Vec cold(n, 0.0);
  const CgResult cold_res = solve_pcg(A, b, cold);
  ASSERT_TRUE(cold_res.converged);

  Vec warm = cold;  // exact solution as start
  const CgResult warm_res = solve_pcg(A, b, warm);
  EXPECT_TRUE(warm_res.converged);
  EXPECT_LT(warm_res.iterations, cold_res.iterations);
}

TEST(Cg, BreakdownFlagOnIndefiniteSystem) {
  // A negative diagonal makes pAp < 0 on the first step: the solve must
  // report breakdown (not merely "did not converge") and leave x finite.
  TripletList t(2);
  t.add_diag(0, -5.0);
  t.add_diag(1, -3.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x(2, 0.0);
  const CgResult res = solve_pcg(A, {1.0, 2.0}, x);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Cg, BudgetExhaustionIsNotBreakdown) {
  const size_t n = 200;
  TripletList t(n);
  for (size_t i = 0; i + 1 < n; ++i) t.add_spring(i, i + 1, 1.0);
  t.add_diag(0, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec b(n, 1.0);
  Vec x(n, 0.0);
  const CgResult res =
      solve_pcg(A, b, x, {.rel_tolerance = 1e-12, .max_iterations = 2});
  EXPECT_FALSE(res.converged);
  EXPECT_FALSE(res.breakdown);
}

TEST(Cg, InjectedBreakdownLeavesGuessUntouched) {
  TripletList t(2);
  t.add_diag(0, 2.0);
  t.add_diag(1, 2.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x{7.0, -3.0};
  CgOptions opts;
  opts.inject_breakdown = true;
  const CgResult res = solve_pcg(A, {1.0, 1.0}, x, opts);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  // The warm-start guess is the caller's fallback state: untouched.
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], -3.0);
}

TEST(Cg, DiagShiftSolvesShiftedSystem) {
  // A = diag(2), shift = 3: the solve must satisfy (A + 3I) x = b.
  TripletList t(2);
  t.add_diag(0, 2.0);
  t.add_diag(1, 2.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x(2, 0.0);
  CgOptions opts;
  opts.rel_tolerance = 1e-12;
  opts.diag_shift = 3.0;
  const CgResult res = solve_pcg(A, {10.0, -5.0}, x, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], -1.0, 1e-9);
}

TEST(Cg, DiagShiftRestoresDefiniteness) {
  // Indefinite alone (diagonal -1), SPD once shifted by 2: breakdown
  // without the shift, clean convergence with it — the recovery policy's
  // Tikhonov escape hatch.
  TripletList t(2);
  t.add_diag(0, -1.0);
  t.add_diag(1, -1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x(2, 0.0);
  EXPECT_TRUE(solve_pcg(A, {1.0, 1.0}, x).breakdown);
  x.assign(2, 0.0);
  CgOptions opts;
  opts.rel_tolerance = 1e-12;
  opts.diag_shift = 2.0;
  const CgResult res = solve_pcg(A, {1.0, 1.0}, x, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(res.breakdown);
  EXPECT_NEAR(x[0], 1.0, 1e-9);  // (-1 + 2) x = 1
  EXPECT_NEAR(x[1], 1.0, 1e-9);
}

struct RandomSpdCase {
  size_t n;
  uint64_t seed;
};

class CgRandomSpd : public ::testing::TestWithParam<RandomSpdCase> {};

TEST_P(CgRandomSpd, SolvesRandomLaplacianPlusDiagonal) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  TripletList t(n);
  // Random connected-ish graph Laplacian + positive diagonal => SPD.
  for (size_t i = 0; i + 1 < n; ++i)
    t.add_spring(i, i + 1, rng.uniform(0.5, 2.0));
  for (size_t k = 0; k < 3 * n; ++k) {
    const size_t i = rng.uniform_index(n), j = rng.uniform_index(n);
    if (i != j) t.add_spring(i, j, rng.uniform(0.1, 1.0));
  }
  for (size_t i = 0; i < n; ++i) t.add_diag(i, rng.uniform(0.01, 0.5));
  const CsrMatrix A = CsrMatrix::from_triplets(t);

  Vec x_true(n);
  for (size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-10, 10);
  Vec b;
  A.multiply(x_true, b);

  Vec x(n, 0.0);
  const CgResult res = solve_pcg(A, b, x, {.rel_tolerance = 1e-10});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(linf_dist(x, x_true), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgRandomSpd,
                         ::testing::Values(RandomSpdCase{10, 1},
                                           RandomSpdCase{50, 2},
                                           RandomSpdCase{200, 3},
                                           RandomSpdCase{500, 4},
                                           RandomSpdCase{1000, 5}));

}  // namespace
}  // namespace complx
