#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "linalg/cg.h"
#include "linalg/sparse.h"
#include "util/parallel.h"
#include "util/rng.h"

// Global operator new/delete replacement for the steady-state
// allocation-freedom test below. The counter only ticks while armed, so the
// rest of the binary (gtest bookkeeping, test setup) is unaffected. Must
// live at global scope — allocation functions cannot be namespace members.
namespace alloc_counter {
std::atomic<bool> armed{false};
std::atomic<size_t> news{0};

size_t drain() {
  armed.store(false, std::memory_order_relaxed);
  return news.exchange(0, std::memory_order_relaxed);
}
void arm() { armed.store(true, std::memory_order_relaxed); }
}  // namespace alloc_counter

// GCC pairs the malloc inside the replaced operator new with deletes at
// call sites and (wrongly) reports a mismatch; every allocation in this
// binary goes through these replacements, so malloc/free always pair up.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t sz) {
  if (alloc_counter::armed.load(std::memory_order_relaxed))
    alloc_counter::news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace complx {
namespace {

// ------------------------------------------------------------- vectors ----

TEST(Vec, DotAndNorm) {
  Vec a{1, 2, 3}, b{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
}

TEST(Vec, Axpy) {
  Vec x{1, 2}, y{10, 20};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(Vec, Xpay) {
  Vec x{1, 2}, y{10, 20};
  xpay(y, 3.0, x);  // x = 3x + y
  EXPECT_DOUBLE_EQ(x[0], 13.0);
  EXPECT_DOUBLE_EQ(x[1], 26.0);
}

TEST(Vec, Distances) {
  EXPECT_DOUBLE_EQ(l1_dist(Vec{0, 0}, Vec{3, -4}), 7.0);
  EXPECT_DOUBLE_EQ(linf_dist(Vec{0, 0}, Vec{3, -4}), 4.0);
}

// ----------------------------------------------------------------- CSR ----

TEST(Csr, FromTripletsMergesDuplicates) {
  TripletList t(3);
  t.add_diag(0, 1.0);
  t.add_diag(0, 2.0);  // duplicate: must sum to 3
  t.add_spring(0, 1, 4.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  EXPECT_EQ(A.dim(), 3u);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 3.0 + 4.0);
  EXPECT_DOUBLE_EQ(A.at(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(A.at(0, 1), -4.0);
  EXPECT_DOUBLE_EQ(A.at(1, 0), -4.0);
  EXPECT_DOUBLE_EQ(A.at(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(A.at(0, 2), 0.0);
}

TEST(Csr, SpMV) {
  TripletList t(2);
  t.add_diag(0, 2.0);
  t.add_diag(1, 3.0);
  t.add_spring(0, 1, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  // A = [[3, -1], [-1, 4]]
  Vec y;
  A.multiply({1.0, 2.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0 - 2.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0 + 8.0);
}

TEST(Csr, Diagonal) {
  TripletList t(3);
  t.add_spring(0, 2, 5.0);
  t.add_diag(1, 7.0);
  const Vec d = CsrMatrix::from_triplets(t).diagonal();
  EXPECT_DOUBLE_EQ(d[0], 5.0);
  EXPECT_DOUBLE_EQ(d[1], 7.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(Csr, SymmetryOfSpringAssembly) {
  Rng rng(11);
  TripletList t(50);
  for (int k = 0; k < 300; ++k) {
    const size_t i = rng.uniform_index(50), j = rng.uniform_index(50);
    if (i == j)
      t.add_diag(i, rng.uniform(0.1, 2.0));
    else
      t.add_spring(i, j, rng.uniform(0.1, 2.0));
  }
  EXPECT_LT(CsrMatrix::from_triplets(t).symmetry_error(), 1e-12);
}

TEST(Csr, OutOfRangeThrows) {
  TripletList t(2);
  t.add_diag(0, 1.0);
  t.add_spring(0, 1, 1.0);
  TripletList bad(2);
  bad.add_diag(5, 1.0);
  EXPECT_THROW(CsrMatrix::from_triplets(bad), std::out_of_range);
}

TEST(Csr, DimensionMismatchThrows) {
  TripletList t(2);
  t.add_diag(0, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec y;
  EXPECT_THROW(A.multiply({1.0, 2.0, 3.0}, y), std::invalid_argument);
}

// ------------------------------------------------------------------ CG ----

TEST(Cg, SolvesSmallSystemExactly) {
  // A = [[4, -1], [-1, 3]], b = [1, 2] => x = [5/11, 9/11]... verify by Ax=b.
  TripletList t(2);
  t.add_diag(0, 3.0);
  t.add_diag(1, 2.0);
  t.add_spring(0, 1, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x(2, 0.0);
  const CgResult res = solve_pcg(A, {1.0, 2.0}, x, {.rel_tolerance = 1e-12});
  EXPECT_TRUE(res.converged);
  Vec ax;
  A.multiply(x, ax);
  EXPECT_NEAR(ax[0], 1.0, 1e-9);
  EXPECT_NEAR(ax[1], 2.0, 1e-9);
}

TEST(Cg, ZeroRhsGivesZero) {
  TripletList t(3);
  for (size_t i = 0; i < 3; ++i) t.add_diag(i, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x{5.0, -2.0, 1.0};
  const CgResult res = solve_pcg(A, Vec(3, 0.0), x);
  EXPECT_TRUE(res.converged);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
  // The early return must report a fully-consistent result, not stale
  // default fields: the x = 0 solution is exact after 0 iterations.
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_DOUBLE_EQ(res.residual_norm, 0.0);
}

TEST(Cg, MaxIterationExhaustionReportsConsistentResult) {
  // Laplacian chain: needs ~n iterations, so a budget of 3 must run out.
  const size_t n = 200;
  TripletList t(n);
  for (size_t i = 0; i + 1 < n; ++i) t.add_spring(i, i + 1, 1.0);
  t.add_diag(0, 1.0);
  t.add_diag(n - 1, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec b(n, 0.0);
  b[n - 1] = 100.0;

  Vec x(n, 0.0);
  const CgResult res =
      solve_pcg(A, b, x, {.rel_tolerance = 1e-12, .max_iterations = 3});
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3u);
  // residual_norm must describe the returned x exactly.
  Vec ax(n);
  A.multiply(x, ax);
  Vec r(n);
  for (size_t i = 0; i < n; ++i) r[i] = b[i] - ax[i];
  EXPECT_NEAR(res.residual_norm, norm2(r), 1e-9 * norm2(b));
  EXPECT_GT(res.residual_norm, 1e-12 * norm2(b));
}

TEST(Cg, WarmStartReducesIterations) {
  // Laplacian chain with anchors at the ends.
  const size_t n = 200;
  TripletList t(n);
  for (size_t i = 0; i + 1 < n; ++i) t.add_spring(i, i + 1, 1.0);
  t.add_diag(0, 1.0);
  t.add_diag(n - 1, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec b(n, 0.0);
  b[0] = 0.0;
  b[n - 1] = 100.0;

  Vec cold(n, 0.0);
  const CgResult cold_res = solve_pcg(A, b, cold);
  ASSERT_TRUE(cold_res.converged);

  Vec warm = cold;  // exact solution as start
  const CgResult warm_res = solve_pcg(A, b, warm);
  EXPECT_TRUE(warm_res.converged);
  EXPECT_LT(warm_res.iterations, cold_res.iterations);
}

TEST(Cg, BreakdownFlagOnIndefiniteSystem) {
  // A negative diagonal makes pAp < 0 on the first step: the solve must
  // report breakdown (not merely "did not converge") and leave x finite.
  TripletList t(2);
  t.add_diag(0, -5.0);
  t.add_diag(1, -3.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x(2, 0.0);
  const CgResult res = solve_pcg(A, {1.0, 2.0}, x);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Cg, BudgetExhaustionIsNotBreakdown) {
  const size_t n = 200;
  TripletList t(n);
  for (size_t i = 0; i + 1 < n; ++i) t.add_spring(i, i + 1, 1.0);
  t.add_diag(0, 1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec b(n, 1.0);
  Vec x(n, 0.0);
  const CgResult res =
      solve_pcg(A, b, x, {.rel_tolerance = 1e-12, .max_iterations = 2});
  EXPECT_FALSE(res.converged);
  EXPECT_FALSE(res.breakdown);
}

TEST(Cg, InjectedBreakdownLeavesGuessUntouched) {
  TripletList t(2);
  t.add_diag(0, 2.0);
  t.add_diag(1, 2.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x{7.0, -3.0};
  CgOptions opts;
  opts.inject_breakdown = true;
  const CgResult res = solve_pcg(A, {1.0, 1.0}, x, opts);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  // The warm-start guess is the caller's fallback state: untouched.
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], -3.0);
}

TEST(Cg, DiagShiftSolvesShiftedSystem) {
  // A = diag(2), shift = 3: the solve must satisfy (A + 3I) x = b.
  TripletList t(2);
  t.add_diag(0, 2.0);
  t.add_diag(1, 2.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x(2, 0.0);
  CgOptions opts;
  opts.rel_tolerance = 1e-12;
  opts.diag_shift = 3.0;
  const CgResult res = solve_pcg(A, {10.0, -5.0}, x, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], -1.0, 1e-9);
}

TEST(Cg, DiagShiftRestoresDefiniteness) {
  // Indefinite alone (diagonal -1), SPD once shifted by 2: breakdown
  // without the shift, clean convergence with it — the recovery policy's
  // Tikhonov escape hatch.
  TripletList t(2);
  t.add_diag(0, -1.0);
  t.add_diag(1, -1.0);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  Vec x(2, 0.0);
  EXPECT_TRUE(solve_pcg(A, {1.0, 1.0}, x).breakdown);
  x.assign(2, 0.0);
  CgOptions opts;
  opts.rel_tolerance = 1e-12;
  opts.diag_shift = 2.0;
  const CgResult res = solve_pcg(A, {1.0, 1.0}, x, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_FALSE(res.breakdown);
  EXPECT_NEAR(x[0], 1.0, 1e-9);  // (-1 + 2) x = 1
  EXPECT_NEAR(x[1], 1.0, 1e-9);
}

struct RandomSpdCase {
  size_t n;
  uint64_t seed;
};

class CgRandomSpd : public ::testing::TestWithParam<RandomSpdCase> {};

TEST_P(CgRandomSpd, SolvesRandomLaplacianPlusDiagonal) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  TripletList t(n);
  // Random connected-ish graph Laplacian + positive diagonal => SPD.
  for (size_t i = 0; i + 1 < n; ++i)
    t.add_spring(i, i + 1, rng.uniform(0.5, 2.0));
  for (size_t k = 0; k < 3 * n; ++k) {
    const size_t i = rng.uniform_index(n), j = rng.uniform_index(n);
    if (i != j) t.add_spring(i, j, rng.uniform(0.1, 1.0));
  }
  for (size_t i = 0; i < n; ++i) t.add_diag(i, rng.uniform(0.01, 0.5));
  const CsrMatrix A = CsrMatrix::from_triplets(t);

  Vec x_true(n);
  for (size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-10, 10);
  Vec b;
  A.multiply(x_true, b);

  Vec x(n, 0.0);
  const CgResult res = solve_pcg(A, b, x, {.rel_tolerance = 1e-10});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(linf_dist(x, x_true), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgRandomSpd,
                         ::testing::Values(RandomSpdCase{10, 1},
                                           RandomSpdCase{50, 2},
                                           RandomSpdCase{200, 3},
                                           RandomSpdCase{500, 4},
                                           RandomSpdCase{1000, 5}));

// --------------------------------------------------- pattern-cached CSR ----

uint64_t dbits(double v) { return std::bit_cast<uint64_t>(v); }

void expect_bitwise_equal(const CsrMatrix& a, const CsrMatrix& b) {
  ASSERT_EQ(a.row_ptr(), b.row_ptr());
  ASSERT_EQ(a.col(), b.col());
  ASSERT_EQ(a.val().size(), b.val().size());
  for (size_t i = 0; i < a.val().size(); ++i)
    ASSERT_EQ(dbits(a.val()[i]), dbits(b.val()[i])) << "val[" << i << "]";
}

/// Random SPD system; the same seed always produces the same sparsity
/// pattern, while `weight_scale` varies only the values — exactly the
/// anchors-and-weights-changed, topology-unchanged shape of the placer's
/// per-iteration systems.
TripletList random_system(size_t n, uint64_t seed,
                          double weight_scale = 1.0) {
  Rng rng(seed);
  TripletList t(n);
  for (size_t i = 0; i + 1 < n; ++i)
    t.add_spring(i, i + 1, weight_scale * rng.uniform(0.5, 2.0));
  for (size_t k = 0; k < 3 * n; ++k) {
    const size_t i = rng.uniform_index(n), j = rng.uniform_index(n);
    if (i != j) t.add_spring(i, j, weight_scale * rng.uniform(0.1, 1.0));
  }
  for (size_t i = 0; i < n; ++i)
    t.add_diag(i, weight_scale * rng.uniform(0.01, 0.5));
  return t;
}

TEST(CsrAssembler, CachedRevalueIsBitwiseIdenticalToFreshBuild) {
  CsrAssembler a;
  const TripletList t1 = random_system(300, 21, 1.0);
  EXPECT_FALSE(a.assemble(t1));  // first call: full build
  EXPECT_EQ(a.misses(), 1u);
  EXPECT_EQ(a.hits(), 0u);
  expect_bitwise_equal(a.matrix(), CsrMatrix::from_triplets(t1));

  // Same pattern, different values: must hit and revalue in place to the
  // exact bits a fresh build would produce.
  const TripletList t2 = random_system(300, 21, 1.7);
  EXPECT_TRUE(a.assemble(t2));
  EXPECT_EQ(a.hits(), 1u);
  EXPECT_EQ(a.misses(), 1u);
  expect_bitwise_equal(a.matrix(), CsrMatrix::from_triplets(t2));
}

TEST(CsrAssembler, TopologyChangeForcesRebuild) {
  CsrAssembler a;
  a.assemble(random_system(100, 22));
  TripletList changed = random_system(100, 22);
  changed.add_spring(0, 99, 1.0);  // one new edge: different pattern
  EXPECT_FALSE(a.assemble(changed));
  EXPECT_EQ(a.misses(), 2u);
  EXPECT_EQ(a.hits(), 0u);
  expect_bitwise_equal(a.matrix(), CsrMatrix::from_triplets(changed));
  // The changed pattern is now the cached one.
  EXPECT_TRUE(a.assemble(changed));
}

TEST(CsrAssembler, InvalidateDropsPatternButKeepsCounters) {
  CsrAssembler a;
  const TripletList t = random_system(80, 23);
  a.assemble(t);
  ASSERT_TRUE(a.assemble(t));
  a.invalidate();
  EXPECT_FALSE(a.assemble(t));  // identical input, but the cache is gone
  EXPECT_EQ(a.hits(), 1u);
  EXPECT_EQ(a.misses(), 2u);
  expect_bitwise_equal(a.matrix(), CsrMatrix::from_triplets(t));
}

TEST(CsrAssembler, SignedZeroSurvivesRevalue) {
  // The first contribution to each CSR slot must be an assignment, not a
  // += onto a zeroed buffer: zero-and-accumulate would turn a -0.0 triplet
  // into +0.0 on the cached path only, breaking bitwise equality.
  TripletList t(2);
  t.add_diag(0, -0.0);
  t.add_diag(1, 1.0);
  CsrAssembler a;
  a.assemble(t);
  ASSERT_TRUE(a.assemble(t));
  expect_bitwise_equal(a.matrix(), CsrMatrix::from_triplets(t));
  EXPECT_EQ(dbits(a.matrix().at(0, 0)), dbits(-0.0));
}

TEST(CsrAssembler, ResultIndependentOfThreadCount) {
  const size_t prev = global_threads();
  const TripletList t = random_system(400, 24);
  set_global_threads(1);
  CsrAssembler serial;
  serial.assemble(t);
  serial.assemble(t);  // build, then revalue — both paths serial
  const CsrMatrix reference = serial.matrix();
  set_global_threads(8);
  CsrAssembler threaded;
  threaded.assemble(t);
  threaded.assemble(t);
  expect_bitwise_equal(threaded.matrix(), reference);
  set_global_threads(prev);
}

// ---------------------------------------------------------- CG workspace ----

TEST(CgWorkspace, MatchesPlainOverloadBitwise) {
  const size_t n = 500;
  const CsrMatrix A = CsrMatrix::from_triplets(random_system(n, 25));
  Rng rng(26);
  Vec b(n);
  for (size_t i = 0; i < n; ++i) b[i] = rng.uniform(-1.0, 1.0);
  CgOptions opts;
  opts.rel_tolerance = 1e-10;

  Vec x_plain(n, 0.0);
  const CgResult plain = solve_pcg(A, b, x_plain, opts);
  CgWorkspace ws;
  Vec x_ws(n, 0.0);
  const CgResult with_ws = solve_pcg(A, b, x_ws, opts, ws);
  EXPECT_EQ(plain.iterations, with_ws.iterations);
  EXPECT_EQ(plain.converged, with_ws.converged);
  EXPECT_EQ(dbits(plain.residual_norm), dbits(with_ws.residual_norm));
  for (size_t i = 0; i < n; ++i)
    ASSERT_EQ(dbits(x_plain[i]), dbits(x_ws[i])) << "x[" << i << "]";

  // Leftover state in a reused workspace must not leak into the result.
  Vec x_again(n, 0.0);
  solve_pcg(A, b, x_again, opts, ws);
  for (size_t i = 0; i < n; ++i)
    ASSERT_EQ(dbits(x_again[i]), dbits(x_ws[i])) << "x[" << i << "]";
}

TEST(CgWorkspace, SteadyStateSolveIsAllocationFree) {
  // n > kReduceChunk so the chunked reduction path itself (not its small-n
  // early return) is on trial; single-threaded so the templated serial
  // fast paths of parallel_for/parallel_sum are the ones exercised.
  const size_t prev = global_threads();
  set_global_threads(1);
  const size_t n = kReduceChunk + 1901;
  TripletList t(n);
  for (size_t i = 0; i + 1 < n; ++i) t.add_spring(i, i + 1, 1.0);
  for (size_t i = 0; i < n; ++i) t.add_diag(i, 0.5);
  const CsrMatrix A = CsrMatrix::from_triplets(t);
  const Vec b(n, 1.0);
  CgOptions opts;
  opts.rel_tolerance = 1e-30;  // never met: runs exactly max_iterations
  opts.max_iterations = 25;

  CgWorkspace ws;
  Vec x(n, 0.0);
  solve_pcg(A, b, x, opts, ws);  // warm-up: sizes every workspace buffer
  x.assign(n, 0.0);
  alloc_counter::arm();
  solve_pcg(A, b, x, opts, ws);
  const size_t allocations = alloc_counter::drain();
  EXPECT_EQ(allocations, 0u)
      << "steady-state solve_pcg must not touch the heap";
  set_global_threads(prev);
}

}  // namespace
}  // namespace complx
