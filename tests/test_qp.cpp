#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "helpers.h"
#include "qp/solver.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

uint64_t dbits(double v) { return std::bit_cast<uint64_t>(v); }

void expect_bitwise_equal(const Netlist& nl, const Placement& a,
                          const Placement& b) {
  for (CellId id : nl.movable_cells()) {
    ASSERT_EQ(dbits(a.x[id]), dbits(b.x[id])) << "x of cell " << id;
    ASSERT_EQ(dbits(a.y[id]), dbits(b.y[id])) << "y of cell " << id;
  }
}

TEST(VarMap, MapsOnlyMovables) {
  Netlist nl = complx::testing::two_cell_chain();
  const VarMap vars(nl);
  EXPECT_EQ(vars.num_vars(), 2u);
  const CellId pad0 = nl.find_cell("pad0");
  const CellId c0 = nl.find_cell("c0");
  EXPECT_EQ(vars.var_of_cell[pad0], VarMap::kFixed);
  EXPECT_NE(vars.var_of_cell[c0], VarMap::kFixed);
  EXPECT_EQ(vars.cell_of_var[vars.var_of_cell[c0]], c0);
}

TEST(SystemBuilder, ChainOptimumIsEvenSpacing) {
  // pad0(0) -- c0 -- c1 -- pad1(30): quadratic optimum c0=10, c1=20.
  Netlist nl = complx::testing::two_cell_chain();
  const VarMap vars(nl);
  Placement p = nl.snapshot();
  const CellId c0 = nl.find_cell("c0"), c1 = nl.find_cell("c1");
  p.x[c0] = 14.0;
  p.x[c1] = 16.0;

  SystemBuilder builder(nl, vars, Axis::X, p);
  // Unit springs (no B2B linearization, pure quadratic chain).
  std::vector<PinSpring> springs{{0, 1, 1.0}, {2, 3, 1.0}, {4, 5, 1.0}};
  builder.add_pin_springs(springs);
  const CgResult res = builder.solve(p, {.rel_tolerance = 1e-12});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(p.x[c0], 10.0, 1e-8);
  EXPECT_NEAR(p.x[c1], 20.0, 1e-8);
}

TEST(SystemBuilder, PinOffsetsShiftTheOptimum) {
  // One movable cell tied to a fixed pad at x=10 through a pin with offset
  // +2: optimum has pin at pad, so center = 8.
  Netlist nl;
  Cell pad;
  pad.width = pad.height = 0;
  pad.x = 10;
  pad.y = 0;
  pad.kind = CellKind::Fixed;
  const CellId ip = nl.add_cell(pad, "pad");
  Cell c;
  c.width = 2;
  c.height = 2;
  const CellId ic = nl.add_cell(c, "c");
  nl.add_net("n", 1.0, {{ic, 2.0, 0.0}, {ip, 0.0, 0.0}});
  nl.set_core({0, 0, 20, 20});
  nl.finalize();

  const VarMap vars(nl);
  Placement p = nl.snapshot();
  SystemBuilder builder(nl, vars, Axis::X, p);
  builder.add_pin_springs({{0, 1, 1.0}});
  builder.solve(p, {.rel_tolerance = 1e-12});
  EXPECT_NEAR(p.x[ic], 8.0, 1e-8);
}

TEST(SystemBuilder, AnchorPullsTowardTarget) {
  Netlist nl = complx::testing::two_cell_chain();
  const VarMap vars(nl);
  Placement p = nl.snapshot();
  const CellId c0 = nl.find_cell("c0");

  SystemBuilder builder(nl, vars, Axis::X, p);
  builder.add_pin_springs({{0, 1, 1.0}, {2, 3, 1.0}, {4, 5, 1.0}});
  builder.add_anchor(c0, 5.0, 100.0);  // heavy anchor at x=5
  builder.solve(p, {.rel_tolerance = 1e-12});
  EXPECT_NEAR(p.x[c0], 5.0, 0.2);
}

TEST(SystemBuilder, AnchorOnFixedCellIgnored) {
  Netlist nl = complx::testing::two_cell_chain();
  const VarMap vars(nl);
  Placement p = nl.snapshot();
  SystemBuilder builder(nl, vars, Axis::X, p);
  builder.add_anchor(nl.find_cell("pad0"), 99.0, 100.0);
  EXPECT_DOUBLE_EQ(builder.rhs()[0], 0.0);
  EXPECT_DOUBLE_EQ(builder.rhs()[1], 0.0);
}

TEST(SystemBuilder, MatrixIsSymmetricPositive) {
  Netlist nl = complx::testing::small_circuit(51, 300);
  const VarMap vars(nl);
  const Placement p = nl.snapshot();
  SystemBuilder builder(nl, vars, Axis::X, p);
  builder.add_pin_springs(build_b2b(nl, p, Axis::X, {}));
  const CsrMatrix A = builder.build_matrix();
  EXPECT_LT(A.symmetry_error(), 1e-12);
  const Vec d = A.diagonal();
  for (double v : d) EXPECT_GE(v, 0.0);
}

TEST(SolveQpIteration, ReducesHpwlFromScatter) {
  Netlist nl = complx::testing::small_circuit(52, 800);
  const VarMap vars(nl);
  Placement p = nl.snapshot();  // generator scatter
  const double before = hpwl(nl, p);
  QpOptions opts;
  opts.b2b.min_separation = 1.5 * nl.row_height();
  for (int i = 0; i < 3; ++i) solve_qp_iteration(nl, vars, p, nullptr, opts);
  const double after = hpwl(nl, p);
  EXPECT_LT(after, 0.6 * before);  // QP collapses scattered placement
}

TEST(SolveQpIteration, ClampsToCore) {
  Netlist nl = complx::testing::small_circuit(53, 300);
  const VarMap vars(nl);
  Placement p = nl.snapshot();
  QpOptions opts;
  solve_qp_iteration(nl, vars, p, nullptr, opts);
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    EXPECT_GE(p.x[id] - c.width / 2.0, nl.core().xl - 1e-9);
    EXPECT_LE(p.x[id] + c.width / 2.0, nl.core().xh + 1e-9);
    EXPECT_GE(p.y[id] - c.height / 2.0, nl.core().yl - 1e-9);
    EXPECT_LE(p.y[id] + c.height / 2.0, nl.core().yh + 1e-9);
  }
}

class NetModelSweep : public ::testing::TestWithParam<NetModel> {};

TEST_P(NetModelSweep, AllModelsReduceHpwl) {
  Netlist nl = complx::testing::small_circuit(54, 600);
  const VarMap vars(nl);
  Placement p = nl.snapshot();
  const double before = hpwl(nl, p);
  QpOptions opts;
  opts.model = GetParam();
  opts.b2b.min_separation = 1.5 * nl.row_height();
  for (int i = 0; i < 3; ++i) solve_qp_iteration(nl, vars, p, nullptr, opts);
  EXPECT_LT(hpwl(nl, p), before);
}

INSTANTIATE_TEST_SUITE_P(Models, NetModelSweep,
                         ::testing::Values(NetModel::B2B, NetModel::Clique,
                                           NetModel::Star));

TEST(SolveQpIteration, AnchorsHoldPlacementInPlace) {
  // With huge anchor weights at the current positions, the solve must not
  // move anything appreciably.
  Netlist nl = complx::testing::small_circuit(55, 400);
  const VarMap vars(nl);
  Placement p = nl.snapshot();
  AnchorSet anchors(nl.num_cells());
  for (CellId id : nl.movable_cells()) {
    anchors.target_x[id] = p.x[id];
    anchors.target_y[id] = p.y[id];
    anchors.weight_x[id] = 1e6;
    anchors.weight_y[id] = 1e6;
  }
  const Placement before = p;
  QpOptions opts;
  solve_qp_iteration(nl, vars, p, &anchors, opts);
  double max_move = 0.0;
  for (CellId id : nl.movable_cells())
    max_move = std::max(max_move, std::abs(p.x[id] - before.x[id]) +
                                      std::abs(p.y[id] - before.y[id]));
  EXPECT_LT(max_move, 0.5);
}

// ------------------------------------------------------------ workspace ----

TEST(QpWorkspace, SamePointSecondIterationHitsPattern) {
  Netlist nl = complx::testing::small_circuit(56, 400);
  const VarMap vars(nl);
  const Placement start = nl.snapshot();
  QpOptions opts;
  QpWorkspace ws;

  Placement p = start;
  solve_qp_iteration(nl, vars, p, nullptr, opts, &ws);
  EXPECT_EQ(ws.stats.pattern_misses, 2u);  // first build, one per axis
  EXPECT_EQ(ws.stats.pattern_hits, 0u);
  const Placement first = p;

  // Relinearizing at the same point reproduces the same B2B topology, so
  // both axes must revalue the cached pattern — and land on the same bits.
  p = start;
  solve_qp_iteration(nl, vars, p, nullptr, opts, &ws);
  EXPECT_EQ(ws.stats.pattern_hits, 2u);
  EXPECT_EQ(ws.stats.pattern_misses, 2u);
  EXPECT_EQ(ws.stats.iterations, 2u);
  expect_bitwise_equal(nl, p, first);
}

TEST(QpWorkspace, AnchorWeightChangeStillHits) {
  // The λ update rescales anchor weights but never adds or removes
  // pseudonets: diagonal + RHS only, so the sparsity pattern must survive.
  Netlist nl = complx::testing::small_circuit(57, 350);
  const VarMap vars(nl);
  const Placement start = nl.snapshot();
  AnchorSet anchors(nl.num_cells());
  for (CellId id : nl.movable_cells()) {
    anchors.target_x[id] = start.x[id];
    anchors.target_y[id] = start.y[id];
    anchors.weight_x[id] = 1.0;
    anchors.weight_y[id] = 1.0;
  }
  QpOptions opts;
  QpWorkspace ws;

  Placement p = start;
  solve_qp_iteration(nl, vars, p, &anchors, opts, &ws);
  ASSERT_EQ(ws.stats.pattern_misses, 2u);

  for (CellId id : nl.movable_cells()) {
    anchors.weight_x[id] *= 3.0;
    anchors.weight_y[id] *= 3.0;
  }
  p = start;
  solve_qp_iteration(nl, vars, p, &anchors, opts, &ws);
  EXPECT_EQ(ws.stats.pattern_hits, 2u);
  EXPECT_EQ(ws.stats.pattern_misses, 2u);

  // The cached-path result equals the workspace-free path on the exact
  // same system, bit for bit.
  Placement fresh = start;
  solve_qp_iteration(nl, vars, fresh, &anchors, opts, nullptr);
  expect_bitwise_equal(nl, p, fresh);
}

TEST(QpWorkspace, TopologyChangeMissesAndStaysCorrect) {
  Netlist nl = complx::testing::small_circuit(58, 300);
  const VarMap vars(nl);
  QpOptions opts;
  QpWorkspace ws;

  Placement p = nl.snapshot();
  solve_qp_iteration(nl, vars, p, nullptr, opts, &ws);
  ASSERT_EQ(ws.stats.pattern_misses, 2u);

  // The previous solve moved essentially every cell, so relinearizing at
  // the new iterate picks different bounding pins: the pattern comparison
  // must reject the cache, and the rebuild must match a fresh solve.
  Placement fresh = p;
  solve_qp_iteration(nl, vars, p, nullptr, opts, &ws);
  EXPECT_EQ(ws.stats.pattern_misses, 4u);
  EXPECT_EQ(ws.stats.pattern_hits, 0u);
  solve_qp_iteration(nl, vars, fresh, nullptr, opts, nullptr);
  expect_bitwise_equal(nl, p, fresh);
}

TEST(QpWorkspace, InvalidatePatternForcesRebuild) {
  Netlist nl = complx::testing::small_circuit(59, 250);
  const VarMap vars(nl);
  const Placement start = nl.snapshot();
  QpOptions opts;
  QpWorkspace ws;

  Placement p = start;
  solve_qp_iteration(nl, vars, p, nullptr, opts, &ws);
  const Placement first = p;
  p = start;
  ws.invalidate_pattern();  // would have hit without this
  solve_qp_iteration(nl, vars, p, nullptr, opts, &ws);
  EXPECT_EQ(ws.stats.pattern_misses, 4u);
  EXPECT_EQ(ws.stats.pattern_hits, 0u);
  expect_bitwise_equal(nl, p, first);
}

TEST(QpWorkspace, MultiIterationTrajectoryMatchesFreshBitwise) {
  // Let the iterate evolve naturally for several iterations (hits and
  // misses as they come): the workspace path must track the fresh path
  // bit for bit the whole way.
  Netlist nl = complx::testing::small_circuit(60, 500);
  const VarMap vars(nl);
  QpOptions opts;
  opts.b2b.min_separation = 1.5 * nl.row_height();
  QpWorkspace ws;
  Placement cached = nl.snapshot();
  Placement fresh = cached;
  for (int i = 0; i < 5; ++i) {
    solve_qp_iteration(nl, vars, cached, nullptr, opts, &ws);
    solve_qp_iteration(nl, vars, fresh, nullptr, opts, nullptr);
    expect_bitwise_equal(nl, cached, fresh);
  }
  EXPECT_EQ(ws.stats.iterations, 5u);
  EXPECT_EQ(ws.stats.pattern_hits + ws.stats.pattern_misses, 10u);
}

}  // namespace
}  // namespace complx
