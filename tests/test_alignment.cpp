#include <gtest/gtest.h>

#include "core/placer.h"
#include "helpers.h"
#include "projection/alignment.h"
#include "projection/lal.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

TEST(Alignment, SnapCollapsesToMean) {
  Netlist nl = complx::testing::mesh_netlist(3);
  Placement p = nl.snapshot();
  AlignmentGroup g;
  g.cells = {0, 1, 2};
  g.axis = Axis::Y;
  p.y[0] = 10;
  p.y[1] = 20;
  p.y[2] = 30;
  const size_t moved = snap_to_alignments(nl, {g}, p);
  EXPECT_EQ(moved, 2u);  // the middle one is already at the mean
  EXPECT_DOUBLE_EQ(p.y[0], 20.0);
  EXPECT_DOUBLE_EQ(p.y[1], 20.0);
  EXPECT_DOUBLE_EQ(p.y[2], 20.0);
  EXPECT_DOUBLE_EQ(alignment_error({g}, p), 0.0);
}

TEST(Alignment, XAxisGroups) {
  Netlist nl = complx::testing::mesh_netlist(3);
  Placement p = nl.snapshot();
  AlignmentGroup g;
  g.cells = {0, 3, 6};
  g.axis = Axis::X;
  p.x[0] = 5;
  p.x[3] = 7;
  p.x[6] = 9;
  snap_to_alignments(nl, {g}, p);
  EXPECT_DOUBLE_EQ(p.x[0], 7.0);
  EXPECT_DOUBLE_EQ(p.x[6], 7.0);
}

TEST(Alignment, FixedMemberPinsTheLine) {
  Netlist nl = complx::testing::mesh_netlist(3);  // cells 9..12 are pads
  Placement p = nl.snapshot();
  AlignmentGroup g;
  g.axis = Axis::Y;
  const CellId pad = nl.find_cell("pad0");
  g.cells = {0, 1, pad};
  const double pad_y = p.y[pad];
  p.y[0] = pad_y + 50;
  p.y[1] = pad_y - 30;
  snap_to_alignments(nl, {g}, p);
  EXPECT_DOUBLE_EQ(p.y[0], pad_y);
  EXPECT_DOUBLE_EQ(p.y[1], pad_y);
  EXPECT_DOUBLE_EQ(p.y[pad], pad_y);  // fixed cell never moves
}

TEST(Alignment, ErrorMeasuresSpread) {
  Netlist nl = complx::testing::mesh_netlist(3);
  Placement p = nl.snapshot();
  AlignmentGroup g;
  g.cells = {0, 1};
  g.axis = Axis::Y;
  p.y[0] = 0;
  p.y[1] = 12;
  EXPECT_DOUBLE_EQ(alignment_error({g}, p), 12.0);
}

TEST(Alignment, TrivialGroupsIgnored) {
  Netlist nl = complx::testing::mesh_netlist(3);
  Placement p = nl.snapshot();
  AlignmentGroup single;
  single.cells = {0};
  EXPECT_EQ(snap_to_alignments(nl, {single}, p), 0u);
}

TEST(Alignment, ProjectionEnforcesGroups) {
  Netlist nl = complx::testing::small_circuit(151, 800);
  ProjectionOptions opts;
  AlignmentGroup g;
  g.axis = Axis::Y;
  for (CellId id = 0; id < 6; ++id) g.cells.push_back(id);
  opts.alignments = {g};
  LookAheadLegalizer lal(nl, opts);

  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  const ProjectionResult res = lal.project(p);
  EXPECT_LT(alignment_error(opts.alignments, res.anchors), 1e-9);
}

TEST(Alignment, EndToEndThroughThePlacer) {
  Netlist nl = complx::testing::small_circuit(152, 1000);
  ComplxConfig cfg;
  cfg.max_iterations = 40;
  AlignmentGroup g;
  g.axis = Axis::Y;
  for (CellId id = 10; id < 18; ++id) g.cells.push_back(id);
  cfg.projection.alignments = {g};
  ComplxPlacer placer(nl, cfg);
  const PlaceResult res = placer.place();
  EXPECT_LT(alignment_error(cfg.projection.alignments, res.anchors), 1e-9);
  // Placement quality not destroyed by the constraint.
  EXPECT_LT(hpwl(nl, res.anchors), hpwl(nl, nl.snapshot()));
}

// ---------------------------------------------------------- warm start ----

TEST(WarmStart, StaysCloseToIncomingPlacement) {
  Netlist nl = complx::testing::small_circuit(153, 1200);
  ComplxConfig cold;
  cold.max_iterations = 50;
  const PlaceResult base = ComplxPlacer(nl, cold).place();
  nl.apply(base.anchors);

  // Warm re-place of the SAME design must barely move anything.
  ComplxConfig warm = cold;
  warm.warm_start = true;
  warm.max_iterations = 15;
  const PlaceResult re = ComplxPlacer(nl, warm).place();
  double disp = 0.0;
  for (CellId id : nl.movable_cells())
    disp += std::abs(re.anchors.x[id] - base.anchors.x[id]) +
            std::abs(re.anchors.y[id] - base.anchors.y[id]);
  const double avg = disp / static_cast<double>(nl.num_movable());
  EXPECT_LT(avg, 10.0 * nl.row_height());
  // And the quality stays comparable.
  EXPECT_LT(hpwl(nl, re.anchors), 1.25 * hpwl(nl, base.anchors));
}

}  // namespace
}  // namespace complx
