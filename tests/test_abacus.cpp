#include <gtest/gtest.h>

#include "core/placer.h"
#include "helpers.h"
#include "legal/abacus.h"
#include "legal/tetris.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

TEST(Abacus, TrivialOverlapResolved) {
  Netlist nl = complx::testing::two_cell_chain();
  Placement p = nl.snapshot();
  p.x[nl.find_cell("c0")] = 14.9;
  p.x[nl.find_cell("c1")] = 15.1;
  AbacusLegalizer legalizer(nl);
  const LegalizeResult res = legalizer.legalize(p);
  EXPECT_EQ(res.failed, 0u);
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
}

TEST(Abacus, NonOverlappingCellsBarelyMove) {
  // Cells already legal and separated: Abacus's minimal-movement property
  // means near-zero displacement.
  Netlist nl = complx::testing::two_cell_chain();
  Placement p = nl.snapshot();
  p.x[nl.find_cell("c0")] = 6.0;
  p.y[nl.find_cell("c0")] = 6.0;
  p.x[nl.find_cell("c1")] = 21.0;
  p.y[nl.find_cell("c1")] = 6.0;
  AbacusLegalizer legalizer(nl);
  const LegalizeResult res = legalizer.legalize(p);
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
  EXPECT_LT(res.max_displacement, 1.0 + 1e-9);  // at most site rounding
}

TEST(Abacus, ClusterCollapseSharesDisplacement) {
  // Three 10-wide cells all wanting left edge ~50 in a [0,100] row: the
  // abutted least-squares solution puts the cluster start at the mean of
  // (50, 50-10, 50-20) = 40 -> left edges 40/50/60 (middle cell at its
  // desired spot, neighbours sharing the displacement).
  Netlist nl;
  for (int i = 0; i < 3; ++i) {
    Cell c;
    c.width = 10;
    c.height = 12;
    nl.add_cell(c, "c" + std::to_string(i));
  }
  nl.set_core({0, 0, 100, 12});
  nl.finalize();
  Placement p = nl.snapshot();
  for (CellId id = 0; id < 3; ++id) {
    p.x[id] = 55.0 + 0.01 * id;  // centers ~55 => desired left edges ~50
    p.y[id] = 6.0;
  }
  AbacusLegalizer legalizer(nl);
  legalizer.legalize(p);
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
  // Cells abutted and centered near the common target.
  std::vector<double> xs{p.x[0] - 5, p.x[1] - 5, p.x[2] - 5};
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[1], 50.0, 1.5);  // middle cell keeps its desired spot
  EXPECT_NEAR(xs[1] - xs[0], 10.0, 1e-6);
  EXPECT_NEAR(xs[2] - xs[1], 10.0, 1e-6);
}

struct AbacusCase {
  uint64_t seed;
  size_t cells;
  size_t macros;
};

class AbacusSweep : public ::testing::TestWithParam<AbacusCase> {};

TEST_P(AbacusSweep, ProducesLegalPlacements) {
  const auto [seed, cells, macros] = GetParam();
  Netlist nl = complx::testing::small_circuit(seed, cells, macros);
  ComplxConfig cfg;
  cfg.max_iterations = 40;
  Placement p = ComplxPlacer(nl, cfg).place().anchors;
  AbacusLegalizer legalizer(nl);
  const LegalizeResult res = legalizer.legalize(p);
  EXPECT_EQ(res.failed, 0u);
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
}

TEST_P(AbacusSweep, DisplacementNotWorseThanTetrisByMuch) {
  const auto [seed, cells, macros] = GetParam();
  Netlist nl = complx::testing::small_circuit(seed, cells, macros);
  ComplxConfig cfg;
  cfg.max_iterations = 40;
  const Placement anchors = ComplxPlacer(nl, cfg).place().anchors;

  Placement pt = anchors;
  const LegalizeResult tetris = TetrisLegalizer(nl).legalize(pt);
  Placement pa = anchors;
  const LegalizeResult abacus = AbacusLegalizer(nl).legalize(pa);

  ASSERT_EQ(abacus.failed, 0u);
  // Abacus targets minimal movement: its total displacement should be in
  // the same ballpark or better than greedy Tetris.
  EXPECT_LT(abacus.total_displacement, 1.5 * tetris.total_displacement);
}

INSTANTIATE_TEST_SUITE_P(Designs, AbacusSweep,
                         ::testing::Values(AbacusCase{341, 800, 0},
                                           AbacusCase{342, 1500, 0},
                                           AbacusCase{343, 900, 2}));

TEST(Abacus, HpwlComparableToTetris) {
  Netlist nl = complx::testing::small_circuit(344, 1200);
  ComplxConfig cfg;
  cfg.max_iterations = 40;
  const Placement anchors = ComplxPlacer(nl, cfg).place().anchors;
  Placement pt = anchors, pa = anchors;
  TetrisLegalizer(nl).legalize(pt);
  AbacusLegalizer(nl).legalize(pa);
  EXPECT_LT(hpwl(nl, pa), 1.15 * hpwl(nl, pt));
}

}  // namespace
}  // namespace complx
