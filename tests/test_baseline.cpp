#include <gtest/gtest.h>

#include "baseline/fastplace_style.h"
#include "density/grid.h"
#include "helpers.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

TEST(FastPlaceStyle, ConvergesBelowOverflowTarget) {
  Netlist nl = complx::testing::small_circuit(111, 1000);
  FastPlaceConfig cfg;
  cfg.max_iterations = 120;
  FastPlaceStylePlacer placer(nl, cfg);
  const FastPlaceResult res = placer.place();
  EXPECT_LT(res.final_overflow, cfg.stop_overflow + 0.05);
  EXPECT_GT(res.iterations, 1);
}

TEST(FastPlaceStyle, BeatsRandomScatterOnHpwl) {
  Netlist nl = complx::testing::small_circuit(112, 1000);
  const double scatter = hpwl(nl, nl.snapshot());
  FastPlaceStylePlacer placer(nl, {});
  const FastPlaceResult res = placer.place();
  EXPECT_LT(hpwl(nl, res.placement), 0.8 * scatter);
}

TEST(FastPlaceStyle, CellsStayInCore) {
  Netlist nl = complx::testing::small_circuit(113, 600);
  FastPlaceStylePlacer placer(nl, {});
  const FastPlaceResult res = placer.place();
  for (CellId id : nl.movable_cells()) {
    EXPECT_TRUE(nl.core().contains(
        Point{res.placement.x[id], res.placement.y[id]}))
        << nl.cell_name(id);
  }
}

TEST(FastPlaceStyle, SpreadsThePile) {
  Netlist nl = complx::testing::small_circuit(114, 1200);
  FastPlaceStylePlacer placer(nl, {});
  const FastPlaceResult res = placer.place();
  DensityGrid g(nl, 16, 16);
  g.build(res.placement);
  // Residual overflow against full utilization must be far below the
  // ~90% a center pile would show — diffusion worked.
  EXPECT_LT(g.total_overflow(1.0) / nl.movable_area(), 0.45);
}

TEST(FastPlaceStyle, DeterministicAcrossRuns) {
  Netlist nl = complx::testing::small_circuit(115, 500);
  const FastPlaceResult a = FastPlaceStylePlacer(nl, {}).place();
  const FastPlaceResult b = FastPlaceStylePlacer(nl, {}).place();
  ASSERT_EQ(a.placement.size(), b.placement.size());
  for (size_t i = 0; i < a.placement.size(); ++i)
    EXPECT_DOUBLE_EQ(a.placement.x[i], b.placement.x[i]);
}

}  // namespace
}  // namespace complx
