#include <gtest/gtest.h>

#include "core/placer.h"
#include "dp/detailed.h"
#include "dp/orientation.h"
#include "helpers.h"
#include "legal/tetris.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

/// Cell with an off-center pin pulled toward a pad on its "wrong" side:
/// flipping must fix it.
struct FlipFixture {
  Netlist nl;
  CellId cell, pad;
  FlipFixture() {
    Cell c;
    c.width = 10;
    c.height = 10;
    c.x = 40;  // center at 45
    c.y = 40;
    cell = nl.add_cell(c, "c");
    Cell p;
    p.width = p.height = 0;
    p.x = 100;
    p.y = 45;
    p.kind = CellKind::Fixed;
    pad = nl.add_cell(p, "pad");
    // Pin offset -4: sits at x 41, but the pad is at x 100 (to the right).
    nl.add_net("n", 1.0, {{cell, -4.0, 0.0}, {pad, 0.0, 0.0}});
    nl.set_core({0, 0, 200, 200});
    nl.finalize();
  }
};

TEST(Netlist, FlipHorizontalTogglesStateAndOffsets) {
  FlipFixture f;
  EXPECT_FALSE(f.nl.cell(f.cell).flipped_x);
  EXPECT_DOUBLE_EQ(f.nl.pin(0).dx, -4.0);
  f.nl.flip_horizontal(f.cell);
  EXPECT_TRUE(f.nl.cell(f.cell).flipped_x);
  EXPECT_DOUBLE_EQ(f.nl.pin(0).dx, 4.0);
  f.nl.flip_horizontal(f.cell);
  EXPECT_FALSE(f.nl.cell(f.cell).flipped_x);
  EXPECT_DOUBLE_EQ(f.nl.pin(0).dx, -4.0);
}

TEST(Netlist, PinsOfCellIndex) {
  FlipFixture f;
  ASSERT_EQ(f.nl.pins_of_cell(f.cell).size(), 1u);
  EXPECT_EQ(f.nl.pin(f.nl.pins_of_cell(f.cell)[0]).cell, f.cell);
}

TEST(Orientation, FlipsTheObviousCell) {
  FlipFixture f;
  const Placement p = f.nl.snapshot();
  const double before = hpwl(f.nl, p);  // pin at 41, pad at 100: 59
  const OrientationResult res = optimize_orientation(f.nl, p);
  EXPECT_EQ(res.flipped, 1u);
  EXPECT_TRUE(f.nl.cell(f.cell).flipped_x);
  EXPECT_DOUBLE_EQ(res.initial_hpwl, before);
  EXPECT_DOUBLE_EQ(res.final_hpwl, before - 8.0);  // pin moves 41 -> 49
}

TEST(Orientation, IdempotentOnSecondRun) {
  FlipFixture f;
  const Placement p = f.nl.snapshot();
  optimize_orientation(f.nl, p);
  const OrientationResult again = optimize_orientation(f.nl, p);
  EXPECT_EQ(again.flipped, 0u);
  EXPECT_DOUBLE_EQ(again.initial_hpwl, again.final_hpwl);
}

TEST(Orientation, NeverIncreasesHpwl) {
  Netlist nl = complx::testing::small_circuit(171, 1500);
  ComplxConfig cfg;
  cfg.max_iterations = 35;
  Placement p = ComplxPlacer(nl, cfg).place().anchors;
  TetrisLegalizer(nl).legalize(p);
  const double before = hpwl(nl, p);
  const OrientationResult res = optimize_orientation(nl, p);
  EXPECT_LE(res.final_hpwl, before * (1 + 1e-12));
  EXPECT_GT(res.flipped, 0u);  // random pin offsets: some flips must win
  // Legality untouched (orientation does not move cells).
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
}

TEST(Orientation, ZeroOffsetCellsSkipped) {
  Netlist nl = complx::testing::mesh_netlist(3);  // all pins at centers
  const Placement p = nl.snapshot();
  const OrientationResult res = optimize_orientation(nl, p);
  EXPECT_EQ(res.flipped, 0u);
}

TEST(Orientation, StacksWithDetailedPlacement) {
  Netlist nl = complx::testing::small_circuit(172, 1000);
  ComplxConfig cfg;
  cfg.max_iterations = 35;
  Placement p = ComplxPlacer(nl, cfg).place().anchors;
  TetrisLegalizer(nl).legalize(p);
  DetailedPlacer(nl).refine(p);
  const double after_dp = hpwl(nl, p);
  const OrientationResult res = optimize_orientation(nl, p);
  // Orientation finds gains DP cannot (DP never flips).
  EXPECT_LT(res.final_hpwl, after_dp);
}

}  // namespace
}  // namespace complx
