#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "util/csv.h"
#include "util/fpcmp.h"
#include "util/geom.h"
#include "util/rng.h"
#include "util/stats.h"

namespace complx {
namespace {

// ---------------------------------------------------------------- Rect ----

TEST(Rect, BasicAccessors) {
  Rect r{1.0, 2.0, 5.0, 10.0};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 8.0);
  EXPECT_DOUBLE_EQ(r.area(), 32.0);
  EXPECT_EQ(r.center(), (Point{3.0, 6.0}));
  EXPECT_FALSE(r.empty());
}

TEST(Rect, EmptyWhenDegenerate) {
  EXPECT_TRUE((Rect{3, 3, 3, 5}).empty());
  EXPECT_TRUE((Rect{3, 5, 3, 3}).empty());
  EXPECT_TRUE((Rect{5, 1, 3, 2}).empty());
}

TEST(Rect, ContainsPointInclusiveEdges) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0.0, 0.0}));
  EXPECT_TRUE(r.contains(Point{10.0, 10.0}));
  EXPECT_TRUE(r.contains(Point{5.0, 5.0}));
  EXPECT_FALSE(r.contains(Point{10.01, 5.0}));
  EXPECT_FALSE(r.contains(Point{5.0, -0.01}));
}

TEST(Rect, ContainsRect) {
  Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.contains(Rect{2, 2, 8, 8}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{-1, 2, 8, 8}));
}

TEST(Rect, OverlapsIsStrict) {
  Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.overlaps(Rect{5, 5, 15, 15}));
  // Touching edges do not overlap.
  EXPECT_FALSE(a.overlaps(Rect{10, 0, 20, 10}));
  EXPECT_FALSE(a.overlaps(Rect{0, 10, 10, 20}));
  EXPECT_FALSE(a.overlaps(Rect{11, 0, 20, 10}));
}

TEST(Rect, OverlapArea) {
  Rect a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(a.overlap_area(Rect{5, 5, 15, 15}), 25.0);
  EXPECT_DOUBLE_EQ(a.overlap_area(Rect{10, 10, 20, 20}), 0.0);
  EXPECT_DOUBLE_EQ(a.overlap_area(Rect{2, 2, 4, 4}), 4.0);
  EXPECT_DOUBLE_EQ(a.overlap_area(a), 100.0);
}

TEST(Rect, United) {
  Rect u = Rect{0, 0, 1, 1}.united({5, 5, 6, 7});
  EXPECT_EQ(u, (Rect{0, 0, 6, 7}));
}

TEST(Rect, ClampPoint) {
  Rect r{0, 0, 10, 10};
  EXPECT_EQ(r.clamp({-5, 5}), (Point{0, 5}));
  EXPECT_EQ(r.clamp({15, 12}), (Point{10, 10}));
  EXPECT_EQ(r.clamp({3, 4}), (Point{3, 4}));
}

TEST(Geom, L1Dist) {
  EXPECT_DOUBLE_EQ(l1_dist({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(l1_dist({-1, -1}, {1, 1}), 4.0);
}

// ----------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  // Different seed should diverge immediately (overwhelming probability).
  Rng a2(42);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NetDegreeDistribution) {
  Rng rng(3);
  int small = 0, total = 20000;
  int max_seen = 0;
  for (int i = 0; i < total; ++i) {
    const int d = rng.net_degree(32);
    EXPECT_GE(d, 2);
    EXPECT_LE(d, 32);
    if (d <= 3) ++small;
    max_seen = std::max(max_seen, d);
  }
  // VLSI-like: most nets are 2-3 pins, but the tail exists.
  EXPECT_GT(small, total / 2);
  EXPECT_GT(max_seen, 10);
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

// --------------------------------------------------------------- stats ----

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
  EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-12);
  EXPECT_THROW(geomean({}), std::invalid_argument);
  EXPECT_THROW(geomean({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(geomean({1.0, -2.0}), std::invalid_argument);
}

TEST(Stats, MeanAndMedian) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

// ----------------------------------------------------------------- CSV ----

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "complx_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row(std::vector<double>{1.5, 2.5});
    csv.row(std::vector<std::string>{"x", "y"});
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1.5,2.5");
  EXPECT_EQ(l3, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWidthMismatch) {
  const std::string path = ::testing::TempDir() + "complx_csv_test2.csv";
  CsvWriter csv(path, {"a", "b", "c"});
  EXPECT_THROW(csv.row(std::vector<double>{1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  // Composition is in-memory; the unwritable path surfaces at close(),
  // where the atomic publish happens.
  CsvWriter csv("/nonexistent_dir_xyz/f.csv", {"a"});
  csv.row(std::vector<double>{1.0});
  EXPECT_THROW(csv.close(), std::runtime_error);
}

// --------------------------------------------------------------- fpcmp ----

TEST(Fpcmp, ExactlyEqualIsBitwiseIntent) {
  EXPECT_TRUE(fp::exactly_equal(1.5, 1.5));
  EXPECT_FALSE(fp::exactly_equal(1.5, std::nextafter(1.5, 2.0)));
  EXPECT_TRUE(fp::exactly_equal(0.0, -0.0));  // IEEE: +0 == -0
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(fp::exactly_equal(nan, nan));
}

TEST(Fpcmp, ExactlyZeroAndNearZero) {
  EXPECT_TRUE(fp::exactly_zero(0.0));
  EXPECT_TRUE(fp::exactly_zero(-0.0));
  EXPECT_FALSE(fp::exactly_zero(5e-324));  // smallest denormal is not zero
  EXPECT_TRUE(fp::near_zero(1e-13));
  EXPECT_FALSE(fp::near_zero(1e-11));
  EXPECT_TRUE(fp::near_zero(0.5, 1.0));  // custom tolerance
}

TEST(Fpcmp, ApproxEqualRelativeAndAbsolute) {
  // Relative regime: large magnitudes.
  EXPECT_TRUE(fp::approx_equal(1e12, 1e12 * (1.0 + 1e-10)));
  EXPECT_FALSE(fp::approx_equal(1e12, 1e12 * (1.0 + 1e-6)));
  // Absolute regime: both tiny.
  EXPECT_TRUE(fp::approx_equal(1e-13, -1e-13));
  // Symmetry.
  EXPECT_EQ(fp::approx_equal(3.0, 3.0000001), fp::approx_equal(3.0000001, 3.0));
}

TEST(Fpcmp, ApproxEqualSpecials) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(fp::approx_equal(inf, inf));
  EXPECT_FALSE(fp::approx_equal(inf, -inf));
  EXPECT_FALSE(fp::approx_equal(inf, 1e300));
  EXPECT_FALSE(fp::approx_equal(nan, nan));
  EXPECT_FALSE(fp::approx_equal(nan, 0.0));
}

TEST(Fpcmp, UlpDistanceCountsRepresentableSteps) {
  EXPECT_EQ(fp::ulp_distance(1.0, 1.0), 0);
  const double next = std::nextafter(1.0, 2.0);
  EXPECT_EQ(fp::ulp_distance(1.0, next), 1);
  EXPECT_EQ(fp::ulp_distance(next, 1.0), 1);  // symmetric
  // Across zero: -denormal to +denormal is 2 steps, not astronomical.
  const double den = 5e-324;
  EXPECT_EQ(fp::ulp_distance(-den, den), 2);
  EXPECT_EQ(fp::ulp_distance(0.0, -0.0), 0);
}

TEST(Fpcmp, UlpEqual) {
  double x = 1.0;
  for (int i = 0; i < 4; ++i) x = std::nextafter(x, 2.0);
  EXPECT_TRUE(fp::ulp_equal(1.0, x));  // 4 ulps, default budget
  x = std::nextafter(x, 2.0);
  EXPECT_FALSE(fp::ulp_equal(1.0, x));  // 5 ulps
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(fp::ulp_equal(nan, nan));
  // The classic failure of naive tolerance: 0.1 + 0.2 vs 0.3.
  EXPECT_TRUE(fp::ulp_equal(0.1 + 0.2, 0.3));
  EXPECT_FALSE(fp::exactly_equal(0.1 + 0.2, 0.3));
}

}  // namespace
}  // namespace complx
