// Shared fixtures for the ComPLx test suite: tiny hand-built netlists with
// known optima, plus convenience wrappers around the generator.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <ios>
#include <string>
#include <vector>

#include "gen/generator.h"
#include "netlist/netlist.h"

namespace complx::testing {

/// Raw IEEE-754 bit pattern of a double, for byte-exactness assertions
/// where even -0.0 vs 0.0 must be told apart (frozen-cell ECO contract,
/// coarse-netlist reproducibility).
inline uint64_t bits(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Asserts two coordinate vectors are identical to the last bit. Doubles are
/// compared by value with == (not memcmp) so that, e.g., -0.0 == 0.0 — what
/// the determinism contract actually promises is identical *values* from
/// identical arithmetic; NaNs would fail, which is also what we want.
inline void expect_vec_bitwise_equal(const Vec& a, const Vec& b,
                                     const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what << ": size mismatch";
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      ADD_FAILURE() << what << ": first mismatch at index " << i << ": "
                    << std::hexfloat << a[i] << " vs " << b[i];
      return;
    }
  }
}

/// Bitwise comparison of two placements (both axes, all cells).
inline void expect_placements_bitwise_equal(const Placement& a,
                                            const Placement& b) {
  expect_vec_bitwise_equal(a.x, b.x, "x coordinates");
  expect_vec_bitwise_equal(a.y, b.y, "y coordinates");
}

/// Two movable cells between two fixed pads on a line:
///   pad0 (x=0) -- c0 -- c1 -- pad1 (x=30)
/// Quadratic optimum spaces them evenly. Core is [0,30] x [0,12].
inline Netlist two_cell_chain() {
  Netlist nl;
  Cell pad0;
  pad0.width = pad0.height = 0.0;
  pad0.x = 0.0;
  pad0.y = 6.0;
  pad0.kind = CellKind::Fixed;
  const CellId p0 = nl.add_cell(pad0, "pad0");

  Cell pad1 = pad0;
  pad1.x = 30.0;
  const CellId p1 = nl.add_cell(pad1, "pad1");

  Cell c;
  c.width = 2.0;
  c.height = 12.0;
  c.kind = CellKind::Movable;
  const CellId c0 = nl.add_cell(c, "c0");
  const CellId c1 = nl.add_cell(c, "c1");

  nl.add_net("e0", 1.0, {{p0, 0, 0}, {c0, 0, 0}});
  nl.add_net("e1", 1.0, {{c0, 0, 0}, {c1, 0, 0}});
  nl.add_net("e2", 1.0, {{c1, 0, 0}, {p1, 0, 0}});
  nl.set_core({0.0, 0.0, 30.0, 12.0});
  nl.finalize();
  return nl;
}

/// A k x k grid of unit cells plus 4 corner pads; nets connect grid
/// neighbours (mesh) so the optimal placement is the grid itself.
inline Netlist mesh_netlist(int k, double cell_w = 4.0, double row_h = 12.0,
                            double core_scale = 2.0) {
  Netlist nl;
  const double side = core_scale * k * std::max(cell_w, row_h);
  const double spacing = side / (k + 1);
  std::vector<CellId> ids;
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < k; ++i) {
      Cell c;
      c.width = cell_w;
      c.height = row_h;
      c.kind = CellKind::Movable;
      // Start on the ideal grid so mesh tests have meaningful geometry.
      c.x = (i + 1) * spacing - cell_w / 2.0;
      c.y = (j + 1) * spacing - row_h / 2.0;
      ids.push_back(nl.add_cell(c, "g" + std::to_string(i) + "_" + std::to_string(j)));
    }
  }
  // Corner pads.
  std::vector<CellId> pads;
  const double pos[4][2] = {{0, 0}, {side, 0}, {0, side}, {side, side}};
  for (int t = 0; t < 4; ++t) {
    Cell p;
    p.width = p.height = 0.0;
    p.x = pos[t][0];
    p.y = pos[t][1];
    p.kind = CellKind::Fixed;
    pads.push_back(nl.add_cell(p, "pad" + std::to_string(t)));
  }
  auto at = [&](int i, int j) { return ids[static_cast<size_t>(j * k + i)]; };
  int net_id = 0;
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < k; ++i) {
      if (i + 1 < k)
        nl.add_net("h" + std::to_string(net_id++), 1.0,
                   {{at(i, j), 0, 0}, {at(i + 1, j), 0, 0}});
      if (j + 1 < k)
        nl.add_net("v" + std::to_string(net_id++), 1.0,
                   {{at(i, j), 0, 0}, {at(i, j + 1), 0, 0}});
    }
  }
  // Tie the corners of the mesh to the pads.
  nl.add_net("p0", 1.0, {{pads[0], 0, 0}, {at(0, 0), 0, 0}});
  nl.add_net("p1", 1.0, {{pads[1], 0, 0}, {at(k - 1, 0), 0, 0}});
  nl.add_net("p2", 1.0, {{pads[2], 0, 0}, {at(0, k - 1), 0, 0}});
  nl.add_net("p3", 1.0, {{pads[3], 0, 0}, {at(k - 1, k - 1), 0, 0}});
  nl.set_core({0.0, 0.0, side, side});
  nl.finalize();
  return nl;
}

/// Small generated circuit for integration-style tests.
inline Netlist small_circuit(uint64_t seed = 7, size_t cells = 2000,
                             size_t movable_macros = 0,
                             double target_density = 1.0) {
  GenParams p;
  p.seed = seed;
  p.num_cells = cells;
  p.num_movable_macros = movable_macros;
  p.num_fixed_macros = movable_macros ? 2 : 0;
  p.utilization = 0.6;
  p.target_density = target_density;
  return generate_circuit(p);
}

}  // namespace complx::testing
