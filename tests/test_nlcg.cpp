#include <gtest/gtest.h>

#include "helpers.h"
#include "nlcg/nlcg.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

TEST(Nlcg, MinimizesQuadraticBowl) {
  // f(v) = sum (v_i - i)^2, minimum at v_i = i.
  auto f = [](const Vec& v, Vec& g) {
    g.assign(v.size(), 0.0);
    double s = 0.0;
    for (size_t i = 0; i < v.size(); ++i) {
      const double d = v[i] - static_cast<double>(i);
      s += d * d;
      g[i] = 2 * d;
    }
    return s;
  };
  Vec v(10, 100.0);
  NlcgOptions opts;
  opts.max_iterations = 200;
  opts.grad_tolerance = 1e-10;
  const NlcgResult res = minimize_nlcg(f, v, opts);
  for (size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(v[i], static_cast<double>(i), 1e-3);
  EXPECT_LT(res.objective, 1e-5);
}

TEST(Nlcg, MinimizesRosenbrock2D) {
  auto f = [](const Vec& v, Vec& g) {
    const double x = v[0], y = v[1];
    g.assign(2, 0.0);
    const double a = y - x * x;
    g[0] = -400 * x * a + 2 * (x - 1);
    g[1] = 200 * a;
    return 100 * a * a + (x - 1) * (x - 1);
  };
  Vec v{-1.2, 1.0};
  NlcgOptions opts;
  opts.max_iterations = 5000;
  opts.grad_tolerance = 1e-12;
  opts.initial_step = 0.01;
  minimize_nlcg(f, v, opts);
  EXPECT_NEAR(v[0], 1.0, 0.05);
  EXPECT_NEAR(v[1], 1.0, 0.1);
}

TEST(Nlcg, MonotoneDecrease) {
  // Armijo acceptance implies the objective never increases.
  auto quad = [](const Vec& v, Vec& g) {
    g.assign(v.size(), 0.0);
    double s = 0.0;
    for (size_t i = 0; i < v.size(); ++i) {
      const double c = static_cast<double>(i + 1);
      s += c * v[i] * v[i];
      g[i] = 2.0 * c * v[i];
    }
    return s;
  };
  Vec v(5, 3.0);
  Vec g0;
  double last = quad(v, g0);
  for (int it = 0; it < 10; ++it) {
    NlcgOptions opts;
    opts.max_iterations = 1;
    minimize_nlcg(quad, v, opts);
    Vec g;
    const double now = quad(v, g);
    EXPECT_LE(now, last + 1e-12);
    last = now;
  }
}

TEST(Nlcg, PlacementAdapterReducesLseWirelength) {
  Netlist nl = complx::testing::small_circuit(131, 400);
  LseWl lse(nl, 2.0 * nl.row_height());
  Placement p = nl.snapshot();
  const double before = hpwl(nl, p);
  NlcgOptions opts;
  opts.max_iterations = 150;
  minimize_smooth_placement(nl, lse, p, nullptr, opts);
  EXPECT_LT(hpwl(nl, p), 0.75 * before);
}

TEST(Nlcg, PlacementAdapterRespectsCore) {
  Netlist nl = complx::testing::small_circuit(132, 300);
  LseWl lse(nl, 2.0 * nl.row_height());
  Placement p = nl.snapshot();
  minimize_smooth_placement(nl, lse, p, nullptr, {});
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    EXPECT_GE(p.x[id] - c.width / 2.0, nl.core().xl - 1e-9);
    EXPECT_LE(p.x[id] + c.width / 2.0, nl.core().xh + 1e-9);
  }
}

TEST(Nlcg, AnchorsPinThePlacement) {
  Netlist nl = complx::testing::small_circuit(133, 300);
  LseWl lse(nl, 2.0 * nl.row_height());
  Placement p = nl.snapshot();
  AnchorSet anchors(nl.num_cells());
  for (CellId id : nl.movable_cells()) {
    anchors.target_x[id] = p.x[id];
    anchors.target_y[id] = p.y[id];
    anchors.weight_x[id] = 1e5;
    anchors.weight_y[id] = 1e5;
  }
  const Placement before = p;
  minimize_smooth_placement(nl, lse, p, &anchors, {});
  double max_move = 0.0;
  for (CellId id : nl.movable_cells())
    max_move = std::max(max_move, std::abs(p.x[id] - before.x[id]) +
                                      std::abs(p.y[id] - before.y[id]));
  EXPECT_LT(max_move, 1.0);
}

TEST(Nlcg, FixedCellsNeverMove) {
  Netlist nl = complx::testing::small_circuit(134, 300);
  LseWl lse(nl, 2.0 * nl.row_height());
  Placement p = nl.snapshot();
  std::vector<std::pair<double, double>> fixed_pos;
  for (CellId id = 0; id < nl.num_cells(); ++id)
    if (!nl.cell(id).movable()) fixed_pos.push_back({p.x[id], p.y[id]});
  minimize_smooth_placement(nl, lse, p, nullptr, {});
  size_t k = 0;
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    if (nl.cell(id).movable()) continue;
    EXPECT_DOUBLE_EQ(p.x[id], fixed_pos[k].first);
    EXPECT_DOUBLE_EQ(p.y[id], fixed_pos[k].second);
    ++k;
  }
}

}  // namespace
}  // namespace complx
