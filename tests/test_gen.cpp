#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gen/generator.h"
#include "gen/peko.h"
#include "gen/suites.h"
#include "legal/tetris.h"
#include "util/parallel.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

TEST(Generator, DeterministicBySeed) {
  GenParams p;
  p.num_cells = 800;
  p.seed = 99;
  const Netlist a = generate_circuit(p);
  const Netlist b = generate_circuit(p);
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (CellId i = 0; i < a.num_cells(); ++i) {
    EXPECT_DOUBLE_EQ(a.cell(i).x, b.cell(i).x);
    EXPECT_DOUBLE_EQ(a.cell(i).width, b.cell(i).width);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GenParams p;
  p.num_cells = 800;
  p.seed = 1;
  const Netlist a = generate_circuit(p);
  p.seed = 2;
  const Netlist b = generate_circuit(p);
  bool any_diff = a.num_nets() != b.num_nets();
  for (CellId i = 0; !any_diff && i < a.num_cells(); ++i)
    any_diff = a.cell(i).width != b.cell(i).width;
  EXPECT_TRUE(any_diff);
}

TEST(Generator, TooFewCellsThrows) {
  GenParams p;
  p.num_cells = 4;
  EXPECT_THROW(generate_circuit(p), std::invalid_argument);
}

struct GenSweep {
  size_t cells;
  size_t mov_macros;
  size_t fix_macros;
  double util;
  uint64_t seed;
};

class GeneratorSweep : public ::testing::TestWithParam<GenSweep> {
 protected:
  Netlist make() const {
    const GenSweep& s = GetParam();
    GenParams p;
    p.num_cells = s.cells;
    p.num_movable_macros = s.mov_macros;
    p.num_fixed_macros = s.fix_macros;
    p.utilization = s.util;
    p.seed = s.seed;
    return generate_circuit(p);
  }
};

TEST_P(GeneratorSweep, CellCountsMatch) {
  const Netlist nl = make();
  const GenSweep& s = GetParam();
  EXPECT_EQ(nl.num_movable(), s.cells + s.mov_macros);
  size_t fixed = 0, macros = 0;
  for (const Cell& c : nl.cells()) {
    if (!c.movable()) ++fixed;
    if (c.is_macro()) ++macros;
  }
  EXPECT_EQ(macros, s.mov_macros);
  EXPECT_GE(fixed, s.fix_macros);  // + pads
}

TEST_P(GeneratorSweep, UtilizationBudgetHolds) {
  const Netlist nl = make();
  const double used = nl.movable_area() + nl.fixed_area_in_core();
  const double util = used / nl.core().area();
  // Core sizing targets the requested utilization from above.
  EXPECT_LE(util, GetParam().util + 0.02);
  EXPECT_GE(util, GetParam().util - 0.15);
}

TEST_P(GeneratorSweep, NetDegreesAreRealistic) {
  const Netlist nl = make();
  size_t small = 0;
  for (const Net& n : nl.nets()) {
    EXPECT_GE(n.num_pins, 2u);
    if (n.num_pins <= 3) ++small;
  }
  EXPECT_GT(static_cast<double>(small) / static_cast<double>(nl.num_nets()),
            0.5);
}

TEST_P(GeneratorSweep, PadsOutsideCore) {
  const Netlist nl = make();
  for (const Cell& c : nl.cells()) {
    if (c.movable() || c.width > 2 * nl.row_height()) continue;  // pads only
    EXPECT_FALSE(nl.core().contains(c.bounds().center()))
        << " pad should ring the core";
  }
}

TEST_P(GeneratorSweep, MovableCellsStartInsideCore) {
  const Netlist nl = make();
  for (CellId id : nl.movable_cells()) {
    EXPECT_TRUE(nl.core().contains(Point{nl.cell(id).cx(), nl.cell(id).cy()}))
        << nl.cell_name(id);
  }
}

TEST_P(GeneratorSweep, PinsReferenceValidCellsWithBoundedOffsets) {
  const Netlist nl = make();
  for (PinId k = 0; k < nl.num_pins(); ++k) {
    const Pin& p = nl.pin(k);
    ASSERT_LT(p.cell, nl.num_cells());
    const Cell& c = nl.cell(p.cell);
    EXPECT_LE(std::abs(p.dx), c.width / 2.0 + 1e-9);
    EXPECT_LE(std::abs(p.dy), c.height / 2.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GeneratorSweep,
    ::testing::Values(GenSweep{500, 0, 0, 0.7, 10},
                      GenSweep{2000, 0, 0, 0.6, 11},
                      GenSweep{2000, 4, 2, 0.5, 12},
                      GenSweep{5000, 0, 8, 0.65, 13},
                      GenSweep{1000, 8, 0, 0.4, 14}));

// ---------------------------------------------------------------- suites --

TEST(Suites, Ispd2005HasEightDesignsWithMonotoneNames) {
  const auto suite = ispd2005_suite(100);
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[0].paper_name, "ADAPTEC1");
  EXPECT_EQ(suite[7].paper_name, "BIGBLUE4");
  for (const SuiteEntry& e : suite) {
    EXPECT_GE(e.params.num_cells, 1000u);
    EXPECT_DOUBLE_EQ(e.params.target_density, 1.0);
  }
  // Size progression mirrors the contest.
  EXPECT_GT(suite[7].params.num_cells, suite[0].params.num_cells);
}

TEST(Suites, Ispd2006CarriesTargetDensitiesAndMacros) {
  const auto suite = ispd2006_suite(100);
  ASSERT_EQ(suite.size(), 8u);
  for (const SuiteEntry& e : suite) {
    EXPECT_GT(e.params.num_movable_macros, 0u);
    EXPECT_LT(e.params.target_density, 1.0);
  }
  EXPECT_DOUBLE_EQ(suite[0].params.target_density, 0.50);  // ADAPTEC5
  EXPECT_DOUBLE_EQ(suite[2].params.target_density, 0.90);  // NEWBLUE2
}

TEST(Suites, ScaleDivisorScalesSizes) {
  const auto big = ispd2005_suite(20);
  const auto small = ispd2005_suite(200);
  for (size_t i = 0; i < big.size(); ++i)
    EXPECT_GE(big[i].params.num_cells, small[i].params.num_cells);
}

TEST(Suites, EnvOverrideParses) {
  setenv("COMPLX_BENCH_SCALE", "17", 1);
  EXPECT_EQ(bench_scale_from_env(40), 17u);
  setenv("COMPLX_BENCH_SCALE", " 17 ", 1);  // stray whitespace is fine
  EXPECT_EQ(bench_scale_from_env(40), 17u);
  unsetenv("COMPLX_BENCH_SCALE");
  EXPECT_EQ(bench_scale_from_env(40), 40u);
  setenv("COMPLX_BENCH_SCALE", "", 1);  // set-but-empty behaves like unset
  EXPECT_EQ(bench_scale_from_env(40), 40u);
  unsetenv("COMPLX_BENCH_SCALE");
}

// Regression: a set-but-invalid COMPLX_BENCH_SCALE used to fall back to the
// default silently, so a typo'd `COMPLX_BENCH_SCALE=O.5` benchmarked the
// wrong suite size without anyone noticing. It must throw instead.
TEST(Suites, EnvOverrideRejectsGarbage) {
  for (const char* bad : {"garbage", "0", "-3", "17x", "1.5", "+", "999999999999999999999"}) {
    setenv("COMPLX_BENCH_SCALE", bad, 1);
    EXPECT_THROW(bench_scale_from_env(40), std::runtime_error)
        << "value: " << bad;
  }
  unsetenv("COMPLX_BENCH_SCALE");
}

// ------------------------------------------------------------------ peko --
// Known-optimum construction (gen/peko.h). The whole point of the module is
// the certificate, so the tests demand *exact* equality: the closed form
// sums integer multiples of W, which doubles represent exactly.

TEST(Peko, NetOptimumClosedForm) {
  const double W = 12.0;
  EXPECT_EQ(peko_net_optimum(2, W), W);
  EXPECT_EQ(peko_net_optimum(3, W), 2 * W);
  EXPECT_EQ(peko_net_optimum(4, W), 2 * W);
  EXPECT_EQ(peko_net_optimum(9, W), 4 * W);
  EXPECT_EQ(peko_net_optimum(16, W), 6 * W);
  // Degrees without a clean provable bound are refused, not approximated.
  for (const int bad : {0, 1, 5, 6, 7, 8, 10, 15, 17})
    EXPECT_THROW(peko_net_optimum(bad, W), std::invalid_argument) << bad;
}

struct PekoSweep {
  size_t cells;
  double util;
  size_t macros;
  uint64_t seed;
};

class PekoConstruction : public ::testing::TestWithParam<PekoSweep> {
 protected:
  PekoParams params() const {
    const PekoSweep& s = GetParam();
    PekoParams p;
    p.num_cells = s.cells;
    p.utilization = s.util;
    p.num_fixed_macros = s.macros;
    p.seed = s.seed;
    return p;
  }
};

TEST_P(PekoConstruction, ConstructedPlacementAchievesOptimumExactly) {
  const PekoDesign d = generate_peko(params());
  ASSERT_GT(d.optimum_hpwl, 0.0);
  // Bitwise, not approximate: the stored placement IS the certificate.
  EXPECT_EQ(stored_hpwl(d.netlist), d.optimum_hpwl);
  EXPECT_EQ(hpwl(d.netlist, d.netlist.snapshot()), d.optimum_hpwl);
}

TEST_P(PekoConstruction, ConstructedPlacementIsLegal) {
  const PekoDesign d = generate_peko(params());
  const Netlist& nl = d.netlist;
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, nl.snapshot()));
  // Every placeable cell (and macro) sits fully inside the core.
  for (const Cell& c : nl.cells()) {
    const Rect b = c.bounds();
    EXPECT_GE(b.xl, nl.core().xl - 1e-9);
    EXPECT_GE(b.yl, nl.core().yl - 1e-9);
    EXPECT_LE(b.xh, nl.core().xh + 1e-9);
    EXPECT_LE(b.yh, nl.core().yh + 1e-9);
  }
}

TEST_P(PekoConstruction, ShapeAndBookkeeping) {
  const PekoDesign d = generate_peko(params());
  const Netlist& nl = d.netlist;
  EXPECT_GE(d.cells, GetParam().cells);  // rounded up to full patches
  EXPECT_EQ(d.cells, d.patches * d.patch_side * d.patch_side);
  EXPECT_EQ(d.anchors, d.patches);  // one fixed anchor per patch
  EXPECT_EQ(nl.num_cells(), d.cells + d.macros_placed);
  EXPECT_EQ(nl.num_movable(), d.cells - d.anchors);
  EXPECT_LE(d.macros_placed, GetParam().macros);
  // Only the supported degrees appear (otherwise the certificate is void),
  // and every net has pins on distinct cells with zero offsets.
  const std::set<uint32_t> supported = {2, 3, 4, 9, 16};
  for (const Net& n : nl.nets())
    EXPECT_TRUE(supported.count(n.num_pins)) << "degree " << n.num_pins;
  for (PinId k = 0; k < nl.num_pins(); ++k) {
    EXPECT_EQ(nl.pin(k).dx, 0.0);
    EXPECT_EQ(nl.pin(k).dy, 0.0);
  }
}

TEST_P(PekoConstruction, DeterministicBySeed) {
  const PekoDesign a = generate_peko(params());
  const PekoDesign b = generate_peko(params());
  EXPECT_EQ(a.optimum_hpwl, b.optimum_hpwl);
  ASSERT_EQ(a.netlist.num_cells(), b.netlist.num_cells());
  ASSERT_EQ(a.netlist.num_nets(), b.netlist.num_nets());
  ASSERT_EQ(a.netlist.num_pins(), b.netlist.num_pins());
  for (CellId i = 0; i < a.netlist.num_cells(); ++i) {
    EXPECT_EQ(a.netlist.cell(i).x, b.netlist.cell(i).x) << i;
    EXPECT_EQ(a.netlist.cell(i).y, b.netlist.cell(i).y) << i;
    EXPECT_EQ(a.netlist.cell_name(i), b.netlist.cell_name(i)) << i;
  }
}

TEST_P(PekoConstruction, OptimumInvariantAcrossThreadCounts) {
  struct ThreadGuard {
    ~ThreadGuard() { set_global_threads(0); }
  } guard;
  double first = 0.0;
  for (const size_t threads : {1u, 2u, 8u}) {
    set_global_threads(threads);
    const PekoDesign d = generate_peko(params());
    if (first == 0.0) first = d.optimum_hpwl;
    EXPECT_EQ(d.optimum_hpwl, first) << threads << " threads";
    EXPECT_EQ(stored_hpwl(d.netlist), d.optimum_hpwl)
        << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PekoConstruction,
    ::testing::Values(PekoSweep{64, 0.55, 0, 1},
                      PekoSweep{256, 0.75, 2, 42},
                      PekoSweep{1000, 0.65, 0, 7},
                      PekoSweep{1024, 0.85, 4, 1234},
                      PekoSweep{300, 0.40, 1, 99}));

TEST(Peko, DifferentSeedsDiffer) {
  PekoParams p;
  p.num_cells = 256;
  p.seed = 1;
  const PekoDesign a = generate_peko(p);
  p.seed = 2;
  const PekoDesign b = generate_peko(p);
  // The seed drives the random window draws, so the pin lists must differ
  // even when the net count and the optimum sum happen to coincide.
  bool any_diff = a.netlist.num_pins() != b.netlist.num_pins();
  for (PinId k = 0; !any_diff && k < a.netlist.num_pins(); ++k)
    any_diff = a.netlist.pin(k).cell != b.netlist.pin(k).cell;
  EXPECT_TRUE(any_diff);
}

TEST(Peko, InvalidParamsThrow) {
  PekoParams p;
  p.num_cells = 2;
  EXPECT_THROW(generate_peko(p), std::invalid_argument);
  p = PekoParams{};
  p.utilization = 0.0;
  EXPECT_THROW(generate_peko(p), std::invalid_argument);
  p = PekoParams{};
  p.utilization = 0.97;
  EXPECT_THROW(generate_peko(p), std::invalid_argument);
  p = PekoParams{};
  p.w_pair = p.w_triple = p.w_quad = p.w_nine = p.w_sixteen = 0.0;
  EXPECT_THROW(generate_peko(p), std::invalid_argument);
}

TEST(Peko, AnchorsAreFixedAtOptimalPositions) {
  PekoParams p;
  p.num_cells = 256;
  p.seed = 5;
  const PekoDesign d = generate_peko(p);
  size_t fixed_cells = 0;
  for (CellId id = 0; id < d.netlist.num_cells(); ++id) {
    const Cell& c = d.netlist.cell(id);
    if (!c.movable() && !c.is_macro() && d.netlist.cell_name(id)[0] == 'c')
      ++fixed_cells;
  }
  EXPECT_EQ(fixed_cells, d.anchors);
  EXPECT_GT(d.anchors, 0u);
}

}  // namespace
}  // namespace complx
