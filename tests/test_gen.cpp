#include <gtest/gtest.h>

#include <map>

#include "gen/generator.h"
#include "gen/suites.h"

namespace complx {
namespace {

TEST(Generator, DeterministicBySeed) {
  GenParams p;
  p.num_cells = 800;
  p.seed = 99;
  const Netlist a = generate_circuit(p);
  const Netlist b = generate_circuit(p);
  ASSERT_EQ(a.num_cells(), b.num_cells());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (CellId i = 0; i < a.num_cells(); ++i) {
    EXPECT_DOUBLE_EQ(a.cell(i).x, b.cell(i).x);
    EXPECT_DOUBLE_EQ(a.cell(i).width, b.cell(i).width);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GenParams p;
  p.num_cells = 800;
  p.seed = 1;
  const Netlist a = generate_circuit(p);
  p.seed = 2;
  const Netlist b = generate_circuit(p);
  bool any_diff = a.num_nets() != b.num_nets();
  for (CellId i = 0; !any_diff && i < a.num_cells(); ++i)
    any_diff = a.cell(i).width != b.cell(i).width;
  EXPECT_TRUE(any_diff);
}

TEST(Generator, TooFewCellsThrows) {
  GenParams p;
  p.num_cells = 4;
  EXPECT_THROW(generate_circuit(p), std::invalid_argument);
}

struct GenSweep {
  size_t cells;
  size_t mov_macros;
  size_t fix_macros;
  double util;
  uint64_t seed;
};

class GeneratorSweep : public ::testing::TestWithParam<GenSweep> {
 protected:
  Netlist make() const {
    const GenSweep& s = GetParam();
    GenParams p;
    p.num_cells = s.cells;
    p.num_movable_macros = s.mov_macros;
    p.num_fixed_macros = s.fix_macros;
    p.utilization = s.util;
    p.seed = s.seed;
    return generate_circuit(p);
  }
};

TEST_P(GeneratorSweep, CellCountsMatch) {
  const Netlist nl = make();
  const GenSweep& s = GetParam();
  EXPECT_EQ(nl.num_movable(), s.cells + s.mov_macros);
  size_t fixed = 0, macros = 0;
  for (const Cell& c : nl.cells()) {
    if (!c.movable()) ++fixed;
    if (c.is_macro()) ++macros;
  }
  EXPECT_EQ(macros, s.mov_macros);
  EXPECT_GE(fixed, s.fix_macros);  // + pads
}

TEST_P(GeneratorSweep, UtilizationBudgetHolds) {
  const Netlist nl = make();
  const double used = nl.movable_area() + nl.fixed_area_in_core();
  const double util = used / nl.core().area();
  // Core sizing targets the requested utilization from above.
  EXPECT_LE(util, GetParam().util + 0.02);
  EXPECT_GE(util, GetParam().util - 0.15);
}

TEST_P(GeneratorSweep, NetDegreesAreRealistic) {
  const Netlist nl = make();
  size_t small = 0;
  for (const Net& n : nl.nets()) {
    EXPECT_GE(n.num_pins, 2u);
    if (n.num_pins <= 3) ++small;
  }
  EXPECT_GT(static_cast<double>(small) / static_cast<double>(nl.num_nets()),
            0.5);
}

TEST_P(GeneratorSweep, PadsOutsideCore) {
  const Netlist nl = make();
  for (const Cell& c : nl.cells()) {
    if (c.movable() || c.width > 2 * nl.row_height()) continue;  // pads only
    EXPECT_FALSE(nl.core().contains(c.bounds().center()))
        << c.name << " should ring the core";
  }
}

TEST_P(GeneratorSweep, MovableCellsStartInsideCore) {
  const Netlist nl = make();
  for (CellId id : nl.movable_cells()) {
    EXPECT_TRUE(nl.core().contains(Point{nl.cell(id).cx(), nl.cell(id).cy()}))
        << nl.cell(id).name;
  }
}

TEST_P(GeneratorSweep, PinsReferenceValidCellsWithBoundedOffsets) {
  const Netlist nl = make();
  for (PinId k = 0; k < nl.num_pins(); ++k) {
    const Pin& p = nl.pin(k);
    ASSERT_LT(p.cell, nl.num_cells());
    const Cell& c = nl.cell(p.cell);
    EXPECT_LE(std::abs(p.dx), c.width / 2.0 + 1e-9);
    EXPECT_LE(std::abs(p.dy), c.height / 2.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GeneratorSweep,
    ::testing::Values(GenSweep{500, 0, 0, 0.7, 10},
                      GenSweep{2000, 0, 0, 0.6, 11},
                      GenSweep{2000, 4, 2, 0.5, 12},
                      GenSweep{5000, 0, 8, 0.65, 13},
                      GenSweep{1000, 8, 0, 0.4, 14}));

// ---------------------------------------------------------------- suites --

TEST(Suites, Ispd2005HasEightDesignsWithMonotoneNames) {
  const auto suite = ispd2005_suite(100);
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[0].paper_name, "ADAPTEC1");
  EXPECT_EQ(suite[7].paper_name, "BIGBLUE4");
  for (const SuiteEntry& e : suite) {
    EXPECT_GE(e.params.num_cells, 1000u);
    EXPECT_DOUBLE_EQ(e.params.target_density, 1.0);
  }
  // Size progression mirrors the contest.
  EXPECT_GT(suite[7].params.num_cells, suite[0].params.num_cells);
}

TEST(Suites, Ispd2006CarriesTargetDensitiesAndMacros) {
  const auto suite = ispd2006_suite(100);
  ASSERT_EQ(suite.size(), 8u);
  for (const SuiteEntry& e : suite) {
    EXPECT_GT(e.params.num_movable_macros, 0u);
    EXPECT_LT(e.params.target_density, 1.0);
  }
  EXPECT_DOUBLE_EQ(suite[0].params.target_density, 0.50);  // ADAPTEC5
  EXPECT_DOUBLE_EQ(suite[2].params.target_density, 0.90);  // NEWBLUE2
}

TEST(Suites, ScaleDivisorScalesSizes) {
  const auto big = ispd2005_suite(20);
  const auto small = ispd2005_suite(200);
  for (size_t i = 0; i < big.size(); ++i)
    EXPECT_GE(big[i].params.num_cells, small[i].params.num_cells);
}

TEST(Suites, EnvOverrideParses) {
  setenv("COMPLX_BENCH_SCALE", "17", 1);
  EXPECT_EQ(bench_scale_from_env(40), 17u);
  setenv("COMPLX_BENCH_SCALE", "garbage", 1);
  EXPECT_EQ(bench_scale_from_env(40), 40u);
  unsetenv("COMPLX_BENCH_SCALE");
  EXPECT_EQ(bench_scale_from_env(40), 40u);
}

}  // namespace
}  // namespace complx
