// Numerical-safety watchdog: unit tests for the monitor/checkpoint pieces
// plus end-to-end fault-injection runs proving the placer never returns a
// non-finite placement and recovers to its best-so-far checkpoint.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>

#include "core/health.h"
#include "core/placer.h"
#include "helpers.h"
#include "legal/tetris.h"
#include "util/log.h"

namespace complx {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

IterationStats healthy_stats() {
  IterationStats st;
  st.iteration = 1;
  st.lambda = 1.0;
  st.phi_lower = 100.0;
  st.phi_upper = 120.0;
  st.pi = 10.0;
  st.lagrangian = 110.0;
  st.overflow_ratio = 0.5;
  return st;
}

// ---------------------------------------------------------------------------
// HealthMonitor unit tests.

TEST(HealthMonitor, PlacementFiniteDetectsNanAndInf) {
  const Netlist nl = testing::two_cell_chain();
  Placement p = nl.snapshot();
  EXPECT_TRUE(HealthMonitor::placement_finite(nl, p));
  const CellId id = nl.movable_cells()[0];
  p.x[id] = kNan;
  EXPECT_FALSE(HealthMonitor::placement_finite(nl, p));
  p.x[id] = 0.0;
  p.y[id] = kInf;
  EXPECT_FALSE(HealthMonitor::placement_finite(nl, p));
}

TEST(HealthMonitor, FirstIterationIsNeverDivergent) {
  const Netlist nl = testing::two_cell_chain();
  HealthMonitor monitor(nl, HealthOptions{});
  // No accepted references yet: even an enormous first point is healthy.
  IterationStats st = healthy_stats();
  st.phi_lower = 1e30;
  st.pi = 1e30;
  st.lagrangian = 1e30;
  EXPECT_EQ(monitor.check_stats(st), HealthFault::None);
}

TEST(HealthMonitor, FlagsNonFiniteStatsAndLambda) {
  const Netlist nl = testing::two_cell_chain();
  HealthMonitor monitor(nl, HealthOptions{});
  IterationStats st = healthy_stats();
  st.lambda = kNan;
  EXPECT_EQ(monitor.check_stats(st), HealthFault::NonFiniteLambda);
  st = healthy_stats();
  st.pi = kInf;
  EXPECT_EQ(monitor.check_stats(st), HealthFault::NonFiniteStats);
  st = healthy_stats();
  st.phi_lower = kNan;
  EXPECT_EQ(monitor.check_stats(st), HealthFault::NonFiniteStats);
}

TEST(HealthMonitor, DetectsBlowupsAgainstAcceptedReferences) {
  const Netlist nl = testing::two_cell_chain();
  HealthOptions opts;  // ratios 50 / 20 / 100
  HealthMonitor monitor(nl, opts);
  monitor.accept(healthy_stats());

  IterationStats st = healthy_stats();
  st.phi_lower = 100.0 * opts.phi_blowup_ratio * 1.01;
  EXPECT_EQ(monitor.check_stats(st), HealthFault::ObjectiveBlowup);

  st = healthy_stats();
  st.pi = 10.0 * opts.pi_blowup_ratio * 1.01;
  EXPECT_EQ(monitor.check_stats(st), HealthFault::PenaltyBlowup);

  st = healthy_stats();
  st.lagrangian = 110.0 * opts.lagrangian_blowup_ratio * 1.01;
  EXPECT_EQ(monitor.check_stats(st), HealthFault::LagrangianBlowup);

  // Just under every threshold: healthy.
  st = healthy_stats();
  st.phi_lower = 100.0 * opts.phi_blowup_ratio * 0.99;
  EXPECT_EQ(monitor.check_stats(st), HealthFault::None);
}

TEST(HealthStats, CountsPerKind) {
  HealthStats hs;
  hs.count(HealthFault::None);
  EXPECT_EQ(hs.faults, 0u);
  hs.count(HealthFault::CgBreakdown);
  hs.count(HealthFault::CgBreakdown);
  hs.count(HealthFault::NonFiniteLambda);
  EXPECT_EQ(hs.faults, 3u);
  EXPECT_EQ(hs.cg_breakdowns, 2u);
  EXPECT_EQ(hs.nonfinite_lambda, 1u);
}

TEST(SolverStats, AggregatesCgResults) {
  SolverStats s;
  CgResult ok;
  ok.converged = true;
  ok.iterations = 10;
  ok.residual_norm = 1e-8;
  CgResult broke;
  broke.breakdown = true;
  broke.iterations = 3;
  broke.residual_norm = 0.5;
  s.add(ok);
  s.add(broke);
  EXPECT_EQ(s.solves, 2u);
  EXPECT_EQ(s.nonconverged, 1u);
  EXPECT_EQ(s.breakdowns, 1u);
  EXPECT_EQ(s.total_cg_iterations, 13u);
  EXPECT_DOUBLE_EQ(s.worst_residual, 0.5);
}

// ---------------------------------------------------------------------------
// Checkpoint unit tests.

TEST(Checkpoint, RanksGridThenOverflowThenPhiUpper) {
  // Same grid: overflow first, Φ_upper second.
  EXPECT_TRUE(Checkpoint::ranks_better(64, 0.1, 500.0, 64, 0.2, 100.0));
  EXPECT_FALSE(Checkpoint::ranks_better(64, 0.2, 100.0, 64, 0.1, 500.0));
  EXPECT_TRUE(Checkpoint::ranks_better(64, 0.1, 100.0, 64, 0.1, 200.0));
  EXPECT_FALSE(Checkpoint::ranks_better(64, 0.1, 100.0, 64, 0.1, 100.0));
  // Overflow is only comparable at equal resolution: a finer grid always
  // supersedes a coarser one, even with nominally higher overflow.
  EXPECT_TRUE(Checkpoint::ranks_better(64, 0.8, 500.0, 4, 0.1, 100.0));
  EXPECT_FALSE(Checkpoint::ranks_better(4, 0.1, 100.0, 64, 0.8, 500.0));
}

TEST(Checkpoint, OfferKeepsBestAndRefreshesTies) {
  const Netlist nl = testing::two_cell_chain();
  const Placement p = nl.snapshot();
  Checkpoint cp;
  EXPECT_FALSE(cp.valid());
  EXPECT_TRUE(cp.offer(nl, p, p, 1.0, 5.0, 1, 64, 0.4, 200.0));
  EXPECT_TRUE(cp.valid());
  EXPECT_EQ(cp.trace_index, 1);
  // Strictly worse: rejected.
  EXPECT_FALSE(cp.offer(nl, p, p, 1.0, 5.0, 2, 64, 0.5, 100.0));
  EXPECT_EQ(cp.trace_index, 1);
  // Tie on all keys: refreshed (tracks the most recent equally-good state).
  EXPECT_TRUE(cp.offer(nl, p, p, 2.0, 6.0, 3, 64, 0.4, 200.0));
  EXPECT_EQ(cp.trace_index, 3);
  EXPECT_DOUBLE_EQ(cp.lambda, 2.0);
  // Strictly better: taken.
  EXPECT_TRUE(cp.offer(nl, p, p, 3.0, 4.0, 4, 64, 0.3, 300.0));
  EXPECT_EQ(cp.trace_index, 4);
  // A finer-grid snapshot supersedes regardless of its overflow value.
  EXPECT_TRUE(cp.offer(nl, p, p, 3.0, 4.0, 5, 83, 0.9, 900.0));
  EXPECT_EQ(cp.trace_index, 5);
  // ...and a stale coarse-grid one can no longer displace it.
  EXPECT_FALSE(cp.offer(nl, p, p, 3.0, 4.0, 6, 64, 0.0, 1.0));
  EXPECT_EQ(cp.trace_index, 5);
}

TEST(Checkpoint, RejectsNonFiniteState) {
  const Netlist nl = testing::two_cell_chain();
  Placement p = nl.snapshot();
  Checkpoint cp;
  EXPECT_FALSE(cp.offer(nl, p, p, kNan, 5.0, 1, 64, 0.4, 200.0));
  EXPECT_FALSE(cp.offer(nl, p, p, 1.0, 5.0, 1, 64, kInf, 200.0));
  Placement bad = p;
  bad.x[nl.movable_cells()[0]] = kNan;
  EXPECT_FALSE(cp.offer(nl, bad, p, 1.0, 5.0, 1, 64, 0.4, 200.0));
  EXPECT_FALSE(cp.offer(nl, p, bad, 1.0, 5.0, 1, 64, 0.4, 200.0));
  EXPECT_FALSE(cp.valid());
}

// ---------------------------------------------------------------------------
// End-to-end fault injection through the placer.

class HealthPlacer : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::Error);
    nl_ = testing::small_circuit(7, 500);
    cfg_.max_iterations = 40;
  }
  void TearDown() override { set_log_level(LogLevel::Info); }

  // The contract on every exit path: finite coordinates, and the anchors
  // must survive legalization (the "legalizable best-so-far" guarantee).
  void expect_usable(const PlaceResult& r) {
    EXPECT_TRUE(HealthMonitor::placement_finite(nl_, r.lower_bound));
    EXPECT_TRUE(HealthMonitor::placement_finite(nl_, r.anchors));
    Placement legal = r.anchors;
    EXPECT_EQ(TetrisLegalizer(nl_).legalize(legal).failed, 0u);
  }

  Netlist nl_;
  ComplxConfig cfg_;
};

TEST_F(HealthPlacer, RecoversFromInjectedNanIterate) {
  ComplxPlacer placer(nl_, cfg_);
  FaultInjection faults;
  faults.corrupt_iterate = [&](int iteration, Placement& p) {
    if (iteration == 5) p.x[nl_.movable_cells()[0]] = kNan;
  };
  placer.set_fault_injection(faults);
  const PlaceResult r = placer.place();
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.recovered, 1);
  EXPECT_EQ(r.health.nonfinite_iterate, 1u);
  EXPECT_EQ(r.trace.back().recoveries, 0);  // a later healthy row
  expect_usable(r);
}

TEST_F(HealthPlacer, RecoversFromForcedCgBreakdown) {
  ComplxPlacer placer(nl_, cfg_);
  FaultInjection faults;
  // Two consecutive breakdowns also exercise the CG relaxation path
  // (tolerance × 10, Tikhonov diagonal shift) on the second retry.
  faults.force_cg_breakdown = [](int iteration) {
    return iteration == 4 || iteration == 5;
  };
  placer.set_fault_injection(faults);
  const PlaceResult r = placer.place();
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.recovered, 2);
  EXPECT_EQ(r.health.cg_breakdowns, 2u);
  EXPECT_GE(r.solver.breakdowns, 2u);  // both axes of each faulted solve
  expect_usable(r);
}

TEST_F(HealthPlacer, RecoversFromLambdaOverflow) {
  ComplxPlacer placer(nl_, cfg_);
  FaultInjection faults;
  faults.corrupt_lambda = [](int iteration, double lambda) {
    return iteration == 3 ? kInf : lambda;
  };
  placer.set_fault_injection(faults);
  const PlaceResult r = placer.place();
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.recovered, 1);
  EXPECT_EQ(r.health.nonfinite_lambda, 1u);
  expect_usable(r);
}

TEST_F(HealthPlacer, PersistentFaultExhaustsRetriesButReturnsBestSoFar) {
  ComplxPlacer placer(nl_, cfg_);
  FaultInjection faults;
  faults.corrupt_iterate = [&](int iteration, Placement& p) {
    if (iteration >= 3) p.x[nl_.movable_cells()[0]] = kNan;
  };
  placer.set_fault_injection(faults);
  const PlaceResult r = placer.place();
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.stop, StopReason::Diverged);
  EXPECT_EQ(r.recovered, cfg_.recovery.max_retries);
  EXPECT_FALSE(r.failure.empty());
  EXPECT_GE(r.best_iteration, 0);
  // Despite every post-2 iterate being poisoned, the result is usable.
  expect_usable(r);
}

TEST_F(HealthPlacer, TimeLimitStopsEarlyWithUsablePlacement) {
  cfg_.time_limit_s = 1e-6;  // expires before the first loop iteration
  ComplxPlacer placer(nl_, cfg_);
  const PlaceResult r = placer.place();
  EXPECT_EQ(r.stop, StopReason::TimeLimit);
  EXPECT_FALSE(r.failed);
  EXPECT_LT(r.trace.size(), 3u);
  expect_usable(r);
}

TEST_F(HealthPlacer, CancelFlagStopsWithUsablePlacement) {
  std::atomic<bool> cancel{true};
  cfg_.cancel = &cancel;
  ComplxPlacer placer(nl_, cfg_);
  const PlaceResult r = placer.place();
  EXPECT_EQ(r.stop, StopReason::Cancelled);
  EXPECT_FALSE(r.failed);
  expect_usable(r);
}

TEST_F(HealthPlacer, HealthyRunConvergesWithZeroFaults) {
  ComplxPlacer placer(nl_, cfg_);
  const PlaceResult r = placer.place();
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.recovered, 0);
  EXPECT_EQ(r.health.faults, 0u);
  EXPECT_GT(r.solver.solves, 0u);
  EXPECT_GT(r.solver.total_cg_iterations, 0u);
  expect_usable(r);
}

// The acceptance criterion for the whole subsystem: on a healthy run the
// watchdog performs read-only checks only, so enabling it changes nothing —
// bitwise. (This test carries the `determinism` ctest label.)
TEST_F(HealthPlacer, WatchdogAddsZeroPerturbationToHealthyRuns) {
  // Let the run converge: a MaxIterations exit is allowed to prefer the
  // best-so-far checkpoint, which would make this comparison ill-posed.
  cfg_.max_iterations = 120;
  ComplxConfig off = cfg_;
  off.health.enabled = false;
  const PlaceResult with = ComplxPlacer(nl_, cfg_).place();
  const PlaceResult without = ComplxPlacer(nl_, off).place();
  ASSERT_EQ(with.stop, StopReason::Converged);
  ASSERT_EQ(without.stop, StopReason::Converged);
  ASSERT_EQ(with.trace.size(), without.trace.size());
  for (size_t i = 0; i < with.trace.size(); ++i) {
    EXPECT_EQ(with.trace[i].lambda, without.trace[i].lambda) << i;
    EXPECT_EQ(with.trace[i].phi_lower, without.trace[i].phi_lower) << i;
    EXPECT_EQ(with.trace[i].pi, without.trace[i].pi) << i;
  }
  testing::expect_placements_bitwise_equal(with.lower_bound,
                                           without.lower_bound);
  testing::expect_placements_bitwise_equal(with.anchors, without.anchors);
}

}  // namespace
}  // namespace complx
