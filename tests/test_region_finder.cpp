#include <gtest/gtest.h>

#include "density/grid.h"
#include "projection/region_finder.h"
#include "util/rng.h"

namespace complx {
namespace {

Netlist empty_core(double side = 100.0) {
  Netlist nl;
  Cell c;
  c.width = 1;
  c.height = 1;
  nl.add_cell(c, "dummy");
  nl.set_core({0, 0, side, side});
  nl.finalize();
  return nl;
}

TEST(RegionFinder, NoOverflowNoRegions) {
  Netlist nl = empty_core();
  DensityGrid g(nl, 10, 10);
  g.build_from_rects({{0, 0, 5, 5}});  // tiny usage
  EXPECT_TRUE(find_spreading_regions(g, 1.0).empty());
}

TEST(RegionFinder, SingleHotspotProducesOneCoveringRegion) {
  Netlist nl = empty_core();
  DensityGrid g(nl, 10, 10);
  // 400 units of area crammed into bin (5,5) whose capacity is 100.
  g.build_from_rects({{50, 50, 60, 60},
                      {50, 50, 60, 60},
                      {50, 50, 60, 60},
                      {50, 50, 60, 60}});
  const auto regions = find_spreading_regions(g, 1.0);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_TRUE(regions[0].contains(Point{55.0, 55.0}));
  // Region must hold at least 4 bins of capacity to absorb 400 area units.
  EXPECT_GE(regions[0].area(), 399.0);
}

TEST(RegionFinder, RegionUtilizationSatisfiesGamma) {
  Netlist nl = empty_core();
  DensityGrid g(nl, 10, 10);
  std::vector<Rect> rects;
  for (int k = 0; k < 6; ++k) rects.push_back({20, 20, 30, 30});
  g.build_from_rects(rects);
  const double gamma = 0.8;
  const auto regions = find_spreading_regions(g, gamma);
  ASSERT_FALSE(regions.empty());
  for (const Rect& r : regions) {
    EXPECT_LE(g.usage_in(r), gamma * g.free_area_in(r) + 1.0);
  }
}

TEST(RegionFinder, DistantHotspotsYieldSeparateRegions) {
  Netlist nl = empty_core();
  DensityGrid g(nl, 10, 10);
  std::vector<Rect> rects;
  for (int k = 0; k < 3; ++k) {
    rects.push_back({10, 10, 20, 20});  // exactly bin (1,1): 300 vs cap 100
    rects.push_back({80, 80, 90, 90});  // exactly bin (8,8)
  }
  g.build_from_rects(rects);
  const auto regions = find_spreading_regions(g, 1.0);
  EXPECT_EQ(regions.size(), 2u);
}

TEST(RegionFinder, OverlappingExpansionsMerge) {
  Netlist nl = empty_core();
  DensityGrid g(nl, 10, 10);
  // Two adjacent severe hotspots whose expansions must collide.
  std::vector<Rect> rects;
  for (int k = 0; k < 8; ++k) {
    rects.push_back({30, 50, 40, 60});
    rects.push_back({60, 50, 70, 60});
  }
  g.build_from_rects(rects);
  const auto regions = find_spreading_regions(g, 1.0);
  // After merging there must be no overlapping pair.
  for (size_t a = 0; a < regions.size(); ++a)
    for (size_t b = a + 1; b < regions.size(); ++b)
      EXPECT_FALSE(regions[a].overlaps(regions[b]));
}

TEST(RegionFinder, WholeCoreWhenEverythingOverflows) {
  Netlist nl = empty_core();
  DensityGrid g(nl, 4, 4);
  // More area than the whole core can hold at gamma=0.5: region growth
  // stops at the core and returns the full span.
  std::vector<Rect> rects;
  for (int k = 0; k < 10; ++k) rects.push_back({0, 0, 100, 100});
  g.build_from_rects(rects);
  const auto regions = find_spreading_regions(g, 0.5);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_NEAR(regions[0].area(), 100.0 * 100.0, 1.0);
}

TEST(RegionFinder, GammaTightensDetection) {
  Netlist nl = empty_core();
  DensityGrid g(nl, 10, 10);
  // Uniform 60% fill: overfilled at gamma=0.5, fine at gamma=0.7.
  std::vector<Rect> rects;
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 10; ++j) {
      const double x = i * 10.0, y = j * 10.0;
      rects.push_back({x, y, x + 10.0, y + 6.0});
    }
  g.build_from_rects(rects);
  EXPECT_TRUE(find_spreading_regions(g, 0.7).empty());
  EXPECT_FALSE(find_spreading_regions(g, 0.5).empty());
}


TEST(RegionFinder, IncrementalMergeMatchesFullRescanStress) {
  // Many hotspots of random severity on a 32x32 grid, dense enough that
  // expanded spans collide and chain-merge. The incremental merge policy
  // claims a bitwise-identical result to the historical restart-from-
  // scratch scan; assert exact equality of the final region lists.
  Netlist nl = empty_core(320.0);
  DensityGrid g(nl, 32, 32);
  Rng rng(4242);
  std::vector<Rect> rects;
  for (int h = 0; h < 60; ++h) {
    const double x = 10.0 * static_cast<double>(rng.uniform_index(32));
    const double y = 10.0 * static_cast<double>(rng.uniform_index(32));
    const int copies = 2 + static_cast<int>(rng.uniform_index(8));
    for (int c = 0; c < copies; ++c) rects.push_back({x, y, x + 10, y + 10});
  }
  g.build_from_rects(rects);
  for (const double gamma : {0.6, 0.8, 1.0}) {
    const auto fast = find_spreading_regions(g, gamma);
    const auto ref =
        find_spreading_regions(g, gamma, RegionMergePolicy::kFullRescan);
    ASSERT_EQ(fast.size(), ref.size()) << "gamma " << gamma;
    // Tight gammas legitimately merge everything into one span; the loose
    // one must keep several regions or the fixture exercises nothing.
    if (gamma == 1.0) {
      ASSERT_GE(ref.size(), 2u) << "fixture too weak to exercise merging";
    }
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(fast[i].xl, ref[i].xl);
      EXPECT_EQ(fast[i].yl, ref[i].yl);
      EXPECT_EQ(fast[i].xh, ref[i].xh);
      EXPECT_EQ(fast[i].yh, ref[i].yh);
    }
  }
}

}  // namespace
}  // namespace complx
