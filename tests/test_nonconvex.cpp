#include <gtest/gtest.h>

#include "baseline/nonconvex.h"
#include "density/penalty.h"
#include "helpers.h"
#include "legal/tetris.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

// -------------------------------------------------------- density penalty --

TEST(DensityPenalty, ZeroWhenSpread) {
  // Low-utilization scatter: no bin exceeds capacity.
  GenParams prm;
  prm.num_cells = 600;
  prm.utilization = 0.25;
  prm.seed = 421;
  Netlist nl = generate_circuit(prm);
  DensityPenalty pen(nl, {});
  Vec gx, gy;
  EXPECT_NEAR(pen.value_and_grad(nl.snapshot(), gx, gy), 0.0, 1e-6);
}

TEST(DensityPenalty, PositiveOnPile) {
  Netlist nl = complx::testing::small_circuit(422, 800);
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  DensityPenalty pen(nl, {});
  Vec gx, gy;
  EXPECT_GT(pen.value_and_grad(p, gx, gy), 0.0);
  EXPECT_GT(pen.overflow_ratio(p), 0.5);
}

TEST(DensityPenalty, GradientPushesOutOfHotspot) {
  // A cell at the edge of a pile should feel a force away from the center.
  Netlist nl = complx::testing::small_circuit(423, 800);
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  const CellId probe = nl.movable_cells()[0];
  p.x[probe] = c.x + 20.0;  // just right of the pile
  DensityPenalty pen(nl, {});
  Vec gx, gy;
  pen.value_and_grad(p, gx, gy);
  // Positive gradient = objective rises moving right?? The penalty DECREASES
  // moving away from the pile, so dF/dx at the probe must be negative-left:
  // moving right (away) reduces F -> gradient in x is negative... direction:
  // F decreases as x increases => gx < 0.
  EXPECT_LT(gx[probe], 0.0);
}

TEST(DensityPenalty, GradientMatchesFiniteDifference) {
  Netlist nl = complx::testing::small_circuit(424, 300);
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x + (p.x[id] - c.x) * 0.15;
    p.y[id] = c.y + (p.y[id] - c.y) * 0.15;
  }
  DensityPenalty pen(nl, {});
  Vec gx, gy, tx, ty;
  pen.value_and_grad(p, gx, gy);
  const double h = 1e-3;
  int checked = 0;
  for (CellId id : nl.movable_cells()) {
    if (checked >= 8) break;
    ++checked;
    const double orig = p.x[id];
    p.x[id] = orig + h;
    const double fp = pen.value_and_grad(p, tx, ty);
    p.x[id] = orig - h;
    const double fm = pen.value_and_grad(p, tx, ty);
    p.x[id] = orig;
    const double fd = (fp - fm) / (2 * h);
    const double scale = std::max({std::abs(gx[id]), std::abs(fd), 1.0});
    // The per-cell normalization is treated as constant in the analytic
    // gradient (standard approximation), so allow a loose tolerance.
    EXPECT_NEAR(gx[id], fd, 0.15 * scale) << "cell " << id;
  }
}

// ------------------------------------------------------- nonconvex placer --

TEST(NonconvexPlacer, ConvergesAndLegalizes) {
  Netlist nl = complx::testing::small_circuit(425, 1500);
  NonconvexConfig cfg;
  NonconvexPlacer placer(nl, cfg);
  const NonconvexResult res = placer.place();
  EXPECT_LT(res.final_overflow, cfg.stop_overflow + 0.1);
  EXPECT_GT(res.rounds, 1);

  Placement p = res.placement;
  const LegalizeResult legal = TetrisLegalizer(nl).legalize(p);
  EXPECT_EQ(legal.failed, 0u);
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
}

TEST(NonconvexPlacer, BeatsScatterOnHpwl) {
  Netlist nl = complx::testing::small_circuit(426, 1000);
  const double scatter = hpwl(nl, nl.snapshot());
  NonconvexPlacer placer(nl, {});
  const NonconvexResult res = placer.place();
  EXPECT_LT(hpwl(nl, res.placement), 0.8 * scatter);
}

}  // namespace
}  // namespace complx
