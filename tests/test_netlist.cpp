#include <gtest/gtest.h>

#include "helpers.h"
#include "netlist/netlist.h"

namespace complx {
namespace {

TEST(Netlist, CellAccessors) {
  Cell c;
  c.width = 4.0;
  c.height = 12.0;
  c.x = 10.0;
  c.y = 24.0;
  EXPECT_DOUBLE_EQ(c.cx(), 12.0);
  EXPECT_DOUBLE_EQ(c.cy(), 30.0);
  EXPECT_DOUBLE_EQ(c.area(), 48.0);
  EXPECT_EQ(c.bounds(), (Rect{10, 24, 14, 36}));
  EXPECT_TRUE(c.movable());
  c.kind = CellKind::Fixed;
  EXPECT_FALSE(c.movable());
  c.kind = CellKind::MovableMacro;
  EXPECT_TRUE(c.movable());
  EXPECT_TRUE(c.is_macro());
}

TEST(Netlist, BuildAndFinalize) {
  Netlist nl = testing::two_cell_chain();
  EXPECT_EQ(nl.num_cells(), 4u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.num_pins(), 6u);
  EXPECT_EQ(nl.num_movable(), 2u);
  EXPECT_DOUBLE_EQ(nl.movable_area(), 2 * 2.0 * 12.0);
}

TEST(Netlist, NetsOfCellBackReferences) {
  Netlist nl = testing::two_cell_chain();
  const CellId c0 = nl.find_cell("c0");
  ASSERT_LT(c0, nl.num_cells());
  const auto& nets = nl.nets_of_cell(c0);
  EXPECT_EQ(nets.size(), 2u);  // e0 and e1
}

TEST(Netlist, FindCellMissingReturnsEnd) {
  Netlist nl = testing::two_cell_chain();
  EXPECT_EQ(nl.find_cell("no_such"), nl.num_cells());
}

TEST(Netlist, AddAfterFinalizeThrows) {
  Netlist nl = testing::two_cell_chain();
  Cell c;
  c.name = "late";
  EXPECT_THROW(nl.add_cell(c), std::logic_error);
  EXPECT_THROW(nl.add_net("late", 1.0, {}), std::logic_error);
}

TEST(Netlist, PinToUnknownCellThrows) {
  Netlist nl;
  Cell c;
  c.name = "a";
  nl.add_cell(c);
  EXPECT_THROW(nl.add_net("bad", 1.0, {{5, 0, 0}}), std::out_of_range);
}

TEST(Netlist, SynthesizedRowsCoverCore) {
  Netlist nl = testing::two_cell_chain();  // no explicit rows
  ASSERT_FALSE(nl.rows().empty());
  EXPECT_DOUBLE_EQ(nl.rows().front().y, 0.0);
  EXPECT_DOUBLE_EQ(nl.rows().front().xl, 0.0);
  EXPECT_DOUBLE_EQ(nl.rows().front().xh, 30.0);
}

TEST(Netlist, SnapshotGivesCenters) {
  Netlist nl = testing::two_cell_chain();
  const CellId c0 = nl.find_cell("c0");
  nl.cell(c0).x = 10.0;  // lower-left
  nl.cell(c0).y = 0.0;
  const Placement p = nl.snapshot();
  EXPECT_DOUBLE_EQ(p.x[c0], 11.0);  // + width/2 = 1
  EXPECT_DOUBLE_EQ(p.y[c0], 6.0);   // + height/2 = 6
}

TEST(Netlist, ApplyWritesLowerLeftAndSkipsFixed) {
  Netlist nl = testing::two_cell_chain();
  Placement p = nl.snapshot();
  const CellId c0 = nl.find_cell("c0");
  const CellId pad0 = nl.find_cell("pad0");
  p.x[c0] = 20.0;
  p.y[c0] = 6.0;
  p.x[pad0] = 99.0;  // must be ignored
  nl.apply(p);
  EXPECT_DOUBLE_EQ(nl.cell(c0).x, 19.0);
  EXPECT_DOUBLE_EQ(nl.cell(pad0).x, 0.0);
}

TEST(Netlist, ApplySizeMismatchThrows) {
  Netlist nl = testing::two_cell_chain();
  Placement p;
  p.x.resize(1);
  p.y.resize(1);
  EXPECT_THROW(nl.apply(p), std::invalid_argument);
}

TEST(Netlist, MovableAreaExcludesFixed) {
  Netlist nl = testing::small_circuit(3, 500);
  double area = 0.0;
  for (CellId id : nl.movable_cells()) area += nl.cell(id).area();
  EXPECT_DOUBLE_EQ(area, nl.movable_area());
}

TEST(Netlist, FixedAreaInCoreCountsBlockages) {
  GenParams prm;
  prm.num_cells = 500;
  prm.num_fixed_macros = 3;
  prm.seed = 5;
  Netlist nl = generate_circuit(prm);
  // Pads sit outside the core, so fixed-in-core equals macro blockage area.
  EXPECT_GT(nl.fixed_area_in_core(), 0.0);
  double macro_area = 0.0;
  for (const Cell& c : nl.cells())
    if (!c.movable() && c.width > 2 * nl.row_height())
      macro_area += c.bounds().overlap_area(nl.core());
  EXPECT_NEAR(nl.fixed_area_in_core(), macro_area, 1e-6);
}

TEST(Netlist, RegionBookkeeping) {
  Netlist nl;
  Cell c;
  c.name = "a";
  c.width = 2;
  c.height = 2;
  const RegionId r = nl.add_region({"r0", {0, 0, 10, 10}});
  c.region = r;
  nl.add_cell(c);
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  EXPECT_EQ(nl.regions().size(), 1u);
  EXPECT_EQ(nl.cell(0).region, r);
}

}  // namespace
}  // namespace complx
