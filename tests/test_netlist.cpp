#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "helpers.h"
#include "netlist/netlist.h"

namespace complx {
namespace {

TEST(Netlist, CellAccessors) {
  Cell c;
  c.width = 4.0;
  c.height = 12.0;
  c.x = 10.0;
  c.y = 24.0;
  EXPECT_DOUBLE_EQ(c.cx(), 12.0);
  EXPECT_DOUBLE_EQ(c.cy(), 30.0);
  EXPECT_DOUBLE_EQ(c.area(), 48.0);
  EXPECT_EQ(c.bounds(), (Rect{10, 24, 14, 36}));
  EXPECT_TRUE(c.movable());
  c.kind = CellKind::Fixed;
  EXPECT_FALSE(c.movable());
  c.kind = CellKind::MovableMacro;
  EXPECT_TRUE(c.movable());
  EXPECT_TRUE(c.is_macro());
}

TEST(Netlist, BuildAndFinalize) {
  Netlist nl = testing::two_cell_chain();
  EXPECT_EQ(nl.num_cells(), 4u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_EQ(nl.num_pins(), 6u);
  EXPECT_EQ(nl.num_movable(), 2u);
  EXPECT_DOUBLE_EQ(nl.movable_area(), 2 * 2.0 * 12.0);
}

TEST(Netlist, NetsOfCellBackReferences) {
  Netlist nl = testing::two_cell_chain();
  const CellId c0 = nl.find_cell("c0");
  ASSERT_LT(c0, nl.num_cells());
  const auto& nets = nl.nets_of_cell(c0);
  EXPECT_EQ(nets.size(), 2u);  // e0 and e1
}

TEST(Netlist, FindCellMissingReturnsInvalidSentinel) {
  Netlist nl = testing::two_cell_chain();
  // The sentinel is an explicit constant, not "one past the end": callers
  // that compared against num_cells() broke whenever a netlist grew after
  // the lookup. kInvalidCell can never collide with a real id.
  EXPECT_EQ(nl.find_cell("no_such"), kInvalidCell);
  EXPECT_NE(nl.find_cell("c0"), kInvalidCell);
  EXPECT_EQ(nl.find_cell(""), kInvalidCell);
}

TEST(Netlist, InvalidCellSentinelIsStable) {
  // Pinned value: the maximum CellId. Snapshots and tools may persist it.
  EXPECT_EQ(kInvalidCell, std::numeric_limits<CellId>::max());
  Netlist nl = testing::two_cell_chain();
  EXPECT_LT(nl.find_cell("c0"), nl.num_cells());
  EXPECT_GT(kInvalidCell, nl.num_cells());
}

TEST(Netlist, AddAfterFinalizeThrows) {
  Netlist nl = testing::two_cell_chain();
  Cell c;
  EXPECT_THROW(nl.add_cell(c, "late"), std::logic_error);
  EXPECT_THROW(nl.add_net("late", 1.0, {}), std::logic_error);
}

TEST(Netlist, PinToUnknownCellThrows) {
  Netlist nl;
  Cell c;
  nl.add_cell(c, "a");
  EXPECT_THROW(nl.add_net("bad", 1.0, {{5, 0, 0}}), std::out_of_range);
}

TEST(Netlist, SynthesizedRowsCoverCore) {
  Netlist nl = testing::two_cell_chain();  // no explicit rows
  ASSERT_FALSE(nl.rows().empty());
  EXPECT_DOUBLE_EQ(nl.rows().front().y, 0.0);
  EXPECT_DOUBLE_EQ(nl.rows().front().xl, 0.0);
  EXPECT_DOUBLE_EQ(nl.rows().front().xh, 30.0);
}

TEST(Netlist, SnapshotGivesCenters) {
  Netlist nl = testing::two_cell_chain();
  const CellId c0 = nl.find_cell("c0");
  nl.cell(c0).x = 10.0;  // lower-left
  nl.cell(c0).y = 0.0;
  const Placement p = nl.snapshot();
  EXPECT_DOUBLE_EQ(p.x[c0], 11.0);  // + width/2 = 1
  EXPECT_DOUBLE_EQ(p.y[c0], 6.0);   // + height/2 = 6
}

TEST(Netlist, ApplyWritesLowerLeftAndSkipsFixed) {
  Netlist nl = testing::two_cell_chain();
  Placement p = nl.snapshot();
  const CellId c0 = nl.find_cell("c0");
  const CellId pad0 = nl.find_cell("pad0");
  p.x[c0] = 20.0;
  p.y[c0] = 6.0;
  p.x[pad0] = 99.0;  // must be ignored
  nl.apply(p);
  EXPECT_DOUBLE_EQ(nl.cell(c0).x, 19.0);
  EXPECT_DOUBLE_EQ(nl.cell(pad0).x, 0.0);
}

TEST(Netlist, ApplySizeMismatchThrows) {
  Netlist nl = testing::two_cell_chain();
  Placement p;
  p.x.resize(1);
  p.y.resize(1);
  EXPECT_THROW(nl.apply(p), std::invalid_argument);
}

TEST(Netlist, MovableAreaExcludesFixed) {
  Netlist nl = testing::small_circuit(3, 500);
  double area = 0.0;
  for (CellId id : nl.movable_cells()) area += nl.cell(id).area();
  EXPECT_DOUBLE_EQ(area, nl.movable_area());
}

TEST(Netlist, FixedAreaInCoreCountsBlockages) {
  GenParams prm;
  prm.num_cells = 500;
  prm.num_fixed_macros = 3;
  prm.seed = 5;
  Netlist nl = generate_circuit(prm);
  // Pads sit outside the core, so fixed-in-core equals macro blockage area.
  EXPECT_GT(nl.fixed_area_in_core(), 0.0);
  double macro_area = 0.0;
  for (const Cell& c : nl.cells())
    if (!c.movable() && c.width > 2 * nl.row_height())
      macro_area += c.bounds().overlap_area(nl.core());
  EXPECT_NEAR(nl.fixed_area_in_core(), macro_area, 1e-6);
}

TEST(Netlist, RegionBookkeeping) {
  Netlist nl;
  Cell c;
  c.width = 2;
  c.height = 2;
  const RegionId r = nl.add_region({"r0", {0, 0, 10, 10}});
  c.region = r;
  nl.add_cell(c, "a");
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  EXPECT_EQ(nl.regions().size(), 1u);
  EXPECT_EQ(nl.cell(0).region, r);
}

// ---- Row::num_sites regressions (the int-truncation bug) -------------------

TEST(Row, NumSitesNormal) {
  Row r{0.0, 12.0, 0.0, 100.0, 1.0};
  EXPECT_EQ(r.num_sites(), 100);
  r.site_width = 0.5;
  EXPECT_EQ(r.num_sites(), 200);
}

TEST(Row, NumSitesRoundsToNearest) {
  // (xh-xl)/site_width = 99.999999... must report 100, not truncate to 99.
  Row r{0.0, 12.0, 0.0, 0.0, 0.1};
  r.xh = 10.0;  // 10.0/0.1 is 99.99999999999999 in binary64
  EXPECT_EQ(r.num_sites(), 100);
}

TEST(Row, NumSitesHugeCoreDoesNotOverflow) {
  // A planet-sized core over a sub-micron site width: the historical int
  // return overflowed (UB in the float->int cast). 64-bit holds it exactly.
  Row r{0.0, 12.0, 0.0, 4.0e12, 1e-3};
  EXPECT_EQ(r.num_sites(), int64_t{4000000000000000});
  EXPECT_GT(r.num_sites(), int64_t{std::numeric_limits<int>::max()});
}

TEST(Row, NumSitesBeyondInt64Saturates) {
  Row r{0.0, 12.0, 0.0, 1e30, 1e-9};
  EXPECT_EQ(r.num_sites(), std::numeric_limits<int64_t>::max());
}

TEST(Row, NumSitesDegenerateReportsZero) {
  Row r{0.0, 12.0, 0.0, 100.0, 0.0};  // site_width = 0: historical SIGFPE-ish
  EXPECT_EQ(r.num_sites(), 0);
  r.site_width = -2.0;
  EXPECT_EQ(r.num_sites(), 0);
  r.site_width = 1.0;
  r.xh = -5.0;  // xh < xl
  EXPECT_EQ(r.num_sites(), 0);
  r.xh = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(r.num_sites(), 0);
}

TEST(Netlist, FinalizeRejectsDegenerateRows) {
  auto make = [](Row bad) {
    Netlist nl;
    Cell c;
    c.width = 2;
    c.height = 12;
    nl.add_cell(c, "a");
    nl.set_core({0, 0, 100, 100});
    nl.set_rows({bad});
    nl.finalize();
  };
  EXPECT_THROW(make({0.0, 12.0, 0.0, 100.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(make({0.0, 12.0, 0.0, 100.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(make({0.0, 0.0, 0.0, 100.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(make({0.0, 12.0, 50.0, 40.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(
      make({std::numeric_limits<double>::infinity(), 12.0, 0.0, 100.0, 1.0}),
      std::invalid_argument);
  EXPECT_NO_THROW(make({0.0, 12.0, 0.0, 100.0, 1.0}));
  EXPECT_NO_THROW(make({0.0, 12.0, 40.0, 40.0, 1.0}));  // empty row is legal
}

// ---- CSR adjacency (the SoA tentpole) --------------------------------------

TEST(Netlist, CsrAdjacencyMatchesBruteForce) {
  Netlist nl = testing::small_circuit(31, 600);
  // Recompute each cell's incident nets and pins directly from the pin
  // arrays and compare against the CSR spans, including the historical
  // consecutive-duplicate dedup of nets_of_cell.
  std::vector<std::vector<NetId>> want_nets(nl.num_cells());
  std::vector<std::vector<PinId>> want_pins(nl.num_cells());
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const Net& net = nl.net(e);
    for (uint32_t k = 0; k < net.num_pins; ++k) {
      const PinId q = net.first_pin + k;
      const CellId c = nl.pin(q).cell;
      if (want_nets[c].empty() || want_nets[c].back() != e)
        want_nets[c].push_back(e);
      want_pins[c].push_back(q);
    }
  }
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    const auto nets = nl.nets_of_cell(c);
    ASSERT_EQ(nets.size(), want_nets[c].size()) << "cell " << c;
    for (size_t i = 0; i < nets.size(); ++i)
      EXPECT_EQ(nets[i], want_nets[c][i]) << "cell " << c << " slot " << i;
    const auto pins = nl.pins_of_cell(c);
    ASSERT_EQ(pins.size(), want_pins[c].size()) << "cell " << c;
    for (size_t i = 0; i < pins.size(); ++i)
      EXPECT_EQ(pins[i], want_pins[c][i]) << "cell " << c << " slot " << i;
  }
}

TEST(Netlist, ViewIsCoherentWithAccessors) {
  Netlist nl = testing::small_circuit(32, 300);
  const NetlistView v = nl.view();
  EXPECT_EQ(v.num_cells, nl.num_cells());
  EXPECT_EQ(v.num_nets, nl.num_nets());
  EXPECT_EQ(v.num_pins, nl.num_pins());
  EXPECT_EQ(v.num_movable, nl.num_movable());
  for (PinId q = 0; q < nl.num_pins(); ++q) {
    const Pin pin = nl.pin(q);
    EXPECT_EQ(v.pin_cell[q], pin.cell);
    EXPECT_EQ(v.pin_dx[q], pin.dx);
    EXPECT_EQ(v.pin_dy[q], pin.dy);
  }
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    EXPECT_EQ(&v.cells[c], &nl.cell(c));
    const auto nets = nl.nets_of_cell(c);
    const auto vnets = v.nets_of_cell(c);
    ASSERT_EQ(nets.size(), vnets.size());
    for (size_t i = 0; i < nets.size(); ++i) EXPECT_EQ(nets[i], vnets[i]);
  }
}

TEST(Netlist, ViewStaysCoherentAfterFlipHorizontal) {
  // Views alias the SoA arrays, so in-place mutation (orientation flips
  // negate pin dx) must show through an already-captured view.
  Netlist nl = testing::small_circuit(33, 200);
  const NetlistView v = nl.view();
  CellId victim = kInvalidCell;
  for (CellId id : nl.movable_cells())
    if (!nl.pins_of_cell(id).empty()) {
      victim = id;
      break;
    }
  ASSERT_NE(victim, kInvalidCell);
  const PinId q = nl.pins_of_cell(victim)[0];
  const double before = v.pin_dx[q];
  nl.flip_horizontal(victim);
  EXPECT_EQ(v.pin_dx[q], -before);
  EXPECT_TRUE(nl.cell(victim).flipped_x);
}

TEST(Netlist, RefinalizeTracksKindChanges) {
  Netlist nl = testing::small_circuit(34, 200);
  const size_t movable_before = nl.num_movable();
  ASSERT_GT(movable_before, 1u);
  const CellId frozen = nl.movable_cells().front();
  nl.cell(frozen).kind = CellKind::Fixed;
  nl.refinalize();
  EXPECT_EQ(nl.num_movable(), movable_before - 1);
  for (CellId id : nl.movable_cells()) EXPECT_NE(id, frozen);
  nl.cell(frozen).kind = CellKind::Movable;
  nl.refinalize();
  EXPECT_EQ(nl.num_movable(), movable_before);
}

TEST(Netlist, ReserveDoesNotChangeSemantics) {
  Netlist a, b;
  b.reserve(16, 16, 64);
  for (int i = 0; i < 8; ++i) {
    Cell c;
    c.width = 2;
    c.height = 12;
    a.add_cell(c, "c" + std::to_string(i));
    b.add_cell(c, "c" + std::to_string(i));
  }
  for (int i = 0; i + 1 < 8; ++i) {
    const std::vector<Pin> pins = {{static_cast<CellId>(i), 0, 0},
                                   {static_cast<CellId>(i + 1), 0, 0}};
    a.add_net("n" + std::to_string(i), 1.0, pins);
    b.add_net("n" + std::to_string(i), 1.0, pins);
  }
  a.set_core({0, 0, 100, 100});
  b.set_core({0, 0, 100, 100});
  a.finalize();
  b.finalize();
  EXPECT_EQ(a.num_cells(), b.num_cells());
  EXPECT_EQ(a.num_pins(), b.num_pins());
  for (CellId i = 0; i < a.num_cells(); ++i)
    EXPECT_EQ(a.cell_name(i), b.cell_name(i));
  EXPECT_GT(b.memory_bytes(), 0u);
}

TEST(NamePool, AddAndLookup) {
  NamePool pool;
  EXPECT_EQ(pool.size(), 0u);
  const uint32_t a = pool.add("alpha");
  const uint32_t b = pool.add("");
  const uint32_t c = pool.add("g");
  EXPECT_EQ(pool[a], "alpha");
  EXPECT_EQ(pool[b], "");
  EXPECT_EQ(pool[c], "g");
  EXPECT_EQ(pool.size(), 3u);
  pool.reserve(100, 8);
  EXPECT_EQ(pool[a], "alpha");  // reserve must not invalidate contents
  EXPECT_GT(pool.memory_bytes(), 0u);
}

}  // namespace
}  // namespace complx
