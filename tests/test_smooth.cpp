#include <gtest/gtest.h>

#include <memory>

#include "helpers.h"
#include "wl/hpwl.h"
#include "wl/smooth.h"

namespace complx {
namespace {

/// Central finite-difference check of value_and_grad on movable cells.
void check_gradient(const Netlist& nl, const SmoothWl& wl, Placement p,
                    double h, double rel_tol) {
  Vec gx, gy;
  wl.value_and_grad(p, gx, gy);
  int checked = 0;
  for (CellId id : nl.movable_cells()) {
    if (checked >= 12) break;  // spot-check a dozen cells
    ++checked;
    for (int axis = 0; axis < 2; ++axis) {
      Vec& coord = axis == 0 ? p.x : p.y;
      const double g = axis == 0 ? gx[id] : gy[id];
      const double orig = coord[id];
      Vec tx, ty;
      coord[id] = orig + h;
      const double fp = wl.value_and_grad(p, tx, ty);
      coord[id] = orig - h;
      const double fm = wl.value_and_grad(p, tx, ty);
      coord[id] = orig;
      const double fd = (fp - fm) / (2 * h);
      const double scale = std::max({std::abs(g), std::abs(fd), 1e-3});
      EXPECT_NEAR(g, fd, rel_tol * scale)
          << "cell " << id << " axis " << axis;
    }
  }
}

class SmoothModels : public ::testing::Test {
 protected:
  void SetUp() override {
    nl_ = complx::testing::small_circuit(31, 200);
    p_ = nl_.snapshot();
  }
  Netlist nl_;
  Placement p_;
};

// ----------------------------------------------------------------- LSE ----

TEST_F(SmoothModels, LseUpperBoundsHpwl) {
  // log-sum-exp over-approximates the max, so LSE-WL >= HPWL.
  LseWl lse(nl_, /*gamma=*/5.0);
  Vec gx, gy;
  const double v = lse.value_and_grad(p_, gx, gy);
  EXPECT_GE(v, hpwl(nl_, p_) * 0.999);
}

TEST_F(SmoothModels, LseConvergesToHpwlAsGammaShrinks) {
  const double exact = hpwl(nl_, p_);
  Vec gx, gy;
  const double coarse = LseWl(nl_, 50.0).value_and_grad(p_, gx, gy);
  const double fine = LseWl(nl_, 1.0).value_and_grad(p_, gx, gy);
  EXPECT_LT(std::abs(fine - exact), std::abs(coarse - exact));
  EXPECT_NEAR(fine, exact, 0.05 * exact);
}

TEST_F(SmoothModels, LseGradientMatchesFiniteDifference) {
  LseWl lse(nl_, 8.0);
  check_gradient(nl_, lse, p_, 1e-4, 1e-4);
}

TEST(Lse, RejectsNonPositiveGamma) {
  Netlist nl = complx::testing::two_cell_chain();
  EXPECT_THROW(LseWl(nl, 0.0), std::invalid_argument);
  EXPECT_THROW(LseWl(nl, -1.0), std::invalid_argument);
}

TEST(Lse, TranslationInvariantGradientSumsToZero) {
  // For nets among movable cells only, translating everything changes
  // nothing: the gradient entries must sum to ~0 per axis.
  Netlist nl = complx::testing::mesh_netlist(4);
  LseWl lse(nl, 3.0);
  Vec gx, gy;
  lse.value_and_grad(nl.snapshot(), gx, gy);
  double sx = 0.0, sy = 0.0;
  for (double v : gx) sx += v;
  for (double v : gy) sy += v;
  EXPECT_NEAR(sx, 0.0, 1e-9);
  EXPECT_NEAR(sy, 0.0, 1e-9);
}

// ------------------------------------------------------------- BetaReg ----

TEST_F(SmoothModels, BetaRegApproachesHpwlOnTwoPinNets) {
  // On an all-2-pin-net design the clique decomposition is exact and
  // sqrt(d^2+beta) -> |d| as beta -> 0.
  Netlist mesh = complx::testing::mesh_netlist(5);
  const Placement mp = mesh.snapshot();
  Vec gx, gy;
  const double approx = BetaRegWl(mesh, 1e-6).value_and_grad(mp, gx, gy);
  const double exact = hpwl(mesh, mp);
  EXPECT_NEAR(approx, exact, 1e-2 * exact + 1.0);
}

TEST_F(SmoothModels, BetaRegGradientMatchesFiniteDifference) {
  BetaRegWl wl(nl_, 1.0);
  check_gradient(nl_, wl, p_, 1e-4, 1e-4);
}

TEST(BetaReg, RejectsNonPositiveBeta) {
  Netlist nl = complx::testing::two_cell_chain();
  EXPECT_THROW(BetaRegWl(nl, 0.0), std::invalid_argument);
}

// ------------------------------------------------------------ PBetaReg ----

TEST_F(SmoothModels, PBetaGradientMatchesFiniteDifference) {
  PBetaRegWl wl(nl_, 6.0, 1e-3);
  check_gradient(nl_, wl, p_, 1e-4, 5e-3);
}

TEST_F(SmoothModels, PBetaApproachesMaxPairDistanceAsPGrows) {
  Netlist mesh = complx::testing::mesh_netlist(3);
  const Placement mp = mesh.snapshot();
  Vec gx, gy;
  const double exact = hpwl(mesh, mp);
  // p and beta tighten together (beta^(1/p) is the zero-distance floor).
  const double loose = PBetaRegWl(mesh, 2.0, 1e-2).value_and_grad(mp, gx, gy);
  const double tight =
      PBetaRegWl(mesh, 8.0, 1e-12).value_and_grad(mp, gx, gy);
  EXPECT_LT(std::abs(tight - exact), std::abs(loose - exact));
}

TEST(PBetaReg, RejectsBadParameters) {
  Netlist nl = complx::testing::two_cell_chain();
  EXPECT_THROW(PBetaRegWl(nl, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PBetaRegWl(nl, 4.0, 0.0), std::invalid_argument);
}

// ------------------------------------------------------- static edges ----

TEST(StaticEdges, CliqueForSmallStarForLarge) {
  Netlist nl;
  std::vector<Pin> small_pins, big_pins;
  for (int i = 0; i < 14; ++i) {
    Cell c;
    c.width = 2;
    c.height = 2;
    c.x = i;
    const CellId id = nl.add_cell(c, "c" + std::to_string(i));
    if (i < 4) small_pins.push_back({id, 0, 0});
    else big_pins.push_back({id, 0, 0});
  }
  nl.add_net("small", 1.0, small_pins);  // 4 pins -> clique: 6 edges
  nl.add_net("big", 1.0, big_pins);      // 10 pins -> fan: 9 edges
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  const auto edges = build_static_edges(nl, /*clique_max_degree=*/8);
  EXPECT_EQ(edges.size(), 6u + 9u);
}

}  // namespace
}  // namespace complx
