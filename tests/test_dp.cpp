#include <gtest/gtest.h>

#include "core/placer.h"
#include "dp/detailed.h"
#include "helpers.h"
#include "legal/tetris.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

Placement place_and_legalize(const Netlist& nl, int iters = 35) {
  ComplxConfig cfg;
  cfg.max_iterations = iters;
  ComplxPlacer placer(nl, cfg);
  Placement p = placer.place().anchors;
  TetrisLegalizer(nl).legalize(p);
  return p;
}

struct DpCase {
  uint64_t seed;
  size_t cells;
  size_t macros;
};

class DetailedSweep : public ::testing::TestWithParam<DpCase> {};

TEST_P(DetailedSweep, NeverIncreasesHpwl) {
  const auto [seed, cells, macros] = GetParam();
  Netlist nl = complx::testing::small_circuit(seed, cells, macros);
  Placement p = place_and_legalize(nl);
  const double before = hpwl(nl, p);
  DetailedPlacer dp(nl);
  const DetailedResult res = dp.refine(p);
  EXPECT_LE(res.final_hpwl, before * (1 + 1e-9));
  EXPECT_NEAR(res.initial_hpwl, before, 1e-6 * before);
  EXPECT_NEAR(res.final_hpwl, hpwl(nl, p), 1e-6 * before);
}

TEST_P(DetailedSweep, PreservesLegality) {
  const auto [seed, cells, macros] = GetParam();
  Netlist nl = complx::testing::small_circuit(seed, cells, macros);
  Placement p = place_and_legalize(nl);
  ASSERT_TRUE(TetrisLegalizer::is_legal(nl, p));
  DetailedPlacer(nl).refine(p);
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
}

INSTANTIATE_TEST_SUITE_P(Designs, DetailedSweep,
                         ::testing::Values(DpCase{101, 600, 0},
                                           DpCase{102, 1200, 0},
                                           DpCase{103, 800, 2}));

TEST(Detailed, ActuallyImprovesSloppyPlacement) {
  // Start from a legalized RANDOM placement: DP should find large gains.
  Netlist nl = complx::testing::small_circuit(104, 800);
  Placement p = nl.snapshot();  // generator scatter (random-ish)
  TetrisLegalizer(nl).legalize(p);
  const double before = hpwl(nl, p);
  DetailedPlacer dp(nl);
  const DetailedResult res = dp.refine(p);
  EXPECT_LT(res.final_hpwl, 0.95 * before);
}

TEST(Detailed, MovePassesCanBeDisabled) {
  Netlist nl = complx::testing::small_circuit(105, 500);
  Placement p = place_and_legalize(nl);
  DetailedOptions opts;
  opts.global_swap = false;
  opts.local_reorder = false;
  opts.row_shift = false;
  DetailedPlacer dp(nl, opts);
  const Placement before = p;
  const DetailedResult res = dp.refine(p);
  EXPECT_DOUBLE_EQ(res.initial_hpwl, res.final_hpwl);
  for (CellId id : nl.movable_cells()) {
    EXPECT_DOUBLE_EQ(p.x[id], before.x[id]);
    EXPECT_DOUBLE_EQ(p.y[id], before.y[id]);
  }
}

TEST(Detailed, EachPassClassHelpsAlone) {
  Netlist nl = complx::testing::small_circuit(106, 800);
  Placement base = nl.snapshot();
  TetrisLegalizer(nl).legalize(base);
  const double before = hpwl(nl, base);

  for (int which = 0; which < 3; ++which) {
    DetailedOptions opts;
    opts.global_swap = which == 0;
    opts.local_reorder = which == 1;
    opts.row_shift = which == 2;
    opts.max_passes = 2;
    Placement p = base;
    DetailedPlacer(nl, opts).refine(p);
    EXPECT_LE(hpwl(nl, p), before * (1 + 1e-9)) << "pass class " << which;
    EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p)) << "pass class " << which;
  }
}

TEST(Detailed, RunsOnRowlessNetlistGracefully) {
  Netlist nl;
  Cell c;
  c.width = 2;
  c.height = 2;
  nl.add_cell(c, "c");
  nl.set_core({0, 0, 0, 0});  // empty core -> no synthesized rows
  nl.finalize();
  Placement p = nl.snapshot();
  const DetailedResult res = DetailedPlacer(nl).refine(p);
  EXPECT_DOUBLE_EQ(res.initial_hpwl, res.final_hpwl);
}

}  // namespace
}  // namespace complx
