#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "helpers.h"
#include "io/svg.h"

namespace complx {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(Svg, RendersAllObjectClasses) {
  Netlist nl = complx::testing::small_circuit(191, 400, /*movable_macros=*/2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "complx_test.svg").string();
  write_placement_svg(nl, nl.snapshot(), path);
  const std::string svg = slurp(path);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Std cells (blue), macros (amber), fixed (gray) all present.
  EXPECT_NE(svg.find("#4285f4"), std::string::npos);
  EXPECT_NE(svg.find("#f9ab00"), std::string::npos);
  EXPECT_NE(svg.find("#9aa0a6"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Svg, HighlightsMarkedCells) {
  Netlist nl = complx::testing::small_circuit(192, 300);
  SvgOptions opts;
  opts.highlight.assign(nl.num_cells(), 0);
  opts.highlight[nl.movable_cells()[0]] = 1;
  const std::string path =
      (std::filesystem::temp_directory_path() / "complx_test2.svg").string();
  write_placement_svg(nl, nl.snapshot(), path, opts);
  EXPECT_NE(slurp(path).find("#d93025"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Svg, RegionBoxesDrawn) {
  Netlist nl;
  const RegionId r = nl.add_region({"r", {10, 10, 50, 50}});
  Cell c;
  c.width = 2;
  c.height = 2;
  c.region = r;
  nl.add_cell(c, "c");
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  const std::string path =
      (std::filesystem::temp_directory_path() / "complx_test3.svg").string();
  write_placement_svg(nl, nl.snapshot(), path);
  const std::string svg = slurp(path);
  EXPECT_NE(svg.find("#d93025"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Svg, ThrowsOnBadPath) {
  Netlist nl = complx::testing::two_cell_chain();
  EXPECT_THROW(
      write_placement_svg(nl, nl.snapshot(), "/no_such_dir_xyz/f.svg"),
      std::runtime_error);
}

}  // namespace
}  // namespace complx
