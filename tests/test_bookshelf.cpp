#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bookshelf/reader.h"
#include "bookshelf/writer.h"
#include "helpers.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

namespace fs = std::filesystem;

class BookshelfRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "complx_bookshelf_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir() const { return dir_.string(); }

 private:
  fs::path dir_;
};

TEST_F(BookshelfRoundTrip, PreservesTopologyAndGeometry) {
  Netlist original = testing::small_circuit(11, 400);
  write_bookshelf(original, dir(), "rt");
  const BookshelfDesign loaded = read_bookshelf(dir() + "/rt.aux");
  const Netlist& nl = loaded.netlist;

  EXPECT_EQ(loaded.name, "rt");
  EXPECT_EQ(nl.num_cells(), original.num_cells());
  EXPECT_EQ(nl.num_nets(), original.num_nets());
  EXPECT_EQ(nl.num_pins(), original.num_pins());
  EXPECT_EQ(nl.num_movable(), original.num_movable());
  EXPECT_EQ(nl.rows().size(), original.rows().size());

  // Cell geometry survives by name.
  for (CellId i = 0; i < original.num_cells(); ++i) {
    const Cell& a = original.cell(i);
    const CellId j = nl.find_cell(original.cell_name(i));
    ASSERT_NE(j, kInvalidCell) << original.cell_name(i);
    const Cell& b = nl.cell(j);
    EXPECT_DOUBLE_EQ(a.width, b.width);
    EXPECT_DOUBLE_EQ(a.height, b.height);
    EXPECT_NEAR(a.x, b.x, 1e-9);
    EXPECT_NEAR(a.y, b.y, 1e-9);
    EXPECT_EQ(a.movable(), b.movable());
  }

  // HPWL identical => pins and offsets survived.
  EXPECT_NEAR(stored_hpwl(original), stored_hpwl(nl),
              1e-6 * stored_hpwl(original));
}

// Bit pattern of a double: EXPECT_EQ on these is a true bitwise claim
// (distinguishes -0.0 from +0.0, unlike operator== on the values).
uint64_t bits(double v) { return std::bit_cast<uint64_t>(v); }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// The writer emits every section at max_digits10, so the decimal text must
// parse back to the bitwise-identical double. Dimensions, pin offsets and
// row geometry are copied verbatim and must survive a single write->read;
// .pl coordinates pass through the center <-> lower-left transform, whose
// rounding cycle is idempotent, so generations 2 and 3 must be
// byte-for-byte identical.
TEST_F(BookshelfRoundTrip, WriteReadWriteIsBitwiseLossless) {
  Netlist original = testing::small_circuit(17, 350, /*movable_macros=*/2);
  // Poison the coordinates with values that have no short decimal form so
  // the test exercises the full-precision path, not round numbers.
  Placement poisoned = original.snapshot();
  for (CellId i : original.movable_cells()) {
    poisoned.x[i] += 1.0 / 3.0 + 1e-7 * static_cast<double>(i);
    poisoned.y[i] += 1.0 / 7.0;
  }
  original.apply(poisoned);

  write_bookshelf(original, dir(), "g1");
  const BookshelfDesign d1 = read_bookshelf(dir() + "/g1.aux");
  const Netlist& nl1 = d1.netlist;

  // Dimensions and offsets: bitwise after one round trip (cell and pin
  // order are preserved by both writer and reader).
  ASSERT_EQ(nl1.num_cells(), original.num_cells());
  ASSERT_EQ(nl1.num_pins(), original.num_pins());
  for (CellId i = 0; i < original.num_cells(); ++i) {
    const Cell& a = original.cell(i);
    const Cell& b = nl1.cell(i);
    ASSERT_EQ(original.cell_name(i), nl1.cell_name(i));
    EXPECT_EQ(bits(a.width), bits(b.width)) << original.cell_name(i);
    EXPECT_EQ(bits(a.height), bits(b.height)) << original.cell_name(i);
  }
  for (PinId k = 0; k < original.num_pins(); ++k) {
    EXPECT_EQ(bits(original.pin(k).dx), bits(nl1.pin(k).dx)) << "pin " << k;
    EXPECT_EQ(bits(original.pin(k).dy), bits(nl1.pin(k).dy)) << "pin " << k;
  }
  ASSERT_EQ(nl1.rows().size(), original.rows().size());
  for (size_t r = 0; r < original.rows().size(); ++r) {
    EXPECT_EQ(bits(original.rows()[r].y), bits(nl1.rows()[r].y));
    EXPECT_EQ(bits(original.rows()[r].height), bits(nl1.rows()[r].height));
    EXPECT_EQ(bits(original.rows()[r].site_width),
              bits(nl1.rows()[r].site_width));
    EXPECT_EQ(bits(original.rows()[r].xl), bits(nl1.rows()[r].xl));
  }

  // Transform-free sections stabilize immediately: generation 2 files are
  // byte-identical to generation 1.
  write_bookshelf(nl1, dir(), "g2");
  for (const char* ext : {".nodes", ".nets", ".wts", ".scl"})
    EXPECT_EQ(slurp(dir() + "/g1" + ext), slurp(dir() + "/g2" + ext)) << ext;

  // .pl coordinates: generation 2 -> 3 is the fixed point.
  const BookshelfDesign d2 = read_bookshelf(dir() + "/g2.aux");
  write_bookshelf(d2.netlist, dir(), "g3");
  EXPECT_EQ(slurp(dir() + "/g2.pl"), slurp(dir() + "/g3.pl"));
  const BookshelfDesign d3 = read_bookshelf(dir() + "/g3.aux");
  for (CellId i = 0; i < d2.netlist.num_cells(); ++i) {
    EXPECT_EQ(bits(d2.netlist.cell(i).x), bits(d3.netlist.cell(i).x)) << i;
    EXPECT_EQ(bits(d2.netlist.cell(i).y), bits(d3.netlist.cell(i).y)) << i;
  }
}

TEST_F(BookshelfRoundTrip, OrientationFlagRoundTrips) {
  Netlist original = testing::small_circuit(14, 300);
  // Flip a handful of cells, then round-trip.
  std::vector<std::string> flipped_names;
  for (CellId id : original.movable_cells()) {
    if (id % 7 == 0) {
      original.flip_horizontal(id);
      flipped_names.push_back(std::string(original.cell_name(id)));
    }
  }
  ASSERT_FALSE(flipped_names.empty());
  write_bookshelf(original, dir(), "fl");
  const Netlist& nl = read_bookshelf(dir() + "/fl.aux").netlist;
  for (const std::string& name : flipped_names)
    EXPECT_TRUE(nl.cell(nl.find_cell(name)).flipped_x) << name;
  // Geometry identical (offsets were written post-flip).
  EXPECT_NEAR(stored_hpwl(original), stored_hpwl(nl),
              1e-6 * stored_hpwl(original));
}

TEST_F(BookshelfRoundTrip, MacrosSurvive) {
  Netlist original = testing::small_circuit(12, 400, /*movable_macros=*/3);
  write_bookshelf(original, dir(), "mx");
  const Netlist& nl = read_bookshelf(dir() + "/mx.aux").netlist;
  size_t macros = 0;
  for (const Cell& c : nl.cells())
    if (c.is_macro()) ++macros;
  EXPECT_EQ(macros, 3u);
}

TEST_F(BookshelfRoundTrip, PlWriterEmitsFixedMarkers) {
  Netlist nl = testing::two_cell_chain();
  write_pl(nl, nl.snapshot(), dir() + "/t.pl");
  std::ifstream in(dir() + "/t.pl");
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("/FIXED"), std::string::npos);
  EXPECT_NE(all.find("c0"), std::string::npos);
}

TEST_F(BookshelfRoundTrip, ParserToleratesCommentsAndBlankLines) {
  const std::string base = dir() + "/h";
  std::ofstream(base + ".nodes") << "UCLA nodes 1.0\n# comment\n\n"
                                 << "NumNodes : 2\nNumTerminals : 1\n"
                                 << "a 4 12\n"
                                 << "p 0 0 terminal\n";
  std::ofstream(base + ".nets") << "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
                                << "NetDegree : 2 n0\n"
                                << "a I : 0.5 -0.5\n"
                                << "p O : 0 0\n";
  std::ofstream(base + ".pl") << "UCLA pl 1.0\na 5 0 : N\np 0 0 : N /FIXED\n";
  std::ofstream(base + ".scl") << "UCLA scl 1.0\nNumRows : 1\n"
                               << "CoreRow Horizontal\n  Coordinate : 0\n"
                               << "  Height : 12\n  Sitewidth : 1\n"
                               << "  SubrowOrigin : 0  NumSites : 100\nEnd\n";
  std::ofstream(base + ".aux")
      << "RowBasedPlacement : h.nodes h.nets h.wts h.pl h.scl\n";

  const BookshelfDesign d = read_bookshelf(base + ".aux");
  EXPECT_EQ(d.netlist.num_cells(), 2u);
  EXPECT_EQ(d.netlist.num_nets(), 1u);
  EXPECT_EQ(d.netlist.num_movable(), 1u);
  const CellId a = d.netlist.find_cell("a");
  EXPECT_DOUBLE_EQ(d.netlist.cell(a).x, 5.0);
  // Pin offset survived.
  EXPECT_DOUBLE_EQ(d.netlist.pin(0).dx, 0.5);
  EXPECT_DOUBLE_EQ(d.netlist.pin(0).dy, -0.5);
  // Row parsed.
  ASSERT_EQ(d.netlist.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(d.netlist.rows()[0].xh, 100.0);
}

TEST_F(BookshelfRoundTrip, WtsAppliesWeights) {
  const std::string base = dir() + "/w";
  std::ofstream(base + ".nodes") << "NumNodes : 2\na 4 12\nb 4 12\n";
  std::ofstream(base + ".nets")
      << "NumNets : 1\nNetDegree : 2 heavy\na I : 0 0\nb O : 0 0\n";
  std::ofstream(base + ".wts") << "heavy 3.5\n";
  std::ofstream(base + ".pl") << "a 0 0 : N\nb 10 0 : N\n";
  std::ofstream(base + ".scl") << "";
  std::ofstream(base + ".aux")
      << "RowBasedPlacement : w.nodes w.nets w.wts w.pl w.scl\n";
  const BookshelfDesign d = read_bookshelf(base + ".aux");
  ASSERT_EQ(d.netlist.num_nets(), 1u);
  EXPECT_DOUBLE_EQ(d.netlist.net(0).weight, 3.5);
}

TEST_F(BookshelfRoundTrip, MissingWtsDefaultsToUnitWeights) {
  Netlist original = testing::small_circuit(13, 300);
  write_bookshelf(original, dir(), "nw");
  std::remove((dir() + "/nw.wts").c_str());
  const Netlist& nl = read_bookshelf(dir() + "/nw.aux").netlist;
  for (const Net& n : nl.nets()) EXPECT_DOUBLE_EQ(n.weight, 1.0);
}

// Capture the message of the runtime_error thrown by `expr` (empty if none).
#define THROWN_MESSAGE(expr)                 \
  [&]() -> std::string {                     \
    try {                                    \
      (void)(expr);                          \
    } catch (const std::runtime_error& e) {  \
      return e.what();                       \
    }                                        \
    return {};                               \
  }()

TEST_F(BookshelfRoundTrip, UnknownCellInNetThrowsWithFileAndLine) {
  const std::string base = dir() + "/u";
  std::ofstream(base + ".nodes") << "NumNodes : 1\na 4 12\n";
  std::ofstream(base + ".nets")
      << "NumNets : 2\nNetDegree : 2 bad\na I : 0 0\nghost O : 0 0\n"
      << "NetDegree : 2 ok\na I : 0 0\na O : 1 0\n";
  std::ofstream(base + ".pl") << "a 0 0 : N\n";
  std::ofstream(base + ".scl") << "";
  std::ofstream(base + ".aux")
      << "RowBasedPlacement : u.nodes u.nets u.wts u.pl u.scl\n";
  // A dangling pin reference is an inconsistent .nodes/.nets pair; the
  // reader refuses it rather than silently dropping connectivity.
  const std::string msg = THROWN_MESSAGE(read_bookshelf(base + ".aux"));
  EXPECT_NE(msg.find(".nets:4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ghost"), std::string::npos) << msg;
  EXPECT_NE(msg.find("bad"), std::string::npos) << msg;
}

TEST_F(BookshelfRoundTrip, DuplicateNodeNameThrows) {
  const std::string base = dir() + "/d";
  std::ofstream(base + ".nodes") << "NumNodes : 2\na 4 12\na 6 12\n";
  std::ofstream(base + ".nets") << "";
  std::ofstream(base + ".pl") << "";
  std::ofstream(base + ".scl") << "";
  std::ofstream(base + ".aux")
      << "RowBasedPlacement : d.nodes d.nets d.wts d.pl d.scl\n";
  const std::string msg = THROWN_MESSAGE(read_bookshelf(base + ".aux"));
  EXPECT_NE(msg.find(".nodes:3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate node name 'a'"), std::string::npos) << msg;
}

TEST_F(BookshelfRoundTrip, NumNodesMismatchThrows) {
  const std::string base = dir() + "/t";
  // Declares 3 nodes, supplies 2: a truncated file must not parse.
  std::ofstream(base + ".nodes") << "NumNodes : 3\na 4 12\nb 4 12\n";
  std::ofstream(base + ".nets") << "";
  std::ofstream(base + ".pl") << "";
  std::ofstream(base + ".scl") << "";
  std::ofstream(base + ".aux")
      << "RowBasedPlacement : t.nodes t.nets t.wts t.pl t.scl\n";
  const std::string msg = THROWN_MESSAGE(read_bookshelf(base + ".aux"));
  EXPECT_NE(msg.find("NumNodes=3"), std::string::npos) << msg;
}

TEST_F(BookshelfRoundTrip, ShortNetDegreeBlockThrows) {
  const std::string base = dir() + "/s";
  std::ofstream(base + ".nodes") << "NumNodes : 2\na 4 12\nb 4 12\n";
  // First net declares 3 pins but only 2 follow before the next NetDegree.
  std::ofstream(base + ".nets")
      << "NumNets : 2\nNetDegree : 3 short\na I : 0 0\nb O : 0 0\n"
      << "NetDegree : 2 ok\na I : 0 0\nb O : 0 0\n";
  std::ofstream(base + ".pl") << "a 0 0 : N\nb 0 0 : N\n";
  std::ofstream(base + ".scl") << "";
  std::ofstream(base + ".aux")
      << "RowBasedPlacement : s.nodes s.nets s.wts s.pl s.scl\n";
  const std::string msg = THROWN_MESSAGE(read_bookshelf(base + ".aux"));
  EXPECT_NE(msg.find("'short'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("NetDegree 3"), std::string::npos) << msg;
}

TEST_F(BookshelfRoundTrip, TruncatedNetsFileThrows) {
  const std::string base = dir() + "/e";
  std::ofstream(base + ".nodes") << "NumNodes : 2\na 4 12\nb 4 12\n";
  std::ofstream(base + ".nets")
      << "NumNets : 1\nNetDegree : 3 cut\na I : 0 0\n";
  std::ofstream(base + ".pl") << "a 0 0 : N\nb 0 0 : N\n";
  std::ofstream(base + ".scl") << "";
  std::ofstream(base + ".aux")
      << "RowBasedPlacement : e.nodes e.nets e.wts e.pl e.scl\n";
  const std::string msg = THROWN_MESSAGE(read_bookshelf(base + ".aux"));
  EXPECT_NE(msg.find("'cut'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("missing at EOF"), std::string::npos) << msg;
}

TEST_F(BookshelfRoundTrip, PinLineOutsideNetBlockThrows) {
  const std::string base = dir() + "/p";
  std::ofstream(base + ".nodes") << "NumNodes : 1\na 4 12\n";
  std::ofstream(base + ".nets") << "NumNets : 0\na I : 0 0\n";
  std::ofstream(base + ".pl") << "a 0 0 : N\n";
  std::ofstream(base + ".scl") << "";
  std::ofstream(base + ".aux")
      << "RowBasedPlacement : p.nodes p.nets p.wts p.pl p.scl\n";
  const std::string msg = THROWN_MESSAGE(read_bookshelf(base + ".aux"));
  EXPECT_NE(msg.find("pin line outside a NetDegree block"), std::string::npos)
      << msg;
}

TEST(Bookshelf, MissingAuxThrows) {
  EXPECT_THROW(read_bookshelf("/nonexistent/x.aux"), std::runtime_error);
}

TEST_F(BookshelfRoundTrip, MalformedNumberThrows) {
  const std::string base = dir() + "/m";
  std::ofstream(base + ".nodes") << "NumNodes : 1\na four 12\n";
  std::ofstream(base + ".nets") << "";
  std::ofstream(base + ".pl") << "";
  std::ofstream(base + ".scl") << "";
  std::ofstream(base + ".aux")
      << "RowBasedPlacement : m.nodes m.nets m.wts m.pl m.scl\n";
  EXPECT_THROW(read_bookshelf(base + ".aux"), std::runtime_error);
}

}  // namespace
}  // namespace complx
