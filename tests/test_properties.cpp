// Cross-module property tests: randomized sweeps asserting the paper's
// structural invariants over many seeds and configurations at once.
#include <gtest/gtest.h>

#include "core/placer.h"
#include "density/grid.h"
#include "helpers.h"
#include "legal/tetris.h"
#include "projection/lal.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

// ------------------------------------------------- primal-dual invariants --

struct SweepCase {
  uint64_t seed;
  size_t cells;
  size_t macros;
  double density;
  bool use_gap;
};

class PrimalDualSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  PlaceResult run() {
    const SweepCase& s = GetParam();
    nl_ = complx::testing::small_circuit(s.seed, s.cells, s.macros,
                                         s.density);
    ComplxConfig cfg;
    cfg.max_iterations = 50;
    cfg.use_gap_criterion = s.use_gap;
    return ComplxPlacer(nl_, cfg).place();
  }
  Netlist nl_;
};

TEST_P(PrimalDualSweep, StructuralInvariantsHold) {
  const PlaceResult res = run();

  // λ non-decreasing (Formula 12 is monotone).
  for (size_t k = 1; k < res.trace.size(); ++k)
    ASSERT_GE(res.trace[k].lambda, res.trace[k - 1].lambda * (1 - 1e-12));

  // Weak duality (Formula 7) along essentially the whole trace.
  size_t dual_ok = 0;
  for (const IterationStats& st : res.trace)
    if (st.phi_lower <= st.phi_upper * 1.02) ++dual_ok;
  EXPECT_GE(dual_ok * 10, res.trace.size() * 9);

  // Penalty and overflow decrease overall.
  EXPECT_LT(res.trace.back().pi, res.trace.front().pi);
  EXPECT_LT(res.trace.back().overflow_ratio,
            res.trace.front().overflow_ratio + 0.05);

  // Anchors fully inside the core.
  for (CellId id : nl_.movable_cells()) {
    const Cell& c = nl_.cell(id);
    ASSERT_GE(res.anchors.x[id] - c.width / 2.0, nl_.core().xl - 1e-6);
    ASSERT_LE(res.anchors.x[id] + c.width / 2.0, nl_.core().xh + 1e-6);
    ASSERT_GE(res.anchors.y[id] - c.height / 2.0, nl_.core().yl - 1e-6);
    ASSERT_LE(res.anchors.y[id] + c.height / 2.0, nl_.core().yh + 1e-6);
  }

  // The anchor placement must cost at least the lower bound.
  EXPECT_GE(hpwl(nl_, res.anchors), hpwl(nl_, res.lower_bound) * 0.98);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PrimalDualSweep,
    ::testing::Values(SweepCase{301, 700, 0, 1.0, true},
                      SweepCase{302, 900, 0, 1.0, false},
                      SweepCase{303, 800, 2, 0.8, true},
                      SweepCase{304, 1100, 0, 0.6, true},
                      SweepCase{305, 600, 3, 0.5, false},
                      SweepCase{306, 1300, 0, 1.0, true}));

// ------------------------------------------------- projection invariants --

struct ProjCase {
  uint64_t seed;
  double gamma;
};

class ProjectionSweep : public ::testing::TestWithParam<ProjCase> {};

TEST_P(ProjectionSweep, ProjectionContractsTowardFeasibility) {
  const auto [seed, gamma] = GetParam();
  Netlist nl = complx::testing::small_circuit(seed, 900);
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x + (p.x[id] - c.x) * 0.2;  // semi-pile
    p.y[id] = c.y + (p.y[id] - c.y) * 0.2;
  }
  ProjectionOptions opts;
  opts.gamma = gamma;
  LookAheadLegalizer lal(nl, opts);

  // Iterating the projection drives overflow down monotonically-ish.
  double prev_overflow = 1e18;
  for (int it = 0; it < 4; ++it) {
    const ProjectionResult res = lal.project(p);
    EXPECT_LT(res.input_overflow_ratio, prev_overflow + 0.02)
        << "iteration " << it;
    prev_overflow = res.input_overflow_ratio;
    p = res.anchors;
  }
  // After a few projections the placement is close to feasible.
  DensityGrid grid(nl, lal.bins_x(), lal.bins_y());
  grid.build(p);
  EXPECT_LT(grid.total_overflow(gamma) / nl.movable_area(), 0.35);
}

INSTANTIATE_TEST_SUITE_P(Gammas, ProjectionSweep,
                         ::testing::Values(ProjCase{311, 1.0},
                                           ProjCase{312, 0.8},
                                           ProjCase{313, 0.6},
                                           ProjCase{314, 0.5}));

// ------------------------------------------------------ flow determinism --

class DeterminismSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismSweep, IdenticalRunsProduceIdenticalPlacements) {
  Netlist nl = complx::testing::small_circuit(GetParam(), 700);
  ComplxConfig cfg;
  cfg.max_iterations = 25;
  const PlaceResult a = ComplxPlacer(nl, cfg).place();
  const PlaceResult b = ComplxPlacer(nl, cfg).place();
  ASSERT_EQ(a.iterations, b.iterations);
  for (CellId id : nl.movable_cells()) {
    ASSERT_DOUBLE_EQ(a.anchors.x[id], b.anchors.x[id]);
    ASSERT_DOUBLE_EQ(a.anchors.y[id], b.anchors.y[id]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep,
                         ::testing::Values(321ull, 322ull, 323ull));

// ------------------------------------------- legalization area invariants --

TEST(FlowProperties, LegalizationConservesCells) {
  Netlist nl = complx::testing::small_circuit(331, 1000, 2);
  ComplxConfig cfg;
  cfg.max_iterations = 35;
  Placement p = ComplxPlacer(nl, cfg).place().anchors;
  const LegalizeResult res = TetrisLegalizer(nl).legalize(p);
  EXPECT_EQ(res.placed, nl.num_movable());
  EXPECT_EQ(res.failed, 0u);

  // Total movable area inside the core is conserved exactly.
  DensityGrid grid(nl, 16, 16);
  grid.build(p);
  double total = 0.0;
  for (size_t j = 0; j < 16; ++j)
    for (size_t i = 0; i < 16; ++i) total += grid.usage(i, j);
  EXPECT_NEAR(total, nl.movable_area(), 1e-6 * nl.movable_area());
}

}  // namespace
}  // namespace complx
