#include <gtest/gtest.h>

#include "density/grid.h"
#include "helpers.h"
#include "projection/lal.h"

namespace complx {
namespace {

double overflow_ratio(const Netlist& nl, const Placement& p, size_t bins,
                      double gamma) {
  DensityGrid g(nl, bins, bins);
  g.build(p);
  return g.total_overflow(gamma) / nl.movable_area();
}

/// Pile all movable cells at the core center.
Placement piled(const Netlist& nl) {
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  return p;
}

TEST(Lal, ProjectionReducesOverflowDrastically) {
  Netlist nl = complx::testing::small_circuit(61, 1500);
  const Placement p = piled(nl);
  ProjectionOptions opts;
  opts.gamma = 1.0;
  LookAheadLegalizer lal(nl, opts);
  const ProjectionResult res = lal.project(p);
  const double before = overflow_ratio(nl, p, lal.bins_x(), 1.0);
  const double after = overflow_ratio(nl, res.anchors, lal.bins_x(), 1.0);
  EXPECT_GT(before, 0.5);
  EXPECT_LT(after, 0.5 * before);  // one pass; the loop iterates P_C
  EXPECT_GT(res.displacement_l1, 0.0);
  EXPECT_GT(res.num_regions, 0u);
}

TEST(Lal, FeasibleInputReturnsItself) {
  // Generator scatter at low utilization is (near-)feasible on a coarse
  // grid: P_C must not move anything.
  GenParams prm;
  prm.num_cells = 400;
  prm.utilization = 0.3;
  prm.seed = 62;
  Netlist nl = generate_circuit(prm);
  const Placement p = nl.snapshot();
  ProjectionOptions opts;
  opts.gamma = 1.0;
  opts.bins_x = opts.bins_y = 4;  // coarse: surely feasible
  LookAheadLegalizer lal(nl, opts);
  const ProjectionResult res = lal.project(p);
  EXPECT_EQ(res.num_regions, 0u);
  EXPECT_DOUBLE_EQ(res.displacement_l1, 0.0);
  for (CellId id : nl.movable_cells()) {
    EXPECT_DOUBLE_EQ(res.anchors.x[id], p.x[id]);
    EXPECT_DOUBLE_EQ(res.anchors.y[id], p.y[id]);
  }
}

TEST(Lal, PiMatchesManualL1Distance) {
  Netlist nl = complx::testing::small_circuit(63, 800);
  const Placement p = piled(nl);
  LookAheadLegalizer lal(nl, {});
  const ProjectionResult res = lal.project(p);
  double manual = 0.0;
  for (CellId id : nl.movable_cells())
    manual += std::abs(p.x[id] - res.anchors.x[id]) +
              std::abs(p.y[id] - res.anchors.y[id]);
  EXPECT_NEAR(res.displacement_l1, manual, 1e-6 * manual);
}

TEST(Lal, InputOverflowRatioReported) {
  Netlist nl = complx::testing::small_circuit(64, 800);
  const Placement p = piled(nl);
  LookAheadLegalizer lal(nl, {});
  const ProjectionResult res = lal.project(p);
  EXPECT_NEAR(res.input_overflow_ratio,
              overflow_ratio(nl, p, lal.bins_x(), 1.0), 0.05);
}

TEST(Lal, AnchorsStayInCore) {
  Netlist nl = complx::testing::small_circuit(65, 1000, 2);
  const Placement p = piled(nl);
  LookAheadLegalizer lal(nl, {});
  const ProjectionResult res = lal.project(p);
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    EXPECT_GE(res.anchors.x[id] - c.width / 2.0, nl.core().xl - 1e-6);
    EXPECT_LE(res.anchors.x[id] + c.width / 2.0, nl.core().xh + 1e-6);
    EXPECT_GE(res.anchors.y[id] - c.height / 2.0, nl.core().yl - 1e-6);
    EXPECT_LE(res.anchors.y[id] + c.height / 2.0, nl.core().yh + 1e-6);
  }
}

TEST(Lal, MacroMovesWithItsShreds) {
  Netlist nl = complx::testing::small_circuit(66, 1000, 3);
  const Placement p = piled(nl);
  LookAheadLegalizer lal(nl, {});
  const ProjectionResult res = lal.project(p, /*export_shreds=*/true);
  EXPECT_FALSE(res.shreds.empty());
  EXPECT_EQ(res.shreds.size(), res.shred_origins.size());
  // At least one macro should have moved away from the pile center.
  bool macro_moved = false;
  for (CellId id : nl.movable_cells()) {
    if (!nl.cell(id).is_macro()) continue;
    if (std::abs(res.anchors.x[id] - p.x[id]) +
            std::abs(res.anchors.y[id] - p.y[id]) >
        nl.row_height())
      macro_moved = true;
  }
  EXPECT_TRUE(macro_moved);
}

TEST(Lal, TargetDensityControlsSpreading) {
  // Lower gamma must spread cells over a wider footprint.
  Netlist nl = complx::testing::small_circuit(67, 1200);
  const Placement p = piled(nl);
  auto footprint = [&](double gamma) {
    ProjectionOptions opts;
    opts.gamma = gamma;
    LookAheadLegalizer lal(nl, opts);
    const ProjectionResult res = lal.project(p);
    double xl = 1e18, xh = -1e18, yl = 1e18, yh = -1e18;
    for (CellId id : nl.movable_cells()) {
      xl = std::min(xl, res.anchors.x[id]);
      xh = std::max(xh, res.anchors.x[id]);
      yl = std::min(yl, res.anchors.y[id]);
      yh = std::max(yh, res.anchors.y[id]);
    }
    return (xh - xl) * (yh - yl);
  };
  EXPECT_GT(footprint(0.5), 1.2 * footprint(1.0));
}

TEST(Lal, GridRefinementMonotonicity) {
  // The same input projected on a finer grid cannot report less input
  // overflow (finer grids expose concentration).
  Netlist nl = complx::testing::small_circuit(68, 800);
  const Placement p = piled(nl);
  ProjectionOptions opts;
  opts.bins_x = opts.bins_y = 8;
  LookAheadLegalizer lal(nl, opts);
  const double coarse = lal.project(p).input_overflow_ratio;
  lal.set_grid(64, 64);
  const double fine = lal.project(p).input_overflow_ratio;
  EXPECT_GE(fine + 1e-9, coarse);
}

TEST(Lal, AutoBinsScalesWithDesign) {
  Netlist small = complx::testing::small_circuit(69, 400);
  Netlist big = complx::testing::small_circuit(70, 6000);
  EXPECT_GE(LookAheadLegalizer::auto_bins(big),
            LookAheadLegalizer::auto_bins(small));
}

}  // namespace
}  // namespace complx
