#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "density/grid.h"
#include "util/rng.h"
#include "helpers.h"
#include "projection/lal.h"

namespace complx {
namespace {

double overflow_ratio(const Netlist& nl, const Placement& p, size_t bins,
                      double gamma) {
  DensityGrid g(nl, bins, bins);
  g.build(p);
  return g.total_overflow(gamma) / nl.movable_area();
}

/// Pile all movable cells at the core center.
Placement piled(const Netlist& nl) {
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  return p;
}

TEST(Lal, ProjectionReducesOverflowDrastically) {
  Netlist nl = complx::testing::small_circuit(61, 1500);
  const Placement p = piled(nl);
  ProjectionOptions opts;
  opts.gamma = 1.0;
  LookAheadLegalizer lal(nl, opts);
  const ProjectionResult res = lal.project(p);
  const double before = overflow_ratio(nl, p, lal.bins_x(), 1.0);
  const double after = overflow_ratio(nl, res.anchors, lal.bins_x(), 1.0);
  EXPECT_GT(before, 0.5);
  EXPECT_LT(after, 0.5 * before);  // one pass; the loop iterates P_C
  EXPECT_GT(res.displacement_l1, 0.0);
  EXPECT_GT(res.num_regions, 0u);
}

TEST(Lal, FeasibleInputReturnsItself) {
  // Generator scatter at low utilization is (near-)feasible on a coarse
  // grid: P_C must not move anything.
  GenParams prm;
  prm.num_cells = 400;
  prm.utilization = 0.3;
  prm.seed = 62;
  Netlist nl = generate_circuit(prm);
  const Placement p = nl.snapshot();
  ProjectionOptions opts;
  opts.gamma = 1.0;
  opts.bins_x = opts.bins_y = 4;  // coarse: surely feasible
  LookAheadLegalizer lal(nl, opts);
  const ProjectionResult res = lal.project(p);
  EXPECT_EQ(res.num_regions, 0u);
  EXPECT_DOUBLE_EQ(res.displacement_l1, 0.0);
  for (CellId id : nl.movable_cells()) {
    EXPECT_DOUBLE_EQ(res.anchors.x[id], p.x[id]);
    EXPECT_DOUBLE_EQ(res.anchors.y[id], p.y[id]);
  }
}

TEST(Lal, PiMatchesManualL1Distance) {
  Netlist nl = complx::testing::small_circuit(63, 800);
  const Placement p = piled(nl);
  LookAheadLegalizer lal(nl, {});
  const ProjectionResult res = lal.project(p);
  double manual = 0.0;
  for (CellId id : nl.movable_cells())
    manual += std::abs(p.x[id] - res.anchors.x[id]) +
              std::abs(p.y[id] - res.anchors.y[id]);
  EXPECT_NEAR(res.displacement_l1, manual, 1e-6 * manual);
}

TEST(Lal, InputOverflowRatioReported) {
  Netlist nl = complx::testing::small_circuit(64, 800);
  const Placement p = piled(nl);
  LookAheadLegalizer lal(nl, {});
  const ProjectionResult res = lal.project(p);
  EXPECT_NEAR(res.input_overflow_ratio,
              overflow_ratio(nl, p, lal.bins_x(), 1.0), 0.05);
}

TEST(Lal, AnchorsStayInCore) {
  Netlist nl = complx::testing::small_circuit(65, 1000, 2);
  const Placement p = piled(nl);
  LookAheadLegalizer lal(nl, {});
  const ProjectionResult res = lal.project(p);
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    EXPECT_GE(res.anchors.x[id] - c.width / 2.0, nl.core().xl - 1e-6);
    EXPECT_LE(res.anchors.x[id] + c.width / 2.0, nl.core().xh + 1e-6);
    EXPECT_GE(res.anchors.y[id] - c.height / 2.0, nl.core().yl - 1e-6);
    EXPECT_LE(res.anchors.y[id] + c.height / 2.0, nl.core().yh + 1e-6);
  }
}

TEST(Lal, MacroMovesWithItsShreds) {
  Netlist nl = complx::testing::small_circuit(66, 1000, 3);
  const Placement p = piled(nl);
  LookAheadLegalizer lal(nl, {});
  const ProjectionResult res = lal.project(p, /*export_shreds=*/true);
  EXPECT_FALSE(res.shreds.empty());
  EXPECT_EQ(res.shreds.size(), res.shred_origins.size());
  // At least one macro should have moved away from the pile center.
  bool macro_moved = false;
  for (CellId id : nl.movable_cells()) {
    if (!nl.cell(id).is_macro()) continue;
    if (std::abs(res.anchors.x[id] - p.x[id]) +
            std::abs(res.anchors.y[id] - p.y[id]) >
        nl.row_height())
      macro_moved = true;
  }
  EXPECT_TRUE(macro_moved);
}

TEST(Lal, TargetDensityControlsSpreading) {
  // Lower gamma must spread cells over a wider footprint.
  Netlist nl = complx::testing::small_circuit(67, 1200);
  const Placement p = piled(nl);
  auto footprint = [&](double gamma) {
    ProjectionOptions opts;
    opts.gamma = gamma;
    LookAheadLegalizer lal(nl, opts);
    const ProjectionResult res = lal.project(p);
    double xl = 1e18, xh = -1e18, yl = 1e18, yh = -1e18;
    for (CellId id : nl.movable_cells()) {
      xl = std::min(xl, res.anchors.x[id]);
      xh = std::max(xh, res.anchors.x[id]);
      yl = std::min(yl, res.anchors.y[id]);
      yh = std::max(yh, res.anchors.y[id]);
    }
    return (xh - xl) * (yh - yl);
  };
  EXPECT_GT(footprint(0.5), 1.2 * footprint(1.0));
}

TEST(Lal, GridRefinementMonotonicity) {
  // The same input projected on a finer grid cannot report less input
  // overflow (finer grids expose concentration).
  Netlist nl = complx::testing::small_circuit(68, 800);
  const Placement p = piled(nl);
  ProjectionOptions opts;
  opts.bins_x = opts.bins_y = 8;
  LookAheadLegalizer lal(nl, opts);
  const double coarse = lal.project(p).input_overflow_ratio;
  lal.set_grid(64, 64);
  const double fine = lal.project(p).input_overflow_ratio;
  EXPECT_GE(fine + 1e-9, coarse);
}

TEST(Lal, AutoBinsScalesWithDesign) {
  Netlist small = complx::testing::small_circuit(69, 400);
  Netlist big = complx::testing::small_circuit(70, 6000);
  EXPECT_GE(LookAheadLegalizer::auto_bins(big),
            LookAheadLegalizer::auto_bins(small));
}

TEST(Lal, AssignMotesFirstRegionWins) {
  // Two regions sharing the edge x=50 plus one detached region. Motes that
  // sit exactly on the shared edge satisfy Rect::contains (inclusive on
  // both edges) for BOTH regions — the historical gather loop therefore
  // enrolled them twice. The exclusive assignment must hand each to the
  // first containing region and only that one.
  const std::vector<Rect> regions = {
      {0, 0, 50, 100}, {50, 0, 100, 100}, {120, 0, 150, 30}};
  std::vector<Mote> motes(6);
  auto at = [&](size_t k, double x, double y) {
    motes[k].x = x;
    motes[k].y = y;
    motes[k].width = 4.0;
    motes[k].height = 4.0;
    motes[k].owner = static_cast<CellId>(k);
  };
  at(0, 25.0, 50.0);   // interior of region 0
  at(1, 75.0, 50.0);   // interior of region 1
  at(2, 50.0, 30.0);   // exactly on the shared edge
  at(3, 50.0, 70.0);   // exactly on the shared edge
  at(4, 50.0, 100.0);  // shared corner of regions 0 and 1
  at(5, 200.0, 200.0); // outside every region

  // Precondition of the old bug: the inclusive gather sees the boundary
  // motes in two regions at once.
  for (const size_t k : {size_t{2}, size_t{3}, size_t{4}}) {
    size_t hits = 0;
    for (const Rect& r : regions)
      if (r.contains(Point{motes[k].x, motes[k].y})) ++hits;
    EXPECT_EQ(hits, 2u) << "mote " << k;
  }

  const std::vector<size_t> owner = assign_motes_to_regions(regions, motes);
  ASSERT_EQ(owner.size(), motes.size());
  EXPECT_EQ(owner[0], 0u);
  EXPECT_EQ(owner[1], 1u);
  EXPECT_EQ(owner[2], 0u);  // first region in order wins
  EXPECT_EQ(owner[3], 0u);
  EXPECT_EQ(owner[4], 0u);
  EXPECT_EQ(owner[5], kNoSpreadRegion);
}

TEST(Lal, PrefixSumQueriesMatchLegacyLoopThroughProjection) {
  // The summed-area-table query path and the legacy per-bin loop are the
  // same sum re-associated (equivalence to 1e-9 is asserted per query in
  // test_density). Through a full projection the decision points (grow
  // direction ratios, partition cuts) must then agree too — PROVIDED no
  // decision is an exact tie in real arithmetic, because a tie has no
  // canonical winner once the summation order changes. A flat capacity
  // field makes opposing grow candidates exact ties, so this fixture
  // scatters irregular fixed blocks over the whole core: every strip sum
  // becomes a distinct, non-representable value and every comparison is
  // decided by a margin far above the 1e-9 re-association noise.
  Netlist nl;
  Rng rng(71);
  for (int b = 0; b < 120; ++b) {
    Cell blk;
    blk.width = rng.uniform(1.3, 4.7);
    blk.height = rng.uniform(1.3, 4.7);
    blk.x = rng.uniform(0.0, 200.0 - blk.width);
    blk.y = rng.uniform(0.0, 200.0 - blk.height);
    blk.kind = CellKind::Fixed;
    nl.add_cell(blk, "blk" + std::to_string(b));
  }
  for (int k = 0; k < 600; ++k) {
    Cell c;
    c.width = 2.0;
    c.height = 2.0;
    nl.add_cell(c, "c" + std::to_string(k));
  }
  nl.set_core({0, 0, 200, 200});
  nl.finalize();

  Placement p = nl.snapshot();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = 74.0;  // off-center pile
    p.y[id] = 122.0;
  }
  ProjectionOptions fast;
  fast.bins_x = fast.bins_y = 16;
  fast.density.use_prefix_sums = true;
  ProjectionOptions slow = fast;
  slow.density.use_prefix_sums = false;
  const ProjectionResult a = LookAheadLegalizer(nl, fast).project(p);
  const ProjectionResult b = LookAheadLegalizer(nl, slow).project(p);
  // total_overflow uses the per-bin fields directly in both modes.
  EXPECT_EQ(a.input_overflow_ratio, b.input_overflow_ratio);
  EXPECT_EQ(a.num_regions, b.num_regions);
  for (CellId id : nl.movable_cells()) {
    EXPECT_NEAR(a.anchors.x[id], b.anchors.x[id], 1e-6) << "cell " << id;
    EXPECT_NEAR(a.anchors.y[id], b.anchors.y[id], 1e-6) << "cell " << id;
  }
  EXPECT_NEAR(a.displacement_l1, b.displacement_l1,
              1e-6 * std::max(1.0, b.displacement_l1));
}

TEST(Lal, CapacityCacheIsTransparent) {
  // Warm projections (cached fixed-cell capacity field), a same-size
  // set_grid (must keep the cache), and a forced cold rebuild all have to
  // produce bitwise-identical results.
  Netlist nl = complx::testing::small_circuit(72, 1000, 1);
  const Placement p = piled(nl);
  LookAheadLegalizer lal(nl, {});
  const ProjectionResult cold = lal.project(p);   // builds the cache
  const ProjectionResult warm = lal.project(p);   // reuses it
  lal.set_grid(lal.bins_x(), lal.bins_y());       // same size: cache kept
  const ProjectionResult warm2 = lal.project(p);
  lal.invalidate_grid_cache();
  const ProjectionResult cold2 = lal.project(p);  // rebuilt from scratch
  for (const ProjectionResult* r : {&warm, &warm2, &cold2}) {
    EXPECT_EQ(cold.num_regions, r->num_regions);
    EXPECT_EQ(cold.displacement_l1, r->displacement_l1);
    complx::testing::expect_placements_bitwise_equal(cold.anchors, r->anchors);
  }
}

}  // namespace
}  // namespace complx
