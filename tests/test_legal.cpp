#include <gtest/gtest.h>

#include "core/placer.h"
#include "helpers.h"
#include "legal/tetris.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

TEST(Legalizer, TrivialChainBecomesLegal) {
  Netlist nl = complx::testing::two_cell_chain();
  Placement p = nl.snapshot();
  p.x[nl.find_cell("c0")] = 14.9;
  p.x[nl.find_cell("c1")] = 15.1;  // overlapping
  TetrisLegalizer legalizer(nl);
  const LegalizeResult res = legalizer.legalize(p);
  EXPECT_EQ(res.failed, 0u);
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
}

TEST(Legalizer, IsLegalDetectsOverlap) {
  Netlist nl = complx::testing::two_cell_chain();
  Placement p = nl.snapshot();
  p.x[nl.find_cell("c0")] = 15.0;
  p.x[nl.find_cell("c1")] = 15.5;  // overlap: widths 2
  p.y[nl.find_cell("c0")] = 6.0;
  p.y[nl.find_cell("c1")] = 6.0;
  EXPECT_FALSE(TetrisLegalizer::is_legal(nl, p));
}

TEST(Legalizer, IsLegalDetectsOffRowPlacement) {
  Netlist nl = complx::testing::two_cell_chain();
  Placement p = nl.snapshot();
  p.x[nl.find_cell("c0")] = 5.0;
  p.y[nl.find_cell("c0")] = 6.7;  // off-row center
  p.x[nl.find_cell("c1")] = 20.0;
  p.y[nl.find_cell("c1")] = 6.0;
  EXPECT_FALSE(TetrisLegalizer::is_legal(nl, p));
}

TEST(Legalizer, IsLegalDetectsOutOfCore) {
  Netlist nl = complx::testing::two_cell_chain();
  Placement p = nl.snapshot();
  p.x[nl.find_cell("c0")] = -3.0;
  p.y[nl.find_cell("c0")] = 6.0;
  p.x[nl.find_cell("c1")] = 20.0;
  p.y[nl.find_cell("c1")] = 6.0;
  EXPECT_FALSE(TetrisLegalizer::is_legal(nl, p));
}

struct LegalCase {
  uint64_t seed;
  size_t cells;
  size_t macros;
};

class LegalizerSweep : public ::testing::TestWithParam<LegalCase> {};

TEST_P(LegalizerSweep, GlobalPlacementBecomesLegal) {
  const auto [seed, cells, macros] = GetParam();
  Netlist nl = complx::testing::small_circuit(seed, cells, macros);
  ComplxConfig cfg;
  cfg.max_iterations = 40;
  ComplxPlacer placer(nl, cfg);
  Placement p = placer.place().anchors;

  TetrisLegalizer legalizer(nl);
  const LegalizeResult res = legalizer.legalize(p);
  EXPECT_EQ(res.failed, 0u);
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
  EXPECT_GT(res.placed, 0u);
}

TEST_P(LegalizerSweep, DisplacementIsBounded) {
  const auto [seed, cells, macros] = GetParam();
  Netlist nl = complx::testing::small_circuit(seed, cells, macros);
  ComplxConfig cfg;
  cfg.max_iterations = 40;
  ComplxPlacer placer(nl, cfg);
  const Placement anchors = placer.place().anchors;
  Placement p = anchors;
  TetrisLegalizer legalizer(nl);
  legalizer.legalize(p);
  // Average displacement stays within a few rows of the anchors —
  // legalizing a spread placement is a local operation.
  double total = 0.0;
  for (CellId id : nl.movable_cells())
    total += std::abs(p.x[id] - anchors.x[id]) +
             std::abs(p.y[id] - anchors.y[id]);
  const double avg = total / static_cast<double>(nl.num_movable());
  EXPECT_LT(avg, 12.0 * nl.row_height());
}

INSTANTIATE_TEST_SUITE_P(Designs, LegalizerSweep,
                         ::testing::Values(LegalCase{91, 800, 0},
                                           LegalCase{92, 1500, 0},
                                           LegalCase{93, 1000, 2},
                                           LegalCase{94, 600, 4}));

TEST(Legalizer, LegalInputStaysNearlyPut) {
  // Legalize twice: the second pass must barely move anything.
  Netlist nl = complx::testing::small_circuit(95, 800);
  ComplxConfig cfg;
  cfg.max_iterations = 30;
  Placement p = ComplxPlacer(nl, cfg).place().anchors;
  TetrisLegalizer legalizer(nl);
  legalizer.legalize(p);
  const Placement once = p;
  legalizer.legalize(p);
  double max_move = 0.0;
  for (CellId id : nl.movable_cells())
    max_move = std::max(max_move, std::abs(p.x[id] - once.x[id]) +
                                      std::abs(p.y[id] - once.y[id]));
  // Identical x-order and free gaps => every cell finds its own spot again.
  EXPECT_LT(max_move, 4.0 * nl.row_height());
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
}

TEST(Legalizer, RespectsFixedBlockages) {
  GenParams prm;
  prm.num_cells = 800;
  prm.num_fixed_macros = 4;
  prm.seed = 96;
  prm.utilization = 0.5;
  Netlist nl = generate_circuit(prm);
  ComplxConfig cfg;
  cfg.max_iterations = 30;
  Placement p = ComplxPlacer(nl, cfg).place().anchors;
  TetrisLegalizer legalizer(nl);
  const LegalizeResult res = legalizer.legalize(p);
  EXPECT_EQ(res.failed, 0u);
  // is_legal includes fixed-vs-movable overlap checks.
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
}

}  // namespace
}  // namespace complx
