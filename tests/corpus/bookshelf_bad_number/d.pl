UCLA pl 1.0

a0	0	0	: N
a1	4	0	: N
