UCLA pl 1.0

a0	0	garbled	: N
a1	4	0	: N
