// Seed-anchored end-to-end determinism: the full Placer, run at 1 thread
// and at the maximum thread count, must produce identical final coordinates,
// identical iteration counts, and an identical per-iteration (Φ, Π, λ)
// trace. Every future performance PR must keep this green — it is the
// regression net that lets hot paths be rewritten without re-validating
// placement quality.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/placer.h"
#include "density/grid.h"
#include "gen/fleet.h"
#include "helpers.h"
#include "legal/abacus.h"
#include "multilevel/cluster.h"
#include "legal/tetris.h"
#include "projection/lal.h"
#include "projection/spreader.h"
#include "timing/sta.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace complx {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { set_global_threads(0); }
};

void expect_traces_identical(const std::vector<IterationStats>& a,
                             const std::vector<IterationStats>& b) {
  ASSERT_EQ(a.size(), b.size()) << "trace length differs";
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].iteration, b[k].iteration) << "iter " << k;
    EXPECT_EQ(a[k].lambda, b[k].lambda) << "lambda, iter " << k;
    EXPECT_EQ(a[k].phi_lower, b[k].phi_lower) << "phi_lower, iter " << k;
    EXPECT_EQ(a[k].phi_upper, b[k].phi_upper) << "phi_upper, iter " << k;
    EXPECT_EQ(a[k].pi, b[k].pi) << "pi, iter " << k;
    EXPECT_EQ(a[k].lagrangian, b[k].lagrangian) << "lagrangian, iter " << k;
    EXPECT_EQ(a[k].overflow_ratio, b[k].overflow_ratio)
        << "overflow, iter " << k;
    EXPECT_EQ(a[k].grid_bins, b[k].grid_bins) << "grid, iter " << k;
  }
}

void run_and_compare(const Netlist& nl, ComplxConfig cfg) {
  ThreadGuard guard;

  cfg.threads = 1;
  const PlaceResult serial = ComplxPlacer(nl, cfg).place();

  cfg.threads = 8;  // oversubscribes small hosts on purpose — must not matter
  const PlaceResult parallel = ComplxPlacer(nl, cfg).place();

  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_EQ(serial.final_lambda, parallel.final_lambda);
  EXPECT_EQ(serial.final_overflow, parallel.final_overflow);
  testing::expect_placements_bitwise_equal(serial.lower_bound,
                                           parallel.lower_bound);
  testing::expect_placements_bitwise_equal(serial.anchors, parallel.anchors);
  expect_traces_identical(serial.trace, parallel.trace);
}

TEST(GoldenDeterminism, StandardCellDesign) {
  const Netlist nl = testing::small_circuit(7, 2000);
  ComplxConfig cfg;
  cfg.max_iterations = 30;
  run_and_compare(nl, cfg);
}

// --- downstream stages -----------------------------------------------------
// The placer's contract extends through legalization and analysis: the same
// global placement must legalize to the same rows and score the same slacks
// regardless of the thread count (and of how often the stage is re-run).

/// One global placement shared by the downstream-stage tests.
const PlaceResult& shared_gp() {
  static const PlaceResult r = [] {
    ThreadGuard guard;
    set_global_threads(1);
    ComplxConfig cfg;
    cfg.threads = 1;
    cfg.max_iterations = 20;
    return ComplxPlacer(testing::small_circuit(11, 1200, 1), cfg).place();
  }();
  return r;
}

template <typename Legalizer>
void expect_legalizer_thread_invariant() {
  const Netlist nl = testing::small_circuit(11, 1200, 1);
  const PlaceResult& gp = shared_gp();
  ThreadGuard guard;

  set_global_threads(1);
  Placement serial = gp.anchors;
  const LegalizeResult r1 = Legalizer(nl).legalize(serial);

  set_global_threads(8);
  Placement parallel = gp.anchors;
  const LegalizeResult r8 = Legalizer(nl).legalize(parallel);

  EXPECT_EQ(r1.placed, r8.placed);
  EXPECT_EQ(r1.total_displacement, r8.total_displacement);
  testing::expect_placements_bitwise_equal(serial, parallel);

  // Re-running the same stage must also be a pure function of its input.
  set_global_threads(8);
  Placement again = gp.anchors;
  Legalizer(nl).legalize(again);
  testing::expect_placements_bitwise_equal(parallel, again);
}

TEST(GoldenDeterminism, TetrisLegalizerThreadInvariant) {
  expect_legalizer_thread_invariant<TetrisLegalizer>();
}

TEST(GoldenDeterminism, AbacusLegalizerThreadInvariant) {
  expect_legalizer_thread_invariant<AbacusLegalizer>();
}

TEST(GoldenDeterminism, StaticTimingThreadInvariant) {
  const Netlist nl = testing::small_circuit(11, 1200, 1);
  const PlaceResult& gp = shared_gp();
  const std::vector<char> regs = choose_registers(nl, 0.1, 3);
  const TimingGraph graph(nl, regs, TimingOptions{});
  ThreadGuard guard;

  set_global_threads(1);
  const TimingReport a = graph.analyze(gp.anchors);
  set_global_threads(8);
  const TimingReport b = graph.analyze(gp.anchors);

  EXPECT_EQ(a.worst_slack, b.worst_slack);
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.worst_endpoint, b.worst_endpoint);
  EXPECT_EQ(a.violations, b.violations);
  testing::expect_vec_bitwise_equal(a.arrival, b.arrival, "arrival times");
  testing::expect_vec_bitwise_equal(a.required, b.required, "required times");
  testing::expect_vec_bitwise_equal(a.slack, b.slack, "slacks");
}

// --- QP workspace ----------------------------------------------------------
// Full-run proof of the pattern-cache contract: a placement computed with
// the iteration-persistent QP workspace (cached CSR revalue, reused PCG
// scratch) is bitwise identical to one computed with fresh assembly every
// iteration, at any thread count. Topology changes between iterations are
// exercised naturally — every relinearization that moves a bounding pin is
// a forced cache invalidation, and the run must sail through it.
TEST(GoldenDeterminism, QpWorkspaceCacheBitwiseInvariant) {
  const Netlist nl = testing::small_circuit(17, 1500);
  ComplxConfig base;
  base.max_iterations = 25;
  ThreadGuard guard;

  struct Variant {
    bool reuse;
    int threads;
  };
  const Variant variants[] = {{true, 1}, {true, 8}, {false, 1}, {false, 8}};
  std::vector<PlaceResult> results;
  for (const Variant& v : variants) {
    ComplxConfig cfg = base;
    cfg.qp.reuse_workspace = v.reuse;
    cfg.threads = v.threads;
    results.push_back(ComplxPlacer(nl, cfg).place());
  }

  for (size_t k = 1; k < results.size(); ++k) {
    EXPECT_EQ(results[0].iterations, results[k].iterations) << "variant " << k;
    EXPECT_EQ(results[0].final_lambda, results[k].final_lambda)
        << "variant " << k;
    testing::expect_placements_bitwise_equal(results[0].lower_bound,
                                             results[k].lower_bound);
    testing::expect_placements_bitwise_equal(results[0].anchors,
                                             results[k].anchors);
    expect_traces_identical(results[0].trace, results[k].trace);
  }

  // The flag actually routes: workspace runs exercised the pattern cache,
  // fresh-assembly runs never touched it.
  EXPECT_GT(results[0].solver.pattern_hits + results[0].solver.pattern_misses,
            0u);
  EXPECT_EQ(results[2].solver.pattern_hits, 0u);
  EXPECT_EQ(results[2].solver.pattern_misses, 0u);
}

// --- projection path -------------------------------------------------------
// The feasibility projection spreads whole regions concurrently (chunk=1
// parallel_for over disjoint per-region mote lists). The result must be
// bitwise identical at any thread count.
TEST(GoldenDeterminism, ProjectionThreadCountBitwiseInvariant) {
  const Netlist nl = testing::small_circuit(19, 1500, /*movable_macros=*/1);
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  ThreadGuard guard;
  std::vector<ProjectionResult> results;
  for (const int threads : {1, 2, 8}) {
    set_global_threads(static_cast<size_t>(threads));
    LookAheadLegalizer lal(nl, {});
    results.push_back(lal.project(p));
  }
  for (size_t k = 1; k < results.size(); ++k) {
    EXPECT_EQ(results[0].num_regions, results[k].num_regions) << "run " << k;
    EXPECT_EQ(results[0].displacement_l1, results[k].displacement_l1)
        << "run " << k;
    EXPECT_EQ(results[0].input_overflow_ratio,
              results[k].input_overflow_ratio)
        << "run " << k;
    testing::expect_placements_bitwise_equal(results[0].anchors,
                                             results[k].anchors);
  }
}

// Regression for the double-spread bug: a mote whose center sits exactly on
// the boundary shared by two regions satisfies the inclusive Rect::contains
// for both. The historical gather loop enrolled it in BOTH per-region lists,
// so the second region's spread consumed coordinates the first had already
// rewritten (and made concurrent region spreading a data race). The fix —
// exclusive first-region-wins ownership — must spread each mote exactly
// once, bitwise identically at any thread count.
TEST(GoldenDeterminism, BoundaryMotesSpreadExactlyOnce) {
  Netlist nl;
  Cell d;
  d.width = 1;
  d.height = 1;
  nl.add_cell(d, "dummy");
  nl.set_core({0, 0, 100, 100});
  nl.finalize();

  // Regions meeting at x=50 (a 10x10-grid bin edge, exactly representable).
  const std::vector<Rect> regions = {{0, 0, 50, 100}, {50, 0, 100, 100}};
  const auto make_motes = [] {
    std::vector<Mote> motes;
    Rng rng(97);
    for (size_t k = 0; k < 60; ++k) {
      Mote m;
      m.x = (k % 2 == 0) ? rng.uniform(40.0, 49.5) : rng.uniform(50.5, 60.0);
      m.y = rng.uniform(5.0, 95.0);
      m.width = 4.0;
      m.height = 4.0;
      m.owner = static_cast<CellId>(k);
      motes.push_back(m);
    }
    for (const double y : {20.0, 50.0, 80.0}) {
      Mote m;
      m.x = 50.0;  // exactly on the shared boundary
      m.y = y;
      m.width = 4.0;
      m.height = 4.0;
      m.owner = static_cast<CellId>(motes.size());
      motes.push_back(m);
    }
    return motes;
  };

  const auto build_grid = [&](const std::vector<Mote>& motes) {
    DensityGrid g(nl, 10, 10);
    std::vector<Rect> rects;
    for (const Mote& m : motes) rects.push_back(m.bounds());
    g.build_from_rects(rects);
    return g;
  };

  // 1. Demonstrate the old behaviour: the inclusive gather double-enrolls
  //    every boundary mote, and the second spread moves it AGAIN after the
  //    first already placed it.
  {
    std::vector<Mote> motes = make_motes();
    const DensityGrid grid = build_grid(motes);
    std::vector<std::vector<Mote*>> gathered(regions.size());
    for (Mote& m : motes)
      for (size_t r = 0; r < regions.size(); ++r)
        if (regions[r].contains(Point{m.x, m.y})) gathered[r].push_back(&m);
    size_t double_enrolled = 0;
    for (const Mote& m : motes) {
      size_t hits = 0;
      for (const auto& list : gathered)
        hits += static_cast<size_t>(
            std::count(list.begin(), list.end(), &m));
      if (hits == 2) ++double_enrolled;
    }
    ASSERT_EQ(double_enrolled, 3u) << "fixture lost its boundary motes";

    Spreader spreader(grid, SpreaderOptions{});
    Mote* const boundary = gathered[0].back();  // one of the x=50 motes
    ASSERT_EQ(boundary->x, 50.0);
    spreader.spread(regions[0], gathered[0]);
    const Point after_first{boundary->x, boundary->y};
    spreader.spread(regions[1], gathered[1]);
    EXPECT_TRUE(boundary->x != after_first.x || boundary->y != after_first.y)
        << "double-enrolled mote was expected to be spread twice";
  }

  // 2. The fixed path: exclusive ownership, disjoint lists, and bitwise
  //    thread invariance of the concurrent per-region spread.
  std::vector<std::vector<Mote>> spread_results;
  for (const int threads : {1, 2, 8}) {
    ThreadGuard guard;
    set_global_threads(static_cast<size_t>(threads));
    std::vector<Mote> motes = make_motes();
    const DensityGrid grid = build_grid(motes);
    const std::vector<size_t> owner = assign_motes_to_regions(regions, motes);
    std::vector<std::vector<Mote*>> per_region(regions.size());
    size_t owned = 0;
    for (size_t k = 0; k < motes.size(); ++k) {
      ASSERT_NE(owner[k], kNoSpreadRegion) << "mote " << k;
      per_region[owner[k]].push_back(&motes[k]);
      ++owned;
    }
    EXPECT_EQ(per_region[0].size() + per_region[1].size(), owned)
        << "per-region lists must partition the motes";
    for (size_t k = 0; k < motes.size(); ++k) {
      if (motes[k].x == 50.0) {
        EXPECT_EQ(owner[k], 0u) << "boundary mote " << k
                                << " must go to the first region";
      }
    }

    Spreader spreader(grid, SpreaderOptions{});
    parallel_for(
        regions.size(),
        [&](size_t begin, size_t end) {
          for (size_t r = begin; r < end; ++r)
            spreader.spread(regions[r], per_region[r]);
        },
        /*chunk=*/1);
    spread_results.push_back(std::move(motes));
  }
  for (size_t run = 1; run < spread_results.size(); ++run) {
    ASSERT_EQ(spread_results[0].size(), spread_results[run].size());
    for (size_t k = 0; k < spread_results[0].size(); ++k) {
      EXPECT_EQ(spread_results[0][k].x, spread_results[run][k].x)
          << "run " << run << " mote " << k;
      EXPECT_EQ(spread_results[0][k].y, spread_results[run][k].y)
          << "run " << run << " mote " << k;
    }
  }
}

// --- known-optimum fleet ---------------------------------------------------
// The quality gate (scripts/quality_gate.py) treats paired ratio differences
// as noise-free: a no-op change must produce exact ties. That only holds if
// a fleet record — generation, placement, legalization, detailed placement,
// scoring — is bitwise identical at any thread count. wall_s is excluded by
// contract via record_timing=false (the one nondeterministic field).
TEST(GoldenDeterminism, FleetRecordThreadInvariant) {
  PekoParams params;
  params.num_cells = 256;
  params.utilization = 0.7;
  params.num_fixed_macros = 2;
  params.seed = 31;
  ThreadGuard guard;

  std::vector<FleetRecord> records;
  for (const size_t threads : {1u, 2u, 8u}) {
    FleetRunOptions opts;
    opts.max_iterations = 20;
    opts.threads = threads;
    opts.record_timing = false;
    set_global_threads(threads);
    records.push_back(run_fleet_design(params, opts));
  }
  const FleetRecord& a = records[0];
  EXPECT_TRUE(a.legal);
  EXPECT_GE(a.ratio, 1.0);
  for (size_t k = 1; k < records.size(); ++k) {
    const FleetRecord& b = records[k];
    EXPECT_EQ(a.name, b.name) << "run " << k;
    EXPECT_EQ(a.seed, b.seed) << "run " << k;
    EXPECT_EQ(a.cells, b.cells) << "run " << k;
    EXPECT_EQ(a.movable, b.movable) << "run " << k;
    EXPECT_EQ(a.nets, b.nets) << "run " << k;
    EXPECT_EQ(a.macros, b.macros) << "run " << k;
    EXPECT_EQ(a.utilization, b.utilization) << "run " << k;
    EXPECT_EQ(a.optimum_hpwl, b.optimum_hpwl) << "run " << k;
    EXPECT_EQ(a.hpwl, b.hpwl) << "run " << k;
    EXPECT_EQ(a.ratio, b.ratio) << "run " << k;
    EXPECT_EQ(a.overflow_percent, b.overflow_percent) << "run " << k;
    EXPECT_EQ(a.legal, b.legal) << "run " << k;
    EXPECT_EQ(a.iterations, b.iterations) << "run " << k;
    EXPECT_EQ(a.wall_s, 0.0);
    EXPECT_EQ(b.wall_s, 0.0) << "run " << k;
  }
}

// --- electrostatic density backend ------------------------------------------
// The FFT Poisson path (charge deposit, DCT transforms, field readback,
// diffusion sweeps) must obey the same contract as the spread path: the full
// placer run is bitwise identical at 1, 2, and 8 threads.
TEST(GoldenDeterminism, ElectrostaticBackendThreadInvariant) {
  const Netlist nl = testing::small_circuit(29, 900);
  ComplxConfig base;
  base.max_iterations = 15;
  base.density_backend = "electrostatic";
  ThreadGuard guard;

  std::vector<PlaceResult> results;
  for (const size_t threads : {1u, 2u, 8u}) {
    ComplxConfig cfg = base;
    cfg.threads = threads;
    results.push_back(ComplxPlacer(nl, cfg).place());
  }
  for (size_t k = 1; k < results.size(); ++k) {
    EXPECT_EQ(results[0].iterations, results[k].iterations) << "run " << k;
    EXPECT_EQ(results[0].final_lambda, results[k].final_lambda)
        << "run " << k;
    EXPECT_EQ(results[0].final_overflow, results[k].final_overflow)
        << "run " << k;
    testing::expect_placements_bitwise_equal(results[0].lower_bound,
                                             results[k].lower_bound);
    testing::expect_placements_bitwise_equal(results[0].anchors,
                                             results[k].anchors);
    expect_traces_identical(results[0].trace, results[k].trace);
  }
}

TEST(GoldenDeterminism, MacroDesignWithRoutability) {
  // Movable macros exercise the shredder/density rect path; routability
  // exercises the parallel RUDY build feeding inflation back into P_C.
  const Netlist nl = testing::small_circuit(13, 1500, /*movable_macros=*/2,
                                            /*target_density=*/0.8);
  ComplxConfig cfg;
  cfg.max_iterations = 25;
  cfg.routability.enabled = true;
  cfg.routability.period = 3;
  run_and_compare(nl, cfg);
}

TEST(GoldenDeterminism, CoarsenThreadInvariant) {
  // coarsen() must produce byte-identical coarse netlists at any thread
  // count: the seeded visit order and the dense-scratch affinity scan are
  // its only orderings, and neither may depend on the parallel runtime.
  // (Audit notes: the matching pass uses a dense per-cell scratch instead
  // of a hash map and breaks affinity ties to the smallest id, so no D1
  // iteration-order hazard; the net rebuild walks nets in id order.)
  ThreadGuard guard;
  const Netlist fine = testing::small_circuit(17, 2000, /*movable_macros=*/1);
  ClusterOptions copts;
  copts.seed = 99;

  std::vector<CoarseLevel> levels;
  for (const size_t threads : {1u, 2u, 8u}) {
    set_global_threads(threads);
    levels.push_back(coarsen(fine, copts));
  }
  const Netlist& a = levels[0].netlist;
  for (size_t k = 1; k < levels.size(); ++k) {
    const Netlist& b = levels[k].netlist;
    ASSERT_EQ(a.num_cells(), b.num_cells()) << "run " << k;
    ASSERT_EQ(a.num_nets(), b.num_nets()) << "run " << k;
    ASSERT_EQ(a.num_pins(), b.num_pins()) << "run " << k;
    EXPECT_EQ(levels[0].fine_to_coarse, levels[k].fine_to_coarse)
        << "run " << k;
    for (CellId i = 0; i < a.num_cells(); ++i) {
      EXPECT_EQ(testing::bits(a.cell(i).x), testing::bits(b.cell(i).x)) << i;
      EXPECT_EQ(testing::bits(a.cell(i).y), testing::bits(b.cell(i).y)) << i;
      EXPECT_EQ(testing::bits(a.cell(i).width), testing::bits(b.cell(i).width))
          << i;
      EXPECT_EQ(a.cell(i).kind, b.cell(i).kind) << i;
      EXPECT_EQ(a.cell_name(i), b.cell_name(i)) << i;
    }
    for (NetId e = 0; e < a.num_nets(); ++e) {
      EXPECT_EQ(a.net(e).first_pin, b.net(e).first_pin) << e;
      EXPECT_EQ(a.net(e).num_pins, b.net(e).num_pins) << e;
      EXPECT_EQ(testing::bits(a.net(e).weight), testing::bits(b.net(e).weight))
          << e;
    }
    for (PinId q = 0; q < a.num_pins(); ++q)
      EXPECT_EQ(a.pin(q).cell, b.pin(q).cell) << q;
  }
}

}  // namespace
}  // namespace complx
