// Seed-anchored end-to-end determinism: the full Placer, run at 1 thread
// and at the maximum thread count, must produce identical final coordinates,
// identical iteration counts, and an identical per-iteration (Φ, Π, λ)
// trace. Every future performance PR must keep this green — it is the
// regression net that lets hot paths be rewritten without re-validating
// placement quality.
#include <gtest/gtest.h>

#include "core/placer.h"
#include "helpers.h"
#include "legal/abacus.h"
#include "legal/tetris.h"
#include "timing/sta.h"
#include "util/parallel.h"

namespace complx {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { set_global_threads(0); }
};

void expect_traces_identical(const std::vector<IterationStats>& a,
                             const std::vector<IterationStats>& b) {
  ASSERT_EQ(a.size(), b.size()) << "trace length differs";
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].iteration, b[k].iteration) << "iter " << k;
    EXPECT_EQ(a[k].lambda, b[k].lambda) << "lambda, iter " << k;
    EXPECT_EQ(a[k].phi_lower, b[k].phi_lower) << "phi_lower, iter " << k;
    EXPECT_EQ(a[k].phi_upper, b[k].phi_upper) << "phi_upper, iter " << k;
    EXPECT_EQ(a[k].pi, b[k].pi) << "pi, iter " << k;
    EXPECT_EQ(a[k].lagrangian, b[k].lagrangian) << "lagrangian, iter " << k;
    EXPECT_EQ(a[k].overflow_ratio, b[k].overflow_ratio)
        << "overflow, iter " << k;
    EXPECT_EQ(a[k].grid_bins, b[k].grid_bins) << "grid, iter " << k;
  }
}

void run_and_compare(const Netlist& nl, ComplxConfig cfg) {
  ThreadGuard guard;

  cfg.threads = 1;
  const PlaceResult serial = ComplxPlacer(nl, cfg).place();

  cfg.threads = 8;  // oversubscribes small hosts on purpose — must not matter
  const PlaceResult parallel = ComplxPlacer(nl, cfg).place();

  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_EQ(serial.final_lambda, parallel.final_lambda);
  EXPECT_EQ(serial.final_overflow, parallel.final_overflow);
  testing::expect_placements_bitwise_equal(serial.lower_bound,
                                           parallel.lower_bound);
  testing::expect_placements_bitwise_equal(serial.anchors, parallel.anchors);
  expect_traces_identical(serial.trace, parallel.trace);
}

TEST(GoldenDeterminism, StandardCellDesign) {
  const Netlist nl = testing::small_circuit(7, 2000);
  ComplxConfig cfg;
  cfg.max_iterations = 30;
  run_and_compare(nl, cfg);
}

// --- downstream stages -----------------------------------------------------
// The placer's contract extends through legalization and analysis: the same
// global placement must legalize to the same rows and score the same slacks
// regardless of the thread count (and of how often the stage is re-run).

/// One global placement shared by the downstream-stage tests.
const PlaceResult& shared_gp() {
  static const PlaceResult r = [] {
    ThreadGuard guard;
    set_global_threads(1);
    ComplxConfig cfg;
    cfg.threads = 1;
    cfg.max_iterations = 20;
    return ComplxPlacer(testing::small_circuit(11, 1200, 1), cfg).place();
  }();
  return r;
}

template <typename Legalizer>
void expect_legalizer_thread_invariant() {
  const Netlist nl = testing::small_circuit(11, 1200, 1);
  const PlaceResult& gp = shared_gp();
  ThreadGuard guard;

  set_global_threads(1);
  Placement serial = gp.anchors;
  const LegalizeResult r1 = Legalizer(nl).legalize(serial);

  set_global_threads(8);
  Placement parallel = gp.anchors;
  const LegalizeResult r8 = Legalizer(nl).legalize(parallel);

  EXPECT_EQ(r1.placed, r8.placed);
  EXPECT_EQ(r1.total_displacement, r8.total_displacement);
  testing::expect_placements_bitwise_equal(serial, parallel);

  // Re-running the same stage must also be a pure function of its input.
  set_global_threads(8);
  Placement again = gp.anchors;
  Legalizer(nl).legalize(again);
  testing::expect_placements_bitwise_equal(parallel, again);
}

TEST(GoldenDeterminism, TetrisLegalizerThreadInvariant) {
  expect_legalizer_thread_invariant<TetrisLegalizer>();
}

TEST(GoldenDeterminism, AbacusLegalizerThreadInvariant) {
  expect_legalizer_thread_invariant<AbacusLegalizer>();
}

TEST(GoldenDeterminism, StaticTimingThreadInvariant) {
  const Netlist nl = testing::small_circuit(11, 1200, 1);
  const PlaceResult& gp = shared_gp();
  const std::vector<char> regs = choose_registers(nl, 0.1, 3);
  const TimingGraph graph(nl, regs, TimingOptions{});
  ThreadGuard guard;

  set_global_threads(1);
  const TimingReport a = graph.analyze(gp.anchors);
  set_global_threads(8);
  const TimingReport b = graph.analyze(gp.anchors);

  EXPECT_EQ(a.worst_slack, b.worst_slack);
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(a.worst_endpoint, b.worst_endpoint);
  EXPECT_EQ(a.violations, b.violations);
  testing::expect_vec_bitwise_equal(a.arrival, b.arrival, "arrival times");
  testing::expect_vec_bitwise_equal(a.required, b.required, "required times");
  testing::expect_vec_bitwise_equal(a.slack, b.slack, "slacks");
}

// --- QP workspace ----------------------------------------------------------
// Full-run proof of the pattern-cache contract: a placement computed with
// the iteration-persistent QP workspace (cached CSR revalue, reused PCG
// scratch) is bitwise identical to one computed with fresh assembly every
// iteration, at any thread count. Topology changes between iterations are
// exercised naturally — every relinearization that moves a bounding pin is
// a forced cache invalidation, and the run must sail through it.
TEST(GoldenDeterminism, QpWorkspaceCacheBitwiseInvariant) {
  const Netlist nl = testing::small_circuit(17, 1500);
  ComplxConfig base;
  base.max_iterations = 25;
  ThreadGuard guard;

  struct Variant {
    bool reuse;
    int threads;
  };
  const Variant variants[] = {{true, 1}, {true, 8}, {false, 1}, {false, 8}};
  std::vector<PlaceResult> results;
  for (const Variant& v : variants) {
    ComplxConfig cfg = base;
    cfg.qp.reuse_workspace = v.reuse;
    cfg.threads = v.threads;
    results.push_back(ComplxPlacer(nl, cfg).place());
  }

  for (size_t k = 1; k < results.size(); ++k) {
    EXPECT_EQ(results[0].iterations, results[k].iterations) << "variant " << k;
    EXPECT_EQ(results[0].final_lambda, results[k].final_lambda)
        << "variant " << k;
    testing::expect_placements_bitwise_equal(results[0].lower_bound,
                                             results[k].lower_bound);
    testing::expect_placements_bitwise_equal(results[0].anchors,
                                             results[k].anchors);
    expect_traces_identical(results[0].trace, results[k].trace);
  }

  // The flag actually routes: workspace runs exercised the pattern cache,
  // fresh-assembly runs never touched it.
  EXPECT_GT(results[0].solver.pattern_hits + results[0].solver.pattern_misses,
            0u);
  EXPECT_EQ(results[2].solver.pattern_hits, 0u);
  EXPECT_EQ(results[2].solver.pattern_misses, 0u);
}

TEST(GoldenDeterminism, MacroDesignWithRoutability) {
  // Movable macros exercise the shredder/density rect path; routability
  // exercises the parallel RUDY build feeding inflation back into P_C.
  const Netlist nl = testing::small_circuit(13, 1500, /*movable_macros=*/2,
                                            /*target_density=*/0.8);
  ComplxConfig cfg;
  cfg.max_iterations = 25;
  cfg.routability.enabled = true;
  cfg.routability.period = 3;
  run_and_compare(nl, cfg);
}

}  // namespace
}  // namespace complx
