// Seed-anchored end-to-end determinism: the full Placer, run at 1 thread
// and at the maximum thread count, must produce identical final coordinates,
// identical iteration counts, and an identical per-iteration (Φ, Π, λ)
// trace. Every future performance PR must keep this green — it is the
// regression net that lets hot paths be rewritten without re-validating
// placement quality.
#include <gtest/gtest.h>

#include "core/placer.h"
#include "helpers.h"
#include "util/parallel.h"

namespace complx {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { set_global_threads(0); }
};

void expect_traces_identical(const std::vector<IterationStats>& a,
                             const std::vector<IterationStats>& b) {
  ASSERT_EQ(a.size(), b.size()) << "trace length differs";
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].iteration, b[k].iteration) << "iter " << k;
    EXPECT_EQ(a[k].lambda, b[k].lambda) << "lambda, iter " << k;
    EXPECT_EQ(a[k].phi_lower, b[k].phi_lower) << "phi_lower, iter " << k;
    EXPECT_EQ(a[k].phi_upper, b[k].phi_upper) << "phi_upper, iter " << k;
    EXPECT_EQ(a[k].pi, b[k].pi) << "pi, iter " << k;
    EXPECT_EQ(a[k].lagrangian, b[k].lagrangian) << "lagrangian, iter " << k;
    EXPECT_EQ(a[k].overflow_ratio, b[k].overflow_ratio)
        << "overflow, iter " << k;
    EXPECT_EQ(a[k].grid_bins, b[k].grid_bins) << "grid, iter " << k;
  }
}

void run_and_compare(const Netlist& nl, ComplxConfig cfg) {
  ThreadGuard guard;

  cfg.threads = 1;
  const PlaceResult serial = ComplxPlacer(nl, cfg).place();

  cfg.threads = 8;  // oversubscribes small hosts on purpose — must not matter
  const PlaceResult parallel = ComplxPlacer(nl, cfg).place();

  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_EQ(serial.final_lambda, parallel.final_lambda);
  EXPECT_EQ(serial.final_overflow, parallel.final_overflow);
  testing::expect_placements_bitwise_equal(serial.lower_bound,
                                           parallel.lower_bound);
  testing::expect_placements_bitwise_equal(serial.anchors, parallel.anchors);
  expect_traces_identical(serial.trace, parallel.trace);
}

TEST(GoldenDeterminism, StandardCellDesign) {
  const Netlist nl = testing::small_circuit(7, 2000);
  ComplxConfig cfg;
  cfg.max_iterations = 30;
  run_and_compare(nl, cfg);
}

TEST(GoldenDeterminism, MacroDesignWithRoutability) {
  // Movable macros exercise the shredder/density rect path; routability
  // exercises the parallel RUDY build feeding inflation back into P_C.
  const Netlist nl = testing::small_circuit(13, 1500, /*movable_macros=*/2,
                                            /*target_density=*/0.8);
  ComplxConfig cfg;
  cfg.max_iterations = 25;
  cfg.routability.enabled = true;
  cfg.routability.period = 3;
  run_and_compare(nl, cfg);
}

}  // namespace
}  // namespace complx
