#include <gtest/gtest.h>

#include <numeric>
#include <utility>

#include "density/grid.h"
#include "helpers.h"
#include "projection/spreader.h"
#include "util/rng.h"

namespace complx {
namespace {

/// Empty 100x100 core (no fixed objects) with one tiny movable cell so the
/// netlist finalizes; motes are created independently of it.
Netlist empty_core() {
  Netlist nl;
  Cell c;
  c.width = 1;
  c.height = 1;
  nl.add_cell(c, "dummy");
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  return nl;
}

std::vector<Mote> cluster_motes(size_t n, double cx, double cy, double spread,
                                uint64_t seed, double size = 4.0) {
  Rng rng(seed);
  std::vector<Mote> motes(n);
  for (size_t i = 0; i < n; ++i) {
    motes[i].x = cx + rng.uniform(-spread, spread);
    motes[i].y = cy + rng.uniform(-spread, spread);
    motes[i].width = size;
    motes[i].height = size;
    motes[i].owner = 0;
  }
  return motes;
}

class SpreaderTest : public ::testing::Test {
 protected:
  void run(std::vector<Mote>& motes, const Rect& region, double gamma) {
    Netlist nl = empty_core();
    DensityGrid grid(nl, 10, 10);
    std::vector<Rect> rects;
    for (const Mote& m : motes) rects.push_back(m.bounds());
    grid.build_from_rects(rects);
    SpreaderOptions opts;
    opts.gamma = gamma;
    Spreader spreader(grid, opts);
    std::vector<Mote*> ptrs;
    for (Mote& m : motes) ptrs.push_back(&m);
    spreader.spread(region, ptrs);
  }
};

TEST_F(SpreaderTest, MotesStayInsideRegion) {
  auto motes = cluster_motes(200, 50, 50, 5, 1);
  const Rect region{0, 0, 100, 100};
  run(motes, region, 1.0);
  for (const Mote& m : motes) {
    EXPECT_GE(m.x, region.xl - 1e-9);
    EXPECT_LE(m.x, region.xh + 1e-9);
    EXPECT_GE(m.y, region.yl - 1e-9);
    EXPECT_LE(m.y, region.yh + 1e-9);
  }
}

TEST_F(SpreaderTest, DensityIsEvenedOut) {
  // 200 motes piled at center; after spreading, quadrant areas should be
  // roughly equal.
  auto motes = cluster_motes(200, 50, 50, 4, 2);
  run(motes, {0, 0, 100, 100}, 1.0);
  double q[4] = {0, 0, 0, 0};
  for (const Mote& m : motes)
    q[(m.x > 50 ? 1 : 0) + (m.y > 50 ? 2 : 0)] += m.area();
  const double total = q[0] + q[1] + q[2] + q[3];
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(q[i] / total, 0.25, 0.12) << i;
}

TEST_F(SpreaderTest, SpreadLowersPeakDensity) {
  auto motes = cluster_motes(300, 30, 70, 6, 3);
  Netlist nl = empty_core();
  auto peak = [&](const std::vector<Mote>& ms) {
    DensityGrid g(nl, 10, 10);
    std::vector<Rect> rects;
    for (const Mote& m : ms) rects.push_back(m.bounds());
    g.build_from_rects(rects);
    double mx = 0.0;
    for (size_t j = 0; j < 10; ++j)
      for (size_t i = 0; i < 10; ++i) mx = std::max(mx, g.usage(i, j));
    return mx;
  };
  const double before = peak(motes);
  run(motes, {0, 0, 100, 100}, 1.0);
  EXPECT_LT(peak(motes), 0.5 * before);
}

TEST_F(SpreaderTest, EmptyInputIsNoop) {
  std::vector<Mote> none;
  run(none, {0, 0, 100, 100}, 1.0);
  SUCCEED();
}

TEST_F(SpreaderTest, SingleMoteStaysPut) {
  auto motes = cluster_motes(1, 42, 13, 0, 4);
  const double ox = motes[0].x, oy = motes[0].y;
  run(motes, {0, 0, 100, 100}, 1.0);
  // One mote in a huge region: terminal spread may slide it along the
  // dominant axis, but it must remain in the region; with uniform capacity
  // it lands at the capacity midpoint. Just require containment and finite.
  EXPECT_GE(motes[0].x, 0.0);
  EXPECT_LE(motes[0].x, 100.0);
  EXPECT_GE(motes[0].y, 0.0);
  EXPECT_LE(motes[0].y, 100.0);
  (void)ox;
  (void)oy;
}

struct OrderCase {
  size_t n;
  uint64_t seed;
};

class SpreaderOrder : public ::testing::TestWithParam<OrderCase> {};

/// Relative order along the spreading axis is preserved (the convexity
/// argument of Section S2 depends on this).
TEST_P(SpreaderOrder, TerminalSpreadPreservesOrder) {
  const auto [n, seed] = GetParam();
  Netlist nl = empty_core();
  Rng rng(seed);
  // A single row of motes across a wide, short region: terminal spreading
  // acts along x. Order in x must be preserved.
  std::vector<Mote> motes(n);
  for (size_t i = 0; i < n; ++i) {
    motes[i].x = rng.uniform(40, 60);
    motes[i].y = 5.0;
    motes[i].width = 2.0;
    motes[i].height = 2.0;
  }
  std::vector<size_t> order_before(n);
  std::iota(order_before.begin(), order_before.end(), 0u);
  std::sort(order_before.begin(), order_before.end(),
            [&](size_t a, size_t b) { return motes[a].x < motes[b].x; });

  DensityGrid grid(nl, 10, 10);
  std::vector<Rect> rects;
  for (const Mote& m : motes) rects.push_back(m.bounds());
  grid.build_from_rects(rects);
  SpreaderOptions opts;
  opts.gamma = 1.0;
  opts.terminal_motes = static_cast<int>(n) + 1;  // force terminal path
  Spreader spreader(grid, opts);
  std::vector<Mote*> ptrs;
  for (Mote& m : motes) ptrs.push_back(&m);
  spreader.spread({0, 0, 100, 10}, ptrs);

  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_LE(motes[order_before[i]].x, motes[order_before[i + 1]].x + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpreaderOrder,
                         ::testing::Values(OrderCase{5, 1}, OrderCase{20, 2},
                                           OrderCase{100, 3},
                                           OrderCase{400, 4}));

TEST_F(SpreaderTest, RespectsBlockedCapacity) {
  // Left half of the core is blocked by a fixed macro: after spreading,
  // most mote area must sit in the right half.
  Netlist nl;
  Cell blk;
  blk.width = 50;
  blk.height = 100;
  blk.x = 0;
  blk.y = 0;
  blk.kind = CellKind::Fixed;
  nl.add_cell(blk, "blk");
  Cell d;
  d.width = 1;
  d.height = 1;
  nl.add_cell(d, "d");
  nl.set_core({0, 0, 100, 100});
  nl.finalize();

  auto motes = cluster_motes(150, 50, 50, 5, 5);
  DensityGrid grid(nl, 10, 10);
  std::vector<Rect> rects;
  for (const Mote& m : motes) rects.push_back(m.bounds());
  grid.build_from_rects(rects);
  SpreaderOptions opts;
  opts.gamma = 1.0;
  Spreader spreader(grid, opts);
  std::vector<Mote*> ptrs;
  for (Mote& m : motes) ptrs.push_back(&m);
  spreader.spread({0, 0, 100, 100}, ptrs);

  double left = 0.0, right = 0.0;
  for (const Mote& m : motes) (m.x < 50 ? left : right) += m.area();
  EXPECT_GT(right, 3.0 * left);
}


TEST(SpreaderSweep, TerminalSweepMatchesBisectionReference) {
  // The monotone profile sweep replaced a 40-step bisection per mote; both
  // compute the infimum coordinate where cumulative gamma-capacity reaches
  // the mote's cumulative-area midpoint. Rebuild the old bisection here and
  // compare, on a capacity profile with a zero plateau in the middle (a
  // full-height fixed block) to exercise the infimum convention.
  Netlist nl;
  Cell blk;
  blk.width = 30;
  blk.height = 100;
  blk.x = 30;  // covers x in [30, 60], all y
  blk.y = 0;
  blk.kind = CellKind::Fixed;
  nl.add_cell(blk, "blk");
  Cell c;
  c.width = 1;
  c.height = 1;
  nl.add_cell(c, "dummy");
  nl.set_core({0, 0, 100, 100});
  nl.finalize();

  std::vector<Mote> motes(20);
  Rng rng(31);
  for (size_t i = 0; i < motes.size(); ++i) {
    motes[i].x = rng.uniform(2.0, 98.0);
    motes[i].y = rng.uniform(10.0, 90.0);
    motes[i].width = 4.0;
    motes[i].height = 4.0;
    motes[i].owner = static_cast<CellId>(i);
  }
  DensityGrid grid(nl, 10, 10);
  std::vector<Rect> rects;
  for (const Mote& m : motes) rects.push_back(m.bounds());
  grid.build_from_rects(rects);

  const Rect region{0, 0, 100, 100};
  const double gamma = 1.0;

  // Reference targets from the pre-spread state, in the sort order the
  // spreader uses along the horizontal axis (x, then owner, then y).
  std::vector<const Mote*> order;
  for (const Mote& m : motes) order.push_back(&m);
  std::sort(order.begin(), order.end(), [](const Mote* a, const Mote* b) {
    if (a->x != b->x) return a->x < b->x;
    if (a->owner != b->owner) return a->owner < b->owner;
    return a->y < b->y;
  });
  double total_area = 0.0;
  for (const Mote& m : motes) total_area += m.area();
  const double region_cap = gamma * grid.free_area_in(region);
  std::vector<std::pair<const Mote*, double>> expected;
  double acc = 0.0;
  for (const Mote* m : order) {
    const double target = region_cap * ((acc + m->area() / 2.0) / total_area);
    acc += m->area();
    double lo = region.xl, hi = region.xh;
    for (int it = 0; it < 40; ++it) {  // the historical capacity_cut
      const double mid = (lo + hi) / 2.0;
      const double cap =
          gamma * grid.free_area_in({region.xl, region.yl, mid, region.yh});
      if (cap < target)
        lo = mid;
      else
        hi = mid;
    }
    expected.push_back({m, (lo + hi) / 2.0});
  }

  SpreaderOptions opts;
  opts.gamma = gamma;
  opts.terminal_motes = 64;  // force the terminal 1-D sweep directly
  Spreader spreader(grid, opts);
  std::vector<Mote*> ptrs;
  for (Mote& m : motes) ptrs.push_back(&m);
  spreader.spread(region, ptrs);

  for (const auto& [m, pos] : expected) {
    EXPECT_NEAR(m->x, pos, 1e-6) << "mote owner " << m->owner;
    // No mote may land inside the zero-capacity plateau's interior.
    EXPECT_FALSE(m->x > 30.0 + 1e-6 && m->x < 60.0 - 1e-6)
        << "mote at " << m->x << " sits on the blocked plateau";
  }
}

}  // namespace
}  // namespace complx
