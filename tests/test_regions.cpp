#include <gtest/gtest.h>

#include "projection/regions.h"

namespace complx {
namespace {

Netlist with_region(Rect region_box, double cell_w = 4, double cell_h = 12) {
  Netlist nl;
  const RegionId r = nl.add_region({"r0", region_box});
  for (int i = 0; i < 4; ++i) {
    Cell c;
    c.width = cell_w;
    c.height = cell_h;
    if (i < 2) c.region = r;  // first two constrained
    nl.add_cell(c, "c" + std::to_string(i));
  }
  nl.set_core({0, 0, 200, 200});
  nl.finalize();
  return nl;
}

TEST(Regions, SnapMovesOutsidersIn) {
  Netlist nl = with_region({50, 50, 100, 100});
  Placement p = nl.snapshot();
  p.x[0] = 10;
  p.y[0] = 10;  // constrained, outside
  p.x[1] = 75;
  p.y[1] = 75;  // constrained, inside
  p.x[2] = 10;
  p.y[2] = 10;  // unconstrained, outside region
  p.x[3] = 180;
  p.y[3] = 180;
  const size_t moved = snap_to_regions(nl, p);
  EXPECT_EQ(moved, 1u);
  EXPECT_TRUE(regions_satisfied(nl, p));
  // Unconstrained cells untouched.
  EXPECT_DOUBLE_EQ(p.x[2], 10.0);
  EXPECT_DOUBLE_EQ(p.x[3], 180.0);
  // Snapped cell is fully inside, honoring half-dimensions.
  EXPECT_GE(p.x[0] - 2.0, 50.0 - 1e-9);
  EXPECT_GE(p.y[0] - 6.0, 50.0 - 1e-9);
}

TEST(Regions, SnapIsIdempotent) {
  Netlist nl = with_region({50, 50, 100, 100});
  Placement p = nl.snapshot();
  p.x[0] = 0;
  p.y[0] = 0;
  snap_to_regions(nl, p);
  const Placement once = p;
  const size_t moved = snap_to_regions(nl, p);
  EXPECT_EQ(moved, 0u);
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(p.x[i], once.x[i]);
    EXPECT_DOUBLE_EQ(p.y[i], once.y[i]);
  }
}

TEST(Regions, SatisfiedDetectsViolations) {
  Netlist nl = with_region({50, 50, 100, 100});
  Placement p = nl.snapshot();
  p.x[0] = 52;  // center at 52, width 4 -> left edge at 50: OK
  p.y[0] = 56;
  p.x[1] = 75;
  p.y[1] = 75;
  EXPECT_TRUE(regions_satisfied(nl, p));
  p.x[0] = 51;  // left edge 49 < 50: violation
  EXPECT_FALSE(regions_satisfied(nl, p));
}

TEST(Regions, CellLargerThanRegionCollapsesToCenter) {
  Netlist nl = with_region({50, 50, 52, 54}, /*cell_w=*/10, /*cell_h=*/20);
  Placement p = nl.snapshot();
  p.x[0] = 0;
  p.y[0] = 0;
  snap_to_regions(nl, p);
  EXPECT_DOUBLE_EQ(p.x[0], 51.0);
  EXPECT_DOUBLE_EQ(p.y[0], 52.0);
}

TEST(Regions, NoRegionsIsNoop) {
  Netlist nl;
  Cell c;
  c.width = 2;
  c.height = 2;
  nl.add_cell(c, "c");
  nl.set_core({0, 0, 10, 10});
  nl.finalize();
  Placement p = nl.snapshot();
  EXPECT_EQ(snap_to_regions(nl, p), 0u);
  EXPECT_TRUE(regions_satisfied(nl, p));
}

}  // namespace
}  // namespace complx
