// ThreadPool unit tests plus the bitwise-determinism suite: the parallel
// kernels (CG solve, HPWL, density overflow) must produce identical bytes
// at 1, 2, and 8 threads. This is the contract every future perf PR builds
// on — see docs/PARALLELISM.md.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "density/grid.h"
#include "helpers.h"
#include "linalg/cg.h"
#include "linalg/sparse.h"
#include "qp/solver.h"
#include "qp/system_builder.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

using testing::expect_vec_bitwise_equal;
using testing::mesh_netlist;
using testing::small_circuit;

/// Restores the default global thread setting when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { set_global_threads(0); }
};

// ------------------------------------------------------------ ThreadPool ----

TEST(ThreadPool, StartupShutdown) {
  // Pools of every size construct, accept work, and join cleanly —
  // including repeatedly and including oversubscription of a small host.
  for (size_t t : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(t);
    EXPECT_EQ(pool.num_threads(), t);
    std::atomic<size_t> count{0};
    pool.parallel_for(100, 7, [&](size_t begin, size_t end) {
      count += end - begin;
    });
    EXPECT_EQ(count.load(), 100u);
  }
  // Idle destruction (no job ever submitted).
  { ThreadPool idle(8); }
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPool, EmptyRange) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, 16, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleElementRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1, 0);
  pool.parallel_for(1, 16, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++hits[0];
  });
  EXPECT_EQ(hits[0], 1);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(8);
  const size_t n = 100000;
  std::vector<std::atomic<int>> visits(n);
  pool.parallel_for(n, 1000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000, 10,
                        [&](size_t begin, size_t) {
                          if (begin >= 500) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must remain usable after a throwing job.
  std::atomic<size_t> count{0};
  pool.parallel_for(64, 8,
                    [&](size_t begin, size_t end) { count += end - begin; });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPool, NestedCallsAreRejectedToInlineExecution) {
  // A parallel_for issued from inside a parallel region must not deadlock
  // or re-enter the pool: it executes its whole range inline.
  ThreadPool pool(4);
  std::atomic<size_t> inner_total{0};
  pool.parallel_for(8, 1, [&](size_t, size_t) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    pool.parallel_for(10, 2, [&](size_t begin, size_t end) {
      inner_total += end - begin;
    });
  });
  EXPECT_EQ(inner_total.load(), 80u);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, InvokeRunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.invoke({[&] { ++ran; }, [&] { ++ran; }, [&] { ++ran; }});
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, ChunkZeroThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10, 0, [](size_t, size_t) {}),
               std::invalid_argument);
}

// -------------------------------------------------------- global helpers ----

TEST(ParallelHelpers, PartitionRangeDependsOnlyOnSize) {
  const Partition a = partition_range(100000, 1024, 32);
  EXPECT_EQ(a.parts, 32u);
  EXPECT_GE(a.parts * a.chunk, 100000u);
  const Partition b = partition_range(100, 1024, 32);
  EXPECT_EQ(b.parts, 1u);
  const Partition empty = partition_range(0, 1024, 32);
  EXPECT_EQ(empty.parts, 1u);
}

TEST(ParallelHelpers, ParallelSumMatchesChunkedSerial) {
  ThreadGuard guard;
  const size_t n = 3 * kReduceChunk + 123;
  Vec v(n);
  Rng rng(99);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);

  auto chunk_sum = [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t i = begin; i < end; ++i) s += v[i];
    return s;
  };
  std::vector<double> sums;
  for (size_t t : {1u, 2u, 8u}) {
    set_global_threads(t);
    sums.push_back(parallel_sum(n, chunk_sum));
  }
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
}

TEST(ParallelHelpers, DotDeterministicAcrossThreadCounts) {
  ThreadGuard guard;
  const size_t n = 5 * kReduceChunk + 7;  // forces the multi-chunk path
  Vec a(n), b(n);
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-10.0, 10.0);
    b[i] = rng.uniform(-10.0, 10.0);
  }
  set_global_threads(1);
  const double d1 = dot(a, b);
  set_global_threads(2);
  const double d2 = dot(a, b);
  set_global_threads(8);
  const double d8 = dot(a, b);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d1, d8);
}

// ------------------------------------------------- kernel determinism -------

/// Builds the x-axis B2B system of a generated circuit — a realistic SPD
/// matrix with ~100k+ entries, big enough to exercise multi-chunk paths.
CsrMatrix placement_system(const Netlist& nl, Vec& rhs) {
  const VarMap vars(nl);
  const Placement snap = nl.snapshot();
  SystemBuilder builder(nl, vars, Axis::X, snap);
  builder.add_pin_springs(build_b2b(nl, snap, Axis::X, {}));
  rhs = builder.rhs();
  return builder.build_matrix();
}

TEST(Determinism, SolvePcgBitwiseAcrossThreads) {
  ThreadGuard guard;
  const Netlist nl = small_circuit(11, 6000);

  Vec x_ref;
  CgResult ref;
  for (size_t t : {1u, 2u, 8u}) {
    set_global_threads(t);
    Vec rhs;
    const CsrMatrix A = placement_system(nl, rhs);
    ASSERT_GT(A.dim(), kReduceChunk) << "design too small to exercise chunks";
    Vec x(A.dim(), 0.0);
    const CgResult res = solve_pcg(A, rhs, x, {});
    EXPECT_TRUE(res.converged);
    if (t == 1) {
      x_ref = x;
      ref = res;
    } else {
      expect_vec_bitwise_equal(x_ref, x, "pcg solution");
      EXPECT_EQ(ref.iterations, res.iterations);
      EXPECT_EQ(ref.residual_norm, res.residual_norm);
    }
  }
}

TEST(Determinism, HpwlBitwiseAcrossThreads) {
  ThreadGuard guard;
  // Generator suite sweep: several seeds/sizes, both plain and weighted.
  for (uint64_t seed : {3u, 17u, 40u}) {
    const Netlist nl = small_circuit(seed, 5000);
    const Placement p = nl.snapshot();
    set_global_threads(1);
    const double h1 = hpwl(nl, p), w1 = weighted_hpwl(nl, p);
    set_global_threads(2);
    const double h2 = hpwl(nl, p), w2 = weighted_hpwl(nl, p);
    set_global_threads(8);
    const double h8 = hpwl(nl, p), w8 = weighted_hpwl(nl, p);
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(h1, h8);
    EXPECT_EQ(w1, w2);
    EXPECT_EQ(w1, w8);
  }
}

TEST(Determinism, DensityOverflowBitwiseAcrossThreads) {
  ThreadGuard guard;
  for (uint64_t seed : {5u, 23u}) {
    const Netlist nl = small_circuit(seed, 6000, /*movable_macros=*/2);
    const Placement p = nl.snapshot();

    std::vector<double> overflow, usage00;
    for (size_t t : {1u, 2u, 8u}) {
      set_global_threads(t);
      DensityGrid grid(nl, 64, 64);
      grid.build(p);
      overflow.push_back(grid.total_overflow(0.9));
      usage00.push_back(grid.usage(3, 5));
    }
    EXPECT_EQ(overflow[0], overflow[1]);
    EXPECT_EQ(overflow[0], overflow[2]);
    EXPECT_EQ(usage00[0], usage00[1]);
    EXPECT_EQ(usage00[0], usage00[2]);
  }
}

TEST(Determinism, SpmvBitwiseAcrossThreads) {
  ThreadGuard guard;
  const Netlist nl = small_circuit(29, 6000);
  Vec rhs;
  const CsrMatrix A = placement_system(nl, rhs);
  Vec x(A.dim());
  Rng rng(1);
  for (double& v : x) v = rng.uniform(-100.0, 100.0);

  set_global_threads(1);
  Vec y1;
  A.multiply(x, y1);
  for (size_t t : {2u, 8u}) {
    set_global_threads(t);
    Vec y;
    A.multiply(x, y);
    expect_vec_bitwise_equal(y1, y, "SpMV result");
  }
}

TEST(Determinism, B2bSpringsIdenticalAcrossThreads) {
  ThreadGuard guard;
  const Netlist nl = small_circuit(31, 8000);
  const Placement p = nl.snapshot();
  set_global_threads(1);
  const std::vector<PinSpring> ref = build_b2b(nl, p, Axis::X, {});
  for (size_t t : {2u, 8u}) {
    set_global_threads(t);
    const std::vector<PinSpring> got = build_b2b(nl, p, Axis::X, {});
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i].p, got[i].p) << i;
      ASSERT_EQ(ref[i].q, got[i].q) << i;
      ASSERT_EQ(ref[i].weight, got[i].weight) << i;
    }
  }
}

TEST(Determinism, QpIterationBitwiseAcrossThreads) {
  ThreadGuard guard;
  const Netlist nl = testing::mesh_netlist(24);
  const VarMap vars(nl);
  QpOptions opts;
  opts.b2b.min_separation = std::max(1.0, nl.average_movable_width());

  set_global_threads(1);
  Placement ref = nl.snapshot();
  solve_qp_iteration(nl, vars, ref, nullptr, opts);
  for (size_t t : {2u, 8u}) {
    set_global_threads(t);
    Placement p = nl.snapshot();
    solve_qp_iteration(nl, vars, p, nullptr, opts);
    testing::expect_placements_bitwise_equal(ref, p);
  }
}

}  // namespace
}  // namespace complx
