// Fixture tests for complx-lint: every rule must fire on a minimal
// offending snippet, stay quiet on the compliant rewrite, and honour the
// allow(...) suppression syntax (which itself demands a justification).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.h"

namespace complx::lint {
namespace {

std::vector<std::string> rules_fired(const std::string& path,
                                     const std::string& src) {
  std::vector<std::string> out;
  for (const Finding& f : lint_source(path, src)) out.push_back(f.rule);
  return out;
}

bool fired(const std::string& path, const std::string& src,
           const std::string& rule) {
  const auto rules = rules_fired(path, src);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// ------------------------------------------------------------------ D1 ----

TEST(LintD1, FiresOnRangeForOverUnorderedMap) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "#include <unordered_map>\n"
                    "double f(const std::unordered_map<int,double>& m) {\n"
                    "  double s = 0.0;\n"
                    "  for (const auto& [k, v] : m) s += v;\n"
                    "  return s;\n"
                    "}\n",
                    "D1"));
}

TEST(LintD1, FiresOnExplicitBeginIterator) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "std::unordered_set<int> seen;\n"
                    "void g() { auto it = seen.begin(); (void)it; }\n",
                    "D1"));
}

TEST(LintD1, FiresOnMemberContainerInRangeFor) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "struct S { std::unordered_map<int,int> index_; };\n"
                    "void h(S& s) { for (auto& kv : s.index_) (void)kv; }\n",
                    "D1"));
}

TEST(LintD1, QuietOnLookupOnlyUse) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "std::unordered_map<std::string,int> idx;\n"
                     "int find(const std::string& k) {\n"
                     "  auto it = idx.find(k);\n"
                     "  return it == idx.end() ? -1 : it->second;\n"
                     "}\n",
                     "D1"));
}

TEST(LintD1, QuietOnOrderedContainers) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "std::map<int,int> m;\n"
                     "void f() { for (auto& kv : m) (void)kv; }\n",
                     "D1"));
}

// ------------------------------------------------------------------ D2 ----

TEST(LintD2, FiresOnRandAndSrand) {
  EXPECT_TRUE(fired("src/x.cpp", "int f() { return std::rand(); }\n", "D2"));
  EXPECT_TRUE(fired("src/x.cpp", "void g() { srand(42); }\n", "D2"));
}

TEST(LintD2, FiresOnRandomDeviceOutsideRngHeader) {
  const std::string src = "std::random_device rd;\n";
  EXPECT_TRUE(fired("src/x.cpp", src, "D2"));
  EXPECT_FALSE(fired("src/util/rng.h", src, "D2"));  // the seeded authority
}

TEST(LintD2, FiresOnWallClockAndThreadId) {
  EXPECT_TRUE(fired("src/x.cpp", "long t = time(nullptr);\n", "D2"));
  EXPECT_TRUE(
      fired("src/x.cpp",
            "auto id = std::this_thread::get_id();\n", "D2"));
}

TEST(LintD2, QuietOnMemberNamedTimeAndComments) {
  EXPECT_FALSE(fired("src/x.cpp", "double s = timer.time();\n", "D2"));
  EXPECT_FALSE(fired("src/x.cpp", "// never call rand() here\n", "D2"));
  EXPECT_FALSE(fired("src/x.cpp", "const char* s = \"rand(\";\n", "D2"));
}

// ------------------------------------------------------------------ N1 ----

TEST(LintN1, FiresOnFloatLiteralComparison) {
  EXPECT_TRUE(fired("src/x.cpp", "bool b = x == 0.0;\n", "N1"));
  EXPECT_TRUE(fired("src/x.cpp", "bool b = 1e-9 != y;\n", "N1"));
}

TEST(LintN1, FiresOnDeclaredDoubleVariable) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "bool f(double gap, int k) { return gap == k; }\n",
                    "N1"));
}

TEST(LintN1, QuietOnIntegerAndPointerComparison) {
  EXPECT_FALSE(fired("src/x.cpp", "bool b = n == 0;\n", "N1"));
  EXPECT_FALSE(fired("src/x.cpp", "bool b = ptr != nullptr;\n", "N1"));
  EXPECT_FALSE(fired("src/x.cpp", "bool b = it == v.end();\n", "N1"));
}

TEST(LintN1, QuietInsideComparatorHeader) {
  EXPECT_FALSE(
      fired("src/util/fpcmp.h", "bool eq(double a, double b) { return a == b; }\n",
            "N1"));
}

// ------------------------------------------------------------------ N2 ----

TEST(LintN2, FiresOnSilentCatchAllInNumericalModule) {
  const std::string src =
      "void f() { try { g(); } catch (...) { } }\n";
  EXPECT_TRUE(fired("src/core/x.cpp", src, "N2"));
  EXPECT_TRUE(fired("src/linalg/x.cpp", src, "N2"));
  EXPECT_TRUE(fired("src/qp/x.cpp", src, "N2"));
}

TEST(LintN2, QuietWhenHandled) {
  EXPECT_FALSE(fired("src/core/x.cpp",
                     "void f() { try { g(); } catch (...) {\n"
                     "  log_error(\"solve failed\"); } }\n",
                     "N2"));
  EXPECT_FALSE(fired("src/core/x.cpp",
                     "void f() { try { g(); } catch (...) {\n"
                     "  status = Status::Failed; } }\n",
                     "N2"));
  EXPECT_FALSE(fired("src/core/x.cpp",
                     "void f() { try { g(); } catch (...) { throw; } }\n",
                     "N2"));
}

TEST(LintN2, QuietOutsideNumericalModules) {
  EXPECT_FALSE(fired("src/util/x.cpp",
                     "void f() { try { g(); } catch (...) { } }\n", "N2"));
}

// ------------------------------------------------------------------ P1 ----

TEST(LintP1, FiresOnMutexAtomicThread) {
  EXPECT_TRUE(fired("src/x.cpp", "std::mutex m;\n", "P1"));
  EXPECT_TRUE(fired("src/x.cpp", "std::atomic<int> n{0};\n", "P1"));
  EXPECT_TRUE(fired("src/x.cpp", "std::thread t(work);\n", "P1"));
  EXPECT_TRUE(
      fired("src/x.cpp", "x.load(std::memory_order_acquire);\n", "P1"));
}

TEST(LintP1, QuietInsideParallelAuthority) {
  const std::string src = "std::mutex m; std::atomic<int> n{0};\n";
  EXPECT_FALSE(fired("src/util/parallel.h", src, "P1"));
  EXPECT_FALSE(fired("src/util/parallel.cpp", src, "P1"));
}

// ----------------------------------------------------------------- IO1 ----

TEST(LintIO1, FiresOnDirectWritePrimitivesInSrc) {
  EXPECT_TRUE(fired("src/x.cpp", "std::ofstream out(path);\n", "IO1"));
  EXPECT_TRUE(fired("src/x.cpp", "FILE* f = std::fopen(p, \"w\");\n", "IO1"));
  EXPECT_TRUE(fired("src/x.cpp", "std::fwrite(buf, 1, n, f);\n", "IO1"));
  EXPECT_TRUE(fired("src/x.cpp", "freopen(p, \"w\", stdout);\n", "IO1"));
}

TEST(LintIO1, QuietOnReadsAndInsideWriteAuthority) {
  EXPECT_FALSE(fired("src/x.cpp", "std::ifstream in(path);\n", "IO1"));
  EXPECT_FALSE(fired("src/x.cpp", "std::fread(buf, 1, n, f);\n", "IO1"));
  EXPECT_FALSE(
      fired("src/util/atomic_file.cpp", "int fd = ::open(tmp, f);\n", "IO1"));
}

TEST(LintIO1, QuietOutsideSrcTree) {
  // Apps/tests/benches may stream directly (stderr diagnostics, fixtures);
  // the crash-safety contract binds the library.
  EXPECT_FALSE(fired("apps/x.cpp", "std::ofstream out(path);\n", "IO1"));
  EXPECT_FALSE(fired("tests/x.cpp", "std::fopen(p, \"w\");\n", "IO1"));
}

TEST(LintIO1, QuietOnTokenInCommentOrString) {
  EXPECT_FALSE(fired("src/x.cpp", "// ofstream is banned here\n", "IO1"));
  EXPECT_FALSE(
      fired("src/x.cpp", "const char* s = \"fopen\";\n", "IO1"));
}

// --------------------------------------------------------- suppressions ----

TEST(LintSuppress, SameLineAllowWithJustification) {
  const auto rules = rules_fired(
      "src/x.cpp",
      "std::mutex m;  // complx-lint: allow(P1): guards non-numeric cache\n");
  EXPECT_TRUE(rules.empty());
}

TEST(LintSuppress, LineAboveAllow) {
  const auto rules = rules_fired(
      "src/x.cpp",
      "// complx-lint: allow(D1): dump order irrelevant, debug-only path\n"
      "std::unordered_map<int,int> m;\n"
      "void f() { for (auto& kv : m) (void)kv; }\n");
  // Suppression covers the declaration line, not the iteration two lines
  // below — the loop must still be reported.
  EXPECT_EQ(rules, std::vector<std::string>{"D1"});
}

TEST(LintSuppress, MultiLineCommentBlockReachesCode) {
  const auto rules = rules_fired(
      "src/x.cpp",
      "// complx-lint: allow(P1): the SIGINT flag must be async-signal-safe\n"
      "// and a mutex would be undefined behaviour inside the handler.\n"
      "std::atomic<bool> stop{false};\n");
  EXPECT_TRUE(rules.empty());
}

TEST(LintSuppress, OnlyNamedRuleIsSuppressed) {
  EXPECT_TRUE(fired(
      "src/x.cpp",
      "std::mutex m;  // complx-lint: allow(D1): wrong rule id on purpose\n",
      "P1"));
}

TEST(LintSuppress, BareAllowIsItselfAFinding) {
  const auto rules = rules_fired(
      "src/x.cpp", "std::mutex m;  // complx-lint: allow(P1)\n");
  EXPECT_EQ(rules, std::vector<std::string>{"SUPP"});
}

TEST(LintSuppress, MultipleRulesInOneAllow) {
  const auto rules = rules_fired(
      "src/x.cpp",
      "// complx-lint: allow(P1, N1): test double for the scheduler seam\n"
      "bool f(std::atomic<double>& x, double y) { return x == y; }\n");
  EXPECT_TRUE(rules.empty());
}

// ------------------------------------------------------------ reporting ----

TEST(LintReport, FindingsCarryFileLineAndSortedOrder) {
  const auto findings = lint_source("src/x.cpp",
                                    "std::mutex a;\n"
                                    "\n"
                                    "std::mutex b;\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/x.cpp");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 3u);
  EXPECT_EQ(findings[0].rule, "P1");
  EXPECT_FALSE(findings[0].message.empty());
}

TEST(LintReport, RuleCatalogCoversAllRules) {
  std::vector<std::string> ids;
  for (const auto& r : rule_catalog()) ids.push_back(r.id);
  for (const char* want : {"D1", "D2", "IO1", "N1", "N2", "P1", "SUPP"})
    EXPECT_NE(std::find(ids.begin(), ids.end(), want), ids.end()) << want;
}

TEST(LintReport, UnreadableFileYieldsIoFinding) {
  const auto findings = lint_file("/nonexistent_dir_xyz/f.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "IO");
}

}  // namespace
}  // namespace complx::lint
