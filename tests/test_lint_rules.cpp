// Fixture tests for complx-lint: every rule must fire on a minimal
// offending snippet, stay quiet on the compliant rewrite, and honour the
// allow(...) suppression syntax (which itself demands a justification).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.h"

namespace complx::lint {
namespace {

std::vector<std::string> rules_fired(const std::string& path,
                                     const std::string& src) {
  std::vector<std::string> out;
  for (const Finding& f : lint_source(path, src)) out.push_back(f.rule);
  return out;
}

bool fired(const std::string& path, const std::string& src,
           const std::string& rule) {
  const auto rules = rules_fired(path, src);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// ------------------------------------------------------------------ D1 ----

TEST(LintD1, FiresOnRangeForOverUnorderedMap) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "#include <unordered_map>\n"
                    "double f(const std::unordered_map<int,double>& m) {\n"
                    "  double s = 0.0;\n"
                    "  for (const auto& [k, v] : m) s += v;\n"
                    "  return s;\n"
                    "}\n",
                    "D1"));
}

TEST(LintD1, FiresOnExplicitBeginIterator) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "std::unordered_set<int> seen;\n"
                    "void g() { auto it = seen.begin(); (void)it; }\n",
                    "D1"));
}

TEST(LintD1, FiresOnMemberContainerInRangeFor) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "struct S { std::unordered_map<int,int> index_; };\n"
                    "void h(S& s) { for (auto& kv : s.index_) (void)kv; }\n",
                    "D1"));
}

TEST(LintD1, QuietOnLookupOnlyUse) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "std::unordered_map<std::string,int> idx;\n"
                     "int find(const std::string& k) {\n"
                     "  auto it = idx.find(k);\n"
                     "  return it == idx.end() ? -1 : it->second;\n"
                     "}\n",
                     "D1"));
}

TEST(LintD1, QuietOnOrderedContainers) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "std::map<int,int> m;\n"
                     "void f() { for (auto& kv : m) (void)kv; }\n",
                     "D1"));
}

// ------------------------------------------------------------------ D2 ----

TEST(LintD2, FiresOnRandAndSrand) {
  EXPECT_TRUE(fired("src/x.cpp", "int f() { return std::rand(); }\n", "D2"));
  EXPECT_TRUE(fired("src/x.cpp", "void g() { srand(42); }\n", "D2"));
}

TEST(LintD2, FiresOnRandomDeviceOutsideRngHeader) {
  const std::string src = "std::random_device rd;\n";
  EXPECT_TRUE(fired("src/x.cpp", src, "D2"));
  EXPECT_FALSE(fired("src/util/rng.h", src, "D2"));  // the seeded authority
}

TEST(LintD2, FiresOnWallClockAndThreadId) {
  EXPECT_TRUE(fired("src/x.cpp", "long t = time(nullptr);\n", "D2"));
  EXPECT_TRUE(
      fired("src/x.cpp",
            "auto id = std::this_thread::get_id();\n", "D2"));
}

TEST(LintD2, QuietOnMemberNamedTimeAndComments) {
  EXPECT_FALSE(fired("src/x.cpp", "double s = timer.time();\n", "D2"));
  EXPECT_FALSE(fired("src/x.cpp", "// never call rand() here\n", "D2"));
  EXPECT_FALSE(fired("src/x.cpp", "const char* s = \"rand(\";\n", "D2"));
}

// ------------------------------------------------------------------ N1 ----

TEST(LintN1, FiresOnFloatLiteralComparison) {
  EXPECT_TRUE(fired("src/x.cpp", "bool b = x == 0.0;\n", "N1"));
  EXPECT_TRUE(fired("src/x.cpp", "bool b = 1e-9 != y;\n", "N1"));
}

TEST(LintN1, FiresOnDeclaredDoubleVariable) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "bool f(double gap, int k) { return gap == k; }\n",
                    "N1"));
}

TEST(LintN1, QuietOnIntegerAndPointerComparison) {
  EXPECT_FALSE(fired("src/x.cpp", "bool b = n == 0;\n", "N1"));
  EXPECT_FALSE(fired("src/x.cpp", "bool b = ptr != nullptr;\n", "N1"));
  EXPECT_FALSE(fired("src/x.cpp", "bool b = it == v.end();\n", "N1"));
}

TEST(LintN1, QuietInsideComparatorHeader) {
  EXPECT_FALSE(
      fired("src/util/fpcmp.h", "bool eq(double a, double b) { return a == b; }\n",
            "N1"));
}

// ------------------------------------------------------------------ N2 ----

TEST(LintN2, FiresOnSilentCatchAllInNumericalModule) {
  const std::string src =
      "void f() { try { g(); } catch (...) { } }\n";
  EXPECT_TRUE(fired("src/core/x.cpp", src, "N2"));
  EXPECT_TRUE(fired("src/linalg/x.cpp", src, "N2"));
  EXPECT_TRUE(fired("src/qp/x.cpp", src, "N2"));
}

TEST(LintN2, QuietWhenHandled) {
  EXPECT_FALSE(fired("src/core/x.cpp",
                     "void f() { try { g(); } catch (...) {\n"
                     "  log_error(\"solve failed\"); } }\n",
                     "N2"));
  EXPECT_FALSE(fired("src/core/x.cpp",
                     "void f() { try { g(); } catch (...) {\n"
                     "  status = Status::Failed; } }\n",
                     "N2"));
  EXPECT_FALSE(fired("src/core/x.cpp",
                     "void f() { try { g(); } catch (...) { throw; } }\n",
                     "N2"));
}

TEST(LintN2, QuietOutsideNumericalModules) {
  EXPECT_FALSE(fired("src/util/x.cpp",
                     "void f() { try { g(); } catch (...) { } }\n", "N2"));
}

// ------------------------------------------------------------------ P1 ----

TEST(LintP1, FiresOnMutexAtomicThread) {
  EXPECT_TRUE(fired("src/x.cpp", "std::mutex m;\n", "P1"));
  EXPECT_TRUE(fired("src/x.cpp", "std::atomic<int> n{0};\n", "P1"));
  EXPECT_TRUE(fired("src/x.cpp", "std::thread t(work);\n", "P1"));
  EXPECT_TRUE(
      fired("src/x.cpp", "x.load(std::memory_order_acquire);\n", "P1"));
}

TEST(LintP1, QuietInsideParallelAuthority) {
  const std::string src = "std::mutex m; std::atomic<int> n{0};\n";
  EXPECT_FALSE(fired("src/util/parallel.h", src, "P1"));
  EXPECT_FALSE(fired("src/util/parallel.cpp", src, "P1"));
}

// ----------------------------------------------------------------- IO1 ----

TEST(LintIO1, FiresOnDirectWritePrimitivesInSrc) {
  EXPECT_TRUE(fired("src/x.cpp", "std::ofstream out(path);\n", "IO1"));
  EXPECT_TRUE(fired("src/x.cpp", "FILE* f = std::fopen(p, \"w\");\n", "IO1"));
  EXPECT_TRUE(fired("src/x.cpp", "std::fwrite(buf, 1, n, f);\n", "IO1"));
  EXPECT_TRUE(fired("src/x.cpp", "freopen(p, \"w\", stdout);\n", "IO1"));
}

TEST(LintIO1, QuietOnReadsAndInsideWriteAuthority) {
  EXPECT_FALSE(fired("src/x.cpp", "std::ifstream in(path);\n", "IO1"));
  EXPECT_FALSE(fired("src/x.cpp", "std::fread(buf, 1, n, f);\n", "IO1"));
  EXPECT_FALSE(
      fired("src/util/atomic_file.cpp", "int fd = ::open(tmp, f);\n", "IO1"));
}

TEST(LintIO1, QuietOutsideSrcTree) {
  // Apps/tests/benches may stream directly (stderr diagnostics, fixtures);
  // the crash-safety contract binds the library.
  EXPECT_FALSE(fired("apps/x.cpp", "std::ofstream out(path);\n", "IO1"));
  EXPECT_FALSE(fired("tests/x.cpp", "std::fopen(p, \"w\");\n", "IO1"));
}

TEST(LintIO1, QuietOnTokenInCommentOrString) {
  EXPECT_FALSE(fired("src/x.cpp", "// ofstream is banned here\n", "IO1"));
  EXPECT_FALSE(
      fired("src/x.cpp", "const char* s = \"fopen\";\n", "IO1"));
}

// ------------------------------------------------------------------ S1 ----

TEST(LintS1, FiresOnNameAccessInHotLayers) {
  for (const char* dir : {"src/core/x.cpp", "src/linalg/x.cpp",
                          "src/qp/x.cpp", "src/density/x.cpp",
                          "src/projection/x.cpp"}) {
    EXPECT_TRUE(fired(dir, "auto n = nl.cell_name(id);\n", "S1")) << dir;
  }
  EXPECT_TRUE(fired("src/qp/x.cpp", "auto n = nl.net_name(e);\n", "S1"));
  EXPECT_TRUE(fired("src/core/x.cpp", "nl.find_cell(\"a\");\n", "S1"));
  EXPECT_TRUE(fired("src/density/x.h", "NamePool pool;\n", "S1"));
}

TEST(LintS1, QuietAtTheIoAndAppBoundary) {
  const std::string src = "auto n = nl.cell_name(id);\n";
  EXPECT_FALSE(fired("src/io/svg.cpp", src, "S1"));
  EXPECT_FALSE(fired("src/legal/tetris.cpp", src, "S1"));
  EXPECT_FALSE(fired("src/bookshelf/writer.cpp", src, "S1"));
  EXPECT_FALSE(fired("src/netlist/netlist.cpp", src, "S1"));
  EXPECT_FALSE(fired("apps/complx_eval.cpp", src, "S1"));
}

TEST(LintS1, QuietOnTokenInCommentOrString) {
  EXPECT_FALSE(
      fired("src/core/x.cpp", "// cell_name is banned here\n", "S1"));
  EXPECT_FALSE(
      fired("src/qp/x.cpp", "const char* s = \"find_cell\";\n", "S1"));
}

TEST(LintS1, SuppressionWithJustificationHolds) {
  EXPECT_FALSE(fired("src/core/x.cpp",
                     "// complx-lint: allow(S1): debug dump behind a flag\n"
                     "auto n = nl.cell_name(id);\n",
                     "S1"));
}

// ------------------------------------------------------------------ P2 ----

TEST(LintP2, FiresOnUnannotatedMutexInSrc) {
  EXPECT_TRUE(fired("src/foo/cache.h",
                    "class Cache {\n"
                    "  Mutex mu_;\n"
                    "  int hits_ = 0;\n"
                    "};\n",
                    "P2"));
}

TEST(LintP2, QuietWhenNamedInAnnotationArgument) {
  EXPECT_FALSE(fired("src/foo/cache.h",
                     "class Cache {\n"
                     "  Mutex mu_;\n"
                     "  int hits_ COMPLX_GUARDED_BY(mu_) = 0;\n"
                     "};\n",
                     "P2"));
}

TEST(LintP2, QuietInsideCapabilityClass) {
  // The annotated wrapper type itself holds a raw std::mutex; the
  // COMPLX_CAPABILITY annotation on the enclosing class is the discipline.
  EXPECT_FALSE(fired("src/util/parallel.h",
                     "class COMPLX_CAPABILITY(\"mutex\") Mutex {\n"
                     " public:\n"
                     "  void lock();\n"
                     " private:\n"
                     "  std::mutex m_;\n"
                     "};\n",
                     "P2"));
}

TEST(LintP2, QuietOutsideSrcTree) {
  EXPECT_FALSE(fired("tools/x.cpp", "Mutex mu_;\n", "P2"));
  EXPECT_FALSE(fired("tests/x.cpp", "Mutex mu_;\n", "P2"));
}

// --------------------------------------------------------- suppressions ----

TEST(LintSuppress, SameLineAllowWithJustification) {
  const auto rules = rules_fired(
      "src/x.cpp",
      "std::atomic<int> n{0};  // complx-lint: allow(P1): counter for a "
      "non-numeric cache\n");
  EXPECT_TRUE(rules.empty());
}

TEST(LintSuppress, LineAboveAllow) {
  const auto rules = rules_fired(
      "src/x.cpp",
      "// complx-lint: allow(D1): dump order irrelevant, debug-only path\n"
      "std::unordered_map<int,int> m;\n"
      "void f() { for (auto& kv : m) (void)kv; }\n");
  // Suppression covers the declaration line, not the iteration two lines
  // below — the loop must still be reported.
  EXPECT_EQ(rules, std::vector<std::string>{"D1"});
}

TEST(LintSuppress, MultiLineCommentBlockReachesCode) {
  const auto rules = rules_fired(
      "src/x.cpp",
      "// complx-lint: allow(P1): the SIGINT flag must be async-signal-safe\n"
      "// and a mutex would be undefined behaviour inside the handler.\n"
      "std::atomic<bool> stop{false};\n");
  EXPECT_TRUE(rules.empty());
}

TEST(LintSuppress, OnlyNamedRuleIsSuppressed) {
  EXPECT_TRUE(fired(
      "src/x.cpp",
      "std::mutex m;  // complx-lint: allow(D1): wrong rule id on purpose\n",
      "P1"));
}

TEST(LintSuppress, BareAllowIsItselfAFinding) {
  const auto rules = rules_fired(
      "src/x.cpp", "std::atomic<int> n{0};  // complx-lint: allow(P1)\n");
  EXPECT_EQ(rules, std::vector<std::string>{"SUPP"});
}

TEST(LintSuppress, AllowWithoutRuleListIsItselfAFinding) {
  // A justification alone does not make a suppression: with no rule ids the
  // directive suppresses nothing and is reported as SUPP, so the original
  // finding fires too.
  const auto rules = rules_fired(
      "src/x.cpp",
      "std::atomic<int> n{0};  // complx-lint: allow(): counters are fine\n");
  EXPECT_EQ(rules, (std::vector<std::string>{"P1", "SUPP"}));
}

TEST(LintSuppress, BlockCommentAllowWithJustification) {
  const auto rules = rules_fired(
      "src/x.cpp",
      "std::atomic<int> n{0};  /* complx-lint: allow(P1): counter for a "
      "non-numeric cache */\n");
  EXPECT_TRUE(rules.empty());
}

TEST(LintSuppress, MultipleRulesInOneAllow) {
  const auto rules = rules_fired(
      "src/x.cpp",
      "// complx-lint: allow(P1, N1): test double for the scheduler seam\n"
      "bool f(std::atomic<double>& x, double y) { return x == y; }\n");
  EXPECT_TRUE(rules.empty());
}

// ------------------------------------------------------------ reporting ----

TEST(LintReport, FindingsCarryFileLineAndSortedOrder) {
  const auto findings = lint_source("src/x.cpp",
                                    "std::atomic<int> a{0};\n"
                                    "\n"
                                    "std::atomic<int> b{0};\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/x.cpp");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 3u);
  EXPECT_EQ(findings[0].rule, "P1");
  EXPECT_FALSE(findings[0].message.empty());
}

TEST(LintReport, RuleCatalogIsExactlyTheRuleSet) {
  // The catalog is the single source of truth: --list-rules prints it, the
  // SARIF rules array is generated from it, and docs/STATIC_ANALYSIS.md
  // documents it. Every id the analyzer can emit must be present, and
  // nothing else.
  std::vector<std::string> ids;
  for (const auto& r : rule_catalog()) {
    ids.push_back(r.id);
    EXPECT_FALSE(std::string(r.summary).empty()) << r.id;
  }
  const std::vector<std::string> want = {"A1", "A2", "D1",  "D2",   "IO1",
                                         "N1", "N2", "P1",  "P2",   "S1",
                                         "T1", "SUPP", "IO"};
  auto sorted_ids = ids;
  auto sorted_want = want;
  std::sort(sorted_ids.begin(), sorted_ids.end());
  std::sort(sorted_want.begin(), sorted_want.end());
  EXPECT_EQ(sorted_ids, sorted_want);
}

TEST(LintReport, UnreadableFileYieldsIoFinding) {
  const auto findings = lint_file("/nonexistent_dir_xyz/f.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "IO");
}

// ---------------------------------------------------- cross-file passes ----

// A three-layer miniature of tools/complx_lint/layers.toml.
const char* const kLayers =
    "[[layer]]\n"
    "name = \"util\"\n"
    "rank = 1\n"
    "dirs = [\"src/util\"]\n"
    "\n"
    "[[layer]]\n"
    "name = \"model\"\n"
    "rank = 2\n"
    "dirs = [\"src/netlist\"]\n"
    "\n"
    "[[layer]]\n"
    "name = \"core\"\n"
    "rank = 3\n"
    "dirs = [\"src/core\"]\n";

std::vector<Finding> analyze(const std::vector<SourceFile>& files) {
  AnalyzeOptions opts;
  opts.layers_toml = kLayers;
  return analyze_sources(files, opts);
}

bool any_rule(const std::vector<Finding>& findings, const std::string& rule,
              const std::string& file = "") {
  for (const Finding& f : findings)
    if (f.rule == rule && (file.empty() || f.file == file)) return true;
  return false;
}

TEST(LintA1, FiresOnUpwardInclude) {
  const auto findings = analyze(
      {{"src/util/geom.h", "#include \"netlist/netlist.h\"\n"}});
  ASSERT_TRUE(any_rule(findings, "A1", "src/util/geom.h"));
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintA1, QuietOnDownwardAndSameLayerIncludes) {
  const auto findings = analyze(
      {{"src/core/placer.h",
        "#include \"util/log.h\"\n#include \"core/health.h\"\n"},
       {"src/netlist/netlist.h", "#include \"util/log.h\"\n"}});
  EXPECT_FALSE(any_rule(findings, "A1"));
}

TEST(LintA1, QuietOnUnmappedFiles) {
  // Tests and tools sit outside the declared DAG: A1 does not constrain
  // them (A2 still does).
  const auto findings = analyze(
      {{"tests/test_x.cpp", "#include \"core/placer.h\"\n"}});
  EXPECT_FALSE(any_rule(findings, "A1"));
}

TEST(LintA1, LineAboveAllowSuppresses) {
  const auto findings = analyze(
      {{"src/util/geom.h",
        "// complx-lint: allow(A1): transitional shim, tracked for removal\n"
        "#include \"netlist/netlist.h\"\n"}});
  EXPECT_FALSE(any_rule(findings, "A1"));
}

TEST(LintA2, FiresOnIncludeCycle) {
  const auto findings = analyze(
      {{"src/util/a.h", "#include \"util/b.h\"\n"},
       {"src/util/b.h", "#include \"util/a.h\"\n"}});
  EXPECT_TRUE(any_rule(findings, "A2"));
}

TEST(LintA2, QuietOnAcyclicIncludes) {
  const auto findings = analyze(
      {{"src/util/a.h", "#include \"util/b.h\"\n"},
       {"src/util/b.h", "int b();\n"}});
  EXPECT_FALSE(any_rule(findings, "A2"));
}

TEST(LintT1, CatchesLaunderedEntropyAcrossFiles) {
  // The laundering scenario D2 cannot see: the entropy call sits in util/
  // (D2 fires there, on that file), a second util/ function wraps it, and
  // a core entry function calls the wrapper. Per-file scanning of the core
  // file shows nothing; the taint pass must walk the chain.
  const std::vector<SourceFile> files = {
      {"src/util/noise.cpp",
       "double noise() { return static_cast<double>(std::rand()); }\n"},
      {"src/util/wrap.cpp", "double wrap() { return noise() * 0.5; }\n"},
      {"src/core/solver.cpp", "double step() { return wrap() + 1.0; }\n"}};
  const auto findings = analyze(files);
  EXPECT_TRUE(any_rule(findings, "T1", "src/core/solver.cpp"));
  // D2 fires where the source is, never on the laundered entry point.
  EXPECT_TRUE(any_rule(findings, "D2", "src/util/noise.cpp"));
  EXPECT_FALSE(any_rule(findings, "D2", "src/core/solver.cpp"));
}

TEST(LintT1, AllowD2SourceStillSeedsTaint) {
  // A locally justified allow(D2) silences the per-file finding but must
  // not launder the taint: core still may not reach the source.
  const auto findings = analyze(
      {{"src/util/noise.cpp",
        "// complx-lint: allow(D2): jitter probe, never in solver paths\n"
        "double noise() { return static_cast<double>(std::rand()); }\n"},
       {"src/core/solver.cpp", "double step() { return noise(); }\n"}});
  EXPECT_FALSE(any_rule(findings, "D2"));
  EXPECT_TRUE(any_rule(findings, "T1", "src/core/solver.cpp"));
}

TEST(LintT1, TaintSourceAnnotationSeeds) {
  // `// complx-lint: taint-source` marks functions whose nondeterminism a
  // token scan cannot recognise (e.g. wall-clock reads behind a syscall
  // wrapper).
  const auto findings = analyze(
      {{"src/util/sys.cpp",
        "// complx-lint: taint-source\n"
        "double wall_seconds() { return os_clock_read(); }\n"},
       {"src/core/solver.cpp",
        "double budget() { return wall_seconds() * 2.0; }\n"}});
  EXPECT_TRUE(any_rule(findings, "T1", "src/core/solver.cpp"));
}

TEST(LintT1, QuietOutsideEntryScopes) {
  // Only core/linalg/qp/projection entry points are constrained; io/ or
  // apps/ reaching a source is not a T1 violation.
  const auto findings = analyze(
      {{"src/util/noise.cpp",
        "double noise() { return static_cast<double>(std::rand()); }\n"},
       {"src/io/report.cpp", "double stamp() { return noise(); }\n"}});
  EXPECT_FALSE(any_rule(findings, "T1"));
}

TEST(LintT1, DirectSourceIsD2NotT1) {
  // A direct call to a source inside core is D2's finding; T1 only reports
  // reachability through at least one intermediate call.
  const auto findings =
      analyze({{"src/core/solver.cpp",
                "double step() { return static_cast<double>(std::rand()); }\n"}});
  EXPECT_TRUE(any_rule(findings, "D2", "src/core/solver.cpp"));
  EXPECT_FALSE(any_rule(findings, "T1"));
}

TEST(LintT1, LineAboveAllowSuppressesEntryFunction) {
  const auto findings = analyze(
      {{"src/util/noise.cpp",
        "double noise() { return static_cast<double>(std::rand()); }\n"},
       {"src/core/solver.cpp",
        "// complx-lint: allow(T1): perf probe, stripped from release builds\n"
        "double step() { return noise(); }\n"}});
  EXPECT_FALSE(any_rule(findings, "T1"));
}

TEST(LintAnalyze, MalformedLayersTomlYieldsIoFinding) {
  AnalyzeOptions opts;
  opts.layers_toml = "[[layer]]\nname = \"util\"\nrank = banana\n";
  const auto findings =
      analyze_sources({{"src/util/a.h", "int a();\n"}}, opts);
  EXPECT_TRUE(any_rule(findings, "IO"));
}

}  // namespace
}  // namespace complx::lint
