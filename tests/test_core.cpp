#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/placer.h"
#include "helpers.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

ComplxConfig fast_config() {
  ComplxConfig cfg;
  cfg.max_iterations = 60;
  cfg.min_iterations = 5;
  return cfg;
}

TEST(ComplxPlacer, ConvergesOnSmallDesign) {
  Netlist nl = complx::testing::small_circuit(71, 1200);
  ComplxPlacer placer(nl, fast_config());
  const PlaceResult res = placer.place();
  EXPECT_GT(res.iterations, 3);
  EXPECT_LT(res.final_overflow, 0.25);
  EXPECT_FALSE(res.trace.empty());
}

TEST(ComplxPlacer, WeakDualityHoldsAlongTrace) {
  // Formula 7: Φ(iterate) <= Φ(anchors) at every iteration (the anchors are
  // C-feasible-ish, the iterate minimizes the relaxation).
  Netlist nl = complx::testing::small_circuit(72, 1000);
  ComplxPlacer placer(nl, fast_config());
  const PlaceResult res = placer.place();
  size_t holds = 0;
  for (const IterationStats& st : res.trace)
    if (st.phi_lower <= st.phi_upper * 1.02) ++holds;
  // Allow rare early-iteration exceptions; the bound must hold essentially
  // always (the paper's Figure-1-style behavior).
  EXPECT_GE(holds * 10, res.trace.size() * 9);
}

TEST(ComplxPlacer, LambdaIsMonotoneNonDecreasing) {
  Netlist nl = complx::testing::small_circuit(73, 800);
  ComplxPlacer placer(nl, fast_config());
  const PlaceResult res = placer.place();
  for (size_t k = 1; k < res.trace.size(); ++k)
    EXPECT_GE(res.trace[k].lambda, res.trace[k - 1].lambda * (1 - 1e-12));
}

TEST(ComplxPlacer, PiDecreasesOverall) {
  Netlist nl = complx::testing::small_circuit(74, 1000);
  ComplxPlacer placer(nl, fast_config());
  const PlaceResult res = placer.place();
  ASSERT_GE(res.trace.size(), 5u);
  EXPECT_LT(res.trace.back().pi, 0.5 * res.trace.front().pi);
}

TEST(ComplxPlacer, OverflowDecreases) {
  Netlist nl = complx::testing::small_circuit(75, 1000);
  ComplxPlacer placer(nl, fast_config());
  const PlaceResult res = placer.place();
  EXPECT_LT(res.trace.back().overflow_ratio,
            0.5 * res.trace.front().overflow_ratio + 0.05);
}

TEST(ComplxPlacer, AnchorsBeatRandomScatterHpwl) {
  Netlist nl = complx::testing::small_circuit(76, 1200);
  const double scatter_hpwl = hpwl(nl, nl.snapshot());
  ComplxPlacer placer(nl, fast_config());
  const PlaceResult res = placer.place();
  EXPECT_LT(hpwl(nl, res.anchors), 0.7 * scatter_hpwl);
}

TEST(ComplxPlacer, SimplModeRunsAndConverges) {
  Netlist nl = complx::testing::small_circuit(77, 1000);
  ComplxConfig cfg = ComplxConfig::simpl_mode();
  cfg.max_iterations = 80;
  ComplxPlacer placer(nl, cfg);
  const PlaceResult res = placer.place();
  EXPECT_LT(res.final_overflow, 0.25);
}

TEST(ComplxPlacer, FinalLambdaStaysSmall) {
  // Section S3: final λ values stay O(1) — they measure the per-cell force
  // balance, not problem size. (Our 2-pin-heavy synthetic nets put the
  // balance near 2; the paper's 4-pin-average contest nets sit below 1.)
  Netlist nl = complx::testing::small_circuit(78, 1500);
  ComplxPlacer placer(nl, fast_config());
  const PlaceResult res = placer.place();
  EXPECT_LT(res.final_lambda, 5.0);
  EXPECT_GT(res.final_lambda, 0.0);
}

TEST(ComplxPlacer, SelfConsistencyMostlyHolds) {
  // Section S2: the approximate projection is self-consistent in the vast
  // majority of checks, with inconsistencies concentrated in the early
  // (grid-refinement) iterations.
  Netlist nl = complx::testing::small_circuit(79, 1500);
  ComplxPlacer placer(nl, fast_config());
  const PlaceResult res = placer.place();
  ASSERT_GT(res.self_consistency.checked, 5u);
  ASSERT_GT(res.self_consistency.late_checked, 3u);
  EXPECT_LT(res.self_consistency.late_inconsistent_fraction(), 0.40);
}

TEST(ComplxPlacer, HandlesMovableMacrosAndDensityTarget) {
  Netlist nl =
      complx::testing::small_circuit(80, 1200, /*movable_macros=*/3,
                                     /*target_density=*/0.8);
  ComplxConfig cfg = fast_config();
  ComplxPlacer placer(nl, cfg);
  const PlaceResult res = placer.place();
  EXPECT_LT(res.final_overflow, 0.35);
  // Macros ended up inside the core.
  for (CellId id : nl.movable_cells()) {
    if (!nl.cell(id).is_macro()) continue;
    EXPECT_TRUE(nl.core().contains(
        Point{res.anchors.x[id], res.anchors.y[id]}));
  }
}

TEST(ComplxPlacer, CriticalityVectorValidated) {
  Netlist nl = complx::testing::small_circuit(81, 500);
  ComplxPlacer placer(nl, fast_config());
  EXPECT_THROW(placer.set_cell_criticality(Vec(3, 1.0)),
               std::invalid_argument);
  placer.set_cell_criticality(Vec(nl.num_cells(), 1.0));  // ok
}

TEST(ComplxPlacer, PostProjectionHookRuns) {
  Netlist nl = complx::testing::small_circuit(82, 500);
  ComplxPlacer placer(nl, fast_config());
  int calls = 0;
  placer.set_post_projection_hook([&](Placement&) { ++calls; });
  placer.place();
  EXPECT_GT(calls, 3);
}

TEST(ComplxPlacer, TraceCsvRoundTrips) {
  Netlist nl = complx::testing::small_circuit(83, 500);
  ComplxConfig cfg = fast_config();
  cfg.max_iterations = 15;
  ComplxPlacer placer(nl, cfg);
  const PlaceResult res = placer.place();
  const std::string path =
      (std::filesystem::temp_directory_path() / "complx_trace.csv").string();
  write_trace_csv(path, res.trace);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("lambda"), std::string::npos);
  size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, res.trace.size());
  std::filesystem::remove(path);
}

TEST(ComplxPlacer, GapCriterionStopsEarlierThanOverflowOnly) {
  Netlist nl = complx::testing::small_circuit(84, 1200);
  ComplxConfig with_gap = fast_config();
  with_gap.use_gap_criterion = true;
  ComplxConfig no_gap = fast_config();
  no_gap.use_gap_criterion = false;
  const PlaceResult a = ComplxPlacer(nl, with_gap).place();
  const PlaceResult b = ComplxPlacer(nl, no_gap).place();
  EXPECT_LE(a.iterations, b.iterations + 1);
}

TEST(ComplxPlacer, LseModelInstantiationWorks) {
  // "Any interconnect model plugs in": run with the log-sum-exp Φ.
  Netlist nl = complx::testing::small_circuit(85, 400);
  ComplxConfig cfg = fast_config();
  cfg.use_lse = true;
  cfg.max_iterations = 25;
  ComplxPlacer placer(nl, cfg);
  const PlaceResult res = placer.place();
  const double scatter = hpwl(nl, nl.snapshot());
  EXPECT_LT(hpwl(nl, res.anchors), scatter);
  EXPECT_LT(res.final_overflow, 0.5);
}

}  // namespace
}  // namespace complx
