#include <gtest/gtest.h>

#include "helpers.h"
#include "projection/shredder.h"

namespace complx {
namespace {

Netlist with_macro(double mw, double mh, double row_h = 12.0) {
  Netlist nl;
  Cell m;
  m.width = mw;
  m.height = mh;
  m.kind = CellKind::MovableMacro;
  nl.add_cell(m, "mac");
  Cell d;
  d.width = 2;
  d.height = row_h;
  nl.add_cell(d, "d");
  nl.set_core({0, 0, 1000, 1000});
  std::vector<Row> rows;
  for (double y = 0; y + row_h <= 1000; y += row_h)
    rows.push_back({y, row_h, 0, 1000, 1.0});
  nl.set_rows(rows);
  nl.finalize();
  return nl;
}

TEST(Shredder, TileCountMatchesMacroSize) {
  Netlist nl = with_macro(96, 48);  // 96/24 x 48/24 = 4 x 2 tiles
  ShredderOptions opts;
  opts.gamma = 1.0;
  MacroShredder sh(nl, opts);
  const auto shreds = sh.shred(0, 100, 100);
  EXPECT_EQ(shreds.size(), 8u);
}

TEST(Shredder, ShredAreaEqualsGammaTimesMacroArea) {
  Netlist nl = with_macro(96, 96);
  for (double gamma : {1.0, 0.8, 0.5}) {
    ShredderOptions opts;
    opts.gamma = gamma;
    MacroShredder sh(nl, opts);
    double area = 0.0;
    for (const Mote& m : sh.shred(0, 200, 200)) area += m.area();
    EXPECT_NEAR(area, gamma * 96 * 96, 1e-6) << "gamma=" << gamma;
  }
}

TEST(Shredder, ShredsCoverTheMacroUniformly) {
  Netlist nl = with_macro(96, 48);
  MacroShredder sh(nl, {});
  const double cx = 100, cy = 60;
  const auto shreds = sh.shred(0, cx, cy);
  // Bounding box of shred centers is inset by half a tile on each side.
  double xl = 1e18, xh = -1e18, yl = 1e18, yh = -1e18;
  for (const Mote& m : shreds) {
    EXPECT_EQ(m.owner, 0u);
    xl = std::min(xl, m.x);
    xh = std::max(xh, m.x);
    yl = std::min(yl, m.y);
    yh = std::max(yh, m.y);
  }
  EXPECT_NEAR((xl + xh) / 2.0, cx, 1e-9);
  EXPECT_NEAR((yl + yh) / 2.0, cy, 1e-9);
  EXPECT_NEAR(xh - xl, 96 - 24, 1e-9);  // width minus one tile
  EXPECT_NEAR(yh - yl, 48 - 24, 1e-9);
}

TEST(Shredder, TinyMacroGetsAtLeastOneShred) {
  Netlist nl = with_macro(5, 5);
  MacroShredder sh(nl, {});
  const auto shreds = sh.shred(0, 10, 10);
  ASSERT_EQ(shreds.size(), 1u);
  EXPECT_NEAR(shreds[0].x, 10.0, 1e-9);
}

TEST(Shredder, MeanDisplacementAveragesShredMoves) {
  std::vector<Mote> shreds(3);
  std::vector<Point> origins(3);
  for (int i = 0; i < 3; ++i) {
    origins[static_cast<size_t>(i)] = {static_cast<double>(i), 0.0};
    shreds[static_cast<size_t>(i)].x = i + 2.0;  // all moved +2 in x
    shreds[static_cast<size_t>(i)].y = static_cast<double>(i);  // +i in y
  }
  const Point d = MacroShredder::mean_displacement(shreds, origins);
  EXPECT_DOUBLE_EQ(d.x, 2.0);
  EXPECT_DOUBLE_EQ(d.y, 1.0);
}

TEST(Shredder, MeanDisplacementEmptyIsZero) {
  const Point d = MacroShredder::mean_displacement({}, {});
  EXPECT_DOUBLE_EQ(d.x, 0.0);
  EXPECT_DOUBLE_EQ(d.y, 0.0);
}

}  // namespace
}  // namespace complx
