#include <gtest/gtest.h>

#include "helpers.h"
#include "timing/sta.h"
#include "timing/weighting.h"

namespace complx {
namespace {

/// reg0 -> a -> b -> reg1 chain with unit cells at known positions. First
/// pin of each net is the driver.
struct ChainFixture {
  Netlist nl;
  CellId reg0, a, b, reg1;
  std::vector<char> regs;

  ChainFixture() {
    auto add = [&](const std::string& name, double x) {
      Cell c;
      c.width = 2;
      c.height = 2;
      c.x = x - 1;  // center at x
      c.y = 0;
      return nl.add_cell(c, name);
    };
    reg0 = add("reg0", 0);
    a = add("a", 10);
    b = add("b", 30);
    reg1 = add("reg1", 60);
    nl.add_net("n0", 1.0, {{reg0, 0, 0}, {a, 0, 0}});
    nl.add_net("n1", 1.0, {{a, 0, 0}, {b, 0, 0}});
    nl.add_net("n2", 1.0, {{b, 0, 0}, {reg1, 0, 0}});
    nl.set_core({-10, -10, 100, 100});
    nl.finalize();
    regs.assign(nl.num_cells(), 0);
    regs[reg0] = regs[reg1] = 1;
  }
};

TEST(Sta, ChainArrivalsAccumulate) {
  ChainFixture f;
  TimingOptions opts;
  opts.cell_delay = 1.0;
  opts.wire_delay_per_unit = 0.1;
  TimingGraph tg(f.nl, f.regs, opts);
  const TimingReport rep = tg.analyze(f.nl.snapshot());
  // Distances: reg0->a = 10, a->b = 20, b->reg1 = 30 (centers, y equal).
  // arrival(a) = 1 + 1.0 = 2; arrival(b) = 2 + 1 + 2 = 5;
  // data_arrival(reg1) = 5 + 1 + 3 = 9.
  EXPECT_NEAR(rep.arrival[f.a], 2.0, 1e-9);
  EXPECT_NEAR(rep.arrival[f.b], 5.0, 1e-9);
  EXPECT_NEAR(rep.period, 1.05 * 9.0, 1e-9);
  EXPECT_EQ(rep.worst_endpoint, f.reg1);
}

TEST(Sta, SlackTightensWithPeriod) {
  ChainFixture f;
  TimingOptions opts;
  opts.wire_delay_per_unit = 0.1;
  opts.period = 8.0;  // below the 9.0 critical arrival: violation
  TimingGraph tg(f.nl, f.regs, opts);
  const TimingReport rep = tg.analyze(f.nl.snapshot());
  EXPECT_LT(rep.worst_slack, 0.0);
  EXPECT_GT(rep.violations, 0u);
  opts.period = 20.0;
  const TimingReport ok = TimingGraph(f.nl, f.regs, opts).analyze(
      f.nl.snapshot());
  EXPECT_GT(ok.worst_slack, 0.0);
  EXPECT_EQ(ok.violations, 0u);
}

TEST(Sta, MovingCellsChangesDelay) {
  ChainFixture f;
  TimingOptions opts;
  opts.wire_delay_per_unit = 0.1;
  TimingGraph tg(f.nl, f.regs, opts);
  Placement p = f.nl.snapshot();
  const double before = tg.analyze(p).period;
  // On a collinear chain the Manhattan path length is already minimal;
  // moving b OFF the reg0—reg1 line adds detour wire and must hurt.
  p.y[f.b] = 20.0;
  const double after = tg.analyze(p).period;
  EXPECT_GT(after, before);
}

TEST(Sta, CriticalPathIsTheChain) {
  ChainFixture f;
  TimingOptions opts;
  opts.wire_delay_per_unit = 0.1;
  TimingGraph tg(f.nl, f.regs, opts);
  const Placement p = f.nl.snapshot();
  const TimingReport rep = tg.analyze(p);
  const std::vector<CellId> path = tg.critical_path(p, rep);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), f.reg0);
  EXPECT_EQ(path.back(), f.reg1);
  const std::vector<NetId> nets = tg.path_nets(path);
  EXPECT_EQ(nets.size(), 3u);
}

TEST(Sta, HandlesGeneratedCircuitWithoutCrashing) {
  Netlist nl = complx::testing::small_circuit(121, 800);
  const std::vector<char> regs = choose_registers(nl, 0.1, 5);
  TimingGraph tg(nl, regs, {});
  const TimingReport rep = tg.analyze(nl.snapshot());
  EXPECT_GT(rep.period, 0.0);
  EXPECT_EQ(rep.slack.size(), nl.num_cells());
  const auto path = tg.critical_path(nl.snapshot(), rep);
  EXPECT_GE(path.size(), 1u);
}

TEST(ChooseRegisters, FractionRoughlyHonored) {
  Netlist nl = complx::testing::small_circuit(122, 2000);
  const std::vector<char> regs = choose_registers(nl, 0.25, 7);
  size_t count = 0, movable = 0;
  for (CellId id : nl.movable_cells()) {
    if (nl.cell(id).is_macro()) continue;
    ++movable;
    if (regs[id]) ++count;
  }
  const double frac =
      static_cast<double>(count) / static_cast<double>(movable);
  EXPECT_NEAR(frac, 0.25, 0.05);
  // Fixed cells are always boundaries.
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    if (!nl.cell(id).movable()) {
      EXPECT_TRUE(regs[id]);
    }
  }
}

// ------------------------------------------------------------ weighting ----

TEST(Weighting, ScaleNetWeights) {
  ChainFixture f;
  scale_net_weights(f.nl, {0, 2}, 10.0);
  EXPECT_DOUBLE_EQ(f.nl.net(0).weight, 10.0);
  EXPECT_DOUBLE_EQ(f.nl.net(1).weight, 1.0);
  EXPECT_DOUBLE_EQ(f.nl.net(2).weight, 10.0);
}

TEST(Weighting, UpdateCriticalityMultipliesViolators) {
  ChainFixture f;
  TimingOptions opts;
  opts.wire_delay_per_unit = 0.1;
  opts.period = 5.0;  // tight: violations on the chain
  const TimingReport rep =
      TimingGraph(f.nl, f.regs, opts).analyze(f.nl.snapshot());
  Vec crit(f.nl.num_cells(), 1.0);
  const size_t n = update_criticality(crit, rep, 0.5);
  EXPECT_GT(n, 0u);
  bool any_raised = false;
  for (double c : crit) any_raised |= c > 1.4;
  EXPECT_TRUE(any_raised);
}

TEST(Weighting, CriticalityDecaysWhenMet) {
  ChainFixture f;
  TimingOptions opts;
  opts.wire_delay_per_unit = 0.1;
  opts.period = 100.0;  // loose: all slacks positive
  const TimingReport rep =
      TimingGraph(f.nl, f.regs, opts).analyze(f.nl.snapshot());
  Vec crit(f.nl.num_cells(), 2.0);
  update_criticality(crit, rep, 0.5);
  for (double c : crit) {
    EXPECT_LT(c, 2.0);
    EXPECT_GE(c, 1.0);
  }
}

TEST(Weighting, SyntheticActivityInRange) {
  Netlist nl = complx::testing::small_circuit(123, 1000);
  const Vec act = synthetic_activity(nl, 9, 0.2);
  size_t hot = 0;
  for (CellId id : nl.movable_cells()) {
    EXPECT_GE(act[id], 0.0);
    EXPECT_LE(act[id], 1.0);
    if (act[id] > 0.4) ++hot;
  }
  // Roughly the requested hot fraction.
  const double frac = static_cast<double>(hot) /
                      static_cast<double>(nl.num_movable());
  EXPECT_NEAR(frac, 0.2, 0.06);
  // Fixed cells stay cold.
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    if (!nl.cell(id).movable()) {
      EXPECT_DOUBLE_EQ(act[id], 0.0);
    }
  }
}

TEST(Weighting, ActivityWeightsFollowHottestPin) {
  ChainFixture f;
  Vec act(f.nl.num_cells(), 0.0);
  act[f.a] = 0.8;  // only cell a is hot
  activity_based_net_weights(f.nl, act, /*strength=*/2.0);
  EXPECT_DOUBLE_EQ(f.nl.net(0).weight, 1.0 + 2.0 * 0.8);  // reg0-a
  EXPECT_DOUBLE_EQ(f.nl.net(1).weight, 1.0 + 2.0 * 0.8);  // a-b
  EXPECT_DOUBLE_EQ(f.nl.net(2).weight, 1.0);               // b-reg1 cold
}

TEST(Weighting, CriticalityFromActivityOffsetsByOne) {
  const Vec crit = criticality_from_activity({0.0, 0.5, 1.0});
  EXPECT_DOUBLE_EQ(crit[0], 1.0);
  EXPECT_DOUBLE_EQ(crit[1], 1.5);
  EXPECT_DOUBLE_EQ(crit[2], 2.0);
}

TEST(Weighting, SlackBasedWeightsRaiseCriticalNets) {
  ChainFixture f;
  TimingOptions opts;
  opts.wire_delay_per_unit = 0.1;
  opts.period = 9.0;  // exactly critical
  const TimingReport rep =
      TimingGraph(f.nl, f.regs, opts).analyze(f.nl.snapshot());
  slack_based_net_weights(f.nl, rep, /*strength=*/3.0);
  // All three chain nets are on the critical path: weights above 1.
  for (NetId e = 0; e < f.nl.num_nets(); ++e)
    EXPECT_GT(f.nl.net(e).weight, 1.0) << e;
}

}  // namespace
}  // namespace complx
