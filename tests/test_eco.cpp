// ECO (incremental re-placement) contract tests.
//
// The subsystem's two load-bearing guarantees are bitwise, not approximate:
//   1. a window that covers every movable cell IS a full solve — identical
//      bytes to ComplxPlacer::place() + apply();
//   2. a partial window never writes a cell outside it — positions, kinds
//      and pin offsets of outside cells compare equal byte for byte.
#include <gtest/gtest.h>

#include <cstring>

#include "core/eco.h"
#include "helpers.h"
#include "io/experience.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

ComplxConfig fast_config() {
  ComplxConfig cfg;
  cfg.max_iterations = 12;
  cfg.min_iterations = 4;
  return cfg;
}

uint64_t bits(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

TEST(Eco, FullWindowIsBitwiseIdenticalToFullSolve) {
  Netlist eco_nl = testing::small_circuit(21, 400);
  Netlist ref_nl = eco_nl;  // value copy: same cells, nets, names

  // Window covering the whole plane: every movable is dirty.
  EcoOptions opts;
  opts.window = {-1e30, -1e30, 1e30, 1e30};
  opts.config = fast_config();
  const EcoResult eco = eco_replace(eco_nl, opts);
  EXPECT_TRUE(eco.full_solve);
  EXPECT_EQ(eco.dirty_cells, eco_nl.num_movable());
  EXPECT_EQ(eco.frozen_cells, 0u);

  ComplxPlacer placer(ref_nl, opts.config);
  const PlaceResult ref = placer.place();
  ref_nl.apply(ref.anchors);

  ASSERT_EQ(eco_nl.num_cells(), ref_nl.num_cells());
  for (CellId id = 0; id < eco_nl.num_cells(); ++id) {
    EXPECT_EQ(bits(eco_nl.cell(id).x), bits(ref_nl.cell(id).x)) << id;
    EXPECT_EQ(bits(eco_nl.cell(id).y), bits(ref_nl.cell(id).y)) << id;
  }
  EXPECT_EQ(eco.place.iterations, ref.iterations);
  EXPECT_EQ(bits(eco.place.final_lambda), bits(ref.final_lambda));
}

TEST(Eco, PartialWindowLeavesOutsideCellsBitExact) {
  Netlist nl = testing::small_circuit(22, 400);
  // Converge once so the ECO baseline is a realistic placement.
  {
    EcoOptions warm;
    warm.window = {-1e30, -1e30, 1e30, 1e30};
    warm.config = fast_config();
    eco_replace(nl, warm);
  }

  // Left half of the core is dirty; everything else must not move a bit.
  const Rect core = nl.core();
  EcoOptions opts;
  opts.window = {core.xl, core.yl, core.xl + core.width() / 2.0, core.yh};
  opts.config = fast_config();

  struct Before {
    uint64_t x, y;
    CellKind kind;
  };
  std::vector<Before> before(nl.num_cells());
  std::vector<bool> dirty(nl.num_cells(), false);
  const Placement snap = nl.snapshot();
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    before[id] = {bits(nl.cell(id).x), bits(nl.cell(id).y),
                  nl.cell(id).kind};
    dirty[id] = nl.cell(id).movable() &&
                opts.window.contains(Point{snap.x[id], snap.y[id]});
  }

  const EcoResult eco = eco_replace(nl, opts);
  EXPECT_FALSE(eco.full_solve);
  EXPECT_GT(eco.dirty_cells, 0u);
  EXPECT_GT(eco.frozen_cells, 0u);
  EXPECT_EQ(eco.dirty_cells + eco.frozen_cells, nl.num_movable());

  size_t moved = 0;
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    // Kinds restored everywhere (the freeze is invisible after the call).
    EXPECT_EQ(nl.cell(id).kind, before[id].kind) << id;
    if (!dirty[id]) {
      EXPECT_EQ(bits(nl.cell(id).x), before[id].x) << "cell " << id;
      EXPECT_EQ(bits(nl.cell(id).y), before[id].y) << "cell " << id;
    } else if (bits(nl.cell(id).x) != before[id].x ||
               bits(nl.cell(id).y) != before[id].y) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u) << "ECO solved but committed nothing";
}

TEST(Eco, EmptyWindowTouchesNothingAndRunsNoSolve) {
  Netlist nl = testing::small_circuit(23, 200);
  std::vector<std::pair<uint64_t, uint64_t>> before;
  for (CellId id = 0; id < nl.num_cells(); ++id)
    before.emplace_back(bits(nl.cell(id).x), bits(nl.cell(id).y));

  EcoOptions opts;
  opts.window = {-2000.0, -2000.0, -1000.0, -1000.0};  // outside the core
  opts.config = fast_config();
  const EcoResult eco = eco_replace(nl, opts);
  EXPECT_EQ(eco.dirty_cells, 0u);
  EXPECT_FALSE(eco.full_solve);
  EXPECT_EQ(eco.place.iterations, 0);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    EXPECT_EQ(bits(nl.cell(id).x), before[id].first) << id;
    EXPECT_EQ(bits(nl.cell(id).y), before[id].second) << id;
  }
}

TEST(Eco, ApplyFalseLeavesNetlistUntouched) {
  Netlist nl = testing::small_circuit(24, 200);
  std::vector<std::pair<uint64_t, uint64_t>> before;
  for (CellId id = 0; id < nl.num_cells(); ++id)
    before.emplace_back(bits(nl.cell(id).x), bits(nl.cell(id).y));

  EcoOptions opts;
  opts.window = {-1e30, -1e30, 1e30, 1e30};
  opts.config = fast_config();
  opts.apply = false;
  const EcoResult eco = eco_replace(nl, opts);
  EXPECT_TRUE(eco.full_solve);
  EXPECT_GT(eco.place.iterations, 0);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    EXPECT_EQ(bits(nl.cell(id).x), before[id].first) << id;
    EXPECT_EQ(bits(nl.cell(id).y), before[id].second) << id;
  }
}

// Chaos-labeled: a warm-start snapshot (experience store) feeding an ECO
// pass. The stored placement seeds the full-window solve; the partial
// window then re-solves an island on top of the resumed result. Exercises
// the store → placer → freeze/refinalize → commit pipeline end to end.
TEST(EcoChaos, WarmStartSnapshotFeedsEcoPass) {
  Netlist nl = testing::small_circuit(25, 300);

  ExperienceStore::Options so;
  so.persist = false;  // in-memory store: no disk dependency in this test
  ExperienceStore store(so);
  ASSERT_EQ(store.open(), SnapshotError::None);

  // Produce and record a converged placement.
  ComplxConfig cfg = fast_config();
  ComplxPlacer placer(nl, cfg);
  const PlaceResult cold = placer.place();
  ASSERT_FALSE(cold.failed);
  ASSERT_TRUE(store.record(nl, cold.anchors,
                           weighted_hpwl(nl, cold.anchors),
                           cold.iterations));
  nl.apply(cold.anchors);

  // Full-window ECO with the store wired in: must warm-start, not re-run
  // the cold bootstrap.
  EcoOptions full;
  full.window = {-1e30, -1e30, 1e30, 1e30};
  full.config = cfg;
  full.config.experience = &store;
  const EcoResult resumed = eco_replace(nl, full);
  EXPECT_TRUE(resumed.full_solve);
  EXPECT_TRUE(resumed.place.warm_started);
  EXPECT_FALSE(resumed.place.failed);

  // Partial ECO on the resumed placement: outside cells bit-exact.
  const Rect core = nl.core();
  EcoOptions part;
  part.window = {core.xl, core.yl, core.xl + core.width() / 3.0,
                 core.yl + core.height() / 3.0};
  part.config = cfg;
  std::vector<std::pair<uint64_t, uint64_t>> before;
  std::vector<bool> dirty(nl.num_cells(), false);
  const Placement snap = nl.snapshot();
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    before.emplace_back(bits(nl.cell(id).x), bits(nl.cell(id).y));
    dirty[id] = nl.cell(id).movable() &&
                part.window.contains(Point{snap.x[id], snap.y[id]});
  }
  const EcoResult eco = eco_replace(nl, part);
  EXPECT_FALSE(eco.place.failed);
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    if (dirty[id]) continue;
    EXPECT_EQ(bits(nl.cell(id).x), before[id].first) << id;
    EXPECT_EQ(bits(nl.cell(id).y), before[id].second) << id;
  }
}

}  // namespace
}  // namespace complx
