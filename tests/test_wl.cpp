#include <gtest/gtest.h>

#include "helpers.h"
#include "wl/b2b.h"
#include "wl/hpwl.h"
#include "wl/star_clique.h"

namespace complx {
namespace {

Netlist offset_pair() {
  // Two cells; one net whose pins have non-zero offsets.
  Netlist nl;
  Cell a;
  a.width = 4;
  a.height = 12;
  a.x = 0;
  a.y = 0;
  const CellId ia = nl.add_cell(a, "a");
  Cell b = a;
  b.x = 20;
  const CellId ib = nl.add_cell(b, "b");
  nl.add_net("n", 2.0, {{ia, 1.0, 2.0}, {ib, -1.0, -2.0}});
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  return nl;
}

TEST(Hpwl, UsesPinOffsets) {
  Netlist nl = offset_pair();
  const Placement p = nl.snapshot();
  // Pin positions: a: (2+1, 6+2) = (3, 8); b: (22-1, 6-2) = (21, 4).
  const Rect bb = net_bbox(nl, p, 0);
  EXPECT_DOUBLE_EQ(bb.xl, 3.0);
  EXPECT_DOUBLE_EQ(bb.xh, 21.0);
  EXPECT_DOUBLE_EQ(bb.yl, 4.0);
  EXPECT_DOUBLE_EQ(bb.yh, 8.0);
  EXPECT_DOUBLE_EQ(net_hpwl(nl, p, 0), 18.0 + 4.0);
  EXPECT_DOUBLE_EQ(hpwl(nl, p), 22.0);
  EXPECT_DOUBLE_EQ(weighted_hpwl(nl, p), 44.0);  // weight 2
}

TEST(Hpwl, ChainValue) {
  Netlist nl = complx::testing::two_cell_chain();
  Placement p = nl.snapshot();
  const CellId c0 = nl.find_cell("c0"), c1 = nl.find_cell("c1");
  p.x[c0] = 10.0;
  p.x[c1] = 20.0;
  p.y[c0] = p.y[c1] = 6.0;
  // pads at x=0 and x=30, same y: three nets of lengths 10,10,10; no y span.
  EXPECT_DOUBLE_EQ(hpwl(nl, p), 30.0);
}

TEST(Hpwl, SinglePinNetContributesZero) {
  Netlist nl;
  Cell a;
  a.width = 2;
  a.height = 2;
  const CellId ia = nl.add_cell(a, "a");
  nl.add_net("single", 1.0, {{ia, 0, 0}});
  nl.set_core({0, 0, 10, 10});
  nl.finalize();
  EXPECT_DOUBLE_EQ(hpwl(nl, nl.snapshot()), 0.0);
}

// ------------------------------------------------------------------ B2B ----

/// The defining property of the Bound2Bound model: at the linearization
/// point, the quadratic form equals the HPWL exactly (Spindler et al.).
TEST(B2b, QuadraticFormEqualsHpwlAtLinearizationPoint) {
  Netlist nl = complx::testing::small_circuit(21, 300);
  const Placement p = nl.snapshot();

  B2bOptions opts;
  opts.min_separation = 1e-9;  // exactness requires no clamping
  double quad = 0.0;
  for (Axis axis : {Axis::X, Axis::Y}) {
    const auto springs = build_b2b(nl, p, axis, opts);
    for (const PinSpring& s : springs) {
      const Pin& a = nl.pin(s.p);
      const Pin& b = nl.pin(s.q);
      const double ca = axis == Axis::X ? p.x[a.cell] + a.dx
                                        : p.y[a.cell] + a.dy;
      const double cb = axis == Axis::X ? p.x[b.cell] + b.dx
                                        : p.y[b.cell] + b.dy;
      quad += s.weight * (ca - cb) * (ca - cb);
    }
  }
  const double exact = weighted_hpwl(nl, p);
  EXPECT_NEAR(quad, exact, 1e-6 * exact);
}

TEST(B2b, TwoPinNetSingleSpring) {
  Netlist nl = offset_pair();
  const Placement p = nl.snapshot();
  const auto springs = build_b2b(nl, p, Axis::X, {});
  ASSERT_EQ(springs.size(), 1u);
  // weight = w / (P-1) / sep = 2 / 1 / 18.
  EXPECT_NEAR(springs[0].weight, 2.0 / 18.0, 1e-12);
}

TEST(B2b, SpringCountIs2DMinus3PerNet) {
  // A P-pin net has 1 + 2(P-2) = 2P-3 springs per axis.
  Netlist nl;
  std::vector<Pin> pins;
  for (int i = 0; i < 5; ++i) {
    Cell c;
    c.width = 2;
    c.height = 2;
    c.x = 3.0 * i;
    c.y = 2.0 * i;
    pins.push_back({nl.add_cell(c, "c" + std::to_string(i)), 0, 0});
  }
  nl.add_net("n", 1.0, pins);
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  const auto springs = build_b2b(nl, nl.snapshot(), Axis::X, {});
  EXPECT_EQ(springs.size(), 2u * 5 - 3);
}

TEST(B2b, SkipsHugeNets) {
  Netlist nl;
  std::vector<Pin> pins;
  for (int i = 0; i < 20; ++i) {
    Cell c;
    c.width = 2;
    c.height = 2;
    c.x = i;
    pins.push_back({nl.add_cell(c, "c" + std::to_string(i)), 0, 0});
  }
  nl.add_net("big", 1.0, pins);
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  B2bOptions opts;
  opts.max_degree = 10;
  EXPECT_TRUE(build_b2b(nl, nl.snapshot(), Axis::X, opts).empty());
}

TEST(B2b, MinSeparationBoundsWeights) {
  // Coincident pins must not produce infinite weights.
  Netlist nl;
  Cell a;
  a.width = 2;
  a.height = 2;
  a.x = 5;
  a.y = 5;
  const CellId ia = nl.add_cell(a, "a");
  Cell b = a;
  const CellId ib = nl.add_cell(b, "b");  // same location
  nl.add_net("n", 1.0, {{ia, 0, 0}, {ib, 0, 0}});
  nl.set_core({0, 0, 10, 10});
  nl.finalize();
  B2bOptions opts;
  opts.min_separation = 0.5;
  const auto springs = build_b2b(nl, nl.snapshot(), Axis::X, opts);
  ASSERT_EQ(springs.size(), 1u);
  EXPECT_LE(springs[0].weight, 2.0 / 0.5 + 1e-12);
}

// --------------------------------------------------------------- clique ----

TEST(Clique, EdgeCountQuadratic) {
  Netlist nl;
  std::vector<Pin> pins;
  for (int i = 0; i < 6; ++i) {
    Cell c;
    c.width = 2;
    c.height = 2;
    c.x = 3.0 * i;
    pins.push_back({nl.add_cell(c, "c" + std::to_string(i)), 0, 0});
  }
  nl.add_net("n", 1.0, pins);
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  const auto springs = build_clique(nl, nl.snapshot(), Axis::X, {});
  EXPECT_EQ(springs.size(), 6u * 5 / 2);
}

TEST(Clique, LargeNetFallsBackToChain) {
  Netlist nl;
  std::vector<Pin> pins;
  for (int i = 0; i < 30; ++i) {
    Cell c;
    c.width = 2;
    c.height = 2;
    c.x = 2.0 * i;
    pins.push_back({nl.add_cell(c, "c" + std::to_string(i)), 0, 0});
  }
  nl.add_net("n", 1.0, pins);
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  const auto springs =
      build_clique(nl, nl.snapshot(), Axis::X, {}, /*clique_max_degree=*/16);
  EXPECT_EQ(springs.size(), 29u);  // chain
}

// ----------------------------------------------------------------- star ----

TEST(Star, CentersAtCentroid) {
  Netlist nl = offset_pair();
  const Placement p = nl.snapshot();
  const auto springs = build_star(nl, p, Axis::X, {});
  ASSERT_EQ(springs.size(), 2u);
  // Pin coords 3 and 21 -> centroid 12.
  EXPECT_DOUBLE_EQ(springs[0].center, 12.0);
  EXPECT_DOUBLE_EQ(springs[1].center, 12.0);
  EXPECT_GT(springs[0].weight, 0.0);
}

TEST(Star, SkipsDegenerateNets) {
  Netlist nl;
  Cell a;
  a.width = 2;
  a.height = 2;
  const CellId ia = nl.add_cell(a, "a");
  nl.add_net("single", 1.0, {{ia, 0, 0}});
  nl.set_core({0, 0, 10, 10});
  nl.finalize();
  EXPECT_TRUE(build_star(nl, nl.snapshot(), Axis::X, {}).empty());
}

}  // namespace
}  // namespace complx
