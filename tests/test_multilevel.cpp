#include <gtest/gtest.h>

#include "helpers.h"
#include "legal/tetris.h"
#include "multilevel/auto.h"
#include "multilevel/mlplacer.h"
#include "wl/hpwl.h"

namespace complx {
namespace {

// ------------------------------------------------------------ coarsening --

TEST(Coarsen, ReducesCellCount) {
  Netlist fine = complx::testing::small_circuit(401, 2000);
  const CoarseLevel level = coarsen(fine);
  EXPECT_LT(level.netlist.num_cells(), fine.num_cells());
  // Heavy-edge matching merges at most pairs: >= half the cells remain.
  EXPECT_GE(level.netlist.num_cells(), fine.num_cells() / 2);
  EXPECT_EQ(level.fine_to_coarse.size(), fine.num_cells());
}

TEST(Coarsen, PreservesFixedAndMacros) {
  Netlist fine = complx::testing::small_circuit(402, 1000, 3);
  const CoarseLevel level = coarsen(fine);
  size_t fine_fixed = 0, coarse_fixed = 0, fine_mac = 0, coarse_mac = 0;
  for (const Cell& c : fine.cells()) {
    if (!c.movable()) ++fine_fixed;
    if (c.is_macro()) ++fine_mac;
  }
  for (const Cell& c : level.netlist.cells()) {
    if (!c.movable()) ++coarse_fixed;
    if (c.is_macro()) ++coarse_mac;
  }
  EXPECT_EQ(fine_fixed, coarse_fixed);
  EXPECT_EQ(fine_mac, coarse_mac);
}

TEST(Coarsen, ConservesMovableArea) {
  Netlist fine = complx::testing::small_circuit(403, 1500);
  const CoarseLevel level = coarsen(fine);
  EXPECT_NEAR(level.netlist.movable_area(), fine.movable_area(),
              1e-6 * fine.movable_area());
}

TEST(Coarsen, MappingIsOntoValidIds) {
  Netlist fine = complx::testing::small_circuit(404, 800);
  const CoarseLevel level = coarsen(fine);
  for (CellId cc : level.fine_to_coarse)
    ASSERT_LT(cc, level.netlist.num_cells());
}

TEST(Coarsen, NetsNeverGainPins) {
  Netlist fine = complx::testing::small_circuit(405, 800);
  const CoarseLevel level = coarsen(fine);
  EXPECT_LE(level.netlist.num_nets(), fine.num_nets());
  EXPECT_LE(level.netlist.num_pins(), fine.num_pins());
}

TEST(Interpolate, FineCellsLandOnClusters) {
  Netlist fine = complx::testing::small_circuit(406, 600);
  const CoarseLevel level = coarsen(fine);
  Placement coarse_p = level.netlist.snapshot();
  const Placement fine_p = interpolate(fine, level.fine_to_coarse, coarse_p);
  for (CellId id : fine.movable_cells()) {
    const CellId cc = level.fine_to_coarse[id];
    EXPECT_DOUBLE_EQ(fine_p.x[id], coarse_p.x[cc]);
    EXPECT_DOUBLE_EQ(fine_p.y[id], coarse_p.y[cc]);
  }
}

// -------------------------------------------------------------- ML placer --

TEST(Multilevel, PlacesLegalizably) {
  Netlist nl = complx::testing::small_circuit(411, 4000);
  MultilevelConfig cfg;
  cfg.coarsest_cells = 1000;
  MultilevelPlacer placer(nl, cfg);
  const MultilevelResult res = placer.place();
  EXPECT_GE(res.levels, 1);
  ASSERT_GE(res.level_sizes.size(), 2u);
  EXPECT_LT(res.level_sizes.back(), res.level_sizes.front());

  Placement p = res.anchors;
  const LegalizeResult legal = TetrisLegalizer(nl).legalize(p);
  EXPECT_EQ(legal.failed, 0u);
  EXPECT_TRUE(TetrisLegalizer::is_legal(nl, p));
}

TEST(Multilevel, QualityWithinReasonOfFlat) {
  Netlist nl = complx::testing::small_circuit(412, 4000);
  MultilevelConfig mcfg;
  mcfg.coarsest_cells = 1000;
  const MultilevelResult ml = MultilevelPlacer(nl, mcfg).place();

  ComplxConfig flat_cfg;
  const PlaceResult flat = ComplxPlacer(nl, flat_cfg).place();

  // Multilevel trades some quality for coarse-level speed; it must stay in
  // the same league.
  EXPECT_LT(hpwl(nl, ml.anchors), 1.35 * hpwl(nl, flat.anchors));
}

TEST(Multilevel, SmallDesignSkipsCoarsening) {
  Netlist nl = complx::testing::small_circuit(413, 500);
  MultilevelConfig cfg;
  cfg.coarsest_cells = 2500;  // already below threshold
  const MultilevelResult res = MultilevelPlacer(nl, cfg).place();
  EXPECT_EQ(res.levels, 0);
  EXPECT_GT(hpwl(nl, res.anchors), 0.0);
}

TEST(PlaceAuto, SmallDesignTakesFlatPath) {
  Netlist nl = complx::testing::small_circuit(414, 500);
  ComplxConfig cfg;
  cfg.max_iterations = 15;
  AutoPlaceOptions opts;  // default threshold is far above 500 movables
  const AutoPlaceResult r = place_auto(nl, cfg, opts);
  EXPECT_FALSE(r.used_multilevel);
  EXPECT_EQ(r.levels, 0);
  EXPECT_GT(r.place.iterations, 0);
  EXPECT_GT(hpwl(nl, r.anchors), 0.0);
}

TEST(PlaceAuto, FlatPathIsBitwiseThePlainPlacer) {
  Netlist nl = complx::testing::small_circuit(415, 400);
  ComplxConfig cfg;
  cfg.max_iterations = 12;
  const AutoPlaceResult a = place_auto(nl, cfg, {});
  const PlaceResult b = ComplxPlacer(nl, cfg).place();
  ASSERT_EQ(a.anchors.x.size(), b.anchors.x.size());
  for (size_t i = 0; i < a.anchors.x.size(); ++i) {
    EXPECT_EQ(a.anchors.x[i], b.anchors.x[i]) << i;
    EXPECT_EQ(a.anchors.y[i], b.anchors.y[i]) << i;
  }
}

TEST(PlaceAuto, ThresholdZeroForcesMultilevel) {
  Netlist nl = complx::testing::small_circuit(416, 3000);
  ComplxConfig cfg;
  cfg.max_iterations = 15;
  AutoPlaceOptions opts;
  opts.multilevel_threshold = 0;
  opts.multilevel.coarsest_cells = 800;
  const AutoPlaceResult r = place_auto(nl, cfg, opts);
  EXPECT_TRUE(r.used_multilevel);
  EXPECT_GE(r.levels, 1);
  ASSERT_GE(r.level_sizes.size(), 2u);
  EXPECT_GT(r.level_sizes.front(), r.level_sizes.back());
  EXPECT_GT(hpwl(nl, r.anchors), 0.0);
}

}  // namespace
}  // namespace complx
