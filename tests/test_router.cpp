#include <gtest/gtest.h>

#include "core/placer.h"
#include "helpers.h"
#include "route/global_router.h"

namespace complx {
namespace {

/// Two cells on the same row, 4 gcells apart in x: the route must use
/// exactly 4 horizontal edges along that row.
struct StraightFixture {
  Netlist nl;
  StraightFixture() {
    Cell a;
    a.width = 2;
    a.height = 2;
    a.x = 5 - 1;
    a.y = 5 - 1;
    const CellId ia = nl.add_cell(a, "a");
    Cell b = a;
    b.x = 45 - 1;
    const CellId ib = nl.add_cell(b, "b");
    nl.add_net("n", 1.0, {{ia, 0, 0}, {ib, 0, 0}});
    nl.set_core({0, 0, 100, 100});
    nl.finalize();
  }
};

TEST(Router, StraightNetUsesStraightEdges) {
  StraightFixture f;
  RouterOptions opts;
  opts.gcells_x = opts.gcells_y = 10;
  GlobalRouter router(f.nl, opts);
  const RouteStats stats = router.route(f.nl.snapshot());
  EXPECT_EQ(stats.routed_connections, 1u);
  EXPECT_DOUBLE_EQ(stats.overflow, 0.0);
  // Pins in gcells (0,0) and (4,0): 4 horizontal edges on row 0.
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(router.h_edge_usage(i, 0), 1.0);
  EXPECT_DOUBLE_EQ(router.h_edge_usage(5, 0), 0.0);
  // Wirelength = 4 gcells * 10 units pitch.
  EXPECT_NEAR(stats.wirelength, 40.0, 1e-9);
}

TEST(Router, LShapeForDiagonalNet) {
  Netlist nl;
  Cell a;
  a.width = 2;
  a.height = 2;
  a.x = 5;
  a.y = 5;
  const CellId ia = nl.add_cell(a, "a");
  Cell b = a;
  b.x = 75;
  b.y = 75;
  const CellId ib = nl.add_cell(b, "b");
  nl.add_net("n", 1.0, {{ia, 0, 0}, {ib, 0, 0}});
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  RouterOptions opts;
  opts.gcells_x = opts.gcells_y = 10;
  GlobalRouter router(nl, opts);
  const RouteStats stats = router.route(nl.snapshot());
  // Manhattan distance 7+7 = 14 gcells; any monotone pattern has the same
  // length (no detours in this router).
  EXPECT_NEAR(stats.wirelength, 14.0 * 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.overflow, 0.0);
}

TEST(Router, MstDecomposesMultiPinNets) {
  // Three pins in an L: MST has 2 connections, total length 8+6 gcells.
  Netlist nl;
  auto add = [&](const char* name, double x, double y) {
    Cell c;
    c.width = 2;
    c.height = 2;
    c.x = x;
    c.y = y;
    return nl.add_cell(c, name);
  };
  const CellId a = add("a", 5, 5);
  const CellId b = add("b", 85, 5);
  const CellId c = add("c", 85, 65);
  nl.add_net("n", 1.0, {{a, 0, 0}, {b, 0, 0}, {c, 0, 0}});
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  RouterOptions opts;
  opts.gcells_x = opts.gcells_y = 10;
  GlobalRouter router(nl, opts);
  const RouteStats stats = router.route(nl.snapshot());
  EXPECT_EQ(stats.routed_connections, 2u);
  EXPECT_NEAR(stats.wirelength, (8.0 + 6.0) * 10.0, 1e-9);
}

TEST(Router, CongestionAwareRoutingBeatsBlind) {
  // Several nets with the same diagonal bounding box: a congestion-blind
  // router ties on cost and stacks them on one pattern; congestion costs
  // plus rip-up spread them over distinct bend positions.
  Netlist nl;
  for (int k = 0; k < 6; ++k) {
    Cell a;
    a.width = 2;
    a.height = 2;
    a.x = 5 + k;   // all sources in gcell (0, 0)
    a.y = 5;
    const CellId ia = nl.add_cell(a, "a" + std::to_string(k));
    Cell b = a;
    b.x = 85;
    b.y = 85;  // all sinks in gcell (8, 8)
    const CellId ib = nl.add_cell(b, "b" + std::to_string(k));
    nl.add_net("n" + std::to_string(k), 1.0, {{ia, 0, 0}, {ib, 0, 0}});
  }
  nl.set_core({0, 0, 100, 100});
  nl.finalize();

  RouterOptions opts;
  opts.gcells_x = opts.gcells_y = 10;
  opts.edge_capacity_tracks = 2.0;  // 6 wires cannot share one bend pattern

  RouterOptions blind_opts = opts;
  blind_opts.rip_up_rounds = 0;
  blind_opts.overflow_penalty = 0.0;  // cost-blind: everyone ties
  blind_opts.history_increment = 0.0;
  GlobalRouter blind(nl, blind_opts);
  const RouteStats before = blind.route(nl.snapshot());

  GlobalRouter smart(nl, opts);
  const RouteStats after = smart.route(nl.snapshot());
  EXPECT_GT(before.overflow, 0.0);
  EXPECT_LT(after.overflow, before.overflow);
}

TEST(Router, SkipsHugeNets) {
  Netlist nl;
  std::vector<Pin> pins;
  for (int i = 0; i < 30; ++i) {
    Cell c;
    c.width = 2;
    c.height = 2;
    c.x = 3.0 * i;
    pins.push_back({nl.add_cell(c, "c" + std::to_string(i)), 0, 0});
  }
  nl.add_net("huge", 1.0, pins);
  nl.set_core({0, 0, 100, 100});
  nl.finalize();
  RouterOptions opts;
  opts.max_net_degree = 10;
  GlobalRouter router(nl, opts);
  const RouteStats stats = router.route(nl.snapshot());
  EXPECT_EQ(stats.skipped_nets, 1u);
  EXPECT_EQ(stats.routed_connections, 0u);
}

TEST(Router, RoutesGeneratedDesign) {
  Netlist nl = complx::testing::small_circuit(161, 1500);
  ComplxConfig cfg;
  cfg.max_iterations = 35;
  const PlaceResult gp = ComplxPlacer(nl, cfg).place();
  GlobalRouter router(nl, {});
  const RouteStats stats = router.route(gp.anchors);
  EXPECT_GT(stats.routed_connections, 500u);
  EXPECT_GT(stats.wirelength, 0.0);
  // Routed wirelength is bounded below by HPWL-ish scale (sanity).
  EXPECT_LT(stats.max_overflow, 100.0);
}

TEST(Router, PlacedDesignRoutesBetterThanScatter) {
  // A wirelength-optimized placement must route with less wirelength AND
  // less overflow than the generator's random scatter.
  Netlist nl = complx::testing::small_circuit(162, 1200);
  RouterOptions opts;
  opts.edge_capacity_tracks = 6.0;
  GlobalRouter r1(nl, opts);
  const RouteStats scatter = r1.route(nl.snapshot());

  ComplxConfig cfg;
  cfg.max_iterations = 35;
  const PlaceResult gp = ComplxPlacer(nl, cfg).place();
  GlobalRouter r2(nl, opts);
  const RouteStats placed = r2.route(gp.anchors);

  EXPECT_LT(placed.wirelength, 0.7 * scatter.wirelength);
  EXPECT_LE(placed.overflow, scatter.overflow);
}

}  // namespace
}  // namespace complx
