// FFT electrostatic density backend: transform kernels against naive
// O(n²) sums, the exact-gradient contract against central finite
// differences, the backend registries, the field-directed projection, and
// an end-to-end gate-fleet design placed to legality.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "density/backend.h"
#include "density/electrostatic.h"
#include "density/fft/dct.h"
#include "gen/fleet.h"
#include "helpers.h"
#include "projection/backend.h"
#include "projection/electrostatic.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace complx {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(FftDct, ForwardMatchesNaive) {
  const size_t n = 16, rows = 3;
  Rng rng(0x5EEDull);
  std::vector<double> in(n * rows);
  for (double& v : in) v = rng.uniform(-2.0, 2.0);
  std::vector<double> out;
  fft::dct2_rows(in, n, rows, out);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t u = 0; u < n; ++u) {
      double naive = 0.0;
      for (size_t i = 0; i < n; ++i)
        naive += in[r * n + i] *
                 std::cos(kPi * static_cast<double>(u) *
                          (static_cast<double>(i) + 0.5) /
                          static_cast<double>(n));
      EXPECT_NEAR(out[r * n + u], naive, 1e-10) << "row " << r << " u " << u;
    }
  }
}

TEST(FftDct, SeriesMatchesNaive) {
  const size_t n = 32, rows = 2;
  Rng rng(0xC0FFEEull);
  std::vector<double> coef(n * rows);
  for (double& v : coef) v = rng.uniform(-1.0, 1.0);
  std::vector<double> cosv, sinv;
  fft::series_rows(coef, n, rows, &cosv, &sinv);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < n; ++i) {
      double nc = 0.0, ns = 0.0;
      for (size_t u = 0; u < n; ++u) {
        const double th = kPi * static_cast<double>(u) *
                          (static_cast<double>(i) + 0.5) /
                          static_cast<double>(n);
        nc += coef[r * n + u] * std::cos(th);
        ns += coef[r * n + u] * std::sin(th);
      }
      EXPECT_NEAR(cosv[r * n + i], nc, 1e-10);
      EXPECT_NEAR(sinv[r * n + i], ns, 1e-10);
    }
  }
}

TEST(FftDct, RoundTripRecoversInput) {
  // DCT-II then the cosine series with the inverse normalization is the
  // identity (DCT-III is the inverse of DCT-II up to scale).
  const size_t n = 64;
  Rng rng(0xABull);
  std::vector<double> in(n);
  for (double& v : in) v = rng.uniform(-5.0, 5.0);
  std::vector<double> freq, coef(n), back;
  fft::dct2_rows(in, n, 1, freq);
  for (size_t u = 0; u < n; ++u)
    coef[u] = (u == 0 ? 0.5 : 1.0) * freq[u] * 2.0 / static_cast<double>(n);
  fft::series_rows(coef, n, 1, &back, nullptr);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], in[i], 1e-10);
}

TEST(FftDct, RejectsNonPowerOfTwo) {
  std::vector<double> in(12), out;
  EXPECT_THROW(fft::dct2_rows(in, 12, 1, out), std::invalid_argument);
}

TEST(Electrostatic, PotentialSolvesPoisson) {
  // Verify ∇²ψ = −ρ (mean-free part) in the spectral sense: project ψ back
  // to coefficients and check ψ̂·(w_u²+w_v²) reproduces the charge modes.
  Netlist nl = testing::small_circuit(11, 300);
  Placement p = nl.snapshot();
  ElectrostaticOptions opts;
  opts.bins = 32;
  ElectrostaticDensity model(nl, opts);
  model.solve_field(p);
  const size_t M = model.bins();
  ASSERT_EQ(M, 32u);
  const std::vector<double>& psi = model.potential();
  ASSERT_EQ(psi.size(), M * M);
  // The discrete Laplacian of the cosine series is smooth; sanity-check the
  // field is finite and the potential is mean-free-ish (DC dropped).
  double mean = 0.0;
  for (double v : psi) {
    ASSERT_TRUE(std::isfinite(v));
    mean += v;
  }
  mean /= static_cast<double>(M * M);
  EXPECT_NEAR(mean, 0.0, 1e-6 * (1.0 + std::abs(psi[0])));
}

TEST(Electrostatic, EnergyGradientMatchesCentralFiniteDifference) {
  // The solve is a fixed symmetric operator, so N(x) is piecewise quadratic
  // in any one coordinate and the analytic gradient must match central
  // differences to roundoff away from bin-edge kinks.
  Netlist nl = testing::small_circuit(23, 60);
  Placement p = nl.snapshot();
  ElectrostaticOptions opts;
  opts.bins = 16;
  ElectrostaticDensity model(nl, opts);

  Vec gx, gy;
  const double base = model.value_and_grad(p, gx, gy);
  ASSERT_TRUE(std::isfinite(base));
  ASSERT_GT(base, 0.0);  // piled cells carry field energy

  const double h = 1e-3 * model.bin_width();
  Vec tx, ty;
  size_t checked = 0;
  for (size_t k = 0; k < nl.movable_cells().size() && checked < 12; ++k) {
    const CellId id = nl.movable_cells()[k];
    const double save = p.x[id];
    p.x[id] = save + h;
    const double fp_ = model.value_and_grad(p, tx, ty);
    p.x[id] = save - h;
    const double fm = model.value_and_grad(p, tx, ty);
    p.x[id] = save;
    const double fd = (fp_ - fm) / (2.0 * h);
    const double scale = std::max({std::abs(fd), std::abs(gx[id]), 1e-12});
    if (std::abs(fd) < 1e-9) continue;  // flat direction: nothing to compare
    EXPECT_LE(std::abs(fd - gx[id]) / scale, 1e-4)
        << "cell " << id << ": analytic " << gx[id] << " vs FD " << fd;
    ++checked;
  }
  EXPECT_GE(checked, 6u) << "fixture too degenerate to exercise the check";
}

TEST(Electrostatic, SpreadBackendGradientAgreesWithFiniteDifference) {
  // The bell penalty's gradient treats the per-cell normalization as
  // locally constant, so per-component agreement is approximate; require
  // strong directional agreement (cosine similarity) instead.
  Netlist nl = testing::small_circuit(31, 80);
  Placement p = nl.snapshot();
  DensityBackendOptions opts;
  opts.bins = 12;
  const auto backend = make_density_backend("spread", nl, opts);

  Vec gx, gy;
  const double base = backend->value_and_grad(p, gx, gy);
  ASSERT_GT(base, 0.0);

  const double h = 0.05;
  Vec tx, ty;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t k = 0; k < nl.movable_cells().size() && k < 40; ++k) {
    const CellId id = nl.movable_cells()[k];
    const double save = p.x[id];
    p.x[id] = save + h;
    const double fp_ = backend->value_and_grad(p, tx, ty);
    p.x[id] = save - h;
    const double fm = backend->value_and_grad(p, tx, ty);
    p.x[id] = save;
    const double fd = (fp_ - fm) / (2.0 * h);
    dot += fd * gx[id];
    na += fd * fd;
    nb += gx[id] * gx[id];
  }
  ASSERT_GT(na, 0.0);
  ASSERT_GT(nb, 0.0);
  EXPECT_GT(dot / std::sqrt(na * nb), 0.90)
      << "spread gradient no longer points along the finite difference";
}

TEST(Electrostatic, DepositedChargeEqualsMovableArea) {
  // Stretching preserves total charge: Σ usage == movable area when every
  // stretched footprint stays inside the core.
  Netlist nl = testing::small_circuit(5, 200);
  Placement p = nl.snapshot();
  ElectrostaticOptions opts;
  opts.bins = 16;
  ElectrostaticDensity model(nl, opts);
  model.solve_field(p);
  const DensityGrid& g = model.grid();
  double total = 0.0;
  for (size_t j = 0; j < g.bins_y(); ++j)
    for (size_t i = 0; i < g.bins_x(); ++i) total += g.usage(i, j);
  // Boundary cells can have part of the stretched footprint clipped, so
  // allow a small deficit but never an excess.
  EXPECT_LE(total, nl.movable_area() * (1.0 + 1e-9));
  EXPECT_GE(total, nl.movable_area() * 0.80);
}

TEST(Electrostatic, ClampCounterTracksOffCoreCells) {
  Netlist nl = testing::small_circuit(7, 50);
  Placement p = nl.snapshot();
  const CellId first = nl.movable_cells()[0];
  const CellId second = nl.movable_cells()[1];
  p.x[first] = nl.core().xh + 1000.0;
  p.y[second] = std::numeric_limits<double>::quiet_NaN();
  ElectrostaticDensity model(nl, ElectrostaticOptions{});
  Vec gx, gy;
  const double v = model.value_and_grad(p, gx, gy);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(model.stats().clamped_cells, 2u);
  for (double g : gx) EXPECT_TRUE(std::isfinite(g));
  for (double g : gy) EXPECT_TRUE(std::isfinite(g));
}

TEST(DensityBackendRegistry, BuiltinsAndErrors) {
  Netlist nl = testing::small_circuit(3, 30);
  DensityBackendOptions opts;
  const auto spread = make_density_backend("spread", nl, opts);
  EXPECT_STREQ(spread->name(), "spread");
  const auto electro = make_density_backend("electrostatic", nl, opts);
  EXPECT_STREQ(electro->name(), "electrostatic");

  const std::vector<std::string> names = density_backend_names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "spread");
  EXPECT_EQ(names[1], "electrostatic");

  try {
    make_density_backend("no-such-backend", nl, opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("spread"), std::string::npos)
        << "error message must list the registered names";
  }
}

TEST(ProjectionBackendRegistry, BuiltinsAndShadowing) {
  Netlist nl = testing::small_circuit(3, 30);
  ProjectionOptions opts;
  const auto spread = make_projection_backend("spread", nl, opts);
  EXPECT_STREQ(spread->name(), "spread");
  const auto electro = make_projection_backend("electrostatic", nl, opts);
  EXPECT_STREQ(electro->name(), "electrostatic");
  EXPECT_THROW(make_projection_backend("bogus", nl, opts),
               std::invalid_argument);

  // Later registrations shadow earlier ones under the same name (tests can
  // swap in instrumented backends); names are listed once, built-ins first.
  register_projection_backend(
      "test-shadow", [](const Netlist& n, const ProjectionOptions& o) {
        return make_projection_backend("spread", n, o);
      });
  const std::vector<std::string> names = projection_backend_names();
  EXPECT_EQ(names[0], "spread");
  EXPECT_EQ(names[1], "electrostatic");
  EXPECT_NE(make_projection_backend("test-shadow", nl, opts), nullptr);
}

TEST(ElectrostaticProjection, ReducesOverflowOfPiledPlacement) {
  Netlist nl = testing::small_circuit(13, 400);
  Placement p = nl.snapshot();
  // Pile every movable cell near the core center: maximal overflow.
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  ProjectionOptions opts;
  opts.gamma = nl.target_density();
  ElectrostaticProjection proj(nl, opts);
  const ProjectionResult r = proj.project(p);
  EXPECT_GT(r.input_overflow_ratio, 0.3);
  EXPECT_GT(r.displacement_l1, 0.0);

  // Measure the output the same way the projection metered its input.
  DensityGrid g(nl, 64, 64);
  g.build(r.anchors);
  const double out_overflow = g.total_overflow(opts.gamma) /
                              std::max(nl.movable_area(), 1e-12);
  EXPECT_LT(out_overflow, 0.5 * r.input_overflow_ratio)
      << "field sweeps failed to dissipate the pile";
}

TEST(ElectrostaticProjection, PlacesGateFleetDesignToLegality) {
  // End-to-end: one known-optimum gate design through the full flow with
  // the electrostatic backend — must legalize with a valid ratio.
  const std::vector<PekoParams> designs =
      fleet_designs(FleetPreset::Gate, /*base_seed=*/1);
  ASSERT_FALSE(designs.empty());
  FleetRunOptions opts;
  opts.density_backend = "electrostatic";
  opts.detailed = true;
  opts.record_timing = false;
  const FleetRecord r = run_fleet_design(designs[0], opts);
  EXPECT_TRUE(r.legal);
  EXPECT_GE(r.ratio, 1.0);
}

TEST(Electrostatic, FieldBitwiseInvariantAcrossThreadCounts) {
  struct ThreadGuard {
    ~ThreadGuard() { set_global_threads(0); }
  } guard;
  Netlist nl = testing::small_circuit(17, 500);
  Placement p = nl.snapshot();
  ElectrostaticOptions opts;
  opts.bins = 64;

  auto run = [&](size_t threads, Vec& gx, Vec& gy) {
    set_global_threads(threads);
    ElectrostaticDensity model(nl, opts);
    const double v = model.value_and_grad(p, gx, gy);
    return v;
  };
  Vec gx1, gy1, gx2, gy2, gx8, gy8;
  const double v1 = run(1, gx1, gy1);
  const double v2 = run(2, gx2, gy2);
  const double v8 = run(8, gx8, gy8);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(v1, v8);
  testing::expect_vec_bitwise_equal(gx1, gx2, "gx @2 threads");
  testing::expect_vec_bitwise_equal(gy1, gy2, "gy @2 threads");
  testing::expect_vec_bitwise_equal(gx1, gx8, "gx @8 threads");
  testing::expect_vec_bitwise_equal(gy1, gy8, "gy @8 threads");
}

}  // namespace
}  // namespace complx
