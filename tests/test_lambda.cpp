#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/lambda.h"

namespace complx {
namespace {

TEST(Lambda, Formula12InitIsPhiOver100Pi) {
  LambdaSchedule s(ScheduleKind::ComplxFormula12);
  s.init(/*phi=*/500.0, /*pi=*/10.0);
  EXPECT_DOUBLE_EQ(s.lambda(), 500.0 / (100.0 * 10.0));
}

TEST(Lambda, Formula12GrowthCappedAtDoubling) {
  LambdaSchedule s(ScheduleKind::ComplxFormula12, /*h_factor=*/1000.0);
  s.init(100.0, 1.0);
  const double l1 = s.lambda();
  s.update(/*pi_prev=*/1.0, /*pi_cur=*/1.0);  // huge h would exceed 2x
  EXPECT_DOUBLE_EQ(s.lambda(), 2.0 * l1);
}

TEST(Lambda, Formula12ProportionalToPiRatio) {
  LambdaSchedule s(ScheduleKind::ComplxFormula12, /*h_factor=*/0.5);
  s.init(100.0, 1.0);  // lambda1 = 1, h = 0.5
  const double l1 = s.lambda();
  s.update(/*pi_prev=*/4.0, /*pi_cur=*/1.0);  // ratio 0.25 -> +0.125
  EXPECT_NEAR(s.lambda(), l1 + 0.25 * 0.5 * l1, 1e-12);
}

TEST(Lambda, Formula12MonotoneNonDecreasing) {
  LambdaSchedule s(ScheduleKind::ComplxFormula12);
  s.init(1000.0, 3.0);
  double prev = s.lambda();
  double pi = 3.0;
  for (int k = 0; k < 50; ++k) {
    const double pi_next = pi * 0.9;
    s.update(pi, pi_next);
    pi = pi_next;
    EXPECT_GE(s.lambda(), prev);
    prev = s.lambda();
  }
}

TEST(Lambda, Formula12ZeroPiFallback) {
  LambdaSchedule s(ScheduleKind::ComplxFormula12);
  s.init(100.0, 0.0);
  EXPECT_GT(s.lambda(), 0.0);
  EXPECT_LT(s.lambda(), 1.0);
}

TEST(Lambda, SimplRampIsLinear) {
  LambdaSchedule s(ScheduleKind::SimplLinearRamp);
  s.init(12345.0, 99.0);  // phi/pi irrelevant for SimPL
  EXPECT_DOUBLE_EQ(s.lambda(), 0.01);
  s.update(1, 1);
  EXPECT_DOUBLE_EQ(s.lambda(), 0.01 * 3.0);  // iteration counter = 2
  s.update(1, 1);
  EXPECT_DOUBLE_EQ(s.lambda(), 0.01 * 4.0);
}

TEST(Lambda, NaiveDoublingDoubles) {
  LambdaSchedule s(ScheduleKind::NaiveDoubling);
  s.init(100.0, 1.0);
  const double l1 = s.lambda();
  s.update(1, 1);
  EXPECT_DOUBLE_EQ(s.lambda(), 2 * l1);
  s.update(1, 1);
  EXPECT_DOUBLE_EQ(s.lambda(), 4 * l1);
}

TEST(Lambda, NaiveDoublingClampsAtFiniteCeiling) {
  LambdaSchedule s(ScheduleKind::NaiveDoubling);
  s.init(100.0, 1.0);
  // 2000 doublings would overflow to Inf without the ceiling.
  for (int k = 0; k < 2000; ++k) s.update(1, 1);
  EXPECT_TRUE(std::isfinite(s.lambda()));
  EXPECT_DOUBLE_EQ(s.lambda(), s.max_lambda());
  // Further updates stay pinned at the ceiling.
  s.update(1, 1);
  EXPECT_DOUBLE_EQ(s.lambda(), s.max_lambda());
}

TEST(Lambda, InitGuardsNonFiniteInputs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const auto kind :
       {ScheduleKind::ComplxFormula12, ScheduleKind::NaiveDoubling}) {
    LambdaSchedule s(kind);
    s.init(nan, 10.0);
    EXPECT_TRUE(std::isfinite(s.lambda())) << static_cast<int>(kind);
    EXPECT_GT(s.lambda(), 0.0);
    s.init(100.0, inf);
    EXPECT_TRUE(std::isfinite(s.lambda()));
    EXPECT_GT(s.lambda(), 0.0);
  }
}

TEST(Lambda, UpdateGuardsNonFinitePenalties) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  LambdaSchedule s(ScheduleKind::ComplxFormula12);
  s.init(100.0, 1.0);
  const double l1 = s.lambda();
  s.update(nan, 1.0);  // ratio falls back to the neutral step
  EXPECT_TRUE(std::isfinite(s.lambda()));
  EXPECT_GE(s.lambda(), l1);
  s.update(1.0, inf);
  EXPECT_TRUE(std::isfinite(s.lambda()));
}

TEST(Lambda, SetLambdaSanitizesAndClamps) {
  LambdaSchedule s(ScheduleKind::ComplxFormula12);
  s.init(100.0, 1.0);
  s.set_lambda(42.0);
  EXPECT_DOUBLE_EQ(s.lambda(), 42.0);
  s.set_lambda(-5.0);  // negative multipliers are meaningless
  EXPECT_DOUBLE_EQ(s.lambda(), 0.0);
  s.set_lambda(std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(s.lambda(), s.max_lambda());
  s.set_lambda(2.0 * s.max_lambda());
  EXPECT_DOUBLE_EQ(s.lambda(), s.max_lambda());
}

TEST(Lambda, SetMaxLambdaLowersCeilingAndReclamps) {
  LambdaSchedule s(ScheduleKind::ComplxFormula12);
  s.init(100.0, 1.0);
  s.set_lambda(500.0);
  s.set_max_lambda(100.0);
  EXPECT_DOUBLE_EQ(s.lambda(), 100.0);
  s.set_max_lambda(-1.0);  // rejected: ceiling unchanged
  EXPECT_DOUBLE_EQ(s.max_lambda(), 100.0);
}

TEST(Lambda, IterationCounterAdvances) {
  LambdaSchedule s(ScheduleKind::ComplxFormula12);
  s.init(10, 1);
  EXPECT_EQ(s.iteration(), 1);
  s.update(1, 1);
  s.update(1, 1);
  EXPECT_EQ(s.iteration(), 3);
}

}  // namespace
}  // namespace complx
