// Multilevel vs flat ComPLx — the mPL6-style scheme the paper benchmarks
// against (Table 2's mPL6 column; the paper reports ComPLx 8.47x faster
// than mPL6 at ~3% better scaled HPWL).
//
// Shape to observe: the multilevel V-cycle spends most of its time on a
// small coarse netlist, so its runtime grows more slowly with size, but it
// pays a few percent of HPWL for the lost detail during coarsening —
// flat ComPLx wins quality at comparable or better runtime (the paper's
// conclusion, from the other side).
#include "common.h"
#include "multilevel/mlplacer.h"

using namespace complx;
using namespace complx::bench;

int main() {
  print_header(
      "COMPARATOR — multilevel (mPL6-style) vs flat ComPLx",
      "flat ComPLx beats the multilevel placer on quality at comparable "
      "runtime (paper: 1.03x scaled HPWL for mPL6, ComPLx 8.5x faster)",
      "same designs; ML uses heavy-edge coarsening + warm refinement");

  std::printf("%-10s %8s | %12s %8s | %12s %8s %7s\n", "design", "cells",
              "flat HPWL", "t(s)", "ML HPWL", "t(s)", "levels");
  for (size_t cells : {4000u, 8000u, 16000u}) {
    GenParams prm;
    prm.name = "ml" + std::to_string(cells / 1000) + "k";
    prm.num_cells = cells;
    prm.seed = 1500 + cells;
    prm.utilization = 0.65;
    const Netlist nl = generate_circuit(prm);

    Timer tf;
    ComplxConfig flat_cfg;
    const PlaceResult flat = ComplxPlacer(nl, flat_cfg).place();
    Placement pf = flat.anchors;
    TetrisLegalizer(nl).legalize(pf);
    DetailedPlacer(nl).refine(pf);
    const double flat_t = tf.seconds();

    Timer tm;
    MultilevelConfig mcfg;
    mcfg.coarsest_cells = 2000;
    const MultilevelResult ml = MultilevelPlacer(nl, mcfg).place();
    Placement pm = ml.anchors;
    TetrisLegalizer(nl).legalize(pm);
    DetailedPlacer(nl).refine(pm);
    const double ml_t = tm.seconds();

    std::printf("%-10s %8zu | %12.0f %8.1f | %12.0f %8.1f %7d   "
                "(ML HPWL %+5.2f%%)\n",
                prm.name.c_str(), nl.num_cells(), hpwl(nl, pf), flat_t,
                hpwl(nl, pm), ml_t, ml.levels,
                100.0 * (hpwl(nl, pm) - hpwl(nl, pf)) / hpwl(nl, pf));
  }
  return 0;
}
