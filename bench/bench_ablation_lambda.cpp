// Ablation (Section 4 / 6): λ scheduling.
//
// The paper attributes ComPLx's edge over SimPL to "the refined convergence
// criterion and improved scheduling of λ". We compare:
//   * Formula 12 (ComPLx): capped geometric-then-linear growth,
//   * SimPL's fixed linear ramp,
//   * naive doubling (converges fastest but overshoots: quality risk).
#include "common.h"

using namespace complx;
using namespace complx::bench;

int main() {
  print_header(
      "ABLATION — lambda schedule: Formula 12 vs SimPL ramp vs doubling",
      "Formula 12 converges in fewer iterations than the fixed ramp at "
      "equal-or-better HPWL; naive doubling is fast but hurts quality",
      "two designs x three schedules; gap criterion enabled for all");

  std::printf("%-10s %-12s | %12s %8s %10s %12s\n", "design", "schedule",
              "legal HPWL", "iters", "time(s)", "final lam");
  for (uint64_t seed : {881ull, 882ull}) {
    GenParams prm;
    prm.name = "lam" + std::to_string(seed % 100);
    prm.num_cells = 6000;
    prm.seed = seed;
    prm.utilization = 0.65;
    const Netlist nl = generate_circuit(prm);

    struct Entry {
      const char* name;
      ScheduleKind kind;
      double h_factor;
    };
    const Entry entries[] = {
        {"formula12", ScheduleKind::ComplxFormula12, 1.0},
        {"simpl-ramp", ScheduleKind::SimplLinearRamp, 1.0},
        {"doubling", ScheduleKind::NaiveDoubling, 1.0},
    };
    double base = 0.0;
    for (const Entry& e : entries) {
      ComplxConfig cfg;
      cfg.schedule = e.kind;
      cfg.h_factor = e.h_factor;
      const FlowMetrics m = run_complx_flow(nl, cfg);
      if (e.kind == ScheduleKind::ComplxFormula12) base = m.legal_hpwl;
      std::printf("%-10s %-12s | %12.0f %8d %10.1f %12.3f  (%+5.2f%%)\n",
                  prm.name.c_str(), e.name, m.legal_hpwl, m.gp_iterations,
                  m.runtime_s, m.final_lambda,
                  100.0 * (m.legal_hpwl - base) / base);
    }
  }
  return 0;
}
