// Faithful replica of the pre-SoA netlist layout, for honest A/B
// measurement against the CSR/SoA hot paths.
//
// The refactor deleted this layout from the library, so the baseline the
// BENCH_scale numbers compare against is reconstructed here, bench-only,
// matching the seed's netlist.h field for field:
//   * Cell and Net carry their names inline (std::string, 32 bytes of the
//     struct even when SSO'd) — 80-byte cell records instead of 40,
//     48-byte nets instead of 16;
//   * pins are one global AoS vector of {cell, dx, dy} (24-byte records
//     mixing the id with both axis offsets — every per-axis sweep drags
//     the other axis through the cache);
//   * per-cell adjacency is vector-of-vectors (cell_nets / cell_pins),
//     two heap blocks per cell;
//   * a std::unordered_map<std::string, CellId> name index — one heap
//     node per cell, live for the whole placement run.
// Construction uses push_back with no reserve, as the old add_cell did, so
// capacity overshoot and allocator churn are reproduced too. The kernels
// below mirror the real ones' arithmetic exactly (same spring weights,
// same deposit windows) so the only measured difference is data layout.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"
#include "wl/b2b.h"

namespace complx::bench {

struct AosCell {
  std::string name;
  double width = 0.0, height = 0.0;
  double x = 0.0, y = 0.0;
  CellKind kind = CellKind::Movable;
  RegionId region = kNoRegion;
  bool flipped_x = false;
};

struct AosNet {
  std::string name;
  double weight = 1.0;
  uint32_t first_pin = 0;
  uint32_t num_pins = 0;
};

/// The historical layout: AoS records, vector-of-vectors adjacency, and the
/// always-resident name hash.
struct AosNetlist {
  std::vector<AosCell> cells;
  std::vector<AosNet> nets;
  std::vector<Pin> pins;  ///< global AoS pin array
  std::vector<std::vector<NetId>> cell_nets;
  std::vector<std::vector<PinId>> cell_pins;
  std::vector<CellId> movable;
  std::unordered_map<std::string, CellId> name_index;

  size_t memory_bytes() const {
    size_t b = cells.capacity() * sizeof(AosCell);
    for (const AosCell& c : cells)
      if (c.name.capacity() > sizeof(std::string)) b += c.name.capacity();
    b += nets.capacity() * sizeof(AosNet);
    for (const AosNet& n : nets)
      if (n.name.capacity() > sizeof(std::string)) b += n.name.capacity();
    b += pins.capacity() * sizeof(Pin);
    b += cell_nets.capacity() * sizeof(std::vector<NetId>);
    for (const auto& v : cell_nets) b += v.capacity() * sizeof(NetId);
    b += cell_pins.capacity() * sizeof(std::vector<PinId>);
    for (const auto& v : cell_pins) b += v.capacity() * sizeof(PinId);
    b += movable.capacity() * sizeof(CellId);
    // libstdc++ node-based hash: per node a next pointer, the cached hash
    // (strings are not fast-hashable) and the pair; plus the bucket array.
    constexpr size_t kNode =
        2 * sizeof(void*) +
        ((sizeof(std::pair<const std::string, CellId>) + 7) / 8) * 8;
    b += name_index.size() * kNode;
    b += name_index.bucket_count() * sizeof(void*);
    for (const auto& kv : name_index)
      if (kv.first.capacity() > sizeof(std::string)) b += kv.first.capacity();
    return b;
  }
};

/// Rebuilds the old layout from a finalized SoA netlist, reproducing the
/// historical construction pattern: per-element push_back, no reserve.
inline AosNetlist to_aos(const Netlist& nl) {
  AosNetlist aos;
  for (CellId i = 0; i < nl.num_cells(); ++i) {
    const Cell& c = nl.cell(i);
    AosCell a;
    a.name = std::string(nl.cell_name(i));
    a.width = c.width;
    a.height = c.height;
    a.x = c.x;
    a.y = c.y;
    a.kind = c.kind;
    a.region = c.region;
    a.flipped_x = c.flipped_x;
    aos.name_index.emplace(a.name, i);
    aos.cells.push_back(std::move(a));
  }
  aos.cell_nets.resize(nl.num_cells());
  aos.cell_pins.resize(nl.num_cells());
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const Net& net = nl.net(e);
    AosNet a;
    a.name = std::string(nl.net_name(e));
    a.weight = net.weight;
    a.first_pin = static_cast<uint32_t>(aos.pins.size());
    a.num_pins = net.num_pins;
    for (uint32_t k = 0; k < net.num_pins; ++k) {
      const PinId q = net.first_pin + k;
      const Pin pin = nl.pin(q);
      aos.pins.push_back(pin);
      // The historical back-reference build: push per pin, dedup nets by
      // checking the last entry (pins of a net are consecutive).
      if (aos.cell_nets[pin.cell].empty() ||
          aos.cell_nets[pin.cell].back() != e)
        aos.cell_nets[pin.cell].push_back(e);
      aos.cell_pins[pin.cell].push_back(q);
    }
    aos.nets.push_back(std::move(a));
  }
  for (CellId i = 0; i < nl.num_cells(); ++i)
    if (aos.cells[i].kind != CellKind::Fixed) aos.movable.push_back(i);
  return aos;
}

// ---- replicated kernels -----------------------------------------------------
// Arithmetic mirrors wl/b2b.cpp (build_b2b_range) and density/grid.cpp
// (parallel_deposit) so the A/B difference is layout, not math. Serial on
// purpose: both variants measure single-thread cache behaviour.

/// B2B net-model assembly over all nets on one axis: the serial body of the
/// seed's build_b2b_range, transcribed onto the AoS structures byte for
/// byte — bound-pin scan re-deriving coord() at every comparison, the
/// runtime axis select inside the lambda, degenerate-bound fixup, then
/// spring emission with the min-separation clamp. Every coord() call is a
/// 24-byte AoS Pin load plus a random position access. Returns a weight
/// checksum so the work cannot be optimized away; `springs` is the
/// caller-reused output buffer, like the workspace path in the QP builder.
inline double b2b_assembly_aos(const AosNetlist& aos,
                               const std::vector<double>& pos_x,
                               const std::vector<double>& pos_y, bool x_axis,
                               std::vector<PinSpring>& springs,
                               double min_separation = 1.0) {
  springs.clear();
  for (const AosNet& net : aos.nets) {
    const uint32_t deg = net.num_pins;
    if (deg < 2) continue;
    uint32_t lo = net.first_pin, hi = net.first_pin;
    auto coord = [&](uint32_t k) {
      const Pin& pin = aos.pins[k];
      return x_axis ? pos_x[pin.cell] + pin.dx : pos_y[pin.cell] + pin.dy;
    };
    for (uint32_t k = net.first_pin + 1; k < net.first_pin + deg; ++k) {
      if (coord(k) < coord(lo)) lo = k;
      if (coord(k) > coord(hi)) hi = k;
    }
    if (lo == hi) hi = lo == net.first_pin ? lo + 1 : net.first_pin;
    const double scale = net.weight / static_cast<double>(deg - 1);
    auto emit = [&](uint32_t a, uint32_t b) {
      const double sep =
          std::max(std::abs(coord(a) - coord(b)), min_separation);
      springs.push_back({a, b, scale / sep});
    };
    emit(lo, hi);
    for (uint32_t k = net.first_pin; k < net.first_pin + deg; ++k) {
      if (k == lo || k == hi) continue;
      emit(k, lo);
      emit(k, hi);
    }
  }
  double acc = 0.0;
  for (const PinSpring& s : springs) acc += s.weight;
  return acc;
}

/// Same assembly over the SoA/CSR layout via NetlistView — the current
/// build_b2b_range body: coord() reads the pin→cell array and ONE offset
/// array (pin_dx, never pin_dy on an x sweep), and the bound coordinates
/// ride in registers instead of being re-derived per comparison. Cached
/// bounds equal coord(bound) exactly, so the output — and the checksum
/// compared against the AoS leg — is bitwise identical.
inline double b2b_assembly_soa(const NetlistView& v,
                               const std::vector<double>& pos,
                               std::vector<PinSpring>& springs,
                               double min_separation = 1.0) {
  springs.clear();
  const double* px = pos.data();
  for (size_t e = 0; e < v.num_nets; ++e) {
    const Net& net = v.nets[e];
    const uint32_t deg = net.num_pins;
    if (deg < 2) continue;
    auto coord = [&](uint32_t k) { return px[v.pin_cell[k]] + v.pin_dx[k]; };
    uint32_t lo = net.first_pin, hi = net.first_pin;
    double lo_c = coord(net.first_pin), hi_c = lo_c;
    for (uint32_t k = net.first_pin + 1; k < net.first_pin + deg; ++k) {
      const double c = coord(k);
      if (c < lo_c) {
        lo = k;
        lo_c = c;
      }
      if (c > hi_c) {
        hi = k;
        hi_c = c;
      }
    }
    if (lo == hi) {
      hi = lo == net.first_pin ? lo + 1 : net.first_pin;
      hi_c = coord(hi);
    }
    const double scale = net.weight / static_cast<double>(deg - 1);
    auto emit = [&](uint32_t a, uint32_t b, double ca, double cb) {
      const double sep = std::max(std::abs(ca - cb), min_separation);
      springs.push_back({a, b, scale / sep});
    };
    emit(lo, hi, lo_c, hi_c);
    for (uint32_t k = net.first_pin; k < net.first_pin + deg; ++k) {
      if (k == lo || k == hi) continue;
      const double c = coord(k);
      emit(k, lo, c, lo_c);
      emit(k, hi, c, hi_c);
    }
  }
  double acc = 0.0;
  for (const PinSpring& s : springs) acc += s.weight;
  return acc;
}

/// Area deposit of all movable cells into a bins×bins grid over `core`
/// (the density build's hot loop), AoS layout (80-byte cell records).
///
/// The seed's parallel_deposit took the per-cell deposit as a
/// `const std::function&` — one type-erased indirect call per movable cell,
/// a million opaque calls per density build at scale, and an inlining wall
/// in front of the overlap arithmetic. Reproduced here (the lambda is
/// invoked through a std::function, exactly as DensityGrid::build did) so
/// the AoS leg pays what the old shipped loop paid; the SoA leg mirrors the
/// new template parallel_deposit, where the body inlines.
inline double density_deposit_aos(const AosNetlist& aos, const Rect& core,
                                  size_t bins, std::vector<double>& grid) {
  grid.assign(bins * bins, 0.0);
  const double bw = core.width() / static_cast<double>(bins);
  const double bh = core.height() / static_cast<double>(bins);
  const std::function<void(size_t, std::vector<double>&)> dep =
      [&](size_t m, std::vector<double>& f) {
        const AosCell& c = aos.cells[aos.movable[m]];
        const double xl = c.x, yl = c.y;
        const double xh = xl + c.width, yh = yl + c.height;
        const long i0 = std::max(0L, static_cast<long>((xl - core.xl) / bw));
        const long i1 = std::min(static_cast<long>(bins) - 1,
                                 static_cast<long>((xh - core.xl) / bw));
        const long j0 = std::max(0L, static_cast<long>((yl - core.yl) / bh));
        const long j1 = std::min(static_cast<long>(bins) - 1,
                                 static_cast<long>((yh - core.yl) / bh));
        for (long j = j0; j <= j1; ++j) {
          const double oy =
              std::min(yh, core.yl + static_cast<double>(j + 1) * bh) -
              std::max(yl, core.yl + static_cast<double>(j) * bh);
          for (long i = i0; i <= i1; ++i) {
            const double ox =
                std::min(xh, core.xl + static_cast<double>(i + 1) * bw) -
                std::max(xl, core.xl + static_cast<double>(i) * bw);
            if (ox > 0.0 && oy > 0.0)
              f[static_cast<size_t>(j) * bins + static_cast<size_t>(i)] +=
                  ox * oy;
          }
        }
      };
  for (size_t m = 0; m < aos.movable.size(); ++m) dep(m, grid);
  double acc = 0.0;
  for (const double g : grid) acc += g;
  return acc;
}

/// Same deposit over the SoA layout (40-byte cells, movable id array), with
/// the per-cell body inlined straight into the loop — what the template
/// parallel_deposit compiles to now that the std::function wall is gone.
inline double density_deposit_soa(const NetlistView& v, const Rect& core,
                                  size_t bins, std::vector<double>& grid) {
  grid.assign(bins * bins, 0.0);
  const double bw = core.width() / static_cast<double>(bins);
  const double bh = core.height() / static_cast<double>(bins);
  for (size_t m = 0; m < v.num_movable; ++m) {
    const Cell& c = v.cells[v.movable[m]];
    const double xl = c.x, yl = c.y;
    const double xh = xl + c.width, yh = yl + c.height;
    const long i0 = std::max(0L, static_cast<long>((xl - core.xl) / bw));
    const long i1 = std::min(static_cast<long>(bins) - 1,
                             static_cast<long>((xh - core.xl) / bw));
    const long j0 = std::max(0L, static_cast<long>((yl - core.yl) / bh));
    const long j1 = std::min(static_cast<long>(bins) - 1,
                             static_cast<long>((yh - core.yl) / bh));
    for (long j = j0; j <= j1; ++j) {
      const double oy =
          std::min(yh, core.yl + static_cast<double>(j + 1) * bh) -
          std::max(yl, core.yl + static_cast<double>(j) * bh);
      for (long i = i0; i <= i1; ++i) {
        const double ox =
            std::min(xh, core.xl + static_cast<double>(i + 1) * bw) -
            std::max(xl, core.xl + static_cast<double>(i) * bw);
        if (ox > 0.0 && oy > 0.0)
          grid[static_cast<size_t>(j) * bins + static_cast<size_t>(i)] +=
              ox * oy;
      }
    }
  }
  double acc = 0.0;
  for (const double g : grid) acc += g;
  return acc;
}

}  // namespace complx::bench
