// Section S2 reproduction: empirical self-consistency of the approximate
// feasibility projection P_C (Formula 11), checked between every two
// consecutive ComPLx iterations across both benchmark suites.
//
// Paper's numbers: self-consistent 96.0%, inconsistent 0.6% of the time;
// the sufficient condition (premise) failed 3.3% of the time, with
// inconsistencies concentrated in the first few (<5) iterations.
#include "common.h"

using namespace complx;
using namespace complx::bench;

int main() {
  const size_t scale = bench_scale_from_env(100);
  print_header(
      "SECTION S2 — self-consistency of the approximate projection P_C",
      "consistent 96.0% / inconsistent 0.6% / premise-failed 3.3%; "
      "inconsistencies only in early iterations",
      "Formula 11 checked between consecutive iterations on both suites");

  size_t checked = 0, consistent = 0, inconsistent = 0, premise_failed = 0;
  std::printf("%-10s | %8s %10s %12s %14s\n", "design", "checked",
              "consist.", "inconsist.", "premise-fail");

  auto run_suite = [&](const std::vector<SuiteEntry>& suite) {
    for (const SuiteEntry& e : suite) {
      const Netlist nl = generate_circuit(e.params);
      ComplxConfig cfg;
      ComplxPlacer placer(nl, cfg);
      const PlaceResult res = placer.place();
      const SelfConsistencyStats& s = res.self_consistency;
      std::printf("%-10s | %8zu %9.1f%% %11.1f%% %13.1f%%\n",
                  e.params.name.c_str(), s.checked,
                  100.0 * s.consistent_fraction(),
                  100.0 * s.inconsistent_fraction(),
                  100.0 * s.premise_failed_fraction());
      checked += s.checked;
      consistent += s.consistent;
      inconsistent += s.inconsistent;
      premise_failed += s.premise_failed;
    }
  };
  run_suite(ispd2005_suite(scale));
  run_suite(ispd2006_suite(scale));

  std::printf("\nOverall over %zu consecutive-iteration checks:\n", checked);
  const auto pct = [&](size_t k) {
    return 100.0 * static_cast<double>(k) /
           static_cast<double>(std::max<size_t>(checked, 1));
  };
  std::printf("  self-consistent : %5.1f%%   (paper: 96.0%%)\n",
              pct(consistent));
  std::printf("  inconsistent    : %5.1f%%   (paper:  0.6%%)\n",
              pct(inconsistent));
  std::printf("  premise failed  : %5.1f%%   (paper:  3.3%%)\n",
              pct(premise_failed));
  return 0;
}
