// Table 2 reproduction: scaled HPWL (the ISPD 2006 contest metric —
// HPWL inflated by the density-overflow penalty, penalty printed in
// parentheses) on ISPD-2006-like designs with target densities and movable
// macros.
//
// Paper's shape: ComPLx edges out the other placers on the scaled metric
// (geomean 1.00x vs 1.01x-1.03x) while keeping overflow penalties moderate.
#include "common.h"
#include "baseline/nonconvex.h"
#include "multilevel/mlplacer.h"

using namespace complx;
using namespace complx::bench;

int main() {
  const size_t scale = bench_scale_from_env(60);
  print_header(
      "TABLE 2 — ISPD 2006 analogues: scaled HPWL (x1e6), overflow % in ()",
      "ComPLx beats RQL/mPL6/NTUPlace3 by 1-3% in scaled HPWL under density "
      "targets with movable macros",
      ("synthetic ISPD-2006 analogues with the contest's target densities, "
       "scaled by 1/" +
       std::to_string(scale) +
       "; comparator families as in the paper: nonconvex analytical "
       "(NTUPlace3-like), multilevel (mPL6-like), quadratic+diffusion "
       "(RQL/FastPlace-like)")
          .c_str());

  const auto suite = ispd2006_suite(scale);
  std::printf("%-10s %7s %5s | %15s | %15s | %15s | %15s\n", "design",
              "cells", "dens", "ntupl3-like", "mpl6-like", "rql-like",
              "complx");

  std::vector<double> s_nc, s_ml, s_fp, s_def;
  std::vector<double> o_nc, o_ml, o_fp, o_def;
  for (const SuiteEntry& e : suite) {
    const Netlist nl = generate_circuit(e.params);

    // NTUPlace3 family: nonconvex LSE + density penalty (round cap keeps
    // the suite runnable; the family is ~10x slower per round anyway).
    DensityMetric nc_m;
    {
      NonconvexConfig ncfg;
      ncfg.max_rounds = 16;
      ncfg.nlcg_iterations = 45;
      NonconvexPlacer placer(nl, ncfg);
      Placement p = placer.place().placement;
      TetrisLegalizer(nl).legalize(p);
      DetailedPlacer(nl).refine(p);
      nc_m = evaluate_scaled_hpwl(nl, p);
    }

    // mPL6 family: multilevel V-cycle over ComPLx.
    DensityMetric ml_m;
    {
      MultilevelConfig mcfg;
      mcfg.coarsest_cells = 2000;
      MultilevelPlacer placer(nl, mcfg);
      Placement p = placer.place().anchors;
      TetrisLegalizer(nl).legalize(p);
      DetailedPlacer(nl).refine(p);
      ml_m = evaluate_scaled_hpwl(nl, p);
    }

    // RQL/FastPlace family: quadratic + diffusion.
    const FlowMetrics fp = run_baseline_flow(nl);

    const FlowMetrics def = run_complx_flow(nl, ComplxConfig{});

    std::printf("%-10s %7zu %5.2f | %8.3f (%5.2f) | %8.3f (%5.2f) | %8.3f "
                "(%5.2f) | %8.3f (%5.2f)\n",
                e.params.name.c_str(), nl.num_cells(), nl.target_density(),
                nc_m.scaled_hpwl / 1e6, nc_m.overflow_percent,
                ml_m.scaled_hpwl / 1e6, ml_m.overflow_percent,
                fp.scaled_hpwl / 1e6, fp.overflow_percent,
                def.scaled_hpwl / 1e6, def.overflow_percent);

    s_nc.push_back(nc_m.scaled_hpwl);
    s_ml.push_back(ml_m.scaled_hpwl);
    s_fp.push_back(fp.scaled_hpwl);
    s_def.push_back(def.scaled_hpwl);
    o_nc.push_back(nc_m.overflow_percent);
    o_ml.push_back(ml_m.overflow_percent);
    o_fp.push_back(fp.overflow_percent);
    o_def.push_back(def.overflow_percent);
  }

  auto ratio = [&](const std::vector<double>& a) {
    std::vector<double> r;
    for (size_t i = 0; i < a.size(); ++i) r.push_back(a[i] / s_def[i]);
    return geomean(r);
  };
  std::printf("\nGeomean scaled HPWL vs ComPLx (mean overflow %%):\n");
  std::printf("  NTUPL3-like (nonconvex)  : %.3fx (%.2f)\n", ratio(s_nc),
              mean(o_nc));
  std::printf("  mPL6-like (multilevel)   : %.3fx (%.2f)\n", ratio(s_ml),
              mean(o_ml));
  std::printf("  RQL-like (q+diffusion)   : %.3fx (%.2f)\n", ratio(s_fp),
              mean(o_fp));
  std::printf("  ComPLx                   : 1.000x (%.2f)\n", mean(o_def));
  std::printf("(paper: NTUPL3 1.01x(2.40), mPL6 1.03x(1.22), RQL 1.01x(2.30),"
              " ComPLx 1.00x(1.61))\n");
  return 0;
}
