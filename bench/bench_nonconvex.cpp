// Comparator — nonconvex analytical placement (APlace/NTUPlace3 family) vs
// ComPLx's convex-decomposition + global projection.
//
// Paper conclusions: "A key difference from analytical placement based on
// nonconvex optimization is the emphasis on decomposing the original
// problem into a series of convex optimizations, which enables duality and
// accelerates convergence... Avoiding local gradients also improves
// runtime (compared to APlace and NTUPlace3)."  Table 2 reports ComPLx
// 6.9x faster than NTUPlace3 at ~1% better scaled HPWL.
#include "common.h"
#include "baseline/nonconvex.h"

using namespace complx;
using namespace complx::bench;

int main() {
  print_header(
      "COMPARATOR — nonconvex analytical (LSE + density penalty) vs ComPLx",
      "ComPLx is several times faster at comparable (within a few %) "
      "quality — paper: 6.9x vs NTUPlace3 at 1.01x scaled HPWL",
      "full flow both sides (legalization + detailed placement shared)");

  std::printf("%-10s %8s | %12s %8s | %12s %8s %7s\n", "design", "cells",
              "complx HPWL", "t(s)", "nonconvex", "t(s)", "rounds");
  std::vector<double> h_ratio, t_ratio;
  for (uint64_t seed : {1601ull, 1602ull, 1603ull}) {
    GenParams prm;
    prm.name = "nc" + std::to_string(seed % 100);
    prm.num_cells = 5000;
    prm.seed = seed;
    prm.utilization = 0.65;
    const Netlist nl = generate_circuit(prm);

    Timer tc;
    const FlowMetrics cx = run_complx_flow(nl, ComplxConfig{});
    const double complx_t = tc.seconds();

    Timer tn;
    NonconvexPlacer placer(nl, {});
    const NonconvexResult nc = placer.place();
    Placement p = nc.placement;
    TetrisLegalizer(nl).legalize(p);
    DetailedPlacer(nl).refine(p);
    const double nc_t = tn.seconds();
    const double nc_hpwl = hpwl(nl, p);

    std::printf("%-10s %8zu | %12.0f %8.1f | %12.0f %8.1f %7d   "
                "(nonconvex HPWL %+5.2f%%, time %4.1fx)\n",
                prm.name.c_str(), nl.num_cells(), cx.legal_hpwl, complx_t,
                nc_hpwl, nc_t, nc.rounds,
                100.0 * (nc_hpwl - cx.legal_hpwl) / cx.legal_hpwl,
                nc_t / complx_t);
    h_ratio.push_back(nc_hpwl / cx.legal_hpwl);
    t_ratio.push_back(nc_t / complx_t);
  }
  std::printf("\nGeomean: nonconvex HPWL %.3fx, runtime %.2fx vs ComPLx "
              "(paper: NTUPlace3 1.01x scaled HPWL at 6.9x runtime).\n",
              geomean(h_ratio), geomean(t_ratio));
  return 0;
}
