// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// sparse CG solve, B2B model construction, HPWL evaluation, density-grid
// build, feasibility projection, and legalization. These back the S3
// near-linear-runtime claim at the kernel level.
#include <benchmark/benchmark.h>

#include "core/placer.h"
#include "density/grid.h"
#include "gen/generator.h"
#include "legal/tetris.h"
#include "projection/lal.h"
#include "qp/solver.h"
#include "util/parallel.h"
#include "wl/hpwl.h"
#include "wl/incremental.h"

namespace complx {
namespace {

Netlist make_circuit(size_t cells) {
  GenParams prm;
  prm.name = "micro";
  prm.num_cells = cells;
  prm.seed = 4242;
  prm.utilization = 0.65;
  return generate_circuit(prm);
}

void BM_Hpwl(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const Placement p = nl.snapshot();
  for (auto _ : state) benchmark::DoNotOptimize(hpwl(nl, p));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_pins()));
}
BENCHMARK(BM_Hpwl)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_B2bBuild(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const Placement p = nl.snapshot();
  for (auto _ : state)
    benchmark::DoNotOptimize(build_b2b(nl, p, Axis::X, {}));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_pins()));
}
BENCHMARK(BM_B2bBuild)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_QpSolve(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const VarMap vars(nl);
  Placement p = nl.snapshot();
  QpOptions opts;
  opts.b2b.min_separation = nl.average_movable_width();
  for (auto _ : state) solve_qp_iteration(nl, vars, p, nullptr, opts);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_QpSolve)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_DensityBuild(benchmark::State& state) {
  const Netlist nl = make_circuit(8000);
  const Placement p = nl.snapshot();
  DensityGrid grid(nl, static_cast<size_t>(state.range(0)),
                   static_cast<size_t>(state.range(0)));
  for (auto _ : state) grid.build(p);
}
BENCHMARK(BM_DensityBuild)->Arg(16)->Arg(64)->Arg(256);

void BM_Projection(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  // Pile placement: worst case for the projection.
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  LookAheadLegalizer lal(nl, {});
  for (auto _ : state) benchmark::DoNotOptimize(lal.project(p));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_Projection)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalVsNaiveMoveEval(benchmark::State& state) {
  // Cost of evaluating one candidate move: cached "before" + fresh "after"
  // vs two full recomputations (what a cache-less optimizer pays).
  const Netlist nl = make_circuit(8000);
  Placement p = nl.snapshot();
  IncrementalHpwl eval(nl, p);
  const auto& movable = nl.movable_cells();
  size_t k = 0;
  const bool cached = state.range(0) != 0;
  for (auto _ : state) {
    const CellId id = movable[k++ % movable.size()];
    const double old_x = p.x[id];
    double before, after;
    if (cached) {
      before = eval.incident_cost(id);
      p.x[id] = old_x + 5.0;
      after = eval.fresh_incident_cost(id);
    } else {
      before = eval.fresh_incident_cost(id);
      p.x[id] = old_x + 5.0;
      after = eval.fresh_incident_cost(id);
    }
    benchmark::DoNotOptimize(before + after);
    p.x[id] = old_x;  // reject
  }
}
BENCHMARK(BM_IncrementalVsNaiveMoveEval)
    ->Arg(0)  // naive
    ->Arg(1);  // cached

// --------------------------------------------------------------------------
// Thread-scaling benchmarks (Arg = thread count) on a 100k-cell design.
// These back the docs/BENCHMARKS.md parallel-speedup table; results are
// bitwise identical across thread counts by construction (determinism
// tests), so these measure time only.
// --------------------------------------------------------------------------

const Netlist& big_circuit() {
  static const Netlist nl = make_circuit(100000);
  return nl;
}

void BM_SpMVThreads(benchmark::State& state) {
  const Netlist& nl = big_circuit();
  static const CsrMatrix A = [&] {
    const VarMap vars(nl);
    SystemBuilder builder(nl, vars, Axis::X, nl.snapshot());
    builder.add_pin_springs(build_b2b(nl, nl.snapshot(), Axis::X, {}));
    return builder.build_matrix();
  }();
  set_global_threads(static_cast<size_t>(state.range(0)));
  Vec x(A.dim(), 1.0), y;
  for (auto _ : state) {
    A.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(A.nnz()));
  set_global_threads(0);
}
BENCHMARK(BM_SpMVThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DensityBuildThreads(benchmark::State& state) {
  const Netlist& nl = big_circuit();
  const Placement p = nl.snapshot();
  DensityGrid grid(nl, 256, 256);
  set_global_threads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) grid.build(p);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
  set_global_threads(0);
}
BENCHMARK(BM_DensityBuildThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_HpwlThreads(benchmark::State& state) {
  const Netlist& nl = big_circuit();
  const Placement p = nl.snapshot();
  set_global_threads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(hpwl(nl, p));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_pins()));
  set_global_threads(0);
}
BENCHMARK(BM_HpwlThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_B2bBuildThreads(benchmark::State& state) {
  const Netlist& nl = big_circuit();
  const Placement p = nl.snapshot();
  set_global_threads(static_cast<size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(build_b2b(nl, p, Axis::X, {}));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_pins()));
  set_global_threads(0);
}
BENCHMARK(BM_B2bBuildThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Legalize(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  ComplxConfig cfg;
  cfg.max_iterations = 25;
  const Placement anchors = ComplxPlacer(nl, cfg).place().anchors;
  TetrisLegalizer legalizer(nl);
  for (auto _ : state) {
    Placement p = anchors;
    legalizer.legalize(p);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_Legalize)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace complx

BENCHMARK_MAIN();
