// Microbenchmarks (google-benchmark) for the performance-critical kernels:
// sparse CG solve, B2B model construction, HPWL evaluation, density-grid
// build, feasibility projection, and legalization. These back the S3
// near-linear-runtime claim at the kernel level.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/placer.h"
#include "density/backend.h"
#include "density/grid.h"
#include "gen/generator.h"
#include "legal/tetris.h"
#include "linalg/sparse.h"
#include "projection/lal.h"
#include "qp/solver.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "wl/hpwl.h"
#include "wl/incremental.h"

#include "aos_baseline.h"

namespace complx {
namespace {

Netlist make_circuit(size_t cells) {
  GenParams prm;
  prm.name = "micro";
  prm.num_cells = cells;
  prm.seed = 4242;
  prm.utilization = 0.65;
  return generate_circuit(prm);
}

void BM_Hpwl(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const Placement p = nl.snapshot();
  for (auto _ : state) benchmark::DoNotOptimize(hpwl(nl, p));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_pins()));
}
BENCHMARK(BM_Hpwl)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_B2bBuild(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const Placement p = nl.snapshot();
  for (auto _ : state)
    benchmark::DoNotOptimize(build_b2b(nl, p, Axis::X, {}));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_pins()));
}
BENCHMARK(BM_B2bBuild)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_QpSolve(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const VarMap vars(nl);
  Placement p = nl.snapshot();
  QpOptions opts;
  opts.b2b.min_separation = nl.average_movable_width();
  for (auto _ : state) solve_qp_iteration(nl, vars, p, nullptr, opts);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_QpSolve)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_QpSolveWorkspace(benchmark::State& state) {
  // Same per-iteration work as BM_QpSolve, but through the placer's
  // iteration-persistent workspace: triplet/CSR/PCG/spring buffers survive
  // across iterations and the CSR sort/merge is skipped whenever the B2B
  // topology repeats (the iterate converges toward the quadratic fixed
  // point, so steady state is mostly pattern hits — reported as hit_rate).
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const VarMap vars(nl);
  Placement p = nl.snapshot();
  QpOptions opts;
  opts.b2b.min_separation = nl.average_movable_width();
  QpWorkspace ws;
  for (auto _ : state) solve_qp_iteration(nl, vars, p, nullptr, opts, &ws);
  state.counters["hit_rate"] = ws.stats.hit_rate();
  state.counters["assembly_s"] = ws.stats.assembly_s;
  state.counters["solve_s"] = ws.stats.solve_s;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_QpSolveWorkspace)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_QpSolveStableTopology(benchmark::State& state) {
  // Steady-state regime of the primal-dual loop: the linearization point is
  // frozen and only the anchor pseudonets (λ) change — diagonal + RHS, never
  // the sparsity pattern. Arg 1 selects the workspace path, which turns
  // every iteration after the first into a pattern hit; Arg 0 re-derives the
  // whole system each time. Strong anchors keep PCG short (warm start ==
  // near-solution), so assembly dominates — the regime the cache targets.
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const VarMap vars(nl);
  const Placement start = nl.snapshot();
  AnchorSet anchors(nl.num_cells());
  for (CellId id : nl.movable_cells()) {
    anchors.target_x[id] = start.x[id];
    anchors.target_y[id] = start.y[id];
    anchors.weight_x[id] = 1.0;
    anchors.weight_y[id] = 1.0;
  }
  QpOptions opts;
  opts.b2b.min_separation = nl.average_movable_width();
  const bool use_workspace = state.range(1) != 0;
  QpWorkspace ws;
  Placement p = start;
  for (auto _ : state) {
    p = start;  // same linearization point every iteration (both variants)
    solve_qp_iteration(nl, vars, p, &anchors, opts,
                       use_workspace ? &ws : nullptr);
  }
  if (use_workspace) state.counters["hit_rate"] = ws.stats.hit_rate();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_QpSolveStableTopology)
    ->Args({2000, 0})->Args({2000, 1})
    ->Args({8000, 0})->Args({8000, 1})
    ->Args({32000, 0})->Args({32000, 1})
    ->Unit(benchmark::kMillisecond);

/// Placement-shaped triplets (~8 nnz per variable: chain + random springs +
/// anchor diagonal); same seed => same pattern, so the cached path hits.
TripletList assembly_triplets(size_t n) {
  Rng rng(99);
  TripletList t(n);
  t.reserve(8 * n);
  for (size_t i = 0; i + 1 < n; ++i)
    t.add_spring(i, i + 1, rng.uniform(0.5, 2.0));
  for (size_t k = 0; k < 2 * n; ++k) {
    const size_t i = rng.uniform_index(n), j = rng.uniform_index(n);
    if (i != j) t.add_spring(i, j, rng.uniform(0.1, 1.0));
  }
  for (size_t i = 0; i < n; ++i) t.add_diag(i, rng.uniform(0.01, 0.5));
  return t;
}

void BM_CsrAssemblyFresh(benchmark::State& state) {
  // Full build every time: counting pass, per-row stable sort, merge.
  // invalidate() keeps buffer capacity, so this isolates the structural
  // work the pattern cache elides (not allocator noise).
  const TripletList t = assembly_triplets(static_cast<size_t>(state.range(0)));
  CsrAssembler a;
  for (auto _ : state) {
    a.invalidate();
    benchmark::DoNotOptimize(a.assemble(t));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(t.entries()));
}
BENCHMARK(BM_CsrAssemblyFresh)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_CsrAssemblyCached(benchmark::State& state) {
  // Pattern hit every iteration: in-place revalue replaying the recorded
  // accumulation schedule — bitwise identical to the fresh build above.
  const TripletList t = assembly_triplets(static_cast<size_t>(state.range(0)));
  CsrAssembler a;
  a.assemble(t);  // prime the pattern cache
  for (auto _ : state) benchmark::DoNotOptimize(a.assemble(t));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(t.entries()));
}
BENCHMARK(BM_CsrAssemblyCached)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_DensityBuild(benchmark::State& state) {
  const Netlist nl = make_circuit(8000);
  const Placement p = nl.snapshot();
  DensityGrid grid(nl, static_cast<size_t>(state.range(0)),
                   static_cast<size_t>(state.range(0)));
  for (auto _ : state) grid.build(p);
}
BENCHMARK(BM_DensityBuild)->Arg(16)->Arg(64)->Arg(256);

// --------------------------------------------------------------------------
// Density-backend benchmarks: one gradient evaluation per iteration through
// the DensityBackend interface, spread (bell-smoothed penalty) vs
// electrostatic (FFT Poisson solve + exact field gradient), plus the cached
// overflow meter whose per-call grid rebuild was the historical hot-path
// regression. These back the docs/BENCHMARKS.md density table.

void BM_SpreadDensityGrad(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const Placement p = nl.snapshot();
  const auto backend = make_density_backend("spread", nl, {});
  Vec gx, gy;
  for (auto _ : state)
    benchmark::DoNotOptimize(backend->value_and_grad(p, gx, gy));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_SpreadDensityGrad)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_ElectrostaticGrad(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const Placement p = nl.snapshot();
  const auto backend = make_density_backend("electrostatic", nl, {});
  Vec gx, gy;
  for (auto _ : state)
    benchmark::DoNotOptimize(backend->value_and_grad(p, gx, gy));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_ElectrostaticGrad)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_OverflowRatioCached(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const Placement p = nl.snapshot();
  const auto backend = make_density_backend("spread", nl, {});
  backend->overflow_ratio(p);  // warm the cached grid
  for (auto _ : state)
    benchmark::DoNotOptimize(backend->overflow_ratio(p));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_OverflowRatioCached)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_Projection(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  // Pile placement: worst case for the projection.
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  LookAheadLegalizer lal(nl, {});
  for (auto _ : state) benchmark::DoNotOptimize(lal.project(p));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_Projection)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// Projection fast-path benchmarks: prefix-summed density queries, the cached
// fixed-cell capacity field, and the monotone terminal-spread sweep. These
// back the docs/BENCHMARKS.md projection table.
// --------------------------------------------------------------------------

std::vector<Rect> density_query_rects(const Rect& core, size_t n) {
  Rng rng(7);
  std::vector<Rect> rects;
  rects.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    const double x0 = rng.uniform(core.xl, core.xh);
    const double x1 = rng.uniform(core.xl, core.xh);
    const double y0 = rng.uniform(core.yl, core.yh);
    const double y1 = rng.uniform(core.yl, core.yh);
    rects.push_back({std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
                     std::max(y0, y1)});
  }
  return rects;
}

void run_free_area_bench(benchmark::State& state, bool prefix) {
  const Netlist nl = make_circuit(8000);
  DensityOptions dopts;
  dopts.use_prefix_sums = prefix;
  const size_t bins = static_cast<size_t>(state.range(0));
  DensityGrid grid(nl, bins, bins, dopts);
  grid.build(nl.snapshot());
  const std::vector<Rect> rects = density_query_rects(nl.core(), 256);
  size_t k = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(grid.free_area_in(rects[k++ % rects.size()]));
}

/// Historical per-bin accumulation: O(bins covered) per query.
void BM_FreeAreaInLoop(benchmark::State& state) {
  run_free_area_bench(state, false);
}
BENCHMARK(BM_FreeAreaInLoop)->Arg(16)->Arg(64)->Arg(256);

/// Summed-area-table query: O(1) per query regardless of resolution.
void BM_FreeAreaInPrefix(benchmark::State& state) {
  run_free_area_bench(state, true);
}
BENCHMARK(BM_FreeAreaInPrefix)->Arg(16)->Arg(64)->Arg(256);

void run_project_bench(benchmark::State& state, bool cached) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  Placement p = nl.snapshot();
  const Point c = nl.core().center();
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x;
    p.y[id] = c.y;
  }
  LookAheadLegalizer lal(nl, {});
  if (cached) lal.project(p);  // prime the capacity cache
  for (auto _ : state) {
    if (!cached) lal.invalidate_grid_cache();
    benchmark::DoNotOptimize(lal.project(p));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}

/// Every call rebuilds the fixed-cell blockage scan (pre-cache behaviour).
void BM_ProjectCold(benchmark::State& state) {
  run_project_bench(state, false);
}
BENCHMARK(BM_ProjectCold)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

/// Steady-state driver regime: same grid resolution as the previous call,
/// so only the movable deposit runs.
void BM_ProjectCachedCapacity(benchmark::State& state) {
  run_project_bench(state, true);
}
BENCHMARK(BM_ProjectCachedCapacity)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_TerminalSpreadSweep(benchmark::State& state) {
  // The terminal 1-D spread over n motes: one monotone sweep over the
  // region's capacity profile (was: a fresh 40-step free_area_in bisection
  // per mote). Fresh mote copies each iteration — spreading mutates them.
  const Netlist nl = make_circuit(2000);
  const size_t n = static_cast<size_t>(state.range(0));
  const Rect core = nl.core();
  const Point c = core.center();
  Rng rng(11);
  std::vector<Mote> motes(n);
  for (size_t k = 0; k < n; ++k) {
    motes[k].x = c.x + rng.uniform(-0.1, 0.1) * core.width();
    motes[k].y = c.y + rng.uniform(-0.1, 0.1) * core.height();
    motes[k].width = nl.average_movable_width();
    motes[k].height = nl.row_height();
    motes[k].owner = static_cast<CellId>(k);
  }
  DensityGrid grid(nl, 64, 64);
  std::vector<Rect> rects;
  rects.reserve(n);
  for (const Mote& m : motes) rects.push_back(m.bounds());
  grid.build_from_rects(rects);
  SpreaderOptions opts;
  opts.terminal_motes = static_cast<int>(n) + 1;  // force the terminal path
  Spreader spreader(grid, opts);
  for (auto _ : state) {
    std::vector<Mote> work = motes;
    std::vector<Mote*> ptrs;
    ptrs.reserve(n);
    for (Mote& m : work) ptrs.push_back(&m);
    spreader.spread(core, ptrs);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_TerminalSpreadSweep)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalVsNaiveMoveEval(benchmark::State& state) {
  // Cost of evaluating one candidate move: cached "before" + fresh "after"
  // vs two full recomputations (what a cache-less optimizer pays).
  const Netlist nl = make_circuit(8000);
  Placement p = nl.snapshot();
  IncrementalHpwl eval(nl, p);
  const auto& movable = nl.movable_cells();
  size_t k = 0;
  const bool cached = state.range(0) != 0;
  for (auto _ : state) {
    const CellId id = movable[k++ % movable.size()];
    const double old_x = p.x[id];
    double before, after;
    if (cached) {
      before = eval.incident_cost(id);
      p.x[id] = old_x + 5.0;
      after = eval.fresh_incident_cost(id);
    } else {
      before = eval.fresh_incident_cost(id);
      p.x[id] = old_x + 5.0;
      after = eval.fresh_incident_cost(id);
    }
    benchmark::DoNotOptimize(before + after);
    p.x[id] = old_x;  // reject
  }
}
BENCHMARK(BM_IncrementalVsNaiveMoveEval)
    ->Arg(0)  // naive
    ->Arg(1);  // cached

// --------------------------------------------------------------------------
// AoS-vs-SoA layout benchmarks. bench/aos_baseline.h reconstructs the
// pre-refactor layout (inline names, per-net pin vectors, vector-of-vectors
// adjacency); the kernels are arithmetic-identical so the pair isolates the
// data-layout effect that BENCH_scale.json reports at the 1M-cell scale.
// --------------------------------------------------------------------------

std::vector<double> x_positions(const Netlist& nl) {
  const Placement p = nl.snapshot();
  return p.x;
}

void BM_B2bAssemblyAos(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const bench::AosNetlist aos = bench::to_aos(nl);
  const Placement snap = nl.snapshot();
  std::vector<PinSpring> springs;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        bench::b2b_assembly_aos(aos, snap.x, snap.y, true, springs));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_pins()));
}
BENCHMARK(BM_B2bAssemblyAos)->Arg(2000)->Arg(8000)->Arg(32000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_B2bAssemblySoa(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const NetlistView v = nl.view();
  const std::vector<double> pos = x_positions(nl);
  std::vector<PinSpring> springs;
  for (auto _ : state)
    benchmark::DoNotOptimize(bench::b2b_assembly_soa(v, pos, springs));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_pins()));
}
BENCHMARK(BM_B2bAssemblySoa)->Arg(2000)->Arg(8000)->Arg(32000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_DensityDepositAos(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const bench::AosNetlist aos = bench::to_aos(nl);
  std::vector<double> grid;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        bench::density_deposit_aos(aos, nl.core(), 256, grid));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_DensityDepositAos)->Arg(2000)->Arg(8000)->Arg(32000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_DensityDepositSoa(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  const NetlistView v = nl.view();
  std::vector<double> grid;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        bench::density_deposit_soa(v, nl.core(), 256, grid));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_DensityDepositSoa)->Arg(2000)->Arg(8000)->Arg(32000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_NetlistFinalize(benchmark::State& state) {
  // Generator + finalize (CSR build, movable indexing, stats). The arena
  // reservations in the generator make this allocation-light; this is the
  // per-level cost the multilevel V-cycle pays on every coarse netlist.
  const size_t cells = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    GenParams prm;
    prm.name = "micro";
    prm.num_cells = cells;
    prm.seed = 4242;
    prm.utilization = 0.65;
    Netlist nl = generate_circuit(prm);
    benchmark::DoNotOptimize(nl.num_pins());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(cells));
}
BENCHMARK(BM_NetlistFinalize)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// Thread-scaling benchmarks (Arg = thread count) on a 100k-cell design.
// These back the docs/BENCHMARKS.md parallel-speedup table; results are
// bitwise identical across thread counts by construction (determinism
// tests), so these measure time only.
// --------------------------------------------------------------------------

const Netlist& big_circuit() {
  static const Netlist nl = make_circuit(100000);
  return nl;
}

void BM_SpMVThreads(benchmark::State& state) {
  const Netlist& nl = big_circuit();
  static const CsrMatrix A = [&] {
    const VarMap vars(nl);
    const Placement snap = nl.snapshot();
    SystemBuilder builder(nl, vars, Axis::X, snap);
    builder.add_pin_springs(build_b2b(nl, snap, Axis::X, {}));
    return builder.build_matrix();
  }();
  set_global_threads(static_cast<size_t>(state.range(0)));
  Vec x(A.dim(), 1.0), y;
  for (auto _ : state) {
    A.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(A.nnz()));
  set_global_threads(0);
}
BENCHMARK(BM_SpMVThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DensityBuildThreads(benchmark::State& state) {
  const Netlist& nl = big_circuit();
  const Placement p = nl.snapshot();
  DensityGrid grid(nl, 256, 256);
  set_global_threads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) grid.build(p);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
  set_global_threads(0);
}
BENCHMARK(BM_DensityBuildThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_HpwlThreads(benchmark::State& state) {
  const Netlist& nl = big_circuit();
  const Placement p = nl.snapshot();
  set_global_threads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(hpwl(nl, p));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_pins()));
  set_global_threads(0);
}
BENCHMARK(BM_HpwlThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_B2bBuildThreads(benchmark::State& state) {
  const Netlist& nl = big_circuit();
  const Placement p = nl.snapshot();
  set_global_threads(static_cast<size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(build_b2b(nl, p, Axis::X, {}));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_pins()));
  set_global_threads(0);
}
BENCHMARK(BM_B2bBuildThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Legalize(benchmark::State& state) {
  const Netlist nl = make_circuit(static_cast<size_t>(state.range(0)));
  ComplxConfig cfg;
  cfg.max_iterations = 25;
  const Placement anchors = ComplxPlacer(nl, cfg).place().anchors;
  TetrisLegalizer legalizer(nl);
  for (auto _ : state) {
    Placement p = anchors;
    legalizer.legalize(p);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_movable()));
}
BENCHMARK(BM_Legalize)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace complx

BENCHMARK_MAIN();
