// Stability / incremental placement bench (Section S6's closing
// observation: the Figure 5 experiment "also demonstrates the stability of
// ComPLx to small netlist changes, which is important in the context of
// physical synthesis [1]").
//
// Protocol: place a design; perturb its netlist by adding 1% new nets (an
// ECO-like change); re-place (a) warm-started from the previous solution
// and (b) from scratch. Stability = small average displacement under the
// warm restart at comparable HPWL.
#include "common.h"
#include "util/rng.h"

using namespace complx;
using namespace complx::bench;

namespace {

/// Copy of `raw` with `extra` additional random 2-3 pin nets, positions
/// initialized from `positions`.
Netlist perturb(const Netlist& raw, const Placement& positions, size_t extra,
                uint64_t seed) {
  Rng rng(seed);
  Netlist nl;
  for (CellId id = 0; id < raw.num_cells(); ++id) {
    Cell c = raw.cell(id);
    if (c.movable()) {
      c.x = positions.x[id] - c.width / 2.0;
      c.y = positions.y[id] - c.height / 2.0;
    }
    nl.add_cell(c, raw.cell_name(id));
  }
  for (NetId e = 0; e < raw.num_nets(); ++e) {
    const Net& n = raw.net(e);
    std::vector<Pin> pins;
    for (uint32_t k = 0; k < n.num_pins; ++k)
      pins.push_back(raw.pin(n.first_pin + k));
    nl.add_net(raw.net_name(e), n.weight, pins);
  }
  const std::vector<CellId>& movable = raw.movable_cells();
  for (size_t k = 0; k < extra; ++k) {
    const CellId a = movable[rng.uniform_index(movable.size())];
    CellId b = movable[rng.uniform_index(movable.size())];
    if (a == b) continue;
    nl.add_net("eco" + std::to_string(k), 1.0, {{a, 0, 0}, {b, 0, 0}});
  }
  nl.set_core(raw.core());
  nl.set_target_density(raw.target_density());
  nl.finalize();
  return nl;
}

double avg_displacement(const Netlist& nl, const Placement& a,
                        const Placement& b) {
  double s = 0.0;
  for (CellId id : nl.movable_cells())
    s += std::abs(a.x[id] - b.x[id]) + std::abs(a.y[id] - b.y[id]);
  return s / static_cast<double>(nl.num_movable());
}

}  // namespace

int main() {
  print_header(
      "EXTENSION — stability under small netlist changes (S6, physical "
      "synthesis)",
      "small netlist edits should barely perturb the placement when the "
      "placer restarts from the previous solution",
      "add 1% ECO nets; warm restart vs from-scratch; displacement in row "
      "heights");

  std::printf("%-8s | %14s %14s | %12s %12s\n", "design", "warm disp(rows)",
              "cold disp(rows)", "warm HPWL", "cold HPWL");
  for (uint64_t seed : {1201ull, 1202ull, 1203ull}) {
    GenParams prm;
    prm.name = "eco" + std::to_string(seed % 100);
    prm.num_cells = 4000;
    prm.seed = seed;
    prm.utilization = 0.6;
    const Netlist base_nl = generate_circuit(prm);

    ComplxConfig cfg;
    const PlaceResult base = ComplxPlacer(base_nl, cfg).place();

    const size_t extra = base_nl.num_nets() / 100;  // 1% new nets
    const Netlist eco_nl = perturb(base_nl, base.anchors, extra, seed ^ 7);

    ComplxConfig warm_cfg = cfg;
    warm_cfg.warm_start = true;
    warm_cfg.max_iterations = 20;
    const PlaceResult warm = ComplxPlacer(eco_nl, warm_cfg).place();

    const PlaceResult cold = ComplxPlacer(eco_nl, cfg).place();

    const double rows = base_nl.row_height();
    std::printf("%-8s | %14.2f %14.2f | %12.0f %12.0f\n", prm.name.c_str(),
                avg_displacement(eco_nl, warm.anchors, base.anchors) / rows,
                avg_displacement(eco_nl, cold.anchors, base.anchors) / rows,
                hpwl(eco_nl, warm.anchors), hpwl(eco_nl, cold.anchors));
  }
  std::printf("\nShape: warm restarts keep cells within a few rows of their "
              "previous locations at comparable HPWL; from-scratch runs "
              "scatter them — the stability S6 observes.\n");
  return 0;
}
