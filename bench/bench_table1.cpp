// Table 1 reproduction: legal HPWL and total runtime on ISPD-2005-like
// designs, comparing
//   * SimPL mode        — the "best published" stand-in (SimPL is literally
//                         a special case of ComPLx; see DESIGN.md §5),
//   * FastPlace-style   — the diffusion-based baseline placer,
//   * ComPLx Finest Grid    (grid_coarsening = 1),
//   * ComPLx P_C += DP      (legalize+DP after every projection),
//   * ComPLx Default.
//
// Paper's shape to reproduce: the three ComPLx variants land within ~1% of
// each other in HPWL; Finest-Grid costs extra runtime; P_C+=DP costs far
// more runtime (26× in the paper) for marginal quality; Default is the
// fastest and at least ties the best alternative.
#include "common.h"

using namespace complx;
using namespace complx::bench;

int main() {
  const size_t scale = bench_scale_from_env(60);
  print_header(
      "TABLE 1 — ISPD 2005 analogues: legal HPWL (x1e6) and runtime (s)",
      "ComPLx default matches/beats SimPL & friends; finest-grid and "
      "per-iteration DP give only marginal quality at high runtime cost",
      ("synthetic ISPD-2005 analogues, module counts scaled by 1/" +
       std::to_string(scale) + " (COMPLX_BENCH_SCALE)")
          .c_str());

  const auto suite = ispd2005_suite(scale);
  std::printf("%-10s %8s | %10s %7s | %10s %7s | %10s %7s | %10s %7s | %10s %7s\n",
              "design", "cells", "simpl", "t(s)", "fastpl", "t(s)",
              "finest", "t(s)", "pc+dp", "t(s)", "default", "t(s)");

  std::vector<double> h_simpl, h_fp, h_finest, h_dp, h_def;
  std::vector<double> t_simpl, t_fp, t_finest, t_dp, t_def;

  for (const SuiteEntry& e : suite) {
    const Netlist nl = generate_circuit(e.params);

    ComplxConfig simpl_cfg = ComplxConfig::simpl_mode();
    const FlowMetrics simpl = run_complx_flow(nl, simpl_cfg);

    const FlowMetrics fp = run_baseline_flow(nl);

    ComplxConfig finest_cfg;
    finest_cfg.grid_coarsening = 1.0;
    const FlowMetrics finest = run_complx_flow(nl, finest_cfg);

    ComplxConfig hook_cfg;
    const FlowMetrics dp_hook = run_complx_dp_hook_flow(nl, hook_cfg);

    ComplxConfig def_cfg;
    const FlowMetrics def = run_complx_flow(nl, def_cfg);

    auto mh = [](const FlowMetrics& m) { return m.legal_hpwl / 1e6; };
    std::printf(
        "%-10s %8zu | %10.3f %7.1f | %10.3f %7.1f | %10.3f %7.1f | %10.3f "
        "%7.1f | %10.3f %7.1f\n",
        e.params.name.c_str(), nl.num_cells(), mh(simpl), simpl.runtime_s,
        mh(fp), fp.runtime_s, mh(finest), finest.runtime_s, mh(dp_hook),
        dp_hook.runtime_s, mh(def), def.runtime_s);

    h_simpl.push_back(simpl.legal_hpwl);
    h_fp.push_back(fp.legal_hpwl);
    h_finest.push_back(finest.legal_hpwl);
    h_dp.push_back(dp_hook.legal_hpwl);
    h_def.push_back(def.legal_hpwl);
    t_simpl.push_back(simpl.runtime_s);
    t_fp.push_back(fp.runtime_s);
    t_finest.push_back(finest.runtime_s);
    t_dp.push_back(dp_hook.runtime_s);
    t_def.push_back(def.runtime_s);
  }

  auto ratio = [](const std::vector<double>& a, const std::vector<double>& b) {
    std::vector<double> r;
    for (size_t i = 0; i < a.size(); ++i) r.push_back(a[i] / b[i]);
    return geomean(r);
  };
  std::printf("\nGeomean vs ComPLx-Default (HPWL | runtime):\n");
  std::printf("  SimPL mode     : %.3fx | %6.2fx\n", ratio(h_simpl, h_def),
              ratio(t_simpl, t_def));
  std::printf("  FastPlace-style: %.3fx | %6.2fx\n", ratio(h_fp, h_def),
              ratio(t_fp, t_def));
  std::printf("  Finest grid    : %.3fx | %6.2fx\n", ratio(h_finest, h_def),
              ratio(t_finest, t_def));
  std::printf("  P_C += DP      : %.3fx | %6.2fx\n", ratio(h_dp, h_def),
              ratio(t_dp, t_def));
  std::printf("  Default        : 1.000x |   1.00x\n");
  std::printf("(paper: 1.01x|1.16x finest, 1.00x|26.6x pc+dp, default "
              "1.00x|1.00x; best-published ~1.00x)\n");
  return 0;
}
