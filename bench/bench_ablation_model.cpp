// Ablation (Sections 3, S1): interconnect-model agnosticism.
//
// ComPLx's Lagrangian accepts any convex interconnect model Φ. We run the
// identical primal-dual loop with four models: linearized-quadratic B2B
// (default), linearized clique, fixed-center star, and log-sum-exp
// minimized by nonlinear CG. All must converge to comparable quality; B2B
// is expected to lead (it tracks HPWL exactly at each linearization).
#include "common.h"

using namespace complx;
using namespace complx::bench;

int main() {
  print_header(
      "ABLATION — interconnect models: B2B / clique / star / log-sum-exp",
      "any convex model plugs into the same Lagrangian (Sections 3, S1); "
      "quality is comparable across models",
      "one design, identical loop; LSE uses nonlinear CG for the primal "
      "step");

  GenParams prm;
  prm.name = "model_ablation";
  prm.num_cells = 4000;
  prm.seed = 909;
  prm.utilization = 0.6;
  const Netlist nl = generate_circuit(prm);

  std::printf("%-14s | %12s %8s %10s %8s\n", "model", "legal HPWL", "iters",
              "time(s)", "ovfl%");
  double base = 0.0;

  struct Entry {
    const char* name;
    NetModel model;
    bool lse;
  };
  const Entry entries[] = {
      {"b2b", NetModel::B2B, false},
      {"clique", NetModel::Clique, false},
      {"star", NetModel::Star, false},
      {"log-sum-exp", NetModel::B2B, true},
  };
  for (const Entry& e : entries) {
    ComplxConfig cfg;
    cfg.qp.model = e.model;
    cfg.use_lse = e.lse;
    if (e.lse) cfg.max_iterations = 80;
    const FlowMetrics m = run_complx_flow(nl, cfg);
    if (base == 0.0) base = m.legal_hpwl;
    std::printf("%-14s | %12.0f %8d %10.1f %7.2f  (%+6.2f%% vs b2b)\n",
                e.name, m.legal_hpwl, m.gp_iterations, m.runtime_s,
                m.overflow_percent, 100.0 * (m.legal_hpwl - base) / base);
  }
  return 0;
}
