// Figure 1 reproduction: progressions of L (total Lagrangian), Φ (netlist
// interconnect) and Π (L1 distance to a feasible placement) over ComPLx
// iterations on the BIGBLUE4 analogue (the largest ISPD-2005 design).
//
// Paper's shape: L increases steeply in early iterations (as λ ramps), Π
// decreases monotonically-ish, Φ gradually increases — the primal-dual
// squeeze of Section 3. Series are also written to fig1_progressions.csv.
#include "common.h"
#include "core/trace.h"

using namespace complx;
using namespace complx::bench;

int main() {
  const size_t scale = bench_scale_from_env(60);
  print_header(
      "FIGURE 1 — L, Phi, Pi progressions over ComPLx iterations (BIGBLUE4 "
      "analogue)",
      "L rises steeply early as lambda increases; Pi decreases while Phi "
      "gradually increases",
      "largest ISPD-2005 analogue; trace written to fig1_progressions.csv");

  const auto suite = ispd2005_suite(scale);
  const SuiteEntry& bb4 = suite.back();  // BIGBLUE4 analogue
  const Netlist nl = generate_circuit(bb4.params);
  std::printf("design %s (%zu cells, %zu nets)\n\n", bb4.params.name.c_str(),
              nl.num_cells(), nl.num_nets());

  ComplxConfig cfg;
  ComplxPlacer placer(nl, cfg);
  const PlaceResult res = placer.place();
  write_trace_csv("fig1_progressions.csv", res.trace);

  std::printf("%5s %12s %14s %14s %14s %8s\n", "iter", "lambda", "Phi(lower)",
              "Pi", "Lagrangian", "ovfl");
  for (const IterationStats& st : res.trace) {
    if (st.iteration % 2 != 0 && st.iteration > 10) continue;
    std::printf("%5d %12.5f %14.0f %14.0f %14.0f %8.3f\n", st.iteration,
                st.lambda, st.phi_lower, st.pi, st.lagrangian,
                st.overflow_ratio);
  }

  // Shape checks (the figure's qualitative content).
  const IterationStats& first = res.trace.front();
  const IterationStats& last = res.trace.back();
  const bool phi_increases = last.phi_lower > first.phi_lower;
  const bool pi_decreases = last.pi < 0.75 * first.pi;
  const bool lagrangian_rises = last.lagrangian > first.lagrangian;
  std::printf("\nShape: Phi increases: %s | Pi decreases: %s | L rises: %s\n",
              phi_increases ? "YES" : "NO", pi_decreases ? "YES" : "NO",
              lagrangian_rises ? "YES" : "NO");
  return 0;
}
