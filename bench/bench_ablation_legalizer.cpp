// Ablation — legalization algorithms: greedy Tetris vs minimal-movement
// Abacus clustering, on the same ComPLx anchors.
//
// The paper's flow treats legalization as part of the FastPlace-DP
// substrate; this ablation shows how much the legalizer choice matters for
// the final metrics (displacement is the quantity P_C already minimized,
// so a displacement-optimal legalizer preserves more of the projection's
// work).
#include "common.h"
#include "legal/abacus.h"

using namespace complx;
using namespace complx::bench;

int main() {
  print_header(
      "ABLATION — legalizers: Tetris (greedy) vs Abacus (min movement)",
      "legalization should preserve the anchors P_C produced; smaller "
      "displacement => smaller HPWL perturbation",
      "same global placement, two legalizers, displacement in row heights");

  std::printf("%-8s %-7s | %12s %12s | %12s %10s\n", "design", "legal",
              "avg disp", "max disp", "final HPWL", "time(s)");
  for (uint64_t seed : {1301ull, 1302ull, 1303ull}) {
    GenParams prm;
    prm.name = "lg" + std::to_string(seed % 100);
    prm.num_cells = 6000;
    prm.seed = seed;
    prm.utilization = 0.7;
    const Netlist nl = generate_circuit(prm);

    ComplxConfig cfg;
    const PlaceResult gp = ComplxPlacer(nl, cfg).place();
    const double rows = nl.row_height();

    for (int which = 0; which < 2; ++which) {
      Placement p = gp.anchors;
      Timer t;
      LegalizeResult res;
      if (which == 0) {
        res = TetrisLegalizer(nl).legalize(p);
      } else {
        res = AbacusLegalizer(nl).legalize(p);
      }
      const double lt = t.seconds();
      DetailedPlacer(nl).refine(p);
      std::printf("%-8s %-7s | %12.2f %12.1f | %12.0f %10.2f%s\n",
                  prm.name.c_str(), which == 0 ? "tetris" : "abacus",
                  res.total_displacement / rows /
                      static_cast<double>(nl.num_movable()),
                  res.max_displacement / rows, hpwl(nl, p), lt,
                  res.failed ? "  (FAILED CELLS!)" : "");
    }
  }
  return 0;
}
