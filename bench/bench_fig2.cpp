// Figure 2 reproduction: macro shredding under the feasibility projection
// on the NEWBLUE1 analogue, at an intermediate placement.
//
// Paper's picture: red macro outlines sit at the centers of gravity of
// their shred clouds (green dots), and the clouds remain array-like (the
// projection is approximately locally isometric). We quantify both:
//   * centroid alignment: |macro anchor − shred-cloud centroid|,
//   * shape fidelity: shred-cloud bbox aspect vs macro aspect.
// Shred geometry is written to fig2_shreds.csv for plotting.
#include <string_view>

#include "common.h"
#include "projection/lal.h"
#include "util/csv.h"
#include "io/svg.h"

using namespace complx;
using namespace complx::bench;

int main() {
  const size_t scale = bench_scale_from_env(60);
  print_header(
      "FIGURE 2 — macro shredding in P_C (NEWBLUE1 analogue, intermediate "
      "placement)",
      "shred clouds stay array-like; macros interpolate their shreds' mean "
      "displacement; small macro overlaps are tolerated and shrink",
      "shreds written to fig2_shreds.csv; table shows per-macro cloud stats");

  const auto suite = ispd2006_suite(scale);
  const SuiteEntry& nb1 = suite[1];  // NEWBLUE1 analogue
  const Netlist nl = generate_circuit(nb1.params);

  // Intermediate placement: stop ComPLx early (a third of usual iterations).
  ComplxConfig cfg;
  cfg.max_iterations = 12;
  cfg.min_iterations = 12;
  ComplxPlacer placer(nl, cfg);
  const PlaceResult gp = placer.place();

  // One more projection with shred export.
  ProjectionOptions popts;
  popts.gamma = nl.target_density();
  LookAheadLegalizer lal(nl, popts);
  const ProjectionResult proj = lal.project(gp.lower_bound, true);

  CsvWriter csv("fig2_shreds.csv",
                {"owner", "x", "y", "w", "h", "orig_x", "orig_y"});
  for (size_t k = 0; k < proj.shreds.size(); ++k) {
    const Mote& m = proj.shreds[k];
    csv.row(std::vector<double>{static_cast<double>(m.owner), m.x, m.y,
                                m.width, m.height, proj.shred_origins[k].x,
                                proj.shred_origins[k].y});
  }

  write_placement_svg(nl, proj.anchors, "fig2_placement.svg");
  std::printf("(placement rendered to fig2_placement.svg)\n");
  std::printf("%-8s %10s %10s | %12s %14s %12s\n", "macro", "w", "h",
              "#shreds", "centroid_err", "aspect_ratio");
  size_t macro_count = 0;
  double worst_centroid = 0.0;
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    if (!c.is_macro()) continue;
    ++macro_count;
    double sx = 0.0, sy = 0.0, xl = 1e18, xh = -1e18, yl = 1e18, yh = -1e18;
    size_t n = 0;
    for (const Mote& m : proj.shreds) {
      if (m.owner != id) continue;
      ++n;
      sx += m.x;
      sy += m.y;
      xl = std::min(xl, m.x);
      xh = std::max(xh, m.x);
      yl = std::min(yl, m.y);
      yh = std::max(yh, m.y);
    }
    if (n == 0) continue;
    const double shreds = static_cast<double>(n);
    const double cx = sx / shreds, cy = sy / shreds;
    const double centroid_err = std::abs(cx - proj.anchors.x[id]) +
                                std::abs(cy - proj.anchors.y[id]);
    worst_centroid = std::max(worst_centroid, centroid_err);
    const double cloud_aspect =
        (yh - yl) > 1e-9 ? (xh - xl) / (yh - yl) : 0.0;
    const double macro_aspect = c.width / c.height;
    const std::string_view nm = nl.cell_name(id);
    std::printf("%-8.*s %10.1f %10.1f | %12zu %14.3f %12.2f (macro %.2f)\n",
                static_cast<int>(nm.size()), nm.data(), c.width, c.height, n,
                centroid_err, cloud_aspect, macro_aspect);
  }
  std::printf("\n%zu macros; max |macro anchor - shred centroid| = %.4f "
              "(should be ~0: the anchor IS the interpolated cloud)\n",
              macro_count, worst_centroid);
  std::printf("Shape: clouds remain rectangular-ish arrays (aspect close to "
              "macro aspect) and centroids coincide with macro anchors.\n");
  return 0;
}
