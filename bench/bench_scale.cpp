// Scaling-trajectory bench behind BENCH_scale.json: builds a complx_gen
// design at --cells N in either the library's SoA/CSR layout or the
// reconstructed pre-refactor AoS layout (bench/aos_baseline.h), then times
// the two hot kernels the refactor targeted — B2B net-model assembly and
// density deposit — and reports netlist bytes plus process peak RSS.
//
//   bench_scale --cells 1000000 --layout soa [--reps 5] [--bins 512]
//
// Output is one JSON object on stdout, e.g.
//   {"layout":"soa","cells":1000000,...,"b2b_assembly_s":0.012,...}
// so scripts/run_scaling_smoke.sh can compose BENCH_scale.json from a
// series of runs. Each layout runs in its own process on purpose: VmHWM is
// a process-lifetime high-water mark, so AoS and SoA must not share one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gen/generator.h"
#include "netlist/netlist.h"
#include "util/parse_num.h"

#include "aos_baseline.h"

namespace complx {
namespace {

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Peak resident set (VmHWM) of this process in bytes; 0 if unreadable.
size_t peak_rss_bytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --cells N --layout aos|soa [--reps K] [--bins B] "
               "[--seed S]\n",
               argv0);
  return 2;
}

}  // namespace
}  // namespace complx

int main(int argc, char** argv) {
  using namespace complx;
  size_t cells = 100000, reps = 5, bins = 512;
  uint64_t seed = 4242;
  std::string layout = "soa";
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument(a + " needs a value");
        return argv[++i];
      };
      if (a == "--cells")
        cells = static_cast<size_t>(parse_int64(a, next(), 1, int64_t{1} << 32));
      else if (a == "--layout")
        layout = next();
      else if (a == "--reps")
        reps = static_cast<size_t>(parse_int64(a, next(), 1, 1000));
      else if (a == "--bins")
        bins = static_cast<size_t>(parse_int64(a, next(), 1, 1 << 14));
      else if (a == "--seed")
        seed = static_cast<uint64_t>(parse_int64(a, next(), 0, INT64_MAX));
      else
        return usage(argv[0]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_scale: %s\n", e.what());
    return 2;
  }
  if (layout != "aos" && layout != "soa") return usage(argv[0]);

  GenParams prm;
  prm.name = "scale";
  prm.num_cells = cells;
  prm.seed = seed;
  prm.utilization = 0.65;

  const double t_build0 = now_s();
  Netlist nl = generate_circuit(prm);
  const double build_s = now_s() - t_build0;

  const Placement snap = nl.snapshot();
  const std::vector<double>& pos = snap.x;
  const std::vector<double>& pos_y = snap.y;
  const Rect core = nl.core();

  double layout_s = 0.0, checksum = 0.0;
  double b2b_s = 1e300, dep_s = 1e300;  // min over reps: noise rejection
  size_t netlist_bytes = 0;
  std::vector<double> grid;
  std::vector<PinSpring> springs;

  if (layout == "aos") {
    const double t0 = now_s();
    const bench::AosNetlist aos = bench::to_aos(nl);
    layout_s = now_s() - t0;
    netlist_bytes = aos.memory_bytes();
    // Timed region reads only the AoS structures; the SoA netlist stays
    // resident (it was needed to build the replica), which only *helps*
    // AoS VmHWM look worse — so report the layout-local bytes, and peak
    // RSS as the honest upper bound for this process.
    for (size_t r = 0; r < reps; ++r) {
      const double t1 = now_s();
      checksum += bench::b2b_assembly_aos(aos, pos, pos_y, true, springs);
      b2b_s = std::min(b2b_s, now_s() - t1);
      const double t2 = now_s();
      checksum += bench::density_deposit_aos(aos, core, bins, grid);
      dep_s = std::min(dep_s, now_s() - t2);
    }
  } else {
    const double t0 = now_s();
    const NetlistView v = nl.view();
    layout_s = now_s() - t0;
    netlist_bytes = nl.memory_bytes();
    for (size_t r = 0; r < reps; ++r) {
      const double t1 = now_s();
      checksum += bench::b2b_assembly_soa(v, pos, springs);
      b2b_s = std::min(b2b_s, now_s() - t1);
      const double t2 = now_s();
      checksum += bench::density_deposit_soa(v, core, bins, grid);
      dep_s = std::min(dep_s, now_s() - t2);
    }
  }

  std::printf(
      "{\"layout\":\"%s\",\"cells\":%zu,\"nets\":%zu,\"pins\":%zu,"
      "\"reps\":%zu,\"bins\":%zu,"
      "\"build_s\":%.6f,\"layout_s\":%.6f,"
      "\"b2b_assembly_s\":%.6f,\"density_deposit_s\":%.6f,"
      "\"netlist_bytes\":%zu,\"peak_rss_bytes\":%zu,"
      "\"checksum\":%.17g}\n",
      layout.c_str(), nl.num_cells(), nl.num_nets(), nl.num_pins(), reps,
      bins, build_s, layout_s, b2b_s, dep_s, netlist_bytes, peak_rss_bytes(),
      checksum);
  return 0;
}
