// Shared harness code for the experiment benches: standard flows
// (global placement -> legalization -> detailed placement), metric
// collection and table formatting.
//
// Every bench prints a self-contained report: what the paper's artifact
// shows, what this reproduction measures, and the regenerated rows.
// Figures additionally write CSV series next to the binary.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/fastplace_style.h"
#include "core/placer.h"
#include "density/metric.h"
#include "dp/detailed.h"
#include "gen/suites.h"
#include "legal/tetris.h"
#include "util/stats.h"
#include "util/timer.h"
#include "wl/hpwl.h"

namespace complx::bench {

/// Result of one full placement flow on one design.
struct FlowMetrics {
  double legal_hpwl = 0.0;     ///< HPWL after legalization + DP
  double scaled_hpwl = 0.0;    ///< contest metric (HPWL × overflow penalty)
  double overflow_percent = 0.0;
  double runtime_s = 0.0;      ///< total flow wall time
  int gp_iterations = 0;
  double final_lambda = 0.0;
  bool legal = false;
  PlaceResult gp;  ///< raw global-placement result (trace etc.)
};

/// ComPLx flow: place -> legalize anchors -> detailed placement.
inline FlowMetrics run_complx_flow(const Netlist& nl, const ComplxConfig& cfg,
                                   bool run_dp = true) {
  Timer timer;
  FlowMetrics m;
  ComplxPlacer placer(nl, cfg);
  m.gp = placer.place();
  Placement p = m.gp.anchors;
  TetrisLegalizer(nl).legalize(p);
  if (run_dp) DetailedPlacer(nl).refine(p);
  m.runtime_s = timer.seconds();
  m.legal = TetrisLegalizer::is_legal(nl, p);
  m.legal_hpwl = hpwl(nl, p);
  const DensityMetric dm = evaluate_scaled_hpwl(nl, p);
  m.scaled_hpwl = dm.scaled_hpwl;
  m.overflow_percent = dm.overflow_percent;
  m.gp_iterations = m.gp.iterations;
  m.final_lambda = m.gp.final_lambda;
  return m;
}

/// FastPlace-style baseline flow with the same post-processing.
inline FlowMetrics run_baseline_flow(const Netlist& nl,
                                     const FastPlaceConfig& cfg = {}) {
  Timer timer;
  FlowMetrics m;
  FastPlaceStylePlacer placer(nl, cfg);
  FastPlaceResult gp = placer.place();
  Placement p = std::move(gp.placement);
  TetrisLegalizer(nl).legalize(p);
  DetailedPlacer(nl).refine(p);
  m.runtime_s = timer.seconds();
  m.legal = TetrisLegalizer::is_legal(nl, p);
  m.legal_hpwl = hpwl(nl, p);
  const DensityMetric dm = evaluate_scaled_hpwl(nl, p);
  m.scaled_hpwl = dm.scaled_hpwl;
  m.overflow_percent = dm.overflow_percent;
  m.gp_iterations = gp.iterations;
  return m;
}

/// Installs Table 1's "P_C += FastPlace-DP" behaviour: every projection
/// result is post-processed by legalization and a light detailed-placement
/// pass before being used as anchors. `nl` must outlive the placer.
inline void install_dp_hook(ComplxPlacer& placer, const Netlist& nl) {
  placer.set_post_projection_hook([&nl](Placement& anchors) {
    TetrisLegalizer(nl).legalize(anchors);
    DetailedOptions dopt;
    dopt.max_passes = 1;
    dopt.local_reorder = false;  // light pass, as a per-iteration refiner
    DetailedPlacer(nl, dopt).refine(anchors);
  });
}

inline FlowMetrics run_complx_dp_hook_flow(const Netlist& nl,
                                           const ComplxConfig& cfg) {
  Timer timer;
  FlowMetrics m;
  ComplxPlacer placer(nl, cfg);
  install_dp_hook(placer, nl);
  m.gp = placer.place();
  Placement p = m.gp.anchors;
  TetrisLegalizer(nl).legalize(p);
  DetailedPlacer(nl).refine(p);
  m.runtime_s = timer.seconds();
  m.legal = TetrisLegalizer::is_legal(nl, p);
  m.legal_hpwl = hpwl(nl, p);
  const DensityMetric dm = evaluate_scaled_hpwl(nl, p);
  m.scaled_hpwl = dm.scaled_hpwl;
  m.overflow_percent = dm.overflow_percent;
  m.gp_iterations = m.gp.iterations;
  m.final_lambda = m.gp.final_lambda;
  return m;
}

inline void print_header(const char* artifact, const char* paper_claim,
                         const char* note) {
  std::printf("\n============================================================"
              "====================\n");
  std::printf("%s\n", artifact);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("Here:  %s\n", note);
  std::printf("=============================================================="
              "==================\n");
}

}  // namespace complx::bench
