// Ablation (Section 6): grid coarsening in the feasibility projection.
//
// Paper's claim: "coarsening the grid speeds up P_C without undermining
// solution quality. Thus, no interconnect optimization during P_C is
// required" — the projection does not need to be implemented precisely.
// We sweep the coarsening factor (1 = finest grid always) on one design.
#include "common.h"

using namespace complx;
using namespace complx::bench;

int main() {
  print_header(
      "ABLATION — P_C grid coarsening sweep",
      "coarser spreading grids trade nothing measurable in HPWL for "
      "meaningful projection-runtime savings (Section 6)",
      "one ISPD-2005 analogue; coarsening factor 1 (finest) to 16");

  GenParams prm;
  prm.name = "grid_ablation";
  prm.num_cells = 8000;
  prm.seed = 777;
  prm.utilization = 0.65;
  const Netlist nl = generate_circuit(prm);

  std::printf("%12s | %12s %10s %8s %8s\n", "coarsening", "legal HPWL",
              "time(s)", "iters", "ovfl");
  double base_hpwl = 0.0;
  for (double c : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    ComplxConfig cfg;
    cfg.grid_coarsening = c;
    const FlowMetrics m = run_complx_flow(nl, cfg);
    if (c == 1.0) base_hpwl = m.legal_hpwl;
    std::printf("%12.0f | %12.0f %10.1f %8d %7.2f%%  (HPWL %+5.2f%% vs "
                "finest)\n",
                c, m.legal_hpwl, m.runtime_s, m.gp_iterations,
                m.overflow_percent,
                100.0 * (m.legal_hpwl - base_hpwl) / base_hpwl);
  }
  std::printf("\nShape: HPWL within ~1-2%% across the sweep while coarser "
              "starts run faster (paper Table 1: finest grid 1.01x HPWL at "
              "1.16x runtime).\n");
  return 0;
}
