// Ablation — the force modulation problem (paper Section 3).
//
// "Local subgradient computations leave undefined the trade-off between
// demand-distribution subgradients and the gradients of the objective
// function. This force modulation problem was articulated in [RQL], but
// addressed there with ad hoc thresholding. In contrast ... our
// subgradients point to a closest C-feasible solution, and their magnitude
// is modulated by respective distance."
//
// We run the identical ComPLx loop with three anchor-force laws:
//   * distance-normalized  w = λ/(d+ε)       (ComPLx — parameter-free)
//   * fixed spring         w = λ/ε           (force ∝ d, unbounded)
//   * thresholded spring   (RQL-style cap at T rows, for several T)
// The principled law should match or beat every hand-tuned variant, and
// the thresholded results should visibly depend on the arbitrary T.
#include "common.h"

using namespace complx;
using namespace complx::bench;

int main() {
  print_header(
      "ABLATION — anchor force modulation (Section 3's core argument)",
      "distance-normalized subgradient magnitudes need no tuning; "
      "fixed springs over-pull distant cells; thresholded springs work "
      "only with a well-chosen, instance-dependent cap",
      "same loop, same schedule; only the anchor-weight law changes");

  std::printf("%-10s %-18s | %12s %8s %8s\n", "design", "modulation",
              "legal HPWL", "iters", "ovfl%");
  std::vector<std::vector<double>> deviations(5);
  const char* scheme_names[5] = {"normalized", "fixed", "thresh T=2",
                                 "thresh T=10", "thresh T=50"};
  for (uint64_t seed : {1401ull, 1402ull, 1403ull, 1404ull}) {
    GenParams prm;
    prm.name = "mod" + std::to_string(seed % 100);
    prm.num_cells = 5000;
    prm.seed = seed;
    prm.utilization = 0.65;
    const Netlist nl = generate_circuit(prm);

    struct Entry {
      const char* name;
      AnchorModulation mod;
      double t_rows;
    };
    const Entry entries[] = {
        {"normalized", AnchorModulation::DistanceNormalized, 0.0},
        {"fixed", AnchorModulation::Fixed, 0.0},
        {"thresh T=2", AnchorModulation::Thresholded, 2.0},
        {"thresh T=10", AnchorModulation::Thresholded, 10.0},
        {"thresh T=50", AnchorModulation::Thresholded, 50.0},
    };
    double base = 0.0;
    for (const Entry& e : entries) {
      ComplxConfig cfg;
      cfg.modulation = e.mod;
      cfg.threshold_rows = e.t_rows;
      const FlowMetrics m = run_complx_flow(nl, cfg);
      if (e.mod == AnchorModulation::DistanceNormalized) base = m.legal_hpwl;
      std::printf("%-10s %-18s | %12.0f %8d %7.2f%%  (%+6.2f%%)\n",
                  prm.name.c_str(), e.name, m.legal_hpwl, m.gp_iterations,
                  m.overflow_percent,
                  100.0 * (m.legal_hpwl - base) / base);
      deviations[static_cast<size_t>(&e - entries)].push_back(
          100.0 * (m.legal_hpwl - base) / base);
    }
  }
  std::printf("\nConsistency (mean |deviation from normalized| across "
              "seeds):\n");
  for (size_t k = 1; k < 5; ++k) {
    double mad = 0.0;
    for (double d : deviations[k]) mad += std::abs(d);
    mad /= static_cast<double>(deviations[k].size());
    std::printf("  %-12s %5.2f%%\n", scheme_names[k], mad);
  }
  std::printf("Shape: the distance-normalized law is parameter-free and "
              "run-to-run consistent; springs and thresholds land a few "
              "percent off in either direction depending on the instance "
              "and the hand-picked cap — the ad-hoc-ness Section 3 calls "
              "out.\n");
  return 0;
}
