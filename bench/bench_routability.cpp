// Routability extension bench — the SimPLR/Ripple special cases the paper
// generalizes (Section 5 and the ISPD 2011 results it cites).
//
// SimPLR's trade-off on ISPD 2011: a few percent more HPWL buys a large
// congestion reduction, purely by modifying P_C (cell inflation). We run
// ComPLx with and without the routability mode on congestion-prone designs
// and report peak/average RUDY congestion plus HPWL.
#include "common.h"
#include "route/global_router.h"
#include "route/rudy.h"

using namespace complx;
using namespace complx::bench;

int main() {
  print_header(
      "EXTENSION — routability-driven mode (SimPLR/Ripple as ComPLx configs)",
      "modifying only the feasibility projection (congestion-driven cell "
      "inflation) trades a few %% HPWL for substantially lower congestion",
      "RUDY congestion, with vs without inflation, on 3 tight designs");

  std::printf("%-8s %-9s | %9s %8s %8s | %11s %9s | %12s\n", "design",
              "mode", "peak_rudy", "avg", ">1 frac", "peak_route",
              "routed_wl", "legal HPWL");

  for (uint64_t seed : {1101ull, 1102ull, 1103ull}) {
    GenParams prm;
    prm.name = "rt" + std::to_string(seed % 100);
    prm.num_cells = 5000;
    prm.seed = seed;
    prm.utilization = 0.78;  // congestion-prone
    const Netlist nl = generate_circuit(prm);

    double base_hpwl = 0.0, base_peak = 0.0;
    for (bool routed : {false, true}) {
      ComplxConfig cfg;
      cfg.routability.enabled = routed;
      // Supply calibrated so the design is routable on average and only
      // hotspots exceed capacity (the regime SimPLR targets).
      cfg.routability.rudy.supply_per_area = 0.9;
      const FlowMetrics m = run_complx_flow(nl, cfg);

      RudyOptions score;
      score.supply_per_area = 0.9;
      CongestionMap map(nl, score);
      map.build(m.gp.anchors);

      // Ground truth: actually globally route the placement.
      RouterOptions ropts;
      ropts.edge_capacity_tracks = 14.0;
      GlobalRouter router(nl, ropts);
      const RouteStats rs = router.route(m.gp.anchors);

      if (!routed) {
        base_hpwl = m.legal_hpwl;
        base_peak = map.peak_congestion();
      }
      std::printf("%-8s %-9s | %9.3f %8.3f %7.1f%% | %11.1f %9.3g | %12.0f",
                  prm.name.c_str(), routed ? "inflate" : "plain",
                  map.peak_congestion(), map.avg_congestion(),
                  100.0 * map.overcongested_fraction(1.0), rs.max_overflow,
                  rs.wirelength, m.legal_hpwl);
      if (routed) {
        std::printf("  (peak %+.1f%%, HPWL %+.2f%%)",
                    100.0 * (map.peak_congestion() - base_peak) / base_peak,
                    100.0 * (m.legal_hpwl - base_hpwl) / base_hpwl);
      }
      std::printf("\n");
    }
  }
  std::printf("\nShape: inflation lowers peak/overcongested-bin statistics "
              "at a small HPWL premium (SimPLR, ICCAD'11).\n");
  return 0;
}
