// Figure 3 / Section S3 reproduction: scalability of ComPLx — the final λ
// and the number of global placement iterations, plotted against the number
// of nets, over a size sweep.
//
// Paper's shape: neither the final λ nor the iteration count grows
// systematically with instance size (the dual variable measures a force
// balance, not problem size), and per-iteration runtime is near-linear.
// Series written to fig3_scalability.csv.
#include "common.h"
#include "util/csv.h"

using namespace complx;
using namespace complx::bench;

int main() {
  print_header(
      "FIGURE 3 / S3 — final lambda and iteration count vs number of nets",
      "final lambda stays O(1) and iteration counts do not grow with size; "
      "runtime per iteration is near-linear",
      "size sweep 1.5k..24k cells; series in fig3_scalability.csv");

  CsvWriter csv("fig3_scalability.csv",
                {"cells", "nets", "final_lambda", "iterations", "runtime_s",
                 "s_per_iter_per_knet"});

  std::printf("%8s %9s | %12s %10s %10s %18s\n", "cells", "nets",
              "final_lam", "iters", "time(s)", "ms/iter/knet");
  std::vector<double> lambdas, iters;
  double min_norm = 1e18, max_norm = 0.0;
  for (size_t cells : {1500u, 3000u, 6000u, 12000u, 24000u}) {
    GenParams prm;
    prm.name = "sweep" + std::to_string(cells);
    prm.num_cells = cells;
    prm.seed = 900 + cells;
    prm.utilization = 0.65;
    const Netlist nl = generate_circuit(prm);

    ComplxConfig cfg;
    const FlowMetrics m = run_complx_flow(nl, cfg, /*run_dp=*/false);

    const double gp_time = m.gp.runtime_s;
    const double per_iter_knet =
        1000.0 * gp_time / std::max(1, m.gp_iterations) /
        (static_cast<double>(nl.num_nets()) / 1000.0);
    std::printf("%8zu %9zu | %12.3f %10d %10.1f %18.2f\n", nl.num_cells(),
                nl.num_nets(), m.final_lambda, m.gp_iterations, gp_time,
                per_iter_knet);
    csv.row(std::vector<double>{static_cast<double>(nl.num_cells()),
                                static_cast<double>(nl.num_nets()),
                                m.final_lambda,
                                static_cast<double>(m.gp_iterations), gp_time,
                                per_iter_knet});
    lambdas.push_back(m.final_lambda);
    iters.push_back(m.gp_iterations);
    min_norm = std::min(min_norm, per_iter_knet);
    max_norm = std::max(max_norm, per_iter_knet);
  }

  // Shape check: 16x size growth; lambda and iterations should vary far
  // less than that, and normalized per-net iteration cost should be within
  // a small constant factor (near-linear runtime).
  const double lam_spread =
      *std::max_element(lambdas.begin(), lambdas.end()) /
      *std::min_element(lambdas.begin(), lambdas.end());
  const double iter_spread = *std::max_element(iters.begin(), iters.end()) /
                             *std::min_element(iters.begin(), iters.end());
  std::printf("\nShape: lambda spread %.2fx, iteration spread %.2fx over a "
              "16x size range (paper: flat);\n       per-iteration cost per "
              "net varies %.2fx (near-linear scaling).\n",
              lam_spread, iter_spread, max_norm / std::max(min_norm, 1e-12));
  return 0;
}
