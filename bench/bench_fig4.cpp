// Figure 4 / Section S5 reproduction: hard region constraints enforced
// through the feasibility projection.
//
// Paper's experiment: a region constraint is imposed on 50 cells that were
// initially placed unconstrained; the resulting ComPLx placement satisfies
// the constraint and HPWL actually improves slightly (143.55 -> 142.70).
// We run the same A/B: unconstrained vs constrained placement of the same
// 50 connected cells.
#include "common.h"
#include "projection/regions.h"
#include "io/svg.h"

using namespace complx;
using namespace complx::bench;

namespace {

/// Copy of `raw` with a hard region for `count` cells picked from one
/// cluster (cells sharing a net neighborhood, so the constraint is
/// realistic rather than a random scatter).
Netlist with_region(const Netlist& raw, size_t count, Rect box) {
  Netlist nl;
  const RegionId r = nl.add_region({"fig4", box});
  // Pick a seed cell and grow over net neighbours.
  std::vector<char> chosen(raw.num_cells(), 0);
  std::vector<CellId> frontier;
  for (CellId id : raw.movable_cells()) {
    if (!raw.cell(id).is_macro()) {
      frontier.push_back(id);
      chosen[id] = 1;
      break;
    }
  }
  size_t picked = 1;
  for (size_t f = 0; f < frontier.size() && picked < count; ++f) {
    for (NetId e : raw.nets_of_cell(frontier[f])) {
      const Net& net = raw.net(e);
      for (uint32_t k = 0; k < net.num_pins && picked < count; ++k) {
        const CellId c = raw.pin(net.first_pin + k).cell;
        if (chosen[c] || !raw.cell(c).movable() || raw.cell(c).is_macro())
          continue;
        chosen[c] = 1;
        ++picked;
        frontier.push_back(c);
      }
    }
  }
  for (CellId id = 0; id < raw.num_cells(); ++id) {
    Cell c = raw.cell(id);
    if (chosen[id]) c.region = r;
    nl.add_cell(c, raw.cell_name(id));
  }
  for (NetId e = 0; e < raw.num_nets(); ++e) {
    const Net& n = raw.net(e);
    std::vector<Pin> pins;
    for (uint32_t k = 0; k < n.num_pins; ++k)
      pins.push_back(raw.pin(n.first_pin + k));
    nl.add_net(raw.net_name(e), n.weight, pins);
  }
  nl.set_core(raw.core());
  nl.set_target_density(raw.target_density());
  nl.finalize();
  return nl;
}

}  // namespace

int main() {
  print_header(
      "FIGURE 4 / S5 — hard region constraint on 50 cells",
      "the constrained ComPLx placement satisfies the region and HPWL does "
      "not degrade (paper: 143.55 -> 142.70, a slight improvement)",
      "same design placed twice: unconstrained vs 50 cells locked to a box");

  GenParams prm;
  prm.name = "fig4";
  prm.num_cells = 4000;
  prm.seed = 404;
  prm.utilization = 0.55;
  const Netlist base = generate_circuit(prm);

  ComplxConfig cfg;
  const FlowMetrics before = run_complx_flow(base, cfg);

  // Box the region around where the 50 cells naturally land (a designer
  // boxes a logical cluster, not an arbitrary corner): centroid of the
  // first 50-cell net-connected cluster in the unconstrained placement.
  Netlist probe = with_region(base, 50, base.core());
  double cx = 0.0, cy = 0.0;
  size_t cnt = 0;
  for (CellId id : probe.movable_cells()) {
    if (probe.cell(id).region == kNoRegion) continue;
    cx += before.gp.anchors.x[id];
    cy += before.gp.anchors.y[id];
    ++cnt;
  }
  cx /= static_cast<double>(cnt);
  cy /= static_cast<double>(cnt);
  const double half = 0.12 * base.core().width();
  const Rect box = {std::max(base.core().xl, cx - half),
                    std::max(base.core().yl, cy - half),
                    std::min(base.core().xh, cx + half),
                    std::min(base.core().yh, cy + half)};
  const Netlist constrained = with_region(base, 50, box);

  const FlowMetrics after = run_complx_flow(constrained, cfg);

  // Verify the constraint on the final (legalized+refined) placement, which
  // run_complx_flow leaves in the anchors; re-check on GP anchors.
  const bool satisfied =
      regions_satisfied(constrained, after.gp.anchors, 1e-6);

  {
    SvgOptions svg;
    svg.highlight.assign(constrained.num_cells(), 0);
    for (CellId id : constrained.movable_cells())
      if (constrained.cell(id).region != kNoRegion) svg.highlight[id] = 1;
    write_placement_svg(constrained, before.gp.anchors,
                        "fig4_unconstrained.svg", svg);
    write_placement_svg(constrained, after.gp.anchors,
                        "fig4_constrained.svg", svg);
    std::printf("(before/after rendered to fig4_unconstrained.svg / "
                "fig4_constrained.svg)\n");
  }
  std::printf("unconstrained : HPWL = %12.0f (legal: %s)\n",
              before.legal_hpwl, before.legal ? "yes" : "no");
  std::printf("region on 50  : HPWL = %12.0f (legal: %s, region satisfied "
              "in GP anchors: %s)\n",
              after.legal_hpwl, after.legal ? "yes" : "no",
              satisfied ? "YES" : "NO");
  std::printf("\nHPWL ratio constrained/unconstrained = %.4f "
              "(paper: 142.70/143.55 = 0.994 — no degradation)\n",
              after.legal_hpwl / before.legal_hpwl);
  return 0;
}
