// Figure 5 / Section S6 reproduction: shortening timing-critical paths by
// net weighting, on the BIGBLUE1 analogue.
//
// Paper's protocol: run 30 global iterations to get a stable intermediate
// placement, select three critical register-to-register paths, raise the
// weights of their nets (x1 -> x20 -> x40), re-run to completion. The paths
// shrink markedly while total legal HPWL is essentially unchanged
// (94.15e6 vs 94.13e6 in the paper).
#include "common.h"
#include "timing/sta.h"
#include "timing/weighting.h"

using namespace complx;
using namespace complx::bench;

int main() {
  const size_t scale = bench_scale_from_env(60);
  print_header(
      "FIGURE 5 / S6 — critical-path net weighting (BIGBLUE1 analogue)",
      "raising selected path-net weights (1 -> 20 -> 40) straightens and "
      "shrinks those paths with no tangible total-HPWL overhead",
      "3 critical reg-to-reg paths from STA; per-weight path length + HPWL");

  const auto suite = ispd2005_suite(scale);
  Netlist nl = generate_circuit(suite[4].params);  // BIGBLUE1 analogue

  // Stable intermediate placement for path selection (paper: 30 iterations).
  ComplxConfig warm_cfg;
  warm_cfg.max_iterations = 30;
  warm_cfg.min_iterations = 30;
  const PlaceResult warm = ComplxPlacer(nl, warm_cfg).place();

  // Select three disjoint critical paths via STA.
  const std::vector<char> regs = choose_registers(nl, 0.10, 55);
  TimingGraph tg(nl, regs, {});
  std::vector<std::vector<NetId>> paths;
  std::vector<NetId> all_path_nets;
  {
    TimingReport rep = tg.analyze(warm.anchors);
    // Endpoints ordered by slack; extract a path from each until three
    // disjoint ones are collected.
    std::vector<CellId> endpoints;
    for (CellId c = 0; c < nl.num_cells(); ++c)
      if (regs[c] && nl.cell(c).movable()) endpoints.push_back(c);
    std::sort(endpoints.begin(), endpoints.end(), [&](CellId a, CellId b) {
      return rep.slack[a] < rep.slack[b];
    });
    std::vector<char> used(nl.num_cells(), 0);
    for (CellId ep : endpoints) {
      if (paths.size() >= 3) break;
      rep.worst_endpoint = ep;
      const auto path = tg.critical_path(warm.anchors, rep);
      bool fresh = path.size() >= 3;
      for (CellId c : path) fresh = fresh && !used[c];
      if (!fresh) continue;
      for (CellId c : path) used[c] = 1;
      paths.push_back(tg.path_nets(path));
      for (NetId e : paths.back()) all_path_nets.push_back(e);
    }
  }
  std::printf("selected %zu paths covering %zu nets\n\n", paths.size(),
              all_path_nets.size());

  auto path_length = [&](const Placement& p) {
    double s = 0.0;
    for (NetId e : all_path_nets) s += net_hpwl(nl, p, e);
    return s;
  };

  std::printf("%10s | %14s | %14s | %10s\n", "net weight", "path length",
              "legal HPWL", "iters");
  double base_hpwl = 0.0, base_path = 0.0;
  for (double w : {1.0, 20.0, 40.0}) {
    // Apply weights to a fresh copy of the weights.
    for (NetId e = 0; e < nl.num_nets(); ++e) nl.net(e).weight = 1.0;
    if (w != 1.0) scale_net_weights(nl, all_path_nets, w);

    // Fixed iteration budget for all three configurations so the HPWL
    // comparison isolates the weighting effect (not stopping variance).
    ComplxConfig cfg;
    cfg.max_iterations = 45;
    cfg.min_iterations = 45;
    const FlowMetrics m = run_complx_flow(nl, cfg);
    Placement final_p = m.gp.anchors;  // path length measured pre-DP too
    const double plen = path_length(final_p);
    std::printf("%10.0f | %14.0f | %14.0f | %10d\n", w, plen, m.legal_hpwl,
                m.gp_iterations);
    if (w == 1.0) {
      base_hpwl = m.legal_hpwl;
      base_path = plen;
    } else {
      std::printf("%10s   path %.1f%% of baseline, HPWL %+.2f%%\n", "",
                  100.0 * plen / base_path,
                  100.0 * (m.legal_hpwl - base_hpwl) / base_hpwl);
    }
  }
  std::printf("\n(paper: path lengths shrink visibly; HPWL 94.15e6 -> "
              "94.13e6, i.e. ~0.02%% change)\n");
  return 0;
}
