// complx_eval — score a placement: HPWL, density overflow, scaled HPWL,
// legality. Reads a Bookshelf design plus (optionally) an alternative .pl.
//
//   complx_eval <design.aux> [placement.pl]
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "bookshelf/reader.h"
#include "density/metric.h"
#include "legal/tetris.h"
#include "util/log.h"
#include "wl/hpwl.h"

using namespace complx;

namespace {

/// Overlays positions from a .pl file onto the netlist (by cell name).
void apply_pl(Netlist& nl, const std::string& pl_path) {
  // The Bookshelf reader already knows how to parse .pl; reuse it through a
  // minimal read: the reader API takes the whole file set, so parse here.
  std::FILE* f = std::fopen(pl_path.c_str(), "r");
  if (!f) throw std::runtime_error("cannot open " + pl_path);
  char name[256];
  double x, y;
  char line[1024];
  size_t applied = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (line[0] == '#' || std::strncmp(line, "UCLA", 4) == 0) continue;
    if (std::sscanf(line, "%255s %lf %lf", name, &x, &y) != 3) continue;
    const CellId id = nl.find_cell(name);
    if (id == kInvalidCell) continue;
    Cell& c = nl.cell(id);
    if (!c.movable()) continue;
    c.x = x;
    c.y = y;
    ++applied;
  }
  std::fclose(f);
  std::printf("applied %zu positions from %s\n", applied, pl_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: complx_eval <design.aux> [placement.pl]\n");
    return 1;
  }
  try {
    BookshelfDesign design = read_bookshelf(argv[1]);
    Netlist& nl = design.netlist;
    if (argc > 2) apply_pl(nl, argv[2]);

    const Placement p = nl.snapshot();
    const DensityMetric m = evaluate_scaled_hpwl(nl, p);
    std::printf("design        : %s (%zu cells, %zu nets)\n",
                design.name.c_str(), nl.num_cells(), nl.num_nets());
    std::printf("HPWL          : %.6g\n", m.hpwl);
    std::printf("weighted HPWL : %.6g\n", weighted_hpwl(nl, p));
    std::printf("overflow      : %.3f%% of movable area (target density "
                "%.2f)\n",
                m.overflow_percent, nl.target_density());
    std::printf("scaled HPWL   : %.6g\n", m.scaled_hpwl);
    std::printf("legal         : %s\n",
                TetrisLegalizer::is_legal(nl, p) ? "yes" : "no");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
