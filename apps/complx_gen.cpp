// complx_gen — emit a synthetic ISPD-style benchmark in Bookshelf format.
//
//   complx_gen --cells 10000 --out /tmp/bench --name mydesign [options]
//
// Options mirror GenParams; suites can be emitted wholesale:
//   complx_gen --suite ispd2005 --scale 60 --out /tmp/suite
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bookshelf/writer.h"
#include "gen/suites.h"
#include "util/log.h"
#include "util/parse_num.h"

using namespace complx;

namespace {
void usage() {
  std::fprintf(
      stderr,
      "usage: complx_gen [--cells n] [--seed s] [--pads n] [--macros n]\n"
      "                  [--fixed-macros n] [--utilization u] [--density g]\n"
      "                  [--name design] --out <dir>\n"
      "       complx_gen --suite ispd2005|ispd2006 [--scale k] --out <dir>\n");
}
}  // namespace

int main(int argc, char** argv) {
  GenParams params;
  params.name = "synth";
  std::string out_dir;
  std::string suite;
  size_t scale = 60;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: missing value\n", arg.c_str());
          usage();
          std::exit(1);
        }
        return argv[++i];
      };
      if (arg == "--cells")
        params.num_cells =
            static_cast<size_t>(parse_uint64(arg, next(), 1, 100000000));
      else if (arg == "--seed") params.seed = parse_uint64(arg, next());
      else if (arg == "--pads")
        params.num_pads =
            static_cast<size_t>(parse_uint64(arg, next(), 0, 1000000));
      else if (arg == "--macros")
        params.num_movable_macros =
            static_cast<size_t>(parse_uint64(arg, next(), 0, 1000000));
      else if (arg == "--fixed-macros")
        params.num_fixed_macros =
            static_cast<size_t>(parse_uint64(arg, next(), 0, 1000000));
      else if (arg == "--utilization")
        params.utilization = parse_double(arg, next(), 1e-6, 1.0);
      else if (arg == "--density")
        params.target_density = parse_double(arg, next(), 1e-6, 1.0);
      else if (arg == "--name") params.name = next();
      else if (arg == "--out") out_dir = next();
      else if (arg == "--suite") suite = next();
      else if (arg == "--scale")
        scale = static_cast<size_t>(parse_uint64(arg, next(), 1, 1000000));
      else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage();
        return 1;
      }
    }
  } catch (const ParseError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage();
    return 1;
  }
  if (out_dir.empty()) {
    usage();
    return 1;
  }
  std::filesystem::create_directories(out_dir);

  try {
    if (!suite.empty()) {
      const auto entries = suite == "ispd2005"   ? ispd2005_suite(scale)
                           : suite == "ispd2006" ? ispd2006_suite(scale)
                                                 : std::vector<SuiteEntry>{};
      if (entries.empty()) {
        std::fprintf(stderr, "unknown suite: %s\n", suite.c_str());
        return 1;
      }
      for (const SuiteEntry& e : entries) {
        const Netlist nl = generate_circuit(e.params);
        write_bookshelf(nl, out_dir, e.params.name);
        std::printf("%-12s (%s analogue): %zu cells, %zu nets -> "
                    "%s/%s.aux\n",
                    e.params.name.c_str(), e.paper_name.c_str(),
                    nl.num_cells(), nl.num_nets(), out_dir.c_str(),
                    e.params.name.c_str());
      }
      return 0;
    }
    const Netlist nl = generate_circuit(params);
    write_bookshelf(nl, out_dir, params.name);
    std::printf("%s: %zu cells, %zu nets, %zu pins -> %s/%s.aux\n",
                params.name.c_str(), nl.num_cells(), nl.num_nets(),
                nl.num_pins(), out_dir.c_str(), params.name.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
