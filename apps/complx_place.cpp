// complx_place — command-line global+detailed placement for Bookshelf
// designs.
//
//   complx_place <design.aux> [options]
//
// Options:
//   --out <file.pl>       write the final placement (default: <design>.complx.pl)
//   --target-density <g>  override the density target (0 < g <= 1)
//   --density-backend <b> density/projection model: "spread" (default; the
//                         paper's look-ahead legalization) or
//                         "electrostatic" (FFT Poisson field)
//   --simpl               run the SimPL-compatibility configuration
//   --lse                 use the log-sum-exp interconnect model
//   --max-iters <n>       global placement iteration cap
//   --time-limit <s>      wall-clock budget for global placement in seconds;
//                         on expiry the best-so-far checkpoint is used
//   --threads <n>         worker threads for the parallel kernels (default:
//                         hardware concurrency; 1 = fully serial; results
//                         are bitwise identical for any value)
//   --no-dp               skip detailed placement
//   --orient              run cell-orientation optimization after DP
//   --trace <file.csv>    dump the per-iteration L/Phi/Pi trace
//   --stats               print the QP workspace breakdown (assembly vs
//                         solve wall time, sparsity-pattern hit rate, CG
//                         iteration totals)
//   --svg <file.svg>      render the final placement
//   --seed-quiet          lower log verbosity
//   --snapshot <file>     experience store (io/experience.h): a crash-safe
//                         binary snapshot of converged placements keyed by
//                         netlist hash
//   --warm-start          probe the store; on an exact or topology hit the
//                         solver resumes from the stored placement
//   --save-experience     record this run's converged placement back
//   --ml-threshold <n>    movable-cell count at which the multilevel
//                         V-cycle replaces flat placement (default 1000000;
//                         0 forces multilevel, a huge value forces flat)
//   --eco-window <xl,yl,xh,yh>
//                         incremental (ECO) mode: re-place ONLY the movable
//                         cells whose centers lie inside the window,
//                         holding every other cell bitwise fixed; reads the
//                         incoming .pl positions as the baseline, skips
//                         legalization/DP, writes the updated placement
//
// Exit-code contract (see README "Failure modes & exit codes"):
//   0    success — including time-limited runs that returned the best-so-far
//        checkpoint instead of a converged placement
//   1    usage error (bad flags / missing arguments)
//   2    fatal error: unreadable or malformed input, I/O failure, or
//        legalization failure
//   3    numerical divergence: the watchdog exhausted its recovery retries;
//        the best-so-far placement is still written before exiting
//   4    degraded experience store: the placement SUCCEEDED and was written,
//        but the snapshot store was corrupt on load (quarantined to
//        <file>.corrupt, run proceeded cold) or could not be saved
//   130  interrupted (SIGINT); the best-so-far placement is written first
// complx-lint: allow(P1): the SIGINT flag must be async-signal-safe; a plain
// bool or anything mutex-based would be UB inside a signal handler.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bookshelf/reader.h"
#include "bookshelf/writer.h"
#include "core/eco.h"
#include "core/placer.h"
#include "multilevel/auto.h"
#include "io/experience.h"
#include "util/parse_num.h"
#include "core/trace.h"
#include "density/metric.h"
#include "dp/detailed.h"
#include "dp/orientation.h"
#include "io/svg.h"
#include "legal/tetris.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "wl/hpwl.h"

using namespace complx;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: complx_place <design.aux> [--out f.pl] "
               "[--target-density g] [--density-backend spread|electrostatic] "
               "[--simpl] [--lse] [--max-iters n] "
               "[--time-limit s] [--threads n] [--no-dp] [--orient] "
               "[--trace f.csv] [--stats] [--svg f.svg] [--quiet] "
               "[--snapshot store.snap [--warm-start] [--save-experience]] "
               "[--ml-threshold n] [--eco-window xl,yl,xh,yh]\n");
}

// SIGINT raises the cooperative cancel flag; the placer stops at the next
// iteration boundary and returns its best-so-far checkpoint, which main()
// writes out before exiting 130. A second ^C kills the process the default
// way (the handler restores SIG_DFL).
// complx-lint: allow(P1): set from the SIGINT handler, read by the placer's
// cooperative cancel hook; control flow only, never numeric data.
std::atomic<bool> g_interrupted{false};

void handle_sigint(int) {
  // complx-lint: allow(P1): relaxed is enough — a single flag, one writer
  // (the handler), polled at iteration boundaries.
  g_interrupted.store(true, std::memory_order_relaxed);
  std::signal(SIGINT, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  std::string aux_path;
  std::string out_path;
  std::string trace_path;
  std::string svg_path;
  std::string snapshot_path;
  std::string density_backend = "spread";
  double target_density = 0.0;
  bool simpl = false, lse = false, run_dp = true, quiet = false;
  bool orient = false, stats = false;
  bool warm_start = false, save_experience = false;
  std::string eco_window_arg;
  int64_t ml_threshold = 1000000;
  int max_iters = 0;
  int threads = 0;
  double time_limit = 0.0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: missing value\n", arg.c_str());
          usage();
          std::exit(1);
        }
        return argv[++i];
      };
      if (arg == "--out") out_path = next();
      else if (arg == "--target-density")
        target_density = parse_double(arg, next(), 1e-6, 1.0);
      else if (arg == "--density-backend") density_backend = next();
      else if (arg == "--simpl") simpl = true;
      else if (arg == "--lse") lse = true;
      else if (arg == "--max-iters")
        max_iters = static_cast<int>(parse_int64(arg, next(), 1, 1000000));
      else if (arg == "--time-limit")
        time_limit = parse_double(arg, next(), 0.0);
      else if (arg == "--threads")
        threads = static_cast<int>(parse_int64(arg, next(), 0, 65536));
      else if (arg == "--no-dp") run_dp = false;
      else if (arg == "--orient") orient = true;
      else if (arg == "--trace") trace_path = next();
      else if (arg == "--stats") stats = true;
      else if (arg == "--svg") svg_path = next();
      else if (arg == "--quiet") quiet = true;
      else if (arg == "--snapshot") snapshot_path = next();
      else if (arg == "--warm-start") warm_start = true;
      else if (arg == "--save-experience") save_experience = true;
      else if (arg == "--ml-threshold")
        ml_threshold = parse_int64(arg, next(), 0, int64_t{1} << 40);
      else if (arg == "--eco-window") eco_window_arg = next();
      else if (arg[0] == '-') {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage();
        return 1;
      } else {
        aux_path = arg;
      }
    }
  } catch (const ParseError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage();
    return 1;
  }
  if (aux_path.empty()) {
    usage();
    return 1;
  }
  if ((warm_start || save_experience) && snapshot_path.empty()) {
    std::fprintf(stderr,
                 "--warm-start/--save-experience require --snapshot\n");
    usage();
    return 1;
  }
  {
    bool known = false;
    for (const std::string& n : projection_backend_names())
      known = known || n == density_backend;
    if (!known) {
      std::fprintf(stderr, "unknown --density-backend: %s\n",
                   density_backend.c_str());
      usage();
      return 1;
    }
  }
  set_log_level(quiet ? LogLevel::Warn : LogLevel::Info);
  set_global_threads(static_cast<size_t>(threads));

  try {
    Timer total;
    BookshelfDesign design = read_bookshelf(aux_path);
    Netlist& nl = design.netlist;
    if (target_density > 0.0) nl.set_target_density(target_density);
    std::printf("%s: %zu cells (%zu movable), %zu nets, %zu pins, "
                "density target %.2f\n",
                design.name.c_str(), nl.num_cells(), nl.num_movable(),
                nl.num_nets(), nl.num_pins(), nl.target_density());

    ComplxConfig cfg = simpl ? ComplxConfig::simpl_mode() : ComplxConfig{};
    cfg.use_lse = lse;
    cfg.density_backend = density_backend;
    if (max_iters > 0) cfg.max_iterations = max_iters;
    if (time_limit > 0.0) cfg.time_limit_s = time_limit;
    cfg.cancel = &g_interrupted;
    std::signal(SIGINT, handle_sigint);

    // Experience store: corruption on load is NOT fatal — open() quarantines
    // the damaged file and degrades to a cold start; main() reports it as
    // exit code 4 after the placement has been produced and written.
    std::unique_ptr<ExperienceStore> experience;
    if (!snapshot_path.empty()) {
      ExperienceStore::Options eo;
      eo.path = snapshot_path;
      experience = std::make_unique<ExperienceStore>(eo);
      const SnapshotError load_err = experience->open();
      if (load_err != SnapshotError::None)
        std::fprintf(stderr,
                     "warning: experience store %s is corrupt (%s); "
                     "continuing with a cold start\n",
                     snapshot_path.c_str(), to_string(load_err));
      if (warm_start) cfg.experience = experience.get();
    }

    if (!eco_window_arg.empty()) {
      Rect window;
      if (std::sscanf(eco_window_arg.c_str(), "%lf,%lf,%lf,%lf", &window.xl,
                      &window.yl, &window.xh, &window.yh) != 4 ||
          window.xh < window.xl || window.yh < window.yl) {
        std::fprintf(stderr, "bad --eco-window (want xl,yl,xh,yh): %s\n",
                     eco_window_arg.c_str());
        return 1;
      }
      EcoOptions eopts;
      eopts.window = window;
      eopts.config = cfg;
      const EcoResult eco = eco_replace(nl, eopts);
      const Placement after = nl.snapshot();
      std::printf("eco: %zu dirty / %zu frozen movables%s, %d iterations "
                  "(%s), HPWL %.6g, %.1fs total\n",
                  eco.dirty_cells, eco.frozen_cells,
                  eco.full_solve ? " (full solve)" : "", eco.place.iterations,
                  to_string(eco.place.stop), hpwl(nl, after),
                  total.seconds());
      if (eco.place.failed) {
        std::fprintf(stderr, "error: %s\n", eco.place.failure.c_str());
        return 3;
      }
      if (out_path.empty()) {
        out_path = aux_path;
        const size_t dot = out_path.find_last_of('.');
        if (dot != std::string::npos) out_path.resize(dot);
        out_path += ".complx.pl";
      }
      write_pl(nl, after, out_path);
      std::printf("placement written to %s\n", out_path.c_str());
      return 0;
    }

    AutoPlaceOptions aopts;
    aopts.multilevel_threshold = static_cast<size_t>(ml_threshold);
    AutoPlaceResult auto_result = place_auto(nl, cfg, aopts);
    PlaceResult gp = std::move(auto_result.place);
    if (auto_result.used_multilevel) {
      // The V-cycle has no single solver trace; surface its shape instead
      // and let the shared reporting below run on the final anchors.
      gp.anchors = auto_result.anchors;
      gp.lower_bound = auto_result.anchors;
      std::printf("multilevel: %d level(s),", auto_result.levels);
      for (const size_t cells : auto_result.level_sizes)
        std::printf(" %zu", cells);
      std::printf(" cells, %.1fs\n", auto_result.runtime_s);
    }
    if (gp.warm_started)
      std::printf("warm start: resumed from experience store %s\n",
                  snapshot_path.c_str());
    std::printf("global placement: %d iterations (%s), lambda %.3f, "
                "overflow %.1f%%, HPWL(lb/ub) %.4g / %.4g\n",
                gp.iterations, to_string(gp.stop), gp.final_lambda,
                100.0 * gp.final_overflow, hpwl(nl, gp.lower_bound),
                hpwl(nl, gp.anchors));
    std::printf("solver: %zu solves (%zu non-converged, %zu breakdowns), "
                "%d recoveries, %zu health faults\n",
                gp.solver.solves, gp.solver.nonconverged,
                gp.solver.breakdowns, gp.recovered, gp.health.faults);
    if (stats) {
      const SolverStats& s = gp.solver;
      const size_t assemblies = s.pattern_hits + s.pattern_misses;
      std::printf("qp workspace: assembly %.3fs, solve %.3fs, "
                  "pattern hits %zu/%zu (%.1f%% hit rate)\n",
                  s.assembly_s, s.solve_s, s.pattern_hits, assemblies,
                  assemblies == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(s.pattern_hits) /
                            static_cast<double>(assemblies));
      std::printf("cg: %zu iterations total (%.1f per solve), "
                  "worst residual %.3g\n",
                  s.total_cg_iterations,
                  s.solves == 0 ? 0.0
                                : static_cast<double>(s.total_cg_iterations) /
                                      static_cast<double>(s.solves),
                  s.worst_residual);
      std::printf("projection: %zu calls, grid build %.3fs, region find "
                  "%.3fs, spread %.3fs, readback %.3fs\n",
                  s.projections, s.proj_grid_build_s, s.proj_region_find_s,
                  s.proj_spread_s, s.proj_readback_s);
    }
    if (gp.stop == StopReason::Plateau)
      std::printf("warm start: plateaued at resumed quality; keeping "
                  "best-so-far checkpoint from iteration %d\n",
                  gp.best_iteration);
    else if (gp.stop != StopReason::Converged)
      std::fprintf(stderr,
                   "warning: stopped early (%s); using best-so-far "
                   "checkpoint from iteration %d\n",
                   to_string(gp.stop), gp.best_iteration);
    if (gp.failed)
      std::fprintf(stderr, "error: %s\n", gp.failure.c_str());
    if (!trace_path.empty()) write_trace_csv(trace_path, gp.trace);

    Placement p = gp.anchors;
    const LegalizeResult legal = TetrisLegalizer(nl).legalize(p);
    if (legal.failed) {
      std::fprintf(stderr, "legalization failed for %zu cells\n",
                   legal.failed);
      return 2;
    }
    // After ^C the user wants the checkpoint on disk, not minutes of DP.
    if (gp.stop == StopReason::Cancelled) run_dp = orient = false;
    if (run_dp) {
      const DetailedResult dp = DetailedPlacer(nl).refine(p);
      std::printf("detailed placement: %.4g -> %.4g\n", dp.initial_hpwl,
                  dp.final_hpwl);
    }
    if (orient) {
      const OrientationResult orient_res = optimize_orientation(nl, p);
      std::printf("orientation: %zu cells flipped, HPWL %.4g -> %.4g\n",
                  orient_res.flipped, orient_res.initial_hpwl,
                  orient_res.final_hpwl);
    }

    const DensityMetric metric = evaluate_scaled_hpwl(nl, p);
    std::printf("final: HPWL %.6g, scaled HPWL %.6g (overflow %.2f%%), "
                "legal: %s, %.1fs total\n",
                metric.hpwl, metric.scaled_hpwl, metric.overflow_percent,
                TetrisLegalizer::is_legal(nl, p) ? "yes" : "NO",
                total.seconds());

    if (out_path.empty()) {
      out_path = aux_path;
      const size_t dot = out_path.find_last_of('.');
      if (dot != std::string::npos) out_path.resize(dot);
      out_path += ".complx.pl";
    }
    write_pl(nl, p, out_path);
    std::printf("placement written to %s\n", out_path.c_str());
    if (!svg_path.empty()) {
      write_placement_svg(nl, p, svg_path);
      std::printf("svg written to %s\n", svg_path.c_str());
    }
    // Record the best usable global placement (the anchors a warm start
    // resumes from) — converged, plateaued, or iteration-capped with its
    // best-so-far checkpoint. A save failure marks the store degraded,
    // never aborts.
    if (experience && save_experience && !gp.failed &&
        (gp.stop == StopReason::Converged ||
         gp.stop == StopReason::Plateau ||
         gp.stop == StopReason::MaxIterations)) {
      if (experience->record(nl, gp.anchors, weighted_hpwl(nl, gp.anchors),
                             gp.iterations))
        std::printf("experience saved to %s (%zu record(s))\n",
                    snapshot_path.c_str(), experience->size());
    }

    // Exit-code contract: the best-so-far placement has been written by the
    // time these non-zero codes are returned. Degraded store (4) ranks
    // below divergence (3) and interruption (130) — those already imply the
    // run itself went wrong.
    if (gp.failed) return 3;
    if (gp.stop == StopReason::Cancelled) return 130;
    if (experience && experience->degraded()) {
      std::fprintf(stderr, "warning: experience store degraded: %s\n",
                   experience->degraded_reason().c_str());
      return 4;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
