// complx_fleet — run the known-optimum (PEKO) benchmark fleet and emit the
// per-design suboptimality records as machine-readable JSON.
//
//   complx_fleet --preset smoke --out run.json [options]
//
// Options:
//   --preset gate|smoke   design list (gate: 20 tiny designs for the ctest
//                         gate; smoke: 36 designs across size/density/macro
//                         axes — the BENCH_quality.json trajectory entry)
//   --out <file.json>     where to write the run (default: fleet_run.json)
//   --label <name>        run label recorded in the JSON (default: preset)
//   --seed <s>            base seed for the design list (default: 1)
//   --max-iters <n>       global-placement iteration cap (default: 60);
//                         lowering this is the canonical "deliberately
//                         degraded candidate" for gate self-tests
//   --threads <n>         worker threads (default: 1 — deterministic anyway,
//                         but 1 keeps CI containers honest)
//   --no-dp               skip detailed placement
//   --no-timing           record wall_s = 0 (bitwise-deterministic output)
//   --quiet               per-design progress off
//
// The paired quality gate consumes two of these runs:
//   complx_fleet --preset gate --out baseline.json
//   complx_fleet --preset gate --out cand.json [--max-iters ...]
//   python3 scripts/quality_gate.py compare --baseline baseline.json
//       --candidate cand.json
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/fleet.h"
#include "util/log.h"
#include "util/parallel.h"

using namespace complx;

namespace {
void usage() {
  std::fprintf(stderr,
               "usage: complx_fleet [--preset gate|smoke] [--out f.json] "
               "[--label name] [--seed s] [--max-iters n] [--threads n] "
               "[--no-dp] [--no-timing] [--quiet]\n");
}
}  // namespace

int main(int argc, char** argv) {
  std::string preset_name = "smoke";
  std::string out_path = "fleet_run.json";
  std::string label;
  uint64_t base_seed = 1;
  FleetRunOptions opts;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--preset") preset_name = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--label") label = next();
    else if (arg == "--seed") base_seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--max-iters") opts.max_iterations = std::atoi(next());
    else if (arg == "--threads")
      opts.threads = std::strtoul(next(), nullptr, 10);
    else if (arg == "--no-dp") opts.detailed = false;
    else if (arg == "--no-timing") opts.record_timing = false;
    else if (arg == "--quiet") quiet = true;
    else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 1;
    }
  }
  FleetPreset preset;
  if (preset_name == "gate") preset = FleetPreset::Gate;
  else if (preset_name == "smoke") preset = FleetPreset::Smoke;
  else {
    std::fprintf(stderr, "unknown preset: %s\n", preset_name.c_str());
    usage();
    return 1;
  }
  if (opts.max_iterations < 1) {
    std::fprintf(stderr, "--max-iters must be >= 1\n");
    return 1;
  }
  if (label.empty()) label = preset_name;
  set_log_level(LogLevel::Warn);
  set_global_threads(opts.threads);

  try {
    const std::vector<PekoParams> designs = fleet_designs(preset, base_seed);
    std::vector<FleetRecord> records;
    records.reserve(designs.size());
    for (size_t k = 0; k < designs.size(); ++k) {
      records.push_back(run_fleet_design(designs[k], opts));
      const FleetRecord& r = records.back();
      if (!quiet)
        std::printf("[%2zu/%zu] %-28s ratio %.4f  overflow %5.2f%%  "
                    "%s  %.2fs\n",
                    k + 1, designs.size(), r.name.c_str(), r.ratio,
                    r.overflow_percent, r.legal ? "legal" : "ILLEGAL",
                    r.wall_s);
    }
    write_fleet_run_json(out_path, label, preset_name, opts, records);
    const FleetSummary s = summarize_fleet(records);
    std::printf("%zu designs: geomean ratio %.4f, max %.4f, "
                "mean overflow %.2f%%, %zu illegal, %.1fs -> %s\n",
                s.designs, s.geomean_ratio, s.max_ratio,
                s.mean_overflow_percent, s.illegal, s.total_wall_s,
                out_path.c_str());
    // Illegal results mean the ratio lost its >= 1 certificate; callers
    // (CI, the gate) must be able to trust every record.
    return s.illegal == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
