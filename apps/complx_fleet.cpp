// complx_fleet — run the known-optimum (PEKO) benchmark fleet and emit the
// per-design suboptimality records as machine-readable JSON.
//
//   complx_fleet --preset smoke --out run.json [options]
//
// Options:
//   --preset gate|smoke   design list (gate: 20 tiny designs for the ctest
//                         gate; smoke: 36 designs across size/density/macro
//                         axes — the BENCH_quality.json trajectory entry)
//   --out <file.json>     where to write the run (default: fleet_run.json);
//                         the write is atomic (temp + fsync + rename)
//   --label <name>        run label recorded in the JSON (default: preset)
//   --seed <s>            base seed for the design list (default: 1)
//   --max-iters <n>       global-placement iteration cap (default: 60);
//                         lowering this is the canonical "deliberately
//                         degraded candidate" for gate self-tests
//   --density-backend <b> density/projection model: "spread" (default) or
//                         "electrostatic" — the ablation axis recorded in
//                         the run's config block
//   --threads <n>         worker threads (default: 1 — deterministic anyway,
//                         but 1 keeps CI containers honest)
//   --no-dp               skip detailed placement
//   --no-timing           record wall_s = 0 (bitwise-deterministic output)
//   --quiet               per-design progress off
//   --snapshot <file>     experience store shared by all designs in the run
//   --warm-start          probe the store before each design's cold bootstrap
//   --save-experience     record each converged global placement back
//
// The paired quality gate consumes two of these runs:
//   complx_fleet --preset gate --out baseline.json
//   complx_fleet --preset gate --out cand.json [--max-iters ...]
//   python3 scripts/quality_gate.py compare --baseline baseline.json
//       --candidate cand.json
// and the warm-start gate pairs a cold --save-experience run with a
// subsequent --warm-start rerun (quality_gate.py warm).
//
// Exit-code contract (mirrors complx_place):
//   0    success (all records legal)
//   1    usage error
//   2    fatal error or illegal records
//   4    degraded experience store (fleet itself succeeded)
//   130  interrupted (SIGINT); records completed so far are written first
// complx-lint: allow(P1): the SIGINT flag must be async-signal-safe; a plain
// bool or anything mutex-based would be UB inside a signal handler.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "gen/fleet.h"
#include "io/experience.h"
#include "projection/backend.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/parse_num.h"

using namespace complx;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: complx_fleet [--preset gate|smoke] [--out f.json] "
               "[--label name] [--seed s] [--max-iters n] "
               "[--density-backend spread|electrostatic] [--threads n] "
               "[--no-dp] [--no-timing] [--quiet] "
               "[--snapshot store.snap [--warm-start] [--save-experience]]\n");
}

// SIGINT raises the cooperative cancel flag; the current design's placer
// stops at the next iteration boundary, the fleet loop stops at the next
// design boundary, and the records completed so far are still written out
// before exiting 130. A second ^C kills the process the default way.
// complx-lint: allow(P1): set from the SIGINT handler, polled at design and
// iteration boundaries; control flow only, never numeric data.
std::atomic<bool> g_interrupted{false};

void handle_sigint(int) {
  // complx-lint: allow(P1): relaxed is enough — a single flag, one writer
  // (the handler), polled at loop boundaries.
  g_interrupted.store(true, std::memory_order_relaxed);
  std::signal(SIGINT, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset_name = "smoke";
  std::string out_path = "fleet_run.json";
  std::string label;
  std::string snapshot_path;
  uint64_t base_seed = 1;
  FleetRunOptions opts;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: missing value\n", arg.c_str());
          usage();
          std::exit(1);
        }
        return argv[++i];
      };
      if (arg == "--preset") preset_name = next();
      else if (arg == "--out") out_path = next();
      else if (arg == "--label") label = next();
      else if (arg == "--seed") base_seed = parse_uint64(arg, next());
      else if (arg == "--max-iters")
        opts.max_iterations =
            static_cast<int>(parse_int64(arg, next(), 1, 1000000));
      else if (arg == "--density-backend") opts.density_backend = next();
      else if (arg == "--threads")
        opts.threads =
            static_cast<size_t>(parse_uint64(arg, next(), 0, 65536));
      else if (arg == "--no-dp") opts.detailed = false;
      else if (arg == "--no-timing") opts.record_timing = false;
      else if (arg == "--quiet") quiet = true;
      else if (arg == "--snapshot") snapshot_path = next();
      else if (arg == "--warm-start") opts.warm_start = true;
      else if (arg == "--save-experience") opts.save_experience = true;
      else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
        usage();
        return 1;
      }
    }
  } catch (const ParseError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    usage();
    return 1;
  }
  FleetPreset preset;
  if (preset_name == "gate") preset = FleetPreset::Gate;
  else if (preset_name == "smoke") preset = FleetPreset::Smoke;
  else {
    std::fprintf(stderr, "unknown preset: %s\n", preset_name.c_str());
    usage();
    return 1;
  }
  if ((opts.warm_start || opts.save_experience) && snapshot_path.empty()) {
    std::fprintf(stderr,
                 "--warm-start/--save-experience require --snapshot\n");
    usage();
    return 1;
  }
  {
    bool known = false;
    for (const std::string& n : projection_backend_names())
      known = known || n == opts.density_backend;
    if (!known) {
      std::fprintf(stderr, "unknown --density-backend: %s\n",
                   opts.density_backend.c_str());
      usage();
      return 1;
    }
  }
  if (label.empty()) label = preset_name;
  set_log_level(LogLevel::Warn);
  set_global_threads(opts.threads);
  opts.cancel = &g_interrupted;
  std::signal(SIGINT, handle_sigint);

  try {
    // Corruption on load degrades to cold starts (exit 4 at the end), it
    // never aborts the fleet; the damaged file is quarantined by open().
    std::unique_ptr<ExperienceStore> experience;
    if (!snapshot_path.empty()) {
      ExperienceStore::Options eo;
      eo.path = snapshot_path;
      experience = std::make_unique<ExperienceStore>(eo);
      const SnapshotError load_err = experience->open();
      if (load_err != SnapshotError::None)
        std::fprintf(stderr,
                     "warning: experience store %s is corrupt (%s); "
                     "continuing with cold starts\n",
                     snapshot_path.c_str(), to_string(load_err));
      opts.experience = experience.get();
    }

    const std::vector<PekoParams> designs = fleet_designs(preset, base_seed);
    std::vector<FleetRecord> records;
    records.reserve(designs.size());
    bool interrupted = false;
    for (size_t k = 0; k < designs.size(); ++k) {
      // complx-lint: allow(P1): relaxed poll of the SIGINT flag between
      // designs; control flow only.
      if (g_interrupted.load(std::memory_order_relaxed)) {
        interrupted = true;
        std::fprintf(stderr, "interrupted after %zu/%zu designs\n", k,
                     designs.size());
        break;
      }
      records.push_back(run_fleet_design(designs[k], opts));
      const FleetRecord& r = records.back();
      if (!quiet)
        std::printf("[%2zu/%zu] %-28s ratio %.4f  overflow %5.2f%%  "
                    "%s  %d iters%s  %.2fs\n",
                    k + 1, designs.size(), r.name.c_str(), r.ratio,
                    r.overflow_percent, r.legal ? "legal" : "ILLEGAL",
                    r.iterations, r.warm_started ? " (warm)" : "", r.wall_s);
    }
    write_fleet_run_json(out_path, label, preset_name, opts, records);
    const FleetSummary s = summarize_fleet(records);
    std::printf("%zu designs: geomean ratio %.4f, max %.4f, "
                "mean overflow %.2f%%, %zu illegal, %zu warm, %.1fs -> %s\n",
                s.designs, s.geomean_ratio, s.max_ratio,
                s.mean_overflow_percent, s.illegal, s.warm_started,
                s.total_wall_s, out_path.c_str());
    // Exit-code contract (see header): completed records are on disk by the
    // time any non-zero code is returned.
    if (interrupted) return 130;
    // Illegal results mean the ratio lost its >= 1 certificate; callers
    // (CI, the gate) must be able to trust every record.
    if (s.illegal != 0) return 2;
    if (experience && experience->degraded()) {
      std::fprintf(stderr, "warning: experience store degraded: %s\n",
                   experience->degraded_reason().c_str());
      return 4;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
