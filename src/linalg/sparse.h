// Sparse symmetric-positive-definite matrix support for quadratic placement.
//
// The placer assembles the connectivity Laplacian plus anchor diagonal as
// triplets (duplicates allowed, summed on conversion), then converts to CSR
// once per placement iteration for the CG solve. Only the operations the
// placer needs are implemented: assembly, SpMV, diagonal extraction.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vec.h"

namespace complx {

/// Triplet (coordinate-format) accumulator for symmetric matrices.
///
/// Callers add each off-diagonal pair once via add_symmetric(); diagonal
/// contributions via add_diag(). Duplicate entries are summed when the CSR
/// matrix is built, so net-model code can emit one triplet per net edge
/// without pre-merging.
class TripletList {
 public:
  explicit TripletList(size_t n) : n_(n) {}

  size_t dim() const { return n_; }
  size_t entries() const { return rows_.size(); }

  void reserve(size_t nnz) {
    rows_.reserve(nnz);
    cols_.reserve(nnz);
    vals_.reserve(nnz);
  }

  /// A[i][i] += v
  void add_diag(size_t i, double v) {
    rows_.push_back(i);
    cols_.push_back(i);
    vals_.push_back(v);
  }

  /// Adds the 2x2 stamp of a spring between i and j with weight w:
  /// A[i][i]+=w, A[j][j]+=w, A[i][j]-=w, A[j][i]-=w.
  void add_spring(size_t i, size_t j, double w) {
    add_diag(i, w);
    add_diag(j, w);
    rows_.push_back(i);
    cols_.push_back(j);
    vals_.push_back(-w);
    rows_.push_back(j);
    cols_.push_back(i);
    vals_.push_back(-w);
  }

  const std::vector<size_t>& rows() const { return rows_; }
  const std::vector<size_t>& cols() const { return cols_; }
  const std::vector<double>& vals() const { return vals_; }

  void clear() {
    rows_.clear();
    cols_.clear();
    vals_.clear();
  }

 private:
  size_t n_;
  std::vector<size_t> rows_, cols_;
  std::vector<double> vals_;
};

/// Compressed-sparse-row matrix (square). Built from a TripletList with
/// duplicate merging; immutable afterwards.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds CSR from triplets, summing duplicates. O(nnz + n).
  static CsrMatrix from_triplets(const TripletList& t);

  size_t dim() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  size_t nnz() const { return col_.size(); }

  /// y = A * x
  void multiply(const Vec& x, Vec& y) const;

  /// Returns the diagonal of A (for Jacobi preconditioning).
  Vec diagonal() const;

  /// Max |A[i][j] - A[j][i]| over sampled entries — exact symmetry check
  /// used by tests (O(nnz log) via lookups).
  double symmetry_error() const;

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<size_t>& col() const { return col_; }
  const std::vector<double>& val() const { return val_; }

  /// A[i][j] by binary search over row i (0 when absent).
  double at(size_t i, size_t j) const;

 private:
  std::vector<size_t> row_ptr_;
  std::vector<size_t> col_;
  std::vector<double> val_;
};

}  // namespace complx
