// Sparse symmetric-positive-definite matrix support for quadratic placement.
//
// The placer assembles the connectivity Laplacian plus anchor diagonal as
// triplets (duplicates allowed, summed on conversion), then converts to CSR
// once per placement iteration for the CG solve. Only the operations the
// placer needs are implemented: assembly, SpMV, diagonal extraction.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vec.h"

namespace complx {

/// Triplet (coordinate-format) accumulator for symmetric matrices.
///
/// Callers add each off-diagonal pair once via add_symmetric(); diagonal
/// contributions via add_diag(). Duplicate entries are summed when the CSR
/// matrix is built, so net-model code can emit one triplet per net edge
/// without pre-merging.
class TripletList {
 public:
  explicit TripletList(size_t n) : n_(n) {}

  size_t dim() const { return n_; }
  size_t entries() const { return rows_.size(); }

  void reserve(size_t nnz) {
    rows_.reserve(nnz);
    cols_.reserve(nnz);
    vals_.reserve(nnz);
  }

  /// A[i][i] += v
  void add_diag(size_t i, double v) {
    rows_.push_back(i);
    cols_.push_back(i);
    vals_.push_back(v);
  }

  /// Adds the 2x2 stamp of a spring between i and j with weight w:
  /// A[i][i]+=w, A[j][j]+=w, A[i][j]-=w, A[j][i]-=w.
  void add_spring(size_t i, size_t j, double w) {
    add_diag(i, w);
    add_diag(j, w);
    rows_.push_back(i);
    cols_.push_back(j);
    vals_.push_back(-w);
    rows_.push_back(j);
    cols_.push_back(i);
    vals_.push_back(-w);
  }

  const std::vector<size_t>& rows() const { return rows_; }
  const std::vector<size_t>& cols() const { return cols_; }
  const std::vector<double>& vals() const { return vals_; }

  void clear() {
    rows_.clear();
    cols_.clear();
    vals_.clear();
  }

 private:
  size_t n_;
  std::vector<size_t> rows_, cols_;
  std::vector<double> vals_;
};

/// Compressed-sparse-row matrix (square). Built from a TripletList with
/// duplicate merging; immutable afterwards.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds CSR from triplets, summing duplicates. O(nnz + n).
  static CsrMatrix from_triplets(const TripletList& t);

  size_t dim() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  size_t nnz() const { return col_.size(); }

  /// y = A * x
  void multiply(const Vec& x, Vec& y) const;

  /// Returns the diagonal of A (for Jacobi preconditioning).
  Vec diagonal() const;

  /// Writes the diagonal into `d` (resized to dim()). Buffer-reusing form
  /// of diagonal() — no allocation when d already has the capacity.
  void diagonal_into(Vec& d) const;

  /// Max |A[i][j] - A[j][i]| over sampled entries — exact symmetry check
  /// used by tests (O(nnz log) via lookups).
  double symmetry_error() const;

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<size_t>& col() const { return col_; }
  const std::vector<double>& val() const { return val_; }

  /// A[i][j] by binary search over row i (0 when absent).
  double at(size_t i, size_t j) const;

 private:
  friend class CsrAssembler;

  std::vector<size_t> row_ptr_;
  std::vector<size_t> col_;
  std::vector<double> val_;
};

/// Iteration-persistent CSR assembly with sparsity-pattern reuse.
///
/// The placer's primal step converts a freshly stamped TripletList to CSR
/// every iteration. Between B2B relinearizations the bounding-pin topology
/// is frequently unchanged: the triplet (row, col) sequence is then
/// identical and only the values differ (spring weights, anchor diagonal —
/// the λ update never changes the pattern). This assembler caches the
/// merged structure of the last full build together with its accumulation
/// schedule; when the incoming pattern matches, the counting/sort/merge
/// passes are skipped and val_ is revalued in place by replaying the *same
/// additions in the same order* as a fresh build — cached and uncached
/// paths are bitwise identical.
///
/// Both the full build and the revalue pass are row-parallel via
/// util/parallel (each row's output is owned by exactly one chunk), so the
/// result is also bitwise independent of the thread count.
class CsrAssembler {
 public:
  /// Assembles `t` into the internally owned matrix, reusing the cached
  /// sparsity pattern when `t` matches the previous call. Returns true on
  /// a pattern hit (in-place revalue), false on a full rebuild.
  bool assemble(const TripletList& t);

  /// The assembled matrix; valid until the next assemble()/invalidate().
  const CsrMatrix& matrix() const { return m_; }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

  /// Drops the cached pattern: the next assemble() is a full rebuild
  /// (buffers keep their capacity). Counters are preserved.
  void invalidate();

 private:
  friend class CsrMatrix;  // from_triplets reuses build() without a cache

  /// One-shot CSR build (count → scatter → per-row stable sort + merge).
  /// When the schedule pointers are non-null, also records the
  /// triplet→CSR accumulation schedule used by revalue(): the j-th
  /// addition of row i (j in [raw_ptr[i], raw_ptr[i+1])) reads triplet
  /// add_src[j] and lands in val_[add_dst[j]], first-of-slot additions
  /// being assignments.
  static void build(const TripletList& t, CsrMatrix& m,
                    std::vector<size_t>* raw_ptr,
                    std::vector<size_t>* add_src,
                    std::vector<size_t>* add_dst);

  void revalue(const TripletList& t);

  CsrMatrix m_;
  bool valid_ = false;
  size_t n_ = 0;
  std::vector<size_t> rows_, cols_;  ///< cached triplet pattern
  std::vector<size_t> raw_ptr_;      ///< additions per row (size n_+1)
  std::vector<size_t> add_src_;      ///< triplet index per addition
  std::vector<size_t> add_dst_;      ///< val_ index per addition
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace complx
