#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/parallel.h"

namespace complx {

CsrMatrix CsrMatrix::from_triplets(const TripletList& t) {
  CsrMatrix m;
  CsrAssembler::build(t, m, nullptr, nullptr, nullptr);
  return m;
}

void CsrAssembler::build(const TripletList& t, CsrMatrix& m,
                         std::vector<size_t>* raw_ptr_out,
                         std::vector<size_t>* add_src_out,
                         std::vector<size_t>* add_dst_out) {
  const size_t n = t.dim();
  const auto& rows = t.rows();
  const auto& cols = t.cols();
  const auto& vals = t.vals();
  const size_t nnz_raw = rows.size();

  std::vector<size_t> local_raw_ptr, local_slots;
  std::vector<size_t>& raw_ptr = raw_ptr_out ? *raw_ptr_out : local_raw_ptr;
  // Sorted slot order doubles as the revalue schedule's source indices:
  // slots[raw_ptr[i]..raw_ptr[i+1]) are row i's triplet indices.
  std::vector<size_t>& slots = add_src_out ? *add_src_out : local_slots;

  // Counting pass.
  raw_ptr.assign(n + 1, 0);
  for (size_t r : rows) {
    if (r >= n) throw std::out_of_range("triplet row out of range");
    ++raw_ptr[r + 1];
  }
  for (size_t i = 0; i < n; ++i) raw_ptr[i + 1] += raw_ptr[i];

  // Scatter pass: row i's triplet indices, in arrival order.
  std::vector<size_t> cursor(raw_ptr.begin(), raw_ptr.end() - 1);
  slots.resize(nnz_raw);
  for (size_t k = 0; k < nnz_raw; ++k) {
    if (cols[k] >= n) throw std::out_of_range("triplet col out of range");
    slots[cursor[rows[k]]++] = k;
  }

  // Pass A (row-parallel): stable-sort each row's slots by column — ties
  // keep arrival order, which pins the duplicate-accumulation order — and
  // count the merged entries.
  std::vector<size_t> merged(n, 0);
  parallel_for(n, [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const auto begin = slots.begin() + static_cast<ptrdiff_t>(raw_ptr[i]);
      const auto end = slots.begin() + static_cast<ptrdiff_t>(raw_ptr[i + 1]);
      std::stable_sort(begin, end,
                       [&](size_t a, size_t b) { return cols[a] < cols[b]; });
      size_t count = 0;
      size_t prev = n;  // every valid column is < n
      for (auto it = begin; it != end; ++it) {
        if (cols[*it] != prev) {
          prev = cols[*it];
          ++count;
        }
      }
      merged[i] = count;
    }
  });

  m.row_ptr_.assign(n + 1, 0);
  for (size_t i = 0; i < n; ++i) m.row_ptr_[i + 1] = m.row_ptr_[i] + merged[i];
  m.col_.resize(m.row_ptr_[n]);
  m.val_.resize(m.row_ptr_[n]);
  if (add_dst_out) add_dst_out->resize(nnz_raw);

  // Pass B (row-parallel): write merged columns, accumulate values in
  // sorted-slot order (first contribution per entry is an assignment), and
  // optionally record where each addition landed.
  parallel_for(n, [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      size_t out = m.row_ptr_[i];
      size_t prev = n;
      bool first = true;
      for (size_t s = raw_ptr[i]; s < raw_ptr[i + 1]; ++s) {
        const size_t k = slots[s];
        const size_t c = cols[k];
        if (first || c != prev) {
          if (!first) ++out;
          m.col_[out] = c;
          m.val_[out] = vals[k];
          first = false;
          prev = c;
        } else {
          m.val_[out] += vals[k];
        }
        if (add_dst_out) (*add_dst_out)[s] = out;
      }
    }
  });
}

bool CsrAssembler::assemble(const TripletList& t) {
  if (valid_ && t.dim() == n_ && t.rows() == rows_ && t.cols() == cols_) {
    ++hits_;
    revalue(t);
    return true;
  }
  ++misses_;
  valid_ = false;  // a throwing build must not leave a half-valid cache
  build(t, m_, &raw_ptr_, &add_src_, &add_dst_);
  n_ = t.dim();
  rows_ = t.rows();
  cols_ = t.cols();
  valid_ = true;
  return false;
}

void CsrAssembler::revalue(const TripletList& t) {
  const auto& vals = t.vals();
  parallel_for(n_, [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      size_t prev = std::numeric_limits<size_t>::max();
      for (size_t s = raw_ptr_[i]; s < raw_ptr_[i + 1]; ++s) {
        const size_t dst = add_dst_[s];
        const double v = vals[add_src_[s]];
        if (dst != prev) {
          m_.val_[dst] = v;  // replay: first contribution is an assignment
          prev = dst;
        } else {
          m_.val_[dst] += v;
        }
      }
    }
  });
}

void CsrAssembler::invalidate() {
  valid_ = false;
  rows_.clear();
  cols_.clear();
}

void CsrMatrix::multiply(const Vec& x, Vec& y) const {
  const size_t n = dim();
  if (x.size() != n) throw std::invalid_argument("SpMV dimension mismatch");
  y.resize(n);
  // Row-parallel: each y[i] is the same left-to-right accumulation as the
  // serial loop, so the result is bitwise identical at any thread count.
  parallel_for(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double s = 0.0;
      for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
        s += val_[k] * x[col_[k]];
      y[i] = s;
    }
  });
}

Vec CsrMatrix::diagonal() const {
  Vec d;
  diagonal_into(d);
  return d;
}

void CsrMatrix::diagonal_into(Vec& d) const {
  const size_t n = dim();
  d.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i)
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      if (col_[k] == i) d[i] = val_[k];
}

double CsrMatrix::at(size_t i, size_t j) const {
  const auto begin = col_.begin() + static_cast<ptrdiff_t>(row_ptr_[i]);
  const auto end = col_.begin() + static_cast<ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return val_[static_cast<size_t>(it - col_.begin())];
}

double CsrMatrix::symmetry_error() const {
  double err = 0.0;
  for (size_t i = 0; i < dim(); ++i)
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      err = std::max(err, std::abs(val_[k] - at(col_[k], i)));
  return err;
}

}  // namespace complx
