#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/parallel.h"

namespace complx {

CsrMatrix CsrMatrix::from_triplets(const TripletList& t) {
  const size_t n = t.dim();
  const auto& rows = t.rows();
  const auto& cols = t.cols();
  const auto& vals = t.vals();

  CsrMatrix m;
  m.row_ptr_.assign(n + 1, 0);

  // Counting pass.
  for (size_t r : rows) {
    if (r >= n) throw std::out_of_range("triplet row out of range");
    ++m.row_ptr_[r + 1];
  }
  for (size_t i = 0; i < n; ++i) m.row_ptr_[i + 1] += m.row_ptr_[i];

  // Scatter pass (unsorted within rows, duplicates still present).
  std::vector<size_t> cursor(m.row_ptr_.begin(), m.row_ptr_.end() - 1);
  std::vector<size_t> col_raw(rows.size());
  std::vector<double> val_raw(rows.size());
  for (size_t k = 0; k < rows.size(); ++k) {
    if (cols[k] >= n) throw std::out_of_range("triplet col out of range");
    const size_t slot = cursor[rows[k]]++;
    col_raw[slot] = cols[k];
    val_raw[slot] = vals[k];
  }

  // Per-row sort + duplicate merge.
  m.col_.reserve(col_raw.size());
  m.val_.reserve(val_raw.size());
  std::vector<size_t> merged_ptr(n + 1, 0);
  std::vector<size_t> order;
  for (size_t i = 0; i < n; ++i) {
    const size_t begin = m.row_ptr_[i], end = m.row_ptr_[i + 1];
    order.resize(end - begin);
    std::iota(order.begin(), order.end(), begin);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return col_raw[a] < col_raw[b]; });
    size_t row_count = 0;
    for (size_t k : order) {
      if (row_count > 0 && m.col_.back() == col_raw[k]) {
        m.val_.back() += val_raw[k];
      } else {
        m.col_.push_back(col_raw[k]);
        m.val_.push_back(val_raw[k]);
        ++row_count;
      }
    }
    merged_ptr[i + 1] = merged_ptr[i] + row_count;
  }
  m.row_ptr_ = std::move(merged_ptr);
  return m;
}

void CsrMatrix::multiply(const Vec& x, Vec& y) const {
  const size_t n = dim();
  if (x.size() != n) throw std::invalid_argument("SpMV dimension mismatch");
  y.resize(n);
  // Row-parallel: each y[i] is the same left-to-right accumulation as the
  // serial loop, so the result is bitwise identical at any thread count.
  parallel_for(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double s = 0.0;
      for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
        s += val_[k] * x[col_[k]];
      y[i] = s;
    }
  });
}

Vec CsrMatrix::diagonal() const {
  const size_t n = dim();
  Vec d(n, 0.0);
  for (size_t i = 0; i < n; ++i)
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      if (col_[k] == i) d[i] = val_[k];
  return d;
}

double CsrMatrix::at(size_t i, size_t j) const {
  const auto begin = col_.begin() + static_cast<ptrdiff_t>(row_ptr_[i]);
  const auto end = col_.begin() + static_cast<ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return val_[static_cast<size_t>(it - col_.begin())];
}

double CsrMatrix::symmetry_error() const {
  double err = 0.0;
  for (size_t i = 0; i < dim(); ++i)
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      err = std::max(err, std::abs(val_[k] - at(col_[k], i)));
  return err;
}

}  // namespace complx
