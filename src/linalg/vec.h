// Dense vector helpers for the CG solver and quadratic-system assembly.
// Kept free-function style over std::vector<double> — the solver's hot loops
// are simple enough that a dedicated vector class would add nothing.
//
// Reductions use the deterministic fixed-chunk scheme of util/parallel.h:
// vectors up to kReduceChunk reduce with the plain serial loop (identical
// bits to the pre-parallel code); longer vectors sum per-chunk partials in
// chunk order, so results are bitwise independent of the thread count.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/parallel.h"

namespace complx {

using Vec = std::vector<double>;

inline double dot(const Vec& a, const Vec& b) {
  if (a.size() <= kReduceChunk) {  // single chunk: allocation-free fast path
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  }
  return par_dot(a, b);
}

inline double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

/// y += alpha * x
inline void axpy(double alpha, const Vec& x, Vec& y) {
  if (x.size() <= kReduceChunk) {
    for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
    return;
  }
  par_axpy(alpha, x, y);
}

/// x = alpha * x + y  (used for CG direction updates)
inline void xpay(const Vec& y, double alpha, Vec& x) {
  if (x.size() <= kReduceChunk) {
    for (size_t i = 0; i < x.size(); ++i) x[i] = alpha * x[i] + y[i];
    return;
  }
  par_xpay(y, alpha, x);
}

inline double linf_dist(const Vec& a, const Vec& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

inline double l1_dist(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s;
}

}  // namespace complx
