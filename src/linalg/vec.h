// Dense vector helpers for the CG solver and quadratic-system assembly.
// Kept free-function style over std::vector<double> — the solver's hot loops
// are simple enough that a dedicated vector class would add nothing.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace complx {

using Vec = std::vector<double>;

inline double dot(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

/// y += alpha * x
inline void axpy(double alpha, const Vec& x, Vec& y) {
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x = alpha * x + y  (used for CG direction updates)
inline void xpay(const Vec& y, double alpha, Vec& x) {
  for (size_t i = 0; i < x.size(); ++i) x[i] = alpha * x[i] + y[i];
}

inline double linf_dist(const Vec& a, const Vec& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

inline double l1_dist(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s;
}

}  // namespace complx
