#include "linalg/cg.h"

#include <cmath>
#include <stdexcept>

#include "util/fpcmp.h"

namespace complx {

CgResult solve_pcg(const CsrMatrix& A, const Vec& b, Vec& x,
                   const CgOptions& opts) {
  CgWorkspace ws;
  return solve_pcg(A, b, x, opts, ws);
}

CgResult solve_pcg(const CsrMatrix& A, const Vec& b, Vec& x,
                   const CgOptions& opts, CgWorkspace& ws) {
  const size_t n = A.dim();
  if (b.size() != n || x.size() != n)
    throw std::invalid_argument("CG dimension mismatch");

  CgResult result;
  const double b_norm = norm2(b);
  if (opts.inject_breakdown) {
    result.residual_norm = b_norm;
    result.breakdown = true;
    return result;
  }
  if (fp::exactly_zero(b_norm)) {
    // x = 0 solves the system exactly; report a fully-populated result
    // (0 iterations, zero residual) instead of default-initialized fields.
    x.assign(n, 0.0);
    result.iterations = 0;
    result.residual_norm = 0.0;
    result.converged = true;
    return result;
  }

  // Optional Tikhonov shift: operate on A + σI without materializing it.
  const double shift = opts.diag_shift;

  // Jacobi preconditioner: M^{-1} = 1/diag(A). Zero diagonals (isolated,
  // unanchored variables) fall back to identity scaling.
  Vec& inv_diag = ws.inv_diag;
  A.diagonal_into(inv_diag);
  for (double& d : inv_diag) d = (d + shift > 0.0) ? 1.0 / (d + shift) : 1.0;

  // Workspace vectors: resize is a no-op once warm, and every element is
  // written before it is read, so stale contents never leak through.
  Vec& r = ws.r;
  Vec& z = ws.z;
  Vec& p = ws.p;
  Vec& Ap = ws.Ap;
  r.resize(n);
  z.resize(n);
  p.resize(n);
  Ap.resize(n);
  A.multiply(x, Ap);
  if (shift > 0.0) axpy(shift, x, Ap);
  for (size_t i = 0; i < n; ++i) r[i] = b[i] - Ap[i];
  for (size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = dot(r, z);

  const size_t max_iter =
      opts.max_iterations ? opts.max_iterations : 4 * n + 16;
  const double tol = opts.rel_tolerance * b_norm;

  // The residual norm is computed once per iteration (after the update) and
  // carried into both the convergence test and the reported result, so
  // result.iterations / result.residual_norm always describe the same
  // iterate on every exit path (converged, breakdown, or budget exhausted).
  double r_norm = norm2(r);
  size_t it = 0;
  for (; it < max_iter && r_norm > tol; ++it) {
    A.multiply(p, Ap);
    if (shift > 0.0) axpy(shift, p, Ap);
    const double pAp = dot(p, Ap);
    if (pAp <= 0.0) {  // not SPD (or numerical breakdown)
      result.breakdown = true;
      break;
    }
    const double alpha = rz / pAp;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    for (size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    xpay(z, beta, p);  // p = z + beta * p
    r_norm = norm2(r);
  }
  result.iterations = it;
  result.residual_norm = r_norm;
  result.converged = r_norm <= tol;
  return result;
}

}  // namespace complx
