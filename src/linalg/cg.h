// Jacobi-preconditioned Conjugate Gradient for the SPD placement systems.
//
// ComPLx (like SimPL) deliberately uses *linear* CG on the linearized
// quadratic model instead of nonlinear solvers (paper, Section S4). The
// systems are Laplacian-plus-diagonal: symmetric positive definite whenever
// at least one fixed connection or anchor exists per connected component.
#pragma once

#include <cstddef>

#include "linalg/sparse.h"
#include "linalg/vec.h"

namespace complx {

struct CgOptions {
  double rel_tolerance = 1e-6;  ///< stop when ||r|| <= rel_tolerance * ||b||
  size_t max_iterations = 0;    ///< 0 means 4 * dim
  /// Tikhonov shift: solves (A + diag_shift·I) x = b. The recovery policy
  /// raises it on repeated breakdown to restore positive definiteness of a
  /// numerically indefinite system; 0 (the default) changes nothing.
  double diag_shift = 0.0;
  /// Test-only fault injection: report an immediate breakdown without
  /// touching x (drives the recovery-path tests; never set in production).
  bool inject_breakdown = false;
};

struct CgResult {
  size_t iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - Ax||
  bool converged = false;
  /// True when the solve aborted on pAp <= 0 — the matrix was not SPD (or
  /// lost definiteness numerically). Distinct from running out of the
  /// iteration budget, which leaves breakdown false with converged false.
  bool breakdown = false;
};

/// Persistent scratch for solve_pcg. The residual/direction vectors and
/// the Jacobi diagonal are plain members reused across calls: once warm
/// (sized by a first solve of the same dimension), a steady-state solve
/// performs zero heap allocations — asserted by the allocation-counting
/// test in test_linalg.
struct CgWorkspace {
  Vec r, z, p, Ap, inv_diag;
};

/// Solves A x = b in place (x is the initial guess on entry, solution on
/// exit) with Jacobi (diagonal) preconditioning. Scratch vectors live in
/// `ws` and are resized only when the dimension changes.
CgResult solve_pcg(const CsrMatrix& A, const Vec& b, Vec& x,
                   const CgOptions& opts, CgWorkspace& ws);

/// Convenience overload with a throwaway workspace (allocates scratch per
/// call); bitwise identical to the workspace form.
CgResult solve_pcg(const CsrMatrix& A, const Vec& b, Vec& x,
                   const CgOptions& opts = {});

}  // namespace complx
