#include "dp/detailed.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/log.h"
#include "wl/hpwl.h"
#include "wl/incremental.h"

namespace complx {

namespace {

/// Mutable row-major view of a legal placement: per row, the standard cells
/// sorted by x plus the fixed blockage intervals. Provides gap queries and
/// keeps itself consistent across moves.
class RowView {
 public:
  RowView(const Netlist& nl, Placement& p) : nl_(nl), p_(p) {
    const std::vector<Row>& rows = nl.rows();
    row_h_ = rows.front().height;
    y0_ = rows.front().y;
    cells_.assign(rows.size(), {});
    block_.assign(rows.size(), {});

    auto add_blockage = [&](const Rect& r) {
      const long j0 = row_of(r.yl + 1e-9);
      const long j1 = row_of(r.yh - 1e-9);
      for (long j = std::max(0L, j0);
           j <= std::min<long>(j1, static_cast<long>(rows.size()) - 1); ++j) {
        const double ry = y0_ + static_cast<double>(j) * row_h_;
        if (r.yl < ry + row_h_ - 1e-9 && r.yh > ry + 1e-9)
          block_[static_cast<size_t>(j)].push_back({r.xl, r.xh});
      }
    };
    for (const Cell& c : nl.cells())
      if (!c.movable()) add_blockage(c.bounds());

    row_of_cell_.assign(nl.num_cells(), -1);
    for (CellId id : nl.movable_cells()) {
      const Cell& c = nl.cell(id);
      if (c.is_macro()) {
        add_blockage({p.x[id] - c.width / 2.0, p.y[id] - c.height / 2.0,
                      p.x[id] + c.width / 2.0, p.y[id] + c.height / 2.0});
        continue;
      }
      const long j = row_of(p.y[id] - c.height / 2.0 + 1e-9);
      if (j < 0 || j >= static_cast<long>(rows.size())) continue;
      cells_[static_cast<size_t>(j)].push_back(id);
      row_of_cell_[id] = j;
    }
    for (auto& rc : cells_)
      std::sort(rc.begin(), rc.end(),
                [&](CellId a, CellId b) { return p.x[a] < p.x[b]; });
    for (auto& bl : block_) std::sort(bl.begin(), bl.end());
  }

  size_t num_rows() const { return cells_.size(); }
  long row_of(double y) const {
    return static_cast<long>(std::floor((y - y0_) / row_h_));
  }
  double row_y(long j) const { return y0_ + static_cast<double>(j) * row_h_; }
  long row_of_cell(CellId id) const { return row_of_cell_[id]; }
  const std::vector<CellId>& row_cells(long j) const {
    return cells_[static_cast<size_t>(j)];
  }

  double left_x(CellId id) const {
    return p_.x[id] - nl_.cell(id).width / 2.0;
  }
  double right_x(CellId id) const {
    return p_.x[id] + nl_.cell(id).width / 2.0;
  }

  /// Free interval around slot `k` in row `j` containing `probe`:
  /// [end of previous obstacle, start of next obstacle], considering
  /// neighbour cells and blockages. Returns an empty (hi < lo) gap when the
  /// probe sits inside a blockage. With k == cells in row, the "gap" is
  /// after the last cell.
  struct Gap {
    double lo, hi;
  };
  Gap gap_around(long j, size_t k, double probe,
                 CellId ignore = kInvalid) const {
    const auto& rc = cells_[static_cast<size_t>(j)];
    const Row& row = nl_.rows()[static_cast<size_t>(j)];
    double lo = row.xl, hi = row.xh;
    // Previous / next standard cell (skipping `ignore`).
    for (size_t i = k; i-- > 0;) {
      if (rc[i] == ignore) continue;
      lo = std::max(lo, right_x(rc[i]));
      break;
    }
    for (size_t i = k; i < rc.size(); ++i) {
      if (rc[i] == ignore) continue;
      hi = std::min(hi, left_x(rc[i]));
      break;
    }
    if (hi < lo) return {0.0, -1.0};
    // Blockages shrink the interval around the probe point.
    probe = std::clamp(probe, lo, hi);
    for (const auto& [bl, bh] : block_[static_cast<size_t>(j)]) {
      if (bh <= probe) lo = std::max(lo, bh);
      if (bl >= probe) {
        hi = std::min(hi, bl);
        break;
      }
      if (bl < probe && bh > probe) return {0.0, -1.0};  // inside blockage
    }
    return {lo, hi};
  }

  /// True when any blockage intersects the open interval (lo, hi) of row j.
  bool blocked_in(long j, double lo, double hi) const {
    for (const auto& [bl, bh] : block_[static_cast<size_t>(j)]) {
      if (bl >= hi) break;
      if (bh > lo && bl < hi) return true;
    }
    return false;
  }

  /// Index of the first cell in row j with center x >= x.
  size_t slot_of_x(long j, double x) const {
    const auto& rc = cells_[static_cast<size_t>(j)];
    return static_cast<size_t>(
        std::lower_bound(rc.begin(), rc.end(), x,
                         [&](CellId id, double v) { return p_.x[id] < v; }) -
        rc.begin());
  }

  /// Moves cell to row j at center x (caller guarantees the spot is free).
  void commit_move(CellId id, long j, double x) {
    const long old_row = row_of_cell_[id];
    auto& src = cells_[static_cast<size_t>(old_row)];
    src.erase(std::find(src.begin(), src.end(), id));
    p_.x[id] = x;
    p_.y[id] = row_y(j) + nl_.cell(id).height / 2.0;
    auto& dst = cells_[static_cast<size_t>(j)];
    dst.insert(dst.begin() + static_cast<long>(slot_of_x(j, x)), id);
    row_of_cell_[id] = j;
  }

  /// Swaps the positions of two cells (rows updated).
  void commit_swap(CellId a, CellId b) {
    const long ja = row_of_cell_[a], jb = row_of_cell_[b];
    const double xa = p_.x[a], xb = p_.x[b];
    auto& ra = cells_[static_cast<size_t>(ja)];
    ra.erase(std::find(ra.begin(), ra.end(), a));
    auto& rb = cells_[static_cast<size_t>(jb)];
    rb.erase(std::find(rb.begin(), rb.end(), b));
    p_.x[a] = xb;
    p_.y[a] = row_y(jb) + nl_.cell(a).height / 2.0;
    p_.x[b] = xa;
    p_.y[b] = row_y(ja) + nl_.cell(b).height / 2.0;
    auto& na = cells_[static_cast<size_t>(jb)];
    na.insert(na.begin() + static_cast<long>(slot_of_x(jb, p_.x[a])), a);
    auto& nb = cells_[static_cast<size_t>(ja)];
    nb.insert(nb.begin() + static_cast<long>(slot_of_x(ja, p_.x[b])), b);
    row_of_cell_[a] = jb;
    row_of_cell_[b] = ja;
  }

  static constexpr CellId kInvalid = std::numeric_limits<CellId>::max();

 private:
  const Netlist& nl_;
  Placement& p_;
  double row_h_ = 1.0, y0_ = 0.0;
  std::vector<std::vector<CellId>> cells_;
  std::vector<std::vector<std::pair<double, double>>> block_;
  std::vector<long> row_of_cell_;
};

/// Optimal region of a cell: median interval of its incident nets' bounds
/// computed with the cell's pins removed.
void optimal_region(const Netlist& nl, const Placement& p, CellId id,
                    double& ox, double& oy) {
  std::vector<double> xs, ys;
  for (NetId e : nl.nets_of_cell(id)) {
    const Net& net = nl.net(e);
    double xl = std::numeric_limits<double>::infinity(), xh = -xl;
    double yl = xl, yh = -xl;
    bool any = false;
    for (uint32_t k = 0; k < net.num_pins; ++k) {
      const Pin& pin = nl.pin(net.first_pin + k);
      if (pin.cell == id) continue;
      any = true;
      xl = std::min(xl, p.x[pin.cell] + pin.dx);
      xh = std::max(xh, p.x[pin.cell] + pin.dx);
      yl = std::min(yl, p.y[pin.cell] + pin.dy);
      yh = std::max(yh, p.y[pin.cell] + pin.dy);
    }
    if (!any) continue;
    xs.push_back(xl);
    xs.push_back(xh);
    ys.push_back(yl);
    ys.push_back(yh);
  }
  if (xs.empty()) {
    ox = p.x[id];
    oy = p.y[id];
    return;
  }
  auto med = [](std::vector<double>& v) {
    const size_t m = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(m), v.end());
    return v[m];
  };
  ox = med(xs);
  oy = med(ys);
}

}  // namespace

DetailedPlacer::DetailedPlacer(const Netlist& nl, DetailedOptions opts)
    : nl_(nl), opts_(opts) {}

DetailedResult DetailedPlacer::refine(Placement& p) const {
  DetailedResult result;
  result.initial_hpwl = hpwl(nl_, p);
  if (nl_.rows().empty()) {
    result.final_hpwl = result.initial_hpwl;
    return result;
  }

  RowView view(nl_, p);
  // Per-net cost cache: "before" costs are lookups, only mutated
  // configurations need fresh bounding boxes.
  IncrementalHpwl eval(nl_, p);
  std::vector<NetId> scratch;
  double current = result.initial_hpwl;

  for (int pass = 0; pass < opts_.max_passes; ++pass) {
    double pass_start = current;

    // ---- global / vertical swap ---------------------------------------
    if (opts_.global_swap) {
      for (CellId id : nl_.movable_cells()) {
        const Cell& c = nl_.cell(id);
        if (c.is_macro() || view.row_of_cell(id) < 0) continue;
        double ox, oy;
        optimal_region(nl_, p, id, ox, oy);
        if (std::abs(ox - p.x[id]) + std::abs(oy - p.y[id]) <
            nl_.row_height())
          continue;

        const long jt = std::clamp<long>(
            view.row_of(oy - c.height / 2.0), 0,
            static_cast<long>(view.num_rows()) - 1);
        bool moved = false;
        // Try a free gap in the target row (and its neighbours).
        for (long dj : {0L, -1L, 1L}) {
          const long j = jt + dj;
          if (j < 0 || j >= static_cast<long>(view.num_rows())) continue;
          const size_t slot = view.slot_of_x(j, ox);
          const RowView::Gap gap = view.gap_around(j, slot, ox, id);
          if (gap.hi - gap.lo < c.width) continue;
          const double x =
              std::clamp(ox, gap.lo + c.width / 2.0, gap.hi - c.width / 2.0);
          const double before = eval.incident_cost(id);
          const double old_x = p.x[id], old_y = p.y[id];
          p.x[id] = x;
          p.y[id] = view.row_y(j) + c.height / 2.0;
          const double after = eval.fresh_incident_cost(id);
          p.x[id] = old_x;
          p.y[id] = old_y;
          if (after < before - 1e-9) {
            current += after - before;
            view.commit_move(id, j, x);
            eval.refresh(id);
            moved = true;
            break;
          }
        }
        if (moved) continue;

        // Swap with the cell nearest the optimal point (equal width ⇒
        // always legal; unequal widths accepted when both fit).
        const long j = jt;
        const auto& rc = view.row_cells(j);
        if (rc.empty()) continue;
        size_t slot = view.slot_of_x(j, ox);
        if (slot >= rc.size()) slot = rc.size() - 1;
        const CellId other = rc[slot];
        if (other == id || nl_.cell(other).is_macro()) continue;
        const Cell& oc = nl_.cell(other);
        // Position exchange is guaranteed legal only for equal widths;
        // unequal-width swaps would need a repacking step.
        if (std::abs(oc.width - c.width) > 1e-9) continue;
        const double before = eval.incident_cost(id, other);
        const double ax = p.x[id], ay = p.y[id];
        const double bx = p.x[other], by = p.y[other];
        p.x[id] = bx;
        p.y[id] = by;
        p.x[other] = ax;
        p.y[other] = ay;
        const double after = eval.fresh_incident_cost(id, other);
        p.x[id] = ax;
        p.y[id] = ay;
        p.x[other] = bx;
        p.y[other] = by;
        if (after < before - 1e-9) {
          current += after - before;
          view.commit_swap(id, other);
          eval.refresh(id, other);
        }
      }
    }

    // ---- local reordering ----------------------------------------------
    if (opts_.local_reorder) {
      const int w = std::max(2, opts_.reorder_window);
      for (long j = 0; j < static_cast<long>(view.num_rows()); ++j) {
        const auto& rc = view.row_cells(j);
        if (static_cast<int>(rc.size()) < w) continue;
        for (size_t start = 0; start + static_cast<size_t>(w) <= rc.size();
             ++start) {
          // Window cells and the free span they may occupy.
          std::vector<CellId> win(rc.begin() + static_cast<long>(start),
                                  rc.begin() + static_cast<long>(start) +
                                      w);
          const RowView::Gap left =
              view.gap_around(j, start, view.left_x(win[0]), win[0]);
          double span_lo = std::max(left.lo, view.left_x(win[0]));
          double span_hi = view.right_x(win.back());
          // Packing would slide cells across any blockage inside the span.
          if (view.blocked_in(j, span_lo, span_hi)) continue;

          std::vector<CellId> order = win;
          std::sort(order.begin(), order.end());
          double best_cost = std::numeric_limits<double>::infinity();
          std::vector<CellId> best_order;
          std::vector<double> best_x;
          // Evaluate permutations by packing from span_lo; only the window
          // cells' coordinates are saved and restored.
          std::vector<double> save_x(win.size()), save_y(win.size());
          for (int k = 0; k < w; ++k) {
            save_x[static_cast<size_t>(k)] = p.x[win[static_cast<size_t>(k)]];
            save_y[static_cast<size_t>(k)] = p.y[win[static_cast<size_t>(k)]];
          }
          scratch.clear();
          for (CellId id : win)
            for (NetId e : nl_.nets_of_cell(id)) scratch.push_back(e);
          std::sort(scratch.begin(), scratch.end());
          scratch.erase(std::unique(scratch.begin(), scratch.end()),
                        scratch.end());
          const std::vector<NetId> nets = scratch;
          auto nets_cost = [&] {
            double s = 0.0;
            for (NetId e : nets) s += nl_.net(e).weight * net_hpwl(nl_, p, e);
            return s;
          };
          const double base_cost = nets_cost();

          do {
            double x = span_lo;
            bool fits = true;
            std::vector<double> xs;
            for (CellId id : order) {
              const double wid = nl_.cell(id).width;
              xs.push_back(x + wid / 2.0);
              x += wid;
            }
            if (x > span_hi + 1e-9) fits = false;
            if (fits) {
              for (size_t k = 0; k < order.size(); ++k)
                p.x[order[k]] = xs[k];
              const double cost = nets_cost();
              if (cost < best_cost) {
                best_cost = cost;
                best_order = order;
                best_x = xs;
              }
              // Restore.
              for (int k = 0; k < w; ++k) {
                p.x[win[static_cast<size_t>(k)]] =
                    save_x[static_cast<size_t>(k)];
              }
            }
          } while (std::next_permutation(order.begin(), order.end()));

          if (!best_order.empty() && best_cost < base_cost - 1e-9) {
            current += best_cost - base_cost;
            // Apply: move cells via the view so ordering stays consistent.
            for (size_t k = 0; k < best_order.size(); ++k) {
              view.commit_move(best_order[k], j, best_x[k]);
              eval.refresh(best_order[k]);
            }
          }
        }
      }
    }

    // ---- row shift (L1 clumping per row) --------------------------------
    if (opts_.row_shift) {
      for (long j = 0; j < static_cast<long>(view.num_rows()); ++j) {
        const std::vector<CellId> rc = view.row_cells(j);  // copy: stable
        if (rc.size() < 2) continue;
        // Preferred positions (medians) and clumping within free spans.
        // Process contiguous runs between blockages independently.
        size_t run_start = 0;
        while (run_start < rc.size()) {
          // Extend run while consecutive cells share a free span (no
          // blockage between them).
          size_t run_end = run_start;
          while (run_end + 1 < rc.size() &&
                 !view.blocked_in(j, view.right_x(rc[run_end]),
                                  view.left_x(rc[run_end + 1]))) {
            ++run_end;
          }

          // Clumping over [run_start, run_end].
          const RowView::Gap left_gap = view.gap_around(
              j, run_start, p.x[rc[run_start]], rc[run_start]);
          const RowView::Gap right_gap =
              view.gap_around(j, run_end, p.x[rc[run_end]], rc[run_end]);
          if (left_gap.hi < left_gap.lo || right_gap.hi < right_gap.lo) {
            run_start = run_end + 1;
            continue;
          }
          const double span_lo = left_gap.lo;
          const double span_hi = right_gap.hi;

          struct Cluster {
            double width = 0.0;
            std::vector<double> prefs;  // preferred left-x minus offset
            double pos = 0.0;           // left x of cluster
            size_t first, last;
          };
          std::vector<Cluster> clusters;
          for (size_t k = run_start; k <= run_end; ++k) {
            const CellId id = rc[k];
            double ox, oy;
            optimal_region(nl_, p, id, ox, oy);
            Cluster cl;
            cl.width = nl_.cell(id).width;
            cl.prefs = {ox - nl_.cell(id).width / 2.0};
            cl.first = cl.last = k;
            // Desired left x clamped into the span.
            auto place = [&](Cluster& c2) {
              std::vector<double> v = c2.prefs;
              const size_t m = v.size() / 2;
              std::nth_element(v.begin(), v.begin() + static_cast<long>(m),
                               v.end());
              c2.pos = std::clamp(v[m], span_lo,
                                  std::max(span_lo, span_hi - c2.width));
            };
            place(cl);
            clusters.push_back(std::move(cl));
            // Merge while overlapping predecessor.
            while (clusters.size() > 1) {
              Cluster& prev = clusters[clusters.size() - 2];
              Cluster& curr = clusters.back();
              if (prev.pos + prev.width <= curr.pos + 1e-9) break;
              // Merge curr into prev: shift curr's prefs by prev.width.
              for (double pf : curr.prefs)
                prev.prefs.push_back(pf - prev.width);
              prev.width += curr.width;
              prev.last = curr.last;
              clusters.pop_back();
              place(prev);
            }
          }

          // Evaluate and apply if the row's incident cost improves.
          std::vector<double> old_x(run_end - run_start + 1);
          for (size_t k = run_start; k <= run_end; ++k)
            old_x[k - run_start] = p.x[rc[k]];
          scratch.clear();
          for (size_t k = run_start; k <= run_end; ++k)
            for (NetId e : nl_.nets_of_cell(rc[k])) scratch.push_back(e);
          std::sort(scratch.begin(), scratch.end());
          scratch.erase(std::unique(scratch.begin(), scratch.end()),
                        scratch.end());
          double before = 0.0;
          for (NetId e : scratch) before += eval.net_cost(e);

          for (const Cluster& cl : clusters) {
            double x = cl.pos;
            for (size_t k = cl.first; k <= cl.last; ++k) {
              p.x[rc[k]] = x + nl_.cell(rc[k]).width / 2.0;
              x += nl_.cell(rc[k]).width;
            }
          }
          double after = 0.0;
          for (NetId e : scratch)
            after += nl_.net(e).weight * net_hpwl(nl_, p, e);
          if (after < before - 1e-9) {
            current += after - before;
            for (size_t k = run_start; k <= run_end; ++k)
              eval.refresh(rc[k]);
          } else {
            for (size_t k = run_start; k <= run_end; ++k)
              p.x[rc[k]] = old_x[k - run_start];
          }

          run_start = run_end + 1;
        }
      }
    }

    ++result.passes;
    if (pass_start - current < opts_.min_relative_gain * pass_start) break;
  }

  result.final_hpwl = hpwl(nl_, p);
  return result;
}

}  // namespace complx
