// Detailed placement in the style of FastPlace-DP (Pan, Viswanathan, Chu,
// ICCAD 2005) — the post-pass the paper applies to every placer's output
// ("Detailed placement was done by FastPlace-DP"). Operates on a LEGAL
// placement and preserves legality.
//
// Move classes:
//  * global swap   — move a cell toward its optimal region (the median of
//                    its incident nets' bounding-box intervals computed
//                    without the cell), into a free gap or by swapping with
//                    a compatible cell;
//  * vertical swap — the same mechanism naturally captures row changes;
//  * local reorder — exhaustive permutation of small windows of consecutive
//                    cells within a row;
//  * row shift     — per-segment 1-D optimal repositioning (L1 clumping):
//                    cells keep their order, each seeks the median of its
//                    net intervals, clusters merge when they collide.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace complx {

struct DetailedOptions {
  int max_passes = 4;
  double min_relative_gain = 5e-4;  ///< stop when a pass improves less
  bool global_swap = true;
  bool local_reorder = true;
  bool row_shift = true;
  int reorder_window = 3;
};

struct DetailedResult {
  double initial_hpwl = 0.0;
  double final_hpwl = 0.0;
  int passes = 0;
};

class DetailedPlacer {
 public:
  explicit DetailedPlacer(const Netlist& nl, DetailedOptions opts = {});

  /// Refines a legal placement in place. Behaviour on an illegal input is
  /// best-effort (moves that would create overlap are rejected), but callers
  /// should legalize first.
  DetailedResult refine(Placement& p) const;

 private:
  const Netlist& nl_;
  DetailedOptions opts_;
};

}  // namespace complx
