#include "dp/orientation.h"

#include <algorithm>

#include "util/fpcmp.h"
#include "wl/hpwl.h"

namespace complx {

OrientationResult optimize_orientation(Netlist& nl, const Placement& p,
                                       int max_passes) {
  OrientationResult result;
  result.initial_hpwl = hpwl(nl, p);

  std::vector<NetId> scratch;
  auto incident_cost = [&](CellId id) {
    double s = 0.0;
    for (NetId e : nl.nets_of_cell(id))
      s += nl.net(e).weight * net_hpwl(nl, p, e);
    return s;
  };

  for (int pass = 0; pass < max_passes; ++pass) {
    size_t flips_this_pass = 0;
    for (CellId id : nl.movable_cells()) {
      const Cell& c = nl.cell(id);
      if (c.is_macro()) continue;
      // A flip only matters when the cell has pins with non-zero x offset.
      bool has_offset = false;
      for (PinId pid : nl.pins_of_cell(id))
        if (!fp::exactly_zero(nl.pin(pid).dx)) {
          has_offset = true;
          break;
        }
      if (!has_offset) continue;

      const double before = incident_cost(id);
      nl.flip_horizontal(id);
      const double after = incident_cost(id);
      if (after < before - 1e-12) {
        ++flips_this_pass;
      } else {
        nl.flip_horizontal(id);  // revert
      }
    }
    result.flipped += flips_this_pass;
    ++result.passes;
    if (flips_this_pass == 0) break;
  }
  result.final_hpwl = hpwl(nl, p);
  return result;
}

}  // namespace complx
