// Cell-orientation optimization: mirror standard cells about their vertical
// axis when that shortens incident nets. Orientation changes are free in
// row-based layouts (same footprint, legality preserved), so this is pure
// HPWL gain. The paper notes it as a separate knob ("We regenerated
// placements of SimPL without a cell-orientation optimization" — Table 1
// caption); this module supplies it.
#pragma once

#include "netlist/netlist.h"

namespace complx {

struct OrientationResult {
  size_t flipped = 0;
  double initial_hpwl = 0.0;
  double final_hpwl = 0.0;
  int passes = 0;
};

/// Greedy sweeps over movable standard cells: flip when the incident-net
/// HPWL strictly improves; repeat until a pass makes no flips (or the pass
/// limit is hit). MUTATES the netlist's pin offsets and orientation flags.
OrientationResult optimize_orientation(Netlist& nl, const Placement& p,
                                       int max_passes = 3);

}  // namespace complx
