#include "wl/smooth.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace complx {

namespace {
double pin_x(const Netlist& nl, const Placement& p, PinId k) {
  const Pin& pin = nl.pin(k);
  return p.x[pin.cell] + pin.dx;
}
double pin_y(const Netlist& nl, const Placement& p, PinId k) {
  const Pin& pin = nl.pin(k);
  return p.y[pin.cell] + pin.dy;
}
}  // namespace

// ---------------------------------------------------------------- LseWl --

LseWl::LseWl(const Netlist& nl, double gamma) : nl_(nl), gamma_(gamma) {
  if (gamma <= 0.0) throw std::invalid_argument("LSE gamma must be > 0");
}

double LseWl::value_and_grad(const Placement& p, Vec& gx, Vec& gy) const {
  const size_t n = nl_.num_cells();
  gx.assign(n, 0.0);
  gy.assign(n, 0.0);
  double total = 0.0;

  // Per net and axis:  γ·log Σ exp(+c/γ) + γ·log Σ exp(−c/γ), stabilized by
  // subtracting the max/min coordinate before exponentiation.
  std::vector<double> ew;
  for (NetId e = 0; e < nl_.num_nets(); ++e) {
    const Net& net = nl_.net(e);
    if (net.num_pins < 2) continue;
    const double w = net.weight;

    for (int axis = 0; axis < 2; ++axis) {
      auto coord = [&](PinId k) {
        return axis == 0 ? pin_x(nl_, p, k) : pin_y(nl_, p, k);
      };
      Vec& g = axis == 0 ? gx : gy;

      double cmax = -std::numeric_limits<double>::infinity();
      double cmin = std::numeric_limits<double>::infinity();
      for (uint32_t k = net.first_pin; k < net.first_pin + net.num_pins; ++k) {
        cmax = std::max(cmax, coord(k));
        cmin = std::min(cmin, coord(k));
      }

      double sum_pos = 0.0, sum_neg = 0.0;
      ew.assign(2 * net.num_pins, 0.0);
      for (uint32_t k = 0; k < net.num_pins; ++k) {
        const double c = coord(net.first_pin + k);
        ew[2 * k] = std::exp((c - cmax) / gamma_);
        ew[2 * k + 1] = std::exp((cmin - c) / gamma_);
        sum_pos += ew[2 * k];
        sum_neg += ew[2 * k + 1];
      }
      total += w * (gamma_ * std::log(sum_pos) + cmax + gamma_ *
                    std::log(sum_neg) - cmin);
      for (uint32_t k = 0; k < net.num_pins; ++k) {
        const CellId c = nl_.pin(net.first_pin + k).cell;
        g[c] += w * (ew[2 * k] / sum_pos - ew[2 * k + 1] / sum_neg);
      }
    }
  }
  return total;
}

// ----------------------------------------------------------- static edges --

std::vector<WlEdge> build_static_edges(const Netlist& nl,
                                       uint32_t clique_max_degree) {
  std::vector<WlEdge> edges;
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const Net& net = nl.net(e);
    const uint32_t deg = net.num_pins;
    if (deg < 2) continue;
    if (deg <= clique_max_degree) {
      const double w = net.weight / static_cast<double>(deg - 1);
      for (uint32_t a = net.first_pin; a < net.first_pin + deg; ++a)
        for (uint32_t b = a + 1; b < net.first_pin + deg; ++b)
          edges.push_back({a, b, w});
    } else {
      for (uint32_t k = net.first_pin + 1; k < net.first_pin + deg; ++k)
        edges.push_back({net.first_pin, k, net.weight});
    }
  }
  return edges;
}

// ------------------------------------------------------------- BetaRegWl --

BetaRegWl::BetaRegWl(const Netlist& nl, double beta,
                     uint32_t clique_max_degree)
    : nl_(nl), edges_(build_static_edges(nl, clique_max_degree)), beta_(beta) {
  if (beta <= 0.0) throw std::invalid_argument("beta must be > 0");
}

double BetaRegWl::value_and_grad(const Placement& p, Vec& gx, Vec& gy) const {
  const size_t n = nl_.num_cells();
  gx.assign(n, 0.0);
  gy.assign(n, 0.0);
  double total = 0.0;
  for (const WlEdge& ed : edges_) {
    const CellId a = nl_.pin(ed.p).cell, b = nl_.pin(ed.q).cell;
    const double dx = pin_x(nl_, p, ed.p) - pin_x(nl_, p, ed.q);
    const double dy = pin_y(nl_, p, ed.p) - pin_y(nl_, p, ed.q);
    const double lx = std::sqrt(dx * dx + beta_);
    const double ly = std::sqrt(dy * dy + beta_);
    total += ed.weight * (lx + ly);
    gx[a] += ed.weight * dx / lx;
    gx[b] -= ed.weight * dx / lx;
    gy[a] += ed.weight * dy / ly;
    gy[b] -= ed.weight * dy / ly;
  }
  return total;
}

// ------------------------------------------------------------ PBetaRegWl --

PBetaRegWl::PBetaRegWl(const Netlist& nl, double p_exponent, double beta)
    : nl_(nl), p_(p_exponent), beta_(beta) {
  if (p_exponent < 2.0) throw std::invalid_argument("p must be >= 2");
  if (beta <= 0.0) throw std::invalid_argument("beta must be > 0");
}

double PBetaRegWl::value_and_grad(const Placement& p, Vec& gx, Vec& gy) const {
  const size_t n = nl_.num_cells();
  gx.assign(n, 0.0);
  gy.assign(n, 0.0);
  double total = 0.0;

  // Per net and axis: (Σ_{i<j} |ci−cj|^p + β)^{1/p}. For stability the
  // pairwise distances are scaled by their max before exponentiation.
  for (NetId e = 0; e < nl_.num_nets(); ++e) {
    const Net& net = nl_.net(e);
    const uint32_t deg = net.num_pins;
    if (deg < 2 || deg > 12) continue;  // p-norm cliques only for small nets

    for (int axis = 0; axis < 2; ++axis) {
      auto coord = [&](PinId k) {
        return axis == 0 ? pin_x(nl_, p, k) : pin_y(nl_, p, k);
      };
      Vec& g = axis == 0 ? gx : gy;

      double dmax = 0.0;
      for (uint32_t a = net.first_pin; a < net.first_pin + deg; ++a)
        for (uint32_t b = a + 1; b < net.first_pin + deg; ++b)
          dmax = std::max(dmax, std::abs(coord(a) - coord(b)));
      const double scale = dmax > 0.0 ? dmax : 1.0;

      double s = beta_ / std::pow(scale, p_);
      for (uint32_t a = net.first_pin; a < net.first_pin + deg; ++a)
        for (uint32_t b = a + 1; b < net.first_pin + deg; ++b)
          s += std::pow(std::abs(coord(a) - coord(b)) / scale, p_);
      const double val = scale * std::pow(s, 1.0 / p_);
      total += net.weight * val;

      // d val / d ci = scale^{1-p} · s^{1/p−1} · Σ_j |ci−cj|^{p−1}·sign
      const double outer =
          std::pow(s, 1.0 / p_ - 1.0) / std::pow(scale, p_ - 1.0);
      for (uint32_t a = net.first_pin; a < net.first_pin + deg; ++a) {
        double acc = 0.0;
        for (uint32_t b = net.first_pin; b < net.first_pin + deg; ++b) {
          if (a == b) continue;
          const double d = coord(a) - coord(b);
          acc += std::pow(std::abs(d), p_ - 1.0) * (d >= 0.0 ? 1.0 : -1.0);
        }
        g[nl_.pin(a).cell] += net.weight * outer * acc;
      }
    }
  }
  return total;
}

}  // namespace complx
