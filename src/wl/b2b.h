// Bound2Bound net decomposition (Spindler, Schlichtmann, Johannes —
// Kraftwerk2), the linearized-quadratic interconnect model used by SimPL and
// by ComPLx's default Φ.
//
// For each net and each axis, the pins at the net's min and max coordinate
// ("bound" pins) are connected to each other and to every inner pin. With
// the weight  w_e · 2 / ((P−1)·|pos_i − pos_j|)  the quadratic form equals
// the net's HPWL at the linearization point, so repeated relinearization
// makes quadratic optimization track the piecewise-linear HPWL objective.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace complx {

/// One linearized spring between two pins of the same net.
struct PinSpring {
  PinId p = 0;
  PinId q = 0;
  double weight = 0.0;
};

enum class Axis { X, Y };

struct B2bOptions {
  /// Lower clamp on pin separation in the weight denominator. The paper
  /// (footnote 6) anchors ε at module dimensions; callers pass something
  /// like 1.5 × row height. Must be > 0 for strict convexity.
  double min_separation = 1.0;
  /// Nets with more pins than this are skipped (ISPD practice: clock/reset
  /// nets with thousands of pins destabilize the model and add little).
  uint32_t max_degree = 3000;
};

/// Builds the Bound2Bound spring list for one axis at linearization point
/// `p`. Degenerate nets (degree < 2) produce nothing.
std::vector<PinSpring> build_b2b(const Netlist& nl, const Placement& p,
                                 Axis axis, const B2bOptions& opts);

/// Buffer-reusing variant: clears and refills `out` (capacity survives, so
/// the QP workspace builds each iteration's spring list allocation-free
/// once warm). Same spring sequence as the value-returning form.
void build_b2b(const Netlist& nl, const Placement& p, Axis axis,
               const B2bOptions& opts, std::vector<PinSpring>& out);

}  // namespace complx
