#include "wl/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "wl/hpwl.h"

namespace complx {

IncrementalHpwl::IncrementalHpwl(const Netlist& nl, const Placement& p)
    : nl_(nl), p_(p) {
  rebuild();
}

double IncrementalHpwl::compute(NetId e) const {
  return nl_.net(e).weight * net_hpwl(nl_, p_, e);
}

void IncrementalHpwl::accumulate(double delta) {
  // Neumaier's variant of Kahan summation: the branch picks whichever
  // operand is large enough for its low-order bits to have been lost.
  const double t = total_ + delta;
  if (std::abs(total_) >= std::abs(delta))
    comp_ += (total_ - t) + delta;
  else
    comp_ += (delta - t) + total_;
  total_ = t;
}

void IncrementalHpwl::rebuild() {
  cost_.resize(nl_.num_nets());
  total_ = 0.0;
  comp_ = 0.0;
  for (NetId e = 0; e < nl_.num_nets(); ++e) {
    cost_[e] = compute(e);
    accumulate(cost_[e]);
  }
}

template <typename Fn>
void IncrementalHpwl::for_distinct_nets(CellId a, CellId b, Fn&& fn) const {
  const auto& na = nl_.nets_of_cell(a);
  if (b == a || b == std::numeric_limits<CellId>::max()) {
    for (NetId e : na) fn(e);
    return;
  }
  scratch_.assign(na.begin(), na.end());
  for (NetId e : nl_.nets_of_cell(b)) scratch_.push_back(e);
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  for (NetId e : scratch_) fn(e);
}

double IncrementalHpwl::incident_cost(CellId a) const {
  double s = 0.0;
  for (NetId e : nl_.nets_of_cell(a)) s += cost_[e];
  return s;
}

double IncrementalHpwl::incident_cost(CellId a, CellId b) const {
  double s = 0.0;
  for_distinct_nets(a, b, [&](NetId e) { s += cost_[e]; });
  return s;
}

double IncrementalHpwl::fresh_incident_cost(CellId a) const {
  double s = 0.0;
  for (NetId e : nl_.nets_of_cell(a)) s += compute(e);
  return s;
}

double IncrementalHpwl::fresh_incident_cost(CellId a, CellId b) const {
  double s = 0.0;
  for_distinct_nets(a, b, [&](NetId e) { s += compute(e); });
  return s;
}

void IncrementalHpwl::refresh(CellId a) {
  for (NetId e : nl_.nets_of_cell(a)) {
    accumulate(-cost_[e]);
    cost_[e] = compute(e);
    accumulate(cost_[e]);
  }
}

void IncrementalHpwl::refresh(CellId a, CellId b) {
  for_distinct_nets(a, b, [&](NetId e) {
    accumulate(-cost_[e]);
    cost_[e] = compute(e);
    accumulate(cost_[e]);
  });
}

}  // namespace complx
