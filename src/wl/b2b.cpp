#include "wl/b2b.h"

#include <algorithm>
#include <cmath>

#include "util/parallel.h"

namespace complx {

namespace {

/// Emits the B2B springs of nets [begin, end) into `springs` in net order.
void build_b2b_range(const Netlist& nl, const Placement& p, Axis axis,
                     const B2bOptions& opts, size_t begin, size_t end,
                     std::vector<PinSpring>& springs) {
  for (size_t e = begin; e < end; ++e) {
    const Net& net = nl.net(static_cast<NetId>(e));
    const uint32_t deg = net.num_pins;
    if (deg < 2 || deg > opts.max_degree) continue;

    // Locate the two bound pins on this axis.
    uint32_t lo = net.first_pin, hi = net.first_pin;
    auto coord = [&](uint32_t k) {
      const Pin& pin = nl.pin(k);
      return axis == Axis::X ? p.x[pin.cell] + pin.dx : p.y[pin.cell] + pin.dy;
    };
    for (uint32_t k = net.first_pin + 1; k < net.first_pin + deg; ++k) {
      if (coord(k) < coord(lo)) lo = k;
      if (coord(k) > coord(hi)) hi = k;
    }
    if (lo == hi) hi = lo == net.first_pin ? lo + 1 : net.first_pin;

    // Weight w_e/((P−1)·sep): in the Σ w (Δ)² convention used throughout
    // this codebase (no ½ factor), the quadratic form then equals the
    // weighted HPWL exactly at the linearization point.
    const double scale = net.weight / static_cast<double>(deg - 1);
    auto emit = [&](uint32_t a, uint32_t b) {
      const double sep =
          std::max(std::abs(coord(a) - coord(b)), opts.min_separation);
      springs.push_back({a, b, scale / sep});
    };

    emit(lo, hi);
    for (uint32_t k = net.first_pin; k < net.first_pin + deg; ++k) {
      if (k == lo || k == hi) continue;
      emit(k, lo);
      emit(k, hi);
    }
  }
}

}  // namespace

std::vector<PinSpring> build_b2b(const Netlist& nl, const Placement& p,
                                 Axis axis, const B2bOptions& opts) {
  std::vector<PinSpring> springs;
  build_b2b(nl, p, axis, opts, springs);
  return springs;
}

void build_b2b(const Netlist& nl, const Placement& p, Axis axis,
               const B2bOptions& opts, std::vector<PinSpring>& springs) {
  const size_t num_nets = nl.num_nets();
  const Partition part = partition_range(num_nets, 512, 64);

  springs.clear();
  if (part.parts <= 1) {
    springs.reserve(2 * nl.num_pins());
    build_b2b_range(nl, p, axis, opts, 0, num_nets, springs);
    return;
  }

  // Per-block spring buffers built in parallel, concatenated in block
  // order: the output is the exact spring sequence of the serial loop, so
  // everything downstream (triplets, CSR, CG) is bitwise unchanged.
  std::vector<std::vector<PinSpring>> blocks(part.parts);
  parallel_for(
      num_nets,
      [&](size_t begin, size_t end) {
        std::vector<PinSpring>& out = blocks[begin / part.chunk];
        out.reserve(3 * (end - begin));
        build_b2b_range(nl, p, axis, opts, begin, end, out);
      },
      part.chunk);

  size_t total = 0;
  for (const auto& blk : blocks) total += blk.size();
  springs.reserve(total);
  for (const auto& blk : blocks)
    springs.insert(springs.end(), blk.begin(), blk.end());
}

}  // namespace complx
