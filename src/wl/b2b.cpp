#include "wl/b2b.h"

#include <algorithm>
#include <cmath>

namespace complx {

std::vector<PinSpring> build_b2b(const Netlist& nl, const Placement& p,
                                 Axis axis, const B2bOptions& opts) {
  std::vector<PinSpring> springs;
  springs.reserve(2 * nl.num_pins());

  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const Net& net = nl.net(e);
    const uint32_t deg = net.num_pins;
    if (deg < 2 || deg > opts.max_degree) continue;

    // Locate the two bound pins on this axis.
    uint32_t lo = net.first_pin, hi = net.first_pin;
    auto coord = [&](uint32_t k) {
      const Pin& pin = nl.pin(k);
      return axis == Axis::X ? p.x[pin.cell] + pin.dx : p.y[pin.cell] + pin.dy;
    };
    for (uint32_t k = net.first_pin + 1; k < net.first_pin + deg; ++k) {
      if (coord(k) < coord(lo)) lo = k;
      if (coord(k) > coord(hi)) hi = k;
    }
    if (lo == hi) hi = lo == net.first_pin ? lo + 1 : net.first_pin;

    // Weight w_e/((P−1)·sep): in the Σ w (Δ)² convention used throughout
    // this codebase (no ½ factor), the quadratic form then equals the
    // weighted HPWL exactly at the linearization point.
    const double scale = net.weight / static_cast<double>(deg - 1);
    auto emit = [&](uint32_t a, uint32_t b) {
      const double sep =
          std::max(std::abs(coord(a) - coord(b)), opts.min_separation);
      springs.push_back({a, b, scale / sep});
    };

    emit(lo, hi);
    for (uint32_t k = net.first_pin; k < net.first_pin + deg; ++k) {
      if (k == lo || k == hi) continue;
      emit(k, lo);
      emit(k, hi);
    }
  }
  return springs;
}

}  // namespace complx
