#include "wl/b2b.h"

#include <algorithm>
#include <cmath>

#include "util/parallel.h"

namespace complx {

namespace {

/// Emits the B2B springs of nets [begin, end) into `springs` in net order.
/// Works on the netlist's raw-array view: per axis, the loop touches the
/// position vector, the pin→cell array and ONE pin-offset array — the SoA
/// payoff on multi-million-pin designs.
///
/// The bound coordinates are carried in registers (lo_c/hi_c) instead of
/// being re-derived from the pin arrays at every comparison, so the scan
/// performs one position load per pin and the emit loop one per spring pair
/// (the AoS-era code did three per pin and two extra per spring). A cached
/// bound equals coord(bound) exactly — same pure arithmetic on unchanged
/// memory — so every comparison, separation and weight is bitwise identical
/// to the re-deriving loop.
void build_b2b_range(const NetlistView& v, const double* pos,
                     const double* off, const B2bOptions& opts, size_t begin,
                     size_t end, std::vector<PinSpring>& springs) {
  for (size_t e = begin; e < end; ++e) {
    const Net& net = v.nets[e];
    const uint32_t deg = net.num_pins;
    if (deg < 2 || deg > opts.max_degree) continue;

    // Locate the two bound pins on this axis.
    auto coord = [&](uint32_t k) { return pos[v.pin_cell[k]] + off[k]; };
    uint32_t lo = net.first_pin, hi = net.first_pin;
    double lo_c = coord(net.first_pin), hi_c = lo_c;
    for (uint32_t k = net.first_pin + 1; k < net.first_pin + deg; ++k) {
      const double c = coord(k);
      if (c < lo_c) {
        lo = k;
        lo_c = c;
      }
      if (c > hi_c) {
        hi = k;
        hi_c = c;
      }
    }
    if (lo == hi) {
      hi = lo == net.first_pin ? lo + 1 : net.first_pin;
      hi_c = coord(hi);
    }

    // Weight w_e/((P−1)·sep): in the Σ w (Δ)² convention used throughout
    // this codebase (no ½ factor), the quadratic form then equals the
    // weighted HPWL exactly at the linearization point.
    const double scale = net.weight / static_cast<double>(deg - 1);
    auto emit = [&](uint32_t a, uint32_t b, double ca, double cb) {
      const double sep = std::max(std::abs(ca - cb), opts.min_separation);
      springs.push_back({a, b, scale / sep});
    };

    emit(lo, hi, lo_c, hi_c);
    for (uint32_t k = net.first_pin; k < net.first_pin + deg; ++k) {
      if (k == lo || k == hi) continue;
      const double c = coord(k);
      emit(k, lo, c, lo_c);
      emit(k, hi, c, hi_c);
    }
  }
}

}  // namespace

std::vector<PinSpring> build_b2b(const Netlist& nl, const Placement& p,
                                 Axis axis, const B2bOptions& opts) {
  std::vector<PinSpring> springs;
  build_b2b(nl, p, axis, opts, springs);
  return springs;
}

void build_b2b(const Netlist& nl, const Placement& p, Axis axis,
               const B2bOptions& opts, std::vector<PinSpring>& springs) {
  const NetlistView v = nl.view();
  const double* pos = axis == Axis::X ? p.x.data() : p.y.data();
  const double* off = axis == Axis::X ? v.pin_dx : v.pin_dy;
  const size_t num_nets = v.num_nets;
  const Partition part = partition_range(num_nets, 512, 64);

  springs.clear();
  if (part.parts <= 1) {
    springs.reserve(2 * v.num_pins);
    build_b2b_range(v, pos, off, opts, 0, num_nets, springs);
    return;
  }

  // Per-block spring buffers built in parallel, concatenated in block
  // order: the output is the exact spring sequence of the serial loop, so
  // everything downstream (triplets, CSR, CG) is bitwise unchanged.
  std::vector<std::vector<PinSpring>> blocks(part.parts);
  parallel_for(
      num_nets,
      [&](size_t begin, size_t end) {
        std::vector<PinSpring>& out = blocks[begin / part.chunk];
        out.reserve(3 * (end - begin));
        build_b2b_range(v, pos, off, opts, begin, end, out);
      },
      part.chunk);

  size_t total = 0;
  for (const auto& blk : blocks) total += blk.size();
  springs.reserve(total);
  for (const auto& blk : blocks)
    springs.insert(springs.end(), blk.begin(), blk.end());
}

}  // namespace complx
