// Incremental HPWL evaluation: a per-net cost cache for move-based
// optimizers. Detailed placement evaluates millions of candidate moves;
// with the cache, the "cost before the move" is a lookup and only the
// mutated configuration needs fresh bounding boxes — roughly halving the
// net-scan work per candidate.
//
// Usage protocol (mirrors DetailedPlacer's accept/reject loop):
//   IncrementalHpwl eval(nl, p);
//   double before = eval.incident_cost(cell);     // cached
//   ... mutate p ...
//   double after = eval.fresh_incident_cost(cell); // recomputed
//   if (accept) eval.refresh(cell); else ... revert p ...
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace complx {

class IncrementalHpwl {
 public:
  /// Builds the cache against `p`. The evaluator keeps a REFERENCE to the
  /// placement; callers mutate it and call refresh()/fresh_* accordingly.
  IncrementalHpwl(const Netlist& nl, const Placement& p);

  /// Total weighted HPWL (sum of cached net costs) — O(1). Maintained with
  /// compensated (Neumaier) accumulation: refresh() adjusts the total by a
  /// subtract/add delta per net, and over the millions of committed moves
  /// of a detailed-placement run a naive running sum drifts measurably from
  /// Σ cost_. The compensation term keeps the drift at rounding level
  /// independent of the move count (regression-tested in test_incremental).
  double total() const { return total_ + comp_; }

  /// Cached cost of one net.
  double net_cost(NetId e) const { return cost_[e]; }

  /// Σ cached costs of the distinct nets incident to `a` (and `b`).
  double incident_cost(CellId a) const;
  double incident_cost(CellId a, CellId b) const;

  /// Σ freshly recomputed costs of the same net set (reflects any pending
  /// placement mutation). Does not modify the cache.
  double fresh_incident_cost(CellId a) const;
  double fresh_incident_cost(CellId a, CellId b) const;

  /// Recomputes and re-caches all nets incident to the given cell(s),
  /// updating the running total. Call after committing a move.
  void refresh(CellId a);
  void refresh(CellId a, CellId b);

  /// Full rebuild (e.g. after bulk placement changes).
  void rebuild();

 private:
  double compute(NetId e) const;
  /// Neumaier-compensated total_ += delta (comp_ carries the rounding).
  void accumulate(double delta);
  template <typename Fn>
  void for_distinct_nets(CellId a, CellId b, Fn&& fn) const;

  const Netlist& nl_;
  const Placement& p_;
  std::vector<double> cost_;
  double total_ = 0.0;
  double comp_ = 0.0;  ///< compensation term of the running total
  mutable std::vector<NetId> scratch_;
};

}  // namespace complx
