// Smooth (twice-differentiable) approximations of HPWL — Section S1 of the
// paper. Any of these can instantiate Φ in the ComPLx Lagrangian; they are
// minimized with the nonlinear Conjugate Gradient in src/nlcg.
//
//  * LseWl      — log-sum-exp (Ruehli/Wolff/Goertzel; "the" nonlinear model)
//  * BetaRegWl  — β-regularization over a fixed edge decomposition:
//                 sqrt((xi−xj)² + β) → |xi−xj| as β → 0
//  * PBetaRegWl — (p,β)-regularization: (Σ|xi−xj|^p + β)^(1/p) per net →
//                 max-pairwise-distance as p → ∞
#pragma once

#include <memory>
#include <vector>

#include "netlist/netlist.h"

namespace complx {

/// Interface: evaluate the smooth wirelength and accumulate its gradient
/// with respect to every cell center. Gradients of fixed cells are written
/// too; the optimizer masks them out.
class SmoothWl {
 public:
  virtual ~SmoothWl() = default;

  /// Returns the objective value; gx/gy are resized and overwritten with
  /// ∂Φ/∂x_c and ∂Φ/∂y_c per cell.
  virtual double value_and_grad(const Placement& p, Vec& gx,
                                Vec& gy) const = 0;
};

/// Log-sum-exp wirelength with smoothing parameter gamma (> 0); smaller
/// gamma tracks HPWL more tightly but is stiffer to optimize.
class LseWl : public SmoothWl {
 public:
  LseWl(const Netlist& nl, double gamma);
  double value_and_grad(const Placement& p, Vec& gx, Vec& gy) const override;

 private:
  const Netlist& nl_;
  double gamma_;
};

/// Fixed pairwise edge used by the regularized models.
struct WlEdge {
  PinId p = 0;
  PinId q = 0;
  double weight = 1.0;
};

/// Builds a static edge decomposition: full clique for nets up to
/// `clique_max_degree` pins, a star-to-first-pin fan for larger nets.
std::vector<WlEdge> build_static_edges(const Netlist& nl,
                                       uint32_t clique_max_degree = 8);

class BetaRegWl : public SmoothWl {
 public:
  BetaRegWl(const Netlist& nl, double beta, uint32_t clique_max_degree = 8);
  double value_and_grad(const Placement& p, Vec& gx, Vec& gy) const override;

 private:
  const Netlist& nl_;
  std::vector<WlEdge> edges_;
  double beta_;
};

class PBetaRegWl : public SmoothWl {
 public:
  PBetaRegWl(const Netlist& nl, double p_exponent, double beta);
  double value_and_grad(const Placement& p, Vec& gx, Vec& gy) const override;

 private:
  const Netlist& nl_;
  double p_;
  double beta_;
};

}  // namespace complx
