// Star and clique net decompositions — the classical alternatives to
// Bound2Bound (paper, Section 2: "Multipin nets are decomposed into sets of
// edges using stars, cliques or the Bound2Bound model"). Used by the
// interconnect-model ablation bench and available through the public API.
#pragma once

#include <vector>

#include "wl/b2b.h"

namespace complx {

/// Clique: every pin pair of a net, weight w_e / (P−1) per edge, linearized
/// by the current pin separation like B2B (Sigl's GORDIAN-L linearization).
/// Nets above `max_degree` are decomposed as stars instead to avoid the
/// quadratic edge blow-up.
std::vector<PinSpring> build_clique(const Netlist& nl, const Placement& p,
                                    Axis axis, const B2bOptions& opts,
                                    uint32_t clique_max_degree = 16);

/// Buffer-reusing variant (clears and refills `out`; capacity survives).
void build_clique(const Netlist& nl, const Placement& p, Axis axis,
                  const B2bOptions& opts, std::vector<PinSpring>& out,
                  uint32_t clique_max_degree = 16);

/// Star: one auxiliary node per net located at the net's pin centroid;
/// every pin connects to it. The auxiliary nodes are *not* solver variables
/// in this formulation — the star center is re-fixed at the centroid of the
/// previous iterate, which keeps the system size at |cells| and behaves like
/// the FastPlace hybrid model in practice.
struct StarSpring {
  PinId p = 0;
  double center = 0.0;  ///< fixed star-center coordinate on this axis
  double weight = 0.0;
};

std::vector<StarSpring> build_star(const Netlist& nl, const Placement& p,
                                   Axis axis, const B2bOptions& opts);

/// Buffer-reusing variant (clears and refills `out`; capacity survives).
void build_star(const Netlist& nl, const Placement& p, Axis axis,
                const B2bOptions& opts, std::vector<StarSpring>& out);

}  // namespace complx
