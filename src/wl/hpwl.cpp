#include "wl/hpwl.h"

#include <algorithm>
#include <limits>

namespace complx {

Rect net_bbox(const Netlist& nl, const Placement& p, NetId e) {
  const Net& n = nl.net(e);
  if (n.num_pins == 0) return {};
  double xl = std::numeric_limits<double>::infinity(), xh = -xl;
  double yl = xl, yh = -xl;
  for (uint32_t k = 0; k < n.num_pins; ++k) {
    const Pin& pin = nl.pin(n.first_pin + k);
    const double px = p.x[pin.cell] + pin.dx;
    const double py = p.y[pin.cell] + pin.dy;
    xl = std::min(xl, px);
    xh = std::max(xh, px);
    yl = std::min(yl, py);
    yh = std::max(yh, py);
  }
  return {xl, yl, xh, yh};
}

double net_hpwl(const Netlist& nl, const Placement& p, NetId e) {
  const Rect b = net_bbox(nl, p, e);
  return (b.xh - b.xl) + (b.yh - b.yl);
}

double hpwl(const Netlist& nl, const Placement& p) {
  double total = 0.0;
  for (NetId e = 0; e < nl.num_nets(); ++e) total += net_hpwl(nl, p, e);
  return total;
}

double weighted_hpwl(const Netlist& nl, const Placement& p) {
  double total = 0.0;
  for (NetId e = 0; e < nl.num_nets(); ++e)
    total += nl.net(e).weight * net_hpwl(nl, p, e);
  return total;
}

double stored_hpwl(const Netlist& nl) {
  return hpwl(nl, nl.snapshot());
}

}  // namespace complx
