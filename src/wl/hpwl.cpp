#include "wl/hpwl.h"

#include <algorithm>
#include <limits>

#include "util/parallel.h"

namespace complx {

namespace {

/// Bounding box of net e out of the raw-array view — the hot-loop body
/// shared by the totals below (per-pin: one id load + two coordinate loads
/// per axis, no Pin materialization).
inline Rect net_bbox_view(const NetlistView& v, const Placement& p, NetId e) {
  const Net& n = v.nets[e];
  if (n.num_pins == 0) return {};
  double xl = std::numeric_limits<double>::infinity(), xh = -xl;
  double yl = xl, yh = -xl;
  for (uint32_t k = n.first_pin; k < n.first_pin + n.num_pins; ++k) {
    const CellId c = v.pin_cell[k];
    const double px = p.x[c] + v.pin_dx[k];
    const double py = p.y[c] + v.pin_dy[k];
    xl = std::min(xl, px);
    xh = std::max(xh, px);
    yl = std::min(yl, py);
    yh = std::max(yh, py);
  }
  return {xl, yl, xh, yh};
}

}  // namespace

Rect net_bbox(const Netlist& nl, const Placement& p, NetId e) {
  return net_bbox_view(nl.view(), p, e);
}

double net_hpwl(const Netlist& nl, const Placement& p, NetId e) {
  const Rect b = net_bbox(nl, p, e);
  return (b.xh - b.xl) + (b.yh - b.yl);
}

// Both totals reduce over nets with the deterministic fixed-chunk scheme:
// per-chunk sums in net order, combined in chunk order — identical bytes at
// any thread count, and identical to the old serial loop for designs with
// at most kReduceChunk nets.
double hpwl(const Netlist& nl, const Placement& p) {
  const NetlistView v = nl.view();
  return parallel_sum(v.num_nets, [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t e = begin; e < end; ++e) {
      const Rect b = net_bbox_view(v, p, static_cast<NetId>(e));
      s += (b.xh - b.xl) + (b.yh - b.yl);
    }
    return s;
  });
}

double weighted_hpwl(const Netlist& nl, const Placement& p) {
  const NetlistView v = nl.view();
  return parallel_sum(v.num_nets, [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t e = begin; e < end; ++e) {
      const Rect b = net_bbox_view(v, p, static_cast<NetId>(e));
      s += v.nets[e].weight * ((b.xh - b.xl) + (b.yh - b.yl));
    }
    return s;
  });
}

double stored_hpwl(const Netlist& nl) {
  return hpwl(nl, nl.snapshot());
}

}  // namespace complx
