#include "wl/hpwl.h"

#include <algorithm>
#include <limits>

#include "util/parallel.h"

namespace complx {

Rect net_bbox(const Netlist& nl, const Placement& p, NetId e) {
  const Net& n = nl.net(e);
  if (n.num_pins == 0) return {};
  double xl = std::numeric_limits<double>::infinity(), xh = -xl;
  double yl = xl, yh = -xl;
  for (uint32_t k = 0; k < n.num_pins; ++k) {
    const Pin& pin = nl.pin(n.first_pin + k);
    const double px = p.x[pin.cell] + pin.dx;
    const double py = p.y[pin.cell] + pin.dy;
    xl = std::min(xl, px);
    xh = std::max(xh, px);
    yl = std::min(yl, py);
    yh = std::max(yh, py);
  }
  return {xl, yl, xh, yh};
}

double net_hpwl(const Netlist& nl, const Placement& p, NetId e) {
  const Rect b = net_bbox(nl, p, e);
  return (b.xh - b.xl) + (b.yh - b.yl);
}

// Both totals reduce over nets with the deterministic fixed-chunk scheme:
// per-chunk sums in net order, combined in chunk order — identical bytes at
// any thread count, and identical to the old serial loop for designs with
// at most kReduceChunk nets.
double hpwl(const Netlist& nl, const Placement& p) {
  return parallel_sum(nl.num_nets(), [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t e = begin; e < end; ++e)
      s += net_hpwl(nl, p, static_cast<NetId>(e));
    return s;
  });
}

double weighted_hpwl(const Netlist& nl, const Placement& p) {
  return parallel_sum(nl.num_nets(), [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t e = begin; e < end; ++e) {
      const NetId id = static_cast<NetId>(e);
      s += nl.net(id).weight * net_hpwl(nl, p, id);
    }
    return s;
  });
}

double stored_hpwl(const Netlist& nl) {
  return hpwl(nl, nl.snapshot());
}

}  // namespace complx
