#include "wl/star_clique.h"

#include <algorithm>
#include <cmath>

namespace complx {

namespace {
double pin_coord(const Netlist& nl, const Placement& p, PinId k, Axis axis) {
  const Pin& pin = nl.pin(k);
  return axis == Axis::X ? p.x[pin.cell] + pin.dx : p.y[pin.cell] + pin.dy;
}
}  // namespace

std::vector<PinSpring> build_clique(const Netlist& nl, const Placement& p,
                                    Axis axis, const B2bOptions& opts,
                                    uint32_t clique_max_degree) {
  std::vector<PinSpring> springs;
  build_clique(nl, p, axis, opts, springs, clique_max_degree);
  return springs;
}

void build_clique(const Netlist& nl, const Placement& p, Axis axis,
                  const B2bOptions& opts, std::vector<PinSpring>& springs,
                  uint32_t clique_max_degree) {
  springs.clear();
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const Net& net = nl.net(e);
    const uint32_t deg = net.num_pins;
    if (deg < 2 || deg > opts.max_degree) continue;

    if (deg > clique_max_degree) {
      // Fall back to star-like bound pairs to keep the edge count linear:
      // connect consecutive pins in coordinate order (a chain has the same
      // span as the clique at the linearization point).
      std::vector<PinId> order;
      order.reserve(deg);
      for (uint32_t k = net.first_pin; k < net.first_pin + deg; ++k)
        order.push_back(k);
      std::sort(order.begin(), order.end(), [&](PinId a, PinId b) {
        return pin_coord(nl, p, a, axis) < pin_coord(nl, p, b, axis);
      });
      for (uint32_t k = 0; k + 1 < deg; ++k) {
        const double sep = std::max(
            std::abs(pin_coord(nl, p, order[k], axis) -
                     pin_coord(nl, p, order[k + 1], axis)),
            opts.min_separation);
        springs.push_back({order[k], order[k + 1], net.weight / sep});
      }
      continue;
    }

    const double w = net.weight / static_cast<double>(deg - 1);
    for (uint32_t a = net.first_pin; a < net.first_pin + deg; ++a) {
      for (uint32_t b = a + 1; b < net.first_pin + deg; ++b) {
        const double sep =
            std::max(std::abs(pin_coord(nl, p, a, axis) -
                              pin_coord(nl, p, b, axis)),
                     opts.min_separation);
        springs.push_back({a, b, w / sep});
      }
    }
  }
}

std::vector<StarSpring> build_star(const Netlist& nl, const Placement& p,
                                   Axis axis, const B2bOptions& opts) {
  std::vector<StarSpring> springs;
  build_star(nl, p, axis, opts, springs);
  return springs;
}

void build_star(const Netlist& nl, const Placement& p, Axis axis,
                const B2bOptions& opts, std::vector<StarSpring>& springs) {
  springs.clear();
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const Net& net = nl.net(e);
    const uint32_t deg = net.num_pins;
    if (deg < 2 || deg > opts.max_degree) continue;

    double centroid = 0.0;
    for (uint32_t k = net.first_pin; k < net.first_pin + deg; ++k)
      centroid += pin_coord(nl, p, k, axis);
    centroid /= static_cast<double>(deg);

    // Star weight w_e · P/(P−1) per pin-to-center spring reproduces the
    // clique sum-of-squares at the centroid.
    const double w =
        net.weight * static_cast<double>(deg) / static_cast<double>(deg - 1);
    for (uint32_t k = net.first_pin; k < net.first_pin + deg; ++k) {
      const double sep = std::max(
          std::abs(pin_coord(nl, p, k, axis) - centroid), opts.min_separation);
      springs.push_back({k, centroid, w / sep});
    }
  }
}

}  // namespace complx
