// Exact (weighted) half-perimeter wirelength — the placement objective of
// Formula 1 in the paper. Pin offsets are honored: a net's bounding box is
// taken over pin positions (cell center + offset), not cell centers.
#pragma once

#include "netlist/netlist.h"

namespace complx {

/// Bounding box of one net under placement `p`. Nets with zero pins yield an
/// empty (0-area) box at the origin.
Rect net_bbox(const Netlist& nl, const Placement& p, NetId e);

/// HPWL of one net (x-extent + y-extent of its pin bounding box).
double net_hpwl(const Netlist& nl, const Placement& p, NetId e);

/// Total unweighted HPWL, Σ_e [net x-extent + net y-extent].
double hpwl(const Netlist& nl, const Placement& p);

/// Total weighted HPWL, Σ_e w_e · [net extent] — the Φ objective.
double weighted_hpwl(const Netlist& nl, const Placement& p);

/// HPWL measured on the positions currently stored in the netlist.
double stored_hpwl(const Netlist& nl);

}  // namespace complx
