// Assembly of the per-axis SPD linear systems for quadratic placement.
//
// Variables are the centers of movable cells; fixed cells and fixed star
// centers contribute to the right-hand side. Pin offsets enter the linear
// term exactly (paper, Section 5: "Mixed-size placement requires careful
// accounting for pin offsets during quadratic optimization").
//
// For a spring of weight w between pin positions (x_a + o_a) and
// (x_b + o_b), the normal equations contribute
//   A[a][a] += w, A[b][b] += w, A[a][b] -= w, A[b][a] -= w,
//   rhs[a]  += w (o_b − o_a),   rhs[b] += w (o_a − o_b),
// with the obvious reduction when one side is fixed.
#pragma once

#include <limits>
#include <vector>

#include "linalg/cg.h"
#include "linalg/sparse.h"
#include "netlist/netlist.h"
#include "wl/b2b.h"
#include "wl/star_clique.h"

namespace complx {

/// Mapping between cells and solver variables (movable cells only).
struct VarMap {
  static constexpr size_t kFixed = std::numeric_limits<size_t>::max();
  std::vector<size_t> var_of_cell;  ///< kFixed for fixed cells
  std::vector<CellId> cell_of_var;

  explicit VarMap(const Netlist& nl);
  size_t num_vars() const { return cell_of_var.size(); }
};

/// Per-axis persistent numeric state for the workspace solve path: the CSR
/// assembler (pattern cache), the PCG scratch vectors, and the movable-
/// coordinate gather buffer. Owned by QpWorkspace and reused every
/// iteration; only the sparsity pattern is cached — all values are restamped
/// each call.
struct SolveWorkspace {
  CsrAssembler assembler;
  CgWorkspace cg;
  Vec x;  ///< warm-start / solution buffer (movable variables)
};

/// Builds A·x = rhs for one axis. Springs reference pins; anchors reference
/// cells directly (pseudonets attach at the cell center).
class SystemBuilder {
 public:
  SystemBuilder(const Netlist& nl, const VarMap& vars, Axis axis,
                const Placement& linearization_point);
  /// The builder keeps a pointer to the linearization point for the
  /// lifetime of the system being assembled — a temporary would dangle.
  SystemBuilder(const Netlist& nl, const VarMap& vars, Axis axis,
                Placement&& linearization_point) = delete;

  /// Rewinds to an empty system at a new linearization point, keeping the
  /// capacity of the triplet and RHS buffers (allocation-free once warm).
  void reset(const Placement& linearization_point);
  void reset(Placement&& linearization_point) = delete;

  void add_pin_springs(const std::vector<PinSpring>& springs);
  void add_star_springs(const std::vector<StarSpring>& springs);
  /// Pseudonet from movable cell `c` to fixed coordinate `target`.
  void add_anchor(CellId c, double target, double weight);

  /// Finalizes the matrix and solves; the solution is scattered back into
  /// the axis coordinates of `p` for movable cells.
  CgResult solve(Placement& p, const CgOptions& opts = {}) const;

  /// Workspace path, split so callers can time assembly and solve
  /// separately: assemble() finalizes the CSR matrix through the pattern
  /// cache (true = cached pattern reused), solve() then runs PCG out of the
  /// workspace buffers. Bitwise identical to the one-shot solve() above.
  bool assemble(SolveWorkspace& ws) const { return ws.assembler.assemble(trip_); }
  CgResult solve(Placement& p, const CgOptions& opts, SolveWorkspace& ws) const;

  /// Exposed for tests: the assembled matrix and RHS.
  CsrMatrix build_matrix() const { return CsrMatrix::from_triplets(trip_); }
  const Vec& rhs() const { return rhs_; }

 private:
  double pin_coord(PinId k) const;
  double pin_offset(PinId k) const;

  const Netlist& nl_;
  const VarMap& vars_;
  Axis axis_;
  // Raw pin arrays for this axis (netlist view): spring stamping resolves
  // pins through two flat loads instead of materializing Pin records.
  const CellId* pin_cell_;
  const double* pin_off_;
  const Placement* point_;  ///< current linearization point (rebindable)
  TripletList trip_;
  Vec rhs_;
};

}  // namespace complx
