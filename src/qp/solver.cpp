#include "qp/solver.h"

#include <algorithm>
#include <memory>

#include "util/parallel.h"
#include "util/timer.h"

namespace complx {

namespace {
void clamp_axis(const Netlist& nl, Vec& coords, Axis axis) {
  const Rect& core = nl.core();
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    if (axis == Axis::X) {
      const double half = c.width / 2.0;
      coords[id] = std::clamp(coords[id], core.xl + half,
                              std::max(core.xl + half, core.xh - half));
    } else {
      const double half = c.height / 2.0;
      coords[id] = std::clamp(coords[id], core.yl + half,
                              std::max(core.yl + half, core.yh - half));
    }
  }
}
}  // namespace

QpIterationResult solve_qp_iteration(const Netlist& nl, const VarMap& vars,
                                     Placement& p, const AnchorSet* anchors,
                                     const QpOptions& opts, QpWorkspace* ws) {
  // Linearize at a frozen copy: both axes use the same linearization point
  // even though x is solved first. The workspace keeps the copy's buffers
  // alive across iterations (assignment reuses capacity).
  Placement local_point;
  (ws ? ws->point : local_point) = p;
  const Placement& point = ws ? ws->point : local_point;

  Timer assembly_timer;

  // Per-axis builders: stack-allocated on the workspace-free path, rebound
  // (capacity retained) on the workspace path.
  std::optional<SystemBuilder> local_x, local_y;
  if (ws) {
    if (ws->x.builder) {
      ws->x.builder->reset(point);
      ws->y.builder->reset(point);
    } else {
      ws->x.builder.emplace(nl, vars, Axis::X, point);
      ws->y.builder.emplace(nl, vars, Axis::Y, point);
    }
  } else {
    local_x.emplace(nl, vars, Axis::X, point);
    local_y.emplace(nl, vars, Axis::Y, point);
  }
  SystemBuilder& builder_x = ws ? *ws->x.builder : *local_x;
  SystemBuilder& builder_y = ws ? *ws->y.builder : *local_y;

  // The two axis systems are independent given the frozen linearization
  // point, so their assembly (net model + anchor pseudonets into triplets)
  // runs concurrently. The CG solves stay sequential on the caller so each
  // solve gets the full pool for its SpMV/reduction parallelism — this is
  // also where the pattern-cached CSR conversion parallelizes over rows.
  auto assemble = [&](SystemBuilder& builder, QpWorkspace::AxisState* st,
                      Axis axis) {
    switch (opts.model) {
      case NetModel::B2B:
        if (st) {
          build_b2b(nl, point, axis, opts.b2b, st->springs);
          builder.add_pin_springs(st->springs);
        } else {
          builder.add_pin_springs(build_b2b(nl, point, axis, opts.b2b));
        }
        break;
      case NetModel::Clique:
        if (st) {
          build_clique(nl, point, axis, opts.b2b, st->springs);
          builder.add_pin_springs(st->springs);
        } else {
          builder.add_pin_springs(build_clique(nl, point, axis, opts.b2b));
        }
        break;
      case NetModel::Star:
        if (st) {
          build_star(nl, point, axis, opts.b2b, st->stars);
          builder.add_star_springs(st->stars);
        } else {
          builder.add_star_springs(build_star(nl, point, axis, opts.b2b));
        }
        break;
    }
    if (anchors) {
      const Vec& tgt = axis == Axis::X ? anchors->target_x : anchors->target_y;
      const Vec& wgt = axis == Axis::X ? anchors->weight_x : anchors->weight_y;
      for (CellId id : nl.movable_cells())
        builder.add_anchor(id, tgt[id], wgt[id]);
    }
  };
  QpWorkspace::AxisState* st_x = ws ? &ws->x : nullptr;
  QpWorkspace::AxisState* st_y = ws ? &ws->y : nullptr;
  parallel_invoke([&] { assemble(builder_x, st_x, Axis::X); },
                  [&] { assemble(builder_y, st_y, Axis::Y); });
  if (ws) ws->stats.assembly_s += assembly_timer.seconds();

  QpIterationResult result;
  for (Axis axis : {Axis::X, Axis::Y}) {
    SystemBuilder& builder = axis == Axis::X ? builder_x : builder_y;
    CgResult cg;
    if (ws) {
      QpWorkspace::AxisState& st = axis == Axis::X ? ws->x : ws->y;
      Timer csr_timer;
      const bool hit = builder.assemble(st.solve);
      ws->stats.assembly_s += csr_timer.seconds();
      if (hit)
        ++ws->stats.pattern_hits;
      else
        ++ws->stats.pattern_misses;
      Timer solve_timer;
      cg = builder.solve(p, opts.cg, st.solve);
      ws->stats.solve_s += solve_timer.seconds();
    } else {
      cg = builder.solve(p, opts.cg);
    }
    if (opts.clamp_to_core)
      clamp_axis(nl, axis == Axis::X ? p.x : p.y, axis);
    (axis == Axis::X ? result.cg_x : result.cg_y) = cg;
  }
  if (ws) ++ws->stats.iterations;
  return result;
}

}  // namespace complx
