#include "qp/solver.h"

#include <algorithm>
#include <memory>

#include "util/parallel.h"

namespace complx {

namespace {
void clamp_axis(const Netlist& nl, Vec& coords, Axis axis) {
  const Rect& core = nl.core();
  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    if (axis == Axis::X) {
      const double half = c.width / 2.0;
      coords[id] = std::clamp(coords[id], core.xl + half,
                              std::max(core.xl + half, core.xh - half));
    } else {
      const double half = c.height / 2.0;
      coords[id] = std::clamp(coords[id], core.yl + half,
                              std::max(core.yl + half, core.yh - half));
    }
  }
}
}  // namespace

QpIterationResult solve_qp_iteration(const Netlist& nl, const VarMap& vars,
                                     Placement& p, const AnchorSet* anchors,
                                     const QpOptions& opts) {
  // Linearize at a frozen copy: both axes use the same linearization point
  // even though x is solved first.
  const Placement point = p;

  // The two axis systems are independent given the frozen linearization
  // point, so their assembly (net model + anchor pseudonets into triplets)
  // runs concurrently. The CG solves stay sequential on the caller so each
  // solve gets the full pool for its SpMV/reduction parallelism.
  SystemBuilder builder_x(nl, vars, Axis::X, point);
  SystemBuilder builder_y(nl, vars, Axis::Y, point);
  auto assemble = [&](SystemBuilder& builder, Axis axis) {
    switch (opts.model) {
      case NetModel::B2B:
        builder.add_pin_springs(build_b2b(nl, point, axis, opts.b2b));
        break;
      case NetModel::Clique:
        builder.add_pin_springs(build_clique(nl, point, axis, opts.b2b));
        break;
      case NetModel::Star:
        builder.add_star_springs(build_star(nl, point, axis, opts.b2b));
        break;
    }
    if (anchors) {
      const Vec& tgt = axis == Axis::X ? anchors->target_x : anchors->target_y;
      const Vec& wgt = axis == Axis::X ? anchors->weight_x : anchors->weight_y;
      for (CellId id : nl.movable_cells())
        builder.add_anchor(id, tgt[id], wgt[id]);
    }
  };
  parallel_invoke([&] { assemble(builder_x, Axis::X); },
                  [&] { assemble(builder_y, Axis::Y); });

  QpIterationResult result;
  for (Axis axis : {Axis::X, Axis::Y}) {
    SystemBuilder& builder = axis == Axis::X ? builder_x : builder_y;
    CgResult cg = builder.solve(p, opts.cg);
    if (opts.clamp_to_core)
      clamp_axis(nl, axis == Axis::X ? p.x : p.y, axis);
    (axis == Axis::X ? result.cg_x : result.cg_y) = cg;
  }
  return result;
}

}  // namespace complx
