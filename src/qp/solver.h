// One linearized quadratic-placement iteration: relinearize the chosen net
// model at the current iterate, add anchor pseudonets, solve both axes.
// This is the primal step of the ComPLx Lagrangian (Formula 10) when Φ is
// the linearized-quadratic model.
#pragma once

#include <optional>

#include "qp/system_builder.h"

namespace complx {

enum class NetModel { B2B, Clique, Star };

/// Per-cell anchor pseudonets representing the linearized λ·L1 penalty term.
/// Entries with weight 0 add nothing. Sized num_cells (fixed entries unused).
struct AnchorSet {
  Vec target_x, target_y;
  Vec weight_x, weight_y;

  explicit AnchorSet(size_t num_cells)
      : target_x(num_cells, 0.0),
        target_y(num_cells, 0.0),
        weight_x(num_cells, 0.0),
        weight_y(num_cells, 0.0) {}
};

struct QpOptions {
  NetModel model = NetModel::B2B;
  B2bOptions b2b;
  CgOptions cg;
  /// Clamp solved coordinates into the core area (cells cannot leave the
  /// placement region).
  bool clamp_to_core = true;
};

struct QpIterationResult {
  CgResult cg_x, cg_y;

  bool breakdown() const { return cg_x.breakdown || cg_y.breakdown; }
  bool fully_converged() const { return cg_x.converged && cg_y.converged; }
};

/// Solves min Φ_Q(x, y) (+ anchor penalties) linearized at `p`, writing the
/// minimizer back into `p`.
QpIterationResult solve_qp_iteration(const Netlist& nl, const VarMap& vars,
                                     Placement& p, const AnchorSet* anchors,
                                     const QpOptions& opts);

}  // namespace complx
