// One linearized quadratic-placement iteration: relinearize the chosen net
// model at the current iterate, add anchor pseudonets, solve both axes.
// This is the primal step of the ComPLx Lagrangian (Formula 10) when Φ is
// the linearized-quadratic model.
#pragma once

#include <optional>

#include "qp/system_builder.h"

namespace complx {

enum class NetModel { B2B, Clique, Star };

/// Per-cell anchor pseudonets representing the linearized λ·L1 penalty term.
/// Entries with weight 0 add nothing. Sized num_cells (fixed entries unused).
struct AnchorSet {
  Vec target_x, target_y;
  Vec weight_x, weight_y;

  explicit AnchorSet(size_t num_cells)
      : target_x(num_cells, 0.0),
        target_y(num_cells, 0.0),
        weight_x(num_cells, 0.0),
        weight_y(num_cells, 0.0) {}
};

struct QpOptions {
  NetModel model = NetModel::B2B;
  B2bOptions b2b;
  CgOptions cg;
  /// Clamp solved coordinates into the core area (cells cannot leave the
  /// placement region).
  bool clamp_to_core = true;
  /// Pass the placer's iteration-persistent QpWorkspace into every primal
  /// step (pattern-cached CSR assembly, allocation-free PCG, spring-buffer
  /// reuse). Results are bitwise identical either way; off forces fresh
  /// assembly every call (ablation / determinism cross-check).
  bool reuse_workspace = true;
};

struct QpIterationResult {
  CgResult cg_x, cg_y;

  bool breakdown() const { return cg_x.breakdown || cg_y.breakdown; }
  bool fully_converged() const { return cg_x.converged && cg_y.converged; }
};

/// Instrumentation of the workspace path, accumulated across iterations.
struct QpWorkspaceStats {
  size_t iterations = 0;      ///< solve_qp_iteration calls with a workspace
  size_t pattern_hits = 0;    ///< axis assemblies that reused the pattern
  size_t pattern_misses = 0;  ///< axis assemblies that rebuilt the structure
  double assembly_s = 0.0;    ///< net model + stamping + CSR assembly
  double solve_s = 0.0;       ///< PCG wall time

  double hit_rate() const {
    const size_t total = pattern_hits + pattern_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(pattern_hits) /
                            static_cast<double>(total);
  }
};

/// Iteration-persistent state for solve_qp_iteration.
///
/// Lifecycle: the placer owns one QpWorkspace for the whole run and passes
/// it to every primal step. First use allocates and binds the per-axis
/// builders; subsequent iterations reuse every buffer (triplets, CSR
/// structure + accumulation schedule, PCG scratch, spring lists, the frozen
/// linearization-point copy). The sparsity-pattern cache self-invalidates
/// by construction — assemble() compares the incoming triplet pattern
/// against the cached one, so a B2B topology change (bound pins moved,
/// net dropped, anchors toggled) is a cache miss, never a wrong reuse.
struct QpWorkspace {
  struct AxisState {
    std::optional<SystemBuilder> builder;  ///< bound on first iteration
    SolveWorkspace solve;
    std::vector<PinSpring> springs;  ///< B2B / clique buffer
    std::vector<StarSpring> stars;   ///< star-model buffer
  };

  AxisState x, y;
  Placement point;  ///< frozen linearization-point buffer
  QpWorkspaceStats stats;

  /// Force-drops both axes' cached sparsity patterns: the next iteration
  /// performs a full CSR rebuild (buffers keep their capacity). The result
  /// of that rebuild is bitwise identical to the cached path.
  void invalidate_pattern() {
    x.solve.assembler.invalidate();
    y.solve.assembler.invalidate();
  }
};

/// Solves min Φ_Q(x, y) (+ anchor penalties) linearized at `p`, writing the
/// minimizer back into `p`. With `ws` non-null, all per-iteration buffers
/// come from the workspace and `ws->stats` is updated; the result is
/// bitwise identical to the workspace-free call.
QpIterationResult solve_qp_iteration(const Netlist& nl, const VarMap& vars,
                                     Placement& p, const AnchorSet* anchors,
                                     const QpOptions& opts,
                                     QpWorkspace* ws = nullptr);

}  // namespace complx
