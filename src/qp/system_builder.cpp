#include "qp/system_builder.h"

namespace complx {

VarMap::VarMap(const Netlist& nl) {
  var_of_cell.assign(nl.num_cells(), kFixed);
  cell_of_var.reserve(nl.num_movable());
  for (CellId id : nl.movable_cells()) {
    var_of_cell[id] = cell_of_var.size();
    cell_of_var.push_back(id);
  }
}

SystemBuilder::SystemBuilder(const Netlist& nl, const VarMap& vars, Axis axis,
                             const Placement& linearization_point)
    : nl_(nl),
      vars_(vars),
      axis_(axis),
      point_(&linearization_point),
      trip_(vars.num_vars()),
      rhs_(vars.num_vars(), 0.0) {
  const NetlistView v = nl.view();
  pin_cell_ = v.pin_cell;
  pin_off_ = axis == Axis::X ? v.pin_dx : v.pin_dy;
}

void SystemBuilder::reset(const Placement& linearization_point) {
  point_ = &linearization_point;
  trip_.clear();  // vector::clear keeps capacity
  rhs_.assign(vars_.num_vars(), 0.0);
}

double SystemBuilder::pin_coord(PinId k) const {
  const Vec& pos = axis_ == Axis::X ? point_->x : point_->y;
  return pos[pin_cell_[k]] + pin_off_[k];
}

double SystemBuilder::pin_offset(PinId k) const { return pin_off_[k]; }

void SystemBuilder::add_pin_springs(const std::vector<PinSpring>& springs) {
  for (const PinSpring& s : springs) {
    const CellId ca = pin_cell_[s.p], cb = pin_cell_[s.q];
    const size_t va = vars_.var_of_cell[ca], vb = vars_.var_of_cell[cb];
    const double oa = pin_offset(s.p), ob = pin_offset(s.q);

    if (va != VarMap::kFixed && vb != VarMap::kFixed) {
      if (va == vb) continue;  // net touches the same cell twice: no force
      trip_.add_spring(va, vb, s.weight);
      rhs_[va] += s.weight * (ob - oa);
      rhs_[vb] += s.weight * (oa - ob);
    } else if (va != VarMap::kFixed) {
      trip_.add_diag(va, s.weight);
      rhs_[va] += s.weight * (pin_coord(s.q) - oa);
    } else if (vb != VarMap::kFixed) {
      trip_.add_diag(vb, s.weight);
      rhs_[vb] += s.weight * (pin_coord(s.p) - ob);
    }
  }
}

void SystemBuilder::add_star_springs(const std::vector<StarSpring>& springs) {
  for (const StarSpring& s : springs) {
    const CellId c = pin_cell_[s.p];
    const size_t v = vars_.var_of_cell[c];
    if (v == VarMap::kFixed) continue;
    trip_.add_diag(v, s.weight);
    rhs_[v] += s.weight * (s.center - pin_offset(s.p));
  }
}

void SystemBuilder::add_anchor(CellId c, double target, double weight) {
  const size_t v = vars_.var_of_cell[c];
  if (v == VarMap::kFixed || weight <= 0.0) return;
  trip_.add_diag(v, weight);
  rhs_[v] += weight * target;
}

CgResult SystemBuilder::solve(Placement& p, const CgOptions& opts) const {
  const CsrMatrix A = CsrMatrix::from_triplets(trip_);
  Vec& coords = axis_ == Axis::X ? p.x : p.y;

  // Warm start from the current iterate: quadratic placement changes little
  // between relinearizations, which saves most CG iterations.
  Vec x(vars_.num_vars());
  for (size_t v = 0; v < vars_.num_vars(); ++v)
    x[v] = coords[vars_.cell_of_var[v]];

  const CgResult res = solve_pcg(A, rhs_, x, opts);
  for (size_t v = 0; v < vars_.num_vars(); ++v)
    coords[vars_.cell_of_var[v]] = x[v];
  return res;
}

CgResult SystemBuilder::solve(Placement& p, const CgOptions& opts,
                              SolveWorkspace& ws) const {
  // Precondition: assemble(ws) ran after the last stamping call — the
  // split exists so the caller can time assembly and solve separately.
  const CsrMatrix& A = ws.assembler.matrix();
  Vec& coords = axis_ == Axis::X ? p.x : p.y;

  ws.x.resize(vars_.num_vars());
  for (size_t v = 0; v < vars_.num_vars(); ++v)
    ws.x[v] = coords[vars_.cell_of_var[v]];

  const CgResult res = solve_pcg(A, rhs_, ws.x, opts, ws.cg);
  for (size_t v = 0; v < vars_.num_vars(); ++v)
    coords[vars_.cell_of_var[v]] = ws.x[v];
  return res;
}

}  // namespace complx
