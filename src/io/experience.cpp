#include "io/experience.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "netlist/netlist.h"
#include "util/log.h"

namespace complx {

ExperienceStore::ExperienceStore(Options opts) : opts_(std::move(opts)) {}

void ExperienceStore::mark_degraded(const std::string& reason) {
  degraded_ = true;
  if (degraded_reason_.empty()) degraded_reason_ = reason;
}

SnapshotError ExperienceStore::open() {
  MutexLock lock(mu_);
  records_.clear();
  std::ifstream in(opts_.path, std::ios::binary);
  if (!in.is_open()) return SnapshotError::None;  // no store yet: cold start
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    // Read error (not absence): treat like a truncated image.
    ++stats_.loads;
    ++stats_.load_failures;
    stats_.count(SnapshotError::Truncated);
    mark_degraded("read failed for " + opts_.path);
    return SnapshotError::Truncated;
  }
  const std::string bytes = buf.str();

  SnapshotParseResult parsed = parse_snapshot(bytes, stats_);
  if (parsed.error != SnapshotError::None) {
    // Quarantine: keep the evidence at "<path>.corrupt" (best effort) so
    // the next save can self-heal the live path. std::rename, not a write:
    // the damaged bytes are preserved verbatim.
    const std::string quarantine = opts_.path + ".corrupt";
    if (std::rename(opts_.path.c_str(), quarantine.c_str()) == 0)
      log_warn("experience store %s: %s (%s) — quarantined to %s",
               opts_.path.c_str(), to_string(parsed.error),
               parsed.detail.c_str(), quarantine.c_str());
    else
      log_warn("experience store %s: %s (%s)", opts_.path.c_str(),
               to_string(parsed.error), parsed.detail.c_str());
    mark_degraded(opts_.path + ": " + to_string(parsed.error) + ": " +
                  parsed.detail);
    return parsed.error;
  }

  save_count_ = parsed.save_count;
  for (SnapshotRecord& r : parsed.records) {
    const uint64_t key = r.key;
    records_.emplace(key, std::move(r));
  }
  if (parsed.records_dropped > 0) {
    // Partial corruption: the surviving records stay serviceable, but the
    // operator must hear about the loss — exit code 4, not silence.
    log_warn("experience store %s: dropped %zu record(s) with payload CRC "
             "mismatch",
             opts_.path.c_str(), parsed.records_dropped);
    mark_degraded(opts_.path + ": " + std::to_string(parsed.records_dropped) +
                  " record(s) dropped (payload CRC)");
  }
  return SnapshotError::None;
}

ExperienceStore::Probe ExperienceStore::lookup(const Netlist& nl) const {
  MutexLock lock(mu_);
  return lookup_locked(nl);
}

ExperienceStore::Probe ExperienceStore::lookup_locked(
    const Netlist& nl) const {
  Probe probe;
  const uint64_t key = netlist_job_hash(nl);
  const auto exact = records_.find(key);
  if (exact != records_.end() &&
      exact->second.x.size() == nl.num_cells()) {
    probe.kind = MatchKind::Exact;
    probe.record = &exact->second;
    return probe;
  }
  const uint64_t topo = netlist_topology_hash(nl);
  for (const auto& [k, rec] : records_) {  // sorted: smallest key wins
    (void)k;
    if (rec.topo == topo && rec.x.size() == nl.num_cells()) {
      probe.kind = MatchKind::Topology;
      probe.record = &rec;
      return probe;
    }
  }
  return probe;
}

WarmStartSource::Hit ExperienceStore::warm_start(const Netlist& nl) const {
  WarmStartSource::Hit hit;
  MutexLock lock(mu_);
  const Probe probe = lookup_locked(nl);
  if (probe.record != nullptr) {
    hit.kind = probe.kind == MatchKind::Exact
                   ? WarmStartSource::MatchKind::Exact
                   : WarmStartSource::MatchKind::Topology;
    hit.x = &probe.record->x;
    hit.y = &probe.record->y;
    hit.hpwl = probe.record->hpwl;
    hit.iterations = probe.record->iterations;
  }
  return hit;
}

bool ExperienceStore::record(const Netlist& nl, const Placement& placement,
                             double hpwl, int iterations) {
  MutexLock lock(mu_);
  if (placement.size() != nl.num_cells()) {
    mark_degraded("record: placement size mismatch");
    return false;
  }
  const uint64_t key = netlist_job_hash(nl);
  SnapshotRecord& rec = records_[key];
  const bool existed = rec.x.size() == nl.num_cells();
  rec.key = key;
  rec.topo = netlist_topology_hash(nl);
  rec.hpwl = hpwl;
  rec.target_density = nl.target_density();
  rec.iterations =
      iterations < 0 ? 0u : static_cast<uint32_t>(iterations);
  rec.saves = existed ? rec.saves + 1 : 1;
  rec.x = placement.x;
  rec.y = placement.y;

  // Deterministic eviction: fewest saves first (cold entries), smallest key
  // breaking ties. The just-written record is exempt.
  while (records_.size() > opts_.max_records) {
    auto victim = records_.end();
    for (auto it = records_.begin(); it != records_.end(); ++it) {
      if (it->first == key) continue;
      if (victim == records_.end() || it->second.saves < victim->second.saves)
        victim = it;
    }
    if (victim == records_.end()) break;
    records_.erase(victim);
  }

  if (!opts_.persist) return true;
  ++save_count_;
  std::vector<SnapshotRecord> flat;
  flat.reserve(records_.size());
  for (const auto& [k, r] : records_) {
    (void)k;
    flat.push_back(r);
  }
  try {
    AtomicWriteOptions wo;
    wo.fsync = opts_.fsync;
    wo.faults = opts_.faults;
    write_file_atomic(opts_.path, serialize_snapshot(std::move(flat),
                                                     save_count_),
                      wo);
  } catch (const std::exception& e) {
    // Atomic protocol guarantee: the previous store content is intact.
    log_warn("experience store save failed: %s", e.what());
    mark_degraded(std::string("save failed: ") + e.what());
    return false;
  }
  return true;
}

}  // namespace complx
