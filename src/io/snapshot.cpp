#include "io/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "netlist/netlist.h"
#include "util/crc32.h"

namespace complx {

namespace {

// ---- little-endian primitives ---------------------------------------
// Explicit byte access (not memcpy of host integers) keeps the on-disk
// format identical across host endianness.

void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<uint64_t>(v));
}

uint32_t get_u32(std::string_view bytes, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[off + static_cast<size_t>(i)]))
         << (8 * i);
  return v;
}

uint64_t get_u64(std::string_view bytes, size_t off) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[off + static_cast<size_t>(i)]))
         << (8 * i);
  return v;
}

double get_f64(std::string_view bytes, size_t off) {
  return std::bit_cast<double>(get_u64(bytes, off));
}

// ---- hashing ---------------------------------------------------------

/// SplitMix64 finalizer: the cheap, high-quality 64-bit mixer used as the
/// Zobrist-style combining step.
constexpr uint64_t mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct Hasher {
  uint64_t state;
  explicit Hasher(uint64_t seed) : state(mix64(seed)) {}
  void add(uint64_t v) { state = mix64(state ^ v); }
  void add_f64(double v) { add(std::bit_cast<uint64_t>(v)); }
};

/// Connectivity + cell-intrinsics: everything a stored placement needs to
/// be shape-compatible with the probing job. No core/rows/fixed
/// positions/density — those are the knobs a near-repeat job turns.
void hash_topology(const Netlist& nl, Hasher& h) {
  h.add(nl.num_cells());
  h.add(nl.num_nets());
  h.add(nl.num_pins());
  for (const Cell& c : nl.cells()) {
    h.add_f64(c.width);
    h.add_f64(c.height);
    h.add(static_cast<uint64_t>(c.kind));
  }
  for (const Net& n : nl.nets()) {
    h.add_f64(n.weight);
    h.add(n.num_pins);
    for (uint32_t k = 0; k < n.num_pins; ++k) {
      const Pin& p = nl.pin(n.first_pin + k);
      h.add(p.cell);
      h.add_f64(p.dx);
      h.add_f64(p.dy);
    }
  }
}

}  // namespace

uint64_t netlist_topology_hash(const Netlist& nl) {
  Hasher h(0x544F504Full);  // "TOPO"
  hash_topology(nl, h);
  return h.state;
}

uint64_t netlist_job_hash(const Netlist& nl) {
  Hasher h(0x4A4F4221ull);  // "JOB!"
  hash_topology(nl, h);
  // Geometry that defines the optimization problem — but NOT movable
  // positions: the same job resubmitted from any start must hit this key.
  h.add_f64(nl.core().xl);
  h.add_f64(nl.core().yl);
  h.add_f64(nl.core().xh);
  h.add_f64(nl.core().yh);
  h.add_f64(nl.target_density());
  for (const Cell& c : nl.cells()) {
    h.add(c.region);
    h.add(c.flipped_x ? 1u : 0u);
    if (!c.movable()) {
      h.add_f64(c.x);
      h.add_f64(c.y);
    }
  }
  h.add(nl.rows().size());
  for (const Row& r : nl.rows()) {
    h.add_f64(r.y);
    h.add_f64(r.height);
    h.add_f64(r.xl);
    h.add_f64(r.xh);
    h.add_f64(r.site_width);
  }
  h.add(nl.regions().size());
  for (const Region& r : nl.regions()) {
    h.add_f64(r.box.xl);
    h.add_f64(r.box.yl);
    h.add_f64(r.box.xh);
    h.add_f64(r.box.yh);
  }
  return h.state;
}

const char* to_string(SnapshotError e) {
  switch (e) {
    case SnapshotError::None: return "none";
    case SnapshotError::Truncated: return "truncated";
    case SnapshotError::BadMagic: return "bad-magic";
    case SnapshotError::VersionSkew: return "version-skew";
    case SnapshotError::BadHeader: return "bad-header";
    case SnapshotError::IndexCrc: return "index-crc";
    case SnapshotError::UnsortedKeys: return "unsorted-keys";
    case SnapshotError::BadRecord: return "bad-record";
  }
  return "unknown";
}

void SnapshotStats::count(SnapshotError e) {
  switch (e) {
    case SnapshotError::None: break;
    case SnapshotError::Truncated: ++truncated; break;
    case SnapshotError::BadMagic: ++bad_magic; break;
    case SnapshotError::VersionSkew: ++version_skew; break;
    case SnapshotError::BadHeader: ++bad_header; break;
    case SnapshotError::IndexCrc: ++index_crc; break;
    case SnapshotError::UnsortedKeys: ++unsorted_keys; break;
    case SnapshotError::BadRecord: ++bad_record; break;
  }
}

// ---- serialization ---------------------------------------------------
//
// Header field offsets (total kSnapshotHeaderBytes = 64):
//    0  char[8]  magic "CPLXSNAP"
//    8  u32      version
//   12  u32      header_bytes (64)
//   16  u32      entry_bytes  (64)
//   20  u32      num_entries
//   24  u64      payload_bytes
//   32  u64      save_count
//   40  u32      index_crc            (CRC-32 of the index section)
//   44  u8[16]   reserved (zero)
//   60  u32      header_crc           (CRC-32 of header bytes [0, 60))
//
// Entry field offsets (total kSnapshotEntryBytes = 64):
//    0  u64      key (netlist_job_hash)
//    8  u64      topo (netlist_topology_hash)
//   16  u64      payload_offset       (from the start of the payload section)
//   24  u32      num_cells
//   28  u32      payload_crc          (CRC-32 of this record's payload)
//   32  f64      hpwl
//   40  u32      iterations
//   44  u32      saves
//   48  f64      target_density
//   56  u8[8]    reserved (zero)

std::string serialize_snapshot(std::vector<SnapshotRecord> records,
                               uint64_t save_count) {
  std::sort(records.begin(), records.end(),
            [](const SnapshotRecord& a, const SnapshotRecord& b) {
              return a.key < b.key;
            });
  for (size_t i = 0; i + 1 < records.size(); ++i)
    if (records[i].key == records[i + 1].key)
      throw std::invalid_argument("serialize_snapshot: duplicate key");

  // Payload first, so each index entry can carry its offset and CRC.
  std::string payload;
  std::vector<uint64_t> offsets(records.size());
  std::vector<uint32_t> crcs(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const SnapshotRecord& r = records[i];
    if (r.x.empty() || r.x.size() != r.y.size())
      throw std::invalid_argument(
          "serialize_snapshot: record needs matching non-empty x/y");
    offsets[i] = payload.size();
    const size_t begin = payload.size();
    for (const double v : r.x) put_f64(payload, v);
    for (const double v : r.y) put_f64(payload, v);
    crcs[i] = crc32(payload.data() + begin, payload.size() - begin);
  }

  std::string index;
  index.reserve(records.size() * kSnapshotEntryBytes);
  for (size_t i = 0; i < records.size(); ++i) {
    const SnapshotRecord& r = records[i];
    put_u64(index, r.key);
    put_u64(index, r.topo);
    put_u64(index, offsets[i]);
    put_u32(index, static_cast<uint32_t>(r.x.size()));
    put_u32(index, crcs[i]);
    put_f64(index, r.hpwl);
    put_u32(index, r.iterations);
    put_u32(index, r.saves);
    put_f64(index, r.target_density);
    index.append(8, '\0');
  }

  std::string out;
  out.reserve(kSnapshotHeaderBytes + index.size() + payload.size());
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  put_u32(out, kSnapshotVersion);
  put_u32(out, kSnapshotHeaderBytes);
  put_u32(out, kSnapshotEntryBytes);
  put_u32(out, static_cast<uint32_t>(records.size()));
  put_u64(out, payload.size());
  put_u64(out, save_count);
  put_u32(out, crc32(index));
  out.append(16, '\0');
  put_u32(out, crc32(out.data(), out.size()));  // header CRC over [0, 60)
  out += index;
  out += payload;
  return out;
}

// ---- parsing / validation --------------------------------------------

namespace {

SnapshotParseResult reject(SnapshotError e, std::string detail) {
  SnapshotParseResult r;
  r.error = e;
  r.detail = std::move(detail);
  return r;
}

}  // namespace

SnapshotParseResult parse_snapshot(std::string_view bytes,
                                   SnapshotStats& stats) {
  ++stats.loads;
  SnapshotParseResult result = [&]() -> SnapshotParseResult {
    if (bytes.size() < kSnapshotHeaderBytes)
      return reject(SnapshotError::Truncated,
                    "file is " + std::to_string(bytes.size()) +
                        " bytes, header needs " +
                        std::to_string(kSnapshotHeaderBytes));
    if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0)
      return reject(SnapshotError::BadMagic, "magic mismatch");
    const uint32_t version = get_u32(bytes, 8);
    if (version != kSnapshotVersion)
      return reject(SnapshotError::VersionSkew,
                    "file version " + std::to_string(version) +
                        ", reader supports " +
                        std::to_string(kSnapshotVersion));
    const uint32_t header_crc = get_u32(bytes, 60);
    if (crc32(bytes.data(), 60) != header_crc)
      return reject(SnapshotError::BadHeader, "header CRC mismatch");
    const uint32_t header_bytes = get_u32(bytes, 12);
    const uint32_t entry_bytes = get_u32(bytes, 16);
    if (header_bytes != kSnapshotHeaderBytes ||
        entry_bytes != kSnapshotEntryBytes)
      return reject(SnapshotError::BadHeader,
                    "unexpected header/entry sizes " +
                        std::to_string(header_bytes) + "/" +
                        std::to_string(entry_bytes));
    const uint32_t num_entries = get_u32(bytes, 20);
    const uint64_t payload_bytes = get_u64(bytes, 24);
    // Overflow-safe size check: index bytes fit in u64 (u32 count * 64),
    // cap payload at 2^62 so the sum cannot wrap.
    const uint64_t index_bytes =
        static_cast<uint64_t>(num_entries) * kSnapshotEntryBytes;
    if (payload_bytes > (1ull << 62))
      return reject(SnapshotError::BadHeader, "absurd payload size");
    const uint64_t expected =
        kSnapshotHeaderBytes + index_bytes + payload_bytes;
    if (bytes.size() < expected)
      return reject(SnapshotError::Truncated,
                    "file is " + std::to_string(bytes.size()) +
                        " bytes, header declares " + std::to_string(expected));
    if (bytes.size() > expected)
      return reject(SnapshotError::BadHeader,
                    std::to_string(bytes.size() - expected) +
                        " trailing bytes past declared size");

    const size_t index_off = kSnapshotHeaderBytes;
    const size_t payload_off = index_off + static_cast<size_t>(index_bytes);
    if (crc32(bytes.data() + index_off, static_cast<size_t>(index_bytes)) !=
        get_u32(bytes, 40))
      return reject(SnapshotError::IndexCrc, "index CRC mismatch");

    SnapshotParseResult ok;
    ok.save_count = get_u64(bytes, 32);
    ok.records.reserve(num_entries);
    uint64_t prev_key = 0;
    for (uint32_t i = 0; i < num_entries; ++i) {
      const size_t e = index_off + static_cast<size_t>(i) * kSnapshotEntryBytes;
      SnapshotRecord rec;
      rec.key = get_u64(bytes, e);
      if (i > 0 && rec.key <= prev_key)
        return reject(SnapshotError::UnsortedKeys,
                      "entry " + std::to_string(i) +
                          " key not strictly ascending");
      prev_key = rec.key;
      rec.topo = get_u64(bytes, e + 8);
      const uint64_t rec_off = get_u64(bytes, e + 16);
      const uint32_t num_cells = get_u32(bytes, e + 24);
      const uint32_t rec_crc = get_u32(bytes, e + 28);
      rec.hpwl = get_f64(bytes, e + 32);
      rec.iterations = get_u32(bytes, e + 40);
      rec.saves = get_u32(bytes, e + 44);
      rec.target_density = get_f64(bytes, e + 48);
      const uint64_t rec_bytes = static_cast<uint64_t>(num_cells) * 16;
      if (num_cells == 0 || rec_off > payload_bytes ||
          rec_bytes > payload_bytes - rec_off)
        return reject(SnapshotError::BadRecord,
                      "entry " + std::to_string(i) +
                          " payload range out of bounds");
      // Payload CRC failure is RECORD-scoped: drop this entry, keep the
      // rest of the store serviceable.
      const size_t p = payload_off + static_cast<size_t>(rec_off);
      if (crc32(bytes.data() + p, static_cast<size_t>(rec_bytes)) != rec_crc) {
        ++ok.records_dropped;
        ++stats.record_crc;
        continue;
      }
      rec.x.resize(num_cells);
      rec.y.resize(num_cells);
      for (uint32_t c = 0; c < num_cells; ++c)
        rec.x[c] = get_f64(bytes, p + static_cast<size_t>(c) * 8);
      for (uint32_t c = 0; c < num_cells; ++c)
        rec.y[c] =
            get_f64(bytes, p + static_cast<size_t>(num_cells + c) * 8);
      ok.records.push_back(std::move(rec));
    }
    return ok;
  }();

  if (result.error != SnapshotError::None) {
    ++stats.load_failures;
    stats.count(result.error);
  }
  return result;
}

}  // namespace complx
