// ExperienceStore: the crash-safe placement memory that turns repeat jobs
// into warm starts.
//
// A placement service sees the same netlist again and again — ECO loops,
// parameter sweeps, nightly reruns. The store keeps one converged placement
// per job (keyed by netlist_job_hash), persisted in the snapshot format of
// io/snapshot.h, and answers probes:
//
//   Exact match     — same job hash: resume from the stored placement at
//                     the finest grid with a short iteration floor; the
//                     solver typically needs a small fraction of the cold
//                     iteration count.
//   Topology match  — same connectivity/cell shapes but different core,
//                     density or fixed cells: the stored placement is still
//                     a far better start than a cold collapse-to-center.
//   Miss            — cold start.
//
// Failure policy (the whole point of this module):
//   * open() NEVER throws on a corrupt store. The file is validated by
//     parse_snapshot; any whole-file corruption class degrades the store to
//     empty (cold starts), quarantines the damaged file by renaming it to
//     "<path>.corrupt" so the evidence survives while the next save
//     self-heals the path, and records the class in stats().
//   * A payload bit flip drops only the damaged record (see snapshot.h).
//   * record() NEVER throws into the placer: a failed save (ENOSPC, failed
//     fsync/rename — injectable via IoFaultInjection) marks the store
//     degraded and returns false. Thanks to the atomic write protocol the
//     previous store content survives any failed save.
//   * degraded() is the signal the CLIs map to exit code 4: the placement
//     itself succeeded, but the experience store is corrupt or unwritable.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/warm_start.h"
#include "io/snapshot.h"
#include "util/atomic_file.h"
#include "util/parallel.h"

namespace complx {

class Netlist;
struct Placement;

class ExperienceStore : public WarmStartSource {
 public:
  struct Options {
    std::string path;       ///< snapshot file (created on first save)
    bool persist = true;    ///< false: in-memory only (tests)
    bool fsync = true;      ///< passed through to the atomic writer
    size_t max_records = 4096;  ///< eviction bound (fewest saves go first)
    /// Write-side fault hooks for the chaos suite; null in production.
    const IoFaultInjection* faults = nullptr;
  };

  explicit ExperienceStore(Options opts);

  /// Loads the store from disk. A missing file is a clean empty store
  /// (returns SnapshotError::None); a corrupt file degrades to empty,
  /// quarantines the file to "<path>.corrupt" and returns the corruption
  /// class. Never throws on malformed input.
  SnapshotError open();

  enum class MatchKind { Miss, Exact, Topology };
  struct Probe {
    MatchKind kind = MatchKind::Miss;
    /// Valid until the next record()/open(); null on Miss.
    const SnapshotRecord* record = nullptr;
  };

  /// Probes for this job. A record is only returned when its cell count
  /// matches the netlist (a topology hit with a different cell count would
  /// be un-applicable). Deterministic: an exact hit wins; otherwise the
  /// topology match with the smallest key.
  Probe lookup(const Netlist& nl) const;

  /// WarmStartSource: lookup() adapted to the core-side interface (the
  /// placer depends on core/warm_start.h only — io sits above core in the
  /// layer DAG, so the store implements the interface, not the reverse).
  WarmStartSource::Hit warm_start(const Netlist& nl) const override;

  /// Records a converged placement for this job and, when persist is on,
  /// rewrites the store atomically. Returns false (and marks the store
  /// degraded) if the save failed; the in-memory record is kept either way.
  bool record(const Netlist& nl, const Placement& placement, double hpwl,
              int iterations);

  /// True after a failed load (whole-file corruption or dropped records) or
  /// a failed save. Maps to CLI exit code 4.
  bool degraded() const COMPLX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return degraded_;
  }
  std::string degraded_reason() const COMPLX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return degraded_reason_;
  }

  SnapshotStats stats() const COMPLX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }
  size_t size() const COMPLX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return records_.size();
  }
  uint64_t save_count() const COMPLX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return save_count_;
  }
  const std::string& path() const { return opts_.path; }  // immutable

 private:
  void mark_degraded(const std::string& reason) COMPLX_REQUIRES(mu_);
  Probe lookup_locked(const Netlist& nl) const COMPLX_REQUIRES(mu_);

  Options opts_;  ///< set in the constructor, never mutated after
  /// Guards every mutable member: a placement service probes (lookup /
  /// warm_start) from worker sessions while completed runs record() back.
  /// The discipline is declared here and proven by the CI clang job's
  /// -Wthread-safety build; complx-lint rule P2 keeps it declared.
  mutable Mutex mu_;
  std::map<uint64_t, SnapshotRecord> records_
      COMPLX_GUARDED_BY(mu_);  // key -> record, sorted
  SnapshotStats stats_ COMPLX_GUARDED_BY(mu_);
  uint64_t save_count_ COMPLX_GUARDED_BY(mu_) = 0;
  bool degraded_ COMPLX_GUARDED_BY(mu_) = false;
  std::string degraded_reason_ COMPLX_GUARDED_BY(mu_);
};

}  // namespace complx
