// Versioned, mmap-friendly binary snapshot format for placements keyed by a
// Zobrist-style netlist hash.
//
// This is the durable half of the placement-as-a-service direction: a store
// that serves millions of jobs will be read by processes that did not write
// it, possibly after the writer was SIGKILLed, the disk filled, or a sector
// rotted. The format is therefore designed so that EVERY corruption class is
// detectable before any byte is interpreted, and detection degrades to "no
// snapshot" (cold start) rather than UB:
//
//   Header (64 bytes):  magic "CPLXSNAP", version, header/entry sizes,
//                       entry count, payload size, save counter, CRC32 of
//                       the index section, CRC32 of the header itself.
//   Index (64 B/entry): fixed-size records sorted strictly by key — the
//                       chess-book layout (cf. octochess simple_book) that
//                       makes a binary-search probe possible straight off a
//                       memory map. Each record: key (full netlist hash),
//                       topology hash, payload offset/cell count, its own
//                       payload CRC32, and solve metadata (HPWL, iteration
//                       count, target density, update count).
//   Payload:            per record, num_cells x-coordinates then num_cells
//                       y-coordinates as IEEE-754 binary64, little-endian.
//
// Validation ladder on load (each rung a distinct SnapshotError, counted in
// SnapshotStats): size < header (Truncated) -> magic (BadMagic) -> version
// (VersionSkew) -> header CRC / sizes (BadHeader) -> declared sizes vs file
// size (Truncated) -> index CRC (IndexCrc) -> key order (UnsortedKeys) ->
// per-record ranges (BadRecord). A payload bit flip fails only that
// record's CRC (RecordCrc): the record is dropped and every other record
// stays serviceable — one damaged job does not cold-start the fleet.
//
// All integers are serialized little-endian via explicit byte access, so
// the format is host-endianness-independent; doubles are serialized as
// their IEEE-754 bit patterns (bitwise round-trip, enforced by tests).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/vec.h"

namespace complx {

class Netlist;

inline constexpr char kSnapshotMagic[8] = {'C', 'P', 'L', 'X',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint32_t kSnapshotHeaderBytes = 64;
inline constexpr uint32_t kSnapshotEntryBytes = 64;

/// Zobrist-style hash of the placement JOB identity: cell dimensions/kinds,
/// net topology with pin offsets, fixed-cell positions, rows, core box and
/// target density. Stored movable positions are deliberately excluded — the
/// same job re-submitted with different incoming positions must probe to
/// the same record.
uint64_t netlist_job_hash(const Netlist& nl);

/// Connectivity-only hash: cells and nets, no geometry (core, rows, fixed
/// positions, density). Two jobs with equal topology hashes are
/// "near-repeat" — e.g. the same netlist at a new target density — and a
/// stored placement is still a far better start than a cold collapse.
uint64_t netlist_topology_hash(const Netlist& nl);

/// First validation failure of a snapshot file (None = loaded cleanly).
enum class SnapshotError {
  None,
  Truncated,     ///< shorter than the header or than its declared sizes
  BadMagic,      ///< not a snapshot file
  VersionSkew,   ///< written by an incompatible format version
  BadHeader,     ///< header CRC mismatch or inconsistent header fields
  IndexCrc,      ///< index section CRC mismatch (bit flip in an entry)
  UnsortedKeys,  ///< duplicate or non-ascending keys — probe contract void
  BadRecord,     ///< entry points outside the payload / zero cells
};
const char* to_string(SnapshotError e);

/// Validation counters, one per corruption class, plus record-level drops.
/// Exposed through ExperienceStore::stats() so operators can see WHY a
/// store degraded to cold starts.
struct SnapshotStats {
  size_t loads = 0;           ///< parse attempts
  size_t load_failures = 0;   ///< parses that returned != None
  size_t truncated = 0;
  size_t bad_magic = 0;
  size_t version_skew = 0;
  size_t bad_header = 0;
  size_t index_crc = 0;
  size_t unsorted_keys = 0;
  size_t bad_record = 0;
  size_t record_crc = 0;      ///< records dropped for a payload CRC mismatch

  void count(SnapshotError e);
};

/// One decoded record: the converged placement of a job plus metadata.
struct SnapshotRecord {
  uint64_t key = 0;    ///< netlist_job_hash of the job
  uint64_t topo = 0;   ///< netlist_topology_hash (near-repeat probe)
  double hpwl = 0.0;   ///< HPWL of the stored placement
  double target_density = 0.0;
  uint32_t iterations = 0;  ///< solver iterations the stored solve took
  uint32_t saves = 1;       ///< times this key has been re-recorded
  Vec x;  ///< cell-center coordinates, all cells, netlist order
  Vec y;
};

/// Serializes records into the binary format. Records need not be sorted;
/// duplicate keys are a logic error (std::invalid_argument). `save_count`
/// is the store's monotonic save counter, recorded in the header.
std::string serialize_snapshot(std::vector<SnapshotRecord> records,
                               uint64_t save_count);

/// Result of parsing a snapshot image.
struct SnapshotParseResult {
  SnapshotError error = SnapshotError::None;
  std::string detail;  ///< human-readable failure context (empty when None)
  uint64_t save_count = 0;
  std::vector<SnapshotRecord> records;  ///< valid records (sorted by key)
  size_t records_dropped = 0;  ///< records discarded for payload CRC errors
};

/// Validates and decodes a snapshot image. NEVER throws on malformed input
/// and never reads out of bounds: every corruption class maps to a
/// SnapshotError (counted in `stats`), and a payload-CRC failure drops only
/// the affected record.
SnapshotParseResult parse_snapshot(std::string_view bytes,
                                   SnapshotStats& stats);

}  // namespace complx
