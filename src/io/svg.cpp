#include "io/svg.h"

#include <stdexcept>

#include "util/atomic_file.h"

namespace complx {

void write_placement_svg(const Netlist& nl, const Placement& p,
                         const std::string& path, const SvgOptions& opts) {
  AtomicFileWriter writer(path);
  std::ostream& out = writer.stream();

  // Drawing frame: the core plus a margin for pads.
  Rect frame = nl.core();
  const double margin = 0.04 * std::max(frame.width(), frame.height());
  frame = {frame.xl - margin, frame.yl - margin, frame.xh + margin,
           frame.yh + margin};
  const double scale = opts.image_width_px / frame.width();
  const double h_px = frame.height() * scale;

  // SVG y grows downward; flip so chip y grows upward.
  auto X = [&](double x) { return (x - frame.xl) * scale; };
  auto Y = [&](double y) { return h_px - (y - frame.yl) * scale; };

  out << "<svg xmlns='http://www.w3.org/2000/svg' width='"
      << opts.image_width_px << "' height='" << h_px << "' viewBox='0 0 "
      << opts.image_width_px << " " << h_px << "'>\n";
  out << "<rect width='100%' height='100%' fill='#ffffff'/>\n";

  auto rect = [&](const Rect& r, const char* fill, const char* stroke,
                  double opacity) {
    out << "<rect x='" << X(r.xl) << "' y='" << Y(r.yh) << "' width='"
        << r.width() * scale << "' height='" << r.height() * scale
        << "' fill='" << fill << "' stroke='" << stroke
        << "' stroke-width='0.5' fill-opacity='" << opacity << "'/>\n";
  };

  // Core outline.
  rect(nl.core(), "none", "#222222", 1.0);

  if (opts.draw_fixed) {
    for (const Cell& c : nl.cells())
      if (!c.movable()) rect(c.bounds(), "#9aa0a6", "#5f6368", 0.8);
  }

  for (CellId id : nl.movable_cells()) {
    const Cell& c = nl.cell(id);
    const Rect r{p.x[id] - c.width / 2.0, p.y[id] - c.height / 2.0,
                 p.x[id] + c.width / 2.0, p.y[id] + c.height / 2.0};
    const bool hot =
        id < opts.highlight.size() && opts.highlight[id] != 0;
    if (c.is_macro()) {
      rect(r, hot ? "#d93025" : "#f9ab00", "#b06000", 0.75);
    } else {
      rect(r, hot ? "#d93025" : "#4285f4", "none", hot ? 0.95 : 0.55);
    }
  }

  if (opts.draw_regions) {
    for (const Region& reg : nl.regions())
      rect(reg.box, "none", "#d93025", 1.0);
  }

  out << "</svg>\n";
  writer.commit();
}

}  // namespace complx
