// SVG placement visualization: core outline, fixed blockages, standard
// cells, movable macros and region boxes — the pictures Figures 2 and 4 of
// the paper show. Written by benches/apps so results can be inspected
// without a plotting stack.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace complx {

struct SvgOptions {
  double image_width_px = 1000.0;
  bool draw_fixed = true;
  bool draw_regions = true;
  /// Optional per-cell highlight flags (e.g. a critical path or a region
  /// group); highlighted cells draw in accent color. Empty = none.
  std::vector<char> highlight;
};

/// Renders placement `p` of `nl` to an SVG file. Throws on I/O failure.
void write_placement_svg(const Netlist& nl, const Placement& p,
                         const std::string& path,
                         const SvgOptions& opts = {});

}  // namespace complx
