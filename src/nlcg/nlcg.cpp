#include "nlcg/nlcg.h"

#include <algorithm>
#include <cmath>

namespace complx {

NlcgResult minimize_nlcg(
    const std::function<double(const Vec&, Vec&)>& value_and_grad, Vec& v,
    const NlcgOptions& opts) {
  NlcgResult result;
  const size_t n = v.size();
  Vec g(n), g_prev(n), d(n), trial(n), g_trial(n);

  double f = value_and_grad(v, g);
  if (!std::isfinite(f)) return result;  // corrupted start: leave v alone
  for (size_t i = 0; i < n; ++i) d[i] = -g[i];
  double g_dot = dot(g, g);
  const double scale = std::max(1.0, norm2(g));
  double step = opts.initial_step;

  for (int it = 0; it < opts.max_iterations; ++it) {
    double ginf = 0.0;
    for (double x : g) ginf = std::max(ginf, std::abs(x));
    if (ginf < opts.grad_tolerance * scale) {
      result.converged = true;
      break;
    }

    // Armijo backtracking along d.
    const double slope = dot(g, d);
    if (slope >= 0.0) {  // not a descent direction: restart with -g
      for (size_t i = 0; i < n; ++i) d[i] = -g[i];
    }
    const double dir_slope = dot(g, d);
    double t = step;
    double f_new = f;
    bool accepted = false;
    for (int bt = 0; bt < opts.max_backtracks; ++bt) {
      for (size_t i = 0; i < n; ++i) trial[i] = v[i] + t * d[i];
      f_new = value_and_grad(trial, g_trial);
      // A non-finite trial value (overflowed exponentials, poisoned
      // gradient) is treated as a failed step, never accepted.
      if (std::isfinite(f_new) &&
          f_new <= f + opts.armijo_c * t * dir_slope) {
        accepted = true;
        break;
      }
      t *= opts.backtrack;
    }
    if (!accepted) break;  // line search failed: local flatness

    v.swap(trial);
    g_prev.swap(g);
    g.swap(g_trial);
    f = f_new;
    // Allow the next line search to grow again.
    step = std::min(opts.initial_step, t / opts.backtrack);

    // Polak–Ribière+ with automatic restart.
    double num = 0.0;
    for (size_t i = 0; i < n; ++i) num += g[i] * (g[i] - g_prev[i]);
    const double beta = std::max(0.0, num / std::max(g_dot, 1e-300));
    g_dot = dot(g, g);
    for (size_t i = 0; i < n; ++i) d[i] = -g[i] + beta * d[i];

    result.iterations = it + 1;
  }
  result.objective = f;
  return result;
}

NlcgResult minimize_smooth_placement(const Netlist& nl, const SmoothWl& wl,
                                     Placement& p, const AnchorSet* anchors,
                                     const NlcgOptions& opts) {
  const std::vector<CellId>& movable = nl.movable_cells();
  const size_t m = movable.size();

  // Flatten movable coordinates: [x..., y...].
  Vec v(2 * m);
  for (size_t k = 0; k < m; ++k) {
    v[k] = p.x[movable[k]];
    v[m + k] = p.y[movable[k]];
  }

  Placement work = p;
  Vec gx, gy;
  auto objective = [&](const Vec& vars, Vec& grad) {
    for (size_t k = 0; k < m; ++k) {
      work.x[movable[k]] = vars[k];
      work.y[movable[k]] = vars[m + k];
    }
    double f = wl.value_and_grad(work, gx, gy);
    grad.assign(2 * m, 0.0);
    for (size_t k = 0; k < m; ++k) {
      grad[k] = gx[movable[k]];
      grad[m + k] = gy[movable[k]];
    }
    if (anchors) {
      for (size_t k = 0; k < m; ++k) {
        const CellId id = movable[k];
        const double dxv = vars[k] - anchors->target_x[id];
        const double dyv = vars[m + k] - anchors->target_y[id];
        f += anchors->weight_x[id] * dxv * dxv +
             anchors->weight_y[id] * dyv * dyv;
        grad[k] += 2.0 * anchors->weight_x[id] * dxv;
        grad[m + k] += 2.0 * anchors->weight_y[id] * dyv;
      }
    }
    return f;
  };

  NlcgResult res = minimize_nlcg(objective, v, opts);

  const Rect& core = nl.core();
  for (size_t k = 0; k < m; ++k) {
    const Cell& c = nl.cell(movable[k]);
    p.x[movable[k]] =
        std::clamp(v[k], core.xl + c.width / 2.0,
                   std::max(core.xl + c.width / 2.0, core.xh - c.width / 2.0));
    p.y[movable[k]] = std::clamp(
        v[m + k], core.yl + c.height / 2.0,
        std::max(core.yl + c.height / 2.0, core.yh - c.height / 2.0));
  }
  return res;
}

}  // namespace complx
