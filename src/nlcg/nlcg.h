// Nonlinear Conjugate Gradient (Polak–Ribière+ with Armijo backtracking),
// used to minimize the smooth interconnect models of Section S1 inside the
// ComPLx Lagrangian: L°(v) = Φ_smooth(v) + Σ w_i (v_i − anchor_i)².
//
// The quadratic pseudonet penalty is the same linearized L1 anchor term the
// QP path uses, so the Lagrangian framework is identical across models —
// the paper's central "any interconnect model plugs in" claim.
#pragma once

#include <functional>

#include "density/backend.h"
#include "linalg/vec.h"
#include "netlist/netlist.h"
#include "qp/solver.h"
#include "wl/smooth.h"

namespace complx {

struct NlcgOptions {
  int max_iterations = 100;
  double grad_tolerance = 1e-3;  ///< stop when ||g||∞ < tol · scale
  double initial_step = 1.0;
  double armijo_c = 1e-4;
  double backtrack = 0.5;
  int max_backtracks = 30;
};

struct NlcgResult {
  int iterations = 0;
  double objective = 0.0;
  bool converged = false;
};

/// Generic minimizer: f maps a flat variable vector to (value, gradient).
NlcgResult minimize_nlcg(
    const std::function<double(const Vec&, Vec&)>& value_and_grad, Vec& v,
    const NlcgOptions& opts);

/// Placement adapter: minimizes Φ_smooth + anchor pseudonets over the
/// movable-cell coordinates of `p` (both axes jointly), then clamps into
/// the core. Returns the final objective.
NlcgResult minimize_smooth_placement(const Netlist& nl, const SmoothWl& wl,
                                     Placement& p, const AnchorSet* anchors,
                                     const NlcgOptions& opts);

/// Smooth wirelength augmented with λ_d × a density model — the nonconvex
/// baseline's objective F = Φ_smooth + λ_d·D, generic over any registered
/// DensityBackend (cosine-bell penalty or FFT field energy). λ_d is held by
/// reference so the caller's outer ramp is seen without rebuilding the
/// adapter.
class DensityAugmentedWl : public SmoothWl {
 public:
  DensityAugmentedWl(const SmoothWl& wl, const DensityBackend& density,
                     const double& lambda_d)
      : wl_(wl), density_(density), lambda_(lambda_d) {}

  double value_and_grad(const Placement& p, Vec& gx,
                        Vec& gy) const override {
    const double f = wl_.value_and_grad(p, gx, gy);
    const double d = density_.value_and_grad(p, dgx_, dgy_);
    for (size_t i = 0; i < gx.size(); ++i) {
      gx[i] += lambda_ * dgx_[i];
      gy[i] += lambda_ * dgy_[i];
    }
    return f + lambda_ * d;
  }

 private:
  const SmoothWl& wl_;
  const DensityBackend& density_;
  const double& lambda_;
  mutable Vec dgx_, dgy_;  ///< gradient scratch (reused across evaluations)
};

}  // namespace complx
