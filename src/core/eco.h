// Incremental (ECO) re-placement: re-solve only the cells inside a dirty
// window, holding everything else bit-exact.
//
// Physical-synthesis flows perturb a tiny fraction of a signed-off
// placement (buffer insertion, gate resizing, a re-synthesized island) and
// cannot afford — or tolerate — a full re-place: even a perfectly stable
// placer moves every cell a little, and every moved cell re-opens timing.
// eco_replace() freezes all movable cells OUTSIDE the window at their
// current positions (temporarily marking them Fixed), warm-starts the
// ComPLx loop from the stored placement, and commits new coordinates ONLY
// for the dirty cells. Frozen cells are never written at all: re-deriving
// a lower-left corner from a center (x + w/2 − w/2) is not an identity in
// floating point, so the only way to guarantee outside cells are bitwise
// untouched is to not touch them.
//
// When the window covers every movable cell the code path IS a full solve
// (plain ComplxPlacer::place()) — not an approximation of one — so
// eco(everything) equals place() bitwise by construction; a regression
// test pins this. The solve reuses the caches a full solve would: the B2B
// sparsity-pattern cache keyed by the (temporarily re-finalized) netlist
// and the projection's summed-area capacity tables.
#pragma once

#include "core/placer.h"
#include "util/geom.h"

namespace complx {

struct EcoOptions {
  /// Dirty window in core coordinates. A movable cell is dirty iff its
  /// CENTER lies inside (boundary-inclusive, Rect::contains semantics).
  Rect window;

  /// Placer configuration for the re-solve. warm_start is forced on for
  /// partial windows (an ECO that collapses the dirty cells to the core
  /// center would throw away the very stability ECO exists for).
  ComplxConfig config;

  /// Commit the re-solved anchor positions of the dirty cells back into
  /// the netlist. When false the result carries the positions but the
  /// netlist is left exactly as it was.
  bool apply = true;
};

struct EcoResult {
  PlaceResult place;        ///< underlying solver result (empty if no dirty cells)
  size_t dirty_cells = 0;   ///< movable cells inside the window
  size_t frozen_cells = 0;  ///< movable cells temporarily fixed
  bool full_solve = false;  ///< window covered every movable → plain place()
};

/// Re-places the movable cells inside opts.window. The netlist is
/// temporarily re-finalized with outside movables frozen and restored
/// before returning (strong exception guarantee on the kind flips). Cells
/// outside the window are bitwise untouched — positions, kinds and pin
/// offsets compare equal byte for byte.
EcoResult eco_replace(Netlist& nl, const EcoOptions& opts);

}  // namespace complx
