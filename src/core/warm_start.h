// WarmStartSource: the core-side interface behind experience-driven warm
// starts.
//
// The placer (core layer) must not depend on where converged placements
// are remembered — that is a service concern (io/experience.h persists
// them in the snapshot format). The declared layer DAG
// (tools/complx_lint/layers.toml) puts io ABOVE core, so core defines this
// interface and the experience store implements it: the classic dependency
// inversion that keeps the include graph acyclic and downward-only.
#pragma once

#include <cstdint>
#include <vector>

namespace complx {

class Netlist;

class WarmStartSource {
 public:
  enum class MatchKind { Miss, Exact, Topology };

  /// One probe answer. On a hit, x/y are cell-indexed positions covering
  /// every cell of the probed netlist (the placer copies movable cells
  /// only); the pointers stay valid until the source is next mutated,
  /// matching ExperienceStore::Probe lifetime.
  struct Hit {
    MatchKind kind = MatchKind::Miss;
    const std::vector<double>* x = nullptr;
    const std::vector<double>* y = nullptr;
    double hpwl = 0.0;        ///< stored wirelength, for logging
    std::uint32_t iterations = 0;  ///< iterations the stored run took
  };

  virtual ~WarmStartSource() = default;

  /// Probes for a stored placement matching this netlist. A Miss (null
  /// x/y) means cold start; never throws.
  virtual Hit warm_start(const Netlist& nl) const = 0;
};

}  // namespace complx
