#include "core/placer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/warm_start.h"
#include "nlcg/nlcg.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"
#include "wl/hpwl.h"
#include "wl/smooth.h"

namespace complx {

namespace {

/// L1 distance between two placements over movable cells only.
double movable_l1(const Netlist& nl, const Placement& a, const Placement& b) {
  double s = 0.0;
  for (CellId id : nl.movable_cells())
    s += std::abs(a.x[id] - b.x[id]) + std::abs(a.y[id] - b.y[id]);
  return s;
}

/// Deterministic symmetry-breaking jitter for the initial placement: all
/// movable cells start at the core center, displaced by a hash of their id
/// within a 2-row-radius disc.
void init_at_center(const Netlist& nl, Placement& p) {
  const Point c = nl.core().center();
  const double r = 2.0 * nl.row_height();
  Rng rng(0xC0417Cull);
  for (CellId id : nl.movable_cells()) {
    p.x[id] = c.x + rng.uniform(-r, r);
    p.y[id] = c.y + rng.uniform(-r, r);
  }
}

}  // namespace

ComplxPlacer::ComplxPlacer(const Netlist& nl, const ComplxConfig& cfg)
    : nl_(nl), cfg_(cfg), criticality_(nl.num_cells(), 1.0) {
  if (cfg_.projection.gamma <= 0.0)
    cfg_.projection.gamma = nl.target_density();
  // Footnote 6 of the paper: the lower bound on pin separation in the
  // linearized model is the average module width. Callers can override.
  if (cfg_.qp.b2b.min_separation <= 1.0)
    cfg_.qp.b2b.min_separation = std::max(1.0, nl.average_movable_width());
}

void ComplxPlacer::set_cell_criticality(Vec criticality) {
  if (criticality.size() != nl_.num_cells())
    throw std::invalid_argument("criticality size mismatch");
  criticality_ = std::move(criticality);
}

AnchorSet ComplxPlacer::make_anchors(const Placement& iterate,
                                     const Placement& proj,
                                     double lambda) const {
  AnchorSet anchors(nl_.num_cells());
  const double eps = cfg_.epsilon_rows * nl_.row_height();
  const double avg_area =
      std::max(nl_.average_movable_width() * nl_.row_height(), 1e-12);

  for (CellId id : nl_.movable_cells()) {
    const Cell& c = nl_.cell(id);
    // Per-macro λ scaling (Section 5): larger blocks get proportionally
    // stronger anchors so they stabilize early; capped for conditioning.
    double mult = criticality_[id];
    if (c.is_macro())
      mult *= std::min(cfg_.macro_lambda_cap, c.area() / avg_area);

    const double lx = lambda * mult;
    anchors.target_x[id] = proj.x[id];
    anchors.target_y[id] = proj.y[id];
    const double dx = std::abs(iterate.x[id] - proj.x[id]);
    const double dy = std::abs(iterate.y[id] - proj.y[id]);
    switch (cfg_.modulation) {
      case AnchorModulation::DistanceNormalized:
        // ComPLx: the linearized L1 penalty — force saturates at ~2λ·m.
        anchors.weight_x[id] = lx / (dx + eps);
        anchors.weight_y[id] = lx / (dy + eps);
        break;
      case AnchorModulation::Fixed:
        // Plain spring: force grows linearly with displacement.
        anchors.weight_x[id] = lx / eps;
        anchors.weight_y[id] = lx / eps;
        break;
      case AnchorModulation::Thresholded: {
        // Spring force clipped at the cap distance (RQL-ish ad hoc rule):
        // a plain spring below T rows, constant force beyond.
        const double cap = cfg_.threshold_rows * nl_.row_height();
        anchors.weight_x[id] = dx <= cap ? lx / eps : lx * cap / (dx * eps);
        anchors.weight_y[id] = dy <= cap ? lx / eps : lx * cap / (dy * eps);
        break;
      }
    }
  }
  return anchors;
}

void ComplxPlacer::check_self_consistency(const Placement& prev_iter,
                                          const Placement& prev_proj,
                                          const Placement& cur_iter,
                                          const Placement& cur_proj,
                                          bool grid_final,
                                          SelfConsistencyStats& stats) const {
  ++stats.checked;
  if (grid_final) ++stats.late_checked;
  // Distances are compared with a 0.5% relative margin: near convergence
  // the four L1 distances approach each other and strict comparisons flip
  // on noise — Formula 11 is about genuine ordering, not ties.
  constexpr double kMargin = 1.005;
  // Formula 11 premise: the new iterate is closer to the old projection
  // than the old iterate was.
  const double old_to_oldproj = movable_l1(nl_, prev_iter, prev_proj);
  const double new_to_oldproj = movable_l1(nl_, cur_iter, prev_proj);
  if (!(old_to_oldproj > kMargin * new_to_oldproj)) {
    ++stats.premise_failed;
    return;
  }
  // Conclusion: it is also closer to its own projection.
  const double old_to_newproj = movable_l1(nl_, prev_iter, cur_proj);
  const double new_to_newproj = movable_l1(nl_, cur_iter, cur_proj);
  if (kMargin * old_to_newproj > new_to_newproj) {
    ++stats.consistent;
  } else {
    ++stats.inconsistent;
    if (grid_final) ++stats.late_inconsistent;
  }
}

double ComplxPlacer::estimate_lambda_star(const Netlist& nl) {
  double force = 0.0;
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const Net& net = nl.net(e);
    if (net.num_pins < 2) continue;
    const double p = static_cast<double>(net.num_pins);
    force += net.weight * 2.0 * (2.0 * p - 3.0) / (p - 1.0);
  }
  const double per_cell =
      force / std::max<double>(1.0, static_cast<double>(nl.num_movable()));
  return std::max(1e-9, 0.5 * per_cell);
}

PlaceResult ComplxPlacer::place() { return place_impl(nullptr); }

PlaceResult ComplxPlacer::place_from(const Placement& initial) {
  if (initial.size() != nl_.num_cells())
    throw std::invalid_argument("initial placement size mismatch");
  const bool saved = cfg_.warm_start;
  cfg_.warm_start = true;
  PlaceResult result = place_impl(&initial);
  cfg_.warm_start = saved;
  return result;
}

PlaceResult ComplxPlacer::place_impl(const Placement* initial) {
  if (cfg_.threads > 0) set_global_threads(cfg_.threads);

  Timer timer;
  PlaceResult result;

  Placement p = initial ? *initial : nl_.snapshot();

  // Warm-start probe (core/warm_start.h): an exact or near-repeat hit
  // replaces the cold collapse-to-center with the stored converged
  // placement. Movable cells only — fixed positions always come from THIS
  // netlist, so a topology hit with moved terminals stays consistent. A
  // miss, a degraded source, or no source at all is the cold path, bitwise.
  bool from_experience = false;
  if (!initial && !cfg_.warm_start && cfg_.experience) {
    const WarmStartSource::Hit hit = cfg_.experience->warm_start(nl_);
    if (hit.x != nullptr && hit.y != nullptr) {
      for (CellId id : nl_.movable_cells()) {
        p.x[id] = (*hit.x)[id];
        p.y[id] = (*hit.y)[id];
      }
      from_experience = true;
      log_debug("experience store: %s hit (stored hpwl %.4g, %u iterations)",
                hit.kind == WarmStartSource::MatchKind::Exact ? "exact"
                                                              : "topology",
                hit.hpwl, hit.iterations);
    }
  }
  // Both warm-start flavours skip the bootstrap and the λ=0 phase and jump
  // λ toward the balance point; the experience flavour additionally starts
  // at the finest grid (the stored solution is already spread — coarse
  // re-projection would shred it) and lowers the iteration floor.
  const bool warm = cfg_.warm_start || from_experience;
  result.warm_started = from_experience;
  if (!warm) init_at_center(nl_, p);
  const VarMap vars(nl_);

  // Mutable copy: the recovery policy may relax the CG tolerance and add a
  // diagonal shift after repeated PCG breakdown.
  QpOptions qp_opts = cfg_.qp;
  bool inject_breakdown = false;  // armed per-iteration by the fault hooks

  // Iteration-persistent QP workspace: triplet/CSR buffers with sparsity-
  // pattern reuse, PCG scratch, spring lists. Bitwise-neutral (the golden
  // determinism suite compares it against fresh assembly); qp.reuse_workspace
  // turns it off for ablation.
  QpWorkspace qp_ws;
  auto fold_workspace_stats = [&] {
    result.solver.pattern_hits = qp_ws.stats.pattern_hits;
    result.solver.pattern_misses = qp_ws.stats.pattern_misses;
    result.solver.assembly_s = qp_ws.stats.assembly_s;
    result.solver.solve_s = qp_ws.stats.solve_s;
  };
  auto fold_projection_stats = [&](const ProjectionTimers& t) {
    ++result.solver.projections;
    result.solver.proj_grid_build_s += t.grid_build_s;
    result.solver.proj_region_find_s += t.region_find_s;
    result.solver.proj_spread_s += t.spread_s;
    result.solver.proj_readback_s += t.readback_s;
  };

  // Primal minimizer: linearized-quadratic B2B by default, log-sum-exp via
  // nonlinear CG when configured (Section S1 instantiation). Returns true
  // when the linear solver reported a breakdown (QP path only).
  std::unique_ptr<LseWl> lse;
  if (cfg_.use_lse)
    lse = std::make_unique<LseWl>(nl_,
                                  cfg_.lse_gamma_rows * nl_.row_height());
  auto primal_step = [&](const AnchorSet* anchors) -> bool {
    if (lse) {
      NlcgOptions o;
      o.max_iterations = cfg_.nlcg_iterations;
      minimize_smooth_placement(nl_, *lse, p, anchors, o);
      return false;
    }
    QpOptions opts = qp_opts;
    opts.cg.inject_breakdown = inject_breakdown;
    const QpIterationResult qr = solve_qp_iteration(
        nl_, vars, p, anchors, opts,
        qp_opts.reuse_workspace ? &qp_ws : nullptr);
    result.solver.add(qr.cg_x);
    result.solver.add(qr.cg_y);
    if (!qr.fully_converged())
      log_debug("cg non-converged (residual x=%.3g y=%.3g)",
                qr.cg_x.residual_norm, qr.cg_y.residual_norm);
    return qr.breakdown();
  };

  // --- Initial unconstrained minimization of Φ (λ = 0) -------------------
  // Skipped on warm starts: the incoming placement is already spread, and
  // an unconstrained solve would collapse it.
  if (!warm)
    for (int i = 0; i < cfg_.initial_iterations; ++i) primal_step(nullptr);

  // --- Projection machinery and grid schedule ----------------------------
  const std::unique_ptr<ProjectionBackend> lal_ptr =
      make_projection_backend(cfg_.density_backend, nl_, cfg_.projection);
  ProjectionBackend& lal = *lal_ptr;
  const size_t finest = lal.bins_x();
  double bins =
      from_experience
          ? static_cast<double>(finest)
          : std::max(4.0, static_cast<double>(finest) /
                              std::max(cfg_.grid_coarsening, 1.0));
  lal.set_grid(static_cast<size_t>(bins), static_cast<size_t>(bins));

  ProjectionResult proj = lal.project(p);
  fold_projection_stats(proj.timers);
  if (post_projection_) {
    post_projection_(proj.anchors);
    proj.displacement_l1 = movable_l1(nl_, p, proj.anchors);
  }

  const double lambda_star = estimate_lambda_star(nl_);
  const double h_base =
      cfg_.schedule == ScheduleKind::SimplLinearRamp
          ? lambda_star / (3.0 * cfg_.lambda_ramp_steps)
          : lambda_star / cfg_.lambda_ramp_steps;
  LambdaSchedule schedule(cfg_.schedule, cfg_.h_factor);
  schedule.init(weighted_hpwl(nl_, p), proj.displacement_l1, h_base);
  if (warm) {
    // Jump λ to a fraction of its balance value so the incoming placement
    // is respected from the first iteration.
    while (schedule.lambda() < cfg_.warm_lambda_fraction * lambda_star)
      schedule.update(proj.displacement_l1, proj.displacement_l1);
  }

  auto make_stats = [&](int iter, double lambda, const ProjectionResult& pr,
                        size_t grid_bins) {
    IterationStats st;
    st.iteration = iter;
    st.lambda = lambda;
    st.phi_lower = weighted_hpwl(nl_, p);
    st.phi_upper = weighted_hpwl(nl_, pr.anchors);
    st.pi = pr.displacement_l1;
    st.lagrangian = st.phi_lower + lambda * st.pi;
    st.overflow_ratio = pr.input_overflow_ratio;
    st.gap = st.phi_upper > 0.0
                 ? (st.phi_upper - st.phi_lower) / st.phi_upper
                 : 0.0;
    st.grid_bins = grid_bins;
    st.elapsed_s = timer.seconds();
    return st;
  };

  // --- Watchdog / recovery state -----------------------------------------
  // All monitor checks are read-only: a healthy run executes bitwise the
  // same arithmetic with the watchdog on or off.
  const bool watchdog = cfg_.health.enabled;
  HealthMonitor monitor(nl_, cfg_.health);
  CheckpointStore best;
  int consecutive_faults = 0;  // rollbacks since the last healthy iteration
  int breakdown_streak = 0;    // consecutive CG-breakdown faults
  int pending_recoveries = 0;  // recoveries to stamp on the next trace row

  result.trace.push_back(make_stats(0, schedule.lambda(), proj, lal.bins_x()));

  if (watchdog) {
    // A corrupted *initial* state is unrecoverable — no checkpoint exists
    // yet — so surface a structured failure instead of iterating on NaNs.
    HealthFault f0 = HealthFault::None;
    if (!HealthMonitor::placement_finite(nl_, p))
      f0 = HealthFault::NonFiniteIterate;
    else if (!HealthMonitor::placement_finite(nl_, proj.anchors))
      f0 = HealthFault::NonFiniteAnchors;
    else
      f0 = monitor.check_stats(result.trace.back());
    if (f0 != HealthFault::None) {
      monitor.stats().count(f0);
      result.failed = true;
      result.stop = StopReason::Diverged;
      result.failure = std::string("initial state: ") + to_string(f0);
      log_error("placement aborted: %s", result.failure.c_str());
      result.lower_bound = std::move(p);
      result.anchors = proj.anchors;
      result.final_lambda = schedule.lambda();
      result.final_overflow = result.trace.back().overflow_ratio;
      result.health = monitor.stats();
      result.health.density_clamped_cells = lal.density_clamped_cells();
      fold_workspace_stats();
      result.runtime_s = timer.seconds();
      return result;
    }
  }
  monitor.accept(result.trace.back());
  if (watchdog)
    best.offer(nl_, p, proj.anchors, schedule.lambda(),
               proj.displacement_l1, 0, lal.bins_x(),
               result.trace.back().overflow_ratio,
               result.trace.back().phi_upper);

  Placement prev_iter = p;
  Placement prev_proj = proj.anchors;
  double prev_pi = proj.displacement_l1;

  // Restores the loop state from the best-so-far checkpoint and backs off
  // λ (halving per consecutive retry); from the second consecutive CG
  // breakdown also relaxes the CG tolerance and regularizes the diagonal.
  // Returns false when the retry budget is spent.
  auto rollback = [&](int iter, HealthFault fault) -> bool {
    monitor.stats().count(fault);
    if (!best.valid() || consecutive_faults >= cfg_.recovery.max_retries)
      return false;
    ++consecutive_faults;
    ++result.recovered;
    ++pending_recoveries;
    if (fault == HealthFault::CgBreakdown) {
      ++breakdown_streak;
      if (breakdown_streak >= 2) {
        qp_opts.cg.rel_tolerance *= cfg_.recovery.cg_tol_relax;
        qp_opts.cg.diag_shift += cfg_.recovery.diag_shift;
      }
    }
    const Checkpoint ck = best.snapshot();
    p = ck.iterate;
    proj.anchors = ck.anchors;
    proj.displacement_l1 = ck.pi;
    proj.input_overflow_ratio = ck.overflow;
    prev_iter = p;
    prev_proj = proj.anchors;
    prev_pi = ck.pi;
    double backed_off = ck.lambda;
    for (int i = 0; i < consecutive_faults; ++i)
      backed_off *= cfg_.recovery.lambda_backoff;
    schedule.set_lambda(std::max(backed_off, 1e-12));
    log_warn("iter %d: %s — rolled back to iteration %d, lambda %.3g "
             "(retry %d/%d)",
             iter, to_string(fault), ck.trace_index, schedule.lambda(),
             consecutive_faults, cfg_.recovery.max_retries);
    return true;
  };

  StopReason stop = StopReason::MaxIterations;

  // Warm plateau detector. Baseline = the resumed solution's projected
  // quality: an iteration must beat it (and then keep beating its own best)
  // by warm_plateau_tol to keep the run alive. Cold runs never read these,
  // so the cold path stays bitwise identical with the detector compiled in.
  double warm_best_phi = from_experience
                             ? result.trace.back().phi_upper
                             : std::numeric_limits<double>::infinity();
  int warm_stall = 0;

  auto give_up = [&](int iter, HealthFault fault) {
    result.failed = true;
    stop = StopReason::Diverged;
    result.failure = "iteration " + std::to_string(iter) + ": " +
                     to_string(fault) + ": recovery retries exhausted (" +
                     std::to_string(cfg_.recovery.max_retries) + ")";
    log_error("placement diverged: %s", result.failure.c_str());
  };

  // --- Primal-dual iterations --------------------------------------------
  int k = 1;
  for (; k <= cfg_.max_iterations; ++k) {
    // complx-lint: allow(P1): relaxed poll of the external cancel flag;
    // control flow only — no data the numeric kernels read is involved.
    if (cfg_.cancel && cfg_.cancel->load(std::memory_order_relaxed)) {
      stop = StopReason::Cancelled;
      break;
    }
    if (cfg_.time_limit_s > 0.0 && timer.seconds() >= cfg_.time_limit_s) {
      stop = StopReason::TimeLimit;
      break;
    }

    double lambda_k = schedule.lambda();
    if (faults_.corrupt_lambda) lambda_k = faults_.corrupt_lambda(k, lambda_k);
    if (watchdog && !std::isfinite(lambda_k)) {
      if (!rollback(k, HealthFault::NonFiniteLambda)) {
        give_up(k, HealthFault::NonFiniteLambda);
        break;
      }
      continue;
    }

    const AnchorSet anchors = make_anchors(p, proj.anchors, lambda_k);
    inject_breakdown =
        faults_.force_cg_breakdown && faults_.force_cg_breakdown(k);
    const bool solver_broke = primal_step(&anchors);
    inject_breakdown = false;
    if (faults_.corrupt_iterate) faults_.corrupt_iterate(k, p);

    if (watchdog) {
      HealthFault fault = HealthFault::None;
      if (solver_broke)
        fault = HealthFault::CgBreakdown;
      else if (!HealthMonitor::placement_finite(nl_, p))
        fault = HealthFault::NonFiniteIterate;
      if (fault != HealthFault::None) {
        if (!rollback(k, fault)) {
          give_up(k, fault);
          break;
        }
        continue;
      }
    }

    bins = std::min(static_cast<double>(finest), bins * cfg_.grid_refine_rate);
    lal.set_grid(static_cast<size_t>(bins), static_cast<size_t>(bins));

    // Routability (SimPLR/Ripple): periodically re-estimate congestion and
    // inflate crowded standard cells before projecting.
    if (cfg_.routability.enabled &&
        (k % std::max(1, cfg_.routability.period)) == 0) {
      CongestionMap congestion(nl_, cfg_.routability.rudy);
      congestion.build(p);
      lal.set_inflation(
          compute_inflation(nl_, p, congestion, cfg_.routability.inflation));
    }

    proj = lal.project(p);
    fold_projection_stats(proj.timers);
    if (post_projection_) {
      post_projection_(proj.anchors);
      proj.displacement_l1 = movable_l1(nl_, p, proj.anchors);
    }

    if (watchdog && !HealthMonitor::placement_finite(nl_, proj.anchors)) {
      if (!rollback(k, HealthFault::NonFiniteAnchors)) {
        give_up(k, HealthFault::NonFiniteAnchors);
        break;
      }
      continue;
    }

    check_self_consistency(prev_iter, prev_proj, p, proj.anchors,
                           lal.bins_x() >= finest,
                           result.self_consistency);

    schedule.update(prev_pi, proj.displacement_l1);
    IterationStats st = make_stats(k, schedule.lambda(), proj, lal.bins_x());
    st.recoveries = pending_recoveries;

    if (watchdog) {
      const HealthFault fault = monitor.check_stats(st);
      if (fault != HealthFault::None) {
        if (!rollback(k, fault)) {
          give_up(k, fault);
          break;
        }
        continue;
      }
    }

    result.trace.push_back(st);
    monitor.accept(st);
    pending_recoveries = 0;
    consecutive_faults = 0;
    breakdown_streak = 0;
    if (watchdog)
      best.offer(nl_, p, proj.anchors, st.lambda, st.pi, st.iteration,
                 st.grid_bins, st.overflow_ratio, st.phi_upper);
    log_debug("iter %3d lambda=%.5f phi=[%.4g, %.4g] pi=%.4g ovfl=%.3f", k,
              st.lambda, st.phi_lower, st.phi_upper, st.pi,
              st.overflow_ratio);

    prev_iter = p;
    prev_proj = proj.anchors;
    prev_pi = proj.displacement_l1;

    // Convergence (Section 4): the SimPL criterion accepts once the iterate
    // is nearly C-feasible; the refined ComPLx criterion additionally stops
    // on a small duality gap (detailed placement runs on the anchors, so
    // the gap bounds the cost difference).
    const bool grid_final = lal.bins_x() >= finest;
    const int min_iters =
        from_experience ? cfg_.warm_min_iterations : cfg_.min_iterations;
    if (k >= min_iters && grid_final) {
      if (st.overflow_ratio < cfg_.stop_overflow) {
        stop = StopReason::Converged;
        break;
      }
      if (cfg_.use_gap_criterion && st.gap < cfg_.stop_gap &&
          st.overflow_ratio < 2.0 * cfg_.stop_overflow) {
        stop = StopReason::Converged;
        break;
      }
      // Warm plateau (experience resumes only): the run started at the
      // stored quality, so once Φ̄ stops improving on it there is nothing
      // left in the budget worth spending — exit and let the checkpoint
      // fallback below return the best state seen (resumed or better).
      if (from_experience) {
        if (st.phi_upper < warm_best_phi * (1.0 - cfg_.warm_plateau_tol)) {
          warm_best_phi = st.phi_upper;
          warm_stall = 0;
        } else if (++warm_stall >= cfg_.warm_plateau_window) {
          stop = StopReason::Plateau;
          log_debug("iter %d: warm plateau — phi_upper %.4g stalled for %d "
                    "iterations",
                    k, st.phi_upper, warm_stall);
          break;
        }
      }
    }
  }

  // Which placement to return: a clean converged exit returns the final
  // iterate untouched (the watchdog adds zero perturbation to healthy
  // runs). Every other exit — divergence, iteration exhaustion, warm
  // plateau, time limit, cancellation — falls back to the best-so-far
  // checkpoint when it ranks strictly better by (overflow, Φ_upper), and
  // any exit whose final state is non-finite always does.
  const IterationStats& last = result.trace.back();
  Checkpoint ck;
  bool use_checkpoint = false;
  if (best.valid()) {
    ck = best.take();  // the loop is done — move the placements out
    const bool final_finite =
        HealthMonitor::placement_finite(nl_, p) &&
        HealthMonitor::placement_finite(nl_, proj.anchors);
    if (!final_finite)
      use_checkpoint = true;
    else if (stop != StopReason::Converged &&
             Checkpoint::ranks_better(ck.grid_bins, ck.overflow,
                                      ck.phi_upper, last.grid_bins,
                                      last.overflow_ratio, last.phi_upper))
      use_checkpoint = true;
  }
  if (use_checkpoint) {
    result.lower_bound = std::move(ck.iterate);
    result.anchors = std::move(ck.anchors);
    result.final_lambda = ck.lambda;
    result.final_overflow = ck.overflow;
    result.best_iteration = ck.trace_index;
  } else {
    result.lower_bound = std::move(p);
    result.anchors = std::move(proj.anchors);
    result.final_lambda = schedule.lambda();
    result.final_overflow = last.overflow_ratio;
    result.best_iteration = last.iteration;
  }
  result.iterations = std::min(k, cfg_.max_iterations);
  result.stop = stop;
  result.health = monitor.stats();
  result.health.density_clamped_cells = lal.density_clamped_cells();
  fold_workspace_stats();
  result.runtime_s = timer.seconds();
  return result;
}

}  // namespace complx
