// Lagrange-multiplier scheduling (paper Section 4).
//
// ComPLx (Formula 12):
//   λ₁     = Φ / (100 · Π)                      — penalty starts 100× below Φ
//   λ_{k+1} = min{ 2·λ_k,  λ_k + (Π_{k+1}/Π_k)·h }  — capped geometric growth
//
// SimPL's fixed ramp (pseudo-net weight 0.01·(1+k)) and naive doubling are
// provided for the special-case demonstration and the schedule ablation.
#pragma once

#include <algorithm>
#include <cmath>

namespace complx {

enum class ScheduleKind {
  ComplxFormula12,  ///< the paper's schedule
  SimplLinearRamp,  ///< SimPL: λ_k = 0.01 · (1 + k)
  NaiveDoubling,    ///< λ_{k+1} = 2 λ_k (ablation strawman)
};

class LambdaSchedule {
 public:
  LambdaSchedule(ScheduleKind kind, double h_factor = 1.0)
      : kind_(kind), h_factor_(h_factor) {}

  /// Sets λ₁ from the first interconnect cost Φ and penalty Π (paper:
  /// λ₁ = Φ/(100·Π) so the Lagrangian starts cost-dominated).
  ///
  /// `h_base` is the absolute scaling constant h of Formula 12 (for the
  /// SimPL ramp, the per-iteration step). The ComPLx driver derives it from
  /// a force-balance estimate of the final multiplier so convergence takes
  /// a size-independent number of iterations (Section S3's flat iteration
  /// counts). When h_base <= 0, h falls back to h_factor · λ₁.
  /// Non-finite inputs (a corrupted first trace point) fall back to the
  /// zero-penalty default instead of seeding λ with NaN.
  void init(double phi, double pi, double h_base = 0.0) {
    const bool sane = std::isfinite(phi) && std::isfinite(pi) && pi > 0.0;
    switch (kind_) {
      case ScheduleKind::ComplxFormula12:
        lambda_ = sane ? phi / (100.0 * pi) : 1e-6;
        h_ = h_base > 0.0 ? h_factor_ * h_base : h_factor_ * lambda_;
        break;
      case ScheduleKind::SimplLinearRamp:
        step_ = h_base > 0.0 ? h_factor_ * h_base : 0.01 * h_factor_;
        lambda_ = step_;
        break;
      case ScheduleKind::NaiveDoubling:
        lambda_ = sane ? phi / (100.0 * pi) : 1e-6;
        break;
    }
    clamp();
    iteration_ = 1;
  }

  /// Advances λ given the previous and current penalty values (Formula 12).
  /// Non-finite penalties are treated as ratio 1 (the neutral step) and λ is
  /// clamped to the finite ceiling — NaiveDoubling would otherwise reach Inf
  /// after ~1000 iterations, and Formula 12's ratio is undefined when the
  /// projection returned a corrupted Π.
  void update(double pi_prev, double pi_cur) {
    ++iteration_;
    switch (kind_) {
      case ScheduleKind::ComplxFormula12: {
        const double ratio =
            (pi_prev > 0.0 && std::isfinite(pi_prev) && std::isfinite(pi_cur) &&
             pi_cur >= 0.0)
                ? pi_cur / pi_prev
                : 1.0;
        lambda_ = std::min(2.0 * lambda_, lambda_ + ratio * h_);
        break;
      }
      case ScheduleKind::SimplLinearRamp:
        lambda_ = step_ * (1.0 + static_cast<double>(iteration_));
        break;
      case ScheduleKind::NaiveDoubling:
        lambda_ *= 2.0;
        break;
    }
    clamp();
  }

  double lambda() const { return lambda_; }
  int iteration() const { return iteration_; }
  ScheduleKind kind() const { return kind_; }

  /// Finite ceiling for λ. Healthy runs converge at O(1) multipliers
  /// (Section S3), so the default is unreachable except under runaway
  /// growth — it exists to keep long ablation runs finite.
  double max_lambda() const { return lambda_max_; }
  void set_max_lambda(double m) {
    if (std::isfinite(m) && m > 0.0) lambda_max_ = m;
    clamp();
  }

  /// Overrides λ directly (recovery rollback-and-backoff); clamped to
  /// [0, max_lambda] and sanitized against non-finite values.
  void set_lambda(double l) {
    lambda_ = std::isfinite(l) ? std::max(0.0, l) : lambda_max_;
    clamp();
  }

 private:
  void clamp() {
    if (!std::isfinite(lambda_) || lambda_ > lambda_max_)
      lambda_ = lambda_max_;
  }

  ScheduleKind kind_;
  double h_factor_;
  double lambda_ = 0.0;
  double h_ = 0.0;
  double step_ = 0.01;  ///< SimPL ramp per-iteration increment
  double lambda_max_ = 1e12;
  int iteration_ = 0;
};

}  // namespace complx
