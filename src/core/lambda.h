// Lagrange-multiplier scheduling (paper Section 4).
//
// ComPLx (Formula 12):
//   λ₁     = Φ / (100 · Π)                      — penalty starts 100× below Φ
//   λ_{k+1} = min{ 2·λ_k,  λ_k + (Π_{k+1}/Π_k)·h }  — capped geometric growth
//
// SimPL's fixed ramp (pseudo-net weight 0.01·(1+k)) and naive doubling are
// provided for the special-case demonstration and the schedule ablation.
#pragma once

#include <algorithm>

namespace complx {

enum class ScheduleKind {
  ComplxFormula12,  ///< the paper's schedule
  SimplLinearRamp,  ///< SimPL: λ_k = 0.01 · (1 + k)
  NaiveDoubling,    ///< λ_{k+1} = 2 λ_k (ablation strawman)
};

class LambdaSchedule {
 public:
  LambdaSchedule(ScheduleKind kind, double h_factor = 1.0)
      : kind_(kind), h_factor_(h_factor) {}

  /// Sets λ₁ from the first interconnect cost Φ and penalty Π (paper:
  /// λ₁ = Φ/(100·Π) so the Lagrangian starts cost-dominated).
  ///
  /// `h_base` is the absolute scaling constant h of Formula 12 (for the
  /// SimPL ramp, the per-iteration step). The ComPLx driver derives it from
  /// a force-balance estimate of the final multiplier so convergence takes
  /// a size-independent number of iterations (Section S3's flat iteration
  /// counts). When h_base <= 0, h falls back to h_factor · λ₁.
  void init(double phi, double pi, double h_base = 0.0) {
    switch (kind_) {
      case ScheduleKind::ComplxFormula12:
        lambda_ = pi > 0.0 ? phi / (100.0 * pi) : 1e-6;
        h_ = h_base > 0.0 ? h_factor_ * h_base : h_factor_ * lambda_;
        break;
      case ScheduleKind::SimplLinearRamp:
        step_ = h_base > 0.0 ? h_factor_ * h_base : 0.01 * h_factor_;
        lambda_ = step_;
        break;
      case ScheduleKind::NaiveDoubling:
        lambda_ = pi > 0.0 ? phi / (100.0 * pi) : 1e-6;
        break;
    }
    iteration_ = 1;
  }

  /// Advances λ given the previous and current penalty values (Formula 12).
  void update(double pi_prev, double pi_cur) {
    ++iteration_;
    switch (kind_) {
      case ScheduleKind::ComplxFormula12: {
        const double ratio = pi_prev > 0.0 ? pi_cur / pi_prev : 1.0;
        lambda_ = std::min(2.0 * lambda_, lambda_ + ratio * h_);
        break;
      }
      case ScheduleKind::SimplLinearRamp:
        lambda_ = step_ * (1.0 + static_cast<double>(iteration_));
        break;
      case ScheduleKind::NaiveDoubling:
        lambda_ *= 2.0;
        break;
    }
  }

  double lambda() const { return lambda_; }
  int iteration() const { return iteration_; }
  ScheduleKind kind() const { return kind_; }

 private:
  ScheduleKind kind_;
  double h_factor_;
  double lambda_ = 0.0;
  double h_ = 0.0;
  double step_ = 0.01;  ///< SimPL ramp per-iteration increment
  int iteration_ = 0;
};

}  // namespace complx
