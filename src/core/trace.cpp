#include "core/trace.h"

#include "util/csv.h"

namespace complx {

void write_trace_csv(const std::string& path,
                     const std::vector<IterationStats>& trace) {
  // elapsed_s stays the LAST column: it is the one field that legitimately
  // differs between otherwise-identical runs, and downstream tooling strips
  // it by position when comparing traces.
  CsvWriter csv(path, {"iteration", "lambda", "phi_lower", "phi_upper", "pi",
                       "lagrangian", "overflow_ratio", "gap", "grid_bins",
                       "recoveries", "elapsed_s"});
  for (const IterationStats& it : trace) {
    csv.row(std::vector<double>{
        static_cast<double>(it.iteration), it.lambda, it.phi_lower,
        it.phi_upper, it.pi, it.lagrangian, it.overflow_ratio, it.gap,
        static_cast<double>(it.grid_bins), static_cast<double>(it.recoveries),
        it.elapsed_s});
  }
}

}  // namespace complx
