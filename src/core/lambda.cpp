// LambdaSchedule is header-only; this TU anchors the module in the build.
#include "core/lambda.h"
