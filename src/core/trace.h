// Per-iteration instrumentation of the primal-dual loop. Figure 1 (L, Φ, Π
// progressions), Figure 3 / Section S3 (final λ and iteration counts) and
// the Section S2 self-consistency statistics are all read from this trace.
#pragma once

#include <string>
#include <vector>

namespace complx {

struct IterationStats {
  int iteration = 0;
  double lambda = 0.0;
  double phi_lower = 0.0;   ///< Φ of the iterate (x, y) — lower bound
  double phi_upper = 0.0;   ///< Φ of the anchors (x°, y°) — upper bound
  double pi = 0.0;          ///< Π: L1 distance to the projection
  double lagrangian = 0.0;  ///< Φ_lower + λ·Π
  double overflow_ratio = 0.0;  ///< density overflow of the iterate
  double gap = 0.0;             ///< (Φ_upper − Φ_lower) / Φ_upper
  size_t grid_bins = 0;
  /// Cumulative wall time at the end of this iteration. This is the only
  /// wall-clock field in the trace; the per-phase assembly/solve split of
  /// the QP workspace is run-cumulative and lives on SolverStats (surfaced
  /// via `complx_place --stats`), not per trace row, so the CSV keeps its
  /// strip-the-last-column comparison convention.
  double elapsed_s = 0.0;
  /// Rollback-and-backoff recoveries performed between the previous recorded
  /// iteration and this one (0 on healthy steps — faulted steps themselves
  /// are never recorded, so the trace stays finite by construction).
  int recoveries = 0;
};

/// Section S2 bookkeeping for the approximate projection's self-consistency
/// (Formula 11), checked between consecutive iterations.
struct SelfConsistencyStats {
  size_t checked = 0;       ///< consecutive pairs examined
  size_t premise_failed = 0;  ///< sufficient condition not satisfied
  size_t consistent = 0;    ///< premise held and conclusion held
  size_t inconsistent = 0;  ///< premise held but conclusion violated
  /// Same counters restricted to iterations where the spreading grid has
  /// reached its final resolution — the paper observes inconsistencies
  /// "mostly in the early global placement iterations (<5)", which for us
  /// is the grid-refinement phase.
  size_t late_checked = 0;
  size_t late_inconsistent = 0;

  double consistent_fraction() const {
    return checked ? static_cast<double>(consistent) /
                         static_cast<double>(checked)
                   : 1.0;
  }
  double inconsistent_fraction() const {
    return checked ? static_cast<double>(inconsistent) /
                         static_cast<double>(checked)
                   : 0.0;
  }
  double premise_failed_fraction() const {
    return checked ? static_cast<double>(premise_failed) /
                         static_cast<double>(checked)
                   : 0.0;
  }
  double late_inconsistent_fraction() const {
    return late_checked ? static_cast<double>(late_inconsistent) /
                              static_cast<double>(late_checked)
                        : 0.0;
  }
};

/// Writes the trace as CSV (one row per iteration).
void write_trace_csv(const std::string& path,
                     const std::vector<IterationStats>& trace);

}  // namespace complx
