#include "core/health.h"

namespace complx {

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::Converged: return "converged";
    case StopReason::Plateau: return "plateau";
    case StopReason::MaxIterations: return "max-iterations";
    case StopReason::TimeLimit: return "time-limit";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::Diverged: return "diverged";
  }
  return "unknown";
}

const char* to_string(HealthFault f) {
  switch (f) {
    case HealthFault::None: return "none";
    case HealthFault::NonFiniteIterate: return "non-finite iterate";
    case HealthFault::NonFiniteAnchors: return "non-finite anchors";
    case HealthFault::NonFiniteLambda: return "non-finite lambda";
    case HealthFault::NonFiniteStats: return "non-finite statistics";
    case HealthFault::ObjectiveBlowup: return "objective blow-up";
    case HealthFault::PenaltyBlowup: return "penalty blow-up";
    case HealthFault::LagrangianBlowup: return "lagrangian blow-up";
    case HealthFault::CgBreakdown: return "cg breakdown";
  }
  return "unknown";
}

void HealthStats::count(HealthFault f) {
  if (f == HealthFault::None) return;
  ++faults;
  switch (f) {
    case HealthFault::None: break;
    case HealthFault::NonFiniteIterate: ++nonfinite_iterate; break;
    case HealthFault::NonFiniteAnchors: ++nonfinite_anchors; break;
    case HealthFault::NonFiniteLambda: ++nonfinite_lambda; break;
    case HealthFault::NonFiniteStats: ++nonfinite_stats; break;
    case HealthFault::ObjectiveBlowup: ++objective_blowups; break;
    case HealthFault::PenaltyBlowup: ++penalty_blowups; break;
    case HealthFault::LagrangianBlowup: ++lagrangian_blowups; break;
    case HealthFault::CgBreakdown: ++cg_breakdowns; break;
  }
}

bool HealthMonitor::placement_finite(const Netlist& nl, const Placement& p) {
  for (CellId id : nl.movable_cells())
    if (!std::isfinite(p.x[id]) || !std::isfinite(p.y[id])) return false;
  return true;
}

HealthFault HealthMonitor::check_stats(const IterationStats& st) const {
  if (!std::isfinite(st.lambda)) return HealthFault::NonFiniteLambda;
  if (!std::isfinite(st.phi_lower) || !std::isfinite(st.phi_upper) ||
      !std::isfinite(st.pi) || !std::isfinite(st.lagrangian) ||
      !std::isfinite(st.overflow_ratio))
    return HealthFault::NonFiniteStats;
  // Blow-up tests compare against references from accepted iterations only,
  // so the very first iteration can never be flagged as divergent.
  if (best_phi_ > 0.0 && std::isfinite(best_phi_) &&
      st.phi_lower > opts_.phi_blowup_ratio * best_phi_)
    return HealthFault::ObjectiveBlowup;
  if (max_pi_ > 0.0 && st.pi > opts_.pi_blowup_ratio * max_pi_)
    return HealthFault::PenaltyBlowup;
  if (best_lagrangian_ > 0.0 && std::isfinite(best_lagrangian_) &&
      st.lagrangian > opts_.lagrangian_blowup_ratio * best_lagrangian_)
    return HealthFault::LagrangianBlowup;
  return HealthFault::None;
}

void HealthMonitor::accept(const IterationStats& st) {
  ++stats_.checks;
  if (std::isfinite(st.phi_lower) && st.phi_lower < best_phi_)
    best_phi_ = st.phi_lower;
  if (std::isfinite(st.lagrangian) && st.lagrangian < best_lagrangian_)
    best_lagrangian_ = st.lagrangian;
  if (std::isfinite(st.pi) && st.pi > max_pi_) max_pi_ = st.pi;
}

bool Checkpoint::offer(const Netlist& nl, const Placement& it,
                       const Placement& anc, double lam, double pi_value,
                       int index, size_t bins, double ovfl, double phi_up) {
  if (!std::isfinite(lam) || !std::isfinite(pi_value) ||
      !std::isfinite(ovfl) || !std::isfinite(phi_up))
    return false;
  if (valid() &&
      ranks_better(grid_bins, overflow, phi_upper, bins, ovfl, phi_up))
    return false;
  if (!HealthMonitor::placement_finite(nl, it) ||
      !HealthMonitor::placement_finite(nl, anc))
    return false;
  iterate = it;
  anchors = anc;
  lambda = lam;
  pi = pi_value;
  trace_index = index;
  grid_bins = bins;
  overflow = ovfl;
  phi_upper = phi_up;
  return true;
}

}  // namespace complx
