// Numerical-safety watchdog for the primal-dual loop.
//
// The ComPLx iteration is numerically well-behaved on sane inputs, but a
// production placer cannot assume sane inputs: a near-singular system can
// break the PCG solve, an unlucky λ schedule can overflow, and a single
// non-finite coordinate poisons every downstream kernel (projection,
// density, HPWL). This module provides the three pieces the driver uses to
// degrade gracefully instead of emitting NaN placements:
//
//  * HealthMonitor   — validates every iterate/projection for NaN/Inf and
//                      detects divergence from the trace (Φ/Π/L blow-up
//                      beyond configurable ratios, non-finite λ);
//  * Checkpoint      — the best-so-far snapshot (anchors, iterate, λ, trace
//                      index) ranked by (grid resolution, overflow_ratio,
//                      then Φ_upper), so the run can always return the best
//                      known placement on divergence, iteration exhaustion,
//                      a wall-clock budget or SIGINT;
//  * FaultInjection  — test-only callbacks (same spirit as the existing
//                      post-projection hook) that corrupt the iterate, the
//                      multiplier, or force a PCG breakdown, so recovery can
//                      be proven end-to-end without compile-time switches.
//
// The recovery policy itself (rollback + λ backoff + CG relaxation) lives in
// the driver (core/placer.cpp); this header defines its knobs.
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <utility>

#include "core/trace.h"
#include "linalg/cg.h"
#include "netlist/netlist.h"
#include "util/atomic_file.h"
#include "util/fpcmp.h"
#include "util/parallel.h"

namespace complx {

/// Why the primal-dual loop returned.
enum class StopReason {
  Converged,      ///< overflow / duality-gap criterion met
  Plateau,        ///< warm restart stalled at its resumed quality (good exit)
  MaxIterations,  ///< iteration budget exhausted before convergence
  TimeLimit,      ///< wall-clock budget exhausted
  Cancelled,      ///< external cancel flag raised (e.g. SIGINT)
  Diverged,       ///< numerical failure and recovery retries exhausted
};
const char* to_string(StopReason r);

/// The first problem detected in one iteration (None = healthy).
enum class HealthFault {
  None,
  NonFiniteIterate,   ///< NaN/Inf coordinate after the primal step
  NonFiniteAnchors,   ///< NaN/Inf coordinate in the projection output
  NonFiniteLambda,    ///< multiplier overflowed or was corrupted
  NonFiniteStats,     ///< Φ/Π/L/overflow evaluated to NaN/Inf
  ObjectiveBlowup,    ///< Φ_lower grew beyond ratio × best seen
  PenaltyBlowup,      ///< Π grew beyond ratio × largest healthy value
  LagrangianBlowup,   ///< L grew beyond ratio × best seen
  CgBreakdown,        ///< PCG reported pAp <= 0 (system not SPD)
};
const char* to_string(HealthFault f);

/// Aggregate per-run statistics of the inner linear solves (both axes, all
/// iterations, including the λ = 0 warm-up). Previously solve_qp_iteration's
/// CgResults were discarded; now the driver folds them in here.
struct SolverStats {
  size_t solves = 0;
  size_t nonconverged = 0;        ///< budget exhausted above tolerance
  size_t breakdowns = 0;          ///< pAp <= 0 exits
  size_t total_cg_iterations = 0;
  double worst_residual = 0.0;    ///< max final ||b - Ax|| over all solves

  // QP-workspace instrumentation (copied from QpWorkspaceStats by the
  // driver; all zero when the workspace is disabled). The assembly/solve
  // split shows where each primal step's wall time went; the hit counters
  // show how often the B2B sparsity pattern survived relinearization.
  size_t pattern_hits = 0;
  size_t pattern_misses = 0;
  double assembly_s = 0.0;  ///< net model + stamping + CSR assembly
  double solve_s = 0.0;     ///< PCG wall time

  // Feasibility-projection phase split, accumulated over every project()
  // call (ProjectionTimers folded in by the driver). grid-build covers mote
  // materialization plus the movable density deposit — the fixed blockage
  // field is cached inside LookAheadLegalizer and only rebuilt when the
  // grid resolution changes.
  size_t projections = 0;
  double proj_grid_build_s = 0.0;
  double proj_region_find_s = 0.0;
  double proj_spread_s = 0.0;
  double proj_readback_s = 0.0;

  void add(const CgResult& r) {
    ++solves;
    if (!r.converged) ++nonconverged;
    if (r.breakdown) ++breakdowns;
    total_cg_iterations += r.iterations;
    if (r.residual_norm > worst_residual) worst_residual = r.residual_norm;
  }
};

/// Event counters kept by the watchdog (exposed on PlaceResult).
struct HealthStats {
  size_t checks = 0;             ///< iterations examined
  size_t faults = 0;             ///< total faults detected
  size_t nonfinite_iterate = 0;
  size_t nonfinite_anchors = 0;
  size_t nonfinite_lambda = 0;
  size_t nonfinite_stats = 0;
  size_t objective_blowups = 0;
  size_t penalty_blowups = 0;
  size_t lagrangian_blowups = 0;
  size_t cg_breakdowns = 0;
  /// Off-core / non-finite cell centers the density backend clamped onto
  /// the core across the run (DensityStats fold-in; each one used to lose
  /// its deposited area silently).
  size_t density_clamped_cells = 0;

  void count(HealthFault f);
};

/// Divergence thresholds. The ratios are deliberately loose: the watchdog
/// exists to catch runaway numerics, not to second-guess a noisy but
/// convergent trajectory.
struct HealthOptions {
  bool enabled = true;
  double phi_blowup_ratio = 50.0;   ///< Φ_lower vs best (smallest) seen
  double pi_blowup_ratio = 20.0;    ///< Π vs largest healthy value seen
  double lagrangian_blowup_ratio = 100.0;  ///< L vs best (smallest) seen
};

/// Rollback-and-backoff policy applied when the monitor flags a bad step.
struct RecoveryOptions {
  int max_retries = 3;          ///< consecutive rollbacks before giving up
  double lambda_backoff = 0.5;  ///< λ multiplier per consecutive retry
  /// Applied from the second consecutive PCG breakdown onward: the CG
  /// tolerance is multiplied by cg_tol_relax and diag_shift is added to the
  /// system diagonal (Tikhonov regularization) to restore positive
  /// definiteness.
  double cg_tol_relax = 10.0;
  double diag_shift = 1e-6;
};

/// Validates iterates and per-iteration statistics. All checks are
/// read-only: on a healthy run the monitor perturbs nothing — the
/// determinism suite holds bitwise with the watchdog enabled.
class HealthMonitor {
 public:
  HealthMonitor(const Netlist& nl, const HealthOptions& opts)
      : nl_(nl), opts_(opts) {}

  /// True iff every movable coordinate of `p` is finite.
  static bool placement_finite(const Netlist& nl, const Placement& p);

  /// Examines one iteration's statistics against the references accumulated
  /// from previously accepted iterations. Does not update references.
  HealthFault check_stats(const IterationStats& st) const;

  /// Accepts a healthy iteration: folds its values into the divergence
  /// references (best Φ/L, largest Π).
  void accept(const IterationStats& st);

  const HealthStats& stats() const { return stats_; }
  HealthStats& stats() { return stats_; }
  const Netlist& netlist() const { return nl_; }

 private:
  const Netlist& nl_;
  HealthOptions opts_;
  HealthStats stats_;
  double best_phi_ = std::numeric_limits<double>::infinity();
  double best_lagrangian_ = std::numeric_limits<double>::infinity();
  double max_pi_ = 0.0;
};

/// Best-so-far snapshot of the loop state, ranked by (grid resolution, then
/// overflow_ratio, then Φ_upper): the placement ultimately handed to
/// legalization is the anchor set, so "best" means densest-feasible first,
/// cheapest second. Grid resolution leads because overflow ratios are only
/// comparable at equal bin counts — the spreading grid starts coarse (where
/// overflow is artificially low) and only refines, so a finer-grid row is
/// always later and supersedes coarser ones. This also keeps the rollback
/// target recent instead of pinned to the flattering early measurements.
struct Checkpoint {
  Placement iterate;   ///< (x, y) at the checkpointed iteration
  Placement anchors;   ///< (x°, y°) — the legalizable output
  double lambda = 0.0;
  double pi = 0.0;     ///< Π at the checkpoint (needed to re-seed the loop)
  int trace_index = -1;
  size_t grid_bins = 0;  ///< density-grid resolution the overflow was measured on
  double overflow = std::numeric_limits<double>::infinity();
  double phi_upper = std::numeric_limits<double>::infinity();

  bool valid() const { return trace_index >= 0; }

  /// Strict-weak ranking used both for updates and for the final
  /// "is the checkpoint better than the last iterate" decision.
  static bool ranks_better(size_t bins_a, double overflow_a,
                           double phi_upper_a, size_t bins_b,
                           double overflow_b, double phi_upper_b) {
    if (bins_a != bins_b) return bins_a > bins_b;
    if (!fp::exactly_equal(overflow_a, overflow_b))
      return overflow_a < overflow_b;
    return phi_upper_a < phi_upper_b;
  }

  /// Snapshots the given state if it is finite and ranks at least as well
  /// as the stored one (ties refresh, so the checkpoint tracks the most
  /// recent equally-good state). Returns true if the snapshot was taken.
  bool offer(const Netlist& nl, const Placement& it, const Placement& anc,
             double lam, double pi_value, int index, size_t bins, double ovfl,
             double phi_up);
};

/// Mutex-guarded Checkpoint holder: the driver offers every healthy
/// iteration, and any thread — the loop itself on rollback/exit, a watchdog
/// or service thread polling progress — reads a consistent snapshot. The
/// lock discipline is declared (COMPLX_GUARDED_BY) and proven by the CI
/// clang job's -Wthread-safety build; on the placer's hot path the store
/// is touched once per iteration, so the uncontended lock cost is noise.
class CheckpointStore {
 public:
  /// Checkpoint::offer under the lock. Returns true if the snapshot was
  /// taken.
  bool offer(const Netlist& nl, const Placement& it, const Placement& anc,
             double lam, double pi_value, int index, size_t bins, double ovfl,
             double phi_up) COMPLX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return best_.offer(nl, it, anc, lam, pi_value, index, bins, ovfl, phi_up);
  }

  bool valid() const COMPLX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return best_.valid();
  }

  /// Consistent copy of the best-so-far state (rollback targets, progress
  /// polls). Copying the placements is deliberate: the caller gets a frozen
  /// state, never a reference another thread may overwrite.
  Checkpoint snapshot() const COMPLX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return best_;
  }

  /// Moves the checkpoint out (final hand-off; the store is empty after).
  Checkpoint take() COMPLX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    Checkpoint out = std::move(best_);
    best_ = Checkpoint{};
    return out;
  }

 private:
  mutable Mutex mu_;
  Checkpoint best_ COMPLX_GUARDED_BY(mu_);
};

/// Test-only fault hooks. Production configs leave every member empty; the
/// driver consults them (cheap null checks) so recovery paths are testable
/// without compile-time switches.
struct FaultInjection {
  /// Called after each primal step; may corrupt the iterate in place.
  std::function<void(int iteration, Placement&)> corrupt_iterate;
  /// Maps the multiplier used for this iteration's anchors; return a
  /// non-finite value to simulate λ overflow.
  std::function<double(int iteration, double lambda)> corrupt_lambda;
  /// Return true to force the PCG solves of this iteration to report
  /// breakdown without solving (QP model only).
  std::function<bool(int iteration)> force_cg_breakdown;

  /// I/O fault hooks (short writes, failed fsync/rename, ENOSPC, in-flight
  /// bit flips) consumed by util/atomic_file and the snapshot store — the
  /// file-system counterpart of the numeric hooks above.
  IoFaultInjection io;

  bool any() const {
    return corrupt_iterate || corrupt_lambda || force_cg_breakdown ||
           io.any();
  }
};

}  // namespace complx
