// ComPLx: the projected-subgradient primal-dual Lagrange global placer.
//
// Each iteration alternates
//   1. primal:   minimize L°(x,y,λ) = Φ(x,y) + λ·||(x,y)−(x°,y°)||₁ —
//                the L1 anchor term is linearized into pseudonets of weight
//                λ·m_i / (|x_i − x_i°| + ε), ε = 1.5 × row height, and the
//                whole thing is a sparse SPD solve per axis (B2B model) or a
//                nonlinear CG pass (log-sum-exp model);
//   2. project:  (x°,y°) = P_C(x,y), the approximate feasibility projection;
//   3. dual:     λ update per Formula 12.
//
// The per-cell multiplier m_i is 1 for standard cells, area-proportional for
// macros (Section 5), and is additionally scaled by the timing/power
// criticality vector γ when provided (Formula 13).
//
// SimPL is recovered as a configuration: ScheduleKind::SimplLinearRamp plus
// the overflow-only stopping rule (see ComplxConfig::simpl_mode()).
#pragma once

// complx-lint: allow(P1): std::atomic is the async-signal-safe primitive for
// the cooperative cancel flag below; util/parallel.h has no signal-safe API.
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/health.h"
#include "core/lambda.h"
#include "core/trace.h"
#include "projection/lal.h"
#include "qp/solver.h"
#include "route/inflate.h"
#include "route/rudy.h"

namespace complx {

class WarmStartSource;

/// Routability mode (the SimPLR/Ripple special cases, Section 5): RUDY
/// congestion is estimated every `period` iterations and congested standard
/// cells are inflated inside the feasibility projection.
struct RoutabilityOptions {
  bool enabled = false;
  int period = 4;  ///< iterations between congestion updates
  RudyOptions rudy;
  InflationOptions inflation;
};

/// How the anchor (spreading) force depends on a cell's distance to its
/// projection — the "force modulation problem" of Section 3. ComPLx's
/// answer is distance normalization: w = λ/(d+ε) makes the force saturate
/// at ~2λ, so far-away cells are pulled no harder than near ones and the
/// single multiplier λ controls the cost/feasibility trade-off. The
/// alternatives reproduce what prior placers do and exist for the
/// bench_ablation_modulation experiment.
enum class AnchorModulation {
  DistanceNormalized,  ///< ComPLx: w = λ·m/(d+ε), force ≈ 2λ·m
  Fixed,               ///< naive spring: w = λ·m/ε, force ∝ d (unbounded)
  Thresholded,         ///< RQL-style: force ∝ d but clipped at a hand-set
                       ///< cap of `threshold_rows` row heights
};

struct ComplxConfig {
  // Interconnect model Φ.
  QpOptions qp;

  // Anchor force modulation (see AnchorModulation).
  AnchorModulation modulation = AnchorModulation::DistanceNormalized;
  double threshold_rows = 10.0;  ///< force cap distance for Thresholded

  // Dual schedule. Formula 12's scaling constant h is derived from the
  // force-balance estimate λ* (mean B2B force per movable cell — the value
  // λ converges to): h = h_factor · λ* / lambda_ramp_steps, so λ doubles
  // while small and then climbs to λ* in ~lambda_ramp_steps iterations
  // REGARDLESS of instance size (Section S3's flat iteration counts).
  // The SimPL ramp uses a 3× smaller fixed step (its schedule is the
  // special case ComPLx improves on).
  ScheduleKind schedule = ScheduleKind::ComplxFormula12;
  double h_factor = 1.0;
  double lambda_ramp_steps = 18.0;

  // Feasibility projection. gamma = 0 (the default here) means "inherit the
  // netlist's target density"; set explicitly to override.
  ProjectionOptions projection;

  // Density / projection backend: "spread" is the paper's cut-based
  // look-ahead legalization, "electrostatic" the FFT Poisson field model
  // (projection/backend.h registry; complx_place --density-backend).
  std::string density_backend = "spread";

  ComplxConfig() { projection.gamma = 0.0; }
  /// Grid schedule: start at finest/coarsening_factor bins and refine
  /// geometrically to the finest grid. 1 disables coarsening (the Table 1
  /// "Finest Grid" configuration).
  double grid_coarsening = 8.0;
  double grid_refine_rate = 1.3;  ///< per-iteration bin-count growth

  // Convergence (Section 4).
  int max_iterations = 120;
  double stop_overflow = 0.10;  ///< SimPL-style: iterate overflow ratio
  double stop_gap = 0.08;       ///< ComPLx refined: relative duality gap
  bool use_gap_criterion = true;  ///< false = SimPL (overflow only)
  int min_iterations = 10;

  // Worker threads for the parallel kernels (SpMV/CG reductions, B2B
  // assembly, density binning, HPWL/RUDY). 0 = leave the process-wide
  // setting alone (default: hardware concurrency). All kernels use
  // deterministic fixed-chunk reductions, so any value produces bitwise
  // identical placements; 1 runs everything inline on the caller.
  size_t threads = 0;

  // Pseudonet linearization ε in row heights (paper: 1.5).
  double epsilon_rows = 1.5;

  // Per-macro λ multiplier cap (multiplier = macro area / avg cell area).
  double macro_lambda_cap = 20.0;

  // Initial pure-Φ minimization: number of B2B relinearization passes at
  // λ = 0 before the first projection.
  int initial_iterations = 3;

  // Warm start (incremental placement, cf. S6's stability observation and
  // the physical-synthesis use case of [1]): start from the positions
  // stored in the netlist instead of collapsing to the core center, skip
  // the λ=0 phase, and begin with a non-zero λ so the placement stays
  // close to the incoming solution.
  bool warm_start = false;
  double warm_lambda_fraction = 0.5;  ///< initial λ as a fraction of λ*

  // Experience-driven warm start (core/warm_start.h; io/experience.h is
  // the production implementation): when non-null, place() probes the
  // source for this job before the cold bootstrap. On a hit the
  // stored placement replaces the collapse-to-center, the λ=0 phase is
  // skipped, the grid starts at the finest resolution (the stored solution
  // is already spread — re-coarsening would destroy it) and the iteration
  // floor drops to warm_min_iterations. A miss — or a degraded store — is
  // exactly the cold path, bitwise. The placer only READS the store;
  // recording results back is the caller's decision.
  //
  // A resumed run also gets a plateau stop: once Φ̄ fails to improve by
  // warm_plateau_tol (relative) for warm_plateau_window consecutive healthy
  // iterations at the finest grid, the run exits with StopReason::Plateau
  // and returns its best-so-far checkpoint — which is never worse than the
  // resumed solution. This is what makes a repeat of a job that exhausted
  // its iteration budget cheap: the rerun re-attains the stored quality in
  // a handful of iterations instead of burning the whole budget again.
  const WarmStartSource* experience = nullptr;
  int warm_min_iterations = 3;  ///< min_iterations for experience hits
  int warm_plateau_window = 4;     ///< stalled iterations before Plateau stop
  double warm_plateau_tol = 1e-3;  ///< relative Φ̄ gain that resets the stall

  // Routability-driven placement (SimPLR/Ripple as ComPLx configurations).
  RoutabilityOptions routability;

  // Nonlinear instantiation (Section S1): replace the linearized-quadratic
  // primal step with log-sum-exp wirelength minimized by nonlinear CG. The
  // anchors/λ machinery is unchanged — the paper's model-agnosticism claim.
  bool use_lse = false;
  double lse_gamma_rows = 2.0;  ///< LSE smoothing in row heights
  int nlcg_iterations = 60;     ///< NLCG steps per primal iteration

  // Numerical-safety watchdog: NaN/Inf screening of every iterate and
  // projection, divergence detection from the trace, and the
  // rollback-and-backoff recovery policy. All checks are read-only on
  // healthy runs — the determinism guarantee is unaffected. Disabling
  // `health.enabled` removes even the checks (ablation/debug only).
  HealthOptions health;
  RecoveryOptions recovery;

  // Wall-clock budget in seconds (0 = unlimited). When exceeded, the loop
  // stops after the current iteration and the best-so-far checkpoint is
  // returned (stop reason TimeLimit).
  double time_limit_s = 0.0;

  // Cooperative cancellation: when non-null and set (e.g. from a SIGINT
  // handler), the loop stops at the next iteration boundary and returns the
  // best-so-far checkpoint (stop reason Cancelled).
  // complx-lint: allow(P1): written from a SIGINT handler, polled at
  // iteration boundaries; never touches the deterministic numeric path.
  const std::atomic<bool>* cancel = nullptr;

  /// Returns a configuration equivalent to the SimPL special case: fixed
  /// linear pseudo-net weight ramp (h_factor scales the 0.01 base step)
  /// and the overflow-only stopping rule.
  static ComplxConfig simpl_mode() {
    ComplxConfig c;
    c.schedule = ScheduleKind::SimplLinearRamp;
    c.use_gap_criterion = false;
    c.max_iterations = 160;
    return c;
  }
};

struct PlaceResult {
  /// The returned iterate (x, y). Normally the last one; after an abnormal
  /// stop (divergence, time limit, cancellation) it is the best-so-far
  /// checkpoint, ranked by (grid resolution, overflow_ratio, then Φ_upper).
  Placement lower_bound;
  Placement anchors;  ///< matching projection (x°, y°) — hand to legalizer
  std::vector<IterationStats> trace;
  SelfConsistencyStats self_consistency;
  int iterations = 0;
  double final_lambda = 0.0;
  double final_overflow = 0.0;
  double runtime_s = 0.0;

  // Health / recovery bookkeeping (see core/health.h).
  StopReason stop = StopReason::Converged;
  SolverStats solver;   ///< aggregated CG statistics (both axes, all solves)
  HealthStats health;   ///< watchdog fault counters
  int recovered = 0;    ///< rollback-and-backoff recoveries performed
  int best_iteration = -1;  ///< trace iteration the placements come from
  bool warm_started = false;  ///< started from an experience-store record
  bool failed = false;  ///< recovery retries exhausted; placements are the
                        ///< best-so-far checkpoint, `failure` explains why
  std::string failure;  ///< structured failure description (empty when ok)
};

class ComplxPlacer {
 public:
  /// The placer reads netlist geometry and target density; it does not
  /// modify the netlist. Call netlist.apply(result.anchors) to commit.
  ComplxPlacer(const Netlist& nl, const ComplxConfig& cfg);

  /// Per-cell criticality multipliers for the penalty term (Formula 13).
  /// Sized num_cells; entries default to 1. Values > 1 pull timing-critical
  /// cells harder toward their feasible anchors.
  void set_cell_criticality(Vec criticality);

  /// Optional hook run on every projection result before it is used as the
  /// anchor set — the Table 1 "P_C += FastPlace-DP" configuration installs
  /// legalize+DP here; region/alignment experiments can also use it.
  void set_post_projection_hook(std::function<void(Placement&)> hook) {
    post_projection_ = std::move(hook);
  }

  /// Test-only fault hooks (corrupt iterate / corrupt λ / force CG
  /// breakdown) used to prove the recovery path end-to-end. Production
  /// callers never install these.
  void set_fault_injection(FaultInjection faults) {
    faults_ = std::move(faults);
  }

  PlaceResult place();

  /// Warm-started placement from an explicit initial placement (the
  /// netlist's stored positions are not consulted or modified). Implies
  /// cfg.warm_start semantics: no collapse-to-center, no λ=0 phase, λ
  /// starts near the balance point.
  PlaceResult place_from(const Placement& initial);

  /// Force-balance estimate of the converged multiplier: at the optimum the
  /// pseudonet force per cell (≈ 2λ) matches the mean linearized B2B net
  /// force per cell (≈ Σ_e 2·w_e·(2P_e−3)/(P_e−1) / |movables|, since each
  /// of a net's 2P−3 springs exerts w_e/(P−1) on each endpoint).
  static double estimate_lambda_star(const Netlist& nl);

 private:
  AnchorSet make_anchors(const Placement& iterate, const Placement& proj,
                         double lambda) const;
  void check_self_consistency(const Placement& prev_iter,
                              const Placement& prev_proj,
                              const Placement& cur_iter,
                              const Placement& cur_proj, bool grid_final,
                              SelfConsistencyStats& stats) const;
  PlaceResult place_impl(const Placement* initial);

  const Netlist& nl_;
  ComplxConfig cfg_;
  Vec criticality_;
  std::function<void(Placement&)> post_projection_;
  FaultInjection faults_;
};

}  // namespace complx
