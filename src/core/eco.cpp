#include "core/eco.h"

#include <utility>
#include <vector>

namespace complx {

namespace {

/// Restores the saved cell kinds on scope exit (also on exceptions thrown
/// mid-solve), then re-finalizes so the movable bookkeeping matches again.
class FreezeGuard {
 public:
  FreezeGuard(Netlist& nl, std::vector<std::pair<CellId, CellKind>> saved)
      : nl_(nl), saved_(std::move(saved)) {}
  ~FreezeGuard() {
    for (const auto& [id, kind] : saved_) nl_.cell(id).kind = kind;
    if (!saved_.empty()) nl_.refinalize();
  }
  FreezeGuard(const FreezeGuard&) = delete;
  FreezeGuard& operator=(const FreezeGuard&) = delete;

 private:
  Netlist& nl_;
  std::vector<std::pair<CellId, CellKind>> saved_;
};

}  // namespace

EcoResult eco_replace(Netlist& nl, const EcoOptions& opts) {
  EcoResult result;
  const Placement current = nl.snapshot();

  std::vector<CellId> dirty;
  std::vector<CellId> outside;
  for (CellId id : nl.movable_cells()) {
    if (opts.window.contains(Point{current.x[id], current.y[id]}))
      dirty.push_back(id);
    else
      outside.push_back(id);
  }
  result.dirty_cells = dirty.size();
  result.frozen_cells = outside.size();

  if (dirty.empty()) return result;  // nothing to re-solve, nothing touched

  if (outside.empty()) {
    // The window covers every movable cell: this IS a full solve. Run the
    // ordinary path so the result is bitwise identical to place() — no
    // freezing, no warm-start override, no special-cased commit.
    result.full_solve = true;
    ComplxPlacer placer(nl, opts.config);
    result.place = placer.place();
    if (opts.apply) nl.apply(result.place.anchors);
    return result;
  }

  // Partial window: freeze the outside movables in place, re-solve the
  // dirty set warm-started from the stored placement, restore.
  std::vector<std::pair<CellId, CellKind>> saved;
  saved.reserve(outside.size());
  for (CellId id : outside) {
    saved.emplace_back(id, nl.cell(id).kind);
    nl.cell(id).kind = CellKind::Fixed;
  }
  nl.refinalize();
  FreezeGuard guard(nl, std::move(saved));

  ComplxConfig cfg = opts.config;
  cfg.warm_start = true;
  ComplxPlacer placer(nl, cfg);
  result.place = placer.place_from(current);

  if (opts.apply) {
    // Commit ONLY the dirty cells, writing lower-left corners exactly the
    // way Netlist::apply does. Outside cells are never written: the
    // center→corner round trip is not an FP identity, and the frozen cells
    // must stay bitwise identical to their pre-ECO bytes.
    for (CellId id : dirty) {
      Cell& c = nl.cell(id);
      c.x = result.place.anchors.x[id] - c.width / 2.0;
      c.y = result.place.anchors.y[id] - c.height / 2.0;
    }
  }
  return result;
}

}  // namespace complx
