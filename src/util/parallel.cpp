#include "util/parallel.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace complx {

namespace {

/// Set while a thread (worker or participating caller) executes chunks of a
/// job. A parallel_for issued from such a thread must not touch the pool.
thread_local bool tl_in_parallel_region = false;

size_t chunk_count(size_t n, size_t chunk) {
  return n == 0 ? 0 : (n + chunk - 1) / chunk;
}

}  // namespace

bool ThreadPool::in_parallel_region() { return tl_in_parallel_region; }

ThreadPool::RegionScope::RegionScope() : prev_(tl_in_parallel_region) {
  tl_in_parallel_region = true;
}

ThreadPool::RegionScope::~RegionScope() { tl_in_parallel_region = prev_; }

ThreadPool::ThreadPool(size_t num_threads)
    : threads_(std::max<size_t>(1, num_threads)) {
  workers_.reserve(threads_ - 1);
  for (size_t t = 0; t + 1 < threads_; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      MutexLock lock(mu_);
      // Explicit wait loop: condition_variable_any::wait(mu_) releases and
      // reacquires the annotated Mutex, and the guarded reads stay inside
      // this scope where the analysis can see the capability.
      while (!stop_ && generation_ == seen) work_cv_.wait(mu_);
      if (stop_) return;
      seen = generation_;
      job = job_;
      // Registered under the lock so the caller cannot destroy the job
      // while this worker still holds a pointer to it.
      if (job) ++job->active;
    }
    if (job) {
      run_chunks(*job);
      MutexLock lock(mu_);
      if (--job->active == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(Job& job) {
  tl_in_parallel_region = true;
  size_t c;
  while ((c = job.next.fetch_add(1, std::memory_order_relaxed)) <
         job.num_chunks) {
    const size_t begin = c * job.chunk;
    const size_t end = std::min(job.n, begin + job.chunk);
    try {
      (*job.body)(begin, end);
    } catch (...) {
      MutexLock lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    job.completed.fetch_add(1, std::memory_order_acq_rel);
  }
  tl_in_parallel_region = false;
}

void ThreadPool::run_inline(size_t n, size_t chunk,
                            const std::function<void(size_t, size_t)>& body) {
  // Same chunk boundaries as the parallel path, visited in order — the
  // execution mode never changes what gets computed.
  const bool nested = tl_in_parallel_region;
  tl_in_parallel_region = true;
  try {
    for (size_t begin = 0; begin < n; begin += chunk)
      body(begin, std::min(n, begin + chunk));
  } catch (...) {
    tl_in_parallel_region = nested;
    throw;
  }
  tl_in_parallel_region = nested;
}

void ThreadPool::parallel_for(size_t n, size_t chunk,
                              const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (chunk == 0) throw std::invalid_argument("parallel_for: chunk must be > 0");
  // Nested parallelism is rejected: inner regions execute inline on the
  // issuing thread (identical results — chunking is unchanged).
  if (threads_ == 1 || tl_in_parallel_region || chunk_count(n, chunk) == 1) {
    run_inline(n, chunk, body);
    return;
  }

  Job job;
  job.body = &body;
  job.n = n;
  job.chunk = chunk;
  job.num_chunks = chunk_count(n, chunk);
  {
    MutexLock lock(mu_);
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is a worker too.
  run_chunks(job);

  {
    // Wait until every chunk ran AND every worker let go of the job — the
    // Job lives on this stack frame.
    MutexLock lock(mu_);
    job_ = nullptr;  // late wakers must not pick the job up anymore
    while (job.active != 0 ||
           job.completed.load(std::memory_order_acquire) != job.num_chunks)
      done_cv_.wait(mu_);
  }
  // Copy the error pointer out under its own lock: every worker that could
  // write it has detached above, but the discipline (and the analysis)
  // want the guarded read locked regardless.
  std::exception_ptr error;
  {
    MutexLock lock(job.error_mu);
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::invoke(const std::vector<std::function<void()>>& tasks) {
  parallel_for(tasks.size(), 1,
               [&](size_t begin, size_t end) {
                 for (size_t i = begin; i < end; ++i) tasks[i]();
               });
}

// ---------------------------------------------------------------------------
// Global pool.
// ---------------------------------------------------------------------------

namespace {
size_t g_threads = 0;  // 0 = unset (hardware default)
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

size_t hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void set_global_threads(size_t n) {
  const size_t resolved = n == 0 ? hardware_threads() : n;
  if (g_pool && g_pool->num_threads() == resolved) return;
  g_pool.reset();  // join old workers before spawning the new pool
  g_threads = resolved;
}

size_t global_threads() {
  return g_threads == 0 ? hardware_threads() : g_threads;
}

ThreadPool& global_pool() {
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(global_threads());
  return *g_pool;
}

// ---------------------------------------------------------------------------
// Deterministic helpers.
// ---------------------------------------------------------------------------

Partition partition_range(size_t n, size_t min_chunk, size_t max_parts) {
  Partition part;
  if (n == 0) return part;
  const size_t wanted = chunk_count(n, std::max<size_t>(1, min_chunk));
  part.parts = std::clamp<size_t>(wanted, 1, std::max<size_t>(1, max_parts));
  part.chunk = (n + part.parts - 1) / part.parts;
  return part;
}

namespace detail {

size_t default_chunk(size_t n) {
  return std::max<size_t>(256, n / (4 * global_threads()) + 1);
}

void pool_for(size_t n, size_t chunk,
              const std::function<void(size_t, size_t)>& body) {
  global_pool().parallel_for(n, chunk, body);
}

double pool_sum(size_t n,
                const std::function<double(size_t, size_t)>& chunk_sum) {
  const size_t parts = chunk_count(n, kReduceChunk);
  std::vector<double> partials(parts, 0.0);
  global_pool().parallel_for(n, kReduceChunk,
                             [&](size_t begin, size_t end) {
                               partials[begin / kReduceChunk] =
                                   chunk_sum(begin, end);
                             });
  double s = 0.0;
  for (double v : partials) s += v;  // fixed order: chunk 0, 1, 2, ...
  return s;
}

}  // namespace detail

void parallel_invoke(const std::function<void()>& a,
                     const std::function<void()>& b) {
  global_pool().invoke({a, b});
}

// ---------------------------------------------------------------------------
// vec.h backends.
// ---------------------------------------------------------------------------

double par_dot(const std::vector<double>& a, const std::vector<double>& b) {
  return parallel_sum(a.size(), [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t i = begin; i < end; ++i) s += a[i] * b[i];
    return s;
  });
}

void par_axpy(double alpha, const std::vector<double>& x,
              std::vector<double>& y) {
  parallel_for(x.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) y[i] += alpha * x[i];
  });
}

void par_xpay(const std::vector<double>& y, double alpha,
              std::vector<double>& x) {
  parallel_for(x.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) x[i] = alpha * x[i] + y[i];
  });
}

}  // namespace complx
