// Small statistics helpers shared by experiments and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace complx {

/// Geometric mean; all inputs must be > 0. Used for the "Geomean" rows of
/// Table 1 and Table 2.
inline double geomean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("geomean of empty vector");
  double log_sum = 0.0;
  for (double x : v) {
    if (x <= 0.0) throw std::invalid_argument("geomean requires positives");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(v.size()));
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Median (of a copy; input untouched).
inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + mid - 1, v.end());
  return (v[mid - 1] + hi) / 2.0;
}

}  // namespace complx
