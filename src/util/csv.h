// CSV emitter for figure data. Benches that reproduce the paper's figures
// write their series to CSV next to printing them, so plots can be
// regenerated offline.
//
// Rows compose in memory and the file is published atomically on close()
// (or in the destructor, best-effort) via util/atomic_file.h — a crashed
// bench leaves either the previous CSV or the complete new one, never a
// torn prefix.
#pragma once

#include <string>
#include <vector>

#include "util/atomic_file.h"

namespace complx {

class CsvWriter {
 public:
  /// Stages `path` for writing and emits the header row. I/O happens only
  /// at close()/destruction.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Commits the composed file if close() was not called; write errors are
  /// swallowed (destructors must not throw) — call close() to observe them.
  ~CsvWriter();

  /// Appends one data row; size must match the header.
  void row(const std::vector<double>& values);

  /// Appends one row of preformatted strings (e.g. a name column).
  void row(const std::vector<std::string>& values);

  /// Publishes the file atomically. Throws on I/O failure.
  void close();

 private:
  AtomicFileWriter out_;
  size_t columns_;
  bool closed_ = false;
};

}  // namespace complx
