// CSV emitter for figure data. Benches that reproduce the paper's figures
// write their series to CSV next to printing them, so plots can be
// regenerated offline.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace complx {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O error.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one data row; size must match the header.
  void row(const std::vector<double>& values);

  /// Appends one row of preformatted strings (e.g. a name column).
  void row(const std::vector<std::string>& values);

 private:
  std::ofstream out_;
  size_t columns_;
};

}  // namespace complx
