// Wall-clock stopwatch used by the benchmark harness and per-phase runtime
// reporting (Table 1 / Table 2 report minutes of wall time).
#pragma once

#include <chrono>

namespace complx {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace complx
