// Geometric primitives shared by all placement modules.
//
// Coordinates follow the Bookshelf convention: x grows right, y grows up,
// and object positions refer to the lower-left corner unless a function says
// otherwise. All geometry is double-precision; placement rows snap to sites
// only at legalization time.
#pragma once

#include <algorithm>
#include <cmath>
#include <ostream>

namespace complx {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(double s, Point p) { return {s * p.x, s * p.y}; }
  friend bool operator==(Point a, Point b) = default;
};

/// Manhattan (L1) distance between two points.
inline double l1_dist(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Axis-aligned rectangle, half-open semantics are NOT implied: both edges
/// are inclusive for containment checks, which matches how placement rows
/// and bins are used (a cell sitting exactly on a boundary belongs to both).
struct Rect {
  double xl = 0.0;  ///< left
  double yl = 0.0;  ///< bottom
  double xh = 0.0;  ///< right
  double yh = 0.0;  ///< top

  double width() const { return xh - xl; }
  double height() const { return yh - yl; }
  double area() const { return width() * height(); }
  Point center() const { return {(xl + xh) / 2.0, (yl + yh) / 2.0}; }
  bool empty() const { return xh <= xl || yh <= yl; }

  bool contains(Point p) const {
    return p.x >= xl && p.x <= xh && p.y >= yl && p.y <= yh;
  }
  bool contains(const Rect& r) const {
    return r.xl >= xl && r.xh <= xh && r.yl >= yl && r.yh <= yh;
  }
  bool overlaps(const Rect& r) const {
    return r.xl < xh && xl < r.xh && r.yl < yh && yl < r.yh;
  }

  /// Area of the intersection with `r`; zero when disjoint.
  double overlap_area(const Rect& r) const {
    const double w = std::min(xh, r.xh) - std::max(xl, r.xl);
    const double h = std::min(yh, r.yh) - std::max(yl, r.yl);
    return (w > 0.0 && h > 0.0) ? w * h : 0.0;
  }

  /// Smallest rectangle containing both `*this` and `r`.
  Rect united(const Rect& r) const {
    return {std::min(xl, r.xl), std::min(yl, r.yl), std::max(xh, r.xh),
            std::max(yh, r.yh)};
  }

  /// Clamp a point into the rectangle.
  Point clamp(Point p) const {
    return {std::clamp(p.x, xl, xh), std::clamp(p.y, yl, yh)};
  }

  friend bool operator==(const Rect& a, const Rect& b) = default;
  friend std::ostream& operator<<(std::ostream& os, const Rect& r) {
    return os << "[" << r.xl << "," << r.yl << " " << r.xh << "," << r.yh
              << "]";
  }
};

}  // namespace complx
