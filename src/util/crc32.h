// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) for the binary
// snapshot format and any other artifact that needs cheap end-to-end
// integrity checking.
//
// A checksum — unlike a magic number or a size field — catches the failure
// class that actually happens in the field: a bit flipped by bad RAM or a
// torn sector, a file truncated and re-extended by a crashing copy tool, a
// stale page served by a broken network filesystem. The table is computed
// at compile time; throughput is irrelevant at snapshot sizes (a few MB).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace complx {

namespace detail {
constexpr std::array<uint32_t, 256> make_crc32_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}
inline constexpr std::array<uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

/// Incremental update: feed `crc32_init()` as the first `crc`, chain the
/// result through successive buffers, finish with `crc32_final()`.
constexpr uint32_t crc32_init() { return 0xFFFFFFFFu; }
constexpr uint32_t crc32_final(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

inline uint32_t crc32_update(uint32_t crc, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i)
    crc = detail::kCrc32Table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc;
}

/// One-shot CRC-32 of a buffer.
inline uint32_t crc32(const void* data, size_t len) {
  return crc32_final(crc32_update(crc32_init(), data, len));
}

inline uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace complx
