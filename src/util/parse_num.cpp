#include "util/parse_num.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace complx {

namespace {

/// Skips trailing whitespace; true iff the parse consumed the whole string.
bool consumed_all(const std::string& text, const char* end) {
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) ++end;
  return end != text.c_str() && *end == '\0';
}

[[noreturn]] void bad(const std::string& flag, const char* expected,
                      const std::string& range, const std::string& text) {
  throw ParseError(flag + ": expected " + expected + range + ", got \"" +
                   text + "\"");
}

std::string int_range(int64_t lo, int64_t hi) {
  if (lo <= std::numeric_limits<int64_t>::min() &&
      hi >= std::numeric_limits<int64_t>::max())
    return "";
  return " in [" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

std::string uint_range(uint64_t lo, uint64_t hi) {
  if (lo <= 0 && hi >= std::numeric_limits<uint64_t>::max()) return "";
  return " in [" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

std::string double_range(double lo, double hi) {
  const bool no_lo = std::isinf(lo) && lo < 0.0;
  const bool no_hi = std::isinf(hi) && hi > 0.0;
  if (no_lo && no_hi) return "";
  if (no_lo) return " <= " + std::to_string(hi);
  if (no_hi) return " >= " + std::to_string(lo);
  return " in [" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
}

}  // namespace

int64_t parse_int64(const std::string& flag, const std::string& text,
                    int64_t lo, int64_t hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || !consumed_all(text, end) || v < lo || v > hi)
    bad(flag, "integer", int_range(lo, hi), text);
  return v;
}

uint64_t parse_uint64(const std::string& flag, const std::string& text,
                      uint64_t lo, uint64_t hi) {
  // strtoull accepts "-3" and wraps it; scan for a sign ourselves.
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '-') bad(flag, "unsigned integer", uint_range(lo, hi), text);
    break;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || !consumed_all(text, end) || v < lo || v > hi)
    bad(flag, "unsigned integer", uint_range(lo, hi), text);
  return v;
}

double parse_double(const std::string& flag, const std::string& text,
                    double lo, double hi) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || !consumed_all(text, end) || !std::isfinite(v) || v < lo ||
      v > hi)
    bad(flag, "number", double_range(lo, hi), text);
  return v;
}

}  // namespace complx
