// Deterministic parallel execution for the primal/projection hot paths.
//
// Design goals, in priority order:
//  1. Bitwise reproducibility independent of thread count. Every parallel
//     reduction is computed over a *fixed* partition of the index range
//     (chunk boundaries depend only on the problem size, never on the
//     thread count), and per-chunk partial results are combined in chunk
//     order. Threads only decide *who* computes a chunk, never *what* is
//     summed with what — so `--threads 1/2/8` produce identical bytes.
//  2. No surprises for existing code: ranges small enough to fit a single
//     chunk reduce exactly like the historical serial loops, and a pool of
//     one thread executes everything inline on the caller.
//  3. Simplicity over peak throughput: static block partitioning with a
//     shared chunk counter, one job in flight at a time, caller
//     participates in the work.
//
// Nested parallel regions are rejected by construction: a parallel_for
// issued from inside another parallel region (worker or caller thread)
// executes its whole range inline on the issuing thread. This keeps the
// pool deadlock-free and keeps determinism trivial to reason about.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attributes (no-ops on other compilers).
//
// The CI clang job compiles with -Wthread-safety -Werror, turning the
// locking discipline declared by these annotations into a build-time
// proof: every COMPLX_GUARDED_BY member must be touched with its mutex
// held, every COMPLX_REQUIRES function must be called with the capability
// held. complx-lint rule P2 closes the loop from the other side — every
// mutex declared in src/ must participate in this scheme.
// ---------------------------------------------------------------------------

#if defined(__clang__) && (!defined(SWIG))
#define COMPLX_TSA(x) __attribute__((x))
#else
#define COMPLX_TSA(x)  // no-op off clang
#endif

#define COMPLX_CAPABILITY(x) COMPLX_TSA(capability(x))
#define COMPLX_SCOPED_CAPABILITY COMPLX_TSA(scoped_lockable)
#define COMPLX_GUARDED_BY(x) COMPLX_TSA(guarded_by(x))
#define COMPLX_PT_GUARDED_BY(x) COMPLX_TSA(pt_guarded_by(x))
#define COMPLX_REQUIRES(...) COMPLX_TSA(requires_capability(__VA_ARGS__))
#define COMPLX_ACQUIRE(...) COMPLX_TSA(acquire_capability(__VA_ARGS__))
#define COMPLX_RELEASE(...) COMPLX_TSA(release_capability(__VA_ARGS__))
#define COMPLX_TRY_ACQUIRE(...) \
  COMPLX_TSA(try_acquire_capability(__VA_ARGS__))
#define COMPLX_EXCLUDES(...) COMPLX_TSA(locks_excluded(__VA_ARGS__))
#define COMPLX_ASSERT_CAPABILITY(x) COMPLX_TSA(assert_capability(x))
#define COMPLX_RETURN_CAPABILITY(x) COMPLX_TSA(lock_returned(x))
#define COMPLX_NO_TSA COMPLX_TSA(no_thread_safety_analysis)

namespace complx {

/// Annotated mutex — the only mutex type the rest of the library may
/// declare (complx-lint rule P1 bans raw std::mutex outside this header,
/// and rule P2 requires every instance to be wired into the annotation
/// scheme). Wraps std::mutex because the standard library's is invisible
/// to clang's analysis. Satisfies BasicLockable, so it works with
/// std::condition_variable_any directly.
class COMPLX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() COMPLX_ACQUIRE() { mu_.lock(); }
  void unlock() COMPLX_RELEASE() { mu_.unlock(); }
  bool try_lock() COMPLX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex (std::lock_guard is as unannotated as std::mutex).
class COMPLX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) COMPLX_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() COMPLX_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Fixed-size worker pool executing one static-partitioned loop at a time.
/// `num_threads` counts the calling thread: a pool of N spawns N−1 workers,
/// and a pool of 1 spawns none (all calls run inline — today's behavior).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_; }

  /// Runs body(chunk_begin, chunk_end) over [0, n) split into blocks of
  /// `chunk` indices (the last block may be short). Chunk boundaries depend
  /// only on (n, chunk), so any value written or summed per chunk is
  /// independent of the thread count. Blocks are claimed dynamically but
  /// the caller participates and the call returns only when every block
  /// has run. The first exception thrown by `body` is rethrown here.
  void parallel_for(size_t n, size_t chunk,
                    const std::function<void(size_t, size_t)>& body);

  /// Runs the given independent tasks concurrently (caller participates).
  void invoke(const std::vector<std::function<void()>>& tasks);

  /// True while the current thread is executing inside a parallel region
  /// (worker chunk or caller participation). Used to reject nesting.
  static bool in_parallel_region();

  /// RAII marker that flags the current thread as "inside a parallel
  /// region" for its lifetime. The header-inline serial fast paths below
  /// use it so nested parallel calls issued from their bodies keep running
  /// inline, exactly as they would under run_inline.
  class RegionScope {
   public:
    RegionScope();
    ~RegionScope();
    RegionScope(const RegionScope&) = delete;
    RegionScope& operator=(const RegionScope&) = delete;

   private:
    bool prev_;
  };

 private:
  struct Job {
    const std::function<void(size_t, size_t)>* body = nullptr;
    size_t n = 0;
    size_t chunk = 0;
    size_t num_chunks = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    size_t active = 0;  ///< workers currently attached (guarded by pool mu_;
                        ///< a nested struct cannot name the outer member in
                        ///< a GUARDED_BY argument)
    Mutex error_mu;
    std::exception_ptr error COMPLX_GUARDED_BY(error_mu);
  };

  void worker_loop();
  void run_chunks(Job& job);
  void run_inline(size_t n, size_t chunk,
                  const std::function<void(size_t, size_t)>& body);

  size_t threads_;
  std::vector<std::thread> workers_;
  Mutex mu_;
  /// _any variants: they wait on the annotated Mutex directly. The waits
  /// are explicit while-loops rather than predicate lambdas — clang's
  /// analysis does not propagate held capabilities into lambda bodies.
  std::condition_variable_any work_cv_;  ///< workers wait for a new job
  std::condition_variable_any done_cv_;  ///< caller waits for job completion
  Job* job_ COMPLX_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ COMPLX_GUARDED_BY(mu_) = 0;
  bool stop_ COMPLX_GUARDED_BY(mu_) = false;
};

/// std::thread::hardware_concurrency with a floor of 1.
size_t hardware_threads();

/// Sets the process-wide thread count used by the parallel kernels.
/// 0 restores the default (hardware concurrency). Not thread-safe: call
/// from the main thread before starting parallel work.
void set_global_threads(size_t n);

/// Current process-wide thread count (never 0).
size_t global_threads();

/// The shared pool all parallel kernels run on (created lazily).
ThreadPool& global_pool();

// ---------------------------------------------------------------------------
// Deterministic helpers over the global pool.
// ---------------------------------------------------------------------------

/// Fixed reduction chunk: ranges up to this size reduce exactly like the
/// historical serial loops (single chunk). Never derive chunking from the
/// thread count — that is what keeps results bitwise thread-independent.
inline constexpr size_t kReduceChunk = 4096;

/// Partition [0, n) into equal blocks: at least `min_chunk` indices per
/// block, at most `max_parts` blocks. Depends only on n — used by kernels
/// that keep one scratch buffer per block (density/RUDY partial grids).
struct Partition {
  size_t parts = 1;
  size_t chunk = 0;  ///< indices per block (last block may be short)
};
Partition partition_range(size_t n, size_t min_chunk, size_t max_parts);

namespace detail {

/// Chunk size used when the caller passed 0: ~4 blocks per thread for load
/// balance, floored so per-chunk overhead stays negligible. Execution-only
/// choice — callers' writes must be index-owned, never order-dependent.
size_t default_chunk(size_t n);

/// Type-erased multi-thread backends behind the template front-ends below.
/// Only reached when the work actually fans out to pool workers; the
/// single-thread / nested / single-chunk cases run inline in the templates
/// without constructing a std::function (and therefore without
/// allocating — solve_pcg's steady state relies on this).
void pool_for(size_t n, size_t chunk,
              const std::function<void(size_t, size_t)>& body);
double pool_sum(size_t n,
                const std::function<double(size_t, size_t)>& chunk_sum);

}  // namespace detail

/// parallel_for over [0, n) on the global pool; body(begin, end) must only
/// write locations owned by its indices. `chunk` 0 picks a size aimed at
/// ~4 blocks per thread (execution-only choice — safe because the body's
/// writes are index-owned, not order-dependent).
template <typename Body>
void parallel_for(size_t n, const Body& body, size_t chunk = 0) {
  if (n == 0) return;
  if (chunk == 0) chunk = detail::default_chunk(n);
  if (global_threads() == 1 || ThreadPool::in_parallel_region() ||
      n <= chunk) {
    // Same chunk boundaries as the pool path, visited in order (mirrors
    // ThreadPool::run_inline), with no type erasure and no allocation.
    ThreadPool::RegionScope region;
    for (size_t begin = 0; begin < n; begin += chunk)
      body(begin, begin + chunk < n ? begin + chunk : n);
    return;
  }
  detail::pool_for(n, chunk, body);
}

/// Deterministic sum: chunk_sum(begin, end) is evaluated per kReduceChunk
/// block and the partials are added in block order. Bitwise independent of
/// the thread count; equal to the serial loop whenever n <= kReduceChunk.
template <typename ChunkSum>
double parallel_sum(size_t n, const ChunkSum& chunk_sum) {
  if (n == 0) return 0.0;
  if (n <= kReduceChunk) return chunk_sum(0, n);
  if (global_threads() == 1 || ThreadPool::in_parallel_region()) {
    // Partials accumulated in chunk order — the same addition sequence the
    // pool path produces, without the partials buffer.
    ThreadPool::RegionScope region;
    double s = 0.0;
    for (size_t begin = 0; begin < n; begin += kReduceChunk)
      s += chunk_sum(begin,
                     begin + kReduceChunk < n ? begin + kReduceChunk : n);
    return s;
  }
  return detail::pool_sum(n, chunk_sum);
}

/// Runs two independent tasks concurrently (e.g. the two placement axes).
void parallel_invoke(const std::function<void()>& a,
                     const std::function<void()>& b);

// ---------------------------------------------------------------------------
// Parallel backends for the vec.h reductions (deterministic chunking).
// vec.h wraps these behind a small-size fast path; declared on raw
// std::vector<double> here so util does not depend on linalg headers.
// ---------------------------------------------------------------------------

/// dot(a, b) with deterministic fixed-chunk reduction.
double par_dot(const std::vector<double>& a, const std::vector<double>& b);

/// y += alpha * x, element-parallel (bitwise identical to the serial loop).
void par_axpy(double alpha, const std::vector<double>& x,
              std::vector<double>& y);

/// x = alpha * x + y, element-parallel (bitwise identical to serial).
void par_xpay(const std::vector<double>& y, double alpha,
              std::vector<double>& x);

}  // namespace complx
