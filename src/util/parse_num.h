// Strict numeric parsing for CLI flags and environment variables.
//
// The apps used to parse flag values with bare atoi/strtoul, so
// `complx_fleet --max-iters garbage` silently ran with 0 iterations — a
// report that claims a configuration it never measured. Same policy as
// gen/suites.cpp's bench_scale_from_env: a set-but-broken value must fail
// loudly, with the flag name in the message. All parsers reject empty
// input, trailing junk, and out-of-range values; the apps catch ParseError,
// print the message plus usage, and exit 1 (the usage-error exit code).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace complx {

/// Malformed numeric value; what() carries "<flag>: expected ... got ...".
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses a decimal signed integer in [lo, hi]. `flag` names the source
/// (e.g. "--max-iters") for the error message.
int64_t parse_int64(const std::string& flag, const std::string& text,
                    int64_t lo = std::numeric_limits<int64_t>::min(),
                    int64_t hi = std::numeric_limits<int64_t>::max());

/// Parses a decimal unsigned integer in [lo, hi]. A leading '-' is an error
/// (strtoull would silently wrap it).
uint64_t parse_uint64(const std::string& flag, const std::string& text,
                      uint64_t lo = 0,
                      uint64_t hi = std::numeric_limits<uint64_t>::max());

/// Parses a finite double in [lo, hi].
double parse_double(const std::string& flag, const std::string& text,
                    double lo = -std::numeric_limits<double>::infinity(),
                    double hi = std::numeric_limits<double>::infinity());

}  // namespace complx
