#include "util/csv.h"

#include <stdexcept>

namespace complx {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  for (size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CSV row width mismatch");
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CSV row width mismatch");
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
}

}  // namespace complx
