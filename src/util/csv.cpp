#include "util/csv.h"

#include <stdexcept>

#include "util/log.h"

namespace complx {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  for (size_t i = 0; i < header.size(); ++i) {
    if (i) out_.stream() << ',';
    out_.stream() << header[i];
  }
  out_.stream() << '\n';
}

CsvWriter::~CsvWriter() {
  if (closed_) return;
  try {
    close();
  } catch (const std::exception& e) {
    log_warn("csv write failed for %s: %s", out_.path().c_str(), e.what());
  }
}

void CsvWriter::close() {
  closed_ = true;
  out_.commit();
}

void CsvWriter::row(const std::vector<double>& values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CSV row width mismatch");
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out_.stream() << ',';
    out_.stream() << values[i];
  }
  out_.stream() << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (values.size() != columns_)
    throw std::invalid_argument("CSV row width mismatch");
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out_.stream() << ',';
    out_.stream() << values[i];
  }
  out_.stream() << '\n';
}

}  // namespace complx
