// Crash-safe file writes: temp file in the destination directory + fsync +
// atomic rename.
//
// Every artifact the system emits — placements, fleet JSON, snapshot
// stores, traces, SVGs — must never exist on disk in a half-written state:
// a SIGKILL, an ENOSPC or a power cut mid-write would otherwise leave a
// truncated file that a later run (or the warm-start store) reads as
// garbage. This module is the single write authority (enforced by
// complx-lint rule IO1: no direct file-writing primitives in src/ outside
// util/atomic_file.*). The contract:
//
//  * the destination either keeps its previous content or holds the
//    complete new content — never a prefix, never a mix;
//  * failures (short write, failed fsync, failed rename, ENOSPC) throw
//    std::runtime_error with errno context and remove the temp file;
//  * the temp file lives in the destination's directory so the final
//    rename(2) is within one filesystem and therefore atomic.
//
// IoFaultInjection carries test-only hooks that make each failure mode
// reproducible (the chaos suite, `ctest -L chaos`, drives them); production
// callers leave them empty and pay one null check per hook.
#pragma once

#include <cstddef>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace complx {

/// Test-only I/O fault hooks (the file-system analogue of the numerical
/// FaultInjection in core/health.h, which embeds one of these). Production
/// configs leave every member empty.
struct IoFaultInjection {
  /// Maps an intended write length to the length actually written; return
  /// a smaller value to simulate a torn/short write (e.g. ENOSPC mid-file).
  std::function<size_t(size_t len)> short_write;
  /// Return true to make the data-file fsync report failure (EIO).
  std::function<bool()> fail_fsync;
  /// Return true to make the final rename report failure.
  std::function<bool()> fail_rename;
  /// Return true to make the temp-file creation report ENOSPC.
  std::function<bool()> fail_open;
  /// May mutate the serialized bytes before they are written (bit flips,
  /// truncation, garbage) — corruption the *reader* must then catch.
  std::function<void(std::string& bytes)> corrupt_bytes;

  bool any() const {
    return short_write || fail_fsync || fail_rename || fail_open ||
           corrupt_bytes;
  }
};

struct AtomicWriteOptions {
  /// fsync the temp file before rename (and the directory after). Disabled
  /// only by tests that do not care about durability, never by production
  /// callers: without the data fsync an atomic rename can still publish a
  /// file whose blocks are not on disk yet.
  bool fsync = true;
  const IoFaultInjection* faults = nullptr;
};

/// Writes `content` to `path` atomically (temp + fsync + rename). Throws
/// std::runtime_error on any failure; the destination is never left
/// partially written and the temp file is removed on error.
void write_file_atomic(const std::string& path, std::string_view content,
                       const AtomicWriteOptions& opts = {});

/// Stream-style composition with an atomic commit: build the content with
/// ordinary `<<` formatting, then `commit()` publishes it in one rename.
/// A writer destroyed without commit() writes nothing (the compose buffer
/// is discarded), so an exception mid-composition leaves no artifact.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path, AtomicWriteOptions opts = {})
      : path_(std::move(path)), opts_(opts) {}

  std::ostream& stream() { return buf_; }
  const std::string& path() const { return path_; }

  /// Publishes the composed content. Throws on I/O failure; calling twice
  /// is a logic error (std::logic_error).
  void commit();

 private:
  std::string path_;
  AtomicWriteOptions opts_;
  std::ostringstream buf_;
  bool committed_ = false;
};

}  // namespace complx
