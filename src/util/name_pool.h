// Arena storage for object names: all strings live back-to-back in one char
// blob, addressed by a 32-bit start offset per entry. Compared to a
// std::vector<std::string> this removes the 32-byte string header and any
// per-name heap block — at 10M cells the name table costs ~1 byte per name
// character plus 4 bytes of offset, and construction performs O(1) amortized
// appends into two flat vectors instead of one allocation per name.
//
// Append-only by design: entry i's extent is [offsets_[i], offsets_[i+1]),
// so names can never be edited in place. That is exactly the netlist's
// contract — names identify objects, they are not mutable state.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace complx {

class NamePool {
 public:
  /// Appends a name and returns its index (== size() before the call).
  uint32_t add(std::string_view s) {
    if (chars_.size() + s.size() > std::numeric_limits<uint32_t>::max())
      throw std::length_error("NamePool: character arena exceeds 4 GiB");
    const uint32_t id = static_cast<uint32_t>(offsets_.size() - 1);
    chars_.insert(chars_.end(), s.begin(), s.end());
    offsets_.push_back(static_cast<uint32_t>(chars_.size()));
    return id;
  }

  std::string_view operator[](uint32_t i) const {
    return {chars_.data() + offsets_[i],
            static_cast<size_t>(offsets_[i + 1] - offsets_[i])};
  }

  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Pre-sizes the arena: `count` names of ~`avg_chars` characters each.
  void reserve(size_t count, size_t avg_chars) {
    offsets_.reserve(count + 1);
    chars_.reserve(count * avg_chars);
  }

  /// Returns excess reserve capacity to the allocator (no-op when tight).
  void shrink_to_fit() {
    chars_.shrink_to_fit();
    offsets_.shrink_to_fit();
  }

  /// Bytes held by the pool (capacity, i.e. what the allocator charged us).
  size_t memory_bytes() const {
    return chars_.capacity() * sizeof(char) +
           offsets_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<char> chars_;
  std::vector<uint32_t> offsets_ = {0};  ///< n+1 fenceposts
};

}  // namespace complx
