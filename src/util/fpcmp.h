// Floating-point comparison helpers — the designated home for every
// equality test on double in this codebase.
//
// Raw `==` / `!=` on floating-point values is banned outside this header
// (complx-lint rule N1): at a call site it is ambiguous whether the author
// meant "bitwise the same value" (a determinism contract), "exactly the
// sentinel zero I stored earlier" (a flag), or "close enough after
// arithmetic" (a tolerance) — and the wrong reading of that ambiguity is a
// classic source of flaky convergence checks. These helpers make the intent
// explicit in the name, so the reader (and the linter) can tell which
// contract a comparison relies on.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace complx::fp {

/// Exact bitwise-value equality (the determinism contract: identical
/// arithmetic produced identical values; -0.0 == 0.0, NaN != NaN).
inline bool exactly_equal(double a, double b) { return a == b; }

/// True iff x is exactly ±0.0 — for sentinel zeros written by this code
/// (e.g. "this bin was never touched"), not for results of arithmetic.
inline bool exactly_zero(double x) { return x == 0.0; }

/// Absolute-tolerance zero test for results of arithmetic.
inline bool near_zero(double x, double abs_tol = 1e-12) {
  return std::fabs(x) <= abs_tol;
}

/// Mixed relative/absolute tolerance equality. Infinities of the same sign
/// compare equal; NaN never does. The relative term uses the larger
/// magnitude so the predicate is symmetric.
inline bool approx_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) {
  if (exactly_equal(a, b)) return true;  // covers equal infinities
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= abs_tol || diff <= rel_tol * scale;
}

/// Distance in representable doubles between a and b (0 iff bitwise-equal
/// up to signed zero). Uses the standard monotone mapping of the IEEE-754
/// bit pattern onto a signed integer line.
inline std::int64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<std::int64_t>::max();
  // Monotone map of the IEEE-754 bit pattern onto the unsigned line, with
  // -0.0 and +0.0 coinciding at 2^63. Unsigned throughout: the -inf..+inf
  // distance would overflow a signed difference.
  constexpr std::uint64_t kSign = std::uint64_t{1} << 63;
  auto to_ordered = [](double x) {
    const auto bits = std::bit_cast<std::uint64_t>(x);
    return bits & kSign ? kSign - (bits & ~kSign) : kSign + bits;
  };
  const std::uint64_t oa = to_ordered(a);
  const std::uint64_t ob = to_ordered(b);
  const std::uint64_t d = oa > ob ? oa - ob : ob - oa;
  constexpr auto kMax =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  return d > kMax ? std::numeric_limits<std::int64_t>::max()
                  : static_cast<std::int64_t>(d);
}

/// Equality within a fixed number of representable doubles — the right tool
/// when two code paths compute the same quantity with reordered arithmetic.
inline bool ulp_equal(double a, double b, std::int64_t max_ulps = 4) {
  return ulp_distance(a, b) <= max_ulps;
}

}  // namespace complx::fp
