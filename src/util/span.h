// Minimal non-owning contiguous view, the return type of the netlist's CSR
// adjacency accessors. Intentionally tiny (pointer + length): the placer
// targets C++20 but keeps its hot-path vocabulary types trivially copyable
// and free of the bounds-checking/ranges machinery of std::span so that the
// adjacency loops compile to plain pointer arithmetic everywhere.
#pragma once

#include <cstddef>

namespace complx {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}

  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }
  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T& front() const { return data_[0]; }
  constexpr const T& back() const { return data_[size_ - 1]; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace complx
