// Minimal leveled logger. Placement runs produce per-iteration traces; the
// logger keeps those quiet by default (level Warn) so tests and benches stay
// readable, while examples raise the level to Info.
#pragma once

#include <cstdio>
#include <string>

namespace complx {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/// Process-wide log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void vlog(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace detail

template <typename... Args>
void log_debug(const char* fmt, Args... args) {
  detail::vlog(LogLevel::Debug, fmt, args...);
}
template <typename... Args>
void log_info(const char* fmt, Args... args) {
  detail::vlog(LogLevel::Info, fmt, args...);
}
template <typename... Args>
void log_warn(const char* fmt, Args... args) {
  detail::vlog(LogLevel::Warn, fmt, args...);
}
template <typename... Args>
void log_error(const char* fmt, Args... args) {
  detail::vlog(LogLevel::Error, fmt, args...);
}

}  // namespace complx
