// Deterministic, seedable pseudo-random generator (SplitMix64 core).
//
// Placement experiments must be reproducible run-to-run; std::mt19937 would
// also work but its state is bulky and its distributions are not guaranteed
// identical across standard libraries. SplitMix64 plus explicit distribution
// code gives bit-identical streams everywhere.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace complx {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64).
  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n); n must be > 0.
  uint64_t uniform_index(uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(uniform_index(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (one value per call; simple > fast here).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Heavy-tailed net degree: returns k >= 2. Tuned so ~75% of nets have
  /// degree 2-3 (as in the ISPD benchmark suites) with a power-law tail of
  /// rare high-fanout nets.
  int net_degree(int max_degree) {
    const double u = uniform();
    if (u < 0.55 || max_degree <= 2) return 2;
    if (u < 0.75 || max_degree <= 3) return 3;
    const double v = uniform();
    const int k = 4 + static_cast<int>(v * v * v * (max_degree - 3));
    return k > max_degree ? max_degree : k;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace complx
