#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace complx {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  const int err = errno;
  throw std::runtime_error(what + " " + path + ": " +
                           (err != 0 ? std::strerror(err) : "injected fault"));
}

/// Temp path in the SAME directory as `path` (rename must not cross a
/// filesystem boundary) with the pid appended so two processes writing the
/// same destination cannot stomp each other's temp file.
std::string temp_path_for(const std::string& path) {
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

/// Best-effort directory fsync after the rename: makes the new directory
/// entry itself durable. Failure is ignored — some filesystems refuse
/// O_RDONLY fsync on directories and the data file is already synced.
void fsync_parent_dir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content,
                       const AtomicWriteOptions& opts) {
  const IoFaultInjection* faults = opts.faults;

  // The corruption hook operates on a copy of the serialized bytes: it
  // simulates damage in flight (bad RAM, a buggy layer below us), which the
  // atomic protocol cannot prevent — only the reader's validation can.
  std::string corrupted;
  std::string_view bytes = content;
  if (faults && faults->corrupt_bytes) {
    corrupted.assign(content);
    faults->corrupt_bytes(corrupted);
    bytes = corrupted;
  }

  const std::string tmp = temp_path_for(path);
  errno = 0;
  int fd = -1;
  if (faults && faults->fail_open && faults->fail_open())
    errno = ENOSPC;
  else
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create temp file for", path);

  // Write loop with injected short writes: a hook-truncated count models the
  // kernel accepting fewer bytes (ENOSPC mid-file, signal, quota).
  size_t off = 0;
  while (off < bytes.size()) {
    size_t want = bytes.size() - off;
    bool injected_short = false;
    if (faults && faults->short_write) {
      const size_t allowed = faults->short_write(want);
      if (allowed < want) {
        want = allowed;
        injected_short = true;
      }
    }
    const ssize_t n =
        want == 0 ? 0 : ::write(fd, bytes.data() + off, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write failed for", path);
    }
    off += static_cast<size_t>(n);
    if (injected_short || (n == 0 && want > 0)) {
      // The device stopped accepting bytes: report ENOSPC, clean up.
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = ENOSPC;
      fail("short write (device full?) for", path);
    }
  }

  if (opts.fsync) {
    errno = 0;
    const bool injected = faults && faults->fail_fsync && faults->fail_fsync();
    if (injected || ::fsync(fd) != 0) {
      if (injected) errno = EIO;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("fsync failed for", path);
    }
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close failed for", path);
  }

  errno = 0;
  const bool injected_rename =
      faults && faults->fail_rename && faults->fail_rename();
  if (injected_rename || std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (injected_rename) errno = EIO;
    ::unlink(tmp.c_str());
    fail("rename failed for", path);
  }
  if (opts.fsync) fsync_parent_dir(path);
}

void AtomicFileWriter::commit() {
  if (committed_)
    throw std::logic_error("AtomicFileWriter: double commit for " + path_);
  committed_ = true;
  if (!buf_.good())
    throw std::runtime_error("AtomicFileWriter: compose stream failed for " +
                             path_);
  write_file_atomic(path_, buf_.str(), opts_);
}

}  // namespace complx
