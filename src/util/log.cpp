#include "util/log.h"

#include <cstdarg>

namespace complx {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "[debug] ";
    case LogLevel::Info:
      return "[info ] ";
    case LogLevel::Warn:
      return "[warn ] ";
    case LogLevel::Error:
      return "[error] ";
    default:
      return "";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) {
  if (level < g_level) return;
  std::fputs(prefix(level), stderr);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace complx
