#include "gen/fleet.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "core/placer.h"
#include "density/metric.h"
#include "dp/detailed.h"
#include "io/experience.h"
#include "legal/tetris.h"
#include "util/atomic_file.h"
#include "util/timer.h"
#include "wl/hpwl.h"

namespace complx {

const char* to_string(FleetPreset preset) {
  switch (preset) {
    case FleetPreset::Gate: return "gate";
    case FleetPreset::Smoke: return "smoke";
  }
  return "?";
}

std::vector<PekoParams> fleet_designs(FleetPreset preset, uint64_t base_seed) {
  struct AxisSpec {
    std::vector<size_t> cells;
    std::vector<double> utils;
    std::vector<size_t> macros;
    size_t seeds = 1;
  };
  // Gate: 1x2x2x5 = 20 tiny designs (256 cells each) — seconds per fleet
  // run, small enough to execute twice inside a ctest. Smoke: 3x3x2x2 = 36
  // designs to 2304 cells across all three axes — the BENCH_quality.json
  // trajectory entry.
  const AxisSpec axis =
      preset == FleetPreset::Gate
          ? AxisSpec{{256}, {0.55, 0.75}, {0, 2}, 5}
          : AxisSpec{{256, 1024, 2304}, {0.50, 0.70, 0.85}, {0, 4}, 2};

  std::vector<PekoParams> designs;
  uint64_t salt = 0;
  for (const size_t cells : axis.cells) {
    for (const double util : axis.utils) {
      for (const size_t macros : axis.macros) {
        for (size_t s = 0; s < axis.seeds; ++s) {
          PekoParams p;
          p.num_cells = cells;
          p.utilization = util;
          p.num_fixed_macros = macros;
          p.seed = base_seed + 7919 * (salt++);
          char name[96];
          std::snprintf(name, sizeof name, "peko_c%zu_u%02d_m%zu_s%llu",
                        cells, static_cast<int>(std::lround(util * 100.0)),
                        macros,
                        static_cast<unsigned long long>(p.seed));
          p.name = name;
          designs.push_back(std::move(p));
        }
      }
    }
  }
  return designs;
}

FleetRecord run_fleet_design(const PekoParams& params,
                             const FleetRunOptions& opts) {
  Timer timer;
  const PekoDesign design = generate_peko(params);
  const Netlist& nl = design.netlist;

  ComplxConfig cfg;
  cfg.max_iterations = opts.max_iterations;
  cfg.density_backend = opts.density_backend;
  cfg.threads = opts.threads;
  cfg.cancel = opts.cancel;
  if (opts.warm_start) cfg.experience = opts.experience;
  const PlaceResult gp = ComplxPlacer(nl, cfg).place();

  // Record the best usable GLOBAL placement (the anchors a warm start
  // resumes from), before legalization/DP bake in row snapping. Converged
  // and plateaued exits are the ideal; iteration-capped runs still carry
  // their best-so-far checkpoint, and on hard designs that never meet the
  // overflow criterion they are the only experience a rerun could resume.
  // Failed, cancelled or timed-out runs are never recorded.
  if (opts.experience && opts.save_experience && !gp.failed &&
      (gp.stop == StopReason::Converged ||
       gp.stop == StopReason::Plateau ||
       gp.stop == StopReason::MaxIterations))
    opts.experience->record(nl, gp.anchors, weighted_hpwl(nl, gp.anchors),
                            gp.iterations);

  Placement p = gp.anchors;
  TetrisLegalizer(nl).legalize(p);
  if (opts.detailed) DetailedPlacer(nl).refine(p);

  FleetRecord r;
  r.name = params.name;
  r.seed = params.seed;
  r.cells = design.cells;
  r.movable = nl.num_movable();
  r.nets = nl.num_nets();
  r.macros = design.macros_placed;
  r.utilization = design.achieved_utilization;
  r.optimum_hpwl = design.optimum_hpwl;
  r.hpwl = hpwl(nl, p);
  r.ratio = r.hpwl / design.optimum_hpwl;
  const DensityMetric dm = evaluate_scaled_hpwl(nl, p);
  r.overflow_percent = dm.overflow_percent;
  r.legal = TetrisLegalizer::is_legal(nl, p);
  r.iterations = gp.iterations;
  r.warm_started = gp.warm_started;
  r.wall_s = opts.record_timing ? timer.seconds() : 0.0;
  return r;
}

FleetSummary summarize_fleet(const std::vector<FleetRecord>& records) {
  FleetSummary s;
  s.designs = records.size();
  if (records.empty()) return s;
  double log_sum = 0.0;
  for (const FleetRecord& r : records) {
    log_sum += std::log(r.ratio);
    s.max_ratio = std::max(s.max_ratio, r.ratio);
    s.mean_overflow_percent += r.overflow_percent;
    s.total_wall_s += r.wall_s;
    if (!r.legal) ++s.illegal;
    if (r.warm_started) ++s.warm_started;
  }
  s.geomean_ratio = std::exp(log_sum / static_cast<double>(records.size()));
  s.mean_overflow_percent /= static_cast<double>(records.size());
  return s;
}

namespace {

/// printf-style formatting into an ostream: keeps the exact %.17g record
/// layout the gate scripts parse while composing through AtomicFileWriter.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void jf(std::ostream& os, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  os << buf;
}

}  // namespace

void write_fleet_run_json(const std::string& path, const std::string& label,
                          const std::string& preset,
                          const FleetRunOptions& opts,
                          const std::vector<FleetRecord>& records) {
  AtomicFileWriter writer(path);
  std::ostream& f = writer.stream();
  const FleetSummary s = summarize_fleet(records);
  jf(f, "{\n");
  jf(f, "  \"schema_version\": 1,\n");
  jf(f, "  \"kind\": \"peko_fleet_run\",\n");
  jf(f, "  \"label\": \"%s\",\n", label.c_str());
  jf(f, "  \"preset\": \"%s\",\n", preset.c_str());
  jf(f,
     "  \"config\": {\"max_iterations\": %d, \"threads\": %zu, "
     "\"detailed\": %s, \"warm_start\": %s, \"save_experience\": %s, "
     "\"density_backend\": \"%s\"},\n",
     opts.max_iterations, opts.threads, opts.detailed ? "true" : "false",
     opts.warm_start ? "true" : "false",
     opts.save_experience ? "true" : "false",
     opts.density_backend.c_str());
  jf(f, "  \"designs\": [\n");
  for (size_t k = 0; k < records.size(); ++k) {
    const FleetRecord& r = records[k];
    jf(f,
       "    {\"name\": \"%s\", \"seed\": %llu, \"cells\": %zu, "
       "\"movable\": %zu, \"nets\": %zu, \"macros\": %zu, "
       "\"utilization\": %.17g, \"optimum_hpwl\": %.17g, \"hpwl\": %.17g, "
       "\"ratio\": %.17g, \"overflow_percent\": %.17g, \"legal\": %s, "
       "\"iterations\": %d, \"warm_started\": %s, \"wall_s\": %.6g}%s\n",
       r.name.c_str(), static_cast<unsigned long long>(r.seed), r.cells,
       r.movable, r.nets, r.macros, r.utilization, r.optimum_hpwl, r.hpwl,
       r.ratio, r.overflow_percent, r.legal ? "true" : "false", r.iterations,
       r.warm_started ? "true" : "false", r.wall_s,
       k + 1 < records.size() ? "," : "");
  }
  jf(f, "  ],\n");
  jf(f,
     "  \"summary\": {\"designs\": %zu, \"illegal\": %zu, "
     "\"warm_started\": %zu, \"geomean_ratio\": %.17g, \"max_ratio\": %.17g, "
     "\"mean_overflow_percent\": %.17g, \"total_wall_s\": %.6g}\n",
     s.designs, s.illegal, s.warm_started, s.geomean_ratio, s.max_ratio,
     s.mean_overflow_percent, s.total_wall_s);
  jf(f, "}\n");
  writer.commit();
}

}  // namespace complx
