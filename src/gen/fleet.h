// Known-optimum benchmark fleet: run the full placement flow on a set of
// PEKO designs (gen/peko.h) spanning size / density / macro-mix axes and
// score each as a suboptimality ratio hpwl / optimum_hpwl >= 1.
//
// The fleet is the measurement substrate for the statistical quality gate
// (scripts/quality_gate.py): a baseline and a candidate build run the SAME
// seeded designs, and the paired per-design ratio differences feed an
// SPRT-style sign test that accepts or rejects the candidate. Records are
// persisted as machine-readable JSON (BENCH_quality.json at the repo root
// accumulates the trajectory across PRs; docs/BENCHMARKS.md documents the
// schema).
//
// Everything except wall_s is bitwise deterministic in (design seed, fleet
// options) at any thread count — enforced by test_golden_determinism.
#pragma once

// complx-lint: allow(P1): holds a pointer to the apps' SIGINT cancel flag;
// polled at iteration/design boundaries only, never in numeric kernels.
#include <atomic>
#include <string>
#include <vector>

#include "gen/peko.h"

namespace complx {

class ExperienceStore;

enum class FleetPreset {
  Gate,   ///< 20 tiny designs — fast enough for a ctest-side gate run
  Smoke,  ///< 36 designs across size x density x macro axes (CI / BENCH_*.json)
};

const char* to_string(FleetPreset preset);

/// The seeded design list for a preset. Design names encode their axes
/// (peko_c<cells>_u<util%>_m<macros>_s<seed>); identical (preset, base_seed)
/// always yields the identical list, which is what makes baseline/candidate
/// runs pairable by name.
std::vector<PekoParams> fleet_designs(FleetPreset preset,
                                      uint64_t base_seed = 1);

struct FleetRunOptions {
  int max_iterations = 60;  ///< global-placement iteration cap
  size_t threads = 1;       ///< worker threads (0 = inherit process setting)
  bool detailed = true;     ///< run detailed placement after legalization
  bool record_timing = true;  ///< false => wall_s = 0 (deterministic record)
  /// Density / projection backend by registry name ("spread",
  /// "electrostatic") — the spreading-ablation axis of docs/BENCHMARKS.md.
  std::string density_backend = "spread";

  /// Experience store (io/experience.h): when non-null, each design probes
  /// the store before the cold bootstrap (warm_start) and/or records its
  /// converged global placement back (save_experience). The store is probed
  /// and updated per design, so within one fleet run design k can already
  /// warm-start from design k's record of a previous run.
  ExperienceStore* experience = nullptr;
  bool warm_start = false;
  bool save_experience = false;

  /// Cooperative cancellation (SIGINT): checked between designs by the fleet
  /// driver and at iteration boundaries inside the placer.
  /// complx-lint: allow(P1): see header note — control flow only.
  const std::atomic<bool>* cancel = nullptr;
};

/// One design's scored flow result (global place -> legalize -> DP).
struct FleetRecord {
  std::string name;
  uint64_t seed = 0;
  size_t cells = 0;    ///< placeable grid cells (movable + fixed anchors)
  size_t movable = 0;
  size_t nets = 0;
  size_t macros = 0;   ///< pin-less blockages actually placed
  double utilization = 0.0;  ///< achieved placeable-area / core-area

  double optimum_hpwl = 0.0;  ///< closed-form optimum (gen/peko.h)
  double hpwl = 0.0;          ///< legalized (+DP) result
  double ratio = 0.0;         ///< hpwl / optimum_hpwl; >= 1 iff legal
  double overflow_percent = 0.0;
  bool legal = false;
  int iterations = 0;
  bool warm_started = false;  ///< resumed from an experience-store record
  double wall_s = 0.0;  ///< full-flow wall time (0 when !record_timing)
};

/// Runs the full flow on one design and scores it against the closed-form
/// optimum. Deterministic in (params, opts) except for wall_s.
FleetRecord run_fleet_design(const PekoParams& params,
                             const FleetRunOptions& opts);

struct FleetSummary {
  size_t designs = 0;
  size_t illegal = 0;  ///< records with legal == false (should be 0)
  size_t warm_started = 0;  ///< designs resumed from the experience store
  double geomean_ratio = 0.0;
  double max_ratio = 0.0;
  double mean_overflow_percent = 0.0;
  double total_wall_s = 0.0;
};

FleetSummary summarize_fleet(const std::vector<FleetRecord>& records);

/// Writes one fleet run as a self-contained JSON object (schema_version 1).
/// scripts/quality_gate.py consumes these for the paired gate and can append
/// them to the BENCH_quality.json trajectory. The write is atomic (temp +
/// fsync + rename, util/atomic_file.h): a crash mid-write never leaves a
/// half-written JSON for the gate to choke on. Throws on I/O failure.
void write_fleet_run_json(const std::string& path, const std::string& label,
                          const std::string& preset,
                          const FleetRunOptions& opts,
                          const std::vector<FleetRecord>& records);

}  // namespace complx
