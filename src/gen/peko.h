// PEKO-style known-optimum benchmark construction (Cong et al.'s "Placement
// Examples with Known Optima" lineage; arXiv:2305.16413 discusses the
// methodology). The repo's ISPD-analogue generator (gen/generator.h) gives
// realistic *statistics* but no ground truth; this module gives the opposite
// trade: a slightly stylized netlist whose OPTIMAL total HPWL is computable
// in closed form, so a placer's result can be scored as a suboptimality
// ratio hpwl / optimum_hpwl >= 1 instead of a raw number.
//
// Construction (see docs/BENCHMARKS.md "Known-optimum fleet" for the proofs):
//  * All placeable cells are W x W squares (W = row height), arranged in
//    compact square "patches" laid out on a super-grid inside the core; the
//    stored positions ARE the certified-optimal placement.
//  * Every net's pins are a nearest-neighbor window of patch cells (adjacent
//    pair, L/straight triple, or a 2x2 / 3x3 / 4x4 block), at zero pin
//    offset. For these degrees the minimum possible HPWL of k disjoint
//    W x W squares, over ALL placements, is known exactly:
//        m(2) = W, m(3) = 2W, m(4) = 2W, m(9) = 4W, m(16) = 6W,
//    and each window achieves its m(k) in the constructed placement.
//    Total HPWL of any legal placement is >= sum_e m(deg(e)) (the bound is
//    per-net and placement-independent), and the construction attains it:
//        optimum_hpwl = sum_e m(deg(e)),  exactly, in closed form.
//  * A snake-order chain of adjacent 2-pin nets per patch guarantees every
//    cell is connected and each patch is one connected component.
//  * One cell per patch (the corner) is FIXED at its optimal position — the
//    PEKO analogue of I/O pads. It anchors the lambda = 0 quadratic solves
//    (otherwise translation-invariant) without perturbing the optimum:
//    fixing cells at optimal positions only shrinks the feasible set.
//  * Optional pin-less fixed macros act as blockages (macro-mix axis); they
//    carry no nets, so the closed-form optimum is unaffected. They are
//    placed in the whitespace outside the patches, keeping the constructed
//    placement legal.
//
// Everything is deterministic in the seed (SplitMix64), and the closed form
// sums integer multiples of W — exact in double precision — so tests can
// require hpwl(constructed) == optimum_hpwl to the last bit.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace complx {

struct PekoParams {
  std::string name = "peko";
  uint64_t seed = 1;

  /// Requested movable-cell count; rounded UP so the patches form full
  /// patch_side x patch_side grids (PekoDesign::cells records the total).
  size_t num_cells = 1024;
  /// Patch edge length in cells (clamped down for tiny designs).
  size_t patch_side = 16;

  /// Nets per cell INCLUDING the per-patch connectivity chains (which
  /// contribute just under 1 net/cell); the remainder are random windows.
  double nets_per_cell = 1.8;

  /// Degree-mix weights for the random window nets (normalized internally).
  double w_pair = 0.55;    ///< degree 2, adjacent pair
  double w_triple = 0.23;  ///< degree 3, L / straight triple
  double w_quad = 0.12;    ///< degree 4, 2x2 block
  double w_nine = 0.07;    ///< degree 9, 3x3 block
  double w_sixteen = 0.03; ///< degree 16, 4x4 block

  /// Core sizing: placeable area (cells + macros) / core area. The core is
  /// additionally grown if needed so the patch super-grid fits with one row
  /// of slack; PekoDesign::achieved_utilization records the real value.
  double utilization = 0.65;

  /// Pin-less fixed blockages rejection-sampled into the whitespace
  /// (skipped if no free spot exists; PekoDesign::macros_placed records
  /// the number actually placed).
  size_t num_fixed_macros = 0;
  double macro_rows_min = 6.0;   ///< macro edge in row heights
  double macro_rows_max = 14.0;

  double row_height = 12.0;       ///< also the (square) cell edge W
  double target_density = 1.0;    ///< gamma written into the netlist
};

/// A generated known-optimum design. The netlist's stored positions are the
/// certified optimal placement (movable cells included).
struct PekoDesign {
  Netlist netlist;
  /// Closed-form optimal total HPWL, sum_e m(deg(e)). The constructed
  /// placement attains this exactly; no legal placement can do better.
  double optimum_hpwl = 0.0;

  size_t cells = 0;        ///< placeable grid cells (movable + anchors)
  size_t anchors = 0;      ///< fixed anchor cells (one per patch)
  size_t patches = 0;
  size_t patch_side = 0;
  size_t macros_placed = 0;
  double achieved_utilization = 0.0;
};

/// Minimum possible HPWL of one net of `degree` pins on distinct
/// non-overlapping `cell_edge` x `cell_edge` square cells (zero pin
/// offsets), over ALL placements. Supported degrees: 2, 3, 4, 9, 16;
/// throws std::invalid_argument otherwise.
double peko_net_optimum(int degree, double cell_edge);

/// Generates a known-optimum design. Deterministic in params.seed.
PekoDesign generate_peko(const PekoParams& params);

}  // namespace complx
