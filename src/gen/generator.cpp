#include "gen/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace complx {

namespace {

struct ClusterGrid {
  size_t side = 1;  ///< clusters per dimension
  std::vector<std::vector<CellId>> members;

  size_t index(size_t i, size_t j) const { return j * side + i; }

  /// A ring-1 neighbour of cluster (i, j), or the cluster itself at edges.
  size_t neighbor(size_t i, size_t j, Rng& rng) const {
    const long di = rng.uniform_int(-1, 1);
    const long dj = rng.uniform_int(-1, 1);
    const long ni = std::clamp<long>(static_cast<long>(i) + di, 0,
                                     static_cast<long>(side) - 1);
    const long nj = std::clamp<long>(static_cast<long>(j) + dj, 0,
                                     static_cast<long>(side) - 1);
    return index(static_cast<size_t>(ni), static_cast<size_t>(nj));
  }
};

}  // namespace

Netlist generate_circuit(const GenParams& prm) {
  if (prm.num_cells < 16)
    throw std::invalid_argument("generator needs at least 16 cells");
  Rng rng(prm.seed);
  Netlist nl;

  // Arena-style pre-sizing: one reservation per flat array up front, so a
  // multi-million-cell build never reallocates mid-construction. Net/pin
  // counts are estimates (nets_per_cell draws, degree ~<= 4 + pad/macro
  // fan-in); a slight overshoot is cheap, a reallocation storm is not.
  {
    const size_t est_cells = prm.num_cells + prm.num_movable_macros +
                             prm.num_fixed_macros + prm.num_pads;
    const size_t est_nets = static_cast<size_t>(
        static_cast<double>(prm.num_cells) * prm.nets_per_cell) +
        prm.num_pads + 16;
    nl.reserve(est_cells, est_nets, 4 * est_nets);
  }

  // Stack-buffer name formatting: "c"/"mm"/"fm"/"p"/"n" + decimal index,
  // straight into the netlist's NamePool arena — no temporary std::string
  // per object.
  char name_buf[32];
  auto fmt_name = [&name_buf](const char* prefix, size_t i) {
    const int len = std::snprintf(name_buf, sizeof(name_buf), "%s%zu",
                                  prefix, i);
    return std::string_view(name_buf, static_cast<size_t>(len));
  };

  // ---- movable standard cells ------------------------------------------
  double movable_area = 0.0;
  for (size_t i = 0; i < prm.num_cells; ++i) {
    Cell c;
    c.width = std::round(rng.uniform(prm.cell_width_min, prm.cell_width_max));
    c.height = prm.row_height;
    c.kind = CellKind::Movable;
    movable_area += c.area();
    nl.add_cell(c, fmt_name("c", i));
  }

  // ---- macros ------------------------------------------------------------
  auto macro_edge = [&] {
    return std::round(rng.uniform(prm.macro_rows_min, prm.macro_rows_max)) *
           prm.row_height;
  };
  std::vector<CellId> movable_macros, fixed_macros;
  for (size_t i = 0; i < prm.num_movable_macros; ++i) {
    Cell c;
    c.width = macro_edge();
    c.height = macro_edge();
    c.kind = CellKind::MovableMacro;
    movable_area += c.area();
    movable_macros.push_back(nl.add_cell(c, fmt_name("mm", i)));
  }
  double fixed_macro_area = 0.0;
  for (size_t i = 0; i < prm.num_fixed_macros; ++i) {
    Cell c;
    c.width = macro_edge();
    c.height = macro_edge();
    c.kind = CellKind::Fixed;
    fixed_macro_area += c.area();
    fixed_macros.push_back(nl.add_cell(c, fmt_name("fm", i)));
  }

  // ---- core area and rows -------------------------------------------------
  const double core_area =
      (movable_area + fixed_macro_area) / std::max(prm.utilization, 0.05);
  const double side =
      std::ceil(std::sqrt(core_area) / prm.row_height) * prm.row_height;
  const Rect core{0.0, 0.0, side, side};
  nl.set_core(core);
  {
    std::vector<Row> rows;
    for (double y = 0.0; y + prm.row_height <= side + 1e-9;
         y += prm.row_height)
      rows.push_back({y, prm.row_height, 0.0, side, 1.0});
    nl.set_rows(std::move(rows));
  }
  nl.set_target_density(prm.target_density);

  // ---- place fixed objects -------------------------------------------------
  // Fixed macros: rejection-sampled into the core interior.
  {
    std::vector<Rect> placed;
    for (CellId id : fixed_macros) {
      Cell& c = nl.cell(id);
      Rect best{};
      for (int attempt = 0; attempt < 64; ++attempt) {
        const double x =
            rng.uniform(core.xl, std::max(core.xl, core.xh - c.width));
        const double y = std::floor(rng.uniform(core.yl, std::max(
                                        core.yl, core.yh - c.height)) /
                                    prm.row_height) *
                         prm.row_height;
        const Rect cand{x, y, x + c.width, y + c.height};
        bool clash = false;
        for (const Rect& r : placed)
          if (r.overlaps(cand)) {
            clash = true;
            break;
          }
        best = cand;
        if (!clash) break;
      }
      c.x = best.xl;
      c.y = best.yl;
      placed.push_back(best);
    }
  }

  // Pads: evenly spaced around the core, just outside the boundary so they
  // consume no placement capacity (I/O ring).
  std::vector<CellId> pads;
  const double pad_sz = prm.row_height;
  for (size_t i = 0; i < prm.num_pads; ++i) {
    Cell c;
    c.width = pad_sz;
    c.height = pad_sz;
    c.kind = CellKind::Fixed;
    const double t =
        static_cast<double>(i) / static_cast<double>(prm.num_pads);
    const double perim = 4.0 * side;
    const double d = t * perim;
    if (d < side) {  // bottom edge
      c.x = d;
      c.y = core.yl - pad_sz;
    } else if (d < 2 * side) {  // right edge
      c.x = core.xh;
      c.y = d - side;
    } else if (d < 3 * side) {  // top edge
      c.x = core.xh - (d - 2 * side);
      c.y = core.yh;
    } else {  // left edge
      c.x = core.xl - pad_sz;
      c.y = core.yh - (d - 3 * side);
    }
    pads.push_back(nl.add_cell(c, fmt_name("p", i)));
  }

  // ---- cluster assignment ---------------------------------------------------
  ClusterGrid grid;
  grid.side = std::max<size_t>(
      2, static_cast<size_t>(std::sqrt(static_cast<double>(prm.num_cells) /
                                       64.0)));
  grid.members.assign(grid.side * grid.side, {});
  for (CellId id = 0; id < prm.num_cells; ++id)
    grid.members[rng.uniform_index(grid.side * grid.side)].push_back(id);
  // Guarantee non-empty clusters (tiny designs): backfill from cluster 0.
  for (auto& m : grid.members)
    if (m.empty()) m.push_back(static_cast<CellId>(rng.uniform_index(prm.num_cells)));

  auto random_offset = [&](const Cell& c, double& dx, double& dy) {
    dx = rng.uniform(-0.4 * c.width, 0.4 * c.width);
    dy = rng.uniform(-0.4 * c.height, 0.4 * c.height);
  };

  // Topological ranks: every net is oriented so its DRIVER (first pin) is
  // the lowest-ranked cell. Edges then always go rank-upward, so the
  // combinational netlist is a DAG — matching real circuits and making the
  // timing substrate meaningful (see timing/sta.h conventions).
  std::vector<uint64_t> rank(nl.num_cells() + prm.num_pads + 16);
  {
    Rng rank_rng(prm.seed ^ 0x7a9c1ull);
    for (uint64_t& r : rank) r = rank_rng.next_u64();
  }
  auto orient = [&](std::vector<Pin>& pins) {
    size_t best = 0;
    for (size_t i = 1; i < pins.size(); ++i)
      if (rank[pins[i].cell] < rank[pins[best].cell]) best = i;
    std::swap(pins[0], pins[best]);
  };

  auto pick_from_cluster = [&](size_t cluster) {
    const auto& m = grid.members[cluster];
    return m[rng.uniform_index(m.size())];
  };

  // ---- internal nets ---------------------------------------------------------
  const size_t num_nets = static_cast<size_t>(
      static_cast<double>(prm.num_cells) * prm.nets_per_cell);
  size_t net_counter = 0;
  for (size_t n = 0; n < num_nets; ++n) {
    const size_t hi = rng.uniform_index(grid.side);
    const size_t hj = rng.uniform_index(grid.side);
    const size_t home = grid.index(hi, hj);
    const int degree = rng.net_degree(prm.max_net_degree);

    std::vector<Pin> pins;
    std::vector<CellId> used;
    for (int k = 0; k < degree; ++k) {
      const double u = rng.uniform();
      CellId cand;
      if (u < prm.local_pin_fraction) {
        cand = pick_from_cluster(home);
      } else if (u < prm.local_pin_fraction + prm.neighbor_pin_fraction) {
        cand = pick_from_cluster(grid.neighbor(hi, hj, rng));
      } else {
        cand = static_cast<CellId>(rng.uniform_index(prm.num_cells));
      }
      if (std::find(used.begin(), used.end(), cand) != used.end()) continue;
      used.push_back(cand);
      double dx, dy;
      random_offset(nl.cell(cand), dx, dy);
      pins.push_back({cand, dx, dy});
    }
    if (pins.size() < 2) {
      --n;  // degenerate draw; retry
      continue;
    }
    orient(pins);
    nl.add_net(fmt_name("n", net_counter++), 1.0, pins);
  }

  // ---- pad nets: each pad drives a small net into the cluster nearest its
  // perimeter position (so geometry-aware placement is rewarded).
  for (size_t i = 0; i < pads.size(); ++i) {
    const Cell& pad = nl.cell(pads[i]);
    const double fx = std::clamp((pad.cx() - core.xl) / side, 0.0, 0.999);
    const double fy = std::clamp((pad.cy() - core.yl) / side, 0.0, 0.999);
    const size_t ci = static_cast<size_t>(fx * static_cast<double>(grid.side));
    const size_t cj = static_cast<size_t>(fy * static_cast<double>(grid.side));
    const size_t cluster = grid.index(ci, cj);

    std::vector<Pin> pins;
    pins.push_back({pads[i], 0.0, 0.0});
    const int fanout = static_cast<int>(rng.uniform_int(2, 5));
    std::vector<CellId> used;
    for (int k = 0; k < fanout; ++k) {
      const CellId cand = pick_from_cluster(cluster);
      if (std::find(used.begin(), used.end(), cand) != used.end()) continue;
      used.push_back(cand);
      double dx, dy;
      random_offset(nl.cell(cand), dx, dy);
      pins.push_back({cand, dx, dy});
    }
    if (pins.size() >= 2) {
      orient(pins);
      nl.add_net(fmt_name("n", net_counter++), 1.0, pins);
    }
  }

  // ---- macro nets: macros connect broadly across clusters.
  auto add_macro_nets = [&](CellId macro, size_t count) {
    const Cell& m = nl.cell(macro);
    for (size_t k = 0; k < count; ++k) {
      std::vector<Pin> pins;
      // Macro pin on the block boundary.
      const double edge_t = rng.uniform(-0.5, 0.5);
      double dx, dy;
      if (rng.uniform() < 0.5) {
        dx = edge_t * m.width;
        dy = (rng.uniform() < 0.5 ? -0.5 : 0.5) * m.height;
      } else {
        dx = (rng.uniform() < 0.5 ? -0.5 : 0.5) * m.width;
        dy = edge_t * m.height;
      }
      pins.push_back({macro, dx, dy});
      const size_t cluster = rng.uniform_index(grid.side * grid.side);
      const int fanout = static_cast<int>(rng.uniform_int(2, 4));
      std::vector<CellId> used;
      for (int j = 0; j < fanout; ++j) {
        const CellId cand = pick_from_cluster(cluster);
        if (std::find(used.begin(), used.end(), cand) != used.end()) continue;
        used.push_back(cand);
        double cdx, cdy;
        random_offset(nl.cell(cand), cdx, cdy);
        pins.push_back({cand, cdx, cdy});
      }
      if (pins.size() >= 2) {
        orient(pins);
        nl.add_net(fmt_name("n", net_counter++), 1.0, pins);
      }
    }
  };
  for (CellId id : movable_macros)
    add_macro_nets(id, static_cast<size_t>(
                           nl.cell(id).width / prm.row_height * 2.0));
  for (CellId id : fixed_macros)
    add_macro_nets(id, static_cast<size_t>(
                           nl.cell(id).width / prm.row_height));

  // ---- initial positions: deterministic scatter over the core.
  for (CellId id = 0; id < nl.num_cells(); ++id) {
    Cell& c = nl.cell(id);
    if (!c.movable()) continue;
    c.x = rng.uniform(core.xl, std::max(core.xl, core.xh - c.width));
    c.y = rng.uniform(core.yl, std::max(core.yl, core.yh - c.height));
  }

  nl.finalize();
  return nl;
}

}  // namespace complx
