#include "gen/peko.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace complx {

double peko_net_optimum(int degree, double cell_edge) {
  // Minimum center-bbox half-perimeter of `degree` disjoint W x W squares.
  // Degrees 4/9/16 follow from the area bound: centers spanning w x h force
  // the squares into a (w+W) x (h+W) box, so (w+W)(h+W) >= k W^2; for a
  // perfect square k = s^2, w + h < 2(s-1)W would make the product
  // < (sW)^2 = k W^2 — contradiction — and the s x s block attains
  // 2(s-1)W. Degrees 2/3 use the separation argument: two disjoint squares
  // need dx >= W or dy >= W (so m(2) = W), and for three squares an
  // x-extent < W forces all pairwise dy >= W (y-extent >= 2W) while a
  // y-extent < W forces x-extent >= 2W, so m(3) = 2W (an L-tromino or a
  // straight triple attains it). See docs/BENCHMARKS.md for the write-up.
  const double w = cell_edge;
  switch (degree) {
    case 2: return w;
    case 3: return 2.0 * w;
    case 4: return 2.0 * w;
    case 9: return 4.0 * w;
    case 16: return 6.0 * w;
    default:
      throw std::invalid_argument(
          "peko_net_optimum: unsupported net degree " + std::to_string(degree) +
          " (supported: 2, 3, 4, 9, 16)");
  }
}

namespace {

struct Window {
  int degree = 0;
  size_t span_x = 0;  ///< window width in cells
  size_t span_y = 0;
};

/// Cells of one random net, as local (i, j) patch coordinates.
std::vector<std::pair<size_t, size_t>> draw_window_cells(int degree,
                                                         size_t side,
                                                         Rng& rng) {
  // Clamp the degree down to what the patch can host.
  if (side < 4 && degree == 16) degree = 9;
  if (side < 3 && degree >= 3) degree = 2;
  if (degree == 9 && side < 3) degree = 4;

  std::vector<std::pair<size_t, size_t>> cells;
  auto anchor = [&](size_t span_x, size_t span_y) {
    const size_t i = rng.uniform_index(side - (span_x - 1));
    const size_t j = rng.uniform_index(side - (span_y - 1));
    return std::pair<size_t, size_t>{i, j};
  };
  switch (degree) {
    case 2: {
      if (rng.uniform() < 0.5) {  // horizontal pair
        const auto [i, j] = anchor(2, 1);
        cells = {{i, j}, {i + 1, j}};
      } else {  // vertical pair
        const auto [i, j] = anchor(1, 2);
        cells = {{i, j}, {i, j + 1}};
      }
      break;
    }
    case 3: {
      const uint64_t variant = rng.uniform_index(6);
      if (variant == 0) {  // straight horizontal
        const auto [i, j] = anchor(3, 1);
        cells = {{i, j}, {i + 1, j}, {i + 2, j}};
      } else if (variant == 1) {  // straight vertical
        const auto [i, j] = anchor(1, 3);
        cells = {{i, j}, {i, j + 1}, {i, j + 2}};
      } else {  // L-tromino: a 2x2 block minus one corner
        const auto [i, j] = anchor(2, 2);
        const size_t skip = static_cast<size_t>(variant - 2);  // 0..3
        for (size_t dj = 0; dj < 2; ++dj)
          for (size_t di = 0; di < 2; ++di)
            if (dj * 2 + di != skip) cells.push_back({i + di, j + dj});
      }
      break;
    }
    default: {  // square blocks: 4 -> 2x2, 9 -> 3x3, 16 -> 4x4
      const size_t s = degree == 4 ? 2 : degree == 9 ? 3 : 4;
      const auto [i, j] = anchor(s, s);
      for (size_t dj = 0; dj < s; ++dj)
        for (size_t di = 0; di < s; ++di) cells.push_back({i + di, j + dj});
      break;
    }
  }
  return cells;
}

}  // namespace

PekoDesign generate_peko(const PekoParams& prm) {
  if (prm.num_cells < 4)
    throw std::invalid_argument("peko generator needs at least 4 cells");
  if (prm.patch_side < 2)
    throw std::invalid_argument("peko patch_side must be >= 2");
  if (!(prm.utilization > 0.0) || prm.utilization > 0.95)
    throw std::invalid_argument("peko utilization must be in (0, 0.95]");
  if (prm.nets_per_cell < 0.0)
    throw std::invalid_argument("peko nets_per_cell must be >= 0");
  if (prm.row_height <= 0.0)
    throw std::invalid_argument("peko row_height must be > 0");
  const double wsum =
      prm.w_pair + prm.w_triple + prm.w_quad + prm.w_nine + prm.w_sixteen;
  if (prm.w_pair < 0 || prm.w_triple < 0 || prm.w_quad < 0 ||
      prm.w_nine < 0 || prm.w_sixteen < 0 || wsum <= 0.0)
    throw std::invalid_argument("peko degree weights must be >= 0, sum > 0");

  Rng rng(prm.seed);
  PekoDesign d;
  Netlist& nl = d.netlist;
  const double W = prm.row_height;  // square cell edge

  // ---- geometry bookkeeping ------------------------------------------------
  const size_t side = std::min<size_t>(
      prm.patch_side,
      std::max<size_t>(2, static_cast<size_t>(std::ceil(
                              std::sqrt(static_cast<double>(prm.num_cells))))));
  const size_t per_patch = side * side;
  const size_t patches = (prm.num_cells + per_patch - 1) / per_patch;
  const size_t total = patches * per_patch;
  d.cells = total;
  d.patches = patches;
  d.patch_side = side;

  // Macro dimensions are drawn before anything else so the core can be sized
  // to hold them (they are placed into the whitespace further down).
  std::vector<std::pair<double, double>> macro_dims;
  double macro_area = 0.0;
  for (size_t m = 0; m < prm.num_fixed_macros; ++m) {
    const double mw =
        std::round(rng.uniform(prm.macro_rows_min, prm.macro_rows_max)) * W;
    const double mh =
        std::round(rng.uniform(prm.macro_rows_min, prm.macro_rows_max)) * W;
    macro_dims.push_back({mw, mh});
    macro_area += mw * mh;
  }

  // Core: sized for the requested utilization, grown if necessary so the
  // g x g patch super-grid fits with at least one row of slack everywhere.
  const double cell_area = static_cast<double>(total) * W * W;
  const size_t g = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(patches))));
  const double patch_w = static_cast<double>(side) * W;
  const double min_side =
      static_cast<double>(g) * patch_w + static_cast<double>(g + 1) * W;
  const double want_side = std::sqrt((cell_area + macro_area) / prm.utilization);
  const double S = std::ceil(std::max(want_side, min_side) / W) * W;
  nl.set_core({0.0, 0.0, S, S});
  {
    std::vector<Row> rows;
    for (double y = 0.0; y + W <= S + 1e-9; y += W)
      rows.push_back({y, W, 0.0, S, 1.0});
    nl.set_rows(std::move(rows));
  }
  nl.set_target_density(prm.target_density);

  // Pre-size the flat arrays (arena construction; see generator.cpp) and
  // format names into a stack buffer, straight into the NamePool.
  {
    const size_t est_nets = static_cast<size_t>(std::llround(
        static_cast<double>(total) * std::max(1.0, prm.nets_per_cell)));
    nl.reserve(total + macro_dims.size(), est_nets + total, 4 * est_nets);
  }
  char name_buf[32];
  auto fmt_name = [&name_buf](const char* prefix, size_t i) {
    const int len = std::snprintf(name_buf, sizeof(name_buf), "%s%zu",
                                  prefix, i);
    return std::string_view(name_buf, static_cast<size_t>(len));
  };

  // ---- cells at their certified-optimal positions --------------------------
  // Patch p sits at super-grid slot (p % g, p / g); its origin is the slot
  // center snapped DOWN to the W grid, which keeps every coordinate an exact
  // multiple of W (row- and site-aligned, exact in double).
  const double pitch = S / static_cast<double>(g);
  std::vector<Rect> patch_rects;
  for (size_t p = 0; p < patches; ++p) {
    const double col = static_cast<double>(p % g);
    const double row = static_cast<double>(p / g);
    const double x0 =
        std::floor((col * pitch + (pitch - patch_w) / 2.0) / W) * W;
    const double y0 =
        std::floor((row * pitch + (pitch - patch_w) / 2.0) / W) * W;
    patch_rects.push_back({x0, y0, x0 + patch_w, y0 + patch_w});
    for (size_t j = 0; j < side; ++j) {
      for (size_t i = 0; i < side; ++i) {
        Cell c;
        c.width = W;
        c.height = W;
        c.x = x0 + static_cast<double>(i) * W;
        c.y = y0 + static_cast<double>(j) * W;
        // The patch corner is fixed at its optimal spot: it anchors the
        // lambda = 0 quadratic solves (the PEKO analogue of I/O pads) and
        // cannot change the optimum — fixing a cell where the optimal
        // placement already puts it only shrinks the feasible set.
        c.kind = (i == 0 && j == 0) ? CellKind::Fixed : CellKind::Movable;
        nl.add_cell(c, fmt_name("c", p * per_patch + j * side + i));
      }
    }
  }
  d.anchors = patches;

  // ---- macros: pin-less blockages in the whitespace ------------------------
  std::vector<Rect> macro_rects;
  for (size_t m = 0; m < macro_dims.size(); ++m) {
    const auto [mw, mh] = macro_dims[m];
    if (mw > S || mh > S) continue;
    bool placed = false;
    for (int attempt = 0; attempt < 128 && !placed; ++attempt) {
      const double x = std::floor(rng.uniform(0.0, S - mw) / W) * W;
      const double y = std::floor(rng.uniform(0.0, S - mh) / W) * W;
      const Rect cand{x, y, x + mw, y + mh};
      bool clash = false;
      for (const Rect& r : patch_rects)
        if (r.overlaps(cand)) { clash = true; break; }
      for (const Rect& r : macro_rects)
        if (clash || r.overlaps(cand)) { clash = true; break; }
      if (clash) continue;
      Cell c;
      c.width = mw;
      c.height = mh;
      c.x = x;
      c.y = y;
      c.kind = CellKind::Fixed;
      nl.add_cell(c, fmt_name("fm", m));
      macro_rects.push_back(cand);
      placed = true;
    }
  }
  d.macros_placed = macro_rects.size();
  double placed_macro_area = 0.0;
  for (const Rect& r : macro_rects) placed_macro_area += r.area();
  d.achieved_utilization = (cell_area + placed_macro_area) / (S * S);

  // ---- nets ----------------------------------------------------------------
  auto cell_of = [&](size_t patch, size_t i, size_t j) {
    return static_cast<CellId>(patch * per_patch + j * side + i);
  };
  size_t net_counter = 0;
  double optimum = 0.0;

  // Connectivity chains: snake-order adjacent pairs cover every cell, make
  // each patch one connected component (reachable from its fixed anchor),
  // and each contributes exactly m(2) = W.
  for (size_t p = 0; p < patches; ++p) {
    CellId prev = cell_of(p, 0, 0);
    for (size_t j = 0; j < side; ++j) {
      for (size_t step = 0; step < side; ++step) {
        const size_t i = (j % 2 == 0) ? step : side - 1 - step;
        const CellId cur = cell_of(p, i, j);
        if (cur == prev) continue;
        nl.add_net(fmt_name("n", net_counter++),
                   1.0, {{prev, 0.0, 0.0}, {cur, 0.0, 0.0}});
        optimum += peko_net_optimum(2, W);
        prev = cur;
      }
    }
  }

  // Random window nets on top, up to the requested nets/cell budget.
  const size_t chain_nets = net_counter;
  const size_t requested = static_cast<size_t>(
      std::llround(static_cast<double>(total) * prm.nets_per_cell));
  const size_t random_nets = requested > chain_nets ? requested - chain_nets : 0;
  const double t_pair = prm.w_pair / wsum;
  const double t_triple = t_pair + prm.w_triple / wsum;
  const double t_quad = t_triple + prm.w_quad / wsum;
  const double t_nine = t_quad + prm.w_nine / wsum;
  for (size_t n = 0; n < random_nets; ++n) {
    const size_t patch = rng.uniform_index(patches);
    const double u = rng.uniform();
    const int degree = u < t_pair ? 2
                       : u < t_triple ? 3
                       : u < t_quad ? 4
                       : u < t_nine ? 9
                                    : 16;
    const auto window = draw_window_cells(degree, side, rng);
    std::vector<Pin> pins;
    pins.reserve(window.size());
    for (const auto& [i, j] : window)
      pins.push_back({cell_of(patch, i, j), 0.0, 0.0});
    nl.add_net(fmt_name("n", net_counter++), 1.0, pins);
    optimum += peko_net_optimum(static_cast<int>(window.size()), W);
  }

  d.optimum_hpwl = optimum;
  nl.finalize();
  return d;
}

}  // namespace complx
