// Benchmark suite definitions: laptop-scale analogues of the ISPD 2005 and
// ISPD 2006 contest designs (DESIGN.md §5 documents the substitution).
//
// Module counts follow the contest designs' relative size progression,
// divided by `scale_divisor` (default 40). ISPD-2006 analogues carry the
// contest's target densities and movable macros.
#pragma once

#include <string>
#include <vector>

#include "gen/generator.h"

namespace complx {

struct SuiteEntry {
  GenParams params;
  /// The contest design this entry is the analogue of.
  std::string paper_name;
  /// Module count of the original (for reporting).
  size_t paper_modules = 0;
};

/// ADAPTEC1-4 + BIGBLUE1-4 analogues (γ = 1, fixed macros only).
std::vector<SuiteEntry> ispd2005_suite(size_t scale_divisor = 40);

/// ADAPTEC5 + NEWBLUE1-7 analogues (target densities, movable macros).
std::vector<SuiteEntry> ispd2006_suite(size_t scale_divisor = 40);

/// Reads COMPLX_BENCH_SCALE from the environment (default `fallback`).
/// Smaller divisor = larger, slower benchmarks. A set-but-invalid value
/// (zero, negative, or non-numeric) throws std::runtime_error instead of
/// silently falling back.
size_t bench_scale_from_env(size_t fallback = 40);

}  // namespace complx
