#include "gen/suites.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace complx {

namespace {

GenParams base_params(const std::string& name, size_t cells, uint64_t seed) {
  GenParams p;
  p.name = name;
  p.num_cells = std::max<size_t>(1000, cells);
  p.seed = seed;
  p.num_pads = std::clamp<size_t>(cells / 150, 32, 512);
  return p;
}

}  // namespace

std::vector<SuiteEntry> ispd2005_suite(size_t scale_divisor) {
  // Contest module counts (paper, Table 1).
  struct Spec {
    const char* name;
    const char* paper;
    size_t modules;
    size_t fixed_macros;
    double utilization;
  };
  const Spec specs[] = {
      {"adaptec1x", "ADAPTEC1", 211000, 12, 0.72},
      {"adaptec2x", "ADAPTEC2", 255000, 16, 0.68},
      {"adaptec3x", "ADAPTEC3", 452000, 24, 0.65},
      {"adaptec4x", "ADAPTEC4", 496000, 24, 0.62},
      {"bigblue1x", "BIGBLUE1", 278000, 8, 0.70},
      {"bigblue2x", "BIGBLUE2", 558000, 20, 0.60},
      {"bigblue3x", "BIGBLUE3", 1100000, 28, 0.64},
      {"bigblue4x", "BIGBLUE4", 2180000, 32, 0.58},
  };
  std::vector<SuiteEntry> suite;
  uint64_t seed = 2005;
  for (const Spec& s : specs) {
    SuiteEntry e;
    e.params = base_params(s.name, s.modules / scale_divisor, seed++);
    e.params.num_fixed_macros = s.fixed_macros;
    e.params.utilization = s.utilization;
    e.params.target_density = 1.0;  // ISPD 2005: no density constraint
    e.paper_name = s.paper;
    e.paper_modules = s.modules;
    suite.push_back(std::move(e));
  }
  return suite;
}

std::vector<SuiteEntry> ispd2006_suite(size_t scale_divisor) {
  // Contest designs with their official target densities (paper, Table 2).
  struct Spec {
    const char* name;
    const char* paper;
    size_t modules;
    double target;
    size_t movable_macros;
    size_t fixed_macros;
    double utilization;
  };
  const Spec specs[] = {
      {"adaptec5x", "ADAPTEC5", 843000, 0.50, 6, 12, 0.45},
      {"newblue1x", "NEWBLUE1", 330000, 0.80, 12, 4, 0.60},
      {"newblue2x", "NEWBLUE2", 441000, 0.90, 16, 8, 0.62},
      {"newblue3x", "NEWBLUE3", 494000, 0.80, 4, 16, 0.55},
      {"newblue4x", "NEWBLUE4", 646000, 0.50, 8, 8, 0.44},
      {"newblue5x", "NEWBLUE5", 1230000, 0.50, 10, 12, 0.45},
      {"newblue6x", "NEWBLUE6", 1250000, 0.80, 8, 12, 0.58},
      {"newblue7x", "NEWBLUE7", 2510000, 0.80, 12, 16, 0.60},
  };
  std::vector<SuiteEntry> suite;
  uint64_t seed = 2006;
  for (const Spec& s : specs) {
    SuiteEntry e;
    e.params = base_params(s.name, s.modules / scale_divisor, seed++);
    e.params.num_movable_macros = s.movable_macros;
    e.params.num_fixed_macros = s.fixed_macros;
    e.params.utilization = s.utilization;
    e.params.target_density = s.target;
    e.paper_name = s.paper;
    e.paper_modules = s.modules;
    suite.push_back(std::move(e));
  }
  return suite;
}

size_t bench_scale_from_env(size_t fallback) {
  const char* env = std::getenv("COMPLX_BENCH_SCALE");
  if (!env || *env == '\0') return fallback;
  // A set-but-broken value must fail loudly: silently running the fallback
  // scale makes a benchmark report claim a size it never measured.
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  while (end && std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (errno != 0 || end == env || *end != '\0' || v <= 0)
    throw std::runtime_error(
        std::string("COMPLX_BENCH_SCALE must be a positive integer "
                    "(the suite size divisor); got \"") +
        env + "\"");
  return static_cast<size_t>(v);
}

}  // namespace complx
