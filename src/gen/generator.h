// Synthetic circuit generator — the repo's substitute for the proprietary
// ISPD 2005/2006 contest dumps (see DESIGN.md §5).
//
// Generated designs reproduce the statistical features that drive placer
// behaviour:
//  * net-degree histogram dominated by 2-3 pin nets with a heavy tail,
//  * locality: cells are assigned to a virtual cluster grid and nets draw
//    most pins from one cluster and its neighbours (Rent's-rule-like),
//  * perimeter I/O pads (fixed terminals) wired to long nets,
//  * optional fixed macros (blockages) and movable macros (ISPD 2006),
//  * row structure and a whitespace/target-density budget.
//
// Because nets are cluster-local, a good placer can realize HPWL far below
// a random placement — exactly the signal the benchmarks need.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace complx {

struct GenParams {
  std::string name = "synth";
  uint64_t seed = 1;

  size_t num_cells = 10000;  ///< movable standard cells
  double nets_per_cell = 1.15;
  int max_net_degree = 32;

  size_t num_pads = 64;  ///< fixed perimeter terminals

  size_t num_fixed_macros = 0;    ///< in-core blockages
  size_t num_movable_macros = 0;  ///< ISPD 2006-style movable blocks
  double macro_rows_min = 6.0;    ///< macro edge in row heights
  double macro_rows_max = 24.0;

  double row_height = 12.0;
  double cell_width_min = 4.0;
  double cell_width_max = 26.0;

  /// Core utilization: (movable + fixed-in-core area) / core area.
  double utilization = 0.70;
  /// Density target γ written into the netlist (1.0 = unconstrained).
  double target_density = 1.0;

  /// Cluster-grid locality: fraction of pins drawn from the net's home
  /// cluster; the rest come from ring-1 neighbours or anywhere.
  double local_pin_fraction = 0.78;
  double neighbor_pin_fraction = 0.16;
};

/// Generates a finalized netlist. Cells start at deterministic scattered
/// positions inside the core (placers typically re-initialize anyway).
Netlist generate_circuit(const GenParams& params);

}  // namespace complx
