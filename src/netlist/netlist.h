// Netlist data model: cells (standard cells, macros, fixed terminals), nets
// with pin offsets, placement rows, and region constraints.
//
// Conventions:
//  * Cell positions are stored as LOWER-LEFT corners (Bookshelf convention).
//  * All placement algorithms operate on a Placement of cell CENTERS, one
//    entry per cell (fixed cells keep constant values). Conversion helpers
//    live on Netlist.
//  * Pin offsets are measured from the cell CENTER, as in Bookshelf .nets.
//
// Data layout (the multi-million-cell contract):
//  * Cell is a 40-byte hot struct — geometry, kind, region, orientation.
//    Names live in a NamePool side arena (cell_name()/net_name()); nothing
//    on a placer hot path ever touches a string.
//  * Pins are structure-of-arrays: pin_cell / pin_dx / pin_dy flat vectors.
//    Per-axis loops (B2B, HPWL) read only the offset array of their axis.
//  * Cell→net and cell→pin adjacency is CSR (offset + index arrays, 32-bit),
//    built by finalize() with two counting passes — no vector-of-vectors,
//    no per-cell heap blocks.
//  * NetlistView exposes the raw arrays for kernel loops. Its pointers stay
//    valid as long as the Netlist is alive and no add_* call happens;
//    mutating positions, kinds or pin offsets does NOT invalidate a view.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "linalg/vec.h"
#include "util/geom.h"
#include "util/name_pool.h"
#include "util/span.h"

namespace complx {

using CellId = uint32_t;
using NetId = uint32_t;
using PinId = uint32_t;
using RegionId = uint32_t;

inline constexpr RegionId kNoRegion = std::numeric_limits<RegionId>::max();
/// Sentinel returned by Netlist::find_cell for unknown names. An explicit
/// constant: the historical convention "returns num_cells()" truncated the
/// size through CellId and forced every caller into a size comparison.
inline constexpr CellId kInvalidCell = std::numeric_limits<CellId>::max();

/// Movability/role of a placeable object.
enum class CellKind : uint8_t {
  Movable,       ///< standard cell
  MovableMacro,  ///< large movable block (ISPD 2006 style)
  Fixed,         ///< fixed macro / terminal / pad
};

/// Hot per-cell record: geometry and role only (40 bytes). The name lives
/// in the netlist's NamePool — hot loops touch only x/y/w/h/kind.
struct Cell {
  double width = 0.0;
  double height = 0.0;
  double x = 0.0;  ///< lower-left x
  double y = 0.0;  ///< lower-left y
  CellKind kind = CellKind::Movable;
  RegionId region = kNoRegion;  ///< optional hard region constraint
  bool flipped_x = false;  ///< mirrored about its vertical axis (orient FN)

  bool movable() const { return kind != CellKind::Fixed; }
  bool is_macro() const { return kind == CellKind::MovableMacro; }
  double area() const { return width * height; }
  double cx() const { return x + width / 2.0; }
  double cy() const { return y + height / 2.0; }
  Rect bounds() const { return {x, y, x + width, y + height}; }
};

/// One net connection point, materialized from the pin SoA arrays. Offsets
/// are from the owning cell's center.
struct Pin {
  CellId cell = 0;
  double dx = 0.0;
  double dy = 0.0;
};

/// Hot per-net record (16 bytes; the name is pooled on the netlist).
struct Net {
  double weight = 1.0;
  uint32_t first_pin = 0;  ///< index into the pin arrays
  uint32_t num_pins = 0;

  uint32_t degree() const { return num_pins; }
};

/// Standard-cell placement row (Bookshelf .scl CoreRow).
struct Row {
  double y = 0.0;       ///< bottom of the row
  double height = 0.0;  ///< row (= standard cell) height
  double xl = 0.0;      ///< leftmost site edge
  double xh = 0.0;      ///< rightmost site edge
  double site_width = 1.0;

  /// Number of placement sites. 64-bit: a huge core divided by a sub-micron
  /// site width overflowed the historical int return (UB in the float→int
  /// cast); counts beyond int64 saturate. Degenerate rows (site_width <= 0,
  /// xh <= xl, or any NaN in the ratio) report 0 sites — finalize()
  /// additionally rejects such rows so they never reach the legalizer.
  int64_t num_sites() const {
    if (!(site_width > 0.0) || !(xh > xl)) return 0;
    const double n = (xh - xl) / site_width + 0.5;
    if (!(n < 9223372036854775808.0))  // 2^63, NaN-safe ordering
      return std::numeric_limits<int64_t>::max();
    return static_cast<int64_t>(n);
  }
};

/// Hard region constraint: member cells must stay inside `box`.
struct Region {
  std::string name;
  Rect box;
};

/// Cell-center coordinates for all cells (movable AND fixed; the fixed
/// entries never change). This is the state the optimizer iterates on.
struct Placement {
  Vec x;  ///< center x per cell
  Vec y;  ///< center y per cell

  size_t size() const { return x.size(); }
};

/// Raw-array view of a finalized netlist for kernel loops (B2B assembly,
/// HPWL/RUDY, density deposit, the spreader). Trivially copyable; capture it
/// by value at the top of a hot function. Lifetime: valid until the owning
/// Netlist is destroyed or its topology is edited (add_cell/add_net);
/// position / kind / pin-offset mutation keeps existing views coherent
/// because they point into the live arrays.
struct NetlistView {
  size_t num_cells = 0;
  size_t num_nets = 0;
  size_t num_pins = 0;
  size_t num_movable = 0;

  const Cell* cells = nullptr;  ///< 40-byte hot structs
  const Net* nets = nullptr;    ///< 16-byte hot structs
  const CellId* movable = nullptr;

  // Pin SoA: per-axis loops read exactly one offset array.
  const CellId* pin_cell = nullptr;
  const double* pin_dx = nullptr;
  const double* pin_dy = nullptr;

  // CSR adjacency (offsets have num_cells + 1 entries).
  const uint32_t* cell_net_off = nullptr;
  const NetId* cell_net_ids = nullptr;
  const uint32_t* cell_pin_off = nullptr;
  const PinId* cell_pin_ids = nullptr;

  Span<NetId> nets_of_cell(CellId id) const {
    return {cell_net_ids + cell_net_off[id],
            cell_net_off[id + 1] - cell_net_off[id]};
  }
  Span<PinId> pins_of_cell(CellId id) const {
    return {cell_pin_ids + cell_pin_off[id],
            cell_pin_off[id + 1] - cell_pin_off[id]};
  }
};

/// The immutable circuit plus mutable stored positions.
///
/// Build once via add_cell/add_net (+ set_rows / set_core / add_region),
/// then call finalize(). finalize() computes the CSR cell->net/pin
/// back-references, movable indexing and aggregate statistics used all over
/// the placer.
class Netlist {
 public:
  // ---- construction -------------------------------------------------
  /// Pre-sizes every internal array (cells, nets, pin SoA, name arena) so a
  /// generator-scale build performs no reallocation churn.
  void reserve(size_t cells, size_t nets, size_t pins,
               size_t avg_name_chars = 12);
  CellId add_cell(Cell c, std::string_view name);
  /// Pins belong to the net being added; each references an existing cell.
  NetId add_net(std::string_view name, double weight,
                const std::vector<Pin>& pins);
  RegionId add_region(Region r);
  void set_core(Rect core) { core_ = core; }
  void set_rows(std::vector<Row> rows);
  void set_target_density(double gamma) { target_density_ = gamma; }
  /// Must be called once after construction, before use. Validates rows
  /// (finite geometry, positive height and site width) and builds the CSR
  /// adjacency plus movable statistics.
  void finalize();
  /// Recomputes everything that depends on cell KINDS (movable index, area
  /// aggregates) after a caller mutated them — the ECO re-placement path
  /// freezes out-of-window cells this way. Topology (CSR, rows, names) is
  /// untouched. Requires a prior finalize().
  void refinalize();

  // ---- topology ------------------------------------------------------
  size_t num_cells() const { return cells_.size(); }
  size_t num_nets() const { return nets_.size(); }
  size_t num_pins() const { return pin_cell_.size(); }
  size_t num_movable() const { return movable_.size(); }

  const Cell& cell(CellId id) const { return cells_[id]; }
  Cell& cell(CellId id) { return cells_[id]; }
  const Net& net(NetId id) const { return nets_[id]; }
  Net& net(NetId id) { return nets_[id]; }
  Pin pin(PinId id) const {
    return {pin_cell_[id], pin_dx_[id], pin_dy_[id]};
  }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Region>& regions() const { return regions_; }

  std::string_view cell_name(CellId id) const { return cell_names_[id]; }
  std::string_view net_name(NetId id) const { return net_names_[id]; }

  /// Ids of all movable cells (standard cells and movable macros).
  const std::vector<CellId>& movable_cells() const { return movable_; }
  /// Nets incident to a cell (CSR row; available after finalize()).
  Span<NetId> nets_of_cell(CellId id) const {
    return {cell_net_ids_.data() + cell_net_off_[id],
            cell_net_off_[id + 1] - cell_net_off_[id]};
  }
  /// Pins owned by a cell (CSR row; available after finalize()).
  Span<PinId> pins_of_cell(CellId id) const {
    return {cell_pin_ids_.data() + cell_pin_off_[id],
            cell_pin_off_[id + 1] - cell_pin_off_[id]};
  }

  /// Raw-array view for kernel loops; requires finalize().
  NetlistView view() const;

  /// Mirrors a cell about its vertical axis: toggles the orientation flag
  /// and negates the x offsets of all its pins (cell-orientation
  /// optimization; the Bookshelf orientation changes N <-> FN).
  void flip_horizontal(CellId id);
  /// Lookup by name; returns kInvalidCell when absent. Duplicated names
  /// resolve to the smallest matching id (the historical first-insertion
  /// semantics).
  CellId find_cell(std::string_view name) const;

  // ---- geometry / stats ----------------------------------------------
  const Rect& core() const { return core_; }
  const std::vector<Row>& rows() const { return rows_; }
  double row_height() const { return row_height_; }
  double target_density() const { return target_density_; }
  double movable_area() const { return movable_area_; }
  double fixed_area_in_core() const { return fixed_area_in_core_; }
  double average_movable_width() const { return avg_movable_width_; }

  /// Bytes currently held by the netlist's arrays (capacities, i.e. what
  /// the allocator charged) — the number BENCH_scale.json tracks.
  size_t memory_bytes() const;

  // ---- placement state -----------------------------------------------
  /// Snapshot current stored cell positions as a center Placement.
  Placement snapshot() const;
  /// Write a center Placement back into stored lower-left positions
  /// (fixed cells are untouched).
  void apply(const Placement& p);

 private:
  void compute_movable_stats();

  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  // Pin structure-of-arrays (primary storage; Pin values are materialized).
  std::vector<CellId> pin_cell_;
  std::vector<double> pin_dx_;
  std::vector<double> pin_dy_;
  NamePool cell_names_;
  NamePool net_names_;
  std::vector<Region> regions_;
  std::vector<Row> rows_;
  std::vector<CellId> movable_;
  // CSR adjacency, built in finalize().
  std::vector<uint32_t> cell_net_off_;
  std::vector<NetId> cell_net_ids_;
  std::vector<uint32_t> cell_pin_off_;
  std::vector<PinId> cell_pin_ids_;
  // Lazy name index: cell ids sorted by (name, id); rebuilt on demand after
  // construction-time lookups (the Bookshelf reader resolves .nets pins by
  // name before finalize()). ~4 bytes/cell vs ~60+ for the historical
  // unordered_map<string, CellId>. Single-threaded like all construction.
  mutable std::vector<CellId> name_order_;
  mutable bool name_index_dirty_ = true;
  Rect core_;
  double row_height_ = 1.0;
  double target_density_ = 1.0;
  double movable_area_ = 0.0;
  double fixed_area_in_core_ = 0.0;
  double avg_movable_width_ = 0.0;
  bool finalized_ = false;
};

}  // namespace complx
