// Netlist data model: cells (standard cells, macros, fixed terminals), nets
// with pin offsets, placement rows, and region constraints.
//
// Conventions:
//  * Cell positions are stored as LOWER-LEFT corners (Bookshelf convention).
//  * All placement algorithms operate on a Placement of cell CENTERS, one
//    entry per cell (fixed cells keep constant values). Conversion helpers
//    live on Netlist.
//  * Pin offsets are measured from the cell CENTER, as in Bookshelf .nets.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/vec.h"
#include "util/geom.h"

namespace complx {

using CellId = uint32_t;
using NetId = uint32_t;
using PinId = uint32_t;
using RegionId = uint32_t;

inline constexpr RegionId kNoRegion = std::numeric_limits<RegionId>::max();

/// Movability/role of a placeable object.
enum class CellKind : uint8_t {
  Movable,       ///< standard cell
  MovableMacro,  ///< large movable block (ISPD 2006 style)
  Fixed,         ///< fixed macro / terminal / pad
};

struct Cell {
  std::string name;
  double width = 0.0;
  double height = 0.0;
  double x = 0.0;  ///< lower-left x
  double y = 0.0;  ///< lower-left y
  CellKind kind = CellKind::Movable;
  RegionId region = kNoRegion;  ///< optional hard region constraint
  bool flipped_x = false;  ///< mirrored about its vertical axis (orient FN)

  bool movable() const { return kind != CellKind::Fixed; }
  bool is_macro() const { return kind == CellKind::MovableMacro; }
  double area() const { return width * height; }
  double cx() const { return x + width / 2.0; }
  double cy() const { return y + height / 2.0; }
  Rect bounds() const { return {x, y, x + width, y + height}; }
};

/// One net connection point. Offsets are from the owning cell's center.
struct Pin {
  CellId cell = 0;
  double dx = 0.0;
  double dy = 0.0;
};

struct Net {
  std::string name;
  double weight = 1.0;
  uint32_t first_pin = 0;  ///< index into Netlist::pins()
  uint32_t num_pins = 0;

  uint32_t degree() const { return num_pins; }
};

/// Standard-cell placement row (Bookshelf .scl CoreRow).
struct Row {
  double y = 0.0;       ///< bottom of the row
  double height = 0.0;  ///< row (= standard cell) height
  double xl = 0.0;      ///< leftmost site edge
  double xh = 0.0;      ///< rightmost site edge
  double site_width = 1.0;

  int num_sites() const {
    return static_cast<int>((xh - xl) / site_width + 0.5);
  }
};

/// Hard region constraint: member cells must stay inside `box`.
struct Region {
  std::string name;
  Rect box;
};

/// Cell-center coordinates for all cells (movable AND fixed; the fixed
/// entries never change). This is the state the optimizer iterates on.
struct Placement {
  Vec x;  ///< center x per cell
  Vec y;  ///< center y per cell

  size_t size() const { return x.size(); }
};

/// The immutable circuit plus mutable stored positions.
///
/// Build once via add_cell/add_net (+ set_rows / set_core / add_region),
/// then call finalize(). finalize() computes cell->pin back-references,
/// movable indexing and aggregate statistics used all over the placer.
class Netlist {
 public:
  // ---- construction -------------------------------------------------
  CellId add_cell(Cell c);
  /// Pins belong to the net being added; each references an existing cell.
  NetId add_net(std::string name, double weight, const std::vector<Pin>& pins);
  RegionId add_region(Region r);
  void set_core(Rect core) { core_ = core; }
  void set_rows(std::vector<Row> rows);
  void set_target_density(double gamma) { target_density_ = gamma; }
  /// Must be called once after construction, before use.
  void finalize();

  // ---- topology ------------------------------------------------------
  size_t num_cells() const { return cells_.size(); }
  size_t num_nets() const { return nets_.size(); }
  size_t num_pins() const { return pins_.size(); }
  size_t num_movable() const { return movable_.size(); }

  const Cell& cell(CellId id) const { return cells_[id]; }
  Cell& cell(CellId id) { return cells_[id]; }
  const Net& net(NetId id) const { return nets_[id]; }
  Net& net(NetId id) { return nets_[id]; }
  const Pin& pin(PinId id) const { return pins_[id]; }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Pin>& pins() const { return pins_; }
  const std::vector<Region>& regions() const { return regions_; }

  /// Ids of all movable cells (standard cells and movable macros).
  const std::vector<CellId>& movable_cells() const { return movable_; }
  /// Nets incident to a cell (indices into nets()).
  const std::vector<NetId>& nets_of_cell(CellId id) const {
    return cell_nets_[id];
  }
  /// Pins owned by a cell (indices into pins()).
  const std::vector<PinId>& pins_of_cell(CellId id) const {
    return cell_pins_[id];
  }

  /// Mirrors a cell about its vertical axis: toggles the orientation flag
  /// and negates the x offsets of all its pins (cell-orientation
  /// optimization; the Bookshelf orientation changes N <-> FN).
  void flip_horizontal(CellId id);
  /// Lookup by name; returns num_cells() when absent.
  CellId find_cell(const std::string& name) const;

  // ---- geometry / stats ----------------------------------------------
  const Rect& core() const { return core_; }
  const std::vector<Row>& rows() const { return rows_; }
  double row_height() const { return row_height_; }
  double target_density() const { return target_density_; }
  double movable_area() const { return movable_area_; }
  double fixed_area_in_core() const { return fixed_area_in_core_; }
  double average_movable_width() const { return avg_movable_width_; }

  // ---- placement state -----------------------------------------------
  /// Snapshot current stored cell positions as a center Placement.
  Placement snapshot() const;
  /// Write a center Placement back into stored lower-left positions
  /// (fixed cells are untouched).
  void apply(const Placement& p);

 private:
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Pin> pins_;
  std::vector<Region> regions_;
  std::vector<Row> rows_;
  std::vector<CellId> movable_;
  std::vector<std::vector<NetId>> cell_nets_;
  std::vector<std::vector<PinId>> cell_pins_;
  std::unordered_map<std::string, CellId> name_index_;
  Rect core_;
  double row_height_ = 1.0;
  double target_density_ = 1.0;
  double movable_area_ = 0.0;
  double fixed_area_in_core_ = 0.0;
  double avg_movable_width_ = 0.0;
  bool finalized_ = false;
};

}  // namespace complx
