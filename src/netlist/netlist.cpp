#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace complx {

CellId Netlist::add_cell(Cell c) {
  if (finalized_) throw std::logic_error("add_cell after finalize");
  const CellId id = static_cast<CellId>(cells_.size());
  name_index_.emplace(c.name, id);
  cells_.push_back(std::move(c));
  return id;
}

NetId Netlist::add_net(std::string name, double weight,
                       const std::vector<Pin>& pins) {
  if (finalized_) throw std::logic_error("add_net after finalize");
  Net n;
  n.name = std::move(name);
  n.weight = weight;
  n.first_pin = static_cast<uint32_t>(pins_.size());
  n.num_pins = static_cast<uint32_t>(pins.size());
  for (const Pin& p : pins) {
    if (p.cell >= cells_.size())
      throw std::out_of_range("pin references unknown cell");
    pins_.push_back(p);
  }
  const NetId id = static_cast<NetId>(nets_.size());
  nets_.push_back(std::move(n));
  return id;
}

RegionId Netlist::add_region(Region r) {
  const RegionId id = static_cast<RegionId>(regions_.size());
  regions_.push_back(std::move(r));
  return id;
}

void Netlist::set_rows(std::vector<Row> rows) {
  rows_ = std::move(rows);
  if (!rows_.empty()) row_height_ = rows_.front().height;
}

void Netlist::finalize() {
  if (finalized_) return;
  finalized_ = true;

  movable_.clear();
  movable_area_ = 0.0;
  fixed_area_in_core_ = 0.0;
  double width_sum = 0.0;
  size_t std_count = 0;
  for (CellId i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    if (c.movable()) {
      movable_.push_back(i);
      movable_area_ += c.area();
      if (!c.is_macro()) {
        width_sum += c.width;
        ++std_count;
      }
    } else {
      fixed_area_in_core_ += c.bounds().overlap_area(core_);
    }
  }
  avg_movable_width_ = std_count ? width_sum / static_cast<double>(std_count)
                                 : row_height_;

  cell_nets_.assign(cells_.size(), {});
  cell_pins_.assign(cells_.size(), {});
  for (NetId e = 0; e < nets_.size(); ++e) {
    const Net& n = nets_[e];
    for (uint32_t k = 0; k < n.num_pins; ++k) {
      const PinId pid = n.first_pin + k;
      const CellId c = pins_[pid].cell;
      cell_pins_[c].push_back(pid);
      // A net may touch the same cell through several pins; record once.
      if (cell_nets_[c].empty() || cell_nets_[c].back() != e)
        cell_nets_[c].push_back(e);
    }
  }

  if (rows_.empty() && !core_.empty()) {
    // Synthesize uniform rows covering the core when none were provided
    // (e.g. netlists constructed programmatically in tests). Row height is
    // taken from the typical movable standard-cell height.
    std::vector<double> heights;
    for (CellId id : movable_)
      if (!cells_[id].is_macro() && cells_[id].height > 0.0)
        heights.push_back(cells_[id].height);
    if (!heights.empty()) {
      const size_t mid = heights.size() / 2;
      std::nth_element(heights.begin(),
                       heights.begin() + static_cast<long>(mid),
                       heights.end());
      row_height_ = heights[mid];
    }
    const double h = row_height_;
    std::vector<Row> rows;
    for (double y = core_.yl; y + h <= core_.yh + 1e-9; y += h)
      rows.push_back({y, h, core_.xl, core_.xh, 1.0});
    rows_ = std::move(rows);
  }
}

void Netlist::flip_horizontal(CellId id) {
  Cell& c = cells_[id];
  c.flipped_x = !c.flipped_x;
  for (PinId pid : cell_pins_[id]) pins_[pid].dx = -pins_[pid].dx;
}

CellId Netlist::find_cell(const std::string& name) const {
  const auto it = name_index_.find(name);
  return it == name_index_.end() ? static_cast<CellId>(cells_.size())
                                 : it->second;
}

Placement Netlist::snapshot() const {
  Placement p;
  p.x.resize(cells_.size());
  p.y.resize(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    p.x[i] = cells_[i].cx();
    p.y[i] = cells_[i].cy();
  }
  return p;
}

void Netlist::apply(const Placement& p) {
  if (p.size() != cells_.size())
    throw std::invalid_argument("placement size mismatch");
  for (size_t i = 0; i < cells_.size(); ++i) {
    Cell& c = cells_[i];
    if (!c.movable()) continue;
    c.x = p.x[i] - c.width / 2.0;
    c.y = p.y[i] - c.height / 2.0;
  }
}

}  // namespace complx
