#include "netlist/netlist.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace complx {

void Netlist::reserve(size_t cells, size_t nets, size_t pins,
                      size_t avg_name_chars) {
  cells_.reserve(cells);
  nets_.reserve(nets);
  pin_cell_.reserve(pins);
  pin_dx_.reserve(pins);
  pin_dy_.reserve(pins);
  cell_names_.reserve(cells, avg_name_chars);
  net_names_.reserve(nets, avg_name_chars);
}

CellId Netlist::add_cell(Cell c, std::string_view name) {
  if (finalized_) throw std::logic_error("add_cell after finalize");
  const CellId id = static_cast<CellId>(cells_.size());
  cell_names_.add(name);
  cells_.push_back(c);
  name_index_dirty_ = true;
  return id;
}

NetId Netlist::add_net(std::string_view name, double weight,
                       const std::vector<Pin>& pins) {
  if (finalized_) throw std::logic_error("add_net after finalize");
  Net n;
  n.weight = weight;
  n.first_pin = static_cast<uint32_t>(pin_cell_.size());
  n.num_pins = static_cast<uint32_t>(pins.size());
  for (const Pin& p : pins) {
    if (p.cell >= cells_.size())
      throw std::out_of_range("pin references unknown cell");
    pin_cell_.push_back(p.cell);
    pin_dx_.push_back(p.dx);
    pin_dy_.push_back(p.dy);
  }
  const NetId id = static_cast<NetId>(nets_.size());
  net_names_.add(name);
  nets_.push_back(n);
  return id;
}

RegionId Netlist::add_region(Region r) {
  const RegionId id = static_cast<RegionId>(regions_.size());
  regions_.push_back(std::move(r));
  return id;
}

void Netlist::set_rows(std::vector<Row> rows) {
  rows_ = std::move(rows);
  if (!rows_.empty()) row_height_ = rows_.front().height;
}

void Netlist::compute_movable_stats() {
  movable_.clear();
  movable_area_ = 0.0;
  fixed_area_in_core_ = 0.0;
  double width_sum = 0.0;
  size_t std_count = 0;
  for (CellId i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    if (c.movable()) {
      movable_.push_back(i);
      movable_area_ += c.area();
      if (!c.is_macro()) {
        width_sum += c.width;
        ++std_count;
      }
    } else {
      fixed_area_in_core_ += c.bounds().overlap_area(core_);
    }
  }
  avg_movable_width_ = std_count ? width_sum / static_cast<double>(std_count)
                                 : row_height_;
}

void Netlist::finalize() {
  if (finalized_) return;
  finalized_ = true;

  compute_movable_stats();

  // ---- CSR adjacency (two counting passes; no per-cell vectors) ----------
  // A net may touch the same cell through several pins; it is recorded once
  // per cell. Pins of a net are contiguous, so a per-cell "last net seen"
  // marker dedups exactly like the historical consecutive-duplicate check.
  const size_t n = cells_.size();
  constexpr NetId kNoNet = std::numeric_limits<NetId>::max();
  cell_net_off_.assign(n + 1, 0);
  cell_pin_off_.assign(n + 1, 0);
  std::vector<NetId> last_net(n, kNoNet);
  for (NetId e = 0; e < nets_.size(); ++e) {
    const Net& net = nets_[e];
    for (uint32_t k = 0; k < net.num_pins; ++k) {
      const CellId c = pin_cell_[net.first_pin + k];
      ++cell_pin_off_[c + 1];
      if (last_net[c] != e) {
        last_net[c] = e;
        ++cell_net_off_[c + 1];
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    cell_net_off_[i + 1] += cell_net_off_[i];
    cell_pin_off_[i + 1] += cell_pin_off_[i];
  }
  cell_net_ids_.resize(cell_net_off_[n]);
  cell_pin_ids_.resize(cell_pin_off_[n]);
  std::vector<uint32_t> net_cursor(cell_net_off_.begin(),
                                   cell_net_off_.end() - 1);
  std::vector<uint32_t> pin_cursor(cell_pin_off_.begin(),
                                   cell_pin_off_.end() - 1);
  std::fill(last_net.begin(), last_net.end(), kNoNet);
  for (NetId e = 0; e < nets_.size(); ++e) {
    const Net& net = nets_[e];
    for (uint32_t k = 0; k < net.num_pins; ++k) {
      const PinId pid = net.first_pin + k;
      const CellId c = pin_cell_[pid];
      cell_pin_ids_[pin_cursor[c]++] = pid;
      if (last_net[c] != e) {
        last_net[c] = e;
        cell_net_ids_[net_cursor[c]++] = e;
      }
    }
  }

  if (rows_.empty() && !core_.empty()) {
    // Synthesize uniform rows covering the core when none were provided
    // (e.g. netlists constructed programmatically in tests). Row height is
    // taken from the typical movable standard-cell height.
    std::vector<double> heights;
    for (CellId id : movable_)
      if (!cells_[id].is_macro() && cells_[id].height > 0.0)
        heights.push_back(cells_[id].height);
    if (!heights.empty()) {
      const size_t mid = heights.size() / 2;
      std::nth_element(heights.begin(),
                       heights.begin() + static_cast<long>(mid),
                       heights.end());
      row_height_ = heights[mid];
    }
    const double h = row_height_;
    std::vector<Row> rows;
    for (double y = core_.yl; y + h <= core_.yh + 1e-9; y += h)
      rows.push_back({y, h, core_.xl, core_.xh, 1.0});
    rows_ = std::move(rows);
  }

  // ---- row validation ------------------------------------------------------
  // Degenerate rows historically slipped through and surfaced as a garbage
  // (or UB) num_sites() deep inside the legalizer / .scl writer. Reject them
  // here, at the one place every construction path funnels through.
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Row& row = rows_[r];
    const bool finite = std::isfinite(row.y) && std::isfinite(row.height) &&
                        std::isfinite(row.xl) && std::isfinite(row.xh) &&
                        std::isfinite(row.site_width);
    if (!finite || row.height <= 0.0 || row.site_width <= 0.0 ||
        row.xh < row.xl)
      throw std::invalid_argument(
          "netlist row " + std::to_string(r) +
          " is degenerate (need finite geometry, height > 0, "
          "site_width > 0, xh >= xl)");
  }

  // ---- capacity trim -----------------------------------------------------
  // Construction reserves are estimates (readers and generators guess pin
  // and name counts before seeing them), and geometric push_back growth can
  // overshoot by ~50%. The arrays are frozen from here on, so return the
  // slack now: at 10M cells this is hundreds of MB of allocator charge that
  // would otherwise ride along for the whole solve. Each call is a no-op
  // when capacity already equals size, so ECO-era refinalize paths cost
  // nothing extra.
  cells_.shrink_to_fit();
  nets_.shrink_to_fit();
  pin_cell_.shrink_to_fit();
  pin_dx_.shrink_to_fit();
  pin_dy_.shrink_to_fit();
  cell_names_.shrink_to_fit();
  net_names_.shrink_to_fit();
  regions_.shrink_to_fit();
  rows_.shrink_to_fit();
  movable_.shrink_to_fit();
}

void Netlist::refinalize() {
  if (!finalized_) throw std::logic_error("refinalize before finalize");
  compute_movable_stats();
}

NetlistView Netlist::view() const {
  if (!finalized_) throw std::logic_error("view() before finalize");
  NetlistView v;
  v.num_cells = cells_.size();
  v.num_nets = nets_.size();
  v.num_pins = pin_cell_.size();
  v.num_movable = movable_.size();
  v.cells = cells_.data();
  v.nets = nets_.data();
  v.movable = movable_.data();
  v.pin_cell = pin_cell_.data();
  v.pin_dx = pin_dx_.data();
  v.pin_dy = pin_dy_.data();
  v.cell_net_off = cell_net_off_.data();
  v.cell_net_ids = cell_net_ids_.data();
  v.cell_pin_off = cell_pin_off_.data();
  v.cell_pin_ids = cell_pin_ids_.data();
  return v;
}

void Netlist::flip_horizontal(CellId id) {
  Cell& c = cells_[id];
  c.flipped_x = !c.flipped_x;
  for (PinId pid : pins_of_cell(id)) pin_dx_[pid] = -pin_dx_[pid];
}

CellId Netlist::find_cell(std::string_view name) const {
  if (name_index_dirty_) {
    name_order_.resize(cells_.size());
    for (CellId i = 0; i < cells_.size(); ++i) name_order_[i] = i;
    std::sort(name_order_.begin(), name_order_.end(),
              [this](CellId a, CellId b) {
                const std::string_view na = cell_names_[a];
                const std::string_view nb = cell_names_[b];
                return na != nb ? na < nb : a < b;
              });
    name_index_dirty_ = false;
  }
  const auto it = std::lower_bound(
      name_order_.begin(), name_order_.end(), name,
      [this](CellId id, std::string_view key) { return cell_names_[id] < key; });
  if (it == name_order_.end() || cell_names_[*it] != name) return kInvalidCell;
  return *it;
}

size_t Netlist::memory_bytes() const {
  size_t b = 0;
  b += cells_.capacity() * sizeof(Cell);
  b += nets_.capacity() * sizeof(Net);
  b += pin_cell_.capacity() * sizeof(CellId);
  b += pin_dx_.capacity() * sizeof(double);
  b += pin_dy_.capacity() * sizeof(double);
  b += cell_names_.memory_bytes() + net_names_.memory_bytes();
  b += regions_.capacity() * sizeof(Region);
  b += rows_.capacity() * sizeof(Row);
  b += movable_.capacity() * sizeof(CellId);
  b += cell_net_off_.capacity() * sizeof(uint32_t);
  b += cell_net_ids_.capacity() * sizeof(NetId);
  b += cell_pin_off_.capacity() * sizeof(uint32_t);
  b += cell_pin_ids_.capacity() * sizeof(PinId);
  b += name_order_.capacity() * sizeof(CellId);
  return b;
}

Placement Netlist::snapshot() const {
  Placement p;
  p.x.resize(cells_.size());
  p.y.resize(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    p.x[i] = cells_[i].cx();
    p.y[i] = cells_[i].cy();
  }
  return p;
}

void Netlist::apply(const Placement& p) {
  if (p.size() != cells_.size())
    throw std::invalid_argument("placement size mismatch");
  for (size_t i = 0; i < cells_.size(); ++i) {
    Cell& c = cells_[i];
    if (!c.movable()) continue;
    c.x = p.x[i] - c.width / 2.0;
    c.y = p.y[i] - c.height / 2.0;
  }
}

}  // namespace complx
