#include "bookshelf/reader.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace complx {

namespace {

[[noreturn]] void fail(const std::string& file, size_t line,
                       const std::string& what) {
  throw std::runtime_error(file + ":" + std::to_string(line) + ": " + what);
}

/// Line-oriented tokenizer that skips blanks, comments and the
/// "UCLA <kind> 1.0" header.
class LineReader {
 public:
  explicit LineReader(const std::string& path) : path_(path), in_(path) {
    if (!in_) throw std::runtime_error("cannot open " + path);
  }

  /// Next meaningful line split into tokens; empty vector at EOF.
  std::vector<std::string> next() {
    std::string line;
    while (std::getline(in_, line)) {
      ++lineno_;
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ss(line);
      std::vector<std::string> toks;
      std::string t;
      while (ss >> t) toks.push_back(t);
      if (toks.empty()) continue;
      if (toks[0] == "UCLA") continue;  // format header
      return toks;
    }
    return {};
  }

  size_t lineno() const { return lineno_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ifstream in_;
  size_t lineno_ = 0;
};

double to_double(const LineReader& lr, const std::string& s) {
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    fail(lr.path(), lr.lineno(), "expected number, got '" + s + "'");
  }
}

long to_long(const LineReader& lr, const std::string& s) {
  try {
    return std::stol(s);
  } catch (const std::exception&) {
    fail(lr.path(), lr.lineno(), "expected integer, got '" + s + "'");
  }
}

/// "Key : value ..." lines appear in .nodes/.nets/.scl; returns the value
/// tokens after the colon for a given key, or nullopt-like empty.
bool key_line(const std::vector<std::string>& toks, const std::string& key,
              std::vector<std::string>& values) {
  if (toks.empty() || toks[0] != key) return false;
  size_t i = 1;
  if (i < toks.size() && toks[i] == ":") ++i;
  values.assign(toks.begin() + static_cast<long>(i), toks.end());
  return true;
}

struct NodesData {
  // name -> (width, height, terminal?)
  struct Entry {
    double w, h;
    bool terminal;
  };
  std::vector<std::pair<std::string, Entry>> nodes;
};

NodesData read_nodes(const std::string& path) {
  LineReader lr(path);
  NodesData data;
  long declared = -1;
  std::vector<std::string> vals;
  std::unordered_set<std::string> seen;
  for (auto toks = lr.next(); !toks.empty(); toks = lr.next()) {
    if (key_line(toks, "NumNodes", vals)) {
      declared = to_long(lr, vals.at(0));
      continue;
    }
    if (key_line(toks, "NumTerminals", vals)) continue;
    if (toks.size() < 3)
      fail(path, lr.lineno(), "node line needs: name width height");
    if (!seen.insert(toks[0]).second)
      fail(path, lr.lineno(), "duplicate node name '" + toks[0] + "'");
    NodesData::Entry e{to_double(lr, toks[1]), to_double(lr, toks[2]), false};
    for (size_t i = 3; i < toks.size(); ++i)
      if (toks[i] == "terminal" || toks[i] == "terminal_NI") e.terminal = true;
    data.nodes.emplace_back(toks[0], e);
  }
  // A count mismatch means the file was truncated (or the header lies);
  // either way downstream net references would dangle — hard error.
  if (declared >= 0 && static_cast<size_t>(declared) != data.nodes.size())
    fail(path, lr.lineno(),
         "NumNodes=" + std::to_string(declared) + " but " +
             std::to_string(data.nodes.size()) +
             " nodes parsed (truncated file?)");
  return data;
}

struct NetsData {
  struct PinRef {
    std::string cell;
    double dx, dy;
    size_t line;  ///< source line, for unknown-node diagnostics
  };
  struct NetRef {
    std::string name;
    std::vector<PinRef> pins;
  };
  std::string path;  ///< .nets file, for unknown-node diagnostics
  std::vector<NetRef> nets;
};

NetsData read_nets(const std::string& path) {
  LineReader lr(path);
  NetsData data;
  data.path = path;
  std::vector<std::string> vals;
  long pending_pins = 0;
  for (auto toks = lr.next(); !toks.empty(); toks = lr.next()) {
    if (key_line(toks, "NumNets", vals) || key_line(toks, "NumPins", vals))
      continue;
    if (key_line(toks, "NetDegree", vals)) {
      if (vals.empty()) fail(path, lr.lineno(), "NetDegree without count");
      if (pending_pins > 0)
        fail(path, lr.lineno(),
             "net '" + data.nets.back().name + "' declared NetDegree " +
                 std::to_string(data.nets.back().pins.size() +
                                static_cast<size_t>(pending_pins)) +
                 " but only " + std::to_string(data.nets.back().pins.size()) +
                 " pin lines followed");
      pending_pins = to_long(lr, vals[0]);
      NetsData::NetRef net;
      net.name = vals.size() > 1 ? vals[1]
                                 : "net" + std::to_string(data.nets.size());
      data.nets.push_back(std::move(net));
      continue;
    }
    // Pin line: "cellname I|O|B [: dx dy]"
    if (data.nets.empty() || pending_pins <= 0)
      fail(path, lr.lineno(), "pin line outside a NetDegree block");
    NetsData::PinRef pin{toks[0], 0.0, 0.0, lr.lineno()};
    // Find the colon; offsets follow it when present.
    for (size_t i = 1; i < toks.size(); ++i) {
      if (toks[i] != ":") continue;
      if (i + 1 < toks.size()) pin.dx = to_double(lr, toks[i + 1]);
      if (i + 2 < toks.size()) pin.dy = to_double(lr, toks[i + 2]);
      break;
    }
    data.nets.back().pins.push_back(pin);
    --pending_pins;
  }
  if (pending_pins > 0)
    fail(path, lr.lineno(),
         "net '" + data.nets.back().name + "' truncated: " +
             std::to_string(pending_pins) + " pin lines missing at EOF");
  return data;
}

std::unordered_map<std::string, double> read_wts(const std::string& path) {
  std::unordered_map<std::string, double> weights;
  if (path.empty()) return weights;
  std::ifstream probe(path);
  if (!probe) return weights;  // .wts is optional in practice
  probe.close();
  LineReader lr(path);
  for (auto toks = lr.next(); !toks.empty(); toks = lr.next()) {
    if (toks.size() >= 2 && toks[0] != "NumNets")
      weights[toks[0]] = to_double(lr, toks[1]);
  }
  return weights;
}

struct PlData {
  struct Entry {
    double x, y;
    bool fixed;
    bool flipped;
  };
  std::unordered_map<std::string, Entry> at;
};

PlData read_pl(const std::string& path) {
  LineReader lr(path);
  PlData data;
  for (auto toks = lr.next(); !toks.empty(); toks = lr.next()) {
    if (toks.size() < 3) continue;
    PlData::Entry e{to_double(lr, toks[1]), to_double(lr, toks[2]), false,
                    false};
    for (const std::string& t : toks) {
      if (t == "/FIXED" || t == "/FIXED_NI") e.fixed = true;
      // Orientation token after the colon. The writer emits pin offsets in
      // their current (already-mirrored) frame, so only the FLAG is
      // restored here — no offset transformation.
      if (t == "FN" || t == "FS") e.flipped = true;
    }
    data.at[toks[0]] = e;
  }
  return data;
}

std::vector<Row> read_scl(const std::string& path) {
  LineReader lr(path);
  std::vector<Row> rows;
  Row cur;
  bool in_row = false;
  std::vector<std::string> vals;
  for (auto toks = lr.next(); !toks.empty(); toks = lr.next()) {
    if (toks[0] == "CoreRow") {
      in_row = true;
      cur = Row{};
      continue;
    }
    if (toks[0] == "End") {
      if (in_row) rows.push_back(cur);
      in_row = false;
      continue;
    }
    if (!in_row) continue;
    if (key_line(toks, "Coordinate", vals)) cur.y = to_double(lr, vals.at(0));
    else if (key_line(toks, "Height", vals))
      cur.height = to_double(lr, vals.at(0));
    else if (key_line(toks, "Sitewidth", vals))
      cur.site_width = to_double(lr, vals.at(0));
    else if (key_line(toks, "SubrowOrigin", vals)) {
      cur.xl = to_double(lr, vals.at(0));
      // "SubrowOrigin : x NumSites : n" — skip the second colon.
      for (size_t i = 1; i < vals.size(); ++i) {
        if (vals[i] != "NumSites") continue;
        size_t j = i + 1;
        if (j < vals.size() && vals[j] == ":") ++j;
        if (j < vals.size())
          cur.xh = cur.xl + to_double(lr, vals[j]) * cur.site_width;
        break;
      }
    } else if (key_line(toks, "NumSites", vals)) {
      cur.xh = cur.xl + to_double(lr, vals.at(0)) * cur.site_width;
    }
  }
  return rows;
}

}  // namespace

BookshelfDesign read_bookshelf_files(const std::string& nodes_path,
                                     const std::string& nets_path,
                                     const std::string& wts_path,
                                     const std::string& pl_path,
                                     const std::string& scl_path) {
  const NodesData nodes = read_nodes(nodes_path);
  const NetsData nets = read_nets(nets_path);
  const auto weights = read_wts(wts_path);
  const PlData pl = read_pl(pl_path);
  std::vector<Row> rows = read_scl(scl_path);

  BookshelfDesign design;
  Netlist& nl = design.netlist;

  for (const auto& [name, e] : nodes.nodes) {
    Cell c;
    c.width = e.w;
    c.height = e.h;
    const auto it = pl.at.find(name);
    if (it != pl.at.end()) {
      c.x = it->second.x;
      c.y = it->second.y;
      c.flipped_x = it->second.flipped;
    }
    const bool fixed = e.terminal || (it != pl.at.end() && it->second.fixed);
    if (fixed) {
      c.kind = CellKind::Fixed;
    } else if (!rows.empty() && e.h > 1.5 * rows.front().height) {
      c.kind = CellKind::MovableMacro;  // taller than a row => macro
    } else {
      c.kind = CellKind::Movable;
    }
    nl.add_cell(c, name);
  }

  for (const auto& net : nets.nets) {
    std::vector<Pin> pins;
    pins.reserve(net.pins.size());
    for (const auto& pr : net.pins) {
      const CellId id = nl.find_cell(pr.cell);
      // A dangling reference means the .nodes/.nets pair is inconsistent;
      // silently dropping the net would corrupt the connectivity model.
      if (id == kInvalidCell)
        throw std::runtime_error(
            nets.path + ":" + std::to_string(pr.line) + ": net '" + net.name +
            "' pin references unknown node '" + pr.cell + "'");
      pins.push_back({id, pr.dx, pr.dy});
    }
    if (pins.size() < 2) continue;
    const auto wit = weights.find(net.name);
    nl.add_net(net.name, wit == weights.end() ? 1.0 : wit->second, pins);
  }

  // Core area: union of rows if present, else bounding box of everything.
  if (!rows.empty()) {
    Rect core{rows[0].xl, rows[0].y, rows[0].xh,
              rows[0].y + rows[0].height};
    for (const Row& r : rows)
      core = core.united({r.xl, r.y, r.xh, r.y + r.height});
    nl.set_core(core);
    nl.set_rows(std::move(rows));
  } else {
    Rect core;
    bool first = true;
    for (const Cell& c : nl.cells()) {
      core = first ? c.bounds() : core.united(c.bounds());
      first = false;
    }
    nl.set_core(core);
  }

  nl.finalize();
  return design;
}

BookshelfDesign read_bookshelf(const std::string& aux_path) {
  std::ifstream in(aux_path);
  if (!in) throw std::runtime_error("cannot open " + aux_path);
  // "RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl"
  std::string tok;
  std::vector<std::string> files;
  while (in >> tok) {
    if (tok == ":" || tok == "RowBasedPlacement") continue;
    files.push_back(tok);
  }
  const std::string dir = [&] {
    const size_t slash = aux_path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : aux_path.substr(0, slash + 1);
  }();
  auto find_ext = [&](const std::string& ext) -> std::string {
    for (const std::string& f : files)
      if (f.size() > ext.size() &&
          f.compare(f.size() - ext.size(), ext.size(), ext) == 0)
        return dir + f;
    return {};
  };
  const std::string nodes = find_ext(".nodes");
  const std::string nets = find_ext(".nets");
  if (nodes.empty() || nets.empty())
    throw std::runtime_error(aux_path + ": missing .nodes/.nets entries");
  BookshelfDesign d = read_bookshelf_files(nodes, nets, find_ext(".wts"),
                                           find_ext(".pl"), find_ext(".scl"));
  // Design name = aux file stem.
  std::string stem = aux_path.substr(dir.size());
  const size_t dot = stem.find_last_of('.');
  d.name = dot == std::string::npos ? stem : stem.substr(0, dot);
  return d;
}

}  // namespace complx
