// Reader for the UCLA/GSRC Bookshelf placement format used by the ISPD 2005
// and 2006 contests: .aux (manifest), .nodes (cells), .nets (connectivity
// with pin offsets), .wts (net weights, optional), .pl (positions and
// fixed flags), .scl (row structure).
//
// The parser is whitespace-tolerant and accepts both '#'-comment and header
// lines. Unknown trailing tokens on known lines are ignored, matching how
// published placers treat contest files.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace complx {

struct BookshelfDesign {
  Netlist netlist;
  std::string name;
};

/// Loads a design from its .aux manifest. Throws std::runtime_error with a
/// file/line diagnostic on malformed input.
BookshelfDesign read_bookshelf(const std::string& aux_path);

/// Loads from explicit file paths (wts may be empty → unit weights).
BookshelfDesign read_bookshelf_files(const std::string& nodes_path,
                                     const std::string& nets_path,
                                     const std::string& wts_path,
                                     const std::string& pl_path,
                                     const std::string& scl_path);

}  // namespace complx
