// Writer for the Bookshelf format: emits .aux/.nodes/.nets/.wts/.pl/.scl
// for a Netlist. Round-tripping through the reader reproduces the design
// (verified by tests), which lets users export generated benchmarks and
// placements for external tools.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace complx {

/// Writes `<dir>/<name>.{aux,nodes,nets,wts,pl,scl}`. The .pl contains the
/// positions currently stored in the netlist. Throws on I/O failure.
void write_bookshelf(const Netlist& nl, const std::string& dir,
                     const std::string& name);

/// Writes only a .pl file (the contest deliverable) for the given placement.
void write_pl(const Netlist& nl, const Placement& p, const std::string& path);

}  // namespace complx
