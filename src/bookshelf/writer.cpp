#include "bookshelf/writer.h"

#include <fstream>
#include <limits>
#include <stdexcept>

namespace complx {

namespace {
// Every section writer goes through here so no stream can fall back to the
// default 6-digit precision: max_digits10 (17 for IEEE-754 binary64)
// guarantees the decimal text parses back to the bitwise-identical double
// (round-trip-tested in test_bookshelf).
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.precision(std::numeric_limits<double>::max_digits10);
  return out;
}
}  // namespace

void write_pl(const Netlist& nl, const Placement& p,
              const std::string& path) {
  std::ofstream out = open_or_throw(path);
  out << "UCLA pl 1.0\n\n";
  for (CellId i = 0; i < nl.num_cells(); ++i) {
    const Cell& c = nl.cell(i);
    const double x = p.x[i] - c.width / 2.0;
    const double y = p.y[i] - c.height / 2.0;
    out << c.name << '\t' << x << '\t' << y << "\t: "
        << (c.flipped_x ? "FN" : "N");
    if (!c.movable()) out << " /FIXED";
    out << '\n';
  }
}

void write_bookshelf(const Netlist& nl, const std::string& dir,
                     const std::string& name) {
  const std::string base = dir + "/" + name;

  {
    std::ofstream aux = open_or_throw(base + ".aux");
    aux << "RowBasedPlacement : " << name << ".nodes " << name << ".nets "
        << name << ".wts " << name << ".pl " << name << ".scl\n";
  }
  {
    std::ofstream out = open_or_throw(base + ".nodes");
    out << "UCLA nodes 1.0\n\n";
    size_t terminals = 0;
    for (const Cell& c : nl.cells())
      if (!c.movable()) ++terminals;
    out << "NumNodes : " << nl.num_cells() << "\n";
    out << "NumTerminals : " << terminals << "\n";
    for (const Cell& c : nl.cells()) {
      out << '\t' << c.name << '\t' << c.width << '\t' << c.height;
      if (!c.movable()) out << "\tterminal";
      out << '\n';
    }
  }
  {
    std::ofstream out = open_or_throw(base + ".nets");
    out << "UCLA nets 1.0\n\n";
    out << "NumNets : " << nl.num_nets() << "\n";
    out << "NumPins : " << nl.num_pins() << "\n";
    for (const Net& n : nl.nets()) {
      out << "NetDegree : " << n.num_pins << "  " << n.name << '\n';
      for (uint32_t k = 0; k < n.num_pins; ++k) {
        const Pin& pin = nl.pin(n.first_pin + k);
        out << '\t' << nl.cell(pin.cell).name << "  B  : " << pin.dx << ' '
            << pin.dy << '\n';
      }
    }
  }
  {
    std::ofstream out = open_or_throw(base + ".wts");
    out << "UCLA wts 1.0\n\n";
    for (const Net& n : nl.nets()) out << n.name << '\t' << n.weight << '\n';
  }
  write_pl(nl, nl.snapshot(), base + ".pl");
  {
    std::ofstream out = open_or_throw(base + ".scl");
    out << "UCLA scl 1.0\n\n";
    out << "NumRows : " << nl.rows().size() << "\n";
    for (const Row& r : nl.rows()) {
      out << "CoreRow Horizontal\n";
      out << "  Coordinate : " << r.y << '\n';
      out << "  Height : " << r.height << '\n';
      out << "  Sitewidth : " << r.site_width << '\n';
      out << "  Sitespacing : " << r.site_width << '\n';
      out << "  Siteorient : 1\n  Sitesymmetry : 1\n";
      out << "  SubrowOrigin : " << r.xl << "  NumSites : " << r.num_sites()
          << '\n';
      out << "End\n";
    }
  }
}

}  // namespace complx
