#include "bookshelf/writer.h"

#include <limits>
#include <stdexcept>

#include "util/atomic_file.h"

namespace complx {

namespace {
// Every section writer goes through here so no stream can fall back to the
// default 6-digit precision: max_digits10 (17 for IEEE-754 binary64)
// guarantees the decimal text parses back to the bitwise-identical double
// (round-trip-tested in test_bookshelf). Each file is published atomically
// (util/atomic_file.h): an interrupted export leaves either the previous
// file or the complete new one — a truncated .nodes/.pl would otherwise be
// read back as a silently smaller design.
AtomicFileWriter open_writer(const std::string& path) {
  AtomicFileWriter out(path);
  out.stream().precision(std::numeric_limits<double>::max_digits10);
  return out;
}
}  // namespace

void write_pl(const Netlist& nl, const Placement& p,
              const std::string& path) {
  AtomicFileWriter writer = open_writer(path);
  std::ostream& out = writer.stream();
  out << "UCLA pl 1.0\n\n";
  for (CellId i = 0; i < nl.num_cells(); ++i) {
    const Cell& c = nl.cell(i);
    const double x = p.x[i] - c.width / 2.0;
    const double y = p.y[i] - c.height / 2.0;
    out << nl.cell_name(i) << '\t' << x << '\t' << y << "\t: "
        << (c.flipped_x ? "FN" : "N");
    if (!c.movable()) out << " /FIXED";
    out << '\n';
  }
  writer.commit();
}

void write_bookshelf(const Netlist& nl, const std::string& dir,
                     const std::string& name) {
  const std::string base = dir + "/" + name;

  {
    AtomicFileWriter aux = open_writer(base + ".aux");
    aux.stream() << "RowBasedPlacement : " << name << ".nodes " << name
                 << ".nets " << name << ".wts " << name << ".pl " << name
                 << ".scl\n";
    aux.commit();
  }
  {
    AtomicFileWriter writer = open_writer(base + ".nodes");
    std::ostream& out = writer.stream();
    out << "UCLA nodes 1.0\n\n";
    size_t terminals = 0;
    for (const Cell& c : nl.cells())
      if (!c.movable()) ++terminals;
    out << "NumNodes : " << nl.num_cells() << "\n";
    out << "NumTerminals : " << terminals << "\n";
    for (CellId i = 0; i < nl.num_cells(); ++i) {
      const Cell& c = nl.cell(i);
      out << '\t' << nl.cell_name(i) << '\t' << c.width << '\t' << c.height;
      if (!c.movable()) out << "\tterminal";
      out << '\n';
    }
    writer.commit();
  }
  {
    AtomicFileWriter writer = open_writer(base + ".nets");
    std::ostream& out = writer.stream();
    out << "UCLA nets 1.0\n\n";
    out << "NumNets : " << nl.num_nets() << "\n";
    out << "NumPins : " << nl.num_pins() << "\n";
    for (NetId e = 0; e < nl.num_nets(); ++e) {
      const Net& n = nl.net(e);
      out << "NetDegree : " << n.num_pins << "  " << nl.net_name(e) << '\n';
      for (uint32_t k = 0; k < n.num_pins; ++k) {
        const Pin pin = nl.pin(n.first_pin + k);
        out << '\t' << nl.cell_name(pin.cell) << "  B  : " << pin.dx << ' '
            << pin.dy << '\n';
      }
    }
    writer.commit();
  }
  {
    AtomicFileWriter writer = open_writer(base + ".wts");
    std::ostream& out = writer.stream();
    out << "UCLA wts 1.0\n\n";
    for (NetId e = 0; e < nl.num_nets(); ++e)
      out << nl.net_name(e) << '\t' << nl.net(e).weight << '\n';
    writer.commit();
  }
  write_pl(nl, nl.snapshot(), base + ".pl");
  {
    AtomicFileWriter writer = open_writer(base + ".scl");
    std::ostream& out = writer.stream();
    out << "UCLA scl 1.0\n\n";
    out << "NumRows : " << nl.rows().size() << "\n";
    for (const Row& r : nl.rows()) {
      out << "CoreRow Horizontal\n";
      out << "  Coordinate : " << r.y << '\n';
      out << "  Height : " << r.height << '\n';
      out << "  Sitewidth : " << r.site_width << '\n';
      out << "  Sitespacing : " << r.site_width << '\n';
      out << "  Siteorient : 1\n  Sitesymmetry : 1\n";
      out << "  SubrowOrigin : " << r.xl << "  NumSites : " << r.num_sites()
          << '\n';
      out << "End\n";
    }
    writer.commit();
  }
}

}  // namespace complx
