// Baseline global placer in the style of FastPlace (Viswanathan, Pan, Chu):
// quadratic placement with iterative CELL SHIFTING — per-bin-row utilization
// equalization by piecewise-linear coordinate remapping — plus spreading
// forces realized as anchor pseudonets to the shifted positions.
//
// This is the comparative baseline for Table 1/2: a competitive pre-SimPL
// diffusion-based placer, implemented from its published description. It
// shares the netlist, quadratic solver and legalization substrates with
// ComPLx, so measured differences isolate the spreading algorithm.
#pragma once

#include "netlist/netlist.h"
#include "qp/solver.h"

namespace complx {

struct FastPlaceConfig {
  QpOptions qp;
  int max_iterations = 80;
  double stop_overflow = 0.18;
  size_t bins = 0;  ///< 0 = auto (~ cells per bin target)
  /// Spreading-force weight ramp: anchor weight = ramp · iteration.
  double force_ramp = 0.001;
  double shift_damping = 0.8;  ///< fraction of computed shift applied
  int shift_rounds = 4;        ///< diffusion rounds per placement iteration
};

struct FastPlaceResult {
  Placement placement;
  int iterations = 0;
  double final_overflow = 0.0;
  double runtime_s = 0.0;
};

class FastPlaceStylePlacer {
 public:
  FastPlaceStylePlacer(const Netlist& nl, const FastPlaceConfig& cfg);
  FastPlaceResult place();

 private:
  const Netlist& nl_;
  FastPlaceConfig cfg_;
};

}  // namespace complx
