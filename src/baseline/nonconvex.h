// Nonconvex analytical placer in the APlace / NTUPlace3 style: minimize
//   F(x, y) = LSE-wirelength(x, y) + λ_d · density-penalty(x, y)
// by nonlinear CG, doubling λ_d each outer round until the hard overflow
// target is met.
//
// This is the family the paper's conclusions contrast with ComPLx:
// "A key difference from analytical placement based on nonconvex
// optimization [20, 9, 12] is the emphasis on decomposing the original
// problem into a series of convex optimizations... Avoiding local
// gradients also improves runtime (compared to APlace and NTUPlace3)."
// bench_nonconvex measures exactly that trade on common designs.
#pragma once

#include <string>

#include "density/backend.h"
#include "netlist/netlist.h"

namespace complx {

struct NonconvexConfig {
  double lse_gamma_rows = 3.0;  ///< wirelength smoothing (row heights)
  /// Density model by registry name: "spread" (cosine-bell penalty) or
  /// "electrostatic" (FFT field energy). Both plug into the same λ_d ramp.
  std::string density_backend = "spread";
  DensityBackendOptions density;
  int max_rounds = 24;
  int nlcg_iterations = 60;  ///< per round
  double stop_overflow = 0.12;
  /// Initial λ_d chosen so the density gradient is this fraction of the
  /// wirelength gradient (APlace-style normalization).
  double initial_gradient_ratio = 0.25;
};

struct NonconvexResult {
  Placement placement;
  int rounds = 0;
  double final_overflow = 0.0;
  double runtime_s = 0.0;
  /// Off-core / non-finite centers the density backend clamped during the
  /// run (see DensityStats::clamped_cells).
  size_t density_clamped_cells = 0;
};

class NonconvexPlacer {
 public:
  NonconvexPlacer(const Netlist& nl, const NonconvexConfig& cfg);
  NonconvexResult place();

 private:
  const Netlist& nl_;
  NonconvexConfig cfg_;
};

}  // namespace complx
