#include "baseline/fastplace_style.h"

#include <algorithm>
#include <cmath>

#include "density/grid.h"
#include "util/rng.h"
#include "util/timer.h"

namespace complx {

namespace {

/// One FastPlace cell-shifting pass along an axis: for every bin row
/// (column), compute shifted virtual bin boundaries that equalize
/// utilization, then remap cell coordinates piecewise-linearly.
void cell_shift_axis(const Netlist& nl, const DensityGrid& grid, Placement& p,
                     bool shift_x, double damping) {
  const size_t nx = grid.bins_x(), ny = grid.bins_y();
  const size_t lanes = shift_x ? ny : nx;
  const size_t bins = shift_x ? nx : ny;
  const Rect& core = nl.core();
  const double lo = shift_x ? core.xl : core.yl;
  const double bin_w = shift_x ? grid.bin_width() : grid.bin_height();

  // New boundary positions per lane.
  std::vector<std::vector<double>> new_bounds(lanes);
  for (size_t lane = 0; lane < lanes; ++lane) {
    // Usage per bin in this lane (+ small epsilon to avoid degenerate
    // all-empty divisions).
    std::vector<double> util(bins);
    const double bin_area = grid.bin_width() * grid.bin_height();
    for (size_t b = 0; b < bins; ++b) {
      const size_t i = shift_x ? b : lane;
      const size_t j = shift_x ? lane : b;
      util[b] = grid.usage(i, j) + 1e-6 * bin_area;
    }
    // FastPlace boundary update: boundary k moves toward equalizing the
    // adjacent bins' utilization: x'_k = (U_{k+1}(x_k - x_{k-1}') +
    // U_k(x_{k+1} - x_k)) ... we use the published form:
    //   x'_k = [U_{k+1} * x_{k-1} + U_k * x_{k+1}] / (U_k + U_{k+1})
    // damped toward the original position.
    std::vector<double>& nb = new_bounds[lane];
    nb.assign(bins + 1, 0.0);
    for (size_t k = 0; k <= bins; ++k)
      nb[k] = lo + static_cast<double>(k) * bin_w;
    for (size_t k = 1; k < bins; ++k) {
      const double uk = util[k - 1], uk1 = util[k];
      const double orig = lo + static_cast<double>(k) * bin_w;
      const double lo_b = lo + static_cast<double>(k - 1) * bin_w;
      const double hi_b = lo + static_cast<double>(k + 1) * bin_w;
      const double target = (uk1 * lo_b + uk * hi_b) / (uk + uk1);
      nb[k] = orig + damping * (target - orig);
    }
    // Keep boundaries monotone.
    for (size_t k = 1; k <= bins; ++k)
      nb[k] = std::max(nb[k], nb[k - 1] + 1e-9);
  }

  // Remap each movable cell.
  for (CellId id : nl.movable_cells()) {
    const double c = shift_x ? p.x[id] : p.y[id];
    const size_t lane = shift_x ? grid.bin_y_of(p.y[id]) : grid.bin_x_of(p.x[id]);
    const size_t b = shift_x ? grid.bin_x_of(c) : grid.bin_y_of(c);
    const double old_lo = lo + static_cast<double>(b) * bin_w;
    const double t = std::clamp((c - old_lo) / bin_w, 0.0, 1.0);
    const std::vector<double>& nb = new_bounds[lane];
    const double mapped = nb[b] + t * (nb[b + 1] - nb[b]);
    (shift_x ? p.x[id] : p.y[id]) = mapped;
  }
}

}  // namespace

FastPlaceStylePlacer::FastPlaceStylePlacer(const Netlist& nl,
                                           const FastPlaceConfig& cfg)
    : nl_(nl), cfg_(cfg) {
  if (cfg_.bins == 0) {
    const size_t b = static_cast<size_t>(
        std::sqrt(static_cast<double>(nl.num_movable()) / 4.0));
    cfg_.bins = std::clamp<size_t>(b, 8, 256);
  }
  // The diffusion front advances a bounded number of bins per iteration, so
  // the iteration budget must scale with the grid diameter. (This is the
  // Θ(n^1.38)-ish scaling the paper attributes to FastPlace, reproduced.)
  cfg_.max_iterations = std::max<int>(
      cfg_.max_iterations, static_cast<int>(2.5 * static_cast<double>(cfg_.bins)));
}

FastPlaceResult FastPlaceStylePlacer::place() {
  Timer timer;
  FastPlaceResult result;
  Placement p = nl_.snapshot();

  // Initialize at core center with jitter (same convention as ComPLx).
  {
    Rng rng(0xFA57ull);
    const Point c = nl_.core().center();
    const double r = 2.0 * nl_.row_height();
    for (CellId id : nl_.movable_cells()) {
      p.x[id] = c.x + rng.uniform(-r, r);
      p.y[id] = c.y + rng.uniform(-r, r);
    }
  }
  const VarMap vars(nl_);

  // Initial wirelength-only iterations.
  for (int i = 0; i < 3; ++i) solve_qp_iteration(nl_, vars, p, nullptr, cfg_.qp);

  const double gamma = nl_.target_density();
  AnchorSet anchors(nl_.num_cells());

  int k = 1;
  for (; k <= cfg_.max_iterations; ++k) {
    DensityGrid grid(nl_, cfg_.bins, cfg_.bins);
    grid.build(p);
    result.final_overflow =
        grid.total_overflow(gamma) / std::max(nl_.movable_area(), 1e-12);
    if (result.final_overflow < cfg_.stop_overflow) break;

    // Cell shifting in both directions, several rounds per iteration: one
    // boundary update moves cells at most ~one bin, so deep piles need
    // repeated diffusion before the next quadratic solve.
    for (int round = 0; round < cfg_.shift_rounds; ++round) {
      DensityGrid gx(nl_, cfg_.bins, cfg_.bins);
      gx.build(p);
      cell_shift_axis(nl_, gx, p, /*shift_x=*/true, cfg_.shift_damping);
      DensityGrid gy(nl_, cfg_.bins, cfg_.bins);
      gy.build(p);
      cell_shift_axis(nl_, gy, p, /*shift_x=*/false, cfg_.shift_damping);
    }

    // Spreading forces: anchor each cell at its shifted position with a
    // weight that ramps up over iterations.
    const double w = cfg_.force_ramp * static_cast<double>(k);
    for (CellId id : nl_.movable_cells()) {
      anchors.target_x[id] = p.x[id];
      anchors.target_y[id] = p.y[id];
      anchors.weight_x[id] = w;
      anchors.weight_y[id] = w;
    }
    solve_qp_iteration(nl_, vars, p, &anchors, cfg_.qp);
  }

  result.placement = std::move(p);
  result.iterations = k;
  result.runtime_s = timer.seconds();
  return result;
}

}  // namespace complx
