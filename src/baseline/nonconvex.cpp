#include "baseline/nonconvex.h"

#include <algorithm>
#include <cmath>

#include "nlcg/nlcg.h"
#include "util/rng.h"
#include "util/timer.h"
#include "wl/smooth.h"

namespace complx {

NonconvexPlacer::NonconvexPlacer(const Netlist& nl,
                                 const NonconvexConfig& cfg)
    : nl_(nl), cfg_(cfg) {}

NonconvexResult NonconvexPlacer::place() {
  Timer timer;
  NonconvexResult result;

  Placement p = nl_.snapshot();
  {
    // Same centered initialization convention as the other placers.
    Rng rng(0xA91Cull);
    const Point c = nl_.core().center();
    const double r = 2.0 * nl_.row_height();
    for (CellId id : nl_.movable_cells()) {
      p.x[id] = c.x + rng.uniform(-r, r);
      p.y[id] = c.y + rng.uniform(-r, r);
    }
  }

  const LseWl wirelength(nl_, cfg_.lse_gamma_rows * nl_.row_height());
  const std::unique_ptr<DensityBackend> density =
      make_density_backend(cfg_.density_backend, nl_, cfg_.density);

  // Pure wirelength warm-up.
  {
    NlcgOptions opts;
    opts.max_iterations = cfg_.nlcg_iterations;
    minimize_smooth_placement(nl_, wirelength, p, nullptr, opts);
  }

  // λ_d normalization from gradient magnitudes at the warm-up point.
  Vec gx, gy, dgx, dgy;
  wirelength.value_and_grad(p, gx, gy);
  density->value_and_grad(p, dgx, dgy);
  double wl_norm = 0.0, d_norm = 0.0;
  for (CellId id : nl_.movable_cells()) {
    wl_norm += std::abs(gx[id]) + std::abs(gy[id]);
    d_norm += std::abs(dgx[id]) + std::abs(dgy[id]);
  }
  double lambda_d = d_norm > 1e-12
                        ? cfg_.initial_gradient_ratio * wl_norm / d_norm
                        : 1.0;

  const DensityAugmentedWl combined(wirelength, *density, lambda_d);

  int round = 1;
  for (; round <= cfg_.max_rounds; ++round) {
    NlcgOptions opts;
    opts.max_iterations = cfg_.nlcg_iterations;
    minimize_smooth_placement(nl_, combined, p, nullptr, opts);
    result.final_overflow = density->overflow_ratio(p);
    if (result.final_overflow < cfg_.stop_overflow) break;
    lambda_d *= 2.0;  // the classic penalty ramp
  }

  result.placement = std::move(p);
  result.rounds = std::min(round, cfg_.max_rounds);
  result.density_clamped_cells = density->stats().clamped_cells;
  result.runtime_s = timer.seconds();
  return result;
}

}  // namespace complx
