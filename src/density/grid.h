// Uniform density grid over the core area.
//
// The feasibility projection P_C identifies overfilled bins against a target
// utilization γ (paper, Section 5: "a uniform grid is superimposed over the
// entire layout... the feasibility projection seeks to satisfy the given
// target utilization/density limit within each grid-cell").
//
// Fixed cells pre-consume bin capacity; movable area is deposited by exact
// rectangle overlap each time build() is called.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "netlist/netlist.h"
#include "util/geom.h"

namespace complx {

class DensityGrid {
 public:
  /// `bins_x` by `bins_y` grid over nl.core(). Fixed-cell blockage is
  /// computed once here.
  DensityGrid(const Netlist& nl, size_t bins_x, size_t bins_y);

  /// Deposits movable-cell area for placement `p` (cells treated as
  /// rectangles centered at (p.x, p.y)). Clears previous movable usage.
  void build(const Placement& p);

  /// Like build(), but each movable rectangle is given externally (used by
  /// the macro shredder which substitutes shreds for macros).
  void build_from_rects(const std::vector<Rect>& movable_rects);

  size_t bins_x() const { return bx_; }
  size_t bins_y() const { return by_; }
  double bin_width() const { return bw_; }
  double bin_height() const { return bh_; }
  Rect bin_rect(size_t i, size_t j) const;

  /// Free (non-blocked) area of a bin.
  double capacity(size_t i, size_t j) const { return cap_[idx(i, j)]; }
  /// Movable area currently deposited in a bin.
  double usage(size_t i, size_t j) const { return use_[idx(i, j)]; }
  /// usage − γ·capacity when positive, else 0.
  double overflow(size_t i, size_t j, double gamma) const;

  /// Σ over bins of overflow(i, j, γ).
  double total_overflow(double gamma) const;
  /// Whether utilization exceeds γ anywhere (with small tolerance).
  bool feasible(double gamma, double tol = 1e-9) const;

  /// Bin column/row of a point (clamped into range).
  size_t bin_x_of(double x) const;
  size_t bin_y_of(double y) const;

  /// Free (placeable) area inside an arbitrary rectangle, assuming each
  /// bin's free area is uniformly distributed over the bin. Used by the
  /// feasibility projection's capacity profiles.
  double free_area_in(const Rect& r) const;

  /// Movable area currently deposited inside an arbitrary rectangle (same
  /// uniform-within-bin assumption).
  double usage_in(const Rect& r) const;

  const Netlist& netlist() const { return nl_; }

 private:
  size_t idx(size_t i, size_t j) const { return j * bx_ + i; }
  void deposit(const Rect& r, std::vector<double>& field);
  /// Deposits items [0, n) into `field` via per-block partial grids merged
  /// in block order — deterministic at any thread count (see
  /// docs/PARALLELISM.md). `dep(k, f)` adds item k's area into grid f.
  void parallel_deposit(
      size_t n, const std::function<void(size_t, std::vector<double>&)>& dep,
      std::vector<double>& field);

  const Netlist& nl_;
  size_t bx_, by_;
  double bw_, bh_;
  Rect core_;
  std::vector<double> cap_;  ///< free area per bin (total − fixed blockage)
  std::vector<double> use_;  ///< movable area per bin
};

}  // namespace complx
