// Uniform density grid over the core area.
//
// The feasibility projection P_C identifies overfilled bins against a target
// utilization γ (paper, Section 5: "a uniform grid is superimposed over the
// entire layout... the feasibility projection seeks to satisfy the given
// target utilization/density limit within each grid-cell").
//
// Fixed cells pre-consume bin capacity; movable area is deposited by exact
// rectangle overlap each time build() is called.
//
// Area queries (free_area_in / usage_in / the bin-span sums) run in O(1)
// against summed-area tables maintained over both fields — the bin-grid
// analogue of the fast density transforms in the FFT-based placement
// literature. The tables are rebuilt once per build()/build_from_rects()
// in bin order (deterministic at any thread count); the historical per-bin
// loops remain available behind DensityOptions::use_prefix_sums for
// equivalence testing and ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.h"
#include "util/geom.h"
#include "util/parallel.h"

namespace complx {

struct DensityOptions {
  /// O(1) summed-area-table queries (default). Off = the historical per-bin
  /// loops; both paths agree to ~1e-9 relative to the grid's total area
  /// (the tables change floating-point summation order, nothing else).
  bool use_prefix_sums = true;
};

class DensityGrid {
 public:
  /// `bins_x` by `bins_y` grid over nl.core(). Fixed-cell blockage is
  /// computed once here.
  DensityGrid(const Netlist& nl, size_t bins_x, size_t bins_y,
              const DensityOptions& opts = {});

  /// Deposits movable-cell area for placement `p` (cells treated as
  /// rectangles centered at (p.x, p.y)). Clears previous movable usage.
  void build(const Placement& p);

  /// Like build(), but each movable rectangle is given externally (used by
  /// the macro shredder which substitutes shreds for macros).
  void build_from_rects(const std::vector<Rect>& movable_rects);

  /// Weighted variant: rect k's overlap deposit is scaled by weights[k].
  /// The electrostatic backend stretches narrow cells to the bin pitch and
  /// compensates with weight = area / stretched-area, so total deposited
  /// charge still equals the cell area (ePlace-style density preservation).
  void build_from_rects(const std::vector<Rect>& movable_rects,
                        const std::vector<double>& weights);

  size_t bins_x() const { return bx_; }
  size_t bins_y() const { return by_; }
  double bin_width() const { return bw_; }
  double bin_height() const { return bh_; }
  Rect bin_rect(size_t i, size_t j) const;

  /// Free (non-blocked) area of a bin.
  double capacity(size_t i, size_t j) const { return cap_[idx(i, j)]; }
  /// Movable area currently deposited in a bin.
  double usage(size_t i, size_t j) const { return use_[idx(i, j)]; }
  /// usage − γ·capacity when positive, else 0.
  double overflow(size_t i, size_t j, double gamma) const;

  /// Σ over bins of overflow(i, j, γ).
  double total_overflow(double gamma) const;
  /// Whether utilization exceeds γ anywhere (with small tolerance).
  bool feasible(double gamma, double tol = 1e-9) const;

  /// Bin column/row of a point (clamped into range; non-finite coordinates
  /// clamp to bin 0 rather than invoking undefined float→int behavior —
  /// core/health screens them out upstream, this is the last line).
  size_t bin_x_of(double x) const;
  size_t bin_y_of(double y) const;

  /// Free (placeable) area inside an arbitrary rectangle, assuming each
  /// bin's free area is uniformly distributed over the bin. Used by the
  /// feasibility projection's capacity profiles.
  double free_area_in(const Rect& r) const;

  /// Movable area currently deposited inside an arbitrary rectangle (same
  /// uniform-within-bin assumption).
  double usage_in(const Rect& r) const;

  /// Σ capacity over the inclusive bin span [i0, i1] × [j0, j1] — O(1) via
  /// the summed-area table (used by the region finder's grow/merge loops).
  double capacity_sum(size_t i0, size_t j0, size_t i1, size_t j1) const;
  /// Σ usage over the inclusive bin span [i0, i1] × [j0, j1].
  double usage_sum(size_t i0, size_t j0, size_t i1, size_t j1) const;

  const DensityOptions& options() const { return opts_; }
  const Netlist& netlist() const { return nl_; }

 private:
  size_t idx(size_t i, size_t j) const { return j * bx_ + i; }
  size_t sat_idx(size_t i, size_t j) const { return j * (bx_ + 1) + i; }
  void deposit(const Rect& r, std::vector<double>& field) {
    deposit(r, 1.0, field);
  }
  void deposit(const Rect& r, double scale, std::vector<double>& field);
  /// Deposits items [0, n) into `field` via per-block partial grids merged
  /// in block order — deterministic at any thread count (see
  /// docs/PARALLELISM.md). `dep(k, f)` adds item k's area into grid f.
  ///
  /// Template (not std::function): the deposit lambda inlines into the
  /// per-block loop, so a million-cell build() makes zero indirect calls in
  /// its hot path. The block schedule and merge order are unchanged, so the
  /// grid stays bitwise identical to the type-erased version.
  template <class Dep>
  void parallel_deposit(size_t n, const Dep& dep, std::vector<double>& field) {
    field.assign(bx_ * by_, 0.0);
    const Partition part = partition_range(n, 1024, 32);
    if (part.parts <= 1) {  // small designs: exactly the historical loop
      for (size_t k = 0; k < n; ++k) dep(k, field);
      return;
    }
    // Per-block partial grids. Block boundaries depend only on n, and bins
    // merge their partials in block order, so the grid is bitwise identical
    // at any thread count.
    std::vector<std::vector<double>> partial(part.parts);
    parallel_for(
        n,
        [&](size_t begin, size_t end) {
          std::vector<double>& f = partial[begin / part.chunk];
          f.assign(bx_ * by_, 0.0);
          for (size_t k = begin; k < end; ++k) dep(k, f);
        },
        part.chunk);
    parallel_for(bx_ * by_, [&](size_t b0, size_t b1) {
      for (size_t b = b0; b < b1; ++b) {
        double s = 0.0;
        for (const std::vector<double>& f : partial)
          if (!f.empty()) s += f[b];
        field[b] = s;
      }
    });
  }
  /// Rebuilds `sat` as the summed-area table of `field`: sat(i, j) = Σ of
  /// field over bins ii < i, jj < j. Serial bin-order recurrence — the same
  /// bytes at any thread count.
  void rebuild_sat(const std::vector<double>& field,
                   std::vector<double>& sat) const;
  /// Inclusive bin-span sum out of a summed-area table.
  double sat_span(const std::vector<double>& sat, size_t i0, size_t j0,
                  size_t i1, size_t j1) const;
  /// ∫ field over r with the uniform-within-bin assumption; O(1) via `sat`.
  double integrate_sat(const std::vector<double>& field,
                       const std::vector<double>& sat, const Rect& r) const;
  /// Same integral via the historical per-bin loop (use_prefix_sums off).
  double integrate_loop(const std::vector<double>& field, const Rect& r) const;

  const Netlist& nl_;
  size_t bx_, by_;
  double bw_, bh_;
  Rect core_;
  DensityOptions opts_;
  std::vector<double> cap_;  ///< free area per bin (total − fixed blockage)
  std::vector<double> use_;  ///< movable area per bin
  std::vector<double> cap_sat_;  ///< (bx+1)·(by+1) prefix sums over cap_
  std::vector<double> use_sat_;  ///< (bx+1)·(by+1) prefix sums over use_
};

}  // namespace complx
