#include "density/backend.h"

#include <stdexcept>
#include <utility>

#include "density/electrostatic.h"
#include "density/penalty.h"

namespace complx {

namespace {

struct Registry {
  /// Append-only (name, factory) list: deterministic iteration order and no
  /// static-initialization-order hazards (function-local static).
  std::vector<std::pair<std::string, DensityBackendFactory>> entries;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::unique_ptr<DensityBackend> make_spread(const Netlist& nl,
                                            const DensityBackendOptions& o) {
  DensityPenaltyOptions po;
  po.bins = o.bins;
  po.smoothing = o.smoothing;
  po.grid = o.grid;
  return std::make_unique<DensityPenalty>(nl, po);
}

std::unique_ptr<DensityBackend> make_electrostatic(
    const Netlist& nl, const DensityBackendOptions& o) {
  ElectrostaticOptions eo;
  eo.bins = o.bins;
  eo.grid = o.grid;
  return std::make_unique<ElectrostaticDensity>(nl, eo);
}

void ensure_builtins() {
  Registry& r = registry();
  if (!r.entries.empty()) return;
  r.entries.emplace_back("spread", &make_spread);
  r.entries.emplace_back("electrostatic", &make_electrostatic);
}

DensityBackendFactory find(const std::string& name) {
  ensure_builtins();
  const Registry& r = registry();
  // Latest registration wins so tests can shadow a built-in.
  for (auto it = r.entries.rbegin(); it != r.entries.rend(); ++it)
    if (it->first == name) return it->second;
  return nullptr;
}

}  // namespace

void register_density_backend(const std::string& name,
                              DensityBackendFactory factory) {
  ensure_builtins();
  registry().entries.emplace_back(name, factory);
}

std::unique_ptr<DensityBackend> make_density_backend(
    const std::string& name, const Netlist& nl,
    const DensityBackendOptions& opts) {
  if (DensityBackendFactory f = find(name)) return f(nl, opts);
  std::string known;
  for (const std::string& n : density_backend_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown density backend '" + name +
                              "' (registered: " + known + ")");
}

std::vector<std::string> density_backend_names() {
  ensure_builtins();
  std::vector<std::string> names;
  for (const auto& e : registry().entries) {
    bool seen = false;
    for (const std::string& n : names) seen = seen || n == e.first;
    if (!seen) names.push_back(e.first);
  }
  return names;
}

}  // namespace complx
