#include "density/metric.h"

#include <algorithm>
#include <cmath>

#include "wl/hpwl.h"

namespace complx {

DensityMetric evaluate_scaled_hpwl(const Netlist& nl, const Placement& p,
                                   size_t bins_x, size_t bins_y) {
  if (bins_x == 0 || bins_y == 0) {
    // Default: square-ish bins roughly 10 rows tall.
    const double bin_edge = 10.0 * nl.row_height();
    bins_x = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(nl.core().width() / bin_edge)));
    bins_y = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(nl.core().height() / bin_edge)));
  }
  DensityGrid grid(nl, bins_x, bins_y);
  grid.build(p);

  DensityMetric m;
  m.hpwl = hpwl(nl, p);
  m.overflow_area = grid.total_overflow(nl.target_density());
  const double movable = std::max(nl.movable_area(), 1e-12);
  m.overflow_percent = 100.0 * m.overflow_area / movable;
  m.scaled_hpwl = m.hpwl * (1.0 + m.overflow_percent / 100.0);
  return m;
}

}  // namespace complx
