// DensityBackend — the pluggable density model behind the nonconvex
// placers and the density-driven projection.
//
// Two families implement it:
//   "spread"         the cosine-bell kernel-density penalty
//                    (density/penalty.h; APlace/NTUPlace3 style), and
//   "electrostatic"  the FFT Poisson-solver field model
//                    (density/electrostatic.h; FFTPL / ePlace style).
//
// Backends are registered by name and constructed through the factory so
// the choice can ride a config string (ComplxConfig::density_backend,
// complx_place --density-backend) all the way from the CLI without any
// caller knowing the concrete types. Registration order is a deterministic
// append-only vector — never an unordered container — so name listings are
// stable across runs (lint rule D1 discipline).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "density/grid.h"
#include "netlist/netlist.h"

namespace complx {

/// Health counters a backend accumulates across evaluations. Drivers fold
/// these into core/health.h's HealthStats (the density layer cannot include
/// core, so the counter surfaces through this struct instead).
struct DensityStats {
  /// Cell centers that sat outside the core (or went non-finite mid-solve)
  /// and were clamped onto it before depositing — each one used to lose its
  /// entire area silently.
  size_t clamped_cells = 0;
};

/// Options shared by every density backend; the factory maps them onto each
/// implementation's own struct.
struct DensityBackendOptions {
  size_t bins = 0;         ///< 0 = auto from the movable count
  double smoothing = 2.0;  ///< "spread": bell radius in bins
  DensityOptions grid;     ///< internal DensityGrid query mode
};

/// A differentiable density model over a placement: a scalar penalty/energy
/// with its gradient in the cell centers, plus the hard overflow metric the
/// outer loops use as a stopping rule. Implementations cache their
/// fixed-blockage grid and are NOT thread-safe across concurrent calls on
/// one instance (same contract as projection/lal.h's capacity cache).
class DensityBackend {
 public:
  virtual ~DensityBackend() = default;

  /// Registered backend name ("spread", "electrostatic", ...).
  virtual const char* name() const = 0;

  /// Grid resolution (bins per axis) the model evaluates on.
  virtual size_t bins() const = 0;

  /// Model value at `p`; gx/gy are overwritten with its gradient with
  /// respect to the movable cell centers.
  virtual double value_and_grad(const Placement& p, Vec& gx,
                                Vec& gy) const = 0;

  /// Hard (non-smoothed) overflow ratio at the model's grid: Σ bin overflow
  /// above the netlist target density, divided by total movable area.
  virtual double overflow_ratio(const Placement& p) const = 0;

  /// Cumulative health counters (see DensityStats).
  virtual const DensityStats& stats() const = 0;
};

using DensityBackendFactory = std::unique_ptr<DensityBackend> (*)(
    const Netlist& nl, const DensityBackendOptions& opts);

/// Registers a backend under `name` (later registrations of the same name
/// win, so tests can shadow a built-in). The built-ins self-register on
/// first factory use.
void register_density_backend(const std::string& name,
                              DensityBackendFactory factory);

/// Constructs the named backend; throws std::invalid_argument for an
/// unknown name (the message lists the registered names).
std::unique_ptr<DensityBackend> make_density_backend(
    const std::string& name, const Netlist& nl,
    const DensityBackendOptions& opts);

/// Registered names in registration order (built-ins first).
std::vector<std::string> density_backend_names();

}  // namespace complx
