#include "density/grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/parallel.h"

namespace complx {

DensityGrid::DensityGrid(const Netlist& nl, size_t bins_x, size_t bins_y,
                         const DensityOptions& opts)
    : nl_(nl), bx_(bins_x), by_(bins_y), core_(nl.core()), opts_(opts) {
  if (bins_x == 0 || bins_y == 0)
    throw std::invalid_argument("density grid needs at least one bin");
  bw_ = core_.width() / static_cast<double>(bx_);
  bh_ = core_.height() / static_cast<double>(by_);

  // Capacity = bin area minus fixed blockage.
  cap_.assign(bx_ * by_, bw_ * bh_);
  std::vector<double> blocked(bx_ * by_, 0.0);
  for (const Cell& c : nl.cells()) {
    if (c.movable()) continue;
    deposit(c.bounds(), blocked);
  }
  for (size_t k = 0; k < cap_.size(); ++k)
    cap_[k] = std::max(0.0, cap_[k] - blocked[k]);
  use_.assign(bx_ * by_, 0.0);
  rebuild_sat(cap_, cap_sat_);
  rebuild_sat(use_, use_sat_);
}

void DensityGrid::deposit(const Rect& r, double scale,
                          std::vector<double>& field) {
  const Rect clipped = {std::max(r.xl, core_.xl), std::max(r.yl, core_.yl),
                        std::min(r.xh, core_.xh), std::min(r.yh, core_.yh)};
  if (clipped.empty()) return;
  const size_t i0 = bin_x_of(clipped.xl);
  const size_t i1 = bin_x_of(clipped.xh - 1e-12);
  const size_t j0 = bin_y_of(clipped.yl);
  const size_t j1 = bin_y_of(clipped.yh - 1e-12);
  for (size_t j = j0; j <= j1; ++j)
    for (size_t i = i0; i <= i1; ++i)
      field[idx(i, j)] += scale * bin_rect(i, j).overlap_area(clipped);
}

void DensityGrid::build(const Placement& p) {
  // Raw-array deposit loop: per movable cell, two coordinate loads and the
  // 40-byte hot Cell record — no name or adjacency data enters the cache.
  const NetlistView v = nl_.view();
  parallel_deposit(
      v.num_movable,
      [&](size_t k, std::vector<double>& f) {
        const CellId id = v.movable[k];
        const Cell& c = v.cells[id];
        const Rect r = {p.x[id] - c.width / 2.0, p.y[id] - c.height / 2.0,
                        p.x[id] + c.width / 2.0, p.y[id] + c.height / 2.0};
        deposit(r, f);
      },
      use_);
  rebuild_sat(use_, use_sat_);
}

void DensityGrid::build_from_rects(const std::vector<Rect>& movable_rects) {
  parallel_deposit(
      movable_rects.size(),
      [&](size_t k, std::vector<double>& f) { deposit(movable_rects[k], f); },
      use_);
  rebuild_sat(use_, use_sat_);
}

void DensityGrid::build_from_rects(const std::vector<Rect>& movable_rects,
                                   const std::vector<double>& weights) {
  if (weights.size() != movable_rects.size())
    throw std::invalid_argument(
        "build_from_rects: one weight per rect required");
  parallel_deposit(
      movable_rects.size(),
      [&](size_t k, std::vector<double>& f) {
        deposit(movable_rects[k], weights[k], f);
      },
      use_);
  rebuild_sat(use_, use_sat_);
}

void DensityGrid::rebuild_sat(const std::vector<double>& field,
                              std::vector<double>& sat) const {
  // Serial bin-order recurrence: sat(i, j) = Σ field over bins ii<i, jj<j.
  // The summation schedule depends only on the grid shape, so the table is
  // the same bytes at any thread count.
  sat.assign((bx_ + 1) * (by_ + 1), 0.0);
  for (size_t j = 0; j < by_; ++j) {
    for (size_t i = 0; i < bx_; ++i) {
      sat[sat_idx(i + 1, j + 1)] = field[idx(i, j)] + sat[sat_idx(i, j + 1)] +
                                   sat[sat_idx(i + 1, j)] - sat[sat_idx(i, j)];
    }
  }
}

double DensityGrid::sat_span(const std::vector<double>& sat, size_t i0,
                             size_t j0, size_t i1, size_t j1) const {
  return sat[sat_idx(i1 + 1, j1 + 1)] - sat[sat_idx(i0, j1 + 1)] -
         sat[sat_idx(i1 + 1, j0)] + sat[sat_idx(i0, j0)];
}

double DensityGrid::capacity_sum(size_t i0, size_t j0, size_t i1,
                                 size_t j1) const {
  if (opts_.use_prefix_sums) return sat_span(cap_sat_, i0, j0, i1, j1);
  double s = 0.0;
  for (size_t j = j0; j <= j1; ++j)
    for (size_t i = i0; i <= i1; ++i) s += cap_[idx(i, j)];
  return s;
}

double DensityGrid::usage_sum(size_t i0, size_t j0, size_t i1,
                              size_t j1) const {
  if (opts_.use_prefix_sums) return sat_span(use_sat_, i0, j0, i1, j1);
  double s = 0.0;
  for (size_t j = j0; j <= j1; ++j)
    for (size_t i = i0; i <= i1; ++i) s += use_[idx(i, j)];
  return s;
}

Rect DensityGrid::bin_rect(size_t i, size_t j) const {
  return {core_.xl + static_cast<double>(i) * bw_,
          core_.yl + static_cast<double>(j) * bh_,
          core_.xl + static_cast<double>(i + 1) * bw_,
          core_.yl + static_cast<double>(j + 1) * bh_};
}

double DensityGrid::overflow(size_t i, size_t j, double gamma) const {
  return std::max(0.0, use_[idx(i, j)] - gamma * cap_[idx(i, j)]);
}

double DensityGrid::total_overflow(double gamma) const {
  // Per-bin max(0, ·) is nonlinear, so this stays a bin loop (prefix sums
  // cannot express it). Bin-order reduction with deterministic fixed
  // chunking (the serial loop visited bins in exactly this linear order).
  return parallel_sum(bx_ * by_, [&](size_t begin, size_t end) {
    double s = 0.0;
    for (size_t k = begin; k < end; ++k)
      s += std::max(0.0, use_[k] - gamma * cap_[k]);
    return s;
  });
}

bool DensityGrid::feasible(double gamma, double tol) const {
  for (size_t j = 0; j < by_; ++j)
    for (size_t i = 0; i < bx_; ++i)
      if (overflow(i, j, gamma) > tol * bw_ * bh_) return false;
  return true;
}

double DensityGrid::integrate_loop(const std::vector<double>& field,
                                   const Rect& r) const {
  const Rect clipped = {std::max(r.xl, core_.xl), std::max(r.yl, core_.yl),
                        std::min(r.xh, core_.xh), std::min(r.yh, core_.yh)};
  if (clipped.empty()) return 0.0;
  const size_t i0 = bin_x_of(clipped.xl);
  const size_t i1 = bin_x_of(clipped.xh - 1e-12);
  const size_t j0 = bin_y_of(clipped.yl);
  const size_t j1 = bin_y_of(clipped.yh - 1e-12);
  double s = 0.0;
  for (size_t j = j0; j <= j1; ++j) {
    for (size_t i = i0; i <= i1; ++i) {
      const Rect b = bin_rect(i, j);
      const double frac = b.overlap_area(clipped) / b.area();
      s += frac * field[idx(i, j)];
    }
  }
  return s;
}

double DensityGrid::integrate_sat(const std::vector<double>& field,
                                  const std::vector<double>& sat,
                                  const Rect& r) const {
  const Rect clipped = {std::max(r.xl, core_.xl), std::max(r.yl, core_.yl),
                        std::min(r.xh, core_.xh), std::min(r.yh, core_.yh)};
  if (clipped.empty()) return 0.0;
  // S(x, y) = ∫ of the uniform-within-bin density over [core.xl, x] ×
  // [core.yl, y]: whole-bin block via the table plus bilinear fractional
  // edge terms — exactly the per-bin frac · field sum of integrate_loop,
  // re-associated. Four O(1) corner evaluations give the rectangle.
  const auto S = [&](double x, double y) {
    const size_t i = bin_x_of(x);
    const size_t j = bin_y_of(y);
    const double fx = std::clamp(
        (x - (core_.xl + static_cast<double>(i) * bw_)) / bw_, 0.0, 1.0);
    const double fy = std::clamp(
        (y - (core_.yl + static_cast<double>(j) * bh_)) / bh_, 0.0, 1.0);
    const double block = sat[sat_idx(i, j)];
    const double col = sat[sat_idx(i + 1, j)] - sat[sat_idx(i, j)];
    const double row = sat[sat_idx(i, j + 1)] - sat[sat_idx(i, j)];
    return block + fx * col + fy * row + fx * fy * field[idx(i, j)];
  };
  return S(clipped.xh, clipped.yh) - S(clipped.xl, clipped.yh) -
         S(clipped.xh, clipped.yl) + S(clipped.xl, clipped.yl);
}

double DensityGrid::free_area_in(const Rect& r) const {
  return opts_.use_prefix_sums ? integrate_sat(cap_, cap_sat_, r)
                               : integrate_loop(cap_, r);
}

double DensityGrid::usage_in(const Rect& r) const {
  return opts_.use_prefix_sums ? integrate_sat(use_, use_sat_, r)
                               : integrate_loop(use_, r);
}

size_t DensityGrid::bin_x_of(double x) const {
  // Guard before any float→int conversion: casting a non-finite (or huge)
  // double to an integer is undefined behavior. NaN fails every ordered
  // comparison and lands in bin 0; ±inf clamp to the edge bins. Finite
  // in-range input truncates exactly like the historical floor+clamp.
  const double t = (x - core_.xl) / bw_;
  if (!(t > 0.0)) return 0;
  const double hi = static_cast<double>(bx_) - 1.0;
  if (t > hi) return bx_ - 1;
  return static_cast<size_t>(t);
}

size_t DensityGrid::bin_y_of(double y) const {
  const double t = (y - core_.yl) / bh_;
  if (!(t > 0.0)) return 0;
  const double hi = static_cast<double>(by_) - 1.0;
  if (t > hi) return by_ - 1;
  return static_cast<size_t>(t);
}

}  // namespace complx
