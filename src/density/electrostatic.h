// FFT electrostatic density backend (FFTPL, arXiv:1312.4587; ePlace family;
// real-input DCT/DST formulation per arXiv:2510.21547).
//
// Movable cells are treated as positive charges on the bin grid: the charge
// map ρ comes from the exact-overlap deposit of density/grid.h (narrow cells
// stretched to the bin pitch with area-preserving weights, so every cell
// exerts and feels force even inside one bin), the potential solves
//
//   ∇²ψ = −ρ        (Neumann walls — the core boundary reflects)
//
// by diagonalizing the Laplacian in the 2-D cosine basis: one forward
// DCT-II of ρ, a per-mode divide by (w_u² + w_v²), and cosine/sine series
// readbacks for ψ and the field E = −∇ψ (density/fft/dct.h). The DC mode is
// dropped, which is the spectral form of subtracting the mean charge —
// Neumann boundaries admit no monopole.
//
// The penalty value is the field energy N(ρ) = ½ Σ_b ρ_b ψ_b. Because the
// solve is a fixed symmetric positive-semidefinite operator G (ψ = Gρ), the
// exact gradient is dN/dx = ψᵀ·∂ρ/∂x, and ∂ρ/∂x of the rectangle-overlap
// deposit is a closed-form edge term — so value_and_grad passes a central
// finite-difference check to roundoff away from bin-edge kinks, unlike the
// normalized-bell penalty whose gradient is approximate by construction.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "density/backend.h"
#include "density/grid.h"
#include "netlist/netlist.h"

namespace complx {

struct ElectrostaticOptions {
  /// Bins per axis; 0 = auto from the movable count. Always rounded up to a
  /// power of two (the transform length) and clamped to [8, 512].
  size_t bins = 0;
  DensityOptions grid;  ///< query mode of the internal DensityGrid
};

class ElectrostaticDensity : public DensityBackend {
 public:
  ElectrostaticDensity(const Netlist& nl, const ElectrostaticOptions& opts);

  const char* name() const override { return "electrostatic"; }
  size_t bins() const override { return bins_; }

  /// Field energy N(ρ) at `p` and its exact discrete gradient with respect
  /// to the movable cell centers. Centers outside the core (or non-finite)
  /// clamp onto it — counted in stats().clamped_cells — and the gradient is
  /// evaluated at the clamped center (the interior one-sided derivative).
  double value_and_grad(const Placement& p, Vec& gx, Vec& gy) const override;

  /// Hard overflow ratio of the TRUE (unstretched) footprints at this grid,
  /// using the cached capacity field — same stopping metric as the spread
  /// backend and the projection-based placers.
  double overflow_ratio(const Placement& p) const override;

  const DensityStats& stats() const override { return stats_; }

  /// Re-grids the model: `bins` is rounded up to a power of two and clamped
  /// to [8, 512]; the cached capacity grid is dropped only when the
  /// resolution actually changes.
  void set_bins(size_t bins);

  /// Builds the stretched charge map at `p` — optionally scaled per cell by
  /// `area_factors` (the SimPLR routability-inflation contract: standard
  /// cells only, macros unaffected) — and solves the Poisson system. The
  /// accessors below stay valid until the next solve or evaluation.
  void solve_field(const Placement& p,
                   const Vec* area_factors = nullptr) const;

  /// Per-bin fields after solve_field / value_and_grad, row-major with x
  /// fastest: potential ψ, and E = −∇ψ.
  const std::vector<double>& potential() const { return psi_; }
  const std::vector<double>& field_x() const { return ex_; }
  const std::vector<double>& field_y() const { return ey_; }
  double bin_width() const;
  double bin_height() const;

  /// The cached internal grid (capacity scan runs once per resolution).
  const DensityGrid& grid() const { return ensure_grid(); }

 private:
  DensityGrid& ensure_grid() const;

  const Netlist& nl_;
  ElectrostaticOptions opts_;
  size_t bins_;
  mutable DensityStats stats_;
  mutable std::unique_ptr<DensityGrid> grid_;

  // Solver state, valid after solve_field. Mutable workspace behind const
  // evaluation (not thread-safe across concurrent calls on one instance —
  // same contract as the LAL capacity cache).
  mutable std::vector<Rect> rects_;      ///< stretched (unclipped) footprints
  mutable std::vector<double> weights_;  ///< per-rect charge scale
  mutable std::vector<double> rho_, psi_, ex_, ey_;
  mutable std::vector<double> t1_, t2_, phat_, phat_wv_, ct_, st_, cw_;
};

}  // namespace complx
