// Smooth density penalty for nonconvex analytical placement (the
// APlace/NTUPlace3/mPL6 family the paper contrasts with ComPLx's global
// feasibility projection) — the "spread" DensityBackend.
//
// Each movable cell deposits a bell-shaped (cosine) footprint over nearby
// bins; the penalty is Σ_b max(0, D_b − γ·cap_b)², differentiable in the
// cell centers. This is the "fit demand distribution to smooth functions
// using kernel-density estimation" approach of Section 3, with the local
// gradients whose force-modulation ambiguity the paper criticizes.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "density/backend.h"
#include "density/grid.h"
#include "netlist/netlist.h"

namespace complx {

struct DensityPenaltyOptions {
  size_t bins = 0;          ///< 0 = auto (~sqrt(movables/4))
  double smoothing = 2.0;   ///< bell radius in bins
  DensityOptions grid;      ///< query mode of the internal DensityGrid
};

class DensityPenalty : public DensityBackend {
 public:
  DensityPenalty(const Netlist& nl, const DensityPenaltyOptions& opts);

  const char* name() const override { return "spread"; }

  /// Penalty value; gx/gy accumulate (are overwritten with) its gradient
  /// with respect to cell centers. Centers outside the core (including
  /// non-finite coordinates) are clamped onto it before depositing — their
  /// area participates at the boundary instead of silently vanishing — and
  /// each such cell bumps stats().clamped_cells.
  double value_and_grad(const Placement& p, Vec& gx, Vec& gy) const override;

  /// Hard (non-smoothed) overflow ratio at the same grid — the stopping
  /// metric, comparable to the projection-based placers'. Evaluated against
  /// a cached DensityGrid: only the movable field is re-deposited per call;
  /// the fixed-blockage capacity scan runs once at construction.
  double overflow_ratio(const Placement& p) const override;

  size_t bins() const override { return bins_; }

  const DensityStats& stats() const override { return stats_; }

  /// The cached internal grid. Exposed so tests can assert the configured
  /// DensityOptions (prefix sums on/off) actually reach it.
  const DensityGrid& grid() const { return ensure_grid(); }

 private:
  DensityGrid& ensure_grid() const;

  const Netlist& nl_;
  DensityPenaltyOptions opts_;
  size_t bins_;
  double bw_, bh_;
  double radius_;  ///< bell radius in layout units (x); separate for y
  double radius_y_;
  std::vector<double> capacity_;  ///< γ-scaled free area per bin
  /// Cached grid for overflow_ratio (fixed blockage scanned once, like
  /// projection/lal.h's capacity cache) and health counters. Both mutable
  /// behind const evaluation calls; the class is not thread-safe across
  /// concurrent calls on one instance.
  mutable std::unique_ptr<DensityGrid> grid_;
  mutable DensityStats stats_;
};

}  // namespace complx
