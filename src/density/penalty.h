// Smooth density penalty for nonconvex analytical placement (the
// APlace/NTUPlace3/mPL6 family the paper contrasts with ComPLx's global
// feasibility projection).
//
// Each movable cell deposits a bell-shaped (cosine) footprint over nearby
// bins; the penalty is Σ_b max(0, D_b − γ·cap_b)², differentiable in the
// cell centers. This is the "fit demand distribution to smooth functions
// using kernel-density estimation" approach of Section 3, with the local
// gradients whose force-modulation ambiguity the paper criticizes.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.h"

namespace complx {

struct DensityPenaltyOptions {
  size_t bins = 0;          ///< 0 = auto (~sqrt(movables/4))
  double smoothing = 2.0;   ///< bell radius in bins
};

class DensityPenalty {
 public:
  DensityPenalty(const Netlist& nl, const DensityPenaltyOptions& opts);

  /// Penalty value; gx/gy accumulate (are overwritten with) its gradient
  /// with respect to cell centers.
  double value_and_grad(const Placement& p, Vec& gx, Vec& gy) const;

  /// Hard (non-smoothed) overflow ratio at the same grid — the stopping
  /// metric, comparable to the projection-based placers'.
  double overflow_ratio(const Placement& p) const;

  size_t bins() const { return bins_; }

 private:
  const Netlist& nl_;
  size_t bins_;
  double bw_, bh_;
  double radius_;  ///< bell radius in layout units (x); separate for y
  double radius_y_;
  std::vector<double> capacity_;  ///< γ-scaled free area per bin
};

}  // namespace complx
