#include "density/penalty.h"

#include <algorithm>
#include <cmath>

#include "util/fpcmp.h"

namespace complx {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Cosine bell: weight(u) = (1 + cos(π·u))/2 for |u| <= 1, else 0.
/// Smooth, compactly supported, integrates nicely over bins.
double bell(double u) {
  const double a = std::abs(u);
  return a >= 1.0 ? 0.0 : 0.5 * (1.0 + std::cos(kPi * a));
}
double bell_grad(double u) {  // d bell / du
  const double a = std::abs(u);
  if (a >= 1.0) return 0.0;
  const double g = -0.5 * kPi * std::sin(kPi * a);
  return u >= 0.0 ? g : -g;
}

/// Clamps a center coordinate into [lo, hi] with the NaN-safe ordering of
/// grid.cpp's bin lookup: NaN fails every ordered comparison and lands on
/// `lo` instead of flowing into a float→int cast downstream. Sets `clamped`
/// when the input was outside (or not a number).
double clamp_center(double c, double lo, double hi, bool& clamped) {
  if (!(c > lo)) {
    // NaN is not exactly_equal to lo, so it is counted as a clamp.
    clamped = clamped || !fp::exactly_equal(c, lo);
    return lo;
  }
  if (c > hi) {
    clamped = true;
    return hi;
  }
  return c;
}
}  // namespace

DensityPenalty::DensityPenalty(const Netlist& nl,
                               const DensityPenaltyOptions& opts)
    : nl_(nl), opts_(opts) {
  bins_ = opts.bins;
  if (bins_ == 0) {
    bins_ = std::clamp<size_t>(
        static_cast<size_t>(
            std::sqrt(static_cast<double>(nl.num_movable()) / 4.0)),
        8, 256);
  }
  bw_ = nl.core().width() / static_cast<double>(bins_);
  bh_ = nl.core().height() / static_cast<double>(bins_);
  radius_ = opts.smoothing * bw_;
  radius_y_ = opts.smoothing * bh_;

  // Capacity from the exact grid (fixed blockage subtracted), γ-scaled. The
  // grid is kept — overflow_ratio re-deposits movable area into it per call
  // instead of rebuilding the fixed-blockage scan from scratch.
  const DensityGrid& grid = ensure_grid();
  capacity_.resize(bins_ * bins_);
  for (size_t j = 0; j < bins_; ++j)
    for (size_t i = 0; i < bins_; ++i)
      capacity_[j * bins_ + i] =
          nl.target_density() * grid.capacity(i, j);
}

DensityGrid& DensityPenalty::ensure_grid() const {
  if (!grid_)
    grid_ = std::make_unique<DensityGrid>(nl_, bins_, bins_, opts_.grid);
  return *grid_;
}

double DensityPenalty::value_and_grad(const Placement& p, Vec& gx,
                                      Vec& gy) const {
  const size_t n = nl_.num_cells();
  gx.assign(n, 0.0);
  gy.assign(n, 0.0);

  const Rect& core = nl_.core();
  std::vector<double> density(bins_ * bins_, 0.0);

  // Each cell's area spread by the product bell around its center; the
  // per-cell normalization keeps total deposited area = cell area.
  auto bins_touching = [&](double c, double radius, double bin_w,
                           double lo, size_t count, long& b0, long& b1) {
    b0 = static_cast<long>(std::floor((c - radius - lo) / bin_w));
    b1 = static_cast<long>(std::floor((c + radius - lo) / bin_w));
    b0 = std::max(b0, 0L);
    b1 = std::min(b1, static_cast<long>(count) - 1);
  };
  // Off-core (or non-finite) centers clamp onto the core so bins_touching
  // always finds a non-empty window: the historical code let the window go
  // empty and the wsum guard below then dropped the cell's entire area from
  // the field with no trace. The clamped coordinate is used consistently in
  // both passes so the gradient matches the deposited field.
  auto center_of = [&](CellId id, bool count_clamp) {
    bool clamped = false;
    const Point c = {clamp_center(p.x[id], core.xl, core.xh, clamped),
                     clamp_center(p.y[id], core.yl, core.yh, clamped)};
    if (clamped && count_clamp) ++stats_.clamped_cells;
    return c;
  };

  // Pass 1: density field.
  for (CellId id : nl_.movable_cells()) {
    const Cell& cell = nl_.cell(id);
    const Point c = center_of(id, /*count_clamp=*/true);
    long i0, i1, j0, j1;
    bins_touching(c.x, radius_, bw_, core.xl, bins_, i0, i1);
    bins_touching(c.y, radius_y_, bh_, core.yl, bins_, j0, j1);
    double wsum = 0.0;
    for (long j = j0; j <= j1; ++j)
      for (long i = i0; i <= i1; ++i) {
        const double cxb = core.xl + (static_cast<double>(i) + 0.5) * bw_;
        const double cyb = core.yl + (static_cast<double>(j) + 0.5) * bh_;
        wsum += bell((c.x - cxb) / radius_) *
                bell((c.y - cyb) / radius_y_);
      }
    if (wsum <= 1e-12) continue;  // unreachable for smoothing >= 1 bin
    const double scale = cell.area() / wsum;
    for (long j = j0; j <= j1; ++j)
      for (long i = i0; i <= i1; ++i) {
        const double cxb = core.xl + (static_cast<double>(i) + 0.5) * bw_;
        const double cyb = core.yl + (static_cast<double>(j) + 0.5) * bh_;
        density[static_cast<size_t>(j) * bins_ + static_cast<size_t>(i)] +=
            scale * bell((c.x - cxb) / radius_) *
            bell((c.y - cyb) / radius_y_);
      }
  }

  // Penalty and its field derivative dF/dD_b = 2·max(0, D_b − cap_b).
  double value = 0.0;
  std::vector<double> dfdd(bins_ * bins_, 0.0);
  for (size_t k = 0; k < density.size(); ++k) {
    const double over = density[k] - capacity_[k];
    if (over > 0.0) {
      value += over * over;
      dfdd[k] = 2.0 * over;
    }
  }

  // Pass 2: chain rule to cell centers (per-cell normalization treated as
  // locally constant — the standard approximation in analytical placers).
  for (CellId id : nl_.movable_cells()) {
    const Cell& cell = nl_.cell(id);
    const Point c = center_of(id, /*count_clamp=*/false);
    long i0, i1, j0, j1;
    bins_touching(c.x, radius_, bw_, core.xl, bins_, i0, i1);
    bins_touching(c.y, radius_y_, bh_, core.yl, bins_, j0, j1);
    double wsum = 0.0;
    for (long j = j0; j <= j1; ++j)
      for (long i = i0; i <= i1; ++i) {
        const double cxb = core.xl + (static_cast<double>(i) + 0.5) * bw_;
        const double cyb = core.yl + (static_cast<double>(j) + 0.5) * bh_;
        wsum += bell((c.x - cxb) / radius_) *
                bell((c.y - cyb) / radius_y_);
      }
    if (wsum <= 1e-12) continue;
    const double scale = cell.area() / wsum;
    for (long j = j0; j <= j1; ++j)
      for (long i = i0; i <= i1; ++i) {
        const size_t k =
            static_cast<size_t>(j) * bins_ + static_cast<size_t>(i);
        if (fp::exactly_zero(dfdd[k])) continue;  // sentinel: bin not over cap
        const double cxb = core.xl + (static_cast<double>(i) + 0.5) * bw_;
        const double cyb = core.yl + (static_cast<double>(j) + 0.5) * bh_;
        const double bx = bell((c.x - cxb) / radius_);
        const double by = bell((c.y - cyb) / radius_y_);
        gx[id] += dfdd[k] * scale * by *
                  bell_grad((c.x - cxb) / radius_) / radius_;
        gy[id] += dfdd[k] * scale * bx *
                  bell_grad((c.y - cyb) / radius_y_) / radius_y_;
      }
  }
  return value;
}

double DensityPenalty::overflow_ratio(const Placement& p) const {
  DensityGrid& grid = ensure_grid();
  grid.build(p);
  return grid.total_overflow(nl_.target_density()) /
         std::max(nl_.movable_area(), 1e-12);
}

}  // namespace complx
