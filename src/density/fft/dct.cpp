#include "density/fft/dct.h"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "util/parallel.h"

namespace complx {
namespace fft {

namespace {

constexpr double kPi = 3.14159265358979323846;
using cd = std::complex<double>;

/// Iterative radix-2 Cooley–Tukey, in place, no output scaling. The
/// butterfly schedule is a pure function of the input length, so the result
/// is the same bytes on every run and every thread.
void fft_inplace(std::vector<cd>& a, bool inverse) {
  const size_t n = a.size();
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const cd wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      cd w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const cd u = a[i + k];
        const cd v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void check_pow2(size_t n) {
  if (!is_pow2(n))
    throw std::invalid_argument("fft: transform length must be a power of 2");
}

}  // namespace

bool is_pow2(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

size_t next_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void dct2_rows(const std::vector<double>& in, size_t n, size_t rows,
               std::vector<double>& out) {
  check_pow2(n);
  out.resize(rows * n);
  // Zero-padded length-2n DFT:  Σ_i x_i cos(πu(2i+1)/(2n)) =
  // Re(e^{-iπu/(2n)} · DFT_{2n}(x‖0)[u]) — the half-sample phase recenters
  // the cosine argument on the bin midpoints.
  parallel_for(
      rows,
      [&](size_t begin, size_t end) {
        std::vector<cd> buf(2 * n);
        for (size_t r = begin; r < end; ++r) {
          const double* x = in.data() + r * n;
          double* y = out.data() + r * n;
          for (size_t i = 0; i < n; ++i) buf[i] = cd(x[i], 0.0);
          for (size_t i = n; i < 2 * n; ++i) buf[i] = cd(0.0, 0.0);
          fft_inplace(buf, /*inverse=*/false);
          for (size_t u = 0; u < n; ++u) {
            const double th =
                kPi * static_cast<double>(u) / (2.0 * static_cast<double>(n));
            y[u] = std::cos(th) * buf[u].real() + std::sin(th) * buf[u].imag();
          }
        }
      },
      1);
}

void series_rows(const std::vector<double>& coef, size_t n, size_t rows,
                 std::vector<double>* cos_out, std::vector<double>* sin_out) {
  check_pow2(n);
  if (cos_out) cos_out->resize(rows * n);
  if (sin_out) sin_out->resize(rows * n);
  if (!cos_out && !sin_out) return;
  // g_i = Σ_u c_u e^{iπu(i+½)/n} = Σ_u (c_u e^{iπu/(2n)}) e^{2πiui/(2n)}:
  // phase-shift the coefficients, zero-pad to 2n, positive-exponent FFT.
  // Re g is the cosine series, Im g the sine series — one transform serves
  // both the DCT-III potential readback and the DST-type field readback.
  parallel_for(
      rows,
      [&](size_t begin, size_t end) {
        std::vector<cd> buf(2 * n);
        for (size_t r = begin; r < end; ++r) {
          const double* c = coef.data() + r * n;
          for (size_t u = 0; u < n; ++u) {
            const double th =
                kPi * static_cast<double>(u) / (2.0 * static_cast<double>(n));
            buf[u] = c[u] * cd(std::cos(th), std::sin(th));
          }
          for (size_t u = n; u < 2 * n; ++u) buf[u] = cd(0.0, 0.0);
          fft_inplace(buf, /*inverse=*/true);
          if (cos_out) {
            double* g = cos_out->data() + r * n;
            for (size_t i = 0; i < n; ++i) g[i] = buf[i].real();
          }
          if (sin_out) {
            double* h = sin_out->data() + r * n;
            for (size_t i = 0; i < n; ++i) h[i] = buf[i].imag();
          }
        }
      },
      1);
}

void transpose(const std::vector<double>& in, size_t cols, size_t rows,
               std::vector<double>& out) {
  out.resize(cols * rows);
  parallel_for(
      rows,
      [&](size_t begin, size_t end) {
        for (size_t r = begin; r < end; ++r)
          for (size_t c = 0; c < cols; ++c) out[c * rows + r] = in[r * cols + c];
      },
      1);
}

}  // namespace fft
}  // namespace complx
