// Real-input DCT-II / trigonometric-series kernels for the FFT Poisson
// solver (density/electrostatic.h).
//
// The electrostatic density model (FFTPL, arXiv:1312.4587; enhanced-FFT
// electrostatics, arXiv:2510.21547) expands the bin charge field in a 2-D
// cosine basis — the eigenbasis of the Laplacian under Neumann (reflecting)
// boundary conditions, which is what a placement core wall physically is.
// The solver needs three primitives per axis, all on power-of-two lengths:
//
//   dct2_rows     forward DCT-II:   a_u  = Σ_i f_i  cos(πu(i+½)/n)
//   series_rows   inverse series:   g_i  = Σ_u c_u cos(πu(i+½)/n)   and/or
//                                   h_i  = Σ_u c_u sin(πu(i+½)/n)
//
// The sin series is the DST-type evaluation that turns ψ coefficients into
// the field E = −∇ψ without ever forming a complex spectrum of the charge.
// Internally each length-n transform is computed exactly (up to roundoff)
// through one length-2n complex radix-2 FFT — an implementation detail
// behind the real-input API.
//
// Determinism contract: rows are transformed independently (index-owned
// writes) with a serial per-row kernel; the row loop runs on util/parallel's
// fixed-chunk pool, so outputs are bitwise identical at any thread count.
#pragma once

#include <cstddef>
#include <vector>

namespace complx {
namespace fft {

/// True when n is a nonzero power of two.
bool is_pow2(size_t n);

/// Smallest power of two >= n (n >= 1).
size_t next_pow2(size_t n);

/// Forward DCT-II along the fastest axis of a row-major `rows` x `n` array:
///   out[r][u] = Σ_{i<n} in[r][i] · cos(πu(i+½)/n),  u ∈ [0, n).
/// `n` must be a power of two. `out` is resized to rows·n.
void dct2_rows(const std::vector<double>& in, size_t n, size_t rows,
               std::vector<double>& out);

/// Evaluates the cosine and/or sine series of per-row coefficients:
///   cos_out[r][i] = Σ_{u<n} coef[r][u] · cos(πu(i+½)/n)
///   sin_out[r][i] = Σ_{u<n} coef[r][u] · sin(πu(i+½)/n)
/// Either output may be nullptr (skipped). `n` must be a power of two.
/// With DCT-II normalization folded into the coefficients, the cosine
/// branch is the DCT-III inverse; the sine branch is the DST-type transform
/// producing the field components.
void series_rows(const std::vector<double>& coef, size_t n, size_t rows,
                 std::vector<double>* cos_out, std::vector<double>* sin_out);

/// Transposes a row-major `rows` x `cols` array into `out` (`cols` x `rows`).
/// `out` must not alias `in`.
void transpose(const std::vector<double>& in, size_t cols, size_t rows,
               std::vector<double>& out);

}  // namespace fft
}  // namespace complx
