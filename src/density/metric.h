// ISPD 2006 contest-style quality metric: "scaled HPWL" = HPWL scaled up by
// a density-overflow penalty (Table 2 reports the penalty percentage in
// parentheses). We follow the contest's structure: overflow is measured on a
// fixed-resolution grid against the design's target utilization γ, and the
// penalty is the relative area overflow.
#pragma once

#include "density/grid.h"
#include "netlist/netlist.h"

namespace complx {

struct DensityMetric {
  double hpwl = 0.0;
  double overflow_area = 0.0;     ///< Σ bin overflow above γ (area units)
  double overflow_percent = 0.0;  ///< 100 · overflow_area / movable area
  double scaled_hpwl = 0.0;       ///< hpwl · (1 + overflow_percent / 100)
};

/// Evaluates HPWL + overflow penalty at placement `p`. The grid resolution
/// defaults to ~10-row-tall bins, matching the contest evaluator's scale.
DensityMetric evaluate_scaled_hpwl(const Netlist& nl, const Placement& p,
                                   size_t bins_x = 0, size_t bins_y = 0);

}  // namespace complx
