#include "density/electrostatic.h"

#include <algorithm>
#include <cmath>

#include "density/fft/dct.h"
#include "util/fpcmp.h"
#include "util/parallel.h"

namespace complx {

namespace {
constexpr double kPi = 3.14159265358979323846;
/// ePlace stretches sub-bin cells to √2 × bin pitch so a cell strictly
/// inside one bin still spills charge into its neighbors (a cell fully
/// contained in a single bin would otherwise see a locally flat energy).
constexpr double kStretch = 1.4142135623730951;

/// NaN-safe clamp, same ordering discipline as grid.cpp's bin lookup: NaN
/// fails every ordered comparison and lands on `lo`.
double clamp_center(double c, double lo, double hi, bool& clamped) {
  if (!(c > lo)) {
    // NaN is not exactly_equal to lo, so it is counted as a clamp.
    clamped = clamped || !fp::exactly_equal(c, lo);
    return lo;
  }
  if (c > hi) {
    clamped = true;
    return hi;
  }
  return c;
}

size_t pick_bins(size_t requested, size_t num_movable) {
  size_t b = requested;
  if (b == 0) {
    b = std::clamp<size_t>(
        static_cast<size_t>(
            std::sqrt(static_cast<double>(num_movable) / 4.0)),
        8, 256);
  }
  b = std::clamp<size_t>(b, 8, 512);
  return fft::next_pow2(b);
}
}  // namespace

ElectrostaticDensity::ElectrostaticDensity(const Netlist& nl,
                                           const ElectrostaticOptions& opts)
    : nl_(nl), opts_(opts), bins_(pick_bins(opts.bins, nl.num_movable())) {}

DensityGrid& ElectrostaticDensity::ensure_grid() const {
  if (!grid_)
    grid_ = std::make_unique<DensityGrid>(nl_, bins_, bins_, opts_.grid);
  return *grid_;
}

void ElectrostaticDensity::set_bins(size_t bins) {
  const size_t next = pick_bins(bins, nl_.num_movable());
  if (next == bins_) return;
  bins_ = next;
  grid_.reset();
}

double ElectrostaticDensity::bin_width() const {
  return nl_.core().width() / static_cast<double>(bins_);
}

double ElectrostaticDensity::bin_height() const {
  return nl_.core().height() / static_cast<double>(bins_);
}

void ElectrostaticDensity::solve_field(const Placement& p,
                                       const Vec* area_factors) const {
  DensityGrid& g = ensure_grid();
  const Rect& core = nl_.core();
  const std::vector<CellId>& movable = nl_.movable_cells();
  const size_t M = bins_;
  const double bw = g.bin_width();
  const double bh = g.bin_height();

  // Stretched, area-preserving charge footprints. Serial: the clamp counter
  // feeds HealthMonitor and must not race; the O(n) rect build is dwarfed by
  // the deposit + transforms anyway.
  rects_.resize(movable.size());
  weights_.resize(movable.size());
  for (size_t k = 0; k < movable.size(); ++k) {
    const CellId id = movable[k];
    const Cell& cell = nl_.cell(id);
    bool clamped = false;
    const double cx = clamp_center(p.x[id], core.xl, core.xh, clamped);
    const double cy = clamp_center(p.y[id], core.yl, core.yh, clamped);
    if (clamped) ++stats_.clamped_cells;
    const double sw = std::max(cell.width, kStretch * bw);
    const double sh = std::max(cell.height, kStretch * bh);
    double area = cell.area();
    if (area_factors && !cell.is_macro()) area *= (*area_factors)[id];
    rects_[k] = {cx - sw / 2.0, cy - sh / 2.0, cx + sw / 2.0, cy + sh / 2.0};
    weights_[k] = area > 0.0 ? area / (sw * sh) : 0.0;
  }
  g.build_from_rects(rects_, weights_);

  // Charge density per bin (area / bin area).
  rho_.resize(M * M);
  const double inv_bin_area = 1.0 / (bw * bh);
  for (size_t j = 0; j < M; ++j)
    for (size_t i = 0; i < M; ++i)
      rho_[j * M + i] = g.usage(i, j) * inv_bin_area;

  // Forward 2-D DCT-II: rows along x, transpose, rows along y.
  fft::dct2_rows(rho_, M, M, t1_);       // t1[j][u]
  fft::transpose(t1_, M, M, t2_);        // t2[u][j]
  fft::dct2_rows(t2_, M, M, t1_);        // t1[u][v] = raw a_uv

  // Spectral solve: ψ̂_uv = â_uv / (w_u² + w_v²) with physical frequencies
  // w_u = πu/W, w_v = πv/H; â folds in the DCT normalization (2/M)² s_u s_v
  // (s_0 = ½). The (0,0) monopole is dropped — mean charge carries no force
  // under Neumann walls. phat_wv_ pre-multiplies by w_v for the E_y series.
  const double W = core.width();
  const double H = core.height();
  phat_.resize(M * M);
  phat_wv_.resize(M * M);
  const double norm = (2.0 / static_cast<double>(M)) *
                      (2.0 / static_cast<double>(M));
  for (size_t u = 0; u < M; ++u) {
    const double su = u == 0 ? 0.5 : 1.0;
    const double wu = kPi * static_cast<double>(u) / W;
    for (size_t v = 0; v < M; ++v) {
      const double sv = v == 0 ? 0.5 : 1.0;
      const double wv = kPi * static_cast<double>(v) / H;
      const size_t k = u * M + v;
      const double denom = wu * wu + wv * wv;
      const double psihat =
          (u == 0 && v == 0) ? 0.0 : norm * su * sv * t1_[k] / denom;
      phat_[k] = psihat;
      phat_wv_[k] = psihat * wv;
    }
  }

  // Inverse readback. Along v (the y axis): cosine series for the ψ path,
  // sine series for E_y.
  fft::series_rows(phat_, M, M, &t1_, nullptr);     // t1[u][j] = Σ_v ψ̂ cos
  fft::series_rows(phat_wv_, M, M, nullptr, &t2_);  // t2[u][j] = Σ_v ψ̂ w_v sin
  fft::transpose(t1_, M, M, ct_);                   // ct[j][u]
  fft::transpose(t2_, M, M, st_);                   // st[j][u]
  // Along u (the x axis): ψ = cos series of ct; E_x = sin series of w_u·ct;
  // E_y = cos series of st.
  cw_.resize(M * M);
  for (size_t j = 0; j < M; ++j)
    for (size_t u = 0; u < M; ++u)
      cw_[j * M + u] = ct_[j * M + u] * (kPi * static_cast<double>(u) / W);
  fft::series_rows(ct_, M, M, &psi_, nullptr);  // ψ[j][i]
  fft::series_rows(cw_, M, M, nullptr, &ex_);   // E_x[j][i]
  fft::series_rows(st_, M, M, &ey_, nullptr);   // E_y[j][i]
}

double ElectrostaticDensity::value_and_grad(const Placement& p, Vec& gx,
                                            Vec& gy) const {
  solve_field(p);
  const size_t n = nl_.num_cells();
  gx.assign(n, 0.0);
  gy.assign(n, 0.0);

  const Rect& core = nl_.core();
  const DensityGrid& g = *grid_;
  const std::vector<CellId>& movable = nl_.movable_cells();
  const size_t M = bins_;
  const double inv_bin_area = 1.0 / (g.bin_width() * g.bin_height());

  // Energy N = ½ Σ_b ρ_b ψ_b. Fixed-chunk bin-order reduction keeps the
  // value bitwise thread-invariant like the rest of the pipeline.
  const double energy =
      0.5 * parallel_sum(M * M, [&](size_t begin, size_t end) {
        double s = 0.0;
        for (size_t k = begin; k < end; ++k) s += rho_[k] * psi_[k];
        return s;
      });

  // Exact gradient: the solve is a fixed symmetric operator, so
  // dN/dx_c = Σ_b ψ_b · ∂ρ_b/∂x_c, and ∂ρ/∂x of the clipped-rectangle
  // deposit is an edge term: a unit move of the cell shifts overlap from
  // the column holding its left edge to the column holding its right edge
  // (edges already clipped to the core contribute nothing — which also
  // zeroes the saturated direction for clamped cells). Writes are
  // index-owned (one cell, one gradient slot): deterministic and race-free
  // at any thread count.
  parallel_for(movable.size(), [&](size_t begin, size_t end) {
    std::vector<double> xov, yov;
    std::vector<double> dx, dy;
    for (size_t k = begin; k < end; ++k) {
      const CellId id = movable[k];
      const Rect& r = rects_[k];
      const double xl = std::max(r.xl, core.xl);
      const double xh = std::min(r.xh, core.xh);
      const double yl = std::max(r.yl, core.yl);
      const double yh = std::min(r.yh, core.yh);
      if (!(xh > xl) || !(yh > yl) || weights_[k] <= 0.0) continue;
      const size_t i0 = g.bin_x_of(xl);
      const size_t i1 = g.bin_x_of(xh - 1e-12);
      const size_t j0 = g.bin_y_of(yl);
      const size_t j1 = g.bin_y_of(yh - 1e-12);
      xov.assign(i1 - i0 + 1, 0.0);
      dx.assign(i1 - i0 + 1, 0.0);
      yov.assign(j1 - j0 + 1, 0.0);
      dy.assign(j1 - j0 + 1, 0.0);
      for (size_t i = i0; i <= i1; ++i) {
        const Rect b = g.bin_rect(i, static_cast<size_t>(0));
        const double a = std::max(xl, b.xl);
        const double c = std::min(xh, b.xh);
        xov[i - i0] = std::max(0.0, c - a);
        double d = 0.0;
        if (r.xh < core.xh && r.xh < b.xh && r.xh > b.xl) d += 1.0;
        if (r.xl > core.xl && r.xl > b.xl && r.xl < b.xh) d -= 1.0;
        dx[i - i0] = d;
      }
      for (size_t j = j0; j <= j1; ++j) {
        const Rect b = g.bin_rect(static_cast<size_t>(0), j);
        const double a = std::max(yl, b.yl);
        const double c = std::min(yh, b.yh);
        yov[j - j0] = std::max(0.0, c - a);
        double d = 0.0;
        if (r.yh < core.yh && r.yh < b.yh && r.yh > b.yl) d += 1.0;
        if (r.yl > core.yl && r.yl > b.yl && r.yl < b.yh) d -= 1.0;
        dy[j - j0] = d;
      }
      double ax = 0.0, ay = 0.0;
      for (size_t j = j0; j <= j1; ++j) {
        for (size_t i = i0; i <= i1; ++i) {
          const double ps = psi_[j * M + i];
          ax += yov[j - j0] * dx[i - i0] * ps;
          ay += xov[i - i0] * dy[j - j0] * ps;
        }
      }
      const double q = weights_[k] * inv_bin_area;
      gx[id] = q * ax;
      gy[id] = q * ay;
    }
  });
  return energy;
}

double ElectrostaticDensity::overflow_ratio(const Placement& p) const {
  DensityGrid& grid = ensure_grid();
  grid.build(p);
  return grid.total_overflow(nl_.target_density()) /
         std::max(nl_.movable_area(), 1e-12);
}

}  // namespace complx
