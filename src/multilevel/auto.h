// Size-dispatched placement: flat ComPLx below a movable-cell threshold,
// the multilevel V-cycle above it.
//
// Flat ComPLx converges in a near-constant number of iterations (Section
// S3), but each iteration's cost is linear in design size, and on
// multi-million-cell instances the from-scratch λ ramp dominates runtime.
// The multilevel scheme pays that ramp on a netlist 10–100× smaller and
// only polishes the fine levels, so above a threshold it is the sensible
// default rather than an opt-in. place_auto() encodes that policy in one
// place; complx_place routes through it.
#pragma once

#include "core/placer.h"
#include "multilevel/mlplacer.h"

namespace complx {

struct AutoPlaceResult {
  /// Final anchors (hand to the legalizer), whichever path produced them.
  Placement anchors;
  bool used_multilevel = false;
  int levels = 0;  ///< coarsening levels (0 for the flat path)
  /// Flat-path solver result (trace, stop reason, λ). Default-constructed
  /// on the multilevel path — the V-cycle's per-level runs have no single
  /// PlaceResult; use `anchors` and `level_sizes`.
  PlaceResult place;
  std::vector<size_t> level_sizes;  ///< cells per level (multilevel only)
  double runtime_s = 0.0;
};

struct AutoPlaceOptions {
  /// Movable-cell count at which the multilevel path takes over. 0 forces
  /// multilevel for every design; SIZE_MAX (or anything above the design
  /// size) forces flat.
  size_t multilevel_threshold = 1000000;
  /// V-cycle shape for the multilevel path; its `coarse` config is
  /// overwritten with the flat config so both paths share one tuning knob.
  MultilevelConfig multilevel;
};

/// Places `nl` with flat ComPLx when nl.num_movable() < multilevel_threshold
/// and with the coarsening V-cycle otherwise.
AutoPlaceResult place_auto(const Netlist& nl, const ComplxConfig& cfg,
                           const AutoPlaceOptions& opts = {});

}  // namespace complx
