// Multilevel global placement (the mPL6-style scheme the paper benchmarks
// against): coarsen the netlist by heavy-edge matching, place the coarsest
// level with the full ComPLx machinery, then interpolate down and refine
// each finer level with a short warm-started ComPLx run.
//
// The attraction is runtime on very large instances: the expensive
// from-scratch convergence happens on a much smaller netlist, and the fine
// levels only polish. bench_multilevel measures the trade against flat
// ComPLx.
#pragma once

#include "core/placer.h"
#include "multilevel/cluster.h"

namespace complx {

struct MultilevelConfig {
  int max_levels = 3;
  size_t coarsest_cells = 2500;  ///< stop coarsening below this
  ComplxConfig coarse;           ///< full run at the coarsest level
  /// Refinement run per finer level (warm-started; fewer iterations).
  int refine_iterations = 12;
  ClusterOptions clustering;
};

struct MultilevelResult {
  Placement anchors;      ///< final fine-level anchors
  int levels = 0;         ///< coarsening levels actually used
  double runtime_s = 0.0;
  std::vector<size_t> level_sizes;  ///< cells per level, fine -> coarse
};

class MultilevelPlacer {
 public:
  MultilevelPlacer(const Netlist& nl, const MultilevelConfig& cfg);
  MultilevelResult place();

 private:
  const Netlist& nl_;
  MultilevelConfig cfg_;
};

}  // namespace complx
