#include "multilevel/auto.h"

#include <utility>

#include "util/timer.h"

namespace complx {

AutoPlaceResult place_auto(const Netlist& nl, const ComplxConfig& cfg,
                           const AutoPlaceOptions& opts) {
  Timer timer;
  AutoPlaceResult result;
  if (nl.num_movable() < opts.multilevel_threshold) {
    ComplxPlacer placer(nl, cfg);
    result.place = placer.place();
    result.anchors = result.place.anchors;
  } else {
    MultilevelConfig ml = opts.multilevel;
    ml.coarse = cfg;  // one tuning knob for both paths
    MultilevelPlacer placer(nl, ml);
    MultilevelResult r = placer.place();
    result.anchors = std::move(r.anchors);
    result.used_multilevel = true;
    result.levels = r.levels;
    result.level_sizes = std::move(r.level_sizes);
  }
  result.runtime_s = timer.seconds();
  return result;
}

}  // namespace complx
