#include "multilevel/cluster.h"

#include <algorithm>
#include <limits>
#include <string>
#include <string_view>

#include "util/fpcmp.h"
#include "util/rng.h"

namespace complx {

CoarseLevel coarsen(const Netlist& fine, const ClusterOptions& opts) {
  const size_t n = fine.num_cells();

  // ---- affinity: for each standard cell, its heaviest neighbour ----------
  // Sparse accumulation per cell over incident small nets.
  std::vector<CellId> match(n, std::numeric_limits<CellId>::max());
  {
    Rng rng(opts.seed);
    std::vector<CellId> order;
    order.reserve(n);
    for (CellId id : fine.movable_cells())
      if (!fine.cell(id).is_macro()) order.push_back(id);
    rng.shuffle(order);

    const double area_cap = opts.max_cluster_rows * fine.row_height() *
                            fine.row_height();
    // Dense scratch instead of a hash map: per-candidate sums accumulate in
    // net-traversal order and the winner scan below is order-independent,
    // so the match (and therefore the whole coarse netlist) cannot depend
    // on hash iteration order (complx-lint rule D1).
    std::vector<double> affinity(n, 0.0);
    std::vector<char> is_candidate(n, 0);
    std::vector<CellId> touched;
    for (CellId id : order) {
      if (match[id] != std::numeric_limits<CellId>::max()) continue;
      if (fine.cell(id).area() > area_cap) continue;
      for (CellId t : touched) {
        affinity[t] = 0.0;
        is_candidate[t] = 0;
      }
      touched.clear();
      for (NetId e : fine.nets_of_cell(id)) {
        const Net& net = fine.net(e);
        if (net.num_pins < 2 || net.num_pins > opts.max_net_degree) continue;
        const double w =
            net.weight / static_cast<double>(net.num_pins - 1);
        for (uint32_t k = 0; k < net.num_pins; ++k) {
          const CellId other = fine.pin(net.first_pin + k).cell;
          if (other == id) continue;
          const Cell& oc = fine.cell(other);
          if (!oc.movable() || oc.is_macro()) continue;
          if (match[other] != std::numeric_limits<CellId>::max()) continue;
          if (oc.area() + fine.cell(id).area() > 2.0 * area_cap) continue;
          if (!is_candidate[other]) {
            is_candidate[other] = 1;
            touched.push_back(other);
          }
          affinity[other] += w;
        }
      }
      // Max affinity, ties to the smallest id — order-independent, so the
      // traversal order of `touched` does not matter.
      CellId best = std::numeric_limits<CellId>::max();
      double best_w = 0.0;
      for (CellId other : touched) {
        const double w = affinity[other];
        if (w > best_w || (fp::exactly_equal(w, best_w) && other < best)) {
          best_w = w;
          best = other;
        }
      }
      if (best != std::numeric_limits<CellId>::max()) {
        match[id] = best;
        match[best] = id;
      }
    }
  }

  // ---- build the coarse netlist -------------------------------------------
  CoarseLevel level;
  level.fine_to_coarse.assign(n, 0);
  Netlist& coarse = level.netlist;

  std::string merged_name;
  for (CellId id = 0; id < n; ++id) {
    const Cell& c = fine.cell(id);
    const CellId partner = match[id];
    if (partner != std::numeric_limits<CellId>::max() && partner < id) {
      // Second member of a merged pair: same coarse cell as the partner.
      level.fine_to_coarse[id] = level.fine_to_coarse[partner];
      continue;
    }
    Cell cc = c;
    std::string_view cc_name = fine.cell_name(id);
    if (partner != std::numeric_limits<CellId>::max() && partner > id) {
      // Cluster representative: combined area at row height, centered at
      // the members' mean position.
      const Cell& pc = fine.cell(partner);
      merged_name.assign(fine.cell_name(id));
      merged_name += '+';
      merged_name += fine.cell_name(partner);
      cc_name = merged_name;
      cc.height = fine.row_height();
      cc.width = (c.area() + pc.area()) / cc.height;
      cc.x = (c.cx() + pc.cx()) / 2.0 - cc.width / 2.0;
      cc.y = (c.cy() + pc.cy()) / 2.0 - cc.height / 2.0;
      cc.region = c.region != kNoRegion ? c.region : pc.region;
    }
    level.fine_to_coarse[id] = coarse.add_cell(cc, cc_name);
  }

  // Nets: re-target pins; drop single-cluster nets; dedupe per-net pins to
  // one pin per coarse cell (offsets dropped — coarse placement is about
  // global structure).
  std::vector<CellId> seen;
  std::vector<Pin> pins;  // reused across nets (capacity survives clear())
  for (NetId e = 0; e < fine.num_nets(); ++e) {
    const Net& net = fine.net(e);
    if (net.num_pins < 2) continue;
    seen.clear();
    pins.clear();
    for (uint32_t k = 0; k < net.num_pins; ++k) {
      const CellId cc = level.fine_to_coarse[fine.pin(net.first_pin + k).cell];
      if (std::find(seen.begin(), seen.end(), cc) != seen.end()) continue;
      seen.push_back(cc);
      pins.push_back({cc, 0.0, 0.0});
    }
    if (pins.size() < 2) continue;  // internal to one cluster
    coarse.add_net(fine.net_name(e), net.weight, pins);
  }

  for (const Region& r : fine.regions()) coarse.add_region(r);
  coarse.set_core(fine.core());
  coarse.set_rows(fine.rows());
  coarse.set_target_density(fine.target_density());
  coarse.finalize();
  return level;
}

Placement interpolate(const Netlist& fine,
                      const std::vector<CellId>& fine_to_coarse,
                      const Placement& coarse_placement) {
  Placement p = fine.snapshot();
  for (CellId id : fine.movable_cells()) {
    const CellId cc = fine_to_coarse[id];
    p.x[id] = coarse_placement.x[cc];
    p.y[id] = coarse_placement.y[cc];
  }
  return p;
}

}  // namespace complx
