#include "multilevel/mlplacer.h"

#include <memory>

#include "util/timer.h"

namespace complx {

MultilevelPlacer::MultilevelPlacer(const Netlist& nl,
                                   const MultilevelConfig& cfg)
    : nl_(nl), cfg_(cfg) {}

MultilevelResult MultilevelPlacer::place() {
  Timer timer;
  MultilevelResult result;

  // ---- V-cycle down: build the hierarchy ----------------------------------
  // levels[0] is the original netlist; each entry owns its coarse netlist.
  std::vector<CoarseLevel> levels;
  const Netlist* current = &nl_;
  result.level_sizes.push_back(nl_.num_cells());
  for (int l = 0; l < cfg_.max_levels; ++l) {
    if (current->num_movable() <= cfg_.coarsest_cells) break;
    ClusterOptions copts = cfg_.clustering;
    copts.seed += static_cast<uint64_t>(l);
    CoarseLevel next = coarsen(*current, copts);
    // Stop if matching found nothing to merge (ratio ~1).
    if (next.netlist.num_cells() >= current->num_cells() * 95 / 100) break;
    result.level_sizes.push_back(next.netlist.num_cells());
    levels.push_back(std::move(next));
    current = &levels.back().netlist;
  }
  result.levels = static_cast<int>(levels.size());

  // ---- coarsest placement: full ComPLx run --------------------------------
  ComplxConfig coarse_cfg = cfg_.coarse;
  Placement placement = [&] {
    ComplxPlacer placer(*current, coarse_cfg);
    return placer.place().anchors;
  }();

  // ---- V-cycle up: interpolate + short warm refinement ---------------------
  for (size_t l = levels.size(); l-- > 0;) {
    const Netlist& fine = l == 0 ? nl_ : levels[l - 1].netlist;
    Placement seeded =
        interpolate(fine, levels[l].fine_to_coarse, placement);

    // Warm-started refinement: the interpolated placement is already
    // globally spread; a short run re-legalizes density at this level's
    // granularity and recovers detail.
    ComplxConfig refine_cfg = cfg_.coarse;
    refine_cfg.max_iterations = cfg_.refine_iterations;
    refine_cfg.min_iterations = std::min(4, cfg_.refine_iterations);
    ComplxPlacer placer(fine, refine_cfg);
    placement = placer.place_from(seeded).anchors;
  }

  result.anchors = std::move(placement);
  result.runtime_s = timer.seconds();
  return result;
}

}  // namespace complx
