// Netlist coarsening for multilevel placement (the mPL6 family the paper
// compares against): heavy-edge matching merges strongly connected cell
// pairs into clusters, producing a smaller netlist whose placement can be
// interpolated back down.
//
// Connectivity weight between cells a, b: Σ over shared nets of
// w_e/(P_e − 1) (the clique-model edge weight). Macros and fixed cells are
// never merged — they map 1:1 to the coarse level.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace complx {

struct ClusterOptions {
  uint32_t max_net_degree = 16;  ///< bigger nets ignored for affinity
  double max_cluster_rows = 4.0;  ///< stop merging beyond this area (rows²)
  uint64_t seed = 1;              ///< visit order randomization
};

struct CoarseLevel {
  Netlist netlist;  ///< the coarsened netlist
  /// fine cell id -> coarse cell id (size = fine cell count).
  std::vector<CellId> fine_to_coarse;
};

/// One level of heavy-edge-matching coarsening. The coarse netlist
/// preserves fixed cells and macros verbatim (same positions); merged
/// standard-cell pairs become a single cell of the combined area (row
/// height, widened). Nets are re-targeted; nets collapsing to a single
/// coarse cell are dropped.
CoarseLevel coarsen(const Netlist& fine, const ClusterOptions& opts = {});

/// Interpolates a coarse placement down: every fine cell takes its coarse
/// cluster's center.
Placement interpolate(const Netlist& fine,
                      const std::vector<CellId>& fine_to_coarse,
                      const Placement& coarse_placement);

}  // namespace complx
